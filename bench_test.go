package jitomev

// One benchmark per table and figure in the paper's evaluation, per the
// experiment index in DESIGN.md. Each benchmark regenerates its artifact:
// the shared study pipeline runs once in setup (it is itself benchmarked
// by BenchmarkFullPipeline), and the timed loop covers the analysis and
// rendering that produce the table or figure.
//
// Run with: go test -bench=. -benchmem

import (
	"io"
	"sync"
	"testing"

	"jitomev/internal/collector"
	"jitomev/internal/core"
	"jitomev/internal/explorer"
	"jitomev/internal/obs"
	"jitomev/internal/report"
	"jitomev/internal/workload"
)

var (
	benchOnce    sync.Once
	benchOutcome *Outcome
)

// benchPipeline runs one shared 20-day study for the figure benchmarks.
func benchPipeline(b *testing.B) *Outcome {
	b.Helper()
	benchOnce.Do(func() {
		out, err := Run(Config{
			Workload:    workload.Params{Seed: 1, Days: 20, Scale: 10_000},
			RunAblation: false,
		})
		if err != nil {
			panic(err)
		}
		benchOutcome = out
	})
	return benchOutcome
}

// BenchmarkTable1ExampleSandwich regenerates Table 1: the canonical
// sandwich executed through pool, bank, block engine and detector.
func BenchmarkTable1ExampleSandwich(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		report.RenderTable1(io.Discard)
	}
}

// BenchmarkFigure1BundlesPerDay regenerates Figure 1: bundles per day by
// bundle length, with outage gaps.
func BenchmarkFigure1BundlesPerDay(b *testing.B) {
	out := benchPipeline(b)
	det := core.NewDefaultDetector()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := report.Analyze(out.Collector.Data, det, 0)
		report.RenderFigure1(io.Discard, r, out.Study.P.InOutage)
	}
}

// BenchmarkFigure2AttacksAndDefense regenerates Figure 2 (top): attacks
// and defensive bundles per day.
func BenchmarkFigure2AttacksAndDefense(b *testing.B) {
	out := benchPipeline(b)
	det := core.NewDefaultDetector()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := report.Analyze(out.Collector.Data, det, 0)
		report.RenderFigure2(io.Discard, r, out.Study.P.InOutage)
	}
}

// BenchmarkFigure2Losses regenerates Figure 2 (bottom): per-day victim
// losses and attacker gains in SOL (the quantification pass alone).
func BenchmarkFigure2Losses(b *testing.B) {
	out := benchPipeline(b)
	det := core.NewDefaultDetector()
	data := out.Collector.Data
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var loss, gain float64
		for j := range data.Len3 {
			rec := &data.Len3[j]
			details, ok := data.DetailsFor(rec)
			if !ok {
				continue
			}
			if v := det.Detect(rec, details); v.Sandwich && v.HasSOL {
				loss += v.VictimLossLamports
				gain += v.AttackerGainLamports
			}
		}
		if loss <= 0 || gain <= 0 {
			b.Fatal("quantification produced nothing")
		}
	}
}

// BenchmarkFigure3LossCDF regenerates Figure 3: the CDF of USD lost per
// sandwiched transaction.
func BenchmarkFigure3LossCDF(b *testing.B) {
	out := benchPipeline(b)
	det := core.NewDefaultDetector()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := report.Analyze(out.Collector.Data, det, 0)
		report.RenderFigure3(io.Discard, r, 25)
	}
}

// BenchmarkFigure4TipCDF regenerates Figure 4: tip CDFs for length-1,
// length-3 and sandwich bundles.
func BenchmarkFigure4TipCDF(b *testing.B) {
	out := benchPipeline(b)
	det := core.NewDefaultDetector()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := report.Analyze(out.Collector.Data, det, 0)
		report.RenderFigure4(io.Discard, r)
	}
}

// BenchmarkHeadlineStats regenerates the headline table (H1–H15).
func BenchmarkHeadlineStats(b *testing.B) {
	out := benchPipeline(b)
	det := core.NewDefaultDetector()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := report.Analyze(out.Collector.Data, det, 0)
		r.OverlapRate = out.Collector.OverlapRate()
		report.RenderHeadline(io.Discard, r, out.Study.P.Scale)
	}
}

// BenchmarkAnalyzeSerial runs the single-core reference analysis pass
// (Workers=1) over the 20-day Scale=10,000 bench study — the baseline
// BenchmarkAnalyzeParallel is measured against.
func BenchmarkAnalyzeSerial(b *testing.B) {
	out := benchPipeline(b)
	det := core.NewDefaultDetector()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := report.AnalyzeN(out.Collector.Data, det, 0, 1)
		if r.Sandwiches == 0 {
			b.Fatal("analysis found nothing")
		}
	}
}

// BenchmarkAnalyzeParallel shards the same pass across GOMAXPROCS
// workers; results are bit-identical to the serial pass (asserted by
// TestAnalyzeDeterministicAcrossWorkers), only faster on multicore.
func BenchmarkAnalyzeParallel(b *testing.B) {
	out := benchPipeline(b)
	det := core.NewDefaultDetector()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := report.AnalyzeN(out.Collector.Data, det, 0, 0)
		if r.Sandwiches == 0 {
			b.Fatal("analysis found nothing")
		}
	}
}

// BenchmarkInstrumentedAnalyze is BenchmarkAnalyzeParallel with a live
// metrics registry attached: the delta against the uninstrumented run is
// the whole-pipeline cost of the observability layer (per-metric cost is
// BenchmarkObsCounter in internal/obs).
func BenchmarkInstrumentedAnalyze(b *testing.B) {
	out := benchPipeline(b)
	det := core.NewDefaultDetector()
	reg := obs.NewRegistry()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := report.AnalyzeObs(out.Collector.Data, det, 0, 0, reg)
		if r.Sandwiches == 0 {
			b.Fatal("analysis found nothing")
		}
	}
}

// BenchmarkTracedAnalyze is BenchmarkInstrumentedAnalyze with the
// distributed tracer attached to the registry: AnalyzeObs roots a
// "report.analyze" trace with per-stage child spans on every pass. The
// delta against BenchmarkInstrumentedAnalyze is the whole-pipeline cost
// of tracing an instrumented run (acceptance: ≤5%); per-span cost is
// BenchmarkTraceSampled in internal/obs.
func BenchmarkTracedAnalyze(b *testing.B) {
	out := benchPipeline(b)
	det := core.NewDefaultDetector()
	reg := obs.NewRegistry()
	obs.NewTracer(reg, obs.TraceConfig{Service: "bench", Seed: 1, SampleRate: 1, Capacity: 64})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := report.AnalyzeObs(out.Collector.Data, det, 0, 0, reg)
		if r.Sandwiches == 0 {
			b.Fatal("analysis found nothing")
		}
	}
}

// BenchmarkStudyRunPipelined times generation with ingest pipelined
// behind block production (Workers>1 path of jitomev.Run); compare with
// BenchmarkStudyRunSync for the overlap won on multicore hardware.
func BenchmarkStudyRunPipelined(b *testing.B) {
	benchStudyRun(b, true)
}

// BenchmarkStudyRunSync is the synchronous generation→ingest baseline.
func BenchmarkStudyRunSync(b *testing.B) {
	benchStudyRun(b, false)
}

func benchStudyRun(b *testing.B, pipelined bool) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		st := workload.New(workload.Params{Seed: int64(i + 1), Days: 3, Scale: 20_000})
		store := explorer.NewStore()
		coll := collector.New(collector.Config{}, st.P.Clock(), collector.Direct{Store: store})
		sink := &collector.PollingSink{Store: store, Collector: coll, InOutage: st.P.InOutage}
		if pipelined {
			st.RunPipelined(sink, 0)
		} else {
			st.Run(sink)
		}
		if coll.Data.Collected == 0 {
			b.Fatal("empty study")
		}
	}
}

// BenchmarkOverlapValidation regenerates the §3.1 completeness check: a
// full polling pass (paged reads, dedup, successive-page overlap) over a
// pre-generated explorer store.
func BenchmarkOverlapValidation(b *testing.B) {
	st := workload.New(workload.Params{Seed: 2, Days: 2, Scale: 20_000})
	store := explorer.NewStore()
	st.Run(store)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := collector.New(collector.Config{PageLimit: 50},
			st.P.Clock(), collector.Direct{Store: store})
		// Poll repeatedly like the live sink would; the store is static,
		// so after the first poll all pages overlap fully.
		for p := 0; p < 20; p++ {
			if err := c.Poll(); err != nil {
				b.Fatal(err)
			}
		}
		if c.OverlapRate() == 0 {
			b.Fatal("no overlap measured")
		}
	}
}

// BenchmarkDetectorAblation regenerates the full-vs-naive detector
// comparison against ground truth.
func BenchmarkDetectorAblation(b *testing.B) {
	out := benchPipeline(b)
	det := core.NewDefaultDetector()
	truth := truthAdapter{out.Study.GT}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ab := report.Ablate(out.Collector.Data, det, truth)
		report.RenderAblation(io.Discard, ab)
	}
}

// BenchmarkFullPipeline times the entire reproduction end to end:
// generation, collection, detail fetch, detection, analysis.
func BenchmarkFullPipeline(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out, err := Run(Config{
			Workload: workload.Params{Seed: int64(i + 1), Days: 3, Scale: 20_000},
		})
		if err != nil {
			b.Fatal(err)
		}
		if out.Results.TotalBundles == 0 {
			b.Fatal("empty study")
		}
	}
}

// BenchmarkFullPipelineHTTP is the same pipeline with collection over real
// loopback HTTP — the faithful (and slower) transport.
func BenchmarkFullPipelineHTTP(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out, err := Run(Config{
			Workload: workload.Params{Seed: int64(i + 1), Days: 3, Scale: 20_000},
			UseHTTP:  true,
		})
		if err != nil {
			b.Fatal(err)
		}
		if out.Results.TotalBundles == 0 {
			b.Fatal("empty study")
		}
	}
}

// Package report turns a collected dataset into the paper's results: the
// headline statistics (H1–H15 in DESIGN.md), the per-day series behind
// Figures 1 and 2, and the distributions behind Figures 3 and 4 — plus
// text renderers that print them as aligned tables and CSV.
package report

import (
	"jitomev/internal/collector"
	"jitomev/internal/core"
	"jitomev/internal/jito"
	"jitomev/internal/obs"
	"jitomev/internal/parallel"
	"jitomev/internal/stats"
)

// Results holds every statistic the reproduction reports.
type Results struct {
	// Dataset scope.
	Days           int
	TotalBundles   uint64
	TotalTxs       uint64
	DuplicateRate  float64
	OverlapRate    float64
	PollCount      uint64
	DetailRequests uint64

	// Sandwiching (§4.1 / Figures 2–3).
	Len3Bundles     uint64
	Len3WithDetails uint64
	Sandwiches      uint64
	SandwichesNoSOL uint64 // detected but excluded from $ quantification
	VictimLossSOL   float64
	AttackerGainSOL float64
	SandwichShare   float64 // of all collected bundles (paper: 0.038%)

	// Defensive bundling (§4.2 / Figure 4).
	Defense core.DefenseStats

	// Rejections by criterion, for the methodology table.
	Rejections map[core.Criterion]uint64

	// Per-day series (Figures 1–2). Indexed by study day.
	BundlesByDay  map[int]*collector.DayAgg
	AttacksByDay  *stats.TimeSeries
	LossSOLByDay  *stats.TimeSeries
	GainSOLByDay  *stats.TimeSeries
	DefenseByDay  *stats.TimeSeries
	CollectedDays []int

	// Distributions (Figures 3–4).
	LossUSD      *stats.ECDF         // per-victim USD loss, SOL-leg sandwiches
	TipsLen1     *stats.LogHistogram // all length-1 bundles
	TipsLen3     *stats.LogHistogram // all length-3 bundles
	TipsSandwich *stats.ECDF         // detected sandwich bundles

	// SOLPriceUSD used for dollar conversions.
	SOLPriceUSD float64

	// Verdicts retains every positive verdict for downstream inspection.
	Verdicts []core.Verdict

	// Extended detection over retained length-4/5 bundles. Zero under the
	// paper's length-3-only collection economy; populated when the study
	// widens detail collection to quantify the paper's lower-bound gap.
	LongBundlesScanned  uint64
	DisguisedSandwiches uint64
	DisguisedVerdicts   []core.Verdict
}

// Analyze runs the detector over a collected dataset and computes every
// reported statistic, sharding the detection pass across all cores.
// solPriceUSD ≤ 0 selects the paper's $242 rate. Equivalent to
// AnalyzeN(data, det, solPriceUSD, 0).
func Analyze(data *collector.Dataset, det *core.Detector, solPriceUSD float64) *Results {
	return AnalyzeN(data, det, solPriceUSD, 0)
}

// verdictEst sizes the sandwich-verdict preallocation from the length-3
// population: sandwiches are a small share of length-3 bundles (the paper
// measured ~1–2%), so 1/16 of the population plus slack avoids regrowth
// in practice without over-reserving at large scales.
func verdictEst(n int) int { return n/16 + 8 }

// hit is one positive verdict with its study day, recorded by a detection
// shard in index order and replayed by the deterministic fan-in.
type hit struct {
	v   core.Verdict
	day int
}

// AnalyzeN is Analyze with an explicit worker count: 0 selects
// GOMAXPROCS, 1 runs the legacy single-core pass (kept as the reference
// implementation), and any other count shards data.Len3 and data.Long
// across that many workers. Detection — the hot, pure per-bundle work —
// runs in the shards; every statistic that cares about order (verdict
// ordering, float accumulation into totals, time series and ECDF
// samples) is replayed on the calling goroutine in shard order, so the
// Results are identical at every worker count, bit for bit.
func AnalyzeN(data *collector.Dataset, det *core.Detector, solPriceUSD float64, workers int) *Results {
	return AnalyzeObs(data, det, solPriceUSD, workers, nil)
}

// AnalyzeObs is AnalyzeN publishing the detection pass onto reg (nil =
// uninstrumented): per-criterion rejection counters
// (detect_rejections_total{criterion=…}), sandwich/disguised tallies,
// and pipeline spans timing the length-3 and extended stages. All
// counter values are deterministic at any worker count — the shard
// fan-in replays the serial order — so they sit in the deterministic
// snapshot; only the stage durations are volatile.
func AnalyzeObs(data *collector.Dataset, det *core.Detector, solPriceUSD float64, workers int, reg *obs.Registry) *Results {
	workers = parallel.Workers(workers)
	a := NewAccumulator(det, solPriceUSD, Scope{
		Clock:       data.Clock,
		Days:        data.Days,
		TipsLen1:    data.TipsLen1,
		TipsLen3:    data.TipsLen3,
		Collected:   data.Collected,
		Duplicates:  data.Duplicates,
		Len3Bundles: uint64(len(data.Len3)),
	})

	// When a tracer rides the registry, the whole pass is one trace with
	// per-stage child spans — the overhead budget BENCH_trace.json
	// guards (unsampled: a single atomic add and hash per stage).
	tr := reg.TracerAttached().StartTrace("report.analyze")
	tr.Annotatef("len3:%d long:%d workers:%d", len(data.Len3), len(data.Long), workers)

	sp := tr.StartChild("analyze_len3")
	span := reg.StartSpan("analyze_len3")
	span.AddItems(len(data.Len3))
	if workers == 1 {
		// Serial reference pass: one partial over the whole population.
		a.FoldLen3(a.DetectLen3(data.Len3, datasetSource(data, data.Len3)))
	} else {
		// Sharded pass: workers run the pure per-bundle detection over
		// contiguous index ranges; the fan-in replays hits in shard order.
		parallel.MapReduceObs(reg, "analyze_len3", workers, len(data.Len3),
			func(lo, hi int) Len3Partial {
				recs := data.Len3[lo:hi]
				return a.DetectLen3(recs, datasetSource(data, recs))
			},
			a.FoldLen3)
	}
	span.End()
	sp.End()

	// Extended pass over retained longer bundles: recover disguised
	// sandwiches the length-3 methodology misses by construction.
	sp = tr.StartChild("analyze_extended")
	span = reg.StartSpan("analyze_extended")
	span.AddItems(len(data.Long))
	if workers == 1 {
		a.FoldLong(a.DetectLong(data.Long, datasetSource(data, data.Long)))
	} else {
		parallel.MapReduceObs(reg, "analyze_extended", workers, len(data.Long),
			func(lo, hi int) LongPartial {
				recs := data.Long[lo:hi]
				return a.DetectLong(recs, datasetSource(data, recs))
			},
			a.FoldLong)
	}
	span.End()
	sp.End()

	sp = tr.StartChild("finish")
	res := a.Finish(reg)
	sp.End()
	tr.Annotatef("sandwiches:%d", res.Sandwiches)
	tr.End()
	return res
}

// datasetSource adapts a resident dataset's detail map to the fold's
// DetailSource over the given record slice.
func datasetSource(data *collector.Dataset, recs []jito.BundleRecord) DetailSource {
	return func(i int, scratch []jito.TxDetail) ([]jito.TxDetail, bool) {
		return data.AppendDetails(scratch, &recs[i])
	}
}

// DisguisedLossUSD sums the victim losses of disguised (length>3)
// sandwiches — value the paper's lower bound leaves on the table.
func (r *Results) DisguisedLossUSD() float64 {
	var sum float64
	for _, v := range r.DisguisedVerdicts {
		sum += v.VictimLossLamports / 1e9 * r.SOLPriceUSD
	}
	return sum
}

// VictimLossUSD converts the aggregate loss to dollars.
func (r *Results) VictimLossUSD() float64 { return r.VictimLossSOL * r.SOLPriceUSD }

// AttackerGainUSD converts the aggregate gain to dollars.
func (r *Results) AttackerGainUSD() float64 { return r.AttackerGainSOL * r.SOLPriceUSD }

// DefensiveSpendUSD converts the defensive tip spend to dollars.
func (r *Results) DefensiveSpendUSD() float64 {
	return stats.LamportsToUSD(float64(r.Defense.DefensiveSpendLamports), r.SOLPriceUSD)
}

// NoSOLShare is the fraction of sandwiches without a SOL leg (paper: 28%).
func (r *Results) NoSOLShare() float64 {
	if r.Sandwiches == 0 {
		return 0
	}
	return float64(r.SandwichesNoSOL) / float64(r.Sandwiches)
}

// AblationResult compares the full detector against the naive baseline on
// ground-truth-labeled data.
type AblationResult struct {
	Full  core.Confusion
	Naive core.Confusion
}

// Truther resolves ground-truth sandwich labels; satisfied by
// *workload.GroundTruth via a tiny adapter to avoid a package cycle.
type Truther interface {
	IsSandwich(id jito.BundleID) bool
}

// Ablate runs both detectors over the dataset and scores them against
// ground truth, sharding across all cores. Only length-3 bundles with
// fetched details participate (both detectors see identical inputs).
// Equivalent to AblateN(data, det, truth, 0).
func Ablate(data *collector.Dataset, det *core.Detector, truth Truther) AblationResult {
	return AblateN(data, det, truth, 0)
}

// AblateN is Ablate with an explicit worker count (0 = GOMAXPROCS,
// 1 = serial reference). Confusion counts are integers, so the sharded
// tally is identical to the serial one at any worker count. truth must
// be safe for concurrent reads (both ground-truth implementations are
// read-only after the study runs).
func AblateN(data *collector.Dataset, det *core.Detector, truth Truther, workers int) AblationResult {
	var ab AblationResult
	scoreRange := func(lo, hi int) AblationResult {
		var part AblationResult
		var scratch []jito.TxDetail
		for i := lo; i < hi; i++ {
			rec := &data.Len3[i]
			var ok bool
			scratch, ok = data.AppendDetails(scratch[:0], rec)
			if !ok {
				continue
			}
			actual := truth.IsSandwich(rec.ID)
			part.Full.Observe(det.Detect(rec, scratch).Sandwich, actual)
			part.Naive.Observe(core.DetectNaive(rec, scratch).Sandwich, actual)
		}
		return part
	}
	parallel.MapReduce(workers, len(data.Len3), scoreRange, func(part AblationResult) {
		ab.Full.Merge(part.Full)
		ab.Naive.Merge(part.Naive)
	})
	return ab
}

// Package report turns a collected dataset into the paper's results: the
// headline statistics (H1–H15 in DESIGN.md), the per-day series behind
// Figures 1 and 2, and the distributions behind Figures 3 and 4 — plus
// text renderers that print them as aligned tables and CSV.
package report

import (
	"jitomev/internal/collector"
	"jitomev/internal/core"
	"jitomev/internal/jito"
	"jitomev/internal/stats"
)

// Results holds every statistic the reproduction reports.
type Results struct {
	// Dataset scope.
	Days           int
	TotalBundles   uint64
	TotalTxs       uint64
	DuplicateRate  float64
	OverlapRate    float64
	PollCount      uint64
	DetailRequests uint64

	// Sandwiching (§4.1 / Figures 2–3).
	Len3Bundles     uint64
	Len3WithDetails uint64
	Sandwiches      uint64
	SandwichesNoSOL uint64 // detected but excluded from $ quantification
	VictimLossSOL   float64
	AttackerGainSOL float64
	SandwichShare   float64 // of all collected bundles (paper: 0.038%)

	// Defensive bundling (§4.2 / Figure 4).
	Defense core.DefenseStats

	// Rejections by criterion, for the methodology table.
	Rejections map[core.Criterion]uint64

	// Per-day series (Figures 1–2). Indexed by study day.
	BundlesByDay  map[int]*collector.DayAgg
	AttacksByDay  *stats.TimeSeries
	LossSOLByDay  *stats.TimeSeries
	GainSOLByDay  *stats.TimeSeries
	DefenseByDay  *stats.TimeSeries
	CollectedDays []int

	// Distributions (Figures 3–4).
	LossUSD      *stats.ECDF         // per-victim USD loss, SOL-leg sandwiches
	TipsLen1     *stats.LogHistogram // all length-1 bundles
	TipsLen3     *stats.LogHistogram // all length-3 bundles
	TipsSandwich *stats.ECDF         // detected sandwich bundles

	// SOLPriceUSD used for dollar conversions.
	SOLPriceUSD float64

	// Verdicts retains every positive verdict for downstream inspection.
	Verdicts []core.Verdict

	// Extended detection over retained length-4/5 bundles. Zero under the
	// paper's length-3-only collection economy; populated when the study
	// widens detail collection to quantify the paper's lower-bound gap.
	LongBundlesScanned  uint64
	DisguisedSandwiches uint64
	DisguisedVerdicts   []core.Verdict
}

// Analyze runs the detector over a collected dataset and computes every
// reported statistic. solPriceUSD ≤ 0 selects the paper's $242 rate.
func Analyze(data *collector.Dataset, det *core.Detector, solPriceUSD float64) *Results {
	if solPriceUSD <= 0 {
		solPriceUSD = stats.SOLPriceUSD
	}
	r := &Results{
		TotalBundles:  data.Collected,
		Len3Bundles:   uint64(len(data.Len3)),
		Rejections:    make(map[core.Criterion]uint64),
		BundlesByDay:  data.Days,
		AttacksByDay:  stats.NewTimeSeries(),
		LossSOLByDay:  stats.NewTimeSeries(),
		GainSOLByDay:  stats.NewTimeSeries(),
		DefenseByDay:  stats.NewTimeSeries(),
		CollectedDays: data.SortedDays(),
		TipsLen1:      data.TipsLen1,
		TipsLen3:      data.TipsLen3,
		SOLPriceUSD:   solPriceUSD,
	}
	if data.Duplicates+data.Collected > 0 {
		r.DuplicateRate = float64(data.Duplicates) / float64(data.Duplicates+data.Collected)
	}

	for day, agg := range data.Days {
		r.TotalTxs += agg.Txs
		r.Defense.SingleTxBundles += agg.DefensiveCount + agg.PriorityCount
		r.Defense.Defensive += agg.DefensiveCount
		r.Defense.Priority += agg.PriorityCount
		r.Defense.DefensiveSpendLamports += agg.DefensiveSpend
		r.DefenseByDay.Add(day, float64(agg.DefensiveCount))
	}
	if len(r.CollectedDays) > 0 {
		r.Days = r.CollectedDays[len(r.CollectedDays)-1] + 1
	}

	var lossUSD []float64
	var sandwichTips []float64

	for i := range data.Len3 {
		rec := &data.Len3[i]
		details, ok := data.DetailsFor(rec)
		if !ok {
			continue
		}
		r.Len3WithDetails++
		v := det.Detect(rec, details)
		if !v.Sandwich {
			r.Rejections[v.Failed]++
			continue
		}
		r.Sandwiches++
		r.Verdicts = append(r.Verdicts, v)
		day := data.Clock.DayOf(rec.Slot)
		r.AttacksByDay.Add(day, 1)
		sandwichTips = append(sandwichTips, float64(v.TipLamports))
		if !v.HasSOL {
			r.SandwichesNoSOL++
			continue
		}
		lossSOL := v.VictimLossLamports / 1e9
		gainSOL := v.AttackerGainLamports / 1e9
		r.VictimLossSOL += lossSOL
		r.AttackerGainSOL += gainSOL
		r.LossSOLByDay.Add(day, lossSOL)
		r.GainSOLByDay.Add(day, gainSOL)
		lossUSD = append(lossUSD, lossSOL*solPriceUSD)
	}

	// Extended pass over retained longer bundles: recover disguised
	// sandwiches the length-3 methodology misses by construction.
	for i := range data.Long {
		rec := &data.Long[i]
		details, ok := data.DetailsFor(rec)
		if !ok {
			continue
		}
		r.LongBundlesScanned++
		ev := det.DetectExtended(rec, details)
		for _, v := range ev.Sandwiches {
			r.DisguisedSandwiches++
			r.DisguisedVerdicts = append(r.DisguisedVerdicts, v)
		}
	}

	if r.TotalBundles > 0 {
		r.SandwichShare = float64(r.Sandwiches) / float64(r.TotalBundles)
	}
	r.LossUSD = stats.NewECDF(lossUSD)
	r.TipsSandwich = stats.NewECDF(sandwichTips)
	return r
}

// DisguisedLossUSD sums the victim losses of disguised (length>3)
// sandwiches — value the paper's lower bound leaves on the table.
func (r *Results) DisguisedLossUSD() float64 {
	var sum float64
	for _, v := range r.DisguisedVerdicts {
		sum += v.VictimLossLamports / 1e9 * r.SOLPriceUSD
	}
	return sum
}

// VictimLossUSD converts the aggregate loss to dollars.
func (r *Results) VictimLossUSD() float64 { return r.VictimLossSOL * r.SOLPriceUSD }

// AttackerGainUSD converts the aggregate gain to dollars.
func (r *Results) AttackerGainUSD() float64 { return r.AttackerGainSOL * r.SOLPriceUSD }

// DefensiveSpendUSD converts the defensive tip spend to dollars.
func (r *Results) DefensiveSpendUSD() float64 {
	return stats.LamportsToUSD(float64(r.Defense.DefensiveSpendLamports), r.SOLPriceUSD)
}

// NoSOLShare is the fraction of sandwiches without a SOL leg (paper: 28%).
func (r *Results) NoSOLShare() float64 {
	if r.Sandwiches == 0 {
		return 0
	}
	return float64(r.SandwichesNoSOL) / float64(r.Sandwiches)
}

// AblationResult compares the full detector against the naive baseline on
// ground-truth-labeled data.
type AblationResult struct {
	Full  core.Confusion
	Naive core.Confusion
}

// Truther resolves ground-truth sandwich labels; satisfied by
// *workload.GroundTruth via a tiny adapter to avoid a package cycle.
type Truther interface {
	IsSandwich(id jito.BundleID) bool
}

// Ablate runs both detectors over the dataset and scores them against
// ground truth. Only length-3 bundles with fetched details participate
// (both detectors see identical inputs).
func Ablate(data *collector.Dataset, det *core.Detector, truth Truther) AblationResult {
	var ab AblationResult
	for i := range data.Len3 {
		rec := &data.Len3[i]
		details, ok := data.DetailsFor(rec)
		if !ok {
			continue
		}
		actual := truth.IsSandwich(rec.ID)
		ab.Full.Observe(det.Detect(rec, details).Sandwich, actual)
		ab.Naive.Observe(core.DetectNaive(rec, details).Sandwich, actual)
	}
	return ab
}

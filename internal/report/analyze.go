// Package report turns a collected dataset into the paper's results: the
// headline statistics (H1–H15 in DESIGN.md), the per-day series behind
// Figures 1 and 2, and the distributions behind Figures 3 and 4 — plus
// text renderers that print them as aligned tables and CSV.
package report

import (
	"jitomev/internal/collector"
	"jitomev/internal/core"
	"jitomev/internal/jito"
	"jitomev/internal/obs"
	"jitomev/internal/parallel"
	"jitomev/internal/stats"
)

// Results holds every statistic the reproduction reports.
type Results struct {
	// Dataset scope.
	Days           int
	TotalBundles   uint64
	TotalTxs       uint64
	DuplicateRate  float64
	OverlapRate    float64
	PollCount      uint64
	DetailRequests uint64

	// Sandwiching (§4.1 / Figures 2–3).
	Len3Bundles     uint64
	Len3WithDetails uint64
	Sandwiches      uint64
	SandwichesNoSOL uint64 // detected but excluded from $ quantification
	VictimLossSOL   float64
	AttackerGainSOL float64
	SandwichShare   float64 // of all collected bundles (paper: 0.038%)

	// Defensive bundling (§4.2 / Figure 4).
	Defense core.DefenseStats

	// Rejections by criterion, for the methodology table.
	Rejections map[core.Criterion]uint64

	// Per-day series (Figures 1–2). Indexed by study day.
	BundlesByDay  map[int]*collector.DayAgg
	AttacksByDay  *stats.TimeSeries
	LossSOLByDay  *stats.TimeSeries
	GainSOLByDay  *stats.TimeSeries
	DefenseByDay  *stats.TimeSeries
	CollectedDays []int

	// Distributions (Figures 3–4).
	LossUSD      *stats.ECDF         // per-victim USD loss, SOL-leg sandwiches
	TipsLen1     *stats.LogHistogram // all length-1 bundles
	TipsLen3     *stats.LogHistogram // all length-3 bundles
	TipsSandwich *stats.ECDF         // detected sandwich bundles

	// SOLPriceUSD used for dollar conversions.
	SOLPriceUSD float64

	// Verdicts retains every positive verdict for downstream inspection.
	Verdicts []core.Verdict

	// Extended detection over retained length-4/5 bundles. Zero under the
	// paper's length-3-only collection economy; populated when the study
	// widens detail collection to quantify the paper's lower-bound gap.
	LongBundlesScanned  uint64
	DisguisedSandwiches uint64
	DisguisedVerdicts   []core.Verdict
}

// Analyze runs the detector over a collected dataset and computes every
// reported statistic, sharding the detection pass across all cores.
// solPriceUSD ≤ 0 selects the paper's $242 rate. Equivalent to
// AnalyzeN(data, det, solPriceUSD, 0).
func Analyze(data *collector.Dataset, det *core.Detector, solPriceUSD float64) *Results {
	return AnalyzeN(data, det, solPriceUSD, 0)
}

// verdictEst sizes the sandwich-verdict preallocation from the length-3
// population: sandwiches are a small share of length-3 bundles (the paper
// measured ~1–2%), so 1/16 of the population plus slack avoids regrowth
// in practice without over-reserving at large scales.
func verdictEst(n int) int { return n/16 + 8 }

// hit is one positive verdict with its study day, recorded by a detection
// shard in index order and replayed by the deterministic fan-in.
type hit struct {
	v   core.Verdict
	day int
}

// len3Shard is one shard's partial result over data.Len3.
type len3Shard struct {
	withDetails uint64
	rejections  [core.NumCriteria]uint64
	hits        []hit
}

// longShard is one shard's partial result over data.Long.
type longShard struct {
	scanned  uint64
	verdicts []core.Verdict
}

// AnalyzeN is Analyze with an explicit worker count: 0 selects
// GOMAXPROCS, 1 runs the legacy single-core pass (kept as the reference
// implementation), and any other count shards data.Len3 and data.Long
// across that many workers. Detection — the hot, pure per-bundle work —
// runs in the shards; every statistic that cares about order (verdict
// ordering, float accumulation into totals, time series and ECDF
// samples) is replayed on the calling goroutine in shard order, so the
// Results are identical at every worker count, bit for bit.
func AnalyzeN(data *collector.Dataset, det *core.Detector, solPriceUSD float64, workers int) *Results {
	return AnalyzeObs(data, det, solPriceUSD, workers, nil)
}

// AnalyzeObs is AnalyzeN publishing the detection pass onto reg (nil =
// uninstrumented): per-criterion rejection counters
// (detect_rejections_total{criterion=…}), sandwich/disguised tallies,
// and pipeline spans timing the length-3 and extended stages. All
// counter values are deterministic at any worker count — the shard
// fan-in replays the serial order — so they sit in the deterministic
// snapshot; only the stage durations are volatile.
func AnalyzeObs(data *collector.Dataset, det *core.Detector, solPriceUSD float64, workers int, reg *obs.Registry) *Results {
	workers = parallel.Workers(workers)
	if solPriceUSD <= 0 {
		solPriceUSD = stats.SOLPriceUSD
	}
	r := &Results{
		TotalBundles:  data.Collected,
		Len3Bundles:   uint64(len(data.Len3)),
		BundlesByDay:  data.Days,
		AttacksByDay:  stats.NewTimeSeries(),
		LossSOLByDay:  stats.NewTimeSeries(),
		GainSOLByDay:  stats.NewTimeSeries(),
		DefenseByDay:  stats.NewTimeSeries(),
		CollectedDays: data.SortedDays(),
		TipsLen1:      data.TipsLen1,
		TipsLen3:      data.TipsLen3,
		SOLPriceUSD:   solPriceUSD,
	}
	if data.Duplicates+data.Collected > 0 {
		r.DuplicateRate = float64(data.Duplicates) / float64(data.Duplicates+data.Collected)
	}

	for day, agg := range data.Days {
		r.TotalTxs += agg.Txs
		r.Defense.SingleTxBundles += agg.DefensiveCount + agg.PriorityCount
		r.Defense.Defensive += agg.DefensiveCount
		r.Defense.Priority += agg.PriorityCount
		r.Defense.DefensiveSpendLamports += agg.DefensiveSpend
		r.DefenseByDay.Add(day, float64(agg.DefensiveCount))
	}
	if len(r.CollectedDays) > 0 {
		r.Days = r.CollectedDays[len(r.CollectedDays)-1] + 1
	}

	est := verdictEst(len(data.Len3))
	r.Verdicts = make([]core.Verdict, 0, est)
	lossUSD := make([]float64, 0, est)
	sandwichTips := make([]float64, 0, est)
	var rejections [core.NumCriteria]uint64

	// record folds one positive verdict into the results. Both the serial
	// pass and the parallel fan-in call it in bundle index order, which
	// pins verdict ordering and float accumulation order to the serial
	// reference exactly.
	record := func(v core.Verdict, day int) {
		r.Sandwiches++
		r.Verdicts = append(r.Verdicts, v)
		r.AttacksByDay.Add(day, 1)
		sandwichTips = append(sandwichTips, float64(v.TipLamports))
		if !v.HasSOL {
			r.SandwichesNoSOL++
			return
		}
		lossSOL := v.VictimLossLamports / 1e9
		gainSOL := v.AttackerGainLamports / 1e9
		r.VictimLossSOL += lossSOL
		r.AttackerGainSOL += gainSOL
		r.LossSOLByDay.Add(day, lossSOL)
		r.GainSOLByDay.Add(day, gainSOL)
		lossUSD = append(lossUSD, lossSOL*solPriceUSD)
	}

	span := reg.StartSpan("analyze_len3")
	span.AddItems(len(data.Len3))
	if workers == 1 {
		// Serial reference pass.
		var scratch []jito.TxDetail
		for i := range data.Len3 {
			rec := &data.Len3[i]
			var ok bool
			scratch, ok = data.AppendDetails(scratch[:0], rec)
			if !ok {
				continue
			}
			r.Len3WithDetails++
			v := det.Detect(rec, scratch)
			if !v.Sandwich {
				rejections[v.Failed]++
				continue
			}
			record(v, data.Clock.DayOf(rec.Slot))
		}
	} else {
		// Sharded pass: workers run the pure per-bundle detection over
		// contiguous index ranges; the fan-in replays hits in shard order.
		parallel.MapReduceObs(reg, "analyze_len3", workers, len(data.Len3),
			func(lo, hi int) len3Shard {
				var sh len3Shard
				var scratch []jito.TxDetail
				for i := lo; i < hi; i++ {
					rec := &data.Len3[i]
					var ok bool
					scratch, ok = data.AppendDetails(scratch[:0], rec)
					if !ok {
						continue
					}
					sh.withDetails++
					v := det.Detect(rec, scratch)
					if !v.Sandwich {
						sh.rejections[v.Failed]++
						continue
					}
					sh.hits = append(sh.hits, hit{v: v, day: data.Clock.DayOf(rec.Slot)})
				}
				return sh
			},
			func(sh len3Shard) {
				r.Len3WithDetails += sh.withDetails
				for c, n := range sh.rejections {
					rejections[c] += n
				}
				for _, h := range sh.hits {
					record(h.v, h.day)
				}
			})
	}

	span.End()

	// Extended pass over retained longer bundles: recover disguised
	// sandwiches the length-3 methodology misses by construction.
	span = reg.StartSpan("analyze_extended")
	span.AddItems(len(data.Long))
	if workers == 1 {
		var scratch []jito.TxDetail
		for i := range data.Long {
			rec := &data.Long[i]
			var ok bool
			scratch, ok = data.AppendDetails(scratch[:0], rec)
			if !ok {
				continue
			}
			r.LongBundlesScanned++
			ev := det.DetectExtended(rec, scratch)
			for _, v := range ev.Sandwiches {
				r.DisguisedSandwiches++
				r.DisguisedVerdicts = append(r.DisguisedVerdicts, v)
			}
		}
	} else {
		parallel.MapReduceObs(reg, "analyze_extended", workers, len(data.Long),
			func(lo, hi int) longShard {
				var sh longShard
				var scratch []jito.TxDetail
				for i := lo; i < hi; i++ {
					rec := &data.Long[i]
					var ok bool
					scratch, ok = data.AppendDetails(scratch[:0], rec)
					if !ok {
						continue
					}
					sh.scanned++
					ev := det.DetectExtended(rec, scratch)
					sh.verdicts = append(sh.verdicts, ev.Sandwiches...)
				}
				return sh
			},
			func(sh longShard) {
				r.LongBundlesScanned += sh.scanned
				for _, v := range sh.verdicts {
					r.DisguisedSandwiches++
					r.DisguisedVerdicts = append(r.DisguisedVerdicts, v)
				}
			})
	}

	span.End()

	// Export the fixed-size rejection tally as the map the boundary (and
	// renderers) expect; the serial map never held zero-count entries, so
	// only observed criteria cross over.
	r.Rejections = make(map[core.Criterion]uint64, core.NumCriteria)
	for c, n := range rejections {
		if n > 0 {
			r.Rejections[core.Criterion(c)] = n
		}
	}
	if reg != nil {
		reg.Help("detect_rejections_total", "Length-3 bundles rejected by the detector, by first failed criterion.")
		for c := core.Criterion(1); c < core.Criterion(core.NumCriteria); c++ {
			reg.Counter("detect_rejections_total", "criterion", c.String()).Add(rejections[c])
		}
		reg.Counter("detect_len3_with_details_total").Add(r.Len3WithDetails)
		reg.Counter("detect_sandwiches_total").Add(r.Sandwiches)
		reg.Counter("detect_sandwiches_no_sol_total").Add(r.SandwichesNoSOL)
		reg.Counter("detect_disguised_sandwiches_total").Add(r.DisguisedSandwiches)
		reg.Counter("detect_long_bundles_scanned_total").Add(r.LongBundlesScanned)
	}

	if r.TotalBundles > 0 {
		r.SandwichShare = float64(r.Sandwiches) / float64(r.TotalBundles)
	}
	r.LossUSD = stats.NewECDF(lossUSD)
	r.TipsSandwich = stats.NewECDF(sandwichTips)
	return r
}

// DisguisedLossUSD sums the victim losses of disguised (length>3)
// sandwiches — value the paper's lower bound leaves on the table.
func (r *Results) DisguisedLossUSD() float64 {
	var sum float64
	for _, v := range r.DisguisedVerdicts {
		sum += v.VictimLossLamports / 1e9 * r.SOLPriceUSD
	}
	return sum
}

// VictimLossUSD converts the aggregate loss to dollars.
func (r *Results) VictimLossUSD() float64 { return r.VictimLossSOL * r.SOLPriceUSD }

// AttackerGainUSD converts the aggregate gain to dollars.
func (r *Results) AttackerGainUSD() float64 { return r.AttackerGainSOL * r.SOLPriceUSD }

// DefensiveSpendUSD converts the defensive tip spend to dollars.
func (r *Results) DefensiveSpendUSD() float64 {
	return stats.LamportsToUSD(float64(r.Defense.DefensiveSpendLamports), r.SOLPriceUSD)
}

// NoSOLShare is the fraction of sandwiches without a SOL leg (paper: 28%).
func (r *Results) NoSOLShare() float64 {
	if r.Sandwiches == 0 {
		return 0
	}
	return float64(r.SandwichesNoSOL) / float64(r.Sandwiches)
}

// AblationResult compares the full detector against the naive baseline on
// ground-truth-labeled data.
type AblationResult struct {
	Full  core.Confusion
	Naive core.Confusion
}

// Truther resolves ground-truth sandwich labels; satisfied by
// *workload.GroundTruth via a tiny adapter to avoid a package cycle.
type Truther interface {
	IsSandwich(id jito.BundleID) bool
}

// Ablate runs both detectors over the dataset and scores them against
// ground truth, sharding across all cores. Only length-3 bundles with
// fetched details participate (both detectors see identical inputs).
// Equivalent to AblateN(data, det, truth, 0).
func Ablate(data *collector.Dataset, det *core.Detector, truth Truther) AblationResult {
	return AblateN(data, det, truth, 0)
}

// AblateN is Ablate with an explicit worker count (0 = GOMAXPROCS,
// 1 = serial reference). Confusion counts are integers, so the sharded
// tally is identical to the serial one at any worker count. truth must
// be safe for concurrent reads (both ground-truth implementations are
// read-only after the study runs).
func AblateN(data *collector.Dataset, det *core.Detector, truth Truther, workers int) AblationResult {
	var ab AblationResult
	scoreRange := func(lo, hi int) AblationResult {
		var part AblationResult
		var scratch []jito.TxDetail
		for i := lo; i < hi; i++ {
			rec := &data.Len3[i]
			var ok bool
			scratch, ok = data.AppendDetails(scratch[:0], rec)
			if !ok {
				continue
			}
			actual := truth.IsSandwich(rec.ID)
			part.Full.Observe(det.Detect(rec, scratch).Sandwich, actual)
			part.Naive.Observe(core.DetectNaive(rec, scratch).Sandwich, actual)
		}
		return part
	}
	parallel.MapReduce(workers, len(data.Len3), scoreRange, func(part AblationResult) {
		ab.Full.Merge(part.Full)
		ab.Naive.Merge(part.Naive)
	})
	return ab
}

package report

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"jitomev/internal/collector"
	"jitomev/internal/core"
	"jitomev/internal/jito"
	"jitomev/internal/solana"
)

var clock = solana.Clock{Genesis: time.Date(2025, 2, 9, 0, 0, 0, 0, time.UTC)}

var (
	attacker = solana.NewKeypairFromSeed("r/attacker").Pubkey()
	victim   = solana.NewKeypairFromSeed("r/victim").Pubkey()
	memeMint = solana.NewKeypairFromSeed("r/meme").Pubkey()
)

// sandwichBundle fabricates a detectable length-3 sandwich at slot.
func sandwichBundle(i int, slot solana.Slot, tip uint64) (jito.BundleRecord, []jito.TxDetail) {
	mk := func(j int) solana.Signature {
		var s solana.Signature
		s[0], s[1], s[2] = byte(i), byte(i>>8), byte(j)
		return s
	}
	sol := solanaSOLMint()
	details := []jito.TxDetail{
		{Sig: mk(0), Signer: attacker, Slot: slot, TokenDeltas: []jito.TokenDelta{
			{Owner: attacker, Mint: sol, Delta: -10_000_000_000},
			{Owner: attacker, Mint: memeMint, Delta: 10_000},
		}},
		{Sig: mk(1), Signer: victim, Slot: slot, TokenDeltas: []jito.TokenDelta{
			{Owner: victim, Mint: sol, Delta: -1_000_000_000_000},
			{Owner: victim, Mint: memeMint, Delta: 900_000},
		}},
		{Sig: mk(2), Signer: attacker, Slot: slot, TokenDeltas: []jito.TokenDelta{
			{Owner: attacker, Mint: memeMint, Delta: -10_000},
			{Owner: attacker, Mint: solanaSOLMint(), Delta: 11_000_000_000},
		}},
	}
	rec := jito.BundleRecord{Slot: slot, TipLamps: tip,
		TxIDs: []solana.Signature{mk(0), mk(1), mk(2)}}
	rec.ID[0], rec.ID[1] = byte(i), byte(i>>8)
	return rec, details
}

func solanaSOLMint() solana.Pubkey {
	return solana.NewKeypairFromSeed("mint/wSOL").Pubkey()
}

// benignBundle fabricates a length-3 arb (same signer throughout).
func benignBundle(i int, slot solana.Slot) (jito.BundleRecord, []jito.TxDetail) {
	rec, details := sandwichBundle(i, slot, 1_000)
	for j := range details {
		details[j].Signer = attacker
		for k := range details[j].TokenDeltas {
			details[j].TokenDeltas[k].Owner = attacker
		}
	}
	return rec, details
}

func buildDataset(t *testing.T) *collector.Dataset {
	t.Helper()
	d := collector.NewDataset(clock, 1_000)

	// Length-1 bundles across two days: defensive and priority.
	for i := 0; i < 80; i++ {
		var sig solana.Signature
		sig[0], sig[1] = byte(i), 0xAA
		tip := uint64(2_000)
		if i%10 == 0 {
			tip = 500_000
		}
		slot := solana.Slot(i)
		if i >= 40 {
			slot += solana.SlotsPerDay
		}
		rec := jito.BundleRecord{Slot: slot, TipLamps: tip, TxIDs: []solana.Signature{sig}}
		rec.ID[0], rec.ID[1] = byte(i), 0xBB
		d.Ingest(rec)
	}
	// Sandwiches: 3 on day 0, 1 on day 1.
	for i := 0; i < 4; i++ {
		slot := solana.Slot(100 + i)
		if i == 3 {
			slot += solana.SlotsPerDay
		}
		rec, details := sandwichBundle(1000+i, slot, 2_000_000)
		d.Ingest(rec)
		for _, det := range details {
			d.Details[det.Sig] = det
		}
	}
	// Benign length-3.
	for i := 0; i < 6; i++ {
		rec, details := benignBundle(2000+i, solana.Slot(200+i))
		d.Ingest(rec)
		for _, det := range details {
			d.Details[det.Sig] = det
		}
	}
	return d
}

func TestAnalyzeCounts(t *testing.T) {
	d := buildDataset(t)
	r := Analyze(d, core.NewDefaultDetector(), 0)

	if r.TotalBundles != 90 {
		t.Errorf("TotalBundles = %d", r.TotalBundles)
	}
	if r.Sandwiches != 4 {
		t.Errorf("Sandwiches = %d", r.Sandwiches)
	}
	if r.Len3Bundles != 10 || r.Len3WithDetails != 10 {
		t.Errorf("len3 = %d/%d", r.Len3Bundles, r.Len3WithDetails)
	}
	if r.SandwichesNoSOL != 0 {
		t.Errorf("NoSOL = %d", r.SandwichesNoSOL)
	}
	// Each fabricated sandwich: victim lost 100 SOL, attacker gained 1.
	if r.VictimLossSOL < 399 || r.VictimLossSOL > 401 {
		t.Errorf("VictimLossSOL = %f", r.VictimLossSOL)
	}
	if r.AttackerGainSOL < 3.99 || r.AttackerGainSOL > 4.01 {
		t.Errorf("AttackerGainSOL = %f", r.AttackerGainSOL)
	}
	if r.VictimLossUSD() != r.VictimLossSOL*242 {
		t.Error("USD conversion wrong")
	}
	// Per-day series.
	if r.AttacksByDay.Get(0) != 3 || r.AttacksByDay.Get(1) != 1 {
		t.Errorf("attacks/day = %v/%v", r.AttacksByDay.Get(0), r.AttacksByDay.Get(1))
	}
	// Defensive: 72 of 80 len-1 bundles carry 2,000-lamport tips.
	if r.Defense.Defensive != 72 || r.Defense.Priority != 8 {
		t.Errorf("defense %+v", r.Defense)
	}
	if r.Defense.DefensiveShare() != 0.9 {
		t.Errorf("share = %f", r.Defense.DefensiveShare())
	}
	// Benign arbs rejected on C1.
	if r.Rejections[core.CritSigners] != 6 {
		t.Errorf("rejections = %v", r.Rejections)
	}
	if r.SandwichShare < 0.044 || r.SandwichShare > 0.045 {
		t.Errorf("share = %f", r.SandwichShare)
	}
	// Median loss: all four identical at 100 SOL = $24,200.
	if got := r.LossUSD.Quantile(0.5); got != 100*242 {
		t.Errorf("median loss = %f", got)
	}
}

func TestAnalyzeSkipsMissingDetails(t *testing.T) {
	d := collector.NewDataset(clock, 100)
	rec, _ := sandwichBundle(1, 10, 1_000) // details never stored
	d.Ingest(rec)
	r := Analyze(d, core.NewDefaultDetector(), 0)
	if r.Len3WithDetails != 0 || r.Sandwiches != 0 {
		t.Error("bundle without details was analyzed")
	}
}

func TestRenderersContainKeyFacts(t *testing.T) {
	d := buildDataset(t)
	r := Analyze(d, core.NewDefaultDetector(), 0)
	var buf bytes.Buffer

	RenderHeadline(&buf, r, 2000)
	if !strings.Contains(buf.String(), "521,903") {
		t.Error("headline missing paper reference values")
	}

	buf.Reset()
	RenderFigure1(&buf, r, func(day int) bool { return day == 1 })
	if !strings.Contains(buf.String(), "outage") {
		t.Error("figure 1 missing outage marks")
	}

	buf.Reset()
	RenderFigure3(&buf, r, 10)
	if !strings.Contains(buf.String(), "median=$24200.00") {
		t.Errorf("figure 3 median missing:\n%s", buf.String())
	}

	buf.Reset()
	RenderFigure4(&buf, r)
	if !strings.Contains(buf.String(), "defensive") {
		t.Error("figure 4 missing defensive share line")
	}

	buf.Reset()
	WriteCSV(&buf, r, nil)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 { // header + 2 days
		t.Errorf("CSV lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "day,len1") {
		t.Error("CSV header wrong")
	}
}

func TestRenderTable1Executes(t *testing.T) {
	var buf bytes.Buffer
	RenderTable1(&buf)
	out := buf.String()
	for _, want := range []string{"ATTACKER", "NORMAL", "BUY", "SELL", "sandwich=true"} {
		if !strings.Contains(out, want) {
			t.Errorf("table 1 output missing %q:\n%s", want, out)
		}
	}
}

type fakeTruth map[jito.BundleID]bool

func (f fakeTruth) IsSandwich(id jito.BundleID) bool { return f[id] }

func TestAblate(t *testing.T) {
	d := collector.NewDataset(clock, 100)
	truth := fakeTruth{}

	rec, details := sandwichBundle(1, 10, 2_000_000)
	d.Ingest(rec)
	for _, det := range details {
		d.Details[det.Sig] = det
	}
	truth[rec.ID] = true

	// A tip-only-final app bundle: naive flags it, full does not.
	rec2, details2 := sandwichBundle(2, 11, 5_000)
	details2[2] = jito.TxDetail{Sig: details2[2].Sig, Signer: attacker, TipOnly: true}
	d.Ingest(rec2)
	for _, det := range details2 {
		d.Details[det.Sig] = det
	}

	ab := Ablate(d, core.NewDefaultDetector(), truth)
	if ab.Full.TruePositive != 1 || ab.Full.FalsePositive != 0 {
		t.Errorf("full confusion %+v", ab.Full)
	}
	if ab.Naive.FalsePositive != 1 {
		t.Errorf("naive confusion %+v", ab.Naive)
	}

	var buf bytes.Buffer
	RenderAblation(&buf, ab)
	if !strings.Contains(buf.String(), "naive A-B-A baseline") {
		t.Error("ablation render incomplete")
	}
}

package report

import (
	"reflect"
	"runtime"
	"sync"
	"testing"

	"jitomev/internal/collector"
	"jitomev/internal/core"
	"jitomev/internal/explorer"
	"jitomev/internal/jito"
	"jitomev/internal/workload"
)

var studyOnce sync.Once
var studyData *collector.Dataset
var studyGT *workload.GroundTruth

// buildStudyDataset runs a seeded 10-day study through the real store +
// collector pipeline (with length-4/5 retention so the extended pass has
// work) and returns the collected dataset plus the ground truth. Built
// once and shared: every consumer treats the dataset as read-only.
func buildStudyDataset(tb testing.TB) (*collector.Dataset, *workload.GroundTruth) {
	tb.Helper()
	studyOnce.Do(func() {
		st := workload.New(workload.Params{Seed: 7, Days: 10, Scale: 20_000})
		store := explorer.NewStore()
		store.RetainDetailsFor(3, 4, 5)
		coll := collector.New(collector.Config{DetailLengths: []int{4, 5}},
			st.P.Clock(), collector.Direct{Store: store})
		sink := &collector.PollingSink{Store: store, Collector: coll, InOutage: st.P.InOutage}
		st.Run(sink)
		if _, err := coll.FetchDetails(); err != nil {
			panic(err)
		}
		studyData, studyGT = coll.Data, st.GT
	})
	return studyData, studyGT
}

type gtTruth struct{ gt *workload.GroundTruth }

func (t gtTruth) IsSandwich(id jito.BundleID) bool {
	return t.gt.Lookup(id).Label == workload.LabelSandwich
}

// TestAnalyzeDeterministicAcrossWorkers is the tentpole's fidelity
// contract: the sharded analysis pass must reproduce the serial
// reference pass exactly — verdict order, rejection tallies, per-day
// float series, ECDF samples — at every worker count.
func TestAnalyzeDeterministicAcrossWorkers(t *testing.T) {
	data, _ := buildStudyDataset(t)
	det := core.NewDefaultDetector()

	ref := AnalyzeN(data, det, 0, 1)
	if ref.Sandwiches == 0 {
		t.Fatal("study produced no sandwiches; determinism test is vacuous")
	}
	if len(ref.Rejections) == 0 {
		t.Fatal("study produced no rejections; determinism test is vacuous")
	}

	for _, w := range []int{2, 4, runtime.GOMAXPROCS(0), 0, 13} {
		got := AnalyzeN(data, det, 0, w)
		if !reflect.DeepEqual(ref, got) {
			t.Errorf("workers=%d: Results diverge from serial reference", w)
			if !reflect.DeepEqual(ref.Verdicts, got.Verdicts) {
				t.Errorf("workers=%d: verdict order differs (%d vs %d)", w, len(ref.Verdicts), len(got.Verdicts))
			}
			if !reflect.DeepEqual(ref.Rejections, got.Rejections) {
				t.Errorf("workers=%d: rejections %v vs %v", w, ref.Rejections, got.Rejections)
			}
			if ref.VictimLossSOL != got.VictimLossSOL {
				t.Errorf("workers=%d: VictimLossSOL %v vs %v — float accumulation order leaked", w, ref.VictimLossSOL, got.VictimLossSOL)
			}
			if !reflect.DeepEqual(ref.LossSOLByDay, got.LossSOLByDay) {
				t.Errorf("workers=%d: per-day loss series differs", w)
			}
			if !reflect.DeepEqual(ref.LossUSD, got.LossUSD) {
				t.Errorf("workers=%d: loss ECDF differs", w)
			}
		}
	}
}

// TestAnalyzeDeterministicExtended pins the sharded extended pass (the
// data.Long scan) to its serial reference as well.
func TestAnalyzeDeterministicExtended(t *testing.T) {
	data, _ := buildStudyDataset(t)
	det := core.NewDefaultDetector()
	ref := AnalyzeN(data, det, 0, 1)
	if ref.LongBundlesScanned == 0 {
		t.Fatal("no length-4/5 bundles retained; extended determinism test is vacuous")
	}
	got := AnalyzeN(data, det, 0, 4)
	if ref.LongBundlesScanned != got.LongBundlesScanned {
		t.Errorf("LongBundlesScanned %d vs %d", ref.LongBundlesScanned, got.LongBundlesScanned)
	}
	if ref.DisguisedSandwiches != got.DisguisedSandwiches {
		t.Errorf("DisguisedSandwiches %d vs %d", ref.DisguisedSandwiches, got.DisguisedSandwiches)
	}
	if !reflect.DeepEqual(ref.DisguisedVerdicts, got.DisguisedVerdicts) {
		t.Error("disguised verdict order differs between serial and sharded pass")
	}
}

// TestAblateDeterministicAcrossWorkers pins the sharded ablation tally to
// the serial one.
func TestAblateDeterministicAcrossWorkers(t *testing.T) {
	data, gt := buildStudyDataset(t)
	det := core.NewDefaultDetector()
	truth := gtTruth{gt}

	ref := AblateN(data, det, truth, 1)
	if ref.Full.TruePositive == 0 {
		t.Fatal("ablation found no true positives; determinism test is vacuous")
	}
	for _, w := range []int{2, 4, 0} {
		if got := AblateN(data, det, truth, w); got != ref {
			t.Errorf("workers=%d: ablation %+v diverges from serial %+v", w, got, ref)
		}
	}
}

// TestAnalyzeMatchesLegacySemantics re-runs the fixture-based count
// assertions through an explicitly sharded pass, guarding the map→array
// rejection refactor and the preallocated slices against semantic drift.
func TestAnalyzeMatchesLegacySemantics(t *testing.T) {
	d := buildDataset(t)
	r := AnalyzeN(d, core.NewDefaultDetector(), 0, 4)
	if r.Sandwiches != 4 {
		t.Errorf("Sandwiches = %d", r.Sandwiches)
	}
	if r.Rejections[core.CritSigners] != 6 {
		t.Errorf("rejections = %v", r.Rejections)
	}
	if _, ok := r.Rejections[core.CritNone]; ok {
		t.Error("zero-count criterion leaked into the exported map")
	}
	if r.LossUSD.Quantile(0.5) != 100*242 {
		t.Errorf("median loss = %f", r.LossUSD.Quantile(0.5))
	}
}

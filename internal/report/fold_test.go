package report

import (
	"reflect"
	"testing"

	"jitomev/internal/collector"
	"jitomev/internal/core"
	"jitomev/internal/solana"
	"jitomev/internal/stats"
)

// TestFinishWithNoFolds: an accumulator that never saw a record still
// produces a fully-formed, render-safe Results — non-nil series, ECDFs
// and rejection map, zero counts, no division by zero.
func TestFinishWithNoFolds(t *testing.T) {
	det := core.NewDefaultDetector()
	r := NewAccumulator(det, 0, Scope{Clock: solana.Clock{}}).Finish(nil)

	if r.Sandwiches != 0 || r.TotalBundles != 0 || r.Len3WithDetails != 0 {
		t.Errorf("empty accumulator produced counts: %d sandwiches, %d bundles", r.Sandwiches, r.TotalBundles)
	}
	if r.Rejections == nil {
		t.Error("Rejections map is nil")
	}
	if len(r.Rejections) != 0 {
		t.Errorf("empty fold recorded rejections: %v", r.Rejections)
	}
	if r.Verdicts == nil {
		t.Error("Verdicts slice is nil")
	}
	if r.LossUSD == nil || r.TipsSandwich == nil {
		t.Error("ECDFs are nil")
	}
	if r.AttacksByDay == nil || r.DefenseByDay == nil {
		t.Error("time series are nil")
	}
	if r.SandwichShare != 0 {
		t.Errorf("SandwichShare = %v over zero bundles", r.SandwichShare)
	}
	if r.SOLPriceUSD != stats.SOLPriceUSD {
		t.Errorf("SOLPriceUSD = %v, want the paper default", r.SOLPriceUSD)
	}
}

// TestLiveAccumulatorMatchesBatchConstruction: NewAccumulator is
// NewLiveAccumulator + SeedScope plus capacity hints; given the same
// scope and no folds, Finish must be bit-identical — the property the
// streaming engine's deferred scope seeding rests on.
func TestLiveAccumulatorMatchesBatchConstruction(t *testing.T) {
	det := core.NewDefaultDetector()
	clock := solana.Clock{}
	days := map[int]*collector.DayAgg{
		0: {Bundles: 10, Txs: 17, DefensiveCount: 4, PriorityCount: 2, DefensiveSpend: 40_000},
		2: {Bundles: 5, Txs: 9, DefensiveCount: 1, PriorityCount: 1, DefensiveSpend: 9_000},
	}
	tips1, tips3 := stats.NewTipHistogram(), stats.NewTipHistogram()
	tips1.Add(5_000)
	tips3.Add(1_200)
	sc := Scope{
		Clock: clock, Days: days, TipsLen1: tips1, TipsLen3: tips3,
		Collected: 15, Duplicates: 3, Len3Bundles: 2,
	}

	batch := NewAccumulator(det, 0, sc).Finish(nil)

	live := NewLiveAccumulator(det, 0, clock)
	live.SeedScope(sc)
	got := live.Finish(nil)

	if !reflect.DeepEqual(batch, got) {
		t.Error("live construction diverges from batch construction")
		rv, gv := reflect.ValueOf(*batch), reflect.ValueOf(*got)
		for i := 0; i < rv.NumField(); i++ {
			if !reflect.DeepEqual(rv.Field(i).Interface(), gv.Field(i).Interface()) {
				t.Errorf("  field %s differs", rv.Type().Field(i).Name)
			}
		}
	}
}

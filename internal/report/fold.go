package report

import (
	"sort"

	"jitomev/internal/collector"
	"jitomev/internal/core"
	"jitomev/internal/jito"
	"jitomev/internal/obs"
	"jitomev/internal/solana"
	"jitomev/internal/stats"
)

// This file holds the detection fold shared by the in-memory analysis
// (AnalyzeObs) and the out-of-core streaming engine (internal/query).
// Both drive the same Accumulator: detection — the pure per-bundle work —
// runs in Detect* calls that are safe to issue concurrently over disjoint
// record ranges, while every order-sensitive statistic (verdict ordering,
// float accumulation, time-series and ECDF samples) is folded by Fold*
// calls issued on one goroutine in record index order. Feeding the same
// records through in the same order therefore yields bit-identical
// Results whether they came from a resident Dataset or from decoded
// snapshot shards.

// DetailSource resolves record i's aligned transaction details into
// scratch, reporting whether every member's detail is present — the
// all-or-nothing contract of collector.Dataset.AppendDetails and
// snapshot.Batch.AppendDetails, the two implementations. The index is
// relative to the record slice handed to the same Detect call. On false,
// the returned slice is unspecified scratch and must not be interpreted.
type DetailSource func(i int, scratch []jito.TxDetail) ([]jito.TxDetail, bool)

// Scope seeds an Accumulator with the dataset-level aggregates that need
// no detection pass: collection scalars, the per-day aggregates, and the
// tip histograms. A streaming reader obtains all of these from a
// snapshot's header sections before any shard is decoded.
type Scope struct {
	Clock              solana.Clock
	Days               map[int]*collector.DayAgg
	TipsLen1, TipsLen3 *stats.LogHistogram
	Collected          uint64
	Duplicates         uint64
	Len3Bundles        uint64 // length-3 records in scope (sizes preallocations)
}

// Accumulator folds detection output into Results. Construct with
// NewAccumulator, feed DetectLen3/DetectLong partials to FoldLen3/
// FoldLong in record index order, then call Finish exactly once.
// Detect* methods only read the detector and clock and may run
// concurrently; Fold* and Finish must stay on a single goroutine.
type Accumulator struct {
	r          *Results
	det        *core.Detector
	clock      solana.Clock
	rejections [core.NumCriteria]uint64

	lossUSD      []float64
	sandwichTips []float64

	restricted bool
	dayLo      int
	dayHi      int
}

// NewAccumulator builds the Results skeleton from sc and returns the
// accumulator that will fill in the detection-derived statistics.
// solPriceUSD ≤ 0 selects the paper's rate.
func NewAccumulator(det *core.Detector, solPriceUSD float64, sc Scope) *Accumulator {
	a := NewLiveAccumulator(det, solPriceUSD, sc.Clock)
	// Size the verdict buffers from the known length-3 population —
	// a capacity-only improvement over the live path's lazy growth.
	est := verdictEst(int(sc.Len3Bundles))
	a.r.Verdicts = make([]core.Verdict, 0, est)
	a.lossUSD = make([]float64, 0, est)
	a.sandwichTips = make([]float64, 0, est)
	a.SeedScope(sc)
	return a
}

// NewLiveAccumulator builds an accumulator whose Scope is not known yet —
// the shape of an incremental feed, where collection aggregates are still
// accumulating while detection folds run. The clock must be supplied up
// front (Detect* maps slots to study days); everything else arrives via
// SeedScope, which must be called exactly once before Finish. Fold order
// and scope seeding touch disjoint Results fields, so an accumulator
// built this way produces bit-identical Results to NewAccumulator over
// the same records and the same final Scope.
func NewLiveAccumulator(det *core.Detector, solPriceUSD float64, clock solana.Clock) *Accumulator {
	if solPriceUSD <= 0 {
		solPriceUSD = stats.SOLPriceUSD
	}
	est := verdictEst(0)
	r := &Results{
		AttacksByDay: stats.NewTimeSeries(),
		LossSOLByDay: stats.NewTimeSeries(),
		GainSOLByDay: stats.NewTimeSeries(),
		DefenseByDay: stats.NewTimeSeries(),
		SOLPriceUSD:  solPriceUSD,
		Verdicts:     make([]core.Verdict, 0, est),
	}
	return &Accumulator{
		r:            r,
		det:          det,
		clock:        clock,
		lossUSD:      make([]float64, 0, est),
		sandwichTips: make([]float64, 0, est),
	}
}

// SeedScope folds the dataset-level aggregates into the results. Called
// by NewAccumulator at construction; a live accumulator calls it once the
// feed has completed, any time before Finish. The fields it writes are
// disjoint from everything Fold* touches, so its ordering relative to the
// folds cannot perturb the output.
func (a *Accumulator) SeedScope(sc Scope) {
	r := a.r
	r.TotalBundles = sc.Collected
	r.Len3Bundles = sc.Len3Bundles
	r.BundlesByDay = sc.Days
	r.CollectedDays = sortedDays(sc.Days)
	r.TipsLen1 = sc.TipsLen1
	r.TipsLen3 = sc.TipsLen3
	if sc.Duplicates+sc.Collected > 0 {
		r.DuplicateRate = float64(sc.Duplicates) / float64(sc.Duplicates+sc.Collected)
	}
	for day, agg := range sc.Days {
		r.TotalTxs += agg.Txs
		r.Defense.SingleTxBundles += agg.DefensiveCount + agg.PriorityCount
		r.Defense.Defensive += agg.DefensiveCount
		r.Defense.Priority += agg.PriorityCount
		r.Defense.DefensiveSpendLamports += agg.DefensiveSpend
		r.DefenseByDay.Add(day, float64(agg.DefensiveCount))
	}
	if len(r.CollectedDays) > 0 {
		r.Days = r.CollectedDays[len(r.CollectedDays)-1] + 1
	}
}

// Clock returns the chain clock the accumulator maps slots to study
// days with.
func (a *Accumulator) Clock() solana.Clock { return a.clock }

// Restrict limits detection to records whose study day falls in
// [lo, hi]; out-of-range records are skipped before their details are
// resolved, exactly as if they were absent from the dataset. Must be set
// before any Detect call. The caller is responsible for restricting the
// Scope (days map, histograms, totals) to the same range.
func (a *Accumulator) Restrict(lo, hi int) {
	a.restricted, a.dayLo, a.dayHi = true, lo, hi
}

// inRange reports whether a record's slot survives the day restriction.
func (a *Accumulator) inRange(slot solana.Slot) bool {
	if !a.restricted {
		return true
	}
	d := a.clock.DayOf(slot)
	return d >= a.dayLo && d <= a.dayHi
}

// Len3Partial is the pure detection output over one contiguous run of
// length-3 records: order-free counters plus the positive verdicts in
// record index order, ready for an ordered fold.
type Len3Partial struct {
	withDetails uint64
	rejections  [core.NumCriteria]uint64
	hits        []hit
}

// DetectLen3 runs sandwich detection over recs, resolving details
// through src. Pure with respect to the accumulator: safe to call
// concurrently over disjoint ranges.
func (a *Accumulator) DetectLen3(recs []jito.BundleRecord, src DetailSource) Len3Partial {
	var p Len3Partial
	var scratch []jito.TxDetail
	for i := range recs {
		rec := &recs[i]
		if !a.inRange(rec.Slot) {
			continue
		}
		var ok bool
		scratch, ok = src(i, scratch[:0])
		if !ok {
			continue
		}
		p.withDetails++
		v := a.det.Detect(rec, scratch)
		if !v.Sandwich {
			p.rejections[v.Failed]++
			continue
		}
		p.hits = append(p.hits, hit{v: v, day: a.clock.DayOf(rec.Slot)})
	}
	return p
}

// Hits reports how many positive verdicts the partial carries — what an
// incremental caller surfaces as its per-slot verdict count without
// waiting for Finish.
func (p *Len3Partial) Hits() int { return len(p.hits) }

// WithDetails reports how many records in the partial had complete
// details and therefore reached the detector.
func (p *Len3Partial) WithDetails() uint64 { return p.withDetails }

// FoldLen3 folds one partial into the results. Call in record index
// order on a single goroutine.
func (a *Accumulator) FoldLen3(p Len3Partial) {
	a.r.Len3WithDetails += p.withDetails
	for c, n := range p.rejections {
		a.rejections[c] += n
	}
	for _, h := range p.hits {
		a.record(h.v, h.day)
	}
}

// LongPartial is the extended-detection output over one contiguous run
// of retained length-4/5 records.
type LongPartial struct {
	scanned  uint64
	verdicts []core.Verdict
}

// DetectLong runs extended detection over recs. Pure like DetectLen3.
func (a *Accumulator) DetectLong(recs []jito.BundleRecord, src DetailSource) LongPartial {
	var p LongPartial
	var scratch []jito.TxDetail
	for i := range recs {
		rec := &recs[i]
		if !a.inRange(rec.Slot) {
			continue
		}
		var ok bool
		scratch, ok = src(i, scratch[:0])
		if !ok {
			continue
		}
		p.scanned++
		ev := a.det.DetectExtended(rec, scratch)
		p.verdicts = append(p.verdicts, ev.Sandwiches...)
	}
	return p
}

// Hits reports how many disguised-sandwich verdicts the partial carries.
func (p *LongPartial) Hits() int { return len(p.verdicts) }

// FoldLong folds one extended partial, in record index order.
func (a *Accumulator) FoldLong(p LongPartial) {
	a.r.LongBundlesScanned += p.scanned
	for _, v := range p.verdicts {
		a.r.DisguisedSandwiches++
		a.r.DisguisedVerdicts = append(a.r.DisguisedVerdicts, v)
	}
}

// record folds one positive verdict into the results. Called in record
// index order, which pins verdict ordering and float accumulation order
// to the serial reference exactly.
func (a *Accumulator) record(v core.Verdict, day int) {
	r := a.r
	r.Sandwiches++
	r.Verdicts = append(r.Verdicts, v)
	r.AttacksByDay.Add(day, 1)
	a.sandwichTips = append(a.sandwichTips, float64(v.TipLamports))
	if !v.HasSOL {
		r.SandwichesNoSOL++
		return
	}
	lossSOL := v.VictimLossLamports / 1e9
	gainSOL := v.AttackerGainLamports / 1e9
	r.VictimLossSOL += lossSOL
	r.AttackerGainSOL += gainSOL
	r.LossSOLByDay.Add(day, lossSOL)
	r.GainSOLByDay.Add(day, gainSOL)
	a.lossUSD = append(a.lossUSD, lossSOL*r.SOLPriceUSD)
}

// Finish seals the accumulator: exports the rejection tally, publishes
// the detection counters onto reg (nil = uninstrumented), and builds the
// derived statistics. Call exactly once, after every fold.
func (a *Accumulator) Finish(reg *obs.Registry) *Results {
	r := a.r
	// Export the fixed-size rejection tally as the map the boundary (and
	// renderers) expect; the serial map never held zero-count entries, so
	// only observed criteria cross over.
	r.Rejections = make(map[core.Criterion]uint64, core.NumCriteria)
	for c, n := range a.rejections {
		if n > 0 {
			r.Rejections[core.Criterion(c)] = n
		}
	}
	if reg != nil {
		reg.Help("detect_rejections_total", "Length-3 bundles rejected by the detector, by first failed criterion.")
		for c := core.Criterion(1); c < core.Criterion(core.NumCriteria); c++ {
			reg.Counter("detect_rejections_total", "criterion", c.String()).Add(a.rejections[c])
		}
		reg.Counter("detect_len3_with_details_total").Add(r.Len3WithDetails)
		reg.Counter("detect_sandwiches_total").Add(r.Sandwiches)
		reg.Counter("detect_sandwiches_no_sol_total").Add(r.SandwichesNoSOL)
		reg.Counter("detect_disguised_sandwiches_total").Add(r.DisguisedSandwiches)
		reg.Counter("detect_long_bundles_scanned_total").Add(r.LongBundlesScanned)
	}
	if r.TotalBundles > 0 {
		r.SandwichShare = float64(r.Sandwiches) / float64(r.TotalBundles)
	}
	r.LossUSD = stats.NewECDF(a.lossUSD)
	r.TipsSandwich = stats.NewECDF(a.sandwichTips)
	return r
}

// sortedDays returns the keys of a day-aggregate map, ascending — the
// same set collector.Dataset.SortedDays reports.
func sortedDays(days map[int]*collector.DayAgg) []int {
	out := make([]int, 0, len(days))
	for d := range days {
		out = append(out, d)
	}
	sort.Ints(out)
	return out
}

package report

import (
	"fmt"
	"io"

	"jitomev/internal/stats"
)

// Tradeoff quantifies the paper's concluding argument (§5): defensive
// bundling spend is "not proportional to the prevalence of Sandwiching
// MEV" — attacks hit only 0.038% of bundles — yet protection is cheap
// ($0.0028/bundle) while the loss distribution is heavy-tailed, so "the
// threat of significant loss is sufficient to encourage high use of Jito
// for protection against MEV."
type Tradeoff struct {
	// AttackRate is sandwiches per collected bundle (the paper's 0.038%).
	AttackRate float64
	// ProtectionCostUSD is the average tip paid per defensive bundle.
	ProtectionCostUSD float64
	// MeanLossUSD / MedianLossUSD / P99LossUSD describe the conditional
	// loss distribution given an attack.
	MeanLossUSD   float64
	MedianLossUSD float64
	P99LossUSD    float64
	// ExpectedLossUSD is AttackRate × MeanLossUSD: the per-trade expected
	// sandwich loss for an unprotected submission, under the (crude but
	// explicit) assumption that every bundle-equivalent trade faces the
	// dataset-wide attack rate.
	ExpectedLossUSD float64
	// BreakEvenTailProb is the per-trade attack probability at which
	// protection exactly pays for itself given the mean loss.
	BreakEvenTailProb float64
	// AttacksDefenseCorrelation is the Pearson correlation between the
	// per-day attack and defensive-bundle series (§5's "corresponding
	// increase"); negative values support the substitution story.
	AttacksDefenseCorrelation float64
}

// ComputeTradeoff derives the trade-off from analyzed results.
func ComputeTradeoff(r *Results) Tradeoff {
	t := Tradeoff{
		AttackRate:        r.SandwichShare,
		ProtectionCostUSD: stats.LamportsToUSD(r.Defense.AvgDefensiveTipLamports(), r.SOLPriceUSD),
		MeanLossUSD:       r.LossUSD.Mean(),
		MedianLossUSD:     r.LossUSD.Quantile(0.5),
		P99LossUSD:        r.LossUSD.Quantile(0.99),
	}
	t.ExpectedLossUSD = t.AttackRate * t.MeanLossUSD
	if t.MeanLossUSD > 0 {
		t.BreakEvenTailProb = t.ProtectionCostUSD / t.MeanLossUSD
	}
	t.AttacksDefenseCorrelation = stats.Pearson(r.AttacksByDay, r.DefenseByDay)
	return t
}

// RationalToProtect reports whether the expected loss alone (ignoring risk
// aversion) already exceeds the protection cost.
func (t Tradeoff) RationalToProtect() bool {
	return t.ExpectedLossUSD > t.ProtectionCostUSD
}

// RenderTradeoff prints the §5 discussion as a table.
func RenderTradeoff(w io.Writer, t Tradeoff) {
	fmt.Fprintln(w, "== Defense trade-off (paper §5) ==")
	fmt.Fprintf(w, "%-44s %.4f%%   (paper: 0.038%%)\n", "attack rate per bundle", 100*t.AttackRate)
	fmt.Fprintf(w, "%-44s $%.4f   (paper: $0.0028)\n", "protection cost per defensive bundle", t.ProtectionCostUSD)
	fmt.Fprintf(w, "%-44s $%.2f / $%.2f / $%.2f\n", "loss given attack (mean/median/p99)",
		t.MeanLossUSD, t.MedianLossUSD, t.P99LossUSD)
	fmt.Fprintf(w, "%-44s $%.5f\n", "expected sandwich loss per unprotected trade", t.ExpectedLossUSD)
	fmt.Fprintf(w, "%-44s %.5f\n", "break-even attack probability", t.BreakEvenTailProb)
	fmt.Fprintf(w, "%-44s %v\n", "protection rational on expectation alone", t.RationalToProtect())
	fmt.Fprintf(w, "%-44s %+.3f   (negative supports substitution)\n",
		"attacks vs defense per-day correlation", t.AttacksDefenseCorrelation)
}

package report

import (
	"fmt"
	"io"
	"math/rand"
	"sort"

	"jitomev/internal/core"
	"jitomev/internal/stats"
)

// OutageFn reports whether a study day was a collection outage (rendered
// as the grey gaps of Figures 1–2). Nil means no outages.
type OutageFn func(day int) bool

// RenderHeadline prints the headline statistics table with the paper's
// values alongside, scale-invariant measures first.
func RenderHeadline(w io.Writer, r *Results, scale int) {
	fmt.Fprintf(w, "== Headline statistics (scale 1/%d of paper volume) ==\n\n", scale)
	row := func(id, name, measured, paper string) {
		fmt.Fprintf(w, "%-4s %-42s %18s   paper: %s\n", id, name, measured, paper)
	}
	row("H1", "sandwich attacks detected",
		fmt.Sprintf("%d", r.Sandwiches), "521,903")
	row("H2", "victim losses (SOL-leg only)",
		fmt.Sprintf("$%.0f (%.1f SOL)", r.VictimLossUSD(), r.VictimLossSOL), ">= $7,712,138")
	row("H3", "attacker gains",
		fmt.Sprintf("$%.0f (%.1f SOL)", r.AttackerGainUSD(), r.AttackerGainSOL), "$9,678,466 (> losses)")
	row("H4", "sandwiches without SOL leg",
		fmt.Sprintf("%d (%.0f%%)", r.SandwichesNoSOL, 100*r.NoSOLShare()), "143,348 (28%)")
	row("H5", "defensive share of length-1 bundles",
		fmt.Sprintf("%.1f%%", 100*r.Defense.DefensiveShare()), ">86%")
	row("H6", "defensive spend",
		fmt.Sprintf("$%.0f", r.DefensiveSpendUSD()), "$2,421,868")
	row("H7", "average defensive tip",
		fmt.Sprintf("$%.4f (%.0f lamports)",
			stats.LamportsToUSD(r.Defense.AvgDefensiveTipLamports(), r.SOLPriceUSD),
			r.Defense.AvgDefensiveTipLamports()),
		"$0.0028 (~11.6k lamports)")
	row("H8", "sandwich share of all bundles",
		fmt.Sprintf("%.4f%%", 100*r.SandwichShare), "0.038%")
	row("H9", "txs per bundle",
		fmt.Sprintf("%.3f", safeDiv(float64(r.TotalTxs), float64(r.TotalBundles))), "~1.76 (26M/14.8M per day)")
	row("H10", "length-3 share of bundles",
		fmt.Sprintf("%.2f%%", 100*safeDiv(float64(r.Len3Bundles), float64(r.TotalBundles))), "2.77%")
	row("H11", "successive-poll overlap rate",
		fmt.Sprintf("%.1f%%", 100*r.OverlapRate), "~95%")
	row("H12", "median tip: len-3 vs sandwich (lamports)",
		fmt.Sprintf("%.0f vs %.0f", r.TipsLen3.Quantile(0.5), r.TipsSandwich.Quantile(0.5)),
		"1,000 vs >2,000,000")
	row("H13", "median / p99 victim loss",
		fmt.Sprintf("$%.2f / $%.2f", r.LossUSD.Quantile(0.5), r.LossUSD.Quantile(0.99)),
		"~$5 / >$100")
	row("H14", "attacks/day trend (slope)",
		fmt.Sprintf("%+.3f/day", r.AttacksByDay.LinearTrend()), "declining (15,000 -> 1,000)")
	row("H15", "defensive bundles/day trend (slope)",
		fmt.Sprintf("%+.1f/day", r.DefenseByDay.LinearTrend()), "increasing")
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// RenderFigure1 prints the Figure 1 series: bundles per day broken down by
// length, with outage days marked like the paper's shaded gaps.
func RenderFigure1(w io.Writer, r *Results, outage OutageFn) {
	fmt.Fprintln(w, "== Figure 1: Jito bundles per day by bundle length ==")
	fmt.Fprintf(w, "%-5s %10s %10s %10s %10s %10s %12s  %s\n",
		"day", "len1", "len2", "len3", "len4", "len5", "total", "")
	for _, day := range r.CollectedDays {
		agg := r.BundlesByDay[day]
		mark := ""
		if outage != nil && outage(day) {
			mark = "  [collection outage]"
		}
		fmt.Fprintf(w, "%-5d %10d %10d %10d %10d %10d %12d%s\n",
			day, agg.ByLength[1], agg.ByLength[2], agg.ByLength[3],
			agg.ByLength[4], agg.ByLength[5], agg.Bundles, mark)
	}
	if outage != nil {
		for day := 0; day < r.Days; day++ {
			if _, ok := r.BundlesByDay[day]; !ok && outage(day) {
				fmt.Fprintf(w, "%-5d %10s   [collection outage: no data]\n", day, "-")
			}
		}
	}
}

// RenderFigure2 prints the Figure 2 series: attacks and defensive bundles
// per day (top), and victim losses / attacker gains per day in SOL
// (bottom).
func RenderFigure2(w io.Writer, r *Results, outage OutageFn) {
	fmt.Fprintln(w, "== Figure 2 (top): sandwich attacks and defensive bundles per day ==")
	fmt.Fprintf(w, "%-5s %12s %14s\n", "day", "attacks", "defensive")
	for _, day := range r.CollectedDays {
		mark := ""
		if outage != nil && outage(day) {
			mark = "  [outage]"
		}
		fmt.Fprintf(w, "%-5d %12.0f %14.0f%s\n",
			day, r.AttacksByDay.Get(day), r.DefenseByDay.Get(day), mark)
	}
	fmt.Fprintln(w, "\n== Figure 2 (bottom): victim losses and attacker gains per day (SOL) ==")
	fmt.Fprintf(w, "%-5s %14s %14s\n", "day", "lossSOL", "gainSOL")
	for _, day := range r.CollectedDays {
		fmt.Fprintf(w, "%-5d %14.3f %14.3f\n",
			day, r.LossSOLByDay.Get(day), r.GainSOLByDay.Get(day))
	}
}

// RenderFigure3 prints the Figure 3 CDF: USD lost per sandwiched
// transaction.
func RenderFigure3(w io.Writer, r *Results, points int) {
	fmt.Fprintln(w, "== Figure 3: CDF of USD lost per sandwiched transaction ==")
	fmt.Fprintf(w, "%-14s %s\n", "lossUSD", "cumulative")
	for _, p := range r.LossUSD.Curve(points) {
		fmt.Fprintf(w, "%-14.2f %.3f\n", p.X, p.F)
	}
	fmt.Fprintf(w, "n=%d  median=$%.2f  p90=$%.2f  p99=$%.2f  max=$%.2f\n",
		r.LossUSD.Len(), r.LossUSD.Quantile(0.5), r.LossUSD.Quantile(0.9),
		r.LossUSD.Quantile(0.99), r.LossUSD.Quantile(1))
	if r.LossUSD.Len() >= 20 {
		// Scaled studies have orders of magnitude fewer samples than the
		// paper's 378K quantifiable sandwiches; quote the sampling
		// uncertainty rather than pretending point precision.
		lo, hi := stats.BootstrapCI(r.LossUSD.Values(), 0.5, 0.05, 500,
			rand.New(rand.NewSource(1)))
		fmt.Fprintf(w, "median 95%% bootstrap CI: [$%.2f, $%.2f]\n", lo, hi)
	}
}

// RenderFigure4 prints the Figure 4 CDFs: Jito tips for length-1 bundles,
// length-3 bundles, and detected sandwich bundles.
func RenderFigure4(w io.Writer, r *Results) {
	fmt.Fprintln(w, "== Figure 4: CDF of Jito tip (lamports) by bundle class ==")
	qs := []float64{0.10, 0.25, 0.50, 0.75, 0.86, 0.90, 0.95, 0.99}
	fmt.Fprintf(w, "%-10s %14s %14s %14s\n", "quantile", "len-1", "len-3", "sandwich")
	for _, q := range qs {
		fmt.Fprintf(w, "%-10.2f %14.0f %14.0f %14.0f\n",
			q, r.TipsLen1.Quantile(q), r.TipsLen3.Quantile(q), r.TipsSandwich.Quantile(q))
	}
	fmt.Fprintf(w, "share of len-1 at or below 100k lamports (defensive): %.1f%%\n",
		100*r.TipsLen1.At(100_000))
}

// RenderRejections prints the methodology table: why non-sandwich length-3
// bundles were rejected, by criterion.
func RenderRejections(w io.Writer, r *Results) {
	fmt.Fprintln(w, "== Length-3 bundles by detector outcome ==")
	fmt.Fprintf(w, "%-18s %12d\n", "sandwich", r.Sandwiches)
	keys := make([]core.Criterion, 0, len(r.Rejections))
	for k := range r.Rejections {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		fmt.Fprintf(w, "%-18s %12d\n", k, r.Rejections[k])
	}
}

// RenderExtended prints the disguised-sandwich recovery results: what the
// paper's length-3 lower bound misses, quantified with the extended
// detector over length-4/5 bundles.
func RenderExtended(w io.Writer, r *Results) {
	fmt.Fprintln(w, "== Extended detection: disguised sandwiches beyond length 3 ==")
	fmt.Fprintf(w, "length-4/5 bundles scanned: %d\n", r.LongBundlesScanned)
	fmt.Fprintf(w, "disguised sandwiches recovered: %d (+%.1f%% over the length-3 count)\n",
		r.DisguisedSandwiches, 100*safeDiv(float64(r.DisguisedSandwiches), float64(r.Sandwiches)))
	fmt.Fprintf(w, "additional victim losses uncovered: $%.2f\n", r.DisguisedLossUSD())
}

// RenderAblation prints the detector-vs-baseline comparison.
func RenderAblation(w io.Writer, ab AblationResult) {
	fmt.Fprintln(w, "== Detector ablation vs simulator ground truth ==")
	fmt.Fprintf(w, "%-22s %10s %10s %8s %8s\n", "detector", "precision", "recall", "FP", "FN")
	fmt.Fprintf(w, "%-22s %9.1f%% %9.1f%% %8d %8d\n", "full (C1-C5 + profit)",
		100*ab.Full.Precision(), 100*ab.Full.Recall(), ab.Full.FalsePositive, ab.Full.FalseNegative)
	fmt.Fprintf(w, "%-22s %9.1f%% %9.1f%% %8d %8d\n", "naive A-B-A baseline",
		100*ab.Naive.Precision(), 100*ab.Naive.Recall(), ab.Naive.FalsePositive, ab.Naive.FalseNegative)
}

// WriteCSV emits a per-day CSV with every Figure 1/2 series, for external
// plotting.
func WriteCSV(w io.Writer, r *Results, outage OutageFn) {
	fmt.Fprintln(w, "day,len1,len2,len3,len4,len5,bundles,attacks,defensive,lossSOL,gainSOL,outage")
	for _, day := range r.CollectedDays {
		agg := r.BundlesByDay[day]
		out := 0
		if outage != nil && outage(day) {
			out = 1
		}
		fmt.Fprintf(w, "%d,%d,%d,%d,%d,%d,%d,%.0f,%.0f,%.4f,%.4f,%d\n",
			day, agg.ByLength[1], agg.ByLength[2], agg.ByLength[3],
			agg.ByLength[4], agg.ByLength[5], agg.Bundles,
			r.AttacksByDay.Get(day), r.DefenseByDay.Get(day),
			r.LossSOLByDay.Get(day), r.GainSOLByDay.Get(day), out)
	}
}

package report

import (
	"fmt"
	"io"
	"time"

	"jitomev/internal/amm"
	"jitomev/internal/core"
	"jitomev/internal/jito"
	"jitomev/internal/ledger"
	"jitomev/internal/solana"
	"jitomev/internal/token"
)

// RenderTable1 reproduces the paper's Table 1 ("Example Sandwiching MEV
// transaction") by actually executing the scenario — attacker buys, victim
// buys at the shifted rate, attacker sells — through the bank and block
// engine, then printing the realized trades and the detector's verdict.
func RenderTable1(w io.Writer) {
	bank := ledger.NewBank()
	reg := token.NewRegistry()
	tokenA := reg.NewMemecoin("TOKEN_A")
	// Pool priced so TOKEN_A starts around $10 at $242/SOL, deep enough
	// for the table's round quantities.
	pool := amm.New(tokenA.Address, token.SOL.Address,
		24_200_000_000_000,    // TOKEN_A base units
		1_000_000_000_000_000, // lamports
		amm.DefaultFeeBps)
	bank.AddPool(pool)

	attacker := solana.NewKeypairFromSeed("table1/attacker")
	victim := solana.NewKeypairFromSeed("table1/victim")
	for _, kp := range []*solana.Keypair{attacker, victim} {
		bank.CreditLamports(kp.Pubkey(), 1<<50)
		bank.MintTo(kp.Pubkey(), token.SOL.Address, 1<<55)
		bank.MintTo(kp.Pubkey(), tokenA.Address, 1<<55)
	}
	engine := jito.NewBlockEngine(bank, solana.Clock{Genesis: time.Unix(0, 0)})

	// The victim wants 1,000,000 TOKEN_A-sized exposure with loose
	// slippage; the attacker front-runs with a 10,000-token-sized buy.
	victimInSOL := uint64(41_000_000_000_000) // ≈ 1M tokens' worth
	quote, _ := pool.QuoteOut(token.SOL.Address, victimInSOL)
	minOut := quote * 9_000 / 10_000 // 10% tolerance

	snap := pool.Clone()
	plan, ok := amm.PlanSandwich(snap, token.SOL.Address, victimInSOL, minOut, 1<<49)
	if !ok {
		fmt.Fprintln(w, "table 1: no profitable sandwich (unexpected)")
		return
	}

	bundle := jito.NewBundle(
		solana.NewTransaction(attacker, 1, 0,
			&solana.Swap{Pool: pool.Address, InputMint: token.SOL.Address, AmountIn: plan.FrontrunIn},
			&solana.Tip{TipAccount: jito.TipAccounts[0], Amount: 2_000_000}),
		solana.NewTransaction(victim, 1, 0,
			&solana.Swap{Pool: pool.Address, InputMint: token.SOL.Address, AmountIn: victimInSOL, MinOut: minOut}),
		solana.NewTransaction(attacker, 2, 0,
			&solana.Swap{Pool: pool.Address, InputMint: tokenA.Address, AmountIn: plan.BackrunIn}),
	)
	if err := engine.Submit(bundle); err != nil {
		fmt.Fprintln(w, "table 1: submit failed:", err)
		return
	}
	acc := engine.ProcessSlot(1)
	if len(acc) != 1 {
		fmt.Fprintln(w, "table 1: bundle did not land")
		return
	}

	const solUSD = 242.0
	priceUSD := func(lamports, tokens float64) float64 {
		if tokens == 0 {
			return 0
		}
		// USD per whole token (6 decimals).
		return lamports / 1e9 * solUSD / (tokens / 1e6)
	}

	fmt.Fprintln(w, "== Table 1: Example Sandwiching MEV transaction (executed) ==")
	fmt.Fprintf(w, "%-5s %-13s %-9s %-6s %-8s %14s %14s\n",
		"Order", "Transaction", "Sender", "Action", "Token", "Amount", "Price $/tok")
	names := []struct {
		sender, action string
	}{
		{"ATTACKER", "BUY"},
		{"NORMAL", "BUY"},
		{"ATTACKER", "SELL"},
	}
	for i, d := range acc[0].Details {
		var inAmt, outAmt float64
		for _, td := range d.TokenDeltas {
			if td.Owner != d.Signer {
				continue
			}
			if td.Delta < 0 {
				inAmt = float64(-td.Delta)
			} else {
				outAmt = float64(td.Delta)
			}
		}
		var tokens, lamports float64
		if names[i].action == "BUY" {
			lamports, tokens = inAmt, outAmt
		} else {
			lamports, tokens = outAmt, inAmt
		}
		fmt.Fprintf(w, "%-5d %-13s %-9s %-6s %-8s %14.0f %14.4f\n",
			i+1, d.Sig.Short(), names[i].sender, names[i].action, "TOKEN_A",
			tokens/1e6, priceUSD(lamports, tokens))
	}

	v := core.NewDefaultDetector().Detect(&acc[0].Record, acc[0].Details)
	fmt.Fprintf(w, "\ndetector verdict: sandwich=%v attacker=%s victim=%s\n",
		v.Sandwich, v.Attacker.Short(), v.Victim.Short())
	fmt.Fprintf(w, "victim loss: $%.2f (%.4f SOL)   attacker gain: $%.2f (%.4f SOL)   tip: %d lamports\n",
		v.VictimLossLamports/1e9*solUSD, v.VictimLossLamports/1e9,
		v.AttackerGainLamports/1e9*solUSD, v.AttackerGainLamports/1e9,
		v.TipLamports)
}

package report

import (
	"bytes"
	"strings"
	"testing"

	"jitomev/internal/core"
	"jitomev/internal/stats"
)

func TestComputeTradeoff(t *testing.T) {
	d := buildDataset(t)
	r := Analyze(d, core.NewDefaultDetector(), 0)
	tr := ComputeTradeoff(r)

	if tr.AttackRate != r.SandwichShare {
		t.Error("attack rate mismatch")
	}
	// Fabricated dataset: every sandwich loses exactly 100 SOL = $24,200.
	if tr.MeanLossUSD != 24_200 || tr.MedianLossUSD != 24_200 {
		t.Errorf("loss stats mean=%f median=%f", tr.MeanLossUSD, tr.MedianLossUSD)
	}
	wantExpected := tr.AttackRate * 24_200
	if diff := tr.ExpectedLossUSD - wantExpected; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("expected loss %f, want %f", tr.ExpectedLossUSD, wantExpected)
	}
	if tr.BreakEvenTailProb <= 0 {
		t.Error("break-even probability not computed")
	}
	// At a 4.4% attack rate and $24k mean loss vs a sub-dollar tip,
	// protection is overwhelmingly rational.
	if !tr.RationalToProtect() {
		t.Error("protection should be rational in this dataset")
	}
}

func TestRenderTradeoff(t *testing.T) {
	d := buildDataset(t)
	r := Analyze(d, core.NewDefaultDetector(), 0)
	var buf bytes.Buffer
	RenderTradeoff(&buf, ComputeTradeoff(r))
	for _, want := range []string{"attack rate", "break-even", "correlation"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("tradeoff output missing %q", want)
		}
	}
}

func TestPearsonDirections(t *testing.T) {
	up, down, flat := stats.NewTimeSeries(), stats.NewTimeSeries(), stats.NewTimeSeries()
	for d := 0; d < 50; d++ {
		up.Add(d, float64(d))
		down.Add(d, float64(100-d))
		flat.Add(d, 5)
	}
	if r := stats.Pearson(up, down); r > -0.99 {
		t.Errorf("anti-correlated series r = %f", r)
	}
	if r := stats.Pearson(up, up); r < 0.99 {
		t.Errorf("self correlation r = %f", r)
	}
	if r := stats.Pearson(up, flat); r != 0 {
		t.Errorf("constant series r = %f", r)
	}
	if r := stats.Pearson(stats.NewTimeSeries(), up); r != 0 {
		t.Errorf("empty series r = %f", r)
	}
}

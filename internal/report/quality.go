package report

import (
	"jitomev/internal/collector"
	"jitomev/internal/core"
	"jitomev/internal/obs"
	"jitomev/internal/quality"
)

// QualityObs distills an analysis pass into the observation the quality
// sentinel streams over: the paper-anchored scalars plus the per-day
// series in ascending day order. Criterion names cross the boundary as
// strings so the quality package never imports the detector.
func QualityObs(data *collector.Dataset, r *Results) quality.AnalysisObs {
	a := quality.AnalysisObs{
		TotalBundles:    r.TotalBundles,
		Len3Bundles:     r.Len3Bundles,
		Len3WithDetails: r.Len3WithDetails,
		Len1Bundles:     r.Defense.SingleTxBundles,
		Sandwiches:      r.Sandwiches,
		MedianTipLen3:   data.TipsLen3.Quantile(0.5),
	}
	if r.TipsSandwich != nil && r.TipsSandwich.Len() > 0 {
		a.MedianTipSandwich = r.TipsSandwich.Quantile(0.5)
	}
	if r.Defense.SingleTxBundles > 0 {
		a.DefensiveShare = float64(r.Defense.Defensive) / float64(r.Defense.SingleTxBundles)
	}
	if len(r.Rejections) > 0 {
		a.Rejections = make(map[string]uint64, len(r.Rejections))
		for c, n := range r.Rejections {
			a.Rejections[c.String()] = n
		}
	}
	a.PerDay = make([]quality.DayAnalysis, 0, len(r.CollectedDays))
	for _, day := range r.CollectedDays {
		d := quality.DayAnalysis{Day: day}
		if agg := r.BundlesByDay[day]; agg != nil {
			d.Bundles = agg.Bundles
			if single := agg.DefensiveCount + agg.PriorityCount; single > 0 {
				d.DefensiveShare = float64(agg.DefensiveCount) / float64(single)
			}
		}
		if r.AttacksByDay != nil {
			d.Sandwiches = uint64(r.AttacksByDay.Get(day))
		}
		a.PerDay = append(a.PerDay, d)
	}
	return a
}

// AnalyzeQuality is AnalyzeObs feeding the data-quality sentinel: after
// the detection pass it streams the per-day series and rejection shares
// into q's drift detectors (nil q degrades to plain AnalyzeObs). The
// feed order is deterministic — ascending day, then sorted criterion —
// so sentinel state is bit-identical at any worker count.
func AnalyzeQuality(data *collector.Dataset, det *core.Detector, solPriceUSD float64, workers int, reg *obs.Registry, q *quality.Sentinel) *Results {
	r := AnalyzeObs(data, det, solPriceUSD, workers, reg)
	q.ObserveAnalysis(QualityObs(data, r))
	return r
}

package quality

import (
	"math"
	"testing"
)

func TestEWMASeedAndFold(t *testing.T) {
	e := NewEWMA(0.5)
	if e.Mean() != 0 || e.Samples() != 0 {
		t.Fatalf("zero EWMA: mean=%v n=%d", e.Mean(), e.Samples())
	}
	e.Observe(10) // seeds
	if e.Mean() != 10 {
		t.Fatalf("seed: mean=%v want 10", e.Mean())
	}
	e.Observe(0) // 10 + 0.5*(0-10) = 5
	if e.Mean() != 5 {
		t.Fatalf("fold: mean=%v want 5", e.Mean())
	}
	if e.Samples() != 2 {
		t.Fatalf("samples=%d want 2", e.Samples())
	}
}

func TestEWMADeterministic(t *testing.T) {
	fold := func() float64 {
		e := NewEWMA(0.1)
		for i := 0; i < 1000; i++ {
			e.Observe(float64(i%7) / 7)
		}
		return e.Mean()
	}
	a, b := fold(), fold()
	if a != b {
		t.Fatalf("EWMA not bit-identical: %v vs %v", a, b)
	}
}

func TestCUSUMOnTargetStaysQuiet(t *testing.T) {
	c := NewCUSUM(0.95, 0.05, 5)
	for i := 0; i < 1000; i++ {
		// Alternate a little around the target, inside the slack.
		x := 0.95
		if i%2 == 0 {
			x = 0.97
		} else {
			x = 0.93
		}
		if c.Observe(x) {
			t.Fatalf("alarm at sample %d with on-target series", i)
		}
	}
	if c.Alarms() != 0 {
		t.Fatalf("alarms=%d want 0", c.Alarms())
	}
}

func TestCUSUMDetectsSustainedShift(t *testing.T) {
	c := NewCUSUM(0.95, 0.05, 5)
	// A sustained drop to 0.5: each sample adds 0.95-0.5-0.05 = 0.4 to
	// the low side, so the alarm fires within ~13 samples.
	fired := -1
	for i := 0; i < 100; i++ {
		if c.Observe(0.5) {
			fired = i
			break
		}
	}
	if fired < 0 {
		t.Fatal("no alarm on a sustained shift")
	}
	if fired > 20 {
		t.Fatalf("alarm too slow: sample %d", fired)
	}
	if !c.InAlarm() {
		t.Fatal("InAlarm false after firing")
	}
	_, lo := c.Sides()
	if lo <= 5 {
		t.Fatalf("low side %v should exceed threshold", lo)
	}
}

func TestCUSUMRecoversAfterShift(t *testing.T) {
	c := NewCUSUM(0.5, 0.05, 2)
	for i := 0; i < 10; i++ {
		c.Observe(1.0) // drive the high side up
	}
	if !c.InAlarm() {
		t.Fatal("expected alarm after shift")
	}
	for i := 0; i < 50; i++ {
		c.Observe(0.3) // below target: high side drains
	}
	hi, _ := c.Sides()
	if hi != 0 {
		t.Fatalf("high side should drain to 0, got %v", hi)
	}
}

func TestDetectorState(t *testing.T) {
	e := NewEWMA(0.2)
	e.Observe(1)
	st := e.state("x")
	if st.Kind != "ewma" || st.Name != "x" || st.Samples != 1 || st.Value != 1 {
		t.Fatalf("EWMA state %+v", st)
	}
	c := NewCUSUM(0, 0, 0.5)
	c.Observe(1)
	cs := c.state("y")
	if cs.Kind != "cusum" || cs.Hi != 1 || cs.Lo != 0 || cs.Alarms != 1 {
		t.Fatalf("CUSUM state %+v", cs)
	}
	if cs.Value != math.Max(cs.Hi, cs.Lo) {
		t.Fatalf("CUSUM value %v != max side", cs.Value)
	}
}

package quality

import "sort"

// DayWindow is one study day of the coverage ledger: every poll the
// collector attempted while the chain sat in that day, what the pages
// yielded, and — when the workload layer reports in — how many bundles
// actually landed, so per-day coverage is a measured fraction rather
// than an argument.
type DayWindow struct {
	Day int `json:"day"`

	// Poll outcomes (paper §3.1 cadence: one page every ~2 minutes).
	PollsOK     uint64 `json:"polls_ok"`
	PollsFailed uint64 `json:"polls_failed"`

	// Successive-page overlap: Pairs counts pairs whose second page fell
	// in this day, OverlapPairs those that shared a bundle, Gaps the
	// broken pairs — the paper's missed-bundle signal.
	Pairs        uint64 `json:"pairs"`
	OverlapPairs uint64 `json:"overlap_pairs"`
	Gaps         uint64 `json:"gaps"`

	// Page yield.
	NewBundles uint64 `json:"new_bundles"`
	Duplicates uint64 `json:"duplicates"`

	// Spike recovery.
	BackfillRecovered uint64 `json:"backfill_recovered"`
	BackfillErrors    uint64 `json:"backfill_errors"`

	// Generated is the ground-level denominator: bundles the workload
	// actually landed on chain that day (0 when no generation feed is
	// attached, e.g. a collector scraping a remote explorer).
	Generated uint64 `json:"generated"`
}

// add folds another window into this one (used for the totals row).
func (w *DayWindow) add(o *DayWindow) {
	w.PollsOK += o.PollsOK
	w.PollsFailed += o.PollsFailed
	w.Pairs += o.Pairs
	w.OverlapPairs += o.OverlapPairs
	w.Gaps += o.Gaps
	w.NewBundles += o.NewBundles
	w.Duplicates += o.Duplicates
	w.BackfillRecovered += o.BackfillRecovered
	w.BackfillErrors += o.BackfillErrors
	w.Generated += o.Generated
}

// Ledger is the coverage ledger: per-day windows plus the page size the
// collector polls with, from which the estimated-missed-bundles figure
// is derived. Not safe for concurrent use on its own — the Sentinel
// serializes access.
type Ledger struct {
	days      map[int]*DayWindow
	pageLimit int

	// Detail-fetch shortfall, fed by FetchDetails.
	detailsFetched uint64
	detailsPending uint64
	detailBatchErr uint64
}

// newLedger returns an empty ledger.
func newLedger() *Ledger { return &Ledger{days: make(map[int]*DayWindow)} }

// window returns day d's window, creating it on demand.
func (l *Ledger) window(d int) *DayWindow {
	w, ok := l.days[d]
	if !ok {
		w = &DayWindow{Day: d}
		l.days[d] = w
	}
	return w
}

// LedgerSummary is the aggregated, serializable view of the ledger —
// the "coverage" block of /qualityz.
type LedgerSummary struct {
	DayWindow // totals across all days (Day is meaningless here and omitted)

	PageLimit int `json:"page_limit"`

	// EstimatedMissed is the §3.1 lower-bound estimate of bundles that
	// scrolled past unseen: each broken overlap pair means more than one
	// page of bundles arrived between polls, so at least one page's worth
	// was missed; backfill-recovered bundles are credited back.
	EstimatedMissed uint64 `json:"estimated_missed"`

	// OverlapRate is OverlapPairs/Pairs (0 with no pairs).
	OverlapRate float64 `json:"overlap_rate"`
	// PollFailureRate is PollsFailed over all polls attempted.
	PollFailureRate float64 `json:"poll_failure_rate"`
	// CoverageRate is NewBundles/Generated when a generation feed is
	// attached, else 0.
	CoverageRate float64 `json:"coverage_rate"`

	Days []DayWindow `json:"days,omitempty"`
}

// AggregateLedgers folds per-replica coverage summaries into one
// fleet-wide summary: day windows sum pointwise across replicas, the
// page limit takes the largest any replica polled with, and the derived
// rates (overlap, failure, coverage, estimated-missed) are recomputed
// from the summed windows — averaging the replicas' own rates would
// weight a ten-page partition like a thousand-page one.
func AggregateLedgers(parts ...LedgerSummary) LedgerSummary {
	l := newLedger()
	for i := range parts {
		p := &parts[i]
		if p.PageLimit > l.pageLimit {
			l.pageLimit = p.PageLimit
		}
		for j := range p.Days {
			d := &p.Days[j]
			l.window(d.Day).add(d)
		}
	}
	return l.Summary()
}

// Summary aggregates the ledger. Days come out sorted ascending, so the
// result is deterministic.
func (l *Ledger) Summary() LedgerSummary {
	var s LedgerSummary
	s.PageLimit = l.pageLimit
	keys := make([]int, 0, len(l.days))
	for d := range l.days {
		keys = append(keys, d)
	}
	sort.Ints(keys)
	s.Days = make([]DayWindow, 0, len(keys))
	for _, d := range keys {
		w := l.days[d]
		s.DayWindow.add(w)
		s.Days = append(s.Days, *w)
	}
	s.Day = 0
	if missed := s.Gaps * uint64(l.pageLimit); missed > s.BackfillRecovered {
		s.EstimatedMissed = missed - s.BackfillRecovered
	}
	if s.Pairs > 0 {
		s.OverlapRate = float64(s.OverlapPairs) / float64(s.Pairs)
	}
	if polls := s.PollsOK + s.PollsFailed; polls > 0 {
		s.PollFailureRate = float64(s.PollsFailed) / float64(polls)
	}
	if s.Generated > 0 {
		s.CoverageRate = float64(s.NewBundles) / float64(s.Generated)
	}
	return s
}

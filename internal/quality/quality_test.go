package quality

import (
	"strings"
	"testing"

	"jitomev/internal/obs"
)

// feedClean drives a sentinel with a healthy synthetic run: plenty of
// polls, all overlapping, plus an analysis pass sitting on the paper's
// numbers.
func feedClean(s *Sentinel) {
	for i := 0; i < 50; i++ {
		s.ObservePoll(i/10, 50, 40, 10, i > 0, true)
	}
	s.ObserveGenerated(0, 2200) // 50 polls × 40 new = 2000 collected → ~91%
	s.ObserveDetails(60, 0, 0)
	s.ObserveAnalysis(AnalysisObs{
		TotalBundles:      100_000,
		Len3Bundles:       2770,
		Len3WithDetails:   2770,
		Len1Bundles:       90_000,
		Sandwiches:        38,
		Rejections:        map[string]uint64{"same_pool": 100, "net_negative": 50},
		MedianTipLen3:     1000,
		MedianTipSandwich: 2_000_000,
		DefensiveShare:    0.86,
		PerDay: []DayAnalysis{
			{Day: 0, Bundles: 50_000, Sandwiches: 19, DefensiveShare: 0.86},
			{Day: 1, Bundles: 50_000, Sandwiches: 19, DefensiveShare: 0.85},
		},
	})
}

func TestCleanRunAllOK(t *testing.T) {
	s := New(Config{}, nil)
	feedClean(s)
	rep := s.Evaluate()
	if rep.Status != OK {
		t.Fatalf("clean run verdict %v, report: %+v", rep.Status, rep.Checks)
	}
	for _, c := range rep.Checks {
		if c.Status != OK {
			t.Errorf("check %s: %v (%s)", c.Name, c.Status, c.Reason)
		}
	}
	// Every paper-anchored check must be present on a full feed.
	for _, name := range []string{
		"poll_failure_rate", "overlap_rate", "page_gaps", "coverage",
		"len3_share", "detail_completeness", "sandwich_rate",
		"defensive_share", "tip_separation",
	} {
		if rep.ByName(name).Name == "" {
			t.Errorf("check %s missing from report", name)
		}
	}
}

func TestPollFailureStormWarns(t *testing.T) {
	s := New(Config{}, nil)
	for i := 0; i < 40; i++ {
		s.ObservePoll(0, 50, 40, 10, i > 0, true)
		if i%5 == 0 { // 20% failure rate, well over the 2% WARN line
			s.ObservePollError()
		}
	}
	rep := s.Evaluate()
	c := rep.ByName("poll_failure_rate")
	if c.Status != WARN {
		t.Fatalf("poll_failure_rate = %v want WARN (%s)", c.Status, c.Reason)
	}
	if c.Reason == "" {
		t.Fatal("WARN check must carry a reason")
	}
	if rep.Status != WARN {
		t.Fatalf("aggregate %v want WARN", rep.Status)
	}
}

func TestOverlapCollapseGoesCrit(t *testing.T) {
	s := New(Config{}, nil)
	for i := 0; i < 30; i++ {
		s.ObservePoll(0, 50, 50, 0, i > 0, false) // no pair overlaps
	}
	rep := s.Evaluate()
	c := rep.ByName("overlap_rate")
	if c.Status != CRIT {
		t.Fatalf("overlap_rate = %v want CRIT (%s)", c.Status, c.Reason)
	}
	if rep.Status != CRIT {
		t.Fatalf("aggregate %v want CRIT", rep.Status)
	}
	// 29 broken pairs × 50-page limit, nothing backfilled.
	if got := rep.Coverage.EstimatedMissed; got != 29*50 {
		t.Fatalf("estimated missed %d want %d", got, 29*50)
	}
}

func TestBackfillCreditsMissedEstimate(t *testing.T) {
	s := New(Config{}, nil)
	for i := 0; i < 10; i++ {
		s.ObservePoll(0, 50, 50, 0, i > 0, i%3 != 0) // a few gaps
	}
	before := s.LedgerSummary().EstimatedMissed
	if before == 0 {
		t.Fatal("expected a nonzero missed estimate before backfill")
	}
	s.ObserveBackfill(int(before))
	if after := s.LedgerSummary().EstimatedMissed; after != 0 {
		t.Fatalf("estimate after full backfill %d want 0", after)
	}
}

func TestMinSampleGating(t *testing.T) {
	s := New(Config{}, nil)
	s.ObservePoll(0, 50, 10, 0, false, false)
	s.ObservePollError() // 50% failure rate but only 2 polls
	rep := s.Evaluate()
	if rep.Status != OK {
		t.Fatalf("tiny study verdict %v want OK: %+v", rep.Status, rep.Checks)
	}
	c := rep.ByName("poll_failure_rate")
	if !strings.Contains(c.Reason, "insufficient data") {
		t.Fatalf("gated check should say so, got %q", c.Reason)
	}
}

func TestNilSentinelIsSafe(t *testing.T) {
	var s *Sentinel
	s.ObservePoll(0, 50, 1, 0, true, true)
	s.ObservePollError()
	s.ObserveBackfill(1)
	s.ObserveBackfillError()
	s.ObserveGenerated(0, 1)
	s.ObserveDetails(1, 0, 0)
	s.ObserveAnalysis(AnalysisObs{})
	if got := s.Evaluate(); got.Status != OK || len(got.Checks) != 0 {
		t.Fatalf("nil Evaluate: %+v", got)
	}
	if s.DriftState() != nil {
		t.Fatal("nil DriftState should be nil")
	}
	if s.LedgerSummary().Pairs != 0 {
		t.Fatal("nil LedgerSummary should be zero")
	}
	var sb strings.Builder
	s.WriteReport(&sb) // must not panic
	if !strings.Contains(sb.String(), "OK") {
		t.Fatalf("nil WriteReport output %q", sb.String())
	}
}

func TestLedgerPerDayAttribution(t *testing.T) {
	s := New(Config{}, nil)
	s.ObservePoll(3, 50, 10, 0, false, false)
	s.ObservePoll(5, 50, 20, 5, true, true)
	s.ObservePollError() // lands on day 5, the last seen
	sum := s.LedgerSummary()
	if len(sum.Days) != 2 || sum.Days[0].Day != 3 || sum.Days[1].Day != 5 {
		t.Fatalf("days %+v", sum.Days)
	}
	d5 := sum.Days[1]
	if d5.PollsFailed != 1 || d5.NewBundles != 20 || d5.Duplicates != 5 || d5.OverlapPairs != 1 {
		t.Fatalf("day 5 window %+v", d5)
	}
}

func TestRegistryPublication(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(Config{}, reg)
	for i := 0; i < 30; i++ {
		s.ObservePoll(0, 50, 50, 0, i > 0, false)
	}
	s.Evaluate()
	snap := reg.DeterministicSnapshot()
	vals := make(map[string]float64)
	for _, m := range snap {
		vals[m.Name] = m.Value
	}
	if vals["quality_page_gaps_total"] != 29 {
		t.Fatalf("gap counter %v want 29", vals["quality_page_gaps_total"])
	}
	if vals["quality_estimated_missed_bundles"] != 29*50 {
		t.Fatalf("missed gauge %v want %d", vals["quality_estimated_missed_bundles"], 29*50)
	}
	if vals["quality_status"] != float64(CRIT) {
		t.Fatalf("status gauge %v want %v", vals["quality_status"], float64(CRIT))
	}
	if vals[`quality_check_status{check="overlap_rate"}`] != float64(CRIT) {
		t.Fatalf("check gauge %v", vals[`quality_check_status{check="overlap_rate"}`])
	}
}

func TestDriftStateOrderFixed(t *testing.T) {
	s := New(Config{}, nil)
	feedClean(s)
	st := s.DriftState()
	want := []string{
		"poll_failure_rate", "overlap_ewma", "overlap_cusum",
		"sandwich_rate_ewma", "defensive_share_cusum",
		"rejection_share_net_negative", "rejection_share_same_pool",
	}
	if len(st) != len(want) {
		t.Fatalf("drift state len %d want %d: %+v", len(st), len(want), st)
	}
	for i, w := range want {
		if st[i].Name != w {
			t.Fatalf("drift[%d] = %s want %s", i, st[i].Name, w)
		}
	}
}

func TestStatusJSONRoundTrip(t *testing.T) {
	for _, st := range []Status{OK, WARN, CRIT} {
		b, err := st.MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		var back Status
		if err := back.UnmarshalJSON(b); err != nil {
			t.Fatal(err)
		}
		if back != st {
			t.Fatalf("round trip %v -> %s -> %v", st, b, back)
		}
	}
	var bad Status
	if err := bad.UnmarshalJSON([]byte(`"sideways"`)); err == nil {
		t.Fatal("unknown status should not parse")
	}
}

func TestWriteReportTable(t *testing.T) {
	s := New(Config{}, nil)
	feedClean(s)
	var sb strings.Builder
	s.WriteReport(&sb)
	out := sb.String()
	if !strings.HasPrefix(out, "data quality: OK") {
		t.Fatalf("header missing: %q", out)
	}
	for _, frag := range []string{"overlap_rate", "len3_share", "generated)"} {
		if !strings.Contains(out, frag) {
			t.Errorf("table missing %q:\n%s", frag, out)
		}
	}
}

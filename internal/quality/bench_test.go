package quality

import "testing"

// BenchmarkQualityObserve measures the per-poll cost of feeding the
// sentinel — the hot path the collector pays on every page.
func BenchmarkQualityObserve(b *testing.B) {
	s := New(Config{}, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ObservePoll(i/720, 50, 40, 10, i > 0, i%20 != 0)
	}
}

// BenchmarkQualityEvaluate measures rendering the full verdict — the
// cost of one /qualityz request.
func BenchmarkQualityEvaluate(b *testing.B) {
	s := New(Config{}, nil)
	feedClean(s)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Evaluate()
	}
}

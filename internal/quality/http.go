package quality

import (
	"encoding/json"
	"net/http"

	"jitomev/internal/obs"
)

// QualityHandler serves the /qualityz JSON document: the sentinel is
// re-evaluated on every request, so the verdict is live. A nil sentinel
// serves an empty OK report, keeping the endpoint shape stable whether
// or not the binary wired quality up.
func (s *Sentinel) QualityHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(s.Evaluate())
	})
}

// HealthHandler serves the /healthz probe: 200 with a one-line JSON
// body while the aggregate verdict is OK or WARN, 503 on CRIT — the
// contract load balancers and the smoke script key on.
func (s *Sentinel) HealthHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		rep := s.Evaluate()
		w.Header().Set("Content-Type", "application/json")
		if rep.Status == CRIT {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		_ = json.NewEncoder(w).Encode(map[string]string{"status": rep.Status.String()})
	})
}

// HealthSource adapts the sentinel to obs.HealthHandler so binaries
// that also run an SLO engine can fold both monitors into a single
// /healthz probe: unhealthy on CRIT (the same bar HealthHandler's 503
// uses), with the failing checks' reasons surfaced. A nil sentinel is
// always healthy.
func (s *Sentinel) HealthSource() obs.HealthSource {
	return obs.HealthSource{
		Name: "quality",
		Check: func() (bool, string) {
			rep := s.Evaluate()
			if rep.Status != CRIT {
				return true, ""
			}
			reason := "verdict CRIT"
			for _, c := range rep.Checks {
				if c.Status == CRIT {
					reason += "; " + c.Name + ": " + c.Reason
				}
			}
			return false, reason
		},
	}
}

// OpsEndpoints returns the routes a binary passes to obs.NewOpsMux to
// mount the sentinel beside /metrics and /statusz.
func (s *Sentinel) OpsEndpoints() []obs.Endpoint {
	return []obs.Endpoint{
		{Path: "/qualityz", Handler: s.QualityHandler()},
		{Path: "/healthz", Handler: s.HealthHandler()},
	}
}

package quality

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"

	"jitomev/internal/obs"
)

// get issues a request against a handler and returns the recorder.
func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	return rec
}

// TestQualityzShape is the /qualityz golden-shape test: the top-level
// and per-check key sets are pinned so downstream scrapers can rely on
// them. Values are volatile; keys are not.
func TestQualityzShape(t *testing.T) {
	s := New(Config{}, nil)
	feedClean(s)
	rec := get(t, s.QualityHandler(), "/qualityz")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	wantTop := []string{"checks", "coverage", "drift", "status"}
	if got := sortedJSONKeys(doc); !equalStrings(got, wantTop) {
		t.Fatalf("top-level keys %v want %v", got, wantTop)
	}

	var checks []map[string]json.RawMessage
	if err := json.Unmarshal(doc["checks"], &checks); err != nil {
		t.Fatal(err)
	}
	if len(checks) == 0 {
		t.Fatal("no checks in document")
	}
	wantCheck := []string{"name", "reason", "status", "target", "value"}
	for _, c := range checks {
		if got := sortedJSONKeys(c); !equalStrings(got, wantCheck) {
			t.Fatalf("check keys %v want %v", got, wantCheck)
		}
	}

	var drift []map[string]json.RawMessage
	if err := json.Unmarshal(doc["drift"], &drift); err != nil {
		t.Fatal(err)
	}
	for _, d := range drift {
		for _, req := range []string{"name", "kind", "samples", "value"} {
			if _, ok := d[req]; !ok {
				t.Fatalf("drift entry missing %q: %v", req, sortedJSONKeys(d))
			}
		}
	}

	var cov map[string]json.RawMessage
	if err := json.Unmarshal(doc["coverage"], &cov); err != nil {
		t.Fatal(err)
	}
	for _, req := range []string{
		"polls_ok", "polls_failed", "pairs", "overlap_pairs", "gaps",
		"new_bundles", "duplicates", "backfill_recovered", "backfill_errors",
		"generated", "page_limit", "estimated_missed", "overlap_rate",
		"poll_failure_rate", "coverage_rate", "days",
	} {
		if _, ok := cov[req]; !ok {
			t.Fatalf("coverage missing %q: %v", req, sortedJSONKeys(cov))
		}
	}
}

func TestHealthzFlipsOnCrit(t *testing.T) {
	s := New(Config{}, nil)
	feedClean(s)
	if rec := get(t, s.HealthHandler(), "/healthz"); rec.Code != http.StatusOK {
		t.Fatalf("healthy probe status %d", rec.Code)
	}

	crit := New(Config{}, nil)
	for i := 0; i < 30; i++ {
		crit.ObservePoll(0, 50, 50, 0, i > 0, false) // overlap collapse
	}
	rec := get(t, crit.HealthHandler(), "/healthz")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("CRIT probe status %d want 503", rec.Code)
	}
	var body map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body["status"] != "crit" {
		t.Fatalf("probe body %v", body)
	}
}

func TestNilSentinelEndpoints(t *testing.T) {
	var s *Sentinel
	if rec := get(t, s.QualityHandler(), "/qualityz"); rec.Code != http.StatusOK {
		t.Fatalf("nil /qualityz status %d", rec.Code)
	}
	if rec := get(t, s.HealthHandler(), "/healthz"); rec.Code != http.StatusOK {
		t.Fatalf("nil /healthz status %d", rec.Code)
	}
}

func TestOpsEndpointsMount(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(Config{}, reg)
	feedClean(s)
	mux := obs.NewOpsMux(reg, false, s.OpsEndpoints()...)
	for _, path := range []string{"/metrics", "/statusz", "/qualityz", "/healthz"} {
		if rec := get(t, mux, path); rec.Code != http.StatusOK {
			t.Errorf("%s -> %d", path, rec.Code)
		}
	}
}

func sortedJSONKeys(m map[string]json.RawMessage) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

package quality

import (
	"fmt"
	"io"
	"strings"
)

// WriteReport renders the end-of-run quality table beside
// obs.WriteSummary: one row per check with its verdict and reason, then
// the coverage totals. Nil-safe like everything else in the package.
func (s *Sentinel) WriteReport(w io.Writer) {
	rep := s.Evaluate()
	fmt.Fprintf(w, "data quality: %s\n", strings.ToUpper(rep.Status.String()))
	if len(rep.Checks) == 0 {
		fmt.Fprintln(w, "(no checks evaluated)")
		return
	}
	width := 0
	for _, c := range rep.Checks {
		if len(c.Name) > width {
			width = len(c.Name)
		}
	}
	for _, c := range rep.Checks {
		pad := strings.Repeat(" ", width-len(c.Name))
		line := fmt.Sprintf("  %-4s %s%s  %s", strings.ToUpper(c.Status.String()), c.Name, pad, fmtCheckValue(c))
		if c.Reason != "" {
			line += "  (" + c.Reason + ")"
		}
		fmt.Fprintln(w, line)
	}
	cov := rep.Coverage
	fmt.Fprintf(w, "  polls %d ok / %d failed · overlap %.1f%% over %d pairs · %d gaps (est. %d bundles missed, %d backfilled)\n",
		cov.PollsOK, cov.PollsFailed, 100*cov.OverlapRate, cov.Pairs, cov.Gaps, cov.EstimatedMissed, cov.BackfillRecovered)
	if cov.Generated > 0 {
		fmt.Fprintf(w, "  coverage %.1f%% (%d collected of %d generated)\n",
			100*cov.CoverageRate, cov.NewBundles, cov.Generated)
	}
}

// fmtCheckValue renders a check's value/target pair compactly.
func fmtCheckValue(c Check) string {
	if c.Target == 0 {
		return fmt.Sprintf("%.4g", c.Value)
	}
	return fmt.Sprintf("%.4g vs %.4g", c.Value, c.Target)
}

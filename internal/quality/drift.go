package quality

import "math"

// The drift detectors are the streaming half of the sentinel: each one
// watches a single paper-anchored series (successive-poll overlap,
// poll failure rate, per-day sandwich rate, …) and accumulates evidence
// that the series has moved away from its calibration target. Both are
// pure fold functions over the observation sequence — no clocks, no
// randomness — so the detector state after a run is a bit-exact function
// of the observations and their order, which the worker-count
// determinism tests compare directly.

// EWMA is an exponentially weighted moving average: mean' = mean +
// alpha*(x - mean), seeded by the first observation. alpha trades
// responsiveness against noise; the sentinel's defaults use 0.05–0.2
// depending on how often the series ticks.
type EWMA struct {
	alpha float64
	mean  float64
	n     uint64
}

// NewEWMA builds a detector with the given smoothing factor (0 < alpha ≤ 1).
func NewEWMA(alpha float64) *EWMA { return &EWMA{alpha: alpha} }

// Observe folds one sample into the average.
func (e *EWMA) Observe(x float64) {
	e.n++
	if e.n == 1 {
		e.mean = x
		return
	}
	e.mean += e.alpha * (x - e.mean)
}

// Mean reads the current smoothed value (0 before any observation).
func (e *EWMA) Mean() float64 { return e.mean }

// Samples reads the observation count.
func (e *EWMA) Samples() uint64 { return e.n }

// CUSUM is a two-sided cumulative-sum change detector around a fixed
// target: the high side accumulates max(0, S + x - target - slack), the
// low side max(0, S + target - x - slack). Either side crossing the
// threshold is an alarm — the classic tabular CUSUM, which catches a
// sustained small shift long before a single-sample band would.
type CUSUM struct {
	target    float64
	slack     float64 // k: half the shift considered worth detecting
	threshold float64 // h: alarm when either side exceeds this

	hi, lo float64
	n      uint64
	alarms uint64
}

// NewCUSUM builds a detector around target with slack k and alarm
// threshold h.
func NewCUSUM(target, slack, threshold float64) *CUSUM {
	return &CUSUM{target: target, slack: slack, threshold: threshold}
}

// Observe folds one sample and reports whether the detector is in alarm
// after it.
func (c *CUSUM) Observe(x float64) bool {
	c.n++
	c.hi = math.Max(0, c.hi+x-c.target-c.slack)
	c.lo = math.Max(0, c.lo+c.target-x-c.slack)
	if c.InAlarm() {
		c.alarms++
		return true
	}
	return false
}

// InAlarm reports whether either cumulative sum currently exceeds the
// threshold.
func (c *CUSUM) InAlarm() bool { return c.hi > c.threshold || c.lo > c.threshold }

// Sides reads the high- and low-side cumulative sums.
func (c *CUSUM) Sides() (hi, lo float64) { return c.hi, c.lo }

// Samples reads the observation count.
func (c *CUSUM) Samples() uint64 { return c.n }

// Alarms reads how many observations left the detector in alarm.
func (c *CUSUM) Alarms() uint64 { return c.alarms }

// DetectorState is the serializable state of one drift detector — what
// /qualityz exposes and what the determinism tests compare bit for bit.
type DetectorState struct {
	Name    string  `json:"name"`
	Kind    string  `json:"kind"` // "ewma" or "cusum"
	Samples uint64  `json:"samples"`
	Value   float64 `json:"value"` // EWMA mean, or max(hi, lo) for CUSUM
	Hi      float64 `json:"hi,omitempty"`
	Lo      float64 `json:"lo,omitempty"`
	Alarms  uint64  `json:"alarms,omitempty"`
}

// state snapshots an EWMA.
func (e *EWMA) state(name string) DetectorState {
	return DetectorState{Name: name, Kind: "ewma", Samples: e.n, Value: e.mean}
}

// state snapshots a CUSUM.
func (c *CUSUM) state(name string) DetectorState {
	return DetectorState{
		Name: name, Kind: "cusum", Samples: c.n,
		Value: math.Max(c.hi, c.lo), Hi: c.hi, Lo: c.lo, Alarms: c.alarms,
	}
}

package quality

import (
	"encoding/json"
	"fmt"
)

// Status is a check verdict. The zero value is OK, so an unevaluated
// check never alarms by accident.
type Status uint8

// Verdict levels, ordered by severity.
const (
	OK Status = iota
	WARN
	CRIT
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case OK:
		return "ok"
	case WARN:
		return "warn"
	case CRIT:
		return "crit"
	}
	return fmt.Sprintf("status(%d)", uint8(s))
}

// MarshalJSON renders the status as its lowercase name.
func (s Status) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// UnmarshalJSON accepts the lowercase names.
func (s *Status) UnmarshalJSON(b []byte) error {
	var str string
	if err := json.Unmarshal(b, &str); err != nil {
		return err
	}
	switch str {
	case "ok":
		*s = OK
	case "warn":
		*s = WARN
	case "crit":
		*s = CRIT
	default:
		return fmt.Errorf("quality: unknown status %q", str)
	}
	return nil
}

// Check is one evaluated invariant.
type Check struct {
	Name   string  `json:"name"`
	Status Status  `json:"status"`
	Value  float64 `json:"value"`
	Target float64 `json:"target"`
	Reason string  `json:"reason"`
}

// Report is the full /qualityz document: the aggregate verdict, every
// check in a fixed order, the coverage ledger, and the drift-detector
// states.
type Report struct {
	Status   Status          `json:"status"`
	Checks   []Check         `json:"checks"`
	Coverage LedgerSummary   `json:"coverage"`
	Drift    []DetectorState `json:"drift"`
}

// Worst returns the most severe status among the checks.
func (r Report) Worst() Status { return r.Status }

// ByName returns the named check (zero Check when absent).
func (r Report) ByName(name string) Check {
	for _, c := range r.Checks {
		if c.Name == name {
			return c
		}
	}
	return Check{}
}

// Evaluate renders the sentinel's current state as a Report. It is a
// pure function of the observations fed so far, so two runs that fed
// identical sequences produce identical reports — the property the
// worker-count determinism tests pin. A nil sentinel evaluates to an
// empty OK report.
func (s *Sentinel) Evaluate() Report {
	if s == nil {
		return Report{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()

	cfg := s.cfg
	sum := s.led.Summary()
	var checks []Check

	add := func(c Check) { checks = append(checks, c) }
	grade := func(name string, value, target float64, st Status, reason string) {
		add(Check{Name: name, Status: st, Value: value, Target: target, Reason: reason})
	}

	// poll_failure_rate: the worse of the cumulative rate (sustained
	// loss over the whole window) and the EWMA (a recent burst the
	// cumulative average would dilute away).
	polls := int(sum.PollsOK + sum.PollsFailed)
	fr := sum.PollFailureRate
	if ew := s.pollFail.Mean(); ew > fr {
		fr = ew
	}
	switch {
	case polls < cfg.MinPolls:
		grade("poll_failure_rate", fr, 0, OK, fmt.Sprintf("insufficient data: %d polls < %d", polls, cfg.MinPolls))
	case fr >= cfg.PollFailCrit:
		grade("poll_failure_rate", fr, 0, CRIT,
			fmt.Sprintf("poll failure rate %.3f >= %.2f: the scrape is losing pages wholesale (%d of %d polls failed)",
				fr, cfg.PollFailCrit, sum.PollsFailed, polls))
	case fr >= cfg.PollFailWarn:
		grade("poll_failure_rate", fr, 0, WARN,
			fmt.Sprintf("poll failure rate %.3f >= %.2f: sustained transport faults (%d of %d polls failed)",
				fr, cfg.PollFailWarn, sum.PollsFailed, polls))
	default:
		grade("poll_failure_rate", fr, 0, OK, "")
	}

	// overlap_rate: §3.1 completeness invariant (H11, ~95%).
	ov := sum.OverlapRate
	switch {
	case int(sum.Pairs) < cfg.MinPairs:
		grade("overlap_rate", ov, TargetOverlapRate, OK,
			fmt.Sprintf("insufficient data: %d pairs < %d", sum.Pairs, cfg.MinPairs))
	case ov < cfg.OverlapCrit:
		grade("overlap_rate", ov, TargetOverlapRate, CRIT,
			fmt.Sprintf("overlap %.1f%% < %.0f%%: most successive pages share no bundle — completeness argument void",
				100*ov, 100*cfg.OverlapCrit))
	case ov < cfg.OverlapWarn || s.overlapCUS.InAlarm():
		reason := fmt.Sprintf("overlap %.1f%% < %.0f%% (paper ~95%%)", 100*ov, 100*cfg.OverlapWarn)
		if ov >= cfg.OverlapWarn {
			hi, lo := s.overlapCUS.Sides()
			reason = fmt.Sprintf("CUSUM drift alarm (hi=%.2f lo=%.2f): overlap shifting away from %.2f", hi, lo, TargetOverlapRate)
		}
		grade("overlap_rate", ov, TargetOverlapRate, WARN, reason)
	default:
		grade("overlap_rate", ov, TargetOverlapRate, OK, "")
	}

	// page_gaps: broken-pair fraction plus the missed-bundle estimate.
	gapRate := 0.0
	if sum.Pairs > 0 {
		gapRate = float64(sum.Gaps) / float64(sum.Pairs)
	}
	switch {
	case int(sum.Pairs) < cfg.MinPairs:
		grade("page_gaps", gapRate, 0, OK,
			fmt.Sprintf("insufficient data: %d pairs < %d", sum.Pairs, cfg.MinPairs))
	case gapRate > cfg.GapRateWarn:
		grade("page_gaps", gapRate, 0, WARN,
			fmt.Sprintf("%.1f%% of poll pairs broken (%d gaps, est. %d bundles missed)",
				100*gapRate, sum.Gaps, sum.EstimatedMissed))
	default:
		grade("page_gaps", gapRate, 0, OK, "")
	}

	// coverage: collected/generated — meaningful only when both sides of
	// the join report. A process that only sees the generation feed
	// (explorerd) has nothing collected by construction, so grading it
	// would be a permanent false CRIT.
	if sum.Generated > 0 {
		cov := sum.CoverageRate
		switch {
		case polls == 0:
			grade("coverage", cov, 1, OK, "insufficient data: no collection observed")
		case cov < cfg.CoverageCrit:
			grade("coverage", cov, 1, CRIT,
				fmt.Sprintf("coverage %.1f%% < %.0f%%: the dataset is a thin sample of the chain", 100*cov, 100*cfg.CoverageCrit))
		case cov < cfg.CoverageWarn:
			grade("coverage", cov, 1, WARN,
				fmt.Sprintf("coverage %.1f%% < %.0f%%", 100*cov, 100*cfg.CoverageWarn))
		default:
			grade("coverage", cov, 1, OK, "")
		}
	}

	// Analysis-fed invariants.
	if s.analysisSet {
		a := s.analysis

		// len3_share vs 2.77% (H10).
		if a.TotalBundles > 0 {
			share := float64(a.Len3Bundles) / float64(a.TotalBundles)
			dev := share - TargetLen3Share
			if dev < 0 {
				dev = -dev
			}
			switch {
			case int(a.Len3Bundles) < cfg.MinLen3:
				grade("len3_share", share, TargetLen3Share, OK,
					fmt.Sprintf("insufficient data: %d length-3 bundles < %d", a.Len3Bundles, cfg.MinLen3))
			case dev > 3*cfg.Len3ShareBand:
				grade("len3_share", share, TargetLen3Share, CRIT,
					fmt.Sprintf("length-3 share %.2f%% vs paper 2.77%%: collection economy is seeing a different population", 100*share))
			case dev > cfg.Len3ShareBand:
				grade("len3_share", share, TargetLen3Share, WARN,
					fmt.Sprintf("length-3 share %.2f%% outside ±%.1fpp of 2.77%%", 100*share, 100*cfg.Len3ShareBand))
			default:
				grade("len3_share", share, TargetLen3Share, OK, "")
			}
		}

		// detail_completeness: fetched details over length-3 bundles.
		if int(a.Len3Bundles) >= cfg.MinLen3 {
			comp := float64(a.Len3WithDetails) / float64(a.Len3Bundles)
			switch {
			case comp < cfg.DetailCrit:
				grade("detail_completeness", comp, 1, CRIT,
					fmt.Sprintf("only %.1f%% of length-3 bundles have details (%d batches failed, %d ids pending)",
						100*comp, s.led.detailBatchErr, s.led.detailsPending))
			case comp < cfg.DetailWarn:
				grade("detail_completeness", comp, 1, WARN,
					fmt.Sprintf("%.1f%% of length-3 bundles have details (%d ids pending)", 100*comp, s.led.detailsPending))
			default:
				grade("detail_completeness", comp, 1, OK, "")
			}
		}

		// sandwich_rate vs 0.038% (H8).
		if a.TotalBundles > 0 && int(a.Sandwiches) >= cfg.MinSandwiches {
			share := float64(a.Sandwiches) / float64(a.TotalBundles)
			switch {
			case share < cfg.SandwichShareMin || share > cfg.SandwichShareMax:
				grade("sandwich_rate", share, TargetSandwichShare, WARN,
					fmt.Sprintf("sandwich share %.4f%% outside [%.4f%%, %.2f%%] (paper 0.038%%)",
						100*share, 100*cfg.SandwichShareMin, 100*cfg.SandwichShareMax))
			default:
				grade("sandwich_rate", share, TargetSandwichShare, OK, "")
			}
		} else {
			grade("sandwich_rate", 0, TargetSandwichShare, OK,
				fmt.Sprintf("insufficient data: %d sandwiches < %d", a.Sandwiches, cfg.MinSandwiches))
		}

		// defensive_share vs 86% (H5).
		if a.Len1Bundles > 0 {
			dev := a.DefensiveShare - TargetDefensiveShare
			if dev < 0 {
				dev = -dev
			}
			switch {
			case dev > cfg.DefensiveBand:
				grade("defensive_share", a.DefensiveShare, TargetDefensiveShare, WARN,
					fmt.Sprintf("defensive share %.1f%% outside ±%.0fpp of 86%%", 100*a.DefensiveShare, 100*cfg.DefensiveBand))
			default:
				grade("defensive_share", a.DefensiveShare, TargetDefensiveShare, OK, "")
			}
		}

		// tip_separation: median sandwich tip over median length-3 tip
		// (Figure 4's three orders of magnitude, floored at 100×).
		if int(a.Sandwiches) >= cfg.MinSandwiches && a.MedianTipLen3 > 0 {
			ratio := a.MedianTipSandwich / a.MedianTipLen3
			switch {
			case ratio < cfg.TipSepCrit:
				grade("tip_separation", ratio, TargetTipSeparation, CRIT,
					fmt.Sprintf("median sandwich tip only %.1f× the length-3 median: the Figure 4 separation has collapsed", ratio))
			case ratio < cfg.TipSepWarn:
				grade("tip_separation", ratio, TargetTipSeparation, WARN,
					fmt.Sprintf("median sandwich tip %.0f× the length-3 median (< %.0f×)", ratio, cfg.TipSepWarn))
			default:
				grade("tip_separation", ratio, TargetTipSeparation, OK, "")
			}
		} else {
			grade("tip_separation", 0, TargetTipSeparation, OK,
				fmt.Sprintf("insufficient data: %d sandwiches < %d", a.Sandwiches, cfg.MinSandwiches))
		}
	}

	rep := Report{Checks: checks, Coverage: sum, Drift: s.driftStateLocked()}
	for _, c := range checks {
		if c.Status > rep.Status {
			rep.Status = c.Status
		}
	}
	s.publishVerdictLocked(rep)
	return rep
}

// publishVerdictLocked mirrors the report onto the registry. Caller
// holds s.mu.
func (s *Sentinel) publishVerdictLocked(rep Report) {
	if s.reg == nil {
		return
	}
	s.statusG.Set(int64(rep.Status))
	for _, c := range rep.Checks {
		g, ok := s.checkG[c.Name]
		if !ok {
			g = s.reg.Gauge("quality_check_status", "check", c.Name)
			s.checkG[c.Name] = g
		}
		g.Set(int64(c.Status))
	}
}

// Package quality is the measurement pipeline's data-quality sentinel:
// it consumes the raw signals the other layers already emit — poll and
// backfill outcomes from the collector, per-day landed counts from the
// workload, rejection tallies and tip medians from the analysis pass —
// and turns them into live health verdicts. The paper's headline numbers
// rest on collection invariants (successive-poll overlap ~95%, length-3
// share 2.77%, the three-orders-of-magnitude tip gap between benign and
// sandwich bundles) that can silently rot during a long scrape; the
// sentinel makes each invariant a continuously evaluated check with an
// OK/WARN/CRIT verdict and a machine-readable reason.
//
// Three moving parts:
//
//   - a coverage ledger (Ledger) tracking per-day poll coverage, overlap
//     fraction, detected page gaps and an estimated-missed-bundles
//     figure, generalizing collector.OverlapRate to paper §3.1 semantics;
//   - streaming drift detectors (EWMA + CUSUM) over the paper-anchored
//     series — pure folds over the observation sequence, so detector
//     state is bit-identical at any worker count;
//   - a verdict engine (Evaluate) mapping checks to OK/WARN/CRIT,
//     rendered as the /qualityz JSON document, the /healthz probe (which
//     flips non-200 on CRIT), and an end-of-run table beside
//     obs.WriteSummary.
//
// Like the obs layer it builds on, everything is nil-safe: methods on a
// nil *Sentinel are no-ops, so instrumented code never branches on
// "is the sentinel attached".
package quality

import (
	"sort"
	"sync"

	"jitomev/internal/obs"
)

// Paper-anchored calibration targets the default thresholds are built
// around (§3.1, §4.1, §4.2, Figure 4).
const (
	// TargetOverlapRate is the successive-poll overlap the paper
	// measured (~95%, H11).
	TargetOverlapRate = 0.95
	// TargetLen3Share is the length-3 share of all bundles (2.77%, H10).
	TargetLen3Share = 0.0277
	// TargetDefensiveShare is the defensive share of length-1 bundles
	// (>86%, H5).
	TargetDefensiveShare = 0.86
	// TargetSandwichShare is the sandwich share of all bundles
	// (0.038%, H8).
	TargetSandwichShare = 0.00038
	// TargetTipSeparation is the minimum ratio of median sandwich tip to
	// median length-3 tip (the paper measured >2,000,000 vs 1,000
	// lamports — three orders of magnitude; 100× is the floor below
	// which the Figure 4 separation story no longer holds).
	TargetTipSeparation = 100
)

// Config tunes the sentinel. Zero values select the defaults below;
// every threshold is deliberately generous — a verdict is for "the
// collection methodology is rotting", not "this run differs 10% from
// the paper".
type Config struct {
	// PollFailWarn / PollFailCrit bound the EWMA poll failure rate
	// (defaults 0.02 / 0.25): a sustained >2% failure rate warrants
	// attention, >25% means the scrape is losing pages wholesale.
	PollFailWarn float64
	PollFailCrit float64

	// OverlapWarn / OverlapCrit bound the overlap rate from below
	// (defaults 0.85 / 0.50). The paper's own figure is ~0.95; bursts
	// legitimately cost a few points.
	OverlapWarn float64
	OverlapCrit float64

	// GapRateWarn bounds the broken-pair fraction (default 0.15).
	GapRateWarn float64

	// Len3ShareBand is the acceptable half-width around TargetLen3Share
	// for WARN (default 0.015); 3× the band is CRIT.
	Len3ShareBand float64

	// DefensiveBand is the acceptable half-width around
	// TargetDefensiveShare (default 0.16).
	DefensiveBand float64

	// SandwichShareMin / SandwichShareMax bound the sandwich share
	// (defaults 2e-5 / 5e-3): an order of magnitude either side of the
	// paper's 0.038% before the drift is worth a verdict.
	SandwichShareMin float64
	SandwichShareMax float64

	// TipSepWarn / TipSepCrit bound the median-tip separation ratio
	// from below (defaults 100 / 10).
	TipSepWarn float64
	TipSepCrit float64

	// DetailWarn / DetailCrit bound detail completeness (fetched details
	// over length-3 bundles) from below (defaults 0.95 / 0.50).
	DetailWarn float64
	DetailCrit float64

	// CoverageWarn / CoverageCrit bound per-day coverage (collected over
	// generated) from below when a generation feed is attached (defaults
	// 0.50 / 0.25 — the polling economy plus outages legitimately cost a
	// lot of coverage; see EXPERIMENTS.md's 81–85% canonical figures).
	CoverageWarn float64
	CoverageCrit float64

	// MinPolls, MinPairs, MinLen3, MinSandwiches gate the corresponding
	// checks: below the floor a check reports OK with an
	// "insufficient data" reason instead of judging noise (defaults
	// 8 / 8 / 50 / 5).
	MinPolls      int
	MinPairs      int
	MinLen3       int
	MinSandwiches int
}

// Defaults fills zero fields and returns the result.
func (c Config) Defaults() Config {
	def := func(v *float64, d float64) {
		if *v == 0 {
			*v = d
		}
	}
	def(&c.PollFailWarn, 0.02)
	def(&c.PollFailCrit, 0.25)
	def(&c.OverlapWarn, 0.85)
	def(&c.OverlapCrit, 0.50)
	def(&c.GapRateWarn, 0.15)
	def(&c.Len3ShareBand, 0.015)
	def(&c.DefensiveBand, 0.16)
	def(&c.SandwichShareMin, 2e-5)
	def(&c.SandwichShareMax, 5e-3)
	def(&c.TipSepWarn, TargetTipSeparation)
	def(&c.TipSepCrit, 10)
	def(&c.DetailWarn, 0.95)
	def(&c.DetailCrit, 0.50)
	def(&c.CoverageWarn, 0.50)
	def(&c.CoverageCrit, 0.25)
	if c.MinPolls == 0 {
		c.MinPolls = 8
	}
	if c.MinPairs == 0 {
		c.MinPairs = 8
	}
	if c.MinLen3 == 0 {
		c.MinLen3 = 50
	}
	if c.MinSandwiches == 0 {
		c.MinSandwiches = 5
	}
	return c
}

// AnalysisObs is what one analysis pass feeds the sentinel: the scalar
// invariants plus the per-day series the drift detectors stream over.
// The report layer builds it from Results; the sentinel never imports
// the detector, so criterion names travel as strings.
type AnalysisObs struct {
	TotalBundles    uint64
	Len3Bundles     uint64
	Len3WithDetails uint64
	Len1Bundles     uint64
	Sandwiches      uint64

	// Rejections maps criterion name → rejected count.
	Rejections map[string]uint64

	// MedianTipLen3 / MedianTipSandwich in lamports (0 when the
	// population is empty).
	MedianTipLen3     float64
	MedianTipSandwich float64

	// DefensiveShare is the overall defensive fraction of length-1
	// bundles.
	DefensiveShare float64

	// PerDay carries the day series in ascending day order; the drift
	// detectors fold it in exactly that order.
	PerDay []DayAnalysis
}

// DayAnalysis is one day of the analysis series.
type DayAnalysis struct {
	Day            int
	Bundles        uint64
	Sandwiches     uint64
	DefensiveShare float64
}

// Sentinel is the live data-quality sentinel. Construct with New,
// attach to the collector and the analysis pass, and Evaluate (or serve
// /qualityz) at any point — mid-run values are as meaningful as
// end-of-run ones. All methods are safe for concurrent use and all are
// no-ops on a nil receiver.
type Sentinel struct {
	mu  sync.Mutex
	cfg Config
	led *Ledger

	// Streaming detectors over the collection-time series.
	pollFail    *EWMA  // per-poll failure indicator
	overlapEWMA *EWMA  // per-pair overlap indicator
	overlapCUS  *CUSUM // same series, sustained-shift detector

	// Streaming detectors over the per-day analysis series.
	sandwichRate *EWMA  // per-day sandwiches/bundles
	defenseCUS   *CUSUM // per-day defensive share

	// Per-criterion rejection-share EWMAs, keyed by criterion name —
	// multi-pass analysis (checkpointed runs) drifts these.
	rejShare map[string]*EWMA

	// Last analysis observation (zero until ObserveAnalysis).
	analysis    AnalysisObs
	analysisSet bool

	lastDay int

	// Registry handles (nil when constructed without one).
	reg        *obs.Registry
	gapCounter *obs.Counter
	missedG    *obs.Gauge
	statusG    *obs.Gauge
	checkG     map[string]*obs.Gauge
}

// New builds a sentinel with cfg (zero value = defaults), publishing
// its gap counter, estimated-missed gauge and verdict gauges onto reg
// (nil = unpublished).
func New(cfg Config, reg *obs.Registry) *Sentinel {
	s := &Sentinel{
		cfg:          cfg.Defaults(),
		led:          newLedger(),
		pollFail:     NewEWMA(0.1),
		overlapEWMA:  NewEWMA(0.05),
		overlapCUS:   NewCUSUM(TargetOverlapRate, 0.05, 5),
		sandwichRate: NewEWMA(0.2),
		defenseCUS:   NewCUSUM(TargetDefensiveShare, 0.08, 3),
		rejShare:     make(map[string]*EWMA),
		reg:          reg,
		checkG:       make(map[string]*obs.Gauge),
	}
	if reg != nil {
		reg.Help("quality_page_gaps_total", "Broken successive-poll pairs (paper §3.1 missed-bundle signal).")
		reg.Help("quality_estimated_missed_bundles", "Lower-bound estimate of bundles that scrolled past uncollected.")
		reg.Help("quality_status", "Aggregate data-quality verdict: 0 OK, 1 WARN, 2 CRIT.")
		s.gapCounter = reg.Counter("quality_page_gaps_total")
		s.missedG = reg.Gauge("quality_estimated_missed_bundles")
		s.statusG = reg.Gauge("quality_status")
	}
	return s
}

// Config reads the resolved (defaulted) configuration.
func (s *Sentinel) Config() Config {
	if s == nil {
		return Config{}.Defaults()
	}
	return s.cfg
}

// ObservePoll records one successful recent-bundles poll: the day the
// page landed in, the page size polled with, the page yield, and — when
// the poll formed a successive pair — whether the pages overlapped.
func (s *Sentinel) ObservePoll(day, pageLimit, newBundles, dups int, paired, overlap bool) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lastDay = day
	s.led.pageLimit = pageLimit
	w := s.led.window(day)
	w.PollsOK++
	w.NewBundles += uint64(newBundles)
	w.Duplicates += uint64(dups)
	s.pollFail.Observe(0)
	if paired {
		w.Pairs++
		x := 0.0
		if overlap {
			w.OverlapPairs++
			x = 1
		} else {
			w.Gaps++
			s.gapCounter.Inc()
		}
		s.overlapEWMA.Observe(x)
		s.overlapCUS.Observe(x)
		s.publishMissedLocked()
	}
}

// ObservePollError records one failed poll, attributed to the last day
// the collector saw (a failed poll carries no page to date it by).
func (s *Sentinel) ObservePollError() {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.led.window(s.lastDay).PollsFailed++
	s.pollFail.Observe(1)
}

// ObserveBackfill records one backfill page's recovered bundles.
func (s *Sentinel) ObserveBackfill(recovered int) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.led.window(s.lastDay).BackfillRecovered += uint64(recovered)
	s.publishMissedLocked()
}

// ObserveBackfillError records one backfill page abandoned on a
// transport failure.
func (s *Sentinel) ObserveBackfillError() {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.led.window(s.lastDay).BackfillErrors++
}

// ObserveGenerated records ground truth for one day: how many bundles
// the workload actually landed on chain. Per-day coverage becomes a
// measured fraction once this feed is attached.
func (s *Sentinel) ObserveGenerated(day int, bundles uint64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.led.window(day).Generated += bundles
}

// ObserveDetails records one FetchDetails outcome.
func (s *Sentinel) ObserveDetails(fetched, pending int, batchesFailed uint64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.led.detailsFetched += uint64(fetched)
	s.led.detailsPending = uint64(pending)
	s.led.detailBatchErr += batchesFailed
}

// ObserveAnalysis feeds one analysis pass: scalars replace the previous
// observation, per-day series and rejection shares stream into the
// drift detectors in deterministic (day, sorted-criterion) order.
func (s *Sentinel) ObserveAnalysis(a AnalysisObs) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.analysis = a
	s.analysisSet = true
	for _, d := range a.PerDay {
		if d.Bundles > 0 {
			s.sandwichRate.Observe(float64(d.Sandwiches) / float64(d.Bundles))
		}
		s.defenseCUS.Observe(d.DefensiveShare)
	}
	if total := rejTotal(a.Rejections); total > 0 {
		for _, name := range sortedKeys(a.Rejections) {
			e, ok := s.rejShare[name]
			if !ok {
				e = NewEWMA(0.3)
				s.rejShare[name] = e
			}
			e.Observe(float64(a.Rejections[name]) / float64(total))
		}
	}
}

// publishMissedLocked refreshes the estimated-missed gauge. Caller
// holds s.mu.
func (s *Sentinel) publishMissedLocked() {
	if s.missedG == nil {
		return
	}
	s.missedG.Set(int64(s.led.Summary().EstimatedMissed))
}

// LedgerSummary snapshots the coverage ledger.
func (s *Sentinel) LedgerSummary() LedgerSummary {
	if s == nil {
		return LedgerSummary{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.led.Summary()
}

// DriftState snapshots every drift detector in a fixed, deterministic
// order — the state the worker-count determinism tests compare.
func (s *Sentinel) DriftState() []DetectorState {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.driftStateLocked()
}

func (s *Sentinel) driftStateLocked() []DetectorState {
	out := []DetectorState{
		s.pollFail.state("poll_failure_rate"),
		s.overlapEWMA.state("overlap_ewma"),
		s.overlapCUS.state("overlap_cusum"),
		s.sandwichRate.state("sandwich_rate_ewma"),
		s.defenseCUS.state("defensive_share_cusum"),
	}
	for _, name := range sortedEWMAKeys(s.rejShare) {
		out = append(out, s.rejShare[name].state("rejection_share_"+name))
	}
	return out
}

// sortedKeys returns m's keys ascending.
func sortedKeys(m map[string]uint64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedEWMAKeys(m map[string]*EWMA) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func rejTotal(m map[string]uint64) uint64 {
	var t uint64
	for _, n := range m {
		t += n
	}
	return t
}

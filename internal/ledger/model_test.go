package ledger

import (
	"fmt"
	"math/rand"
	"testing"

	"jitomev/internal/amm"
	"jitomev/internal/solana"
	"jitomev/internal/token"
)

// Model-based test: drive the bank with random transactions and bundles
// while mirroring every *committed* effect in a naive reference model
// (plain maps, full copies at checkpoints). After each step the bank must
// agree with the model exactly. This exercises the journal's
// checkpoint/commit/rollback machinery far beyond the hand-written cases.

type model struct {
	lamports map[solana.Pubkey]solana.Lamports
	tokens   map[TokenKey]uint64
	reserves map[solana.Pubkey][2]uint64
}

func snapshotModel(b *Bank) *model {
	m := &model{
		lamports: make(map[solana.Pubkey]solana.Lamports),
		tokens:   make(map[TokenKey]uint64),
		reserves: make(map[solana.Pubkey][2]uint64),
	}
	for k, v := range b.lamports {
		m.lamports[k] = v
	}
	for k, v := range b.tokens {
		m.tokens[k] = v
	}
	for k, p := range b.pools {
		m.reserves[k] = [2]uint64{p.ReserveA, p.ReserveB}
	}
	return m
}

func (m *model) equalTo(t *testing.T, b *Bank, step int) {
	t.Helper()
	for k, v := range m.lamports {
		if b.lamports[k] != v {
			t.Fatalf("step %d: lamports[%s] = %d, model %d", step, k.Short(), b.lamports[k], v)
		}
	}
	for k, v := range b.lamports {
		if m.lamports[k] != v {
			t.Fatalf("step %d: bank has extra lamports[%s] = %d", step, k.Short(), v)
		}
	}
	for k, v := range m.tokens {
		if b.tokens[k] != v {
			t.Fatalf("step %d: tokens mismatch", step)
		}
	}
	for k, v := range b.tokens {
		if m.tokens[k] != v {
			t.Fatalf("step %d: bank has extra token balance %d", step, v)
		}
	}
	for k, r := range m.reserves {
		p := b.pools[k]
		if p.ReserveA != r[0] || p.ReserveB != r[1] {
			t.Fatalf("step %d: pool reserves mismatch", step)
		}
	}
}

func TestBankAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	bank := NewBank()
	reg := token.NewRegistry()

	// Small world: 4 users, 2 pools.
	users := make([]*solana.Keypair, 4)
	for i := range users {
		users[i] = solana.NewKeypairFromSeed(fmt.Sprintf("model/u%d", i))
		bank.CreditLamports(users[i].Pubkey(), 10*solana.LamportsPerSOL)
		bank.MintTo(users[i].Pubkey(), token.SOL.Address, 1e12)
	}
	pools := make([]*amm.Pool, 2)
	for i := range pools {
		m := reg.NewMemecoin(fmt.Sprintf("M%d", i))
		pools[i] = amm.New(m.Address, token.SOL.Address, 1e11, 1e11, amm.DefaultFeeBps)
		bank.AddPool(pools[i])
		for _, u := range users {
			bank.MintTo(u.Pubkey(), m.Address, 1e11)
		}
	}
	tipAcct := solana.NewKeypairFromSeed("model/tip").Pubkey()

	ref := snapshotModel(bank)
	nonce := uint64(0)

	randomTx := func() *solana.Transaction {
		nonce++
		u := users[rng.Intn(len(users))]
		var instrs []solana.Instruction
		n := 1 + rng.Intn(3)
		for i := 0; i < n; i++ {
			switch rng.Intn(4) {
			case 0: // transfer, sometimes unaffordable
				amt := solana.Lamports(rng.Intn(3) * 2_000_000_000)
				if amt == 0 {
					amt = 1_000
				}
				instrs = append(instrs, &solana.Transfer{
					From: u.Pubkey(), To: users[rng.Intn(len(users))].Pubkey(), Amount: amt})
			case 1: // swap, sometimes with an impossible MinOut
				p := pools[rng.Intn(len(pools))]
				mint := p.MintA
				if rng.Intn(2) == 0 {
					mint = p.MintB
				}
				sw := &solana.Swap{Pool: p.Address, InputMint: mint,
					AmountIn: uint64(rng.Intn(1_000_000) + 1)}
				if rng.Intn(4) == 0 {
					sw.MinOut = 1 << 60
				}
				instrs = append(instrs, sw)
			case 2:
				instrs = append(instrs, &solana.Tip{TipAccount: tipAcct,
					Amount: solana.Lamports(rng.Intn(10_000) + 1)})
			default:
				instrs = append(instrs, &solana.Memo{Data: []byte{byte(rng.Intn(256))}})
			}
		}
		return solana.NewTransaction(u, nonce, solana.Lamports(rng.Intn(1_000)), instrs...)
	}

	const steps = 800
	for step := 0; step < steps; step++ {
		if rng.Intn(3) == 0 {
			// Bundle of 1–4 transactions: all-or-nothing.
			txs := make([]*solana.Transaction, 1+rng.Intn(4))
			for i := range txs {
				txs[i] = randomTx()
			}
			if _, err := bank.ExecuteBundle(txs); err == nil {
				ref = snapshotModel(bank) // committed: adopt new state
			}
			// On error the bank must have rolled back to ref exactly.
		} else {
			tx := randomTx()
			res, err := bank.ExecuteTx(tx)
			if err == nil {
				_ = res // fee charged regardless of res.Err; adopt state
				ref = snapshotModel(bank)
			}
			// err != nil: rejected outright, state must equal ref.
		}
		ref.equalTo(t, bank, step)

		// The journal must be fully unwound between operations.
		if bank.journal != nil {
			t.Fatalf("step %d: dangling journal", step)
		}
	}
}

// TestBundleRollbackConservation: lamports are conserved across arbitrary
// bundle failures — nothing is minted or burned by rollback paths (fees
// inside failed bundles included).
func TestBundleRollbackConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	bank := NewBank()
	a := solana.NewKeypairFromSeed("cons/a")
	b := solana.NewKeypairFromSeed("cons/b")
	tip := solana.NewKeypairFromSeed("cons/tip").Pubkey()
	bank.CreditLamports(a.Pubkey(), solana.LamportsPerSOL)
	bank.CreditLamports(b.Pubkey(), solana.LamportsPerSOL)

	total := func() solana.Lamports {
		var sum solana.Lamports
		for _, v := range bank.lamports {
			sum += v
		}
		return sum
	}
	// Committed fees are burned from the payer but tracked in
	// FeesCollected; include them so the invariant is exact. Any rollback
	// accounting bug — a fee kept after an undone bundle, a counter not
	// unwound — breaks this equality.
	grand := func() solana.Lamports { return total() + bank.FeesCollected }

	want := grand()
	nonce := uint64(0)
	for i := 0; i < 300; i++ {
		nonce++
		txs := []*solana.Transaction{
			solana.NewTransaction(a, nonce, solana.Lamports(rng.Intn(100)),
				&solana.Transfer{From: a.Pubkey(), To: b.Pubkey(),
					Amount: solana.Lamports(rng.Intn(2_000_000_000))}),
			solana.NewTransaction(b, nonce, 0,
				&solana.Tip{TipAccount: tip, Amount: solana.Lamports(rng.Intn(5_000) + 1)}),
		}
		bank.ExecuteBundle(txs)
		if got := grand(); got != want {
			t.Fatalf("iteration %d: lamports not conserved: %d != %d", i, got, want)
		}
	}
}

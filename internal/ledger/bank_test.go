package ledger

import (
	"errors"
	"testing"

	"jitomev/internal/amm"
	"jitomev/internal/solana"
	"jitomev/internal/token"
)

type fixture struct {
	bank  *Bank
	reg   *token.Registry
	meme  token.Mint
	pool  *amm.Pool
	alice *solana.Keypair
	bob   *solana.Keypair
	tip   solana.Pubkey
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	f := &fixture{
		bank:  NewBank(),
		reg:   token.NewRegistry(),
		alice: solana.NewKeypairFromSeed("alice"),
		bob:   solana.NewKeypairFromSeed("bob"),
		tip:   solana.NewKeypairFromSeed("tip-account").Pubkey(),
	}
	f.meme = f.reg.NewMemecoin("MEME")
	f.pool = amm.New(f.meme.Address, token.SOL.Address, 1e12, 1e12, amm.DefaultFeeBps)
	f.bank.AddPool(f.pool)

	for _, kp := range []*solana.Keypair{f.alice, f.bob} {
		f.bank.CreditLamports(kp.Pubkey(), 10*solana.LamportsPerSOL)
		f.bank.MintTo(kp.Pubkey(), token.SOL.Address, 100_000_000_000) // 100 wSOL
		f.bank.MintTo(kp.Pubkey(), f.meme.Address, 50_000_000_000)
	}
	return f
}

func TestTransferMovesLamports(t *testing.T) {
	f := newFixture(t)
	tx := solana.NewTransaction(f.alice, 1, 0,
		&solana.Transfer{From: f.alice.Pubkey(), To: f.bob.Pubkey(), Amount: 1_000_000})

	res, err := f.bank.ExecuteTx(tx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil {
		t.Fatalf("instruction failed: %v", res.Err)
	}
	wantAlice := 10*solana.LamportsPerSOL - 1_000_000 - solana.BaseFee
	if got := f.bank.Lamports(f.alice.Pubkey()); got != wantAlice {
		t.Errorf("alice = %d, want %d", got, wantAlice)
	}
	if got := f.bank.Lamports(f.bob.Pubkey()); got != 10*solana.LamportsPerSOL+1_000_000 {
		t.Errorf("bob = %d", got)
	}
}

func TestTransferRequiresSigner(t *testing.T) {
	f := newFixture(t)
	// Alice signs a transfer out of Bob's account.
	tx := solana.NewTransaction(f.alice, 1, 0,
		&solana.Transfer{From: f.bob.Pubkey(), To: f.alice.Pubkey(), Amount: 1})
	res, err := f.bank.ExecuteTx(tx)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(res.Err, ErrNotSigner) {
		t.Fatalf("got %v, want ErrNotSigner", res.Err)
	}
	if got := f.bank.Lamports(f.bob.Pubkey()); got != 10*solana.LamportsPerSOL {
		t.Error("unauthorized transfer moved funds")
	}
}

func TestFeeChargedOnInstructionFailure(t *testing.T) {
	f := newFixture(t)
	tx := solana.NewTransaction(f.alice, 1, 777,
		&solana.Transfer{From: f.alice.Pubkey(), To: f.bob.Pubkey(), Amount: 1 << 62})
	res, err := f.bank.ExecuteTx(tx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Err == nil {
		t.Fatal("oversized transfer succeeded")
	}
	want := 10*solana.LamportsPerSOL - solana.BaseFee - 777
	if got := f.bank.Lamports(f.alice.Pubkey()); got != want {
		t.Errorf("fee not charged on failure: alice = %d, want %d", got, want)
	}
	if f.bank.FailedTxCount != 1 {
		t.Errorf("FailedTxCount = %d", f.bank.FailedTxCount)
	}
}

func TestRejectWhenFeeUnaffordable(t *testing.T) {
	f := newFixture(t)
	pauper := solana.NewKeypairFromSeed("pauper")
	tx := solana.NewTransaction(pauper, 1, 0, &solana.Memo{Data: []byte("x")})
	if _, err := f.bank.ExecuteTx(tx); !errors.Is(err, ErrInsufficientLamports) {
		t.Fatalf("got %v, want ErrInsufficientLamports", err)
	}
	if f.bank.TxCount != 0 {
		t.Error("rejected tx counted")
	}
}

func TestSwapUpdatesBalancesAndPool(t *testing.T) {
	f := newFixture(t)
	in := uint64(1_000_000_000) // 1 wSOL
	tx := solana.NewTransaction(f.alice, 1, 0,
		&solana.Swap{Pool: f.pool.Address, InputMint: token.SOL.Address, AmountIn: in})

	res, err := f.bank.ExecuteTx(tx)
	if err != nil || res.Err != nil {
		t.Fatalf("swap failed: %v / %v", err, res.Err)
	}
	if len(res.Swaps) != 1 {
		t.Fatalf("Swaps = %d entries", len(res.Swaps))
	}
	sw := res.Swaps[0]
	if sw.AmountIn != in || sw.AmountOut == 0 {
		t.Fatalf("swap effect %+v", sw)
	}
	if got := f.bank.TokenBalance(f.alice.Pubkey(), token.SOL.Address); got != 100_000_000_000-in {
		t.Errorf("wSOL balance = %d", got)
	}
	if got := f.bank.TokenBalance(f.alice.Pubkey(), f.meme.Address); got != 50_000_000_000+sw.AmountOut {
		t.Errorf("meme balance = %d", got)
	}

	// Token deltas must mirror the swap exactly.
	if len(res.TokenDeltas) != 2 {
		t.Fatalf("TokenDeltas = %v", res.TokenDeltas)
	}
	for _, d := range res.TokenDeltas {
		switch d.Mint {
		case token.SOL.Address:
			if d.Delta != -int64(in) {
				t.Errorf("SOL delta = %d", d.Delta)
			}
		case f.meme.Address:
			if d.Delta != int64(sw.AmountOut) {
				t.Errorf("meme delta = %d", d.Delta)
			}
		default:
			t.Errorf("unexpected delta mint %s", d.Mint.Short())
		}
	}
}

func TestSwapSlippageFailureRollsBack(t *testing.T) {
	f := newFixture(t)
	quote, _ := f.pool.QuoteOut(token.SOL.Address, 1_000_000_000)
	tx := solana.NewTransaction(f.alice, 1, 0,
		&solana.Swap{Pool: f.pool.Address, InputMint: token.SOL.Address,
			AmountIn: 1_000_000_000, MinOut: quote + 1})

	res, err := f.bank.ExecuteTx(tx)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(res.Err, amm.ErrSlippageExceeded) {
		t.Fatalf("got %v", res.Err)
	}
	if got := f.bank.TokenBalance(f.alice.Pubkey(), token.SOL.Address); got != 100_000_000_000 {
		t.Error("failed swap left token state modified")
	}
	p, _ := f.bank.PoolSnapshot(f.pool.Address)
	if p.ReserveA != 1e12 || p.ReserveB != 1e12 {
		t.Error("failed swap left pool reserves modified")
	}
	if len(res.TokenDeltas) != 0 {
		t.Errorf("failed swap reported deltas: %v", res.TokenDeltas)
	}
}

func TestTipAccounting(t *testing.T) {
	f := newFixture(t)
	tx := solana.NewTransaction(f.alice, 1, 0,
		&solana.Tip{TipAccount: f.tip, Amount: 50_000})
	res, err := f.bank.ExecuteTx(tx)
	if err != nil || res.Err != nil {
		t.Fatal(err, res.Err)
	}
	if res.Tip != 50_000 || !res.TipOnly {
		t.Errorf("Tip=%d TipOnly=%v", res.Tip, res.TipOnly)
	}
	if f.bank.TipsCollected != 50_000 {
		t.Errorf("TipsCollected = %d", f.bank.TipsCollected)
	}
	if f.bank.Lamports(f.tip) != 50_000 {
		t.Errorf("tip account = %d", f.bank.Lamports(f.tip))
	}
}

func TestBundleAtomicCommit(t *testing.T) {
	f := newFixture(t)
	txs := []*solana.Transaction{
		solana.NewTransaction(f.alice, 1, 0,
			&solana.Swap{Pool: f.pool.Address, InputMint: token.SOL.Address, AmountIn: 1e9}),
		solana.NewTransaction(f.bob, 1, 0,
			&solana.Swap{Pool: f.pool.Address, InputMint: token.SOL.Address, AmountIn: 2e9}),
		solana.NewTransaction(f.alice, 2, 0,
			&solana.Tip{TipAccount: f.tip, Amount: 10_000}),
	}
	results, err := f.bank.ExecuteBundle(txs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	if f.bank.TxCount != 3 {
		t.Errorf("TxCount = %d", f.bank.TxCount)
	}
	if f.bank.TipsCollected != 10_000 {
		t.Errorf("TipsCollected = %d", f.bank.TipsCollected)
	}
}

func TestBundleAtomicRollback(t *testing.T) {
	f := newFixture(t)
	preAliceL := f.bank.Lamports(f.alice.Pubkey())
	preAliceSOL := f.bank.TokenBalance(f.alice.Pubkey(), token.SOL.Address)

	quote, _ := f.pool.QuoteOut(token.SOL.Address, 2e9)
	txs := []*solana.Transaction{
		// tx1 succeeds on its own...
		solana.NewTransaction(f.alice, 1, 0,
			&solana.Swap{Pool: f.pool.Address, InputMint: token.SOL.Address, AmountIn: 1e9}),
		// ...tx2 fails: tx1's price impact pushes bob's strict MinOut under water.
		solana.NewTransaction(f.bob, 1, 0,
			&solana.Swap{Pool: f.pool.Address, InputMint: token.SOL.Address,
				AmountIn: 2e9, MinOut: quote}),
	}
	if _, err := f.bank.ExecuteBundle(txs); err == nil {
		t.Fatal("bundle with failing tx committed")
	}

	if got := f.bank.Lamports(f.alice.Pubkey()); got != preAliceL {
		t.Errorf("alice lamports changed: %d != %d (fee leaked from rolled-back bundle)", got, preAliceL)
	}
	if got := f.bank.TokenBalance(f.alice.Pubkey(), token.SOL.Address); got != preAliceSOL {
		t.Error("alice token balance changed after rollback")
	}
	p, _ := f.bank.PoolSnapshot(f.pool.Address)
	if p.ReserveA != 1e12 || p.ReserveB != 1e12 {
		t.Error("pool reserves changed after rollback")
	}
	if f.bank.TxCount != 0 || f.bank.FeesCollected != 0 || f.bank.FailedTxCount != 0 {
		t.Errorf("counters leaked: tx=%d fees=%d failed=%d",
			f.bank.TxCount, f.bank.FeesCollected, f.bank.FailedTxCount)
	}
}

func TestNestedCheckpoints(t *testing.T) {
	b := NewBank()
	a := solana.NewKeypairFromSeed("acct").Pubkey()
	b.CreditLamports(a, 100)

	b.Checkpoint()
	b.setLamports(a, 200)
	b.Checkpoint()
	b.setLamports(a, 300)
	b.Rollback() // inner
	if b.Lamports(a) != 200 {
		t.Fatalf("after inner rollback: %d", b.Lamports(a))
	}
	b.Rollback() // outer
	if b.Lamports(a) != 100 {
		t.Fatalf("after outer rollback: %d", b.Lamports(a))
	}
}

func TestCommitMergesIntoParent(t *testing.T) {
	b := NewBank()
	a := solana.NewKeypairFromSeed("acct").Pubkey()
	b.CreditLamports(a, 100)

	b.Checkpoint()
	b.Checkpoint()
	b.setLamports(a, 300)
	b.Commit() // inner commit: undo info must survive in parent
	b.Rollback()
	if b.Lamports(a) != 100 {
		t.Fatalf("outer rollback after inner commit: %d", b.Lamports(a))
	}
}

func TestSandwichThroughBankMatchesPlan(t *testing.T) {
	// The full Table 1 flow executed through the bank must agree with the
	// pure amm.PlanSandwich simulation.
	f := newFixture(t)
	attacker, victim := f.alice, f.bob

	victimIn := uint64(20_000_000_000)
	quote, _ := f.pool.QuoteOut(token.SOL.Address, victimIn)
	minOut := quote * 9_500 / 10_000

	snap, _ := f.bank.PoolSnapshot(f.pool.Address)
	plan, ok := amm.PlanSandwich(snap, token.SOL.Address, victimIn, minOut, 80_000_000_000)
	if !ok {
		t.Fatal("no plan")
	}

	txs := []*solana.Transaction{
		solana.NewTransaction(attacker, 1, 0,
			&solana.Swap{Pool: f.pool.Address, InputMint: token.SOL.Address, AmountIn: plan.FrontrunIn}),
		solana.NewTransaction(victim, 1, 0,
			&solana.Swap{Pool: f.pool.Address, InputMint: token.SOL.Address, AmountIn: victimIn, MinOut: minOut}),
		solana.NewTransaction(attacker, 2, 0,
			&solana.Swap{Pool: f.pool.Address, InputMint: f.meme.Address, AmountIn: plan.FrontrunOut}),
	}
	results, err := f.bank.ExecuteBundle(txs)
	if err != nil {
		t.Fatal(err)
	}
	if got := results[0].Swaps[0].AmountOut; got != plan.FrontrunOut {
		t.Errorf("frontrun out %d != plan %d", got, plan.FrontrunOut)
	}
	if got := results[1].Swaps[0].AmountOut; got != plan.VictimOut {
		t.Errorf("victim out %d != plan %d", got, plan.VictimOut)
	}
	if got := results[2].Swaps[0].AmountOut; got != plan.BackrunOut {
		t.Errorf("backrun out %d != plan %d", got, plan.BackrunOut)
	}
	gain := int64(results[2].Swaps[0].AmountOut) - int64(results[0].Swaps[0].AmountIn)
	if gain != plan.Profit {
		t.Errorf("realized profit %d != planned %d", gain, plan.Profit)
	}
	if gain <= 0 {
		t.Error("sandwich through bank unprofitable")
	}
}

func TestSetSlotPanicsOnRewind(t *testing.T) {
	b := NewBank()
	b.SetSlot(10)
	defer func() {
		if recover() == nil {
			t.Error("SetSlot backwards did not panic")
		}
	}()
	b.SetSlot(9)
}

func TestDuplicateNonceDistinctSig(t *testing.T) {
	f := newFixture(t)
	tx1 := solana.NewTransaction(f.alice, 7, 0, &solana.Memo{Data: []byte("a")})
	tx2 := solana.NewTransaction(f.alice, 7, 0, &solana.Memo{Data: []byte("b")})
	if tx1.Sig == tx2.Sig {
		t.Error("different payloads same nonce produced identical sigs")
	}
}

func BenchmarkExecuteSwapTx(b *testing.B) {
	f := newFixture(&testing.T{})
	f.bank.CreditLamports(f.alice.Pubkey(), 1<<50)
	f.bank.MintTo(f.alice.Pubkey(), token.SOL.Address, 1<<55)
	f.bank.MintTo(f.alice.Pubkey(), f.meme.Address, 1<<55)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mint := token.SOL.Address
		if i%2 == 1 {
			mint = f.meme.Address
		}
		tx := solana.NewTransaction(f.alice, uint64(i), 0,
			&solana.Swap{Pool: f.pool.Address, InputMint: mint, AmountIn: 1_000_000})
		if _, err := f.bank.ExecuteTx(tx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExecuteSandwichBundle(b *testing.B) {
	f := newFixture(&testing.T{})
	f.bank.CreditLamports(f.alice.Pubkey(), 1<<50)
	f.bank.CreditLamports(f.bob.Pubkey(), 1<<50)
	f.bank.MintTo(f.alice.Pubkey(), token.SOL.Address, 1<<55)
	f.bank.MintTo(f.alice.Pubkey(), f.meme.Address, 1<<55)
	f.bank.MintTo(f.bob.Pubkey(), token.SOL.Address, 1<<55)
	b.ReportAllocs()
	nonce := uint64(0)
	for i := 0; i < b.N; i++ {
		nonce++
		front := solana.NewTransaction(f.alice, nonce, 0,
			&solana.Swap{Pool: f.pool.Address, InputMint: token.SOL.Address, AmountIn: 1_000_000})
		nonce++
		victim := solana.NewTransaction(f.bob, nonce, 0,
			&solana.Swap{Pool: f.pool.Address, InputMint: token.SOL.Address, AmountIn: 5_000_000})
		nonce++
		back := solana.NewTransaction(f.alice, nonce, 0,
			&solana.Swap{Pool: f.pool.Address, InputMint: f.meme.Address, AmountIn: 900_000})
		if _, err := f.bank.ExecuteBundle([]*solana.Transaction{front, victim, back}); err != nil {
			b.Fatal(err)
		}
	}
}

// Package ledger implements the bank: the account state machine that
// executes transactions. It models the pieces of Solana's runtime the
// measurement pipeline observes — lamport balances, SPL token balances,
// AMM pool reserves, base and priority fees — and provides the atomic
// all-or-nothing bundle execution that Jito guarantees (paper §2.3).
//
// Execution is journaled: every state write inside a checkpoint records an
// undo entry, so a failed transaction (or any failure inside a bundle)
// rolls the state back exactly. Each executed transaction also yields a
// TxResult capturing its balance effects, the raw material for the
// explorer's transaction-detail endpoint and hence for the detector.
package ledger

import (
	"errors"
	"fmt"
	"sort"

	"jitomev/internal/amm"
	"jitomev/internal/solana"
)

// Errors returned by execution.
var (
	ErrInsufficientLamports = errors.New("ledger: insufficient lamports")
	ErrInsufficientTokens   = errors.New("ledger: insufficient token balance")
	ErrUnknownPool          = errors.New("ledger: unknown pool")
	ErrNotSigner            = errors.New("ledger: instruction not authorized by signer")
	ErrDuplicateTx          = errors.New("ledger: duplicate transaction signature")
)

// TokenKey addresses one (owner, mint) token balance.
type TokenKey struct {
	Owner solana.Pubkey
	Mint  solana.Pubkey
}

// TokenDelta is the net change of one (owner, mint) balance caused by a
// transaction — the simulated equivalent of Solana's pre/postTokenBalances,
// which is what the Jito Explorer's detail endpoint exposes and what the
// paper's detector consumes.
type TokenDelta struct {
	Owner solana.Pubkey
	Mint  solana.Pubkey
	Delta int64
}

// LamportDelta is the net lamport change of one account caused by a
// transaction (fees, transfers and tips).
type LamportDelta struct {
	Account solana.Pubkey
	Delta   int64
}

// SwapEffect records one executed swap: simulation-side ground truth that
// the real chain would only expose via instruction parsing.
type SwapEffect struct {
	Pool       solana.Pubkey
	InputMint  solana.Pubkey
	OutputMint solana.Pubkey
	AmountIn   uint64
	AmountOut  uint64
}

// TxResult is the outcome of executing one transaction.
type TxResult struct {
	Sig           solana.Signature
	Signer        solana.Pubkey
	Err           error // instruction-level failure; fees were still charged
	Fee           solana.Lamports
	Tip           solana.Lamports
	TipOnly       bool
	TokenDeltas   []TokenDelta
	LamportDeltas []LamportDelta
	Swaps         []SwapEffect
}

// Bank is the single-threaded account state machine. Callers that need
// concurrency wrap it; block production is inherently sequential per slot,
// so the hot path stays lock-free.
type Bank struct {
	slot     solana.Slot
	lamports map[solana.Pubkey]solana.Lamports
	tokens   map[TokenKey]uint64
	pools    map[solana.Pubkey]*amm.Pool

	// journal, non-nil while a checkpoint is open
	journal *journal

	// delta tracker, non-nil while a transaction is executing
	tracker *tracker

	// running totals
	FeesCollected solana.Lamports
	TipsCollected solana.Lamports
	TxCount       uint64
	FailedTxCount uint64
}

// NewBank returns an empty bank at slot 0.
func NewBank() *Bank {
	return &Bank{
		lamports: make(map[solana.Pubkey]solana.Lamports),
		tokens:   make(map[TokenKey]uint64),
		pools:    make(map[solana.Pubkey]*amm.Pool),
	}
}

// Slot returns the current slot.
func (b *Bank) Slot() solana.Slot { return b.slot }

// SetSlot advances the bank clock. Moving backwards is a programming error.
func (b *Bank) SetSlot(s solana.Slot) {
	if s < b.slot {
		panic(fmt.Sprintf("ledger: slot moved backwards %d -> %d", b.slot, s))
	}
	b.slot = s
}

// --- funding & setup ------------------------------------------------------

// CreditLamports adds lamports to an account, creating it if needed.
func (b *Bank) CreditLamports(acct solana.Pubkey, amt solana.Lamports) {
	b.setLamports(acct, b.lamports[acct]+amt)
}

// MintTo credits base units of mint to owner.
func (b *Bank) MintTo(owner, mint solana.Pubkey, amount uint64) {
	k := TokenKey{Owner: owner, Mint: mint}
	b.setToken(k, b.tokens[k]+amount)
}

// AddPool registers an AMM pool. The bank owns the pool from here on.
func (b *Bank) AddPool(p *amm.Pool) { b.pools[p.Address] = p }

// --- read access ----------------------------------------------------------

// Lamports returns an account's lamport balance.
func (b *Bank) Lamports(acct solana.Pubkey) solana.Lamports { return b.lamports[acct] }

// TokenBalance returns a token balance in base units.
func (b *Bank) TokenBalance(owner, mint solana.Pubkey) uint64 {
	return b.tokens[TokenKey{Owner: owner, Mint: mint}]
}

// PoolSnapshot returns an independent copy of a pool for what-if planning.
func (b *Bank) PoolSnapshot(addr solana.Pubkey) (*amm.Pool, bool) {
	p, ok := b.pools[addr]
	if !ok {
		return nil, false
	}
	return p.Clone(), true
}

// Pools returns snapshots of all pools, sorted by address for determinism.
func (b *Bank) Pools() []*amm.Pool {
	out := make([]*amm.Pool, 0, len(b.pools))
	for _, p := range b.pools {
		out = append(out, p.Clone())
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].Address.String() < out[j].Address.String()
	})
	return out
}

// --- journaled writes -----------------------------------------------------

type lamportUndo struct {
	key solana.Pubkey
	old solana.Lamports
}

type tokenUndo struct {
	key TokenKey
	old uint64
}

type poolUndo struct {
	key        solana.Pubkey
	oldA, oldB uint64
}

type journal struct {
	lamports []lamportUndo
	tokens   []tokenUndo
	pools    []poolUndo
	parent   *journal
}

// Checkpoint opens a nested undo scope. Every Checkpoint must be paired
// with exactly one Commit or Rollback.
func (b *Bank) Checkpoint() {
	b.journal = &journal{parent: b.journal}
}

// Commit merges the current scope into its parent (or discards the undo
// log at top level).
func (b *Bank) Commit() {
	j := b.journal
	if j == nil {
		panic("ledger: Commit without Checkpoint")
	}
	if p := j.parent; p != nil {
		p.lamports = append(p.lamports, j.lamports...)
		p.tokens = append(p.tokens, j.tokens...)
		p.pools = append(p.pools, j.pools...)
	}
	b.journal = j.parent
}

// Rollback undoes every write made since the matching Checkpoint.
func (b *Bank) Rollback() {
	j := b.journal
	if j == nil {
		panic("ledger: Rollback without Checkpoint")
	}
	for i := len(j.lamports) - 1; i >= 0; i-- {
		b.lamports[j.lamports[i].key] = j.lamports[i].old
	}
	for i := len(j.tokens) - 1; i >= 0; i-- {
		b.tokens[j.tokens[i].key] = j.tokens[i].old
	}
	for i := len(j.pools) - 1; i >= 0; i-- {
		if p, ok := b.pools[j.pools[i].key]; ok {
			p.ReserveA = j.pools[i].oldA
			p.ReserveB = j.pools[i].oldB
		}
	}
	b.journal = j.parent
}

func (b *Bank) setLamports(k solana.Pubkey, v solana.Lamports) {
	if b.journal != nil {
		b.journal.lamports = append(b.journal.lamports, lamportUndo{k, b.lamports[k]})
	}
	if b.tracker != nil {
		b.tracker.touchLamports(b, k)
	}
	b.lamports[k] = v
}

func (b *Bank) setToken(k TokenKey, v uint64) {
	if b.journal != nil {
		b.journal.tokens = append(b.journal.tokens, tokenUndo{k, b.tokens[k]})
	}
	if b.tracker != nil {
		b.tracker.touchToken(b, k)
	}
	b.tokens[k] = v
}

// poolWrite journals a pool's reserves before mutation.
func (b *Bank) poolWrite(p *amm.Pool) {
	if b.journal != nil {
		b.journal.pools = append(b.journal.pools, poolUndo{p.Address, p.ReserveA, p.ReserveB})
	}
}

package ledger

import (
	"fmt"

	"jitomev/internal/solana"
)

// tracker records pre-images of every balance a transaction touches so the
// TxResult can report net deltas, mirroring Solana's pre/postTokenBalances.
type tracker struct {
	preLamports map[solana.Pubkey]solana.Lamports
	preTokens   map[TokenKey]uint64
	swaps       []SwapEffect
}

func newTracker() *tracker {
	return &tracker{
		preLamports: make(map[solana.Pubkey]solana.Lamports, 4),
		preTokens:   make(map[TokenKey]uint64, 4),
	}
}

func (t *tracker) touchLamports(b *Bank, k solana.Pubkey) {
	if _, seen := t.preLamports[k]; !seen {
		t.preLamports[k] = b.lamports[k]
	}
}

func (t *tracker) touchToken(b *Bank, k TokenKey) {
	if _, seen := t.preTokens[k]; !seen {
		t.preTokens[k] = b.tokens[k]
	}
}

// finish computes net deltas against the tracked pre-images. Ordering is
// deterministic: sorted by account/owner then mint.
func (t *tracker) finish(b *Bank, res *TxResult) {
	for k, pre := range t.preLamports {
		d := int64(b.lamports[k]) - int64(pre)
		if d != 0 {
			res.LamportDeltas = append(res.LamportDeltas, LamportDelta{Account: k, Delta: d})
		}
	}
	for k, pre := range t.preTokens {
		d := int64(b.tokens[k]) - int64(pre)
		if d != 0 {
			res.TokenDeltas = append(res.TokenDeltas, TokenDelta{Owner: k.Owner, Mint: k.Mint, Delta: d})
		}
	}
	sortLamportDeltas(res.LamportDeltas)
	sortTokenDeltas(res.TokenDeltas)
	res.Swaps = t.swaps
}

func sortLamportDeltas(ds []LamportDelta) {
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0 && lessBytes32(ds[j].Account, ds[j-1].Account); j-- {
			ds[j], ds[j-1] = ds[j-1], ds[j]
		}
	}
}

func sortTokenDeltas(ds []TokenDelta) {
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0 && tokenDeltaLess(ds[j], ds[j-1]); j-- {
			ds[j], ds[j-1] = ds[j-1], ds[j]
		}
	}
}

func tokenDeltaLess(a, b TokenDelta) bool {
	if a.Owner != b.Owner {
		return lessBytes32(a.Owner, b.Owner)
	}
	return lessBytes32(a.Mint, b.Mint)
}

func lessBytes32(a, b solana.Pubkey) bool {
	for i := 0; i < 32; i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// ExecuteTx validates and executes one transaction against the bank.
//
// Fee semantics follow Solana: if the signer cannot cover the fee the
// transaction is rejected outright (no state change, error returned). If
// the fee clears but an instruction fails, the instruction effects are
// rolled back, the fee is kept, and the failure is reported in
// TxResult.Err — the transaction still "lands" on chain as failed.
func (b *Bank) ExecuteTx(tx *solana.Transaction) (*TxResult, error) {
	if err := tx.Validate(); err != nil {
		return nil, err
	}
	fee := tx.Fee()
	if b.lamports[tx.Signer] < fee {
		return nil, fmt.Errorf("%w: fee %d > balance %d",
			ErrInsufficientLamports, fee, b.lamports[tx.Signer])
	}

	res := &TxResult{Sig: tx.Sig, Signer: tx.Signer, Fee: fee, TipOnly: tx.IsTipOnly()}

	prevTracker := b.tracker
	b.tracker = newTracker()
	defer func() { b.tracker = prevTracker }()

	// Charge the fee first; it survives instruction failure.
	b.setLamports(tx.Signer, b.lamports[tx.Signer]-fee)
	b.FeesCollected += fee

	b.Checkpoint()
	var execErr error
	for _, in := range tx.Instructions {
		if execErr = b.applyInstruction(tx.Signer, in, res); execErr != nil {
			break
		}
	}
	if execErr != nil {
		b.Rollback()
		res.Err = execErr
		res.Tip = 0
		b.FailedTxCount++
	} else {
		b.Commit()
	}
	b.TxCount++

	b.tracker.finish(b, res)
	return res, nil
}

func (b *Bank) applyInstruction(signer solana.Pubkey, in solana.Instruction, res *TxResult) error {
	switch v := in.(type) {
	case *solana.Transfer:
		if v.From != signer {
			return ErrNotSigner
		}
		if b.lamports[v.From] < v.Amount {
			return fmt.Errorf("%w: transfer %d > balance %d",
				ErrInsufficientLamports, v.Amount, b.lamports[v.From])
		}
		b.setLamports(v.From, b.lamports[v.From]-v.Amount)
		b.setLamports(v.To, b.lamports[v.To]+v.Amount)
		return nil

	case *solana.Tip:
		if b.lamports[signer] < v.Amount {
			return fmt.Errorf("%w: tip %d > balance %d",
				ErrInsufficientLamports, v.Amount, b.lamports[signer])
		}
		b.setLamports(signer, b.lamports[signer]-v.Amount)
		b.setLamports(v.TipAccount, b.lamports[v.TipAccount]+v.Amount)
		b.TipsCollected += v.Amount
		res.Tip += v.Amount
		return nil

	case *solana.Swap:
		pool, ok := b.pools[v.Pool]
		if !ok {
			return ErrUnknownPool
		}
		inKey := TokenKey{Owner: signer, Mint: v.InputMint}
		if b.tokens[inKey] < v.AmountIn {
			return fmt.Errorf("%w: swap in %d > balance %d",
				ErrInsufficientTokens, v.AmountIn, b.tokens[inKey])
		}
		outMint, err := pool.OtherMint(v.InputMint)
		if err != nil {
			return err
		}
		b.poolWrite(pool)
		out, err := pool.Swap(v.InputMint, v.AmountIn, v.MinOut)
		if err != nil {
			return err
		}
		outKey := TokenKey{Owner: signer, Mint: outMint}
		b.setToken(inKey, b.tokens[inKey]-v.AmountIn)
		b.setToken(outKey, b.tokens[outKey]+out)
		if b.tracker != nil {
			b.tracker.swaps = append(b.tracker.swaps, SwapEffect{
				Pool:       v.Pool,
				InputMint:  v.InputMint,
				OutputMint: outMint,
				AmountIn:   v.AmountIn,
				AmountOut:  out,
			})
		}
		return nil

	case *solana.Memo:
		return nil
	}
	return fmt.Errorf("ledger: unknown instruction %T", in)
}

// ExecuteBundle executes transactions atomically in order: if any
// transaction fails — validation, fees, or any instruction — every effect
// of the bundle is rolled back and an error is returned. This is Jito's
// guarantee, and precisely what removes the attacker's risk (paper §3.3:
// "if the victim's transaction fails within the bundle, the attacker's
// transactions within that bundle do not execute").
func (b *Bank) ExecuteBundle(txs []*solana.Transaction) ([]*TxResult, error) {
	b.Checkpoint()
	results := make([]*TxResult, 0, len(txs))
	for i, tx := range txs {
		res, err := b.ExecuteTx(tx)
		if err == nil && res.Err != nil {
			err = res.Err
		}
		if err != nil {
			b.Rollback()
			// The failed transactions never land: undo the counters too.
			b.TxCount -= uint64(len(results))
			for _, r := range results {
				b.FeesCollected -= r.Fee
				b.TipsCollected -= r.Tip
			}
			if res != nil {
				b.TxCount--
				b.FeesCollected -= res.Fee
				if res.Err != nil {
					b.FailedTxCount--
				}
			}
			return nil, fmt.Errorf("ledger: bundle tx %d (%s): %w", i, tx.Sig.Short(), err)
		}
		results = append(results, res)
	}
	b.Commit()
	return results, nil
}

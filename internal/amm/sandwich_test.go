package amm

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// victimQuote returns the out the victim would get with no front-run, and a
// MinOut implied by a slippage tolerance in basis points.
func victimQuote(t *testing.T, p *Pool, victimIn uint64, slippageBps uint64) (out, minOut uint64) {
	t.Helper()
	out, err := p.QuoteOut(p.MintB, victimIn)
	if err != nil {
		t.Fatal(err)
	}
	return out, out * (10_000 - slippageBps) / 10_000
}

func TestMaxFrontrunRespectsVictimSlippage(t *testing.T) {
	p := testPool(1_000_000_000_000, 1_000_000_000_000)
	victimIn := uint64(5_000_000_000) // 0.5% of reserves
	_, minOut := victimQuote(t, p, victimIn, 100)

	budget := uint64(1) << 40
	x := MaxFrontrun(p, p.MintB, victimIn, minOut, budget)
	if x == 0 {
		t.Fatal("no front-run possible despite 1% slippage allowance")
	}
	if x == budget {
		t.Fatal("front-run unbounded despite victim slippage cap")
	}

	// At x the victim must still clear MinOut; at x+1 it must not.
	if _, ok := simulate(p, p.MintB, x, victimIn, minOut); !ok {
		t.Error("MaxFrontrun result breaks the victim")
	}
	if _, ok := simulate(p, p.MintB, x+1, victimIn, minOut); ok {
		t.Error("MaxFrontrun is not maximal")
	}
}

func TestMaxFrontrunNoProtectionReturnsBudget(t *testing.T) {
	p := testPool(1_000_000_000_000, 1_000_000_000_000)
	budget := uint64(100_000_000)
	if x := MaxFrontrun(p, p.MintB, 1_000_000_000, 0, budget); x != budget {
		t.Errorf("unprotected victim: front-run %d, want full budget %d", x, budget)
	}
}

func TestMaxFrontrunZeroWhenSlippageExact(t *testing.T) {
	p := testPool(1_000_000_000_000, 1_000_000_000_000)
	victimIn := uint64(5_000_000_000)
	out, _ := victimQuote(t, p, victimIn, 0)
	// MinOut equal to the unfrontrun quote leaves essentially no room:
	// only integer-rounding dust (output quantized to base units) lets a
	// microscopic front-run through.
	x := MaxFrontrun(p, p.MintB, victimIn, out, 1<<40)
	if x > victimIn/1_000 {
		t.Errorf("zero-slippage victim allowed material front-run of %d", x)
	}
	if x > 0 {
		// Whatever rounding allows must still not break the victim.
		if _, ok := simulate(p, p.MintB, x, victimIn, out); !ok {
			t.Error("rounding-dust front-run breaks the victim")
		}
	}
}

func TestMaxFrontrunZeroBudget(t *testing.T) {
	p := testPool(1_000_000, 1_000_000)
	if MaxFrontrun(p, p.MintB, 1_000, 0, 0) != 0 {
		t.Error("zero budget should yield zero front-run")
	}
}

func TestPlanSandwichProfitable(t *testing.T) {
	// Deep pool, large victim with loose slippage: the canonical setup.
	p := testPool(1_000_000_000_000, 1_000_000_000_000)
	victimIn := uint64(20_000_000_000) // 2% of reserves
	_, minOut := victimQuote(t, p, victimIn, 500)

	plan, ok := PlanSandwich(p, p.MintB, victimIn, minOut, 1<<42)
	if !ok {
		t.Fatal("no profitable sandwich found in a favorable setup")
	}
	if plan.Profit <= 0 {
		t.Fatalf("plan not profitable: %+v", plan)
	}
	if plan.BackrunIn != plan.FrontrunOut {
		t.Error("back-run should sell exactly what the front-run bought")
	}
	if plan.VictimOut < minOut {
		t.Error("plan breaks the victim's MinOut")
	}
}

func TestPlanSandwichUnprofitableOnTinyVictim(t *testing.T) {
	p := testPool(1_000_000_000_000, 1_000_000_000_000)
	// A 100-base-unit victim can't move the price past round-trip fees.
	if _, ok := PlanSandwich(p, p.MintB, 100, 0, 1_000); ok {
		t.Error("sandwich of negligible victim reported profitable")
	}
}

func TestTightSlippageCapsProfit(t *testing.T) {
	// The paper (§2.2, citing Züst et al.) notes slippage tolerance caps
	// what an attacker can extract but cannot fully prevent the attack:
	// even a microscopic front-run profits by riding the victim's own
	// price impact in the back-run. Verify both halves of that claim.
	p := testPool(1_000_000_000_000, 1_000_000_000_000)
	victimIn := uint64(20_000_000_000)
	out, _ := victimQuote(t, p, victimIn, 0)

	tight, okTight := PlanSandwich(p, p.MintB, victimIn, out*9_999/10_000, 1<<42)
	loose, okLoose := PlanSandwich(p, p.MintB, victimIn, out*9_500/10_000, 1<<42)
	if !okLoose {
		t.Fatal("loose-slippage sandwich should be profitable")
	}
	if okTight && tight.Profit*20 > loose.Profit {
		t.Errorf("1bp slippage profit %d not well below 5%% slippage profit %d",
			tight.Profit, loose.Profit)
	}
}

func TestPlanDoesNotMutatePool(t *testing.T) {
	p := testPool(1_000_000_000_000, 2_000_000_000_000)
	a, b := p.ReserveA, p.ReserveB
	PlanSandwich(p, p.MintB, 10_000_000_000, 0, 1<<40)
	MaxFrontrun(p, p.MintB, 10_000_000_000, 1, 1<<40)
	if p.ReserveA != a || p.ReserveB != b {
		t.Fatal("planning mutated the live pool")
	}
}

func TestSlippageCapsExtractionProperty(t *testing.T) {
	// Property (paper §2.2, Züst et al.): tighter victim slippage never
	// allows a larger front-run.
	rng := rand.New(rand.NewSource(5))
	f := func(victimRaw uint32, s1, s2 uint16) bool {
		p := testPool(1_000_000_000_000, 1_000_000_000_000)
		victimIn := uint64(victimRaw)%50_000_000_000 + 1_000_000
		out, err := p.QuoteOut(p.MintB, victimIn)
		if err != nil {
			return true
		}
		bpsLoose := uint64(s1)%2_000 + 1
		bpsTight := uint64(s2) % (bpsLoose + 1) // tight <= loose
		minLoose := out * (10_000 - bpsLoose) / 10_000
		minTight := out * (10_000 - bpsTight) / 10_000
		budget := uint64(1) << 41
		xLoose := MaxFrontrun(p, p.MintB, victimIn, minLoose, budget)
		xTight := MaxFrontrun(p, p.MintB, victimIn, minTight, budget)
		return xTight <= xLoose
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestBiggerVictimBiggerProfitProperty(t *testing.T) {
	// With fixed relative slippage, a larger victim yields at least as
	// much attacker profit.
	p := testPool(1_000_000_000_000, 1_000_000_000_000)
	budget := uint64(1) << 42
	var prevProfit int64
	for _, victimIn := range []uint64{1e9, 5e9, 2e10, 8e10} {
		out, err := p.QuoteOut(p.MintB, victimIn)
		if err != nil {
			t.Fatal(err)
		}
		minOut := out * 9_700 / 10_000 // 3% tolerance
		plan, ok := PlanSandwich(p, p.MintB, victimIn, minOut, budget)
		if !ok {
			continue
		}
		if plan.Profit < prevProfit {
			t.Fatalf("profit decreased for larger victim: %d < %d", plan.Profit, prevProfit)
		}
		prevProfit = plan.Profit
	}
	if prevProfit == 0 {
		t.Fatal("no victim size produced profit")
	}
}

func TestSafeSlippage(t *testing.T) {
	p := testPool(1_000_000_000_000, 1_000_000_000_000)
	victimIn := uint64(5_000_000_000) // 0.5% of reserves
	minProfit := int64(1_000_000)     // require a meaningful attack

	safe, ok := SafeSlippageBps(p, p.MintB, victimIn, minProfit, 1_000)
	if !ok {
		t.Fatal("no safe tolerance found on a deep pool")
	}
	if safe == 0 || safe >= 1_000 {
		t.Fatalf("safe bps = %d", safe)
	}

	// At the safe tolerance no profitable attack exists...
	quote, _ := p.QuoteOut(p.MintB, victimIn)
	minOut := quote * (10_000 - safe) / 10_000
	if plan, ok := PlanSandwich(p, p.MintB, victimIn, minOut, MaxSwapIn); ok && plan.Profit >= minProfit {
		t.Errorf("attack clears minProfit at the 'safe' tolerance: %d", plan.Profit)
	}
	// ...and one notch looser, it does (boundary is exact).
	minOut = quote * (10_000 - safe - 1) / 10_000
	plan, ok := PlanSandwich(p, p.MintB, victimIn, minOut, MaxSwapIn)
	if !ok || plan.Profit < minProfit {
		t.Error("safe boundary is not tight")
	}
}

func TestSafeSlippageShallowPoolUnprotectable(t *testing.T) {
	// Huge victim on a tiny pool: the back-run rides the victim's own
	// impact, so even 1 bp of tolerance admits a profitable attack.
	p := testPool(1_000_000_000, 1_000_000_000)
	if _, ok := SafeSlippageBps(p, p.MintB, 500_000_000, 1_000, 1_000); ok {
		t.Error("shallow pool reported protectable; expected unprotectable")
	}
}

func TestSafeSlippageMonotoneInVictimSize(t *testing.T) {
	// Bigger victims need tighter tolerances.
	p := testPool(1_000_000_000_000, 1_000_000_000_000)
	prev := uint64(10_000)
	for _, v := range []uint64{1e9, 5e9, 1e10} {
		safe, ok := SafeSlippageBps(p, p.MintB, v, 2_000_000, 2_000)
		if !ok {
			t.Fatalf("victim %d unprotectable", v)
		}
		if safe > prev {
			t.Fatalf("safe tolerance grew with victim size: %d then %d", prev, safe)
		}
		prev = safe
	}
}

func BenchmarkPlanSandwich(b *testing.B) {
	p := testPool(1_000_000_000_000, 1_000_000_000_000)
	out, _ := p.QuoteOut(p.MintB, 20_000_000_000)
	minOut := out * 9_500 / 10_000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		PlanSandwich(p, p.MintB, 20_000_000_000, minOut, 1<<42)
	}
}

func BenchmarkSwap(b *testing.B) {
	p := testPool(1_000_000_000_000, 1_000_000_000_000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// Alternate directions to keep reserves roughly balanced.
		if i%2 == 0 {
			p.Swap(p.MintB, 1_000_000, 0)
		} else {
			p.Swap(p.MintA, 1_000_000, 0)
		}
	}
}

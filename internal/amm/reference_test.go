package amm

import (
	"math/big"
	"math/rand"
	"testing"

	"jitomev/internal/token"
)

// Reference-implementation tests: the pool's integer swap math must agree
// exactly with an independent arbitrary-precision implementation of the
// constant-product formula, across random reserves and inputs.

// refQuote computes the swap output with big.Int, mirroring the documented
// formula: inFee = in*(10000-fee)/10000; out = rOut*inFee/(rIn+inFee).
func refQuote(rIn, rOut, in uint64, feeBps uint32) (uint64, bool) {
	if in == 0 || rIn == 0 || rOut == 0 {
		return 0, false
	}
	bIn := new(big.Int).SetUint64(in)
	feeKeep := big.NewInt(int64(10_000 - feeBps))
	inFee := new(big.Int).Mul(bIn, feeKeep)
	inFee.Div(inFee, big.NewInt(10_000))
	if inFee.Sign() == 0 {
		return 0, false
	}
	num := new(big.Int).Mul(new(big.Int).SetUint64(rOut), inFee)
	den := new(big.Int).Add(new(big.Int).SetUint64(rIn), inFee)
	out := num.Div(num, den)
	if !out.IsUint64() {
		return 0, false
	}
	o := out.Uint64()
	if o >= rOut {
		return 0, false // would drain the pool
	}
	return o, true
}

func TestQuoteMatchesBigIntReference(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	reg := token.NewRegistry()
	meme := reg.NewMemecoin("REF")

	for trial := 0; trial < 20_000; trial++ {
		// Random reserves across 8 orders of magnitude, random inputs.
		rA := uint64(rng.Int63n(1e14)) + 1
		rB := uint64(rng.Int63n(1e14)) + 1
		in := uint64(rng.Int63n(1e12)) + 1
		var fee uint32 = 25
		if trial%3 == 0 {
			fee = uint32(rng.Intn(1_000)) // up to 10%
		}
		p := New(meme.Address, token.SOL.Address, rA, rB, fee)

		mint := p.MintA
		rIn, rOut := rA, rB
		if trial%2 == 0 {
			mint, rIn, rOut = p.MintB, rB, rA
		}

		got, err := p.QuoteOut(mint, in)
		want, ok := refQuote(rIn, rOut, in, fee)
		if err != nil {
			if ok {
				t.Fatalf("trial %d: pool rejected (%v) but reference produced %d", trial, err, want)
			}
			continue
		}
		if !ok {
			t.Fatalf("trial %d: pool produced %d but reference rejected", trial, got)
		}
		if got != want {
			t.Fatalf("trial %d: rIn=%d rOut=%d in=%d fee=%d: got %d want %d",
				trial, rIn, rOut, in, fee, got, want)
		}
	}
}

func TestRoundTripNeverProfitsProperty(t *testing.T) {
	// Swapping X in and the full output back must never return more than
	// X: fees plus price impact always cost something. A violation would
	// be a money pump.
	rng := rand.New(rand.NewSource(13))
	reg := token.NewRegistry()
	meme := reg.NewMemecoin("PUMP")

	for trial := 0; trial < 5_000; trial++ {
		rA := uint64(rng.Int63n(1e13)) + 1_000
		rB := uint64(rng.Int63n(1e13)) + 1_000
		in := uint64(rng.Int63n(1e10)) + 1
		p := New(meme.Address, token.SOL.Address, rA, rB, DefaultFeeBps)

		out1, err := p.Swap(p.MintB, in, 0)
		if err != nil {
			continue
		}
		if out1 == 0 {
			continue
		}
		out2, err := p.Swap(p.MintA, out1, 0)
		if err != nil {
			continue
		}
		if out2 > in {
			t.Fatalf("trial %d: round trip profited: %d -> %d -> %d (reserves %d/%d)",
				trial, in, out1, out2, rA, rB)
		}
	}
}

func TestSandwichConservationProperty(t *testing.T) {
	// Across a full sandwich, tokens and SOL are conserved between the
	// pool, the attacker and the victim: the attacker's gain plus the
	// victim's receipts plus pool deltas must net to zero.
	rng := rand.New(rand.NewSource(17))
	reg := token.NewRegistry()
	meme := reg.NewMemecoin("CONS")

	for trial := 0; trial < 2_000; trial++ {
		rA := uint64(rng.Int63n(1e12)) + 1e6
		rB := uint64(rng.Int63n(1e12)) + 1e6
		victimIn := uint64(rng.Int63n(1e10)) + 1_000
		p := New(meme.Address, token.SOL.Address, rA, rB, DefaultFeeBps)

		quote, err := p.QuoteOut(p.MintB, victimIn)
		if err != nil {
			continue
		}
		minOut := quote * 9_000 / 10_000
		plan, ok := PlanSandwich(p, p.MintB, victimIn, minOut, 1e12)
		if !ok {
			continue
		}

		live := p.Clone()
		fOut, err := live.Swap(live.MintB, plan.FrontrunIn, 0)
		if err != nil || fOut != plan.FrontrunOut {
			t.Fatalf("trial %d: frontrun diverged from plan", trial)
		}
		vOut, err := live.Swap(live.MintB, victimIn, minOut)
		if err != nil || vOut != plan.VictimOut {
			t.Fatalf("trial %d: victim leg diverged from plan", trial)
		}
		bOut, err := live.Swap(live.MintA, plan.BackrunIn, 0)
		if err != nil || bOut != plan.BackrunOut {
			t.Fatalf("trial %d: backrun diverged from plan", trial)
		}

		// SOL conservation: pool gained what participants paid minus
		// what it paid out.
		solIn := plan.FrontrunIn + victimIn
		solOut := bOut
		if live.ReserveB != rB+solIn-solOut {
			t.Fatalf("trial %d: SOL not conserved", trial)
		}
		// Token conservation likewise.
		tokOut := fOut + vOut
		tokIn := plan.BackrunIn
		if live.ReserveA != rA-tokOut+tokIn {
			t.Fatalf("trial %d: tokens not conserved", trial)
		}
	}
}

package amm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"jitomev/internal/solana"
	"jitomev/internal/token"
)

func testPool(reserveA, reserveB uint64) *Pool {
	reg := token.NewRegistry()
	meme := reg.NewMemecoin("TESTCOIN")
	return New(meme.Address, token.SOL.Address, reserveA, reserveB, DefaultFeeBps)
}

func TestNewPoolDeterministicAddress(t *testing.T) {
	a := testPool(1e12, 1e12)
	b := testPool(5e11, 5e11)
	if a.Address != b.Address {
		t.Error("same mint pair produced different pool addresses")
	}
}

func TestQuoteOutBasics(t *testing.T) {
	p := testPool(1_000_000_000, 1_000_000_000)

	out, err := p.QuoteOut(p.MintA, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	// With equal reserves, output ≈ input minus fee and price impact.
	if out >= 1_000_000 {
		t.Errorf("output %d should be below input (fee+impact)", out)
	}
	if out < 990_000 {
		t.Errorf("output %d implausibly low for 0.1%% of reserves", out)
	}

	if _, err := p.QuoteOut(p.MintA, 0); err != ErrZeroAmount {
		t.Errorf("zero input: got %v", err)
	}
	other := solana.NewKeypairFromSeed("other").Pubkey()
	if _, err := p.QuoteOut(other, 100); err != ErrWrongMint {
		t.Errorf("wrong mint: got %v", err)
	}
	if _, err := p.QuoteOut(p.MintA, MaxSwapIn+1); err == nil {
		t.Error("oversized input accepted")
	}
}

func TestQuoteEmptyPool(t *testing.T) {
	p := testPool(0, 1_000)
	if _, err := p.QuoteOut(p.MintA, 100); err != ErrEmptyPool {
		t.Errorf("empty pool: got %v", err)
	}
}

func TestSwapMutatesReserves(t *testing.T) {
	p := testPool(1_000_000_000, 2_000_000_000)
	k := p.ReserveA * p.ReserveB // constant product (approx, fees grow it)

	out, err := p.Swap(p.MintA, 10_000_000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.ReserveA != 1_010_000_000 {
		t.Errorf("ReserveA = %d", p.ReserveA)
	}
	if p.ReserveB != 2_000_000_000-out {
		t.Errorf("ReserveB = %d", p.ReserveB)
	}
	// Fees mean k never decreases.
	if p.ReserveA*p.ReserveB < k {
		t.Error("constant product decreased after swap")
	}
}

func TestSwapSlippageProtection(t *testing.T) {
	p := testPool(1_000_000_000, 1_000_000_000)
	quote, _ := p.QuoteOut(p.MintA, 50_000_000)

	preA, preB := p.ReserveA, p.ReserveB
	if _, err := p.Swap(p.MintA, 50_000_000, quote+1); err != ErrSlippageExceeded {
		t.Fatalf("slippage: got %v", err)
	}
	if p.ReserveA != preA || p.ReserveB != preB {
		t.Fatal("failed swap mutated reserves")
	}

	out, err := p.Swap(p.MintA, 50_000_000, quote)
	if err != nil || out != quote {
		t.Fatalf("swap at exact MinOut failed: out=%d err=%v", out, err)
	}
}

func TestPriceImpactDirection(t *testing.T) {
	p := testPool(1_000_000_000, 1_000_000_000)
	before := p.SpotPrice()
	// Buying MintA (selling SOL into the pool) must raise MintA's price.
	if _, err := p.Swap(p.MintB, 100_000_000, 0); err != nil {
		t.Fatal(err)
	}
	if p.SpotPrice() <= before {
		t.Error("buying the base token did not raise its price")
	}
}

func TestSuccessiveBuysWorsenRate(t *testing.T) {
	// Table 1 mechanics: each buy raises the price for the next buyer.
	p := testPool(1_000_000_000_000, 1_000_000_000_000)
	in := uint64(10_000_000_000)
	out1, err := p.Swap(p.MintB, in, 0)
	if err != nil {
		t.Fatal(err)
	}
	out2, err := p.Swap(p.MintB, in, 0)
	if err != nil {
		t.Fatal(err)
	}
	if out2 >= out1 {
		t.Errorf("second identical buy got %d >= first %d", out2, out1)
	}
}

func TestOtherMint(t *testing.T) {
	p := testPool(1, 1)
	got, err := p.OtherMint(p.MintA)
	if err != nil || got != p.MintB {
		t.Error("OtherMint(MintA) wrong")
	}
	got, err = p.OtherMint(p.MintB)
	if err != nil || got != p.MintA {
		t.Error("OtherMint(MintB) wrong")
	}
	if _, err := p.OtherMint(solana.Pubkey{}); err != ErrWrongMint {
		t.Error("OtherMint accepted foreign mint")
	}
	if !p.Trades(p.MintA) || !p.Trades(p.MintB) || p.Trades(solana.Pubkey{}) {
		t.Error("Trades wrong")
	}
}

func TestCloneIndependence(t *testing.T) {
	p := testPool(1_000_000, 1_000_000)
	c := p.Clone()
	if _, err := c.Swap(c.MintA, 1_000, 0); err != nil {
		t.Fatal(err)
	}
	if p.ReserveA != 1_000_000 || p.ReserveB != 1_000_000 {
		t.Error("swap on clone mutated original")
	}
}

func TestConstantProductNeverDecreases(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func(inRaw uint32, sellA bool) bool {
		p := testPool(1_000_000_000, 3_000_000_000)
		in := uint64(inRaw)%100_000_000 + 1
		kBefore := float64(p.ReserveA) * float64(p.ReserveB)
		mint := p.MintA
		if !sellA {
			mint = p.MintB
		}
		if _, err := p.Swap(mint, in, 0); err != nil {
			return true // rejected swaps leave the pool untouched
		}
		kAfter := float64(p.ReserveA) * float64(p.ReserveB)
		return kAfter >= kBefore
	}
	cfg := &quick.Config{MaxCount: 2000, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuoteMonotoneInInput(t *testing.T) {
	p := testPool(1_000_000_000, 1_000_000_000)
	prev := uint64(0)
	for in := uint64(1_000); in <= 100_000_000; in *= 10 {
		out, err := p.QuoteOut(p.MintA, in)
		if err != nil {
			t.Fatal(err)
		}
		if out <= prev {
			t.Fatalf("output not increasing: in=%d out=%d prev=%d", in, out, prev)
		}
		prev = out
	}
}

func TestExecRate(t *testing.T) {
	if ExecRate(0, 100) != 0 {
		t.Error("zero input rate should be 0")
	}
	if ExecRate(200, 100) != 0.5 {
		t.Error("ExecRate arithmetic wrong")
	}
}

// Package amm implements the constant-product automated market maker that
// the simulated DEX trades on. Price impact in a constant-product pool is
// the mechanism that makes Sandwiching MEV possible: a front-running buy
// raises the price the victim pays, and the attacker's back-running sell
// captures the difference (paper §2.2, Table 1).
//
// All arithmetic is integer with 128-bit intermediates, so pool behaviour is
// exact and deterministic across runs.
package amm

import (
	"errors"
	"fmt"
	"math/bits"

	"jitomev/internal/solana"
)

// Errors returned by pool operations.
var (
	ErrWrongMint        = errors.New("amm: mint not traded by this pool")
	ErrSlippageExceeded = errors.New("amm: output below MinOut (slippage tolerance exceeded)")
	ErrEmptyPool        = errors.New("amm: pool has no liquidity")
	ErrZeroAmount       = errors.New("amm: zero input amount")
	ErrDrained          = errors.New("amm: swap would drain the pool")
)

// DefaultFeeBps is the swap fee charged on input, in basis points. 25 bps
// (0.25%) matches Raydium's standard pool fee.
const DefaultFeeBps = 25

// Pool is a two-sided constant-product liquidity pool. MintB is the quote
// side (SOL in every pool the workload creates, mirroring the dominance of
// SOL-quoted memecoin pools on Solana).
type Pool struct {
	Address  solana.Pubkey
	MintA    solana.Pubkey // base token (e.g. a memecoin)
	MintB    solana.Pubkey // quote token (SOL)
	ReserveA uint64
	ReserveB uint64
	FeeBps   uint32
}

// New creates a pool with the given reserves. The address is derived from
// the mint pair so pools are stable identities across runs.
func New(mintA, mintB solana.Pubkey, reserveA, reserveB uint64, feeBps uint32) *Pool {
	return &Pool{
		Address:  solana.NewKeypairFromSeed("pool/" + mintA.String() + "/" + mintB.String()).Pubkey(),
		MintA:    mintA,
		MintB:    mintB,
		ReserveA: reserveA,
		ReserveB: reserveB,
		FeeBps:   feeBps,
	}
}

// Clone returns an independent copy, used for what-if simulation by
// searchers and for journaling by the bank.
func (p *Pool) Clone() *Pool {
	c := *p
	return &c
}

// OtherMint returns the opposite side of the pool from mint.
func (p *Pool) OtherMint(mint solana.Pubkey) (solana.Pubkey, error) {
	switch mint {
	case p.MintA:
		return p.MintB, nil
	case p.MintB:
		return p.MintA, nil
	}
	return solana.Pubkey{}, ErrWrongMint
}

// Trades reports whether the pool trades mint on either side.
func (p *Pool) Trades(mint solana.Pubkey) bool {
	return mint == p.MintA || mint == p.MintB
}

// reserves returns (reserveIn, reserveOut) for a swap selling inputMint.
func (p *Pool) reserves(inputMint solana.Pubkey) (uint64, uint64, error) {
	switch inputMint {
	case p.MintA:
		return p.ReserveA, p.ReserveB, nil
	case p.MintB:
		return p.ReserveB, p.ReserveA, nil
	}
	return 0, 0, ErrWrongMint
}

// MaxSwapIn bounds a single swap's input so the fee multiplication below
// cannot overflow. 2^50 base units is ~1.1e15, far above any realistic
// trade in the workload.
const MaxSwapIn = uint64(1) << 50

// MaxReserve bounds pool reserves so reserve+input arithmetic stays within
// uint64 with headroom.
const MaxReserve = uint64(1) << 62

// mulDiv computes a*b/c exactly with a 128-bit intermediate. c must be
// nonzero and the quotient must fit in 64 bits; callers guarantee both
// (swap output is always strictly less than reserveOut).
func mulDiv(a, b, c uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	q, _ := bits.Div64(hi, lo, c)
	return q
}

// QuoteOut returns the output amount for selling amountIn of inputMint,
// after fees, without modifying the pool.
//
// The constant-product formula with an input fee of FeeBps basis points is
//
//	inFee = amountIn * (10000-FeeBps) / 10000
//	out   = reserveOut * inFee / (reserveIn + inFee)
func (p *Pool) QuoteOut(inputMint solana.Pubkey, amountIn uint64) (uint64, error) {
	if amountIn == 0 {
		return 0, ErrZeroAmount
	}
	if amountIn > MaxSwapIn {
		return 0, fmt.Errorf("amm: input %d exceeds MaxSwapIn", amountIn)
	}
	rIn, rOut, err := p.reserves(inputMint)
	if err != nil {
		return 0, err
	}
	if rIn == 0 || rOut == 0 {
		return 0, ErrEmptyPool
	}
	if rIn > MaxReserve || rOut > MaxReserve {
		return 0, fmt.Errorf("amm: reserves exceed MaxReserve")
	}
	feeKeep := uint64(10_000 - p.FeeBps)
	inFee := amountIn * feeKeep / 10_000 // no overflow: amountIn <= 2^50
	if inFee == 0 {
		return 0, ErrZeroAmount
	}
	out := mulDiv(rOut, inFee, rIn+inFee)
	if out >= rOut {
		return 0, ErrDrained
	}
	return out, nil
}

// Swap executes a trade, mutating reserves, and returns the output amount.
// If minOut > 0 and the output falls below it, the swap fails with
// ErrSlippageExceeded and the pool is unchanged — the on-chain behaviour a
// slippage-tolerance setting buys the user.
func (p *Pool) Swap(inputMint solana.Pubkey, amountIn, minOut uint64) (uint64, error) {
	out, err := p.QuoteOut(inputMint, amountIn)
	if err != nil {
		return 0, err
	}
	if minOut > 0 && out < minOut {
		return 0, ErrSlippageExceeded
	}
	if inputMint == p.MintA {
		p.ReserveA += amountIn
		p.ReserveB -= out
	} else {
		p.ReserveB += amountIn
		p.ReserveA -= out
	}
	return out, nil
}

// SpotPrice returns the instantaneous price of MintA denominated in MintB
// (e.g. SOL per memecoin base unit), ignoring fees.
func (p *Pool) SpotPrice() float64 {
	if p.ReserveA == 0 {
		return 0
	}
	return float64(p.ReserveB) / float64(p.ReserveA)
}

// ExecRate returns the realized exchange rate of a completed swap as output
// per input. The detector compares attacker and victim rates (criterion C3
// and the §4.1 loss computation) using exactly this quantity.
func ExecRate(amountIn, amountOut uint64) float64 {
	if amountIn == 0 {
		return 0
	}
	return float64(amountOut) / float64(amountIn)
}

package amm

import "jitomev/internal/solana"

// Sandwich planning math: pure what-if simulation used by searcher bots to
// size front-runs. Everything here operates on clones and never mutates the
// live pool.

// Plan describes a fully simulated sandwich against one victim swap.
// All amounts are base units. The attacker trades in the same direction as
// the victim in the front-run (paper criterion C3: the first trade moves the
// exchange rate against the victim), then reverses in the back-run.
type Plan struct {
	OutputMint  solana.Pubkey // the mint the front-run buys (pool's other side)
	FrontrunIn  uint64        // attacker input (victim's input mint) in tx1
	FrontrunOut uint64        // attacker output (victim's output mint) in tx1
	VictimOut   uint64        // what the victim will receive after the front-run
	BackrunIn   uint64        // attacker input to tx3 (== FrontrunOut)
	BackrunOut  uint64        // attacker output of tx3, in the victim's input mint
	Profit      int64         // BackrunOut - FrontrunIn; may be negative
}

// simulate runs front-run → victim → back-run on a clone of p and returns
// the plan, or false if any leg fails (including the victim's slippage
// check, which would make the sandwich pointless: the attacker only
// includes the victim tx because its success is required for profit).
func simulate(p *Pool, inputMint solana.Pubkey, frontrunIn, victimIn, victimMinOut uint64) (Plan, bool) {
	sim := p.Clone()
	outMint, err := sim.OtherMint(inputMint)
	if err != nil {
		return Plan{}, false
	}
	frontOut, err := sim.Swap(inputMint, frontrunIn, 0)
	if err != nil {
		return Plan{}, false
	}
	victimOut, err := sim.Swap(inputMint, victimIn, victimMinOut)
	if err != nil {
		return Plan{}, false
	}
	backOut, err := sim.Swap(outMint, frontOut, 0)
	if err != nil {
		return Plan{}, false
	}
	return Plan{
		OutputMint:  outMint,
		FrontrunIn:  frontrunIn,
		FrontrunOut: frontOut,
		VictimOut:   victimOut,
		BackrunIn:   frontOut,
		BackrunOut:  backOut,
		Profit:      int64(backOut) - int64(frontrunIn),
	}, true
}

// MaxFrontrun returns the largest attacker input x ≤ budget such that the
// victim's swap still clears its MinOut after the attacker's front-run.
// Prior work on Ethereum showed a properly set slippage tolerance caps how
// much an attacker can extract (paper §2.2); this function is that cap made
// concrete. Returns 0 if even the smallest front-run breaks the victim.
//
// The victim's post-front-run output is monotonically non-increasing in x,
// so a binary search finds the boundary exactly.
func MaxFrontrun(p *Pool, inputMint solana.Pubkey, victimIn, victimMinOut, budget uint64) uint64 {
	if budget == 0 {
		return 0
	}
	if budget > MaxSwapIn {
		budget = MaxSwapIn
	}
	// fits checks only the victim's constraint: after a front-run of x,
	// does the victim's swap still clear its MinOut? (Whether the
	// attacker's back-run is itself worthwhile is PlanSandwich's job.)
	fits := func(x uint64) bool {
		sim := p.Clone()
		if _, err := sim.Swap(inputMint, x, 0); err != nil {
			return false
		}
		_, err := sim.Swap(inputMint, victimIn, victimMinOut)
		return err == nil
	}
	if victimMinOut == 0 {
		// No slippage protection: the only limits are the attacker's
		// budget and pool mechanics.
		if fits(budget) {
			return budget
		}
	}
	// Smallest input that survives the fee floor: in*(10000-fee)/10000 >= 1.
	minIn := uint64(10_000/(10_000-p.FeeBps)) + 1
	if minIn > budget || !fits(minIn) {
		return 0
	}
	lo, hi := minIn, budget
	if fits(budget) {
		return budget
	}
	// Invariant: fits(lo) && !fits(hi). Search for the boundary.
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		if fits(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// SafeSlippageBps returns the largest slippage tolerance (basis points)
// at which no sandwich against the victim's swap clears minProfit (in the
// victim's input-mint base units), searching 1..maxBps. ok is false when
// even 1 bp admits a profitable attack — on very shallow pools the
// back-run profits from riding the victim's own price impact no matter
// how tight the tolerance (paper §2.2: slippage "acts as a cap on how much
// an attacker can extract ... but cannot fully prevent the attack").
//
// Attacker profit is monotone non-decreasing in the tolerance (a looser
// cap never shrinks the feasible front-run), so binary search applies.
func SafeSlippageBps(p *Pool, inputMint solana.Pubkey, victimIn uint64, minProfit int64, maxBps uint64) (uint64, bool) {
	if maxBps == 0 || maxBps >= 10_000 {
		maxBps = 9_999
	}
	quote, err := p.QuoteOut(inputMint, victimIn)
	if err != nil {
		return 0, false
	}
	profitable := func(bps uint64) bool {
		minOut := quote * (10_000 - bps) / 10_000
		plan, ok := PlanSandwich(p, inputMint, victimIn, minOut, MaxSwapIn)
		return ok && plan.Profit >= minProfit
	}
	if profitable(1) {
		return 0, false
	}
	if !profitable(maxBps) {
		return maxBps, true
	}
	lo, hi := uint64(1), maxBps // !profitable(lo), profitable(hi)
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		if profitable(mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return lo, true
}

// PlanSandwich sizes and simulates the best sandwich against a victim swap
// within the attacker's budget. ok is false when no profitable plan exists
// (victim too small, slippage too tight, or fees exceed the spread).
func PlanSandwich(p *Pool, inputMint solana.Pubkey, victimIn, victimMinOut, budget uint64) (Plan, bool) {
	x := MaxFrontrun(p, inputMint, victimIn, victimMinOut, budget)
	if x == 0 {
		return Plan{}, false
	}
	plan, ok := simulate(p, inputMint, x, victimIn, victimMinOut)
	if !ok || plan.Profit <= 0 {
		return Plan{}, false
	}
	return plan, true
}

package query

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"jitomev/internal/collector"
	"jitomev/internal/core"
	"jitomev/internal/report"
)

// TestScalingExperiment prints the EXPERIMENTS.md streaming-vs-resident
// scaling table. Gated: run with JITOMEV_SCALING=1.
func TestScalingExperiment(t *testing.T) {
	if os.Getenv("JITOMEV_SCALING") != "1" {
		t.Skip("set JITOMEV_SCALING=1 to run")
	}
	for _, sc := range []struct {
		label  string
		nLen3  int
		days   int
		orphan int
	}{
		{"1x", 100_000, 30, 1_000},
		{"4x", 400_000, 120, 4_000},
		{"16x", 1_600_000, 480, 16_000},
	} {
		data := synthDataset(117, sc.nLen3, sc.days, 0.85, sc.orphan)
		path := filepath.Join(t.TempDir(), "scale.snap")
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := data.Save(f); err != nil {
			t.Fatal(err)
		}
		f.Close()
		st, _ := os.Stat(path)
		data = nil
		runtime.GC()

		start := time.Now()
		_, qs, err := RunFile(path, Options{})
		if err != nil {
			t.Fatal(err)
		}
		streamWall := time.Since(start)

		runtime.GC()
		start = time.Now()
		rf, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		loaded, err := collector.LoadDataset(rf, 1)
		rf.Close()
		if err != nil {
			t.Fatal(err)
		}
		report.AnalyzeN(loaded, core.NewDefaultDetector(), 0, 0)
		residentWall := time.Since(start)
		residentPeak := liveHeap()
		loaded = nil
		runtime.GC()

		fmt.Printf("| %s | %d rec / %d days | %.0f MiB | %s / %.0f MiB | %s / %.0f MiB |\n",
			sc.label, sc.nLen3, sc.days, float64(st.Size())/(1<<20),
			residentWall.Round(10*time.Millisecond), float64(residentPeak)/(1<<20),
			streamWall.Round(10*time.Millisecond), float64(qs.PeakHeapBytes)/(1<<20))
	}
}

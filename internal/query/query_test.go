package query

import (
	"bytes"
	"compress/gzip"
	"encoding/gob"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"runtime"
	"sync"
	"testing"
	"time"

	"jitomev"
	"jitomev/internal/collector"
	"jitomev/internal/core"
	"jitomev/internal/explorer"
	"jitomev/internal/jito"
	"jitomev/internal/report"
	"jitomev/internal/snapshot"
	"jitomev/internal/solana"
	"jitomev/internal/stats"
	"jitomev/internal/workload"
)

var studyOnce sync.Once
var studyData *collector.Dataset

// buildStudyDataset runs a seeded multi-day study through the real
// pipeline with length-4/5 retention, so the streamed dataset exercises
// records, aligned details, missing details and the extended pass.
// Built once; every consumer treats it as read-only.
func buildStudyDataset(tb testing.TB) *collector.Dataset {
	tb.Helper()
	studyOnce.Do(func() {
		st := workload.New(workload.Params{Seed: 11, Days: 9, Scale: 20_000})
		store := explorer.NewStore()
		store.RetainDetailsFor(3, 4, 5)
		coll := collector.New(collector.Config{DetailLengths: []int{4, 5}},
			st.P.Clock(), collector.Direct{Store: store})
		sink := &collector.PollingSink{Store: store, Collector: coll, InOutage: st.P.InOutage}
		st.Run(sink)
		if _, err := coll.FetchDetails(); err != nil {
			panic(err)
		}
		studyData = coll.Data
	})
	return studyData
}

// saveV3 serializes a dataset in the streaming container.
func saveV3(tb testing.TB, data *collector.Dataset) []byte {
	tb.Helper()
	var buf bytes.Buffer
	if err := data.Save(&buf); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// TestStreamingMatchesResident is the engine's fidelity contract: the
// out-of-core pass over a v3 snapshot must reproduce the in-memory
// analysis bit for bit, at every worker count.
func TestStreamingMatchesResident(t *testing.T) {
	data := buildStudyDataset(t)
	blob := saveV3(t, data)
	ref := report.AnalyzeN(data, core.NewDefaultDetector(), 0, 1)
	if ref.Sandwiches == 0 || len(ref.Rejections) == 0 || ref.LongBundlesScanned == 0 {
		t.Fatal("study too quiet; equivalence test is vacuous")
	}

	for _, w := range []int{1, 4, 8} {
		res, st, err := Run(bytes.NewReader(blob), Options{Workers: w})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !st.Streamed || st.Format != 3 {
			t.Fatalf("workers=%d: expected streamed v3 execution, got %+v", w, st)
		}
		if st.ShardsScanned == 0 {
			t.Fatalf("workers=%d: no shards scanned", w)
		}
		if !reflect.DeepEqual(ref, res) {
			t.Errorf("workers=%d: streamed Results diverge from resident pass", w)
			diffResults(t, ref, res)
		}
	}
}

// diffResults narrows a Results mismatch to the offending fields.
func diffResults(t *testing.T, ref, got *report.Results) {
	t.Helper()
	rv, gv := reflect.ValueOf(*ref), reflect.ValueOf(*got)
	for i := 0; i < rv.NumField(); i++ {
		if !reflect.DeepEqual(rv.Field(i).Interface(), gv.Field(i).Interface()) {
			t.Errorf("  field %s differs", rv.Type().Field(i).Name)
		}
	}
}

// TestStreamingMatchesResidentUnderChaos repeats the fidelity contract
// on a chaos-fed collection (10% fault rate): degraded data — missing
// details, recovered pages — must stream identically too.
func TestStreamingMatchesResidentUnderChaos(t *testing.T) {
	out, err := jitomev.Run(jitomev.Config{
		Workload:          workload.Params{Seed: 13, Days: 6, Scale: 20_000},
		ExtendedDetection: true,
		FaultRate:         0.1,
		ChaosSeed:         99,
	})
	if err != nil {
		t.Fatal(err)
	}
	data := out.Collector.Data
	blob := saveV3(t, data)
	ref := report.AnalyzeN(data, core.NewDefaultDetector(), 0, 1)

	for _, w := range []int{1, 4, 8} {
		res, _, err := Run(bytes.NewReader(blob), Options{Workers: w})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !reflect.DeepEqual(ref, res) {
			t.Errorf("workers=%d: chaos-fed streamed Results diverge", w)
			diffResults(t, ref, res)
		}
	}
}

// synthDataset hand-builds a dataset big enough that v3 bundle shards
// cluster by day — the shape pushdown exists for. Records run in
// chronological order across [0, days); most carry aligned details, and
// a few hundred orphan details ride along so the orphan section is
// non-empty.
func synthDataset(seed int64, nLen3, days int, detailFrac float64, orphans int) *collector.Dataset {
	rng := rand.New(rand.NewSource(seed))
	clock := solana.Clock{Genesis: time.Unix(1700000000, 0).UTC()}
	data := collector.NewDataset(clock, 4)
	for d := 0; d < days; d++ {
		data.Days[d] = &collector.DayAgg{Bundles: uint64(nLen3 / days), Txs: uint64(3 * nLen3 / days)}
		data.Collected += uint64(nLen3 / days)
	}
	for i := 0; i < nLen3; i++ {
		day := i * days / nLen3
		rec := jito.BundleRecord{
			Seq:      uint64(i),
			Slot:     solana.DayStart(day) + solana.Slot(rng.Intn(int(solana.SlotsPerDay))),
			UnixMs:   rng.Int63(),
			TipLamps: rng.Uint64() >> 40,
		}
		rng.Read(rec.ID[:])
		for j := 0; j < 3; j++ {
			var sig solana.Signature
			rng.Read(sig[:])
			rec.TxIDs = append(rec.TxIDs, sig)
			if rng.Float64() < detailFrac {
				det := jito.TxDetail{Sig: sig, Slot: rec.Slot, TipLamports: rng.Uint64() >> 44}
				rng.Read(det.Signer[:])
				for k := rng.Intn(4); k > 0; k-- {
					var td jito.TokenDelta
					rng.Read(td.Owner[:])
					rng.Read(td.Mint[:])
					td.Delta = rng.Int63() - rng.Int63()
					det.TokenDeltas = append(det.TokenDeltas, td)
				}
				data.Details[sig] = det
			}
		}
		data.Len3 = append(data.Len3, rec)
	}
	for i := 0; i < orphans; i++ {
		det := jito.TxDetail{Slot: solana.DayStart(rng.Intn(days))}
		rng.Read(det.Sig[:])
		rng.Read(det.Signer[:])
		data.Details[det.Sig] = det
	}
	return data
}

// TestDayRangePushdown checks the ranged query against the resident
// reference over an explicitly restricted dataset, and that the planner
// actually skips out-of-range and orphan shards without decoding them.
func TestDayRangePushdown(t *testing.T) {
	data := synthDataset(41, 30_000, 12, 0.9, 500)
	blob := saveV3(t, data)
	days := DayRange{Lo: 2, Hi: 4}

	ref := report.AnalyzeN(restrictDataset(data, days), core.NewDefaultDetector(), 0, 1)
	res, st, err := Run(bytes.NewReader(blob), Options{Workers: 4, Days: &days})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref, res) {
		t.Error("ranged streamed Results diverge from restricted resident pass")
		diffResults(t, ref, res)
	}
	if st.ShardsPruned == 0 {
		t.Errorf("range %+v pruned no shards (scanned %d)", days, st.ShardsScanned)
	}
	if st.BytesSkipped == 0 {
		t.Error("pruned shards skipped no bytes")
	}
	if f := st.PrunedFraction(); f < 0.5 {
		t.Errorf("3 of 12 days should prune most shards; pruned fraction %.2f (%d scanned, %d pruned)",
			f, st.ShardsScanned, st.ShardsPruned)
	}
}

// TestSkipExtended checks the length-3-only economy: the long section is
// pruned wholesale and the extended statistics read zero.
func TestSkipExtended(t *testing.T) {
	data := buildStudyDataset(t)
	blob := saveV3(t, data)

	trimmed := *data
	trimmed.Long = nil
	ref := report.AnalyzeN(&trimmed, core.NewDefaultDetector(), 0, 1)

	res, st, err := Run(bytes.NewReader(blob), Options{Workers: 4, SkipExtended: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.LongBundlesScanned != 0 || res.DisguisedSandwiches != 0 {
		t.Errorf("extended stats nonzero under SkipExtended: %d scanned, %d disguised",
			res.LongBundlesScanned, res.DisguisedSandwiches)
	}
	if !reflect.DeepEqual(ref, res) {
		t.Error("SkipExtended Results diverge from resident pass without Long records")
		diffResults(t, ref, res)
	}
	if st.ShardsPruned == 0 {
		t.Error("SkipExtended pruned no shards")
	}
}

// TestFallbackV2 checks that a v2 container routes through the full-load
// path and still produces the exact Results.
func TestFallbackV2(t *testing.T) {
	data := buildStudyDataset(t)
	snap := &snapshot.Snapshot{
		Genesis:    data.Clock.Genesis.UnixNano(),
		Days:       data.Days,
		TipsLen1:   data.TipsLen1,
		TipsLen3:   data.TipsLen3,
		Len3:       data.Len3,
		Long:       data.Long,
		Details:    data.Details,
		Collected:  data.Collected,
		Duplicates: data.Duplicates,
	}
	var buf bytes.Buffer
	if err := snapshot.WriteV2(&buf, snap, 0); err != nil {
		t.Fatal(err)
	}
	ref := report.AnalyzeN(data, core.NewDefaultDetector(), 0, 1)
	res, st, err := Run(&buf, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if st.Streamed || st.Format != 2 {
		t.Fatalf("expected resident v2 fallback, got %+v", st)
	}
	if !reflect.DeepEqual(ref, res) {
		t.Error("v2 fallback Results diverge")
		diffResults(t, ref, res)
	}
}

// v1Snapshot mirrors the legacy gob layout field for field (gob matches
// by name), letting the test produce a v1 stream without an encoder in
// the product.
type v1Snapshot struct {
	Version  int
	Genesis  int64
	Days     map[int]*collector.DayAgg
	TipsLen1 *stats.LogHistogram
	TipsLen3 *stats.LogHistogram
	Len3     []jito.BundleRecord
	Long     []jito.BundleRecord
	Details  map[solana.Signature]jito.TxDetail

	Collected  uint64
	Duplicates uint64
}

// TestFallbackV1 checks the same for the original gzip+gob stream.
func TestFallbackV1(t *testing.T) {
	data := buildStudyDataset(t)
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	err := gob.NewEncoder(zw).Encode(&v1Snapshot{
		Version:    1,
		Genesis:    data.Clock.Genesis.UnixNano(),
		Days:       data.Days,
		TipsLen1:   data.TipsLen1,
		TipsLen3:   data.TipsLen3,
		Len3:       data.Len3,
		Long:       data.Long,
		Details:    data.Details,
		Collected:  data.Collected,
		Duplicates: data.Duplicates,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	ref := report.AnalyzeN(data, core.NewDefaultDetector(), 0, 1)
	res, st, err := Run(&buf, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if st.Streamed || st.Format != 1 {
		t.Fatalf("expected resident v1 fallback, got %+v", st)
	}
	if !reflect.DeepEqual(ref, res) {
		t.Error("v1 fallback Results diverge")
		diffResults(t, ref, res)
	}
}

// TestRangedFallbackMatchesStreaming pins one semantic across paths: a
// day-restricted query must answer identically whether the container
// streamed or fell back to a full load.
func TestRangedFallbackMatchesStreaming(t *testing.T) {
	data := buildStudyDataset(t)
	days := DayRange{Lo: 1, Hi: 3}
	streamRes, _, err := Run(bytes.NewReader(saveV3(t, data)), Options{Workers: 4, Days: &days})
	if err != nil {
		t.Fatal(err)
	}
	snap := &snapshot.Snapshot{
		Genesis:    data.Clock.Genesis.UnixNano(),
		Days:       data.Days,
		TipsLen1:   data.TipsLen1,
		TipsLen3:   data.TipsLen3,
		Len3:       data.Len3,
		Long:       data.Long,
		Details:    data.Details,
		Collected:  data.Collected,
		Duplicates: data.Duplicates,
	}
	var buf bytes.Buffer
	if err := snapshot.WriteV2(&buf, snap, 0); err != nil {
		t.Fatal(err)
	}
	residentRes, _, err := Run(&buf, Options{Workers: 4, Days: &days})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(streamRes, residentRes) {
		t.Error("ranged query answers differently across v3-stream and v2-fallback paths")
		diffResults(t, streamRes, residentRes)
	}
}

// writeStudyFile generates a study of the given length and saves its v3
// snapshot to disk, returning only the path — the resident dataset is
// released before the caller queries, so the measurement sees streaming
// memory, not leftovers.
func writeStudyFile(tb testing.TB, dir string, seed int64, days int) string {
	tb.Helper()
	st := workload.New(workload.Params{Seed: seed, Days: days, Scale: 20_000})
	store := explorer.NewStore()
	coll := collector.New(collector.Config{}, st.P.Clock(), collector.Direct{Store: store})
	sink := &collector.PollingSink{Store: store, Collector: coll, InOutage: st.P.InOutage}
	st.Run(sink)
	if _, err := coll.FetchDetails(); err != nil {
		tb.Fatal(err)
	}
	path := filepath.Join(dir, "study.snap")
	f, err := os.Create(path)
	if err != nil {
		tb.Fatal(err)
	}
	if err := coll.Data.Save(f); err != nil {
		tb.Fatal(err)
	}
	if err := f.Close(); err != nil {
		tb.Fatal(err)
	}
	return path
}

// TestBoundedMemory is the tentpole's memory contract: scaling the
// dataset 10× in days must not scale the streaming pass's peak live
// heap — it stays bounded by workers × shard size (plus the results
// themselves, which grow with sandwich count, not dataset size).
func TestBoundedMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("builds two studies")
	}
	small := writeStudyFile(t, t.TempDir(), 31, 3)
	large := writeStudyFile(t, t.TempDir(), 32, 30)

	peak := func(path string) uint64 {
		runtime.GC()
		_, st, err := RunFile(path, Options{Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		if !st.Streamed {
			t.Fatal("expected streaming execution")
		}
		if st.PeakHeapBytes == 0 {
			t.Fatal("no heap samples recorded")
		}
		return st.PeakHeapBytes
	}

	peakSmall := peak(small)
	peakLarge := peak(large)
	budget := 2*peakSmall + 64<<20
	if peakLarge > budget {
		t.Errorf("10× dataset peaked at %d MiB live heap, budget %d MiB (1× peaked at %d MiB)",
			peakLarge>>20, budget>>20, peakSmall>>20)
	}
}

// TestRunFileMissing covers the file entry point's error path.
func TestRunFileMissing(t *testing.T) {
	if _, _, err := RunFile(filepath.Join(t.TempDir(), "absent"), Options{}); err == nil {
		t.Fatal("querying a missing file succeeded")
	}
}

// TestTruncatedStream checks that a cut mid-scan surfaces as a loud
// error, not a silently short answer.
func TestTruncatedStream(t *testing.T) {
	data := buildStudyDataset(t)
	blob := saveV3(t, data)
	if _, _, err := Run(bytes.NewReader(blob[:len(blob)*2/3]), Options{Workers: 4}); err == nil {
		t.Fatal("truncated stream produced results")
	}
	if _, _, err := Run(io.LimitReader(bytes.NewReader(blob), 4), Options{}); err == nil {
		t.Fatal("4-byte stream produced results")
	}
}

// TestReversedDayRange: a lo > hi range is a caller mistake, and Run
// must say so loudly — before this guard it silently pruned every shard
// and returned an empty, plausible-looking Results.
func TestReversedDayRange(t *testing.T) {
	data := buildStudyDataset(t)
	blob := saveV3(t, data)
	days := DayRange{Lo: 4, Hi: 2}
	_, _, err := Run(bytes.NewReader(blob), Options{Workers: 2, Days: &days})
	if err == nil {
		t.Fatal("reversed day range produced results instead of an error")
	}
	if !strings.Contains(err.Error(), "reversed day range 4:2") {
		t.Errorf("error %q does not name the reversed range", err)
	}
}

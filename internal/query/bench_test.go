package query

import (
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"

	"jitomev/internal/collector"
	"jitomev/internal/core"
	"jitomev/internal/report"
)

// The streaming benchmarks run over a synthetic four-month collection at
// the paper's per-day density shape (120 study days, chronological
// shards), subsampled in volume so the suite stays tractable — the
// quantities reported per shard are what matter, not the absolute count.
// BENCH_query.json records shards/sec and MB/s throughput, the live-heap
// high-water (peak-RSS-bytes) and, for the ranged query, the fraction of
// shards pushdown skipped without decoding (pruned-frac).

var benchOnce sync.Once
var benchPath string
var benchSize int64

// benchSnapshot builds the container once and serves it from disk, the
// way real queries run — an in-memory blob would charge the input to
// every peak-RSS sample.
func benchSnapshot(b *testing.B) (string, int64) {
	benchOnce.Do(func() {
		data := synthDataset(117, 400_000, 120, 0.85, 4_000)
		benchPath = filepath.Join(os.TempDir(), "jitomev-bench-query.snap")
		f, err := os.Create(benchPath)
		if err != nil {
			panic(err)
		}
		if err := data.Save(f); err != nil {
			panic(err)
		}
		if err := f.Close(); err != nil {
			panic(err)
		}
		st, err := os.Stat(benchPath)
		if err != nil {
			panic(err)
		}
		benchSize = st.Size()
		runtime.GC() // drop construction garbage before anyone samples heap
	})
	return benchPath, benchSize
}

// BenchmarkQueryStreamFull scans every bundle shard (full Results).
func BenchmarkQueryStreamFull(b *testing.B) {
	path, size := benchSnapshot(b)
	b.SetBytes(size)
	b.ResetTimer()
	var shards int
	var peak uint64
	for i := 0; i < b.N; i++ {
		_, st, err := RunFile(path, Options{})
		if err != nil {
			b.Fatal(err)
		}
		shards += st.ShardsScanned
		if st.PeakHeapBytes > peak {
			peak = st.PeakHeapBytes
		}
	}
	b.ReportMetric(float64(shards)/b.Elapsed().Seconds(), "shards/s")
	b.ReportMetric(float64(peak), "peak-RSS-bytes")
}

// BenchmarkQueryStreamPruned answers "sandwich share by day" for one
// month of the four: pushdown must skip well over half the shards.
func BenchmarkQueryStreamPruned(b *testing.B) {
	path, size := benchSnapshot(b)
	days := DayRange{Lo: 30, Hi: 59}
	b.SetBytes(size)
	b.ResetTimer()
	var shards int
	var peak uint64
	var pruned float64
	for i := 0; i < b.N; i++ {
		_, st, err := RunFile(path, Options{Days: &days})
		if err != nil {
			b.Fatal(err)
		}
		shards += st.ShardsScanned
		if st.PeakHeapBytes > peak {
			peak = st.PeakHeapBytes
		}
		pruned = st.PrunedFraction()
	}
	b.ReportMetric(float64(shards)/b.Elapsed().Seconds(), "shards/s")
	b.ReportMetric(float64(peak), "peak-RSS-bytes")
	b.ReportMetric(pruned, "pruned-frac")
}

// BenchmarkQueryResidentFull is the in-memory baseline over the same
// container: full load plus AnalyzeN, for the EXPERIMENTS comparison.
func BenchmarkQueryResidentFull(b *testing.B) {
	path, size := benchSnapshot(b)
	b.SetBytes(size)
	b.ResetTimer()
	var peak uint64
	for i := 0; i < b.N; i++ {
		f, err := os.Open(path)
		if err != nil {
			b.Fatal(err)
		}
		data, err := collector.LoadDataset(f, 1)
		f.Close()
		if err != nil {
			b.Fatal(err)
		}
		report.AnalyzeN(data, core.NewDefaultDetector(), 0, 0)
		if h := liveHeap(); h > peak {
			peak = h
		}
	}
	b.ReportMetric(float64(peak), "peak-RSS-bytes")
}

// Package query runs the paper's analyses out-of-core: detection
// (criteria C1–C5), the Table-1 headline statistics and the per-day
// figure series are computed directly over snapshot shards — decode,
// analyze, fold, discard — so peak live memory is proportional to
// workers × shard size and independent of how many days the study
// collected. At the paper's density (≈14.8M bundles/day over four
// months) the resident dataset does not fit comfortably in memory;
// the streaming pass never materializes it.
//
// The engine leans on two layers built for it: snapshot.Scan delivers
// v3 shards in file order with detection mapped onto the decode pool,
// and report.Accumulator folds partials in shard order, which makes the
// streamed Results bit-identical to report.AnalyzeN over the same data
// at every worker count.
//
// Planning is predicate pushdown on the per-shard metadata the encoder
// wrote: shards whose day bounds miss the requested range are skipped
// without decompression, the orphan-details section is always skipped
// (no bundle record can reference an orphan, by construction), and
// SkipExtended additionally drops the length-4/5 section for queries
// that only need the paper's length-3 economy. Older containers (v1
// gob, v2 sharded) have no pushdown metadata; they fall back to a full
// load plus the in-memory pass, so every snapshot ever written stays
// queryable through one entry point.
package query

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"runtime"

	"jitomev/internal/collector"
	"jitomev/internal/core"
	"jitomev/internal/jito"
	"jitomev/internal/obs"
	"jitomev/internal/report"
	"jitomev/internal/snapshot"
)

// DayRange restricts a query to study days in [Lo, Hi], inclusive.
type DayRange struct {
	Lo, Hi int
}

// Contains reports whether day d falls in the range.
func (dr DayRange) Contains(d int) bool { return d >= dr.Lo && d <= dr.Hi }

// Options configure a query. The zero value computes the full Results
// over all days on all cores, uninstrumented.
type Options struct {
	// Workers bounds the decode/detect pool (0 = all cores, 1 = serial).
	// Results are identical at every worker count.
	Workers int

	// Days, when non-nil, restricts every statistic to records and day
	// aggregates inside the range. Shards entirely outside it are
	// pruned without decompression. The tip histograms and the
	// duplicate count have no per-day breakdown and stay global.
	Days *DayRange

	// SkipExtended drops the extended pass over retained length-4/5
	// bundles (and prunes their shards): the paper's length-3-only
	// economy. The extended statistics read zero.
	SkipExtended bool

	// SOLPriceUSD for dollar conversions; ≤ 0 selects the paper's rate.
	SOLPriceUSD float64

	// Detector overrides the detection criteria (nil = paper defaults).
	Detector *core.Detector

	// Reg optionally receives scan counters, detection counters, spans
	// and the live-heap gauge.
	Reg *obs.Registry
}

// Stats describes how a query executed — what was scanned, what the
// planner skipped, and the memory high-water of the pass.
type Stats struct {
	// Format is the container version encountered (1 = gzip/gob,
	// 2 = sharded v2, 3 = streaming v3).
	Format int

	// Streamed is true when the out-of-core path ran; false means an
	// older container forced the full-load fallback.
	Streamed bool

	ShardsScanned int   // shards decompressed and decoded
	ShardsPruned  int   // shards skipped by pushdown
	BytesDecoded  int64 // uncompressed bytes that were decoded
	BytesSkipped  int64 // compressed bytes never inflated

	// PeakHeapBytes is the live-heap high-water sampled over the pass.
	PeakHeapBytes uint64
}

// PrunedFraction is the share of streaming shards pushdown eliminated.
func (s *Stats) PrunedFraction() float64 {
	if total := s.ShardsScanned + s.ShardsPruned; total > 0 {
		return float64(s.ShardsPruned) / float64(total)
	}
	return 0
}

// RunFile runs a query over the snapshot at path.
func RunFile(path string, opts Options) (*report.Results, *Stats, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, fmt.Errorf("query: %w", err)
	}
	defer f.Close()
	return Run(f, opts)
}

// Run sniffs the container version on r and executes the query: the
// bounded-memory streaming pass for v3 snapshots, the full-load
// fallback for anything older.
func Run(r io.Reader, opts Options) (*report.Results, *Stats, error) {
	// A reversed range would silently select nothing (every Contains
	// check fails and every shard prunes); refuse it loudly instead —
	// the caller swapped the bounds.
	if opts.Days != nil && opts.Days.Lo > opts.Days.Hi {
		return nil, nil, fmt.Errorf("query: reversed day range %d:%d (lo > hi; did you swap the bounds?)",
			opts.Days.Lo, opts.Days.Hi)
	}
	br := bufio.NewReaderSize(r, 1<<20)
	version, err := snapshot.Sniff(br)
	if err != nil {
		return nil, nil, err
	}
	st := &Stats{Format: version}
	if version < 3 {
		res, err := runResident(br, opts, st)
		return res, st, err
	}
	st.Streamed = true
	res, err := runStreaming(br, opts, st)
	return res, st, err
}

// runResident is the fallback for containers without pushdown metadata:
// materialize the dataset, then run the in-memory pass over it.
func runResident(br *bufio.Reader, opts Options, st *Stats) (*report.Results, error) {
	data, err := collector.LoadDatasetObs(br, 1, opts.Workers, opts.Reg)
	if err != nil {
		return nil, err
	}
	if opts.Days != nil {
		data = restrictDataset(data, *opts.Days)
	}
	if opts.SkipExtended {
		data.Long = nil
	}
	det := opts.Detector
	if det == nil {
		det = core.NewDefaultDetector()
	}
	res := report.AnalyzeObs(data, det, opts.SOLPriceUSD, opts.Workers, opts.Reg)
	st.PeakHeapBytes = liveHeap()
	return res, nil
}

// restrictDataset applies a day range to a resident dataset, producing
// exactly what the streaming pass computes over the same range: records
// and day aggregates filtered, collection total recomputed from the
// surviving days, duplicates and tip histograms left global.
func restrictDataset(data *collector.Dataset, days DayRange) *collector.Dataset {
	out := collector.NewDataset(data.Clock, 1)
	out.Duplicates = data.Duplicates
	out.TipsLen1 = data.TipsLen1
	out.TipsLen3 = data.TipsLen3
	out.Details = data.Details
	for d, agg := range data.Days {
		if days.Contains(d) {
			out.Days[d] = agg
			out.Collected += agg.Bundles
		}
	}
	keep := func(recs []jito.BundleRecord) []jito.BundleRecord {
		var kept []jito.BundleRecord
		for i := range recs {
			if days.Contains(data.Clock.DayOf(recs[i].Slot)) {
				kept = append(kept, recs[i])
			}
		}
		return kept
	}
	out.Len3 = keep(data.Len3)
	out.Long = keep(data.Long)
	return out
}

// shardResult is one shard's detection output, computed on the decode
// pool and folded in shard order.
type shardResult struct {
	inRange int // records surviving the day restriction
	len3    report.Len3Partial
	long    report.LongPartial
}

// heapSampleEvery bounds how often the fold goroutine pays for a
// runtime.ReadMemStats: every 32 shards keeps the gauge honest at a
// fraction of a percent of scan time.
const heapSampleEvery = 32

// runStreaming executes the out-of-core pass over a v3 snapshot.
func runStreaming(br *bufio.Reader, opts Options, st *Stats) (*report.Results, error) {
	reg := opts.Reg
	det := opts.Detector
	if det == nil {
		det = core.NewDefaultDetector()
	}

	reg.Volatile("query_live_heap_bytes")
	reg.Help("query_live_heap_bytes", "Live heap sampled during the streaming query, bytes.")
	reg.Help("query_shards_total", "Streaming shards by section and planner outcome.")
	heapGauge := reg.Gauge("query_live_heap_bytes")
	sampleHeap := func() {
		h := liveHeap()
		if h > st.PeakHeapBytes {
			st.PeakHeapBytes = h
		}
		heapGauge.Set(int64(h))
	}

	var (
		a           *report.Accumulator
		len3InRange int
		folds       int
	)

	scanOpts := snapshot.ScanOptions{
		Workers: opts.Workers,
		Reg:     reg,
		Prune: func(sec snapshot.Section, m snapshot.ShardMeta) bool {
			// Orphan details are referenced by no record — they can
			// never reach the detector.
			if sec == snapshot.SectionOrphans {
				return true
			}
			if opts.SkipExtended && sec == snapshot.SectionLong {
				return true
			}
			if opts.Days != nil && (m.MaxDay < opts.Days.Lo || m.MinDay > opts.Days.Hi) {
				return true
			}
			return false
		},
		SectionStart: func(sec snapshot.Section, _, items int) error {
			if sec == snapshot.SectionLen3 && a == nil {
				return fmt.Errorf("query: internal: prelude not delivered before shards")
			}
			return nil
		},
		Map: func(sec snapshot.Section, m snapshot.ShardMeta, b *snapshot.Batch) (any, error) {
			sr := &shardResult{}
			if opts.Days == nil {
				sr.inRange = len(b.Recs)
			} else {
				clock := a.Clock()
				for i := range b.Recs {
					if opts.Days.Contains(clock.DayOf(b.Recs[i].Slot)) {
						sr.inRange++
					}
				}
			}
			src := batchSource(b)
			switch sec {
			case snapshot.SectionLen3:
				sr.len3 = a.DetectLen3(b.Recs, src)
			case snapshot.SectionLong:
				sr.long = a.DetectLong(b.Recs, src)
			}
			return sr, nil
		},
	}

	span := reg.StartSpan("query_scan")
	sampleHeap()
	err := snapshot.Scan(br, scanOpts, func(p *snapshot.Prelude) error {
		a = newAccumulator(p, det, opts)
		return nil
	}, func(sec snapshot.Section, m snapshot.ShardMeta, _ *snapshot.Batch, mapped any) error {
		if mapped == nil { // pruned
			st.ShardsPruned++
			st.BytesSkipped += int64(m.CompLen)
			reg.Counter("query_shards_total", "section", sec.String(), "outcome", "pruned").Add(1)
			return nil
		}
		st.ShardsScanned++
		st.BytesDecoded += int64(m.RawLen)
		reg.Counter("query_shards_total", "section", sec.String(), "outcome", "scanned").Add(1)
		sr := mapped.(*shardResult)
		switch sec {
		case snapshot.SectionLen3:
			len3InRange += sr.inRange
			a.FoldLen3(sr.len3)
		case snapshot.SectionLong:
			a.FoldLong(sr.long)
		}
		if folds++; folds%heapSampleEvery == 0 {
			sampleHeap()
		}
		return nil
	})
	span.End()
	if err != nil {
		return nil, err
	}
	sampleHeap()
	reg.Counter("query_bytes_decoded_total").Add(uint64(st.BytesDecoded))
	reg.Counter("query_bytes_skipped_total").Add(uint64(st.BytesSkipped))

	res := a.Finish(reg)
	// The prelude cannot know how many length-3 records survive a day
	// restriction; the scan counted them.
	res.Len3Bundles = uint64(len3InRange)
	return res, nil
}

// newAccumulator scopes the fold to the query: full-range queries carry
// the prelude through untouched, day-restricted ones recompute the
// collection totals from the surviving days (and restrict detection to
// matching records).
func newAccumulator(p *snapshot.Prelude, det *core.Detector, opts Options) *report.Accumulator {
	sc := report.Scope{
		Clock:      p.Clock(),
		Days:       p.Days,
		TipsLen1:   p.TipsLen1,
		TipsLen3:   p.TipsLen3,
		Collected:  p.Collected,
		Duplicates: p.Duplicates,
	}
	if opts.Days != nil {
		sc.Collected = 0
		sc.Days = nil
		for d, agg := range p.Days {
			if opts.Days.Contains(d) {
				if sc.Days == nil {
					sc.Days = make(map[int]*collector.DayAgg)
				}
				sc.Days[d] = agg
				sc.Collected += agg.Bundles
			}
		}
	}
	a := report.NewAccumulator(det, opts.SOLPriceUSD, sc)
	if opts.Days != nil {
		a.Restrict(opts.Days.Lo, opts.Days.Hi)
	}
	return a
}

// batchSource adapts a decoded shard to the fold's DetailSource.
func batchSource(b *snapshot.Batch) report.DetailSource {
	return func(i int, scratch []jito.TxDetail) ([]jito.TxDetail, bool) {
		return b.AppendDetails(scratch, i)
	}
}

// liveHeap reads the allocator's live-byte count.
func liveHeap() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

package stream_test

import (
	"testing"

	"jitomev/internal/collector"
	"jitomev/internal/core"
	"jitomev/internal/report"
	"jitomev/internal/stream"
)

// runStreamBench drives the captured study feed through the incremental
// engine at full speed and reports the per-event detection latency
// percentiles alongside throughput. The p50/p99 are the engine's own
// ingest→verdict measurements: with the feed arriving as fast as Offer
// accepts it, they bound the processing latency a live tap would add on
// top of slot time.
func runStreamBench(b *testing.B, cross stream.CrossConfig) {
	fx := buildFeed(b)
	b.ResetTimer()
	var last stream.Summary
	for i := 0; i < b.N; i++ {
		eng := stream.New(stream.Config{Extended: true, Clock: fx.clock, Cross: cross})
		for _, ev := range fx.events {
			eng.Offer(ev)
		}
		if r := eng.Finish(); r == nil {
			b.Fatal("Finish returned nil Results")
		}
		last = eng.Summary()
	}
	b.ReportMetric(float64(last.Events)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
	b.ReportMetric(float64(last.DetectP50.Nanoseconds())/1e6, "p50-ms")
	b.ReportMetric(float64(last.DetectP99.Nanoseconds())/1e6, "p99-ms")
}

// BenchmarkStreamDetect is the batch-comparable configuration: the
// in-block fold alone, the same verdicts AnalyzeN computes. Its events/s
// against BenchmarkStreamBatchBaseline is the throughput acceptance
// ratio.
func BenchmarkStreamDetect(b *testing.B) {
	runStreamBench(b, stream.CrossConfig{})
}

// BenchmarkStreamDetectCross adds the cross-block candidate stage — work
// the batch path cannot do at all (every trade of every bundle flows
// through the tracker), priced separately so the in-block comparison
// stays apples-to-apples.
func BenchmarkStreamDetectCross(b *testing.B) {
	runStreamBench(b, stream.CrossConfig{WindowSlots: 4})
}

// BenchmarkStreamBatchBaseline is the comparison point: the batch path
// doing the same end-to-end work over the same feed — ingest every
// record into a dataset, retain details, then one AnalyzeN pass.
// events/s here is the bar the streamed path's throughput is measured
// against (acceptance: within 20%).
func BenchmarkStreamBatchBaseline(b *testing.B) {
	fx := buildFeed(b)
	det := core.NewDefaultDetector()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data := collector.NewDataset(fx.clock, 1024)
		data.RetainLengths(4, 5)
		for _, ev := range fx.events {
			data.Ingest(ev.Rec)
			switch ev.Rec.NumTxs() {
			case 3, 4, 5:
				for _, d := range ev.Details {
					data.Details[d.Sig] = d
				}
			}
		}
		if r := report.AnalyzeN(data, det, 0, 0); r == nil {
			b.Fatal("AnalyzeN returned nil")
		}
	}
	b.ReportMetric(float64(len(fx.events))*float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

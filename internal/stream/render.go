package stream

import (
	"fmt"
	"io"
)

// Write renders the summary as the CLIs print it: a counters line, a
// per-stage latency table, and — when the cross-block stage ran — the
// cache's verdict/eviction accounting.
func (s Summary) Write(w io.Writer) {
	fmt.Fprintf(w, "stream: %d events (%d late, %d duplicate) over %d sealed slots — %d verdicts, %d disguised\n",
		s.Events, s.Late, s.Duplicates, s.SlotsSealed, s.Verdicts, s.Disguised)
	fmt.Fprintf(w, "  latency      %12s %12s\n", "p50", "p99")
	fmt.Fprintf(w, "  ingest→seal  %12s %12s\n", s.IngestToSealP50, s.IngestToSealP99)
	fmt.Fprintf(w, "  seal→verdict %12s %12s\n", s.SealToVerdictP50, s.SealToVerdictP99)
	fmt.Fprintf(w, "  end-to-end   %12s %12s\n", s.DetectP50, s.DetectP99)
	if s.CrossCandidates > 0 || s.CrossVerdicts > 0 {
		fmt.Fprintf(w, "  cross-block: %d candidates → %d verdicts (evicted %d window, %d capacity; cache high water %d bytes)\n",
			s.CrossCandidates, s.CrossVerdicts, s.CrossEvictWindow, s.CrossEvictCapacity, s.CrossCacheHighWater)
	}
}

package stream_test

import (
	"reflect"
	"testing"

	"jitomev/internal/jito"
	"jitomev/internal/solana"
	"jitomev/internal/stream"
	"jitomev/internal/token"
)

// Cross-block detection tests drive the tracker through the public
// engine API with hand-built feeds: every trade is a single-transaction
// bundle whose TokenDeltas express exactly one clean two-mint swap.

func pk(b byte) solana.Pubkey {
	var p solana.Pubkey
	p[0] = b
	return p
}

var (
	mintSOL = token.SOL.Address
	mintX   = pk(0xAA)

	attacker = pk(1)
	victim   = pk(2)
)

// swapEvent is a one-transaction bundle: signer sells `soldAmt` of
// `sold` for `boughtAmt` of `bought` in the given slot.
func swapEvent(seq uint64, slot solana.Slot, signer, sold, bought solana.Pubkey, soldAmt, boughtAmt uint64) stream.Event {
	var id jito.BundleID
	id[0] = byte(seq)
	id[1] = byte(seq >> 8)
	var sig solana.Signature
	sig[0] = byte(seq)
	return stream.Event{
		Rec: jito.BundleRecord{Seq: seq, ID: id, Slot: slot, TxIDs: []solana.Signature{sig}, TipLamps: 1000},
		Details: []jito.TxDetail{{
			Sig:    sig,
			Signer: signer,
			Slot:   slot,
			TokenDeltas: []jito.TokenDelta{
				{Owner: signer, Mint: sold, Delta: -int64(soldAmt)},
				{Owner: signer, Mint: bought, Delta: int64(boughtAmt)},
			},
		}},
	}
}

func crossEngine(window, maxBytes int) *stream.Engine {
	return stream.New(stream.Config{
		Clock: solana.Clock{},
		Cross: stream.CrossConfig{WindowSlots: window, MaxBytes: maxBytes},
	})
}

// TestCrossBlockSandwichDetected: front-run, victim, back-run in three
// different bundles across three slots — invisible to the in-block
// detector, caught by the cross-block stage with the right attribution.
func TestCrossBlockSandwichDetected(t *testing.T) {
	eng := crossEngine(4, 0)
	eng.Offer(swapEvent(1, 10, attacker, mintSOL, mintX, 100, 50)) // front: SOL -> X
	eng.Offer(swapEvent(2, 11, victim, mintSOL, mintX, 60, 25))    // victim, same direction
	eng.Offer(swapEvent(3, 12, attacker, mintX, mintSOL, 50, 120)) // back: X -> SOL, +20 SOL net
	res := eng.Finish()

	if res.Sandwiches != 0 {
		t.Errorf("in-block detector flagged %d sandwiches over single-tx bundles", res.Sandwiches)
	}
	cvs := eng.CrossVerdicts()
	if len(cvs) != 1 {
		t.Fatalf("cross verdicts = %d, want 1", len(cvs))
	}
	cv := cvs[0]
	if cv.Attacker != attacker || cv.Victim != victim {
		t.Errorf("attribution: attacker %x victim %x", cv.Attacker[:2], cv.Victim[:2])
	}
	if cv.FrontSlot != 10 || cv.BackSlot != 12 || cv.SpanSlots() != 2 {
		t.Errorf("span: front %d back %d", cv.FrontSlot, cv.BackSlot)
	}
	if !cv.HasSOL || cv.AttackerGainLamports != 20 {
		t.Errorf("gain: hasSOL=%v gain=%v, want 20 SOL-leg lamports", cv.HasSOL, cv.AttackerGainLamports)
	}
	if s := eng.Summary(); s.CrossVerdicts != 1 {
		t.Errorf("summary cross verdicts = %d", s.CrossVerdicts)
	}
}

// TestCrossBlockRequiresVictim: an attacker round trip with nobody in
// between is inventory management, not a sandwich.
func TestCrossBlockRequiresVictim(t *testing.T) {
	eng := crossEngine(4, 0)
	eng.Offer(swapEvent(1, 10, attacker, mintSOL, mintX, 100, 50))
	eng.Offer(swapEvent(2, 12, attacker, mintX, mintSOL, 50, 120))
	eng.Finish()
	if n := len(eng.CrossVerdicts()); n != 0 {
		t.Errorf("victimless round trip produced %d verdicts", n)
	}
}

// TestCrossBlockRequiresProfit: closing at a loss fails the C4-analog
// test even with a victim in between.
func TestCrossBlockRequiresProfit(t *testing.T) {
	eng := crossEngine(4, 0)
	eng.Offer(swapEvent(1, 10, attacker, mintSOL, mintX, 100, 50))
	eng.Offer(swapEvent(2, 11, victim, mintSOL, mintX, 60, 25))
	eng.Offer(swapEvent(3, 12, attacker, mintX, mintSOL, 50, 90)) // -10 SOL
	eng.Finish()
	if n := len(eng.CrossVerdicts()); n != 0 {
		t.Errorf("losing round trip produced %d verdicts", n)
	}
}

// TestCrossBlockWindowExpiry: a back-leg landing outside the
// leader-contiguity window closes nothing — the candidate was already
// window-evicted, and the eviction is counted.
func TestCrossBlockWindowExpiry(t *testing.T) {
	const window = 4
	eng := crossEngine(window, 0)
	eng.Offer(swapEvent(1, 10, attacker, mintSOL, mintX, 100, 50))
	eng.Offer(swapEvent(2, 11, victim, mintSOL, mintX, 60, 25))
	eng.Offer(swapEvent(3, 40, attacker, mintX, mintSOL, 50, 120)) // 30 slots later
	eng.Finish()
	if n := len(eng.CrossVerdicts()); n != 0 {
		t.Errorf("out-of-window back-leg produced %d verdicts", n)
	}
	if s := eng.Summary(); s.CrossEvictWindow == 0 {
		t.Error("window expiry evicted nothing")
	}
}

// TestCrossBlockCacheBound: a 10× replay of the study feed (slots and
// ids shifted per round so dedup and the watermark admit every event)
// against a deliberately tiny cache must stay under the configured byte
// bound, evicting by LRU — and produce identical verdicts at every
// worker count.
func TestCrossBlockCacheBound(t *testing.T) {
	fx := buildFeed(t)
	maxSlot := solana.Slot(0)
	for _, ev := range fx.events {
		if ev.Rec.Slot > maxSlot {
			maxSlot = ev.Rec.Slot
		}
	}

	const maxBytes = 8192 // 16 candidates at the 512-byte accounting unit
	run := func(workers int) (stream.Summary, []stream.CrossVerdict) {
		eng := stream.New(stream.Config{
			Workers: workers,
			Clock:   fx.clock,
			// A window wide enough that candidates pile up: capacity, not
			// expiry, must do the bounding.
			Cross: stream.CrossConfig{WindowSlots: int(maxSlot), MaxBytes: maxBytes},
		})
		for round := 0; round < 10; round++ {
			offset := solana.Slot(round) * (maxSlot + 1)
			for _, ev := range fx.events {
				shifted := ev
				shifted.Rec.Slot += offset
				shifted.Rec.ID[31] ^= byte(round) // fresh identity per round
				eng.Offer(shifted)
			}
		}
		eng.Finish()
		return eng.Summary(), eng.CrossVerdicts()
	}

	s1, v1 := run(1)
	if s1.CrossCacheHighWater > maxBytes {
		t.Errorf("cache high water %d bytes exceeds configured bound %d", s1.CrossCacheHighWater, maxBytes)
	}
	if s1.CrossEvictCapacity == 0 {
		t.Error("tiny cache over a 10x replay produced no capacity evictions")
	}
	if s1.CrossCandidates == 0 {
		t.Error("study feed opened no candidates")
	}

	s8, v8 := run(8)
	if s1.CrossCacheHighWater != s8.CrossCacheHighWater ||
		s1.CrossEvictCapacity != s8.CrossEvictCapacity ||
		s1.CrossCandidates != s8.CrossCandidates ||
		s1.CrossVerdicts != s8.CrossVerdicts {
		t.Errorf("cross counters differ across workers:\n  w1: %+v\n  w8: %+v", s1, s8)
	}
	if !reflect.DeepEqual(v1, v8) {
		t.Error("cross verdicts differ across workers")
	}
}

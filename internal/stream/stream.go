// Package stream is the incremental sandwich-detection engine: it
// consumes bundles as they land — from the live block-engine feed, the
// collector's growing dataset, or a replayed snapshot — and emits
// verdicts with sub-slot latency instead of waiting for a completed day.
//
// The engine is a slot-ordered ingest front over the same detection fold
// batch analysis uses (report.Accumulator):
//
//   - Offer accepts bundle events in any arrival order and buffers them
//     by slot. A watermark trails the highest slot seen by LagSlots;
//     slots at or below it are sealed — their events sorted into
//     canonical (Seq, ID) order and handed to the detection pool.
//     Arrivals behind the watermark are dropped and counted
//     (stream_events_late_total), never silently absorbed.
//   - Detection — the pure per-bundle work — runs concurrently on a
//     bounded pool, one task per sealed slot; the fold goroutine then
//     replays FoldLen3/FoldLong in seal order, which is slot order. Over
//     a feed delivered in canonical order (or any scramble the lag
//     absorbs), the fold sequence is exactly the batch pass's record
//     index order, so Finish returns Results bit-identical to
//     report.AnalyzeN at every Workers setting.
//   - Collection-level aggregates (per-day counts, tip histograms,
//     dedup) accumulate from the feed itself, mirroring
//     collector.Dataset.Ingest; a replay of an already-collected dataset
//     imports the dataset's own scope via SetScope instead.
//
// On top of the in-block fold sits a cross-block stage the batch path
// does not have: a bounded candidate cache keyed by (pool, signer) that
// pairs front- and back-legs across bundle and block boundaries within a
// leader-contiguity window (see cross.go).
//
// Latency is measured per stage — ingest→seal and seal→verdict
// histograms plus end-to-end detection latency — on the obs registry
// next to the stream_* counter family.
package stream

import (
	"sort"
	"sync"
	"time"

	"jitomev/internal/collector"
	"jitomev/internal/core"
	"jitomev/internal/jito"
	"jitomev/internal/obs"
	"jitomev/internal/parallel"
	"jitomev/internal/report"
	"jitomev/internal/solana"
	"jitomev/internal/stats"
)

// Config configures an Engine. The zero value is usable: all cores, a
// 2-slot watermark lag, length-3 detection only, cross-block disabled.
type Config struct {
	// Workers bounds the detection pool (0 = all cores, 1 = serial).
	// Verdicts are bit-identical at every setting.
	Workers int

	// LagSlots is the watermark's allowed lateness: slot s seals once an
	// event from slot > s+LagSlots arrives. Arrivals delayed by up to
	// LagSlots-1 slots are absorbed losslessly; anything later is
	// dropped and counted. 0 selects 2.
	LagSlots solana.Slot

	// DedupSlots is how many slots behind the watermark delivered bundle
	// ids are remembered for duplicate suppression. 0 selects 64.
	DedupSlots solana.Slot

	// Extended also detects disguised sandwiches in length-4/5 events,
	// matching a batch pass with extended detection enabled.
	Extended bool

	// Clock maps slots to study days; pass the workload's (live) or the
	// dataset's (replay).
	Clock solana.Clock

	// Detector overrides the criteria (nil = paper defaults).
	Detector *core.Detector

	// SOLPriceUSD for dollar conversions; ≤ 0 selects the paper's rate.
	SOLPriceUSD float64

	// Cross enables the cross-block candidate stage when
	// Cross.WindowSlots > 0.
	Cross CrossConfig

	// Reg receives the stream_* counter family and the latency
	// histograms (nil = a private registry, so Summary always works).
	Reg *obs.Registry
}

// Event is one delivered bundle: the record plus its aligned transaction
// details (nil or incomplete when the feed does not carry them — the
// record still counts toward collection aggregates, exactly like a
// dataset record whose details were never fetched). Arrived stamps
// delivery time for the latency histograms; zero means "now".
type Event struct {
	Rec     jito.BundleRecord
	Details []jito.TxDetail
	Arrived time.Time

	// Span optionally carries an enclosing trace context: when sampled,
	// the engine parents its per-event trace there instead of rooting a
	// fresh one, so a feed's own traces show the seal/fold hops.
	Span obs.SpanCtx

	// tr is the per-event trace, engine-owned from Offer to fold. Only
	// latency-sampled events (Arrived set) carry one, so the tracing
	// cost rides the existing sampling stride.
	tr *obs.Trace
}

// detectLatencyBuckets resolve microseconds through one slot time
// (400 ms) and beyond, in seconds.
var detectLatencyBuckets = []float64{
	1e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.2, 0.4, 1,
}

// slotJob is one sealed slot in flight: events in canonical order, the
// detection partials filled on the pool, and a ready gate the ordered
// fold waits on. Jobs are pooled — most slots carry a single bundle, and
// per-slot allocation would dominate the hot path.
type slotJob struct {
	slot     solana.Slot
	sealedAt time.Time
	events   []Event

	recs3 []jito.BundleRecord
	dets3 [][]jito.TxDetail
	recsL []jito.BundleRecord
	detsL [][]jito.TxDetail

	len3 report.Len3Partial
	long report.LongPartial
	// ready gates the fold on the detection pool: Add(1) before the job
	// is handed to a worker, Done when its partials are filled. A slot
	// with nothing to detect never Adds — its zero partials fold as exact
	// no-ops and Wait returns immediately. A WaitGroup instead of a
	// channel because pooled jobs reuse it allocation-free.
	ready sync.WaitGroup
}

var jobPool = sync.Pool{New: func() any { return new(slotJob) }}

// reset clears a job for reuse, keeping its slice capacity.
func (j *slotJob) reset() {
	j.events = j.events[:0]
	j.recs3, j.recsL = j.recs3[:0], j.recsL[:0]
	j.dets3, j.detsL = j.dets3[:0], j.detsL[:0]
	j.len3, j.long = report.Len3Partial{}, report.LongPartial{}
	j.sealedAt = time.Time{}
}

// retiredSlot remembers a sealed slot's bundle ids until they age out of
// the dedup window. The first id is inline — most slots carry a single
// bundle, and a slice here would be one allocation per sealed slot.
type retiredSlot struct {
	slot solana.Slot
	id   jito.BundleID
	more []jito.BundleID // ids beyond the first, rare
}

// Engine is the incremental detector. Construct with New; Offer events
// from any goroutine; Finish exactly once after the feed completes.
type Engine struct {
	cfg    Config
	reg    *obs.Registry
	tracer *obs.Tracer

	mu       sync.Mutex
	finished bool

	acc   *report.Accumulator
	cross *crossTracker

	// Ingest front state (guarded by mu). order and retired are
	// front-popped queues with an explicit head index — popping by
	// reslicing would burn the front capacity and force a reallocation
	// every few appends.
	head      solana.Slot
	headSet   bool
	sealedTo  solana.Slot
	hasSealed bool
	pending   map[solana.Slot]*slotJob
	order     []solana.Slot // pending slots, ascending from ordHead
	ordHead   int
	ids        map[jito.BundleID]struct{}
	retired    []retiredSlot // dedup history, live from retHead
	retHead    int
	sampleTick uint64 // latency-sampling cursor

	// Live scope accumulation, mirroring collector.Dataset.Ingest.
	days       map[int]*collector.DayAgg
	tips1      *stats.LogHistogram
	tips3      *stats.LogHistogram
	collected  uint64
	duplicates uint64
	len3Count  uint64
	scope      *report.Scope // imported via SetScope; nil = live scope

	// Detection pipeline: sealed jobs flow to the persistent worker pool
	// through detq (pure detection, any order) and to the single fold
	// goroutine through jobs (seal order); the fold waits on each job's
	// ready gate. Persistent workers rather than a goroutine per slot —
	// spawning and growing a stack per sealed slot dominated the hot
	// path.
	detq     chan *slotJob
	jobs     chan *slotJob
	foldDone chan struct{}

	// Fold-goroutine tallies (read after foldDone closes).
	verdicts  uint64
	disguised uint64

	cEvents, cLate, cDup, cSealed  *obs.Counter
	cVerdicts, cDisguised          *obs.Counter
	hIngestSeal, hSealVerdict, hDetect *obs.Histogram
}

// New builds and starts an engine; its fold goroutine runs until Finish.
func New(cfg Config) *Engine {
	if cfg.LagSlots <= 0 {
		cfg.LagSlots = 2
	}
	if cfg.DedupSlots <= 0 {
		cfg.DedupSlots = 64
	}
	if cfg.Detector == nil {
		cfg.Detector = core.NewDefaultDetector()
	}
	cfg.Workers = parallel.Workers(cfg.Workers)
	reg := cfg.Reg
	if reg == nil {
		reg = obs.NewRegistry()
	}

	e := &Engine{
		cfg:      cfg,
		reg:      reg,
		tracer:   reg.TracerAttached(),
		acc:      report.NewLiveAccumulator(cfg.Detector, cfg.SOLPriceUSD, cfg.Clock),
		pending:  make(map[solana.Slot]*slotJob),
		ids:      make(map[jito.BundleID]struct{}),
		days:     make(map[int]*collector.DayAgg),
		tips1:    stats.NewTipHistogram(),
		tips3:    stats.NewTipHistogram(),
		detq:     make(chan *slotJob, 4*cfg.Workers+16),
		jobs:     make(chan *slotJob, 4*cfg.Workers+16),
		foldDone: make(chan struct{}),
	}

	reg.Help("stream_events_total", "Bundle events offered to the streaming detector.")
	reg.Help("stream_events_late_total", "Events dropped for arriving behind the sealed watermark.")
	reg.Help("stream_duplicates_total", "Events suppressed as duplicate deliveries.")
	reg.Help("stream_slots_sealed_total", "Slots sealed and handed to the detection pool.")
	reg.Help("stream_verdicts_total", "Sandwich verdicts emitted by the in-block streaming fold.")
	reg.Help("stream_disguised_verdicts_total", "Disguised (length-4/5) verdicts emitted by the streaming fold.")
	reg.Help("stream_ingest_to_seal_seconds", "Per-event latency from delivery to slot seal.")
	reg.Help("stream_seal_to_verdict_seconds", "Per-slot latency from seal to folded verdicts.")
	reg.Help("stream_detect_latency_seconds", "Per-event end-to-end latency from delivery to folded verdict.")
	reg.Volatile("stream_ingest_to_seal_seconds")
	reg.Volatile("stream_seal_to_verdict_seconds")
	reg.Volatile("stream_detect_latency_seconds")
	e.cEvents = reg.Counter("stream_events_total")
	e.cLate = reg.Counter("stream_events_late_total")
	e.cDup = reg.Counter("stream_duplicates_total")
	e.cSealed = reg.Counter("stream_slots_sealed_total")
	e.cVerdicts = reg.Counter("stream_verdicts_total")
	e.cDisguised = reg.Counter("stream_disguised_verdicts_total")
	e.hIngestSeal = reg.Histogram("stream_ingest_to_seal_seconds", detectLatencyBuckets)
	e.hSealVerdict = reg.Histogram("stream_seal_to_verdict_seconds", detectLatencyBuckets)
	e.hDetect = reg.Histogram("stream_detect_latency_seconds", detectLatencyBuckets)

	if cfg.Cross.WindowSlots > 0 {
		e.cross = newCrossTracker(cfg.Cross, reg)
	}

	for i := 0; i < cfg.Workers; i++ {
		go e.detectWorker()
	}
	go e.foldLoop()
	return e
}

// detectWorker runs the pure per-slot detection; results land in the
// job, the ready gate releases the fold.
func (e *Engine) detectWorker() {
	for job := range e.detq {
		job.len3 = e.acc.DetectLen3(job.recs3, alignedSource(job.dets3))
		job.long = e.acc.DetectLong(job.recsL, alignedSource(job.detsL))
		job.ready.Done()
	}
}

// Obs returns the registry the engine records onto.
func (e *Engine) Obs() *obs.Registry { return e.reg }

// latencySampleStride is the 1-in-N latency sampling rate: only every
// Nth event (with no caller-provided arrival stamp) pays for a clock
// read and histogram observes. The percentiles stay representative; the
// measurement stops being the hot path's dominant cost. Power of two.
const latencySampleStride = 8

// Offer delivers one event. Safe for concurrent use; events for sealed
// slots are dropped and counted, duplicate bundle ids are suppressed.
// Offering to a finished engine is a no-op (counted as late).
//
// When ev.Arrived is zero, arrival is stamped here — on a sampled
// subset of events (see latencySampleStride); a caller-provided stamp
// always feeds the latency histograms.
func (e *Engine) Offer(ev Event) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.finished || (e.hasSealed && ev.Rec.Slot <= e.sealedTo) {
		e.cLate.Inc()
		return
	}
	if ev.Arrived.IsZero() {
		if e.sampleTick++; e.sampleTick&(latencySampleStride-1) == 0 {
			ev.Arrived = time.Now()
		}
	}
	if _, dup := e.ids[ev.Rec.ID]; dup {
		e.duplicates++
		e.cDup.Inc()
		return
	}
	e.ids[ev.Rec.ID] = struct{}{}
	e.cEvents.Inc()
	if !ev.Arrived.IsZero() && e.tracer != nil {
		// Per-event traces ride the latency-sampling stride: the sampled
		// subset that pays for a clock read also carries the trace whose
		// seal_wait/fold spans explain where that latency went.
		if ev.Span.Sampled() {
			ev.tr = ev.Span.StartChild("stream.event")
		} else {
			ev.tr = e.tracer.StartTrace("stream.event")
		}
		ev.tr.Annotatef("slot:%d seq:%d", ev.Rec.Slot, ev.Rec.Seq)
	}

	slot := ev.Rec.Slot
	job, ok := e.pending[slot]
	if !ok {
		job = jobPool.Get().(*slotJob)
		job.slot = slot
		e.pending[slot] = job
		live := e.order[e.ordHead:]
		i := sort.Search(len(live), func(i int) bool { return live[i] >= slot })
		e.order = append(e.order, 0)
		live = e.order[e.ordHead:]
		copy(live[i+1:], live[i:])
		live[i] = slot
	}
	job.events = append(job.events, ev)

	e.ingestScope(&ev.Rec)

	if !e.headSet || slot > e.head {
		e.head, e.headSet = slot, true
		e.advanceWatermark()
	}
}

// advanceWatermark seals through head-LagSlots (slots are unsigned; a
// head still inside the lag seals nothing). Caller holds mu.
func (e *Engine) advanceWatermark() {
	if e.head >= e.cfg.LagSlots {
		e.sealThrough(e.head - e.cfg.LagSlots)
	}
}

// Advance pushes the watermark from an external slot clock — a live feed
// signalling "chain time reached head with no bundle in between", so
// quiet stretches still seal promptly.
func (e *Engine) Advance(head solana.Slot) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.finished {
		return
	}
	if !e.headSet || head > e.head {
		e.head, e.headSet = head, true
		e.advanceWatermark()
	}
}

// ingestScope mirrors collector.Dataset.Ingest's aggregation (sans
// record retention): per-day counts, defensive/priority split, tip
// histograms. Skipped entirely once SetScope imported an external scope.
func (e *Engine) ingestScope(rec *jito.BundleRecord) {
	if e.scope != nil {
		return
	}
	e.collected++
	n := rec.NumTxs()
	day := e.cfg.Clock.DayOf(rec.Slot)
	agg, ok := e.days[day]
	if !ok {
		agg = &collector.DayAgg{}
		e.days[day] = agg
	}
	agg.Bundles++
	agg.Txs += uint64(n)
	if n <= jito.MaxBundleTxs {
		agg.ByLength[n]++
	}
	switch n {
	case 1:
		e.tips1.Add(float64(rec.TipLamps))
		if rec.Tip() <= solana.DefensiveTipCeiling {
			agg.DefensiveCount++
			agg.DefensiveSpend += rec.TipLamps
		} else {
			agg.PriorityCount++
		}
	case 3:
		e.tips3.Add(float64(rec.TipLamps))
		e.len3Count++
	}
}

// SetScope imports an externally computed Scope — a replayed dataset's
// own aggregates — overriding everything the feed accumulated. Call any
// time before Finish.
func (e *Engine) SetScope(sc report.Scope) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.scope = &sc
}

// sealThrough seals every pending slot ≤ w, ascending, and expires dedup
// state that aged out. Caller holds mu.
func (e *Engine) sealThrough(w solana.Slot) {
	if e.hasSealed && w <= e.sealedTo {
		return
	}
	if e.ordHead < len(e.order) && e.order[e.ordHead] <= w {
		now := time.Now()
		for e.ordHead < len(e.order) && e.order[e.ordHead] <= w {
			slot := e.order[e.ordHead]
			e.ordHead++
			e.seal(e.pending[slot], now)
			delete(e.pending, slot)
		}
		if e.ordHead == len(e.order) {
			e.order, e.ordHead = e.order[:0], 0
		}
	}
	e.sealedTo, e.hasSealed = w, true
	e.expireDedup(w)
}

// seal fixes a slot's canonical order, starts its detection task, and
// enqueues it for the ordered fold. Caller holds mu; the enqueue may
// block when the fold lags far behind — that backpressure, not an
// unbounded queue, bounds the engine's memory.
func (e *Engine) seal(job *slotJob, now time.Time) {
	job.sealedAt = now
	evs := job.events
	if len(evs) > 1 {
		sort.SliceStable(evs, func(i, j int) bool {
			if evs[i].Rec.Seq != evs[j].Rec.Seq {
				return evs[i].Rec.Seq < evs[j].Rec.Seq
			}
			return lessID(evs[i].Rec.ID, evs[j].Rec.ID)
		})
	}

	ret := retiredSlot{slot: job.slot, id: evs[0].Rec.ID}
	for i := range evs {
		if i > 0 {
			ret.more = append(ret.more, evs[i].Rec.ID)
		}
		if !evs[i].Arrived.IsZero() {
			e.hIngestSeal.Observe(now.Sub(evs[i].Arrived).Seconds())
			// Retroactive: the ingest→seal wait is only a span once the
			// seal fixes its end.
			evs[i].tr.Ctx().RecordSpan("seal_wait", evs[i].Arrived, now, false)
		}
		rec := &evs[i].Rec
		det := evs[i].Details
		if len(det) != rec.NumTxs() {
			det = nil // incomplete: the detector never sees it
		}
		switch n := rec.NumTxs(); {
		case n == 3:
			job.recs3 = append(job.recs3, *rec)
			job.dets3 = append(job.dets3, det)
		case e.cfg.Extended && (n == 4 || n == 5):
			job.recsL = append(job.recsL, *rec)
			job.detsL = append(job.detsL, det)
		}
	}
	e.retired = append(e.retired, ret)

	// A slot with nothing to detect — the common case, most bundles are
	// single-transaction tips — never reaches the worker pool: its zero
	// partials fold as exact no-ops, so the fast path is bit-identical.
	// With no cross stage to feed either, it skips the fold round-trip
	// entirely and retires here.
	if len(job.recs3) == 0 && len(job.recsL) == 0 {
		if e.cross == nil {
			e.cSealed.Inc()
			sampled := false
			for i := range evs {
				if !evs[i].Arrived.IsZero() {
					sampled = true
					e.hDetect.ObserveExemplar(now.Sub(evs[i].Arrived).Seconds(),
						evs[i].tr.TraceID())
					evs[i].tr.End()
				}
			}
			if sampled {
				e.hSealVerdict.Observe(0)
			}
			job.reset()
			jobPool.Put(job)
			return
		}
	} else {
		job.ready.Add(1)
		e.detq <- job
	}
	e.jobs <- job
}

// expireDedup forgets bundle ids of slots DedupSlots behind the
// watermark. Caller holds mu.
func (e *Engine) expireDedup(w solana.Slot) {
	if w < e.cfg.DedupSlots {
		return
	}
	cutoff := w - e.cfg.DedupSlots
	for e.retHead < len(e.retired) && e.retired[e.retHead].slot < cutoff {
		rs := &e.retired[e.retHead]
		delete(e.ids, rs.id)
		for _, id := range rs.more {
			delete(e.ids, id)
		}
		rs.more = nil
		e.retHead++
	}
	// Compact once the dead prefix dominates, so the backing array stays
	// proportional to the dedup window instead of the whole run.
	if e.retHead > 64 && 2*e.retHead > len(e.retired) {
		n := copy(e.retired, e.retired[e.retHead:])
		e.retired, e.retHead = e.retired[:n], 0
	}
}

// alignedSource adapts per-record detail slices to the fold's
// DetailSource contract (nil = details unavailable).
func alignedSource(dets [][]jito.TxDetail) report.DetailSource {
	return func(i int, scratch []jito.TxDetail) ([]jito.TxDetail, bool) {
		if dets[i] == nil {
			return scratch, false
		}
		return append(scratch, dets[i]...), true
	}
}

// foldLoop is the single fold goroutine: it awaits each sealed slot's
// detection in seal order and replays the order-sensitive folds, so the
// fold sequence is independent of pool scheduling.
func (e *Engine) foldLoop() {
	defer close(e.foldDone)
	// now is refreshed once per burst: when the queue has more sealed
	// slots waiting, the jobs in the burst share one timestamp — the
	// histograms are volatile, and a clock read per slot was measurable.
	var now time.Time
	fresh := false
	for job := range e.jobs {
		job.ready.Wait()
		e.acc.FoldLen3(job.len3)
		e.acc.FoldLong(job.long)
		if e.cross != nil {
			e.cross.processSlot(job)
		}
		e.verdicts += uint64(job.len3.Hits())
		e.disguised += uint64(job.long.Hits())
		e.cVerdicts.Add(uint64(job.len3.Hits()))
		e.cDisguised.Add(uint64(job.long.Hits()))
		e.cSealed.Inc()
		if !fresh {
			now = time.Now()
		}
		fresh = len(e.jobs) > 0
		sampled := false
		for i := range job.events {
			ev := &job.events[i]
			if ev.Arrived.IsZero() {
				continue
			}
			sampled = true
			ev.tr.Ctx().RecordSpan("fold", job.sealedAt, now, false)
			e.hDetect.ObserveExemplar(now.Sub(ev.Arrived).Seconds(), ev.tr.TraceID())
			ev.tr.End()
		}
		if sampled {
			e.hSealVerdict.Observe(now.Sub(job.sealedAt).Seconds())
		}
		job.reset()
		jobPool.Put(job)
	}
}

// Finish seals every pending slot, drains the fold, seeds the scope and
// returns the completed Results — bit-identical to report.AnalyzeN over
// the same records in canonical order. Call exactly once.
func (e *Engine) Finish() *report.Results {
	e.mu.Lock()
	if e.finished {
		e.mu.Unlock()
		panic("stream: Finish called twice")
	}
	if e.ordHead < len(e.order) {
		now := time.Now()
		for e.ordHead < len(e.order) {
			slot := e.order[e.ordHead]
			e.ordHead++
			e.seal(e.pending[slot], now)
			delete(e.pending, slot)
		}
	}
	if e.headSet {
		e.sealedTo, e.hasSealed = e.head, true
	}
	e.finished = true
	close(e.detq)
	close(e.jobs)
	e.mu.Unlock()

	<-e.foldDone
	sc := e.liveScope()
	if e.scope != nil {
		sc = *e.scope
	}
	e.acc.SeedScope(sc)
	// The batch pass publishes the detect_* counters when it runs on the
	// same registry; the stream publishes only its own family (the fold
	// already counted verdicts) to keep shared-registry runs additive.
	return e.acc.Finish(nil)
}

// liveScope packages the feed-accumulated aggregates.
func (e *Engine) liveScope() report.Scope {
	return report.Scope{
		Clock:       e.cfg.Clock,
		Days:        e.days,
		TipsLen1:    e.tips1,
		TipsLen3:    e.tips3,
		Collected:   e.collected,
		Duplicates:  e.duplicates,
		Len3Bundles: e.len3Count,
	}
}

// CrossVerdicts returns the cross-block verdicts in emission order.
// Valid after Finish.
func (e *Engine) CrossVerdicts() []CrossVerdict {
	if e.cross == nil {
		return nil
	}
	return e.cross.verdicts
}

// Summary snapshots the engine's counters and latency percentiles.
// Valid after Finish.
type Summary struct {
	Events      uint64
	Late        uint64
	Duplicates  uint64
	SlotsSealed uint64
	Verdicts    uint64
	Disguised   uint64

	CrossCandidates     uint64
	CrossVerdicts       uint64
	CrossEvictWindow    uint64
	CrossEvictCapacity  uint64
	CrossCacheHighWater int // bytes

	IngestToSealP50, IngestToSealP99   time.Duration
	SealToVerdictP50, SealToVerdictP99 time.Duration
	DetectP50, DetectP99               time.Duration
}

// Summary reads the engine's end-of-run summary.
func (e *Engine) Summary() Summary {
	s := Summary{
		Events:      e.cEvents.Value(),
		Late:        e.cLate.Value(),
		Duplicates:  e.cDup.Value(),
		SlotsSealed: e.cSealed.Value(),
		Verdicts:    e.verdicts,
		Disguised:   e.disguised,

		IngestToSealP50:  seconds(e.hIngestSeal.Quantile(0.50)),
		IngestToSealP99:  seconds(e.hIngestSeal.Quantile(0.99)),
		SealToVerdictP50: seconds(e.hSealVerdict.Quantile(0.50)),
		SealToVerdictP99: seconds(e.hSealVerdict.Quantile(0.99)),
		DetectP50:        seconds(e.hDetect.Quantile(0.50)),
		DetectP99:        seconds(e.hDetect.Quantile(0.99)),
	}
	if e.cross != nil {
		s.CrossCandidates = e.cross.cCand.Value()
		s.CrossVerdicts = e.cross.cVerd.Value()
		s.CrossEvictWindow = e.cross.cEvictWindow.Value()
		s.CrossEvictCapacity = e.cross.cEvictCap.Value()
		s.CrossCacheHighWater = e.cross.highWater * candBytes
	}
	return s
}

func seconds(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}

// lessID orders bundle ids bytewise — the canonical tiebreak for equal
// sequence numbers (only reachable in hand-built feeds; the block engine
// assigns Seq uniquely).
func lessID(a, b jito.BundleID) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

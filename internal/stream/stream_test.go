package stream_test

import (
	"reflect"
	"sync"
	"testing"

	"jitomev"
	"jitomev/internal/collector"
	"jitomev/internal/core"
	"jitomev/internal/faults"
	"jitomev/internal/jito"
	"jitomev/internal/report"
	"jitomev/internal/solana"
	"jitomev/internal/stream"
	"jitomev/internal/workload"
)

// The equivalence contract under test: over the same record set in the
// same effective order, Engine.Finish must return Results bit-identical
// to report.AnalyzeN — at every Workers setting, over a perfectly
// ordered feed, over a chaos-scrambled feed the watermark absorbs, and
// over a replayed snapshot from a degraded collection.

// feedFixture is one generated study captured as a live event feed plus
// the reference dataset a batch pass would have collected at full
// coverage (every accepted bundle, details for every retained length).
type feedFixture struct {
	clock  solana.Clock
	events []stream.Event
	data   *collector.Dataset
}

var (
	feedOnce sync.Once
	feed     feedFixture
)

// buildFeed taps a study's accepted-bundle stream directly — no
// collector in between, so the dataset and the feed cover the exact
// same records and the duplicate count (zero) matches too.
func buildFeed(t testing.TB) feedFixture {
	t.Helper()
	feedOnce.Do(func() {
		st := workload.New(workload.Params{Seed: 11, Days: 6, Scale: 20_000})
		data := collector.NewDataset(st.P.Clock(), 1024)
		data.RetainLengths(4, 5)
		var events []stream.Event
		st.Run(workload.SinkFunc(func(day int, acc *jito.Accepted) {
			data.Ingest(acc.Record)
			switch acc.Record.NumTxs() {
			case 3, 4, 5:
				for _, d := range acc.Details {
					data.Details[d.Sig] = d
				}
			}
			events = append(events, stream.Event{Rec: acc.Record, Details: acc.Details})
		}))
		feed = feedFixture{clock: st.P.Clock(), events: events, data: data}
	})
	return feed
}

func diffResults(t *testing.T, ref, got *report.Results) {
	t.Helper()
	rv, gv := reflect.ValueOf(*ref), reflect.ValueOf(*got)
	for i := 0; i < rv.NumField(); i++ {
		if !reflect.DeepEqual(rv.Field(i).Interface(), gv.Field(i).Interface()) {
			t.Errorf("  field %s differs", rv.Type().Field(i).Name)
		}
	}
}

// TestStreamMatchesBatchOrderedFeed: a canonically ordered live feed at
// several worker counts must reproduce the batch pass bit-for-bit,
// including the live-accumulated scope (days, tips, defensive split).
func TestStreamMatchesBatchOrderedFeed(t *testing.T) {
	fx := buildFeed(t)
	ref := report.AnalyzeN(fx.data, core.NewDefaultDetector(), 0, 1)

	for _, w := range []int{1, 4, 8} {
		eng := stream.New(stream.Config{Workers: w, Extended: true, Clock: fx.clock})
		for _, ev := range fx.events {
			eng.Offer(ev)
		}
		got := eng.Finish()
		if !reflect.DeepEqual(ref, got) {
			t.Errorf("workers=%d: streamed Results differ from batch", w)
			diffResults(t, ref, got)
		}
		s := eng.Summary()
		if s.Late != 0 || s.Duplicates != 0 {
			t.Errorf("workers=%d: ordered feed dropped %d late, %d dup", w, s.Late, s.Duplicates)
		}
		if s.Events != uint64(len(fx.events)) {
			t.Errorf("workers=%d: events %d, want %d", w, s.Events, len(fx.events))
		}
	}
}

// scrambleFeed applies FeedChaos to the ordered feed: delayed events
// slide back to after everything from slots ≤ slot+delay, duplicated
// events are re-delivered immediately. Delivery order is deterministic
// in (seed, rate, maxDelay).
func scrambleFeed(events []stream.Event, seed int64, rate float64, maxDelay int) []stream.Event {
	chaos := faults.NewFeedChaos(faults.NewInjector(seed, rate), maxDelay)
	type keyed struct {
		ev      stream.Event
		slot    solana.Slot // delivery slot: actual slot + planned delay
		replays int
	}
	out := make([]keyed, 0, len(events))
	for _, ev := range events {
		class, delay := chaos.Plan()
		k := keyed{ev: ev, slot: ev.Rec.Slot}
		switch class {
		case faults.ClassDelay:
			k.slot += solana.Slot(delay)
		case faults.ClassDuplicate:
			k.replays = 1
		}
		out = append(out, k)
	}
	// Stable sort by delivery slot: a delayed event lands after every
	// on-time event of slots ≤ slot+delay, original order otherwise.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].slot < out[j-1].slot; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	delivered := make([]stream.Event, 0, len(out))
	for _, k := range out {
		delivered = append(delivered, k.ev)
		for r := 0; r < k.replays; r++ {
			delivered = append(delivered, k.ev)
		}
	}
	return delivered
}

// TestStreamMatchesBatchChaosFeed: a feed scrambled at 10% fault rate —
// out-of-order arrivals inside the watermark lag plus duplicate
// deliveries — must still fold to the batch answer at every worker
// count, with the duplicates counted rather than silently absorbed.
func TestStreamMatchesBatchChaosFeed(t *testing.T) {
	fx := buildFeed(t)
	const lag = 8
	delivered := scrambleFeed(fx.events, 4242, 0.10, lag-1)
	dups := len(delivered) - len(fx.events)
	if dups == 0 {
		t.Fatal("chaos injected no duplicates")
	}

	// The reference collects the same delivery sequence — its dedup
	// window suppresses the duplicates, its record slices end up in
	// arrival order — then analyzes the canonicalized view.
	refData := collector.NewDataset(fx.clock, 1024)
	refData.RetainLengths(4, 5)
	for _, ev := range delivered {
		if refData.Ingest(ev.Rec) {
			switch ev.Rec.NumTxs() {
			case 3, 4, 5:
				for _, d := range ev.Details {
					refData.Details[d.Sig] = d
				}
			}
		}
	}
	if refData.Duplicates != uint64(dups) {
		t.Fatalf("reference dedup caught %d duplicates, want %d", refData.Duplicates, dups)
	}
	ref := report.AnalyzeN(stream.Canonicalize(refData), core.NewDefaultDetector(), 0, 1)

	for _, w := range []int{1, 4, 8} {
		eng := stream.New(stream.Config{Workers: w, LagSlots: lag, Extended: true, Clock: fx.clock})
		for _, ev := range delivered {
			eng.Offer(ev)
		}
		got := eng.Finish()
		if !reflect.DeepEqual(ref, got) {
			t.Errorf("workers=%d: chaos-fed Results differ from batch", w)
			diffResults(t, ref, got)
		}
		s := eng.Summary()
		if s.Late != 0 {
			t.Errorf("workers=%d: %d events dropped late; delays within lag must be lossless", w, s.Late)
		}
		if s.Duplicates != uint64(dups) {
			t.Errorf("workers=%d: duplicates %d, want %d", w, s.Duplicates, dups)
		}
	}
}

// TestStreamLateDrop: an arrival behind the sealed watermark is dropped
// and counted — never silently absorbed, never a hang.
func TestStreamLateDrop(t *testing.T) {
	fx := buildFeed(t)
	eng := stream.New(stream.Config{LagSlots: 2, Extended: true, Clock: fx.clock})
	// Deliver everything except the first event, then the first event —
	// by then the watermark is several days of slots past it.
	for _, ev := range fx.events[1:] {
		eng.Offer(ev)
	}
	eng.Offer(fx.events[0])
	got := eng.Finish()
	s := eng.Summary()
	if s.Late != 1 {
		t.Fatalf("late = %d, want exactly the one behind-watermark arrival", s.Late)
	}
	if s.Events != uint64(len(fx.events)-1) {
		t.Errorf("events %d, want %d (the late one excluded)", s.Events, len(fx.events)-1)
	}
	ref := report.AnalyzeN(fx.data, core.NewDefaultDetector(), 0, 1)
	if got.Sandwiches > ref.Sandwiches {
		t.Errorf("lossy feed detected %d sandwiches, reference full feed only %d", got.Sandwiches, ref.Sandwiches)
	}
}

// TestReplayMatchesBatchChaosCollection: a dataset collected under 10%
// collection-path chaos (missing details, recovered pages), replayed
// through the engine, must match the batch pass over the canonicalized
// dataset — the acceptance contract for `report -load -replay`.
func TestReplayMatchesBatchChaosCollection(t *testing.T) {
	out, err := jitomev.Run(jitomev.Config{
		Workload:          workload.Params{Seed: 13, Days: 6, Scale: 20_000},
		ExtendedDetection: true,
		FaultRate:         0.1,
		ChaosSeed:         99,
	})
	if err != nil {
		t.Fatal(err)
	}
	data := out.Collector.Data
	ref := report.AnalyzeN(stream.Canonicalize(data), core.NewDefaultDetector(), 0, 1)

	for _, w := range []int{1, 4, 8} {
		eng := stream.New(stream.Config{Workers: w, Extended: true, Clock: data.Clock})
		stream.Replay(eng, data)
		got := eng.Finish()
		if !reflect.DeepEqual(ref, got) {
			t.Errorf("workers=%d: replayed Results differ from batch", w)
			diffResults(t, ref, got)
		}
	}
}

// TestStreamLiveTapMatchesRunPipeline: the jitomev.Run wiring — the
// stream taps the same accepted-bundle feed the store ingests, so on a
// full-coverage, fault-free run the streamed verdict count matches the
// batch pass exactly.
func TestStreamLiveTapMatchesRunPipeline(t *testing.T) {
	out, err := jitomev.Run(jitomev.Config{
		Workload:     workload.Params{Seed: 17, Days: 4, Scale: 20_000},
		StreamDetect: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.StreamResults == nil {
		t.Fatal("StreamDetect produced no StreamResults")
	}
	if got, want := out.StreamResults.Sandwiches, out.Results.Sandwiches; got != want {
		t.Errorf("streamed %d sandwiches, batch %d (full-coverage run must agree)", got, want)
	}
	if out.StreamSummary.Events == 0 || out.StreamSummary.SlotsSealed == 0 {
		t.Errorf("empty stream summary: %+v", out.StreamSummary)
	}
	// Verify the stream_* family landed on the run's shared registry.
	if v := out.Obs.Value("stream_events_total"); v != float64(out.StreamSummary.Events) {
		t.Errorf("stream_events_total on registry = %v, summary says %d", v, out.StreamSummary.Events)
	}
}

// TestFinishPanicsTwice: the exactly-once contract is enforced, not
// assumed.
func TestFinishPanicsTwice(t *testing.T) {
	eng := stream.New(stream.Config{Clock: solana.Clock{}})
	eng.Finish()
	defer func() {
		if recover() == nil {
			t.Fatal("second Finish did not panic")
		}
	}()
	eng.Finish()
}

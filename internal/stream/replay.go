package stream

import (
	"sort"

	"jitomev/internal/collector"
	"jitomev/internal/jito"
	"jitomev/internal/report"
)

// Replay support: driving the engine from an already-collected dataset —
// `report -load -replay` over a snapshot, or the collector feeding its
// own growing dataset poll by poll. A replayed dataset carries its own
// collection aggregates, so the engine imports them (SetScope) instead of
// re-deriving scope from the record subset it replays.

// ScopeOf packages a dataset's collection aggregates as the engine's
// replay scope — the same mapping report.Analyze applies internally.
func ScopeOf(data *collector.Dataset) report.Scope {
	return report.Scope{
		Clock:       data.Clock,
		Days:        data.Days,
		TipsLen1:    data.TipsLen1,
		TipsLen3:    data.TipsLen3,
		Collected:   data.Collected,
		Duplicates:  data.Duplicates,
		Len3Bundles: uint64(len(data.Len3)),
	}
}

// Canonicalize returns a shallow copy of the dataset with its retained
// records in canonical (Slot, Seq) order — the order any watermark-sealed
// stream folds in. A dataset collected over a faulty feed may hold
// records in arrival order instead; batch results over the canonicalized
// copy are the reference a streamed run must match bit-identically.
func Canonicalize(data *collector.Dataset) *collector.Dataset {
	out := *data
	out.Len3 = canonicalOrder(data.Len3)
	out.Long = canonicalOrder(data.Long)
	return &out
}

func canonicalOrder(recs []jito.BundleRecord) []jito.BundleRecord {
	out := append([]jito.BundleRecord(nil), recs...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Slot != out[j].Slot {
			return out[i].Slot < out[j].Slot
		}
		if out[i].Seq != out[j].Seq {
			return out[i].Seq < out[j].Seq
		}
		return lessID(out[i].ID, out[j].ID)
	})
	return out
}

// Replay offers every retained record of the dataset to the engine in
// canonical order, with whatever details the dataset holds (incomplete
// detail sets are withheld, exactly as the batch fold skips them), and
// imports the dataset's scope. The caller still runs Finish.
func Replay(e *Engine, data *collector.Dataset) {
	recs := data.Len3
	if e.cfg.Extended && len(data.Long) > 0 {
		recs = append(append([]jito.BundleRecord(nil), data.Len3...), data.Long...)
	}
	for _, rec := range canonicalOrder(recs) {
		e.Offer(Event{Rec: rec, Details: detailsOf(data, &rec)})
	}
	e.SetScope(ScopeOf(data))
}

func detailsOf(data *collector.Dataset, rec *jito.BundleRecord) []jito.TxDetail {
	dets, ok := data.AppendDetails(make([]jito.TxDetail, 0, len(rec.TxIDs)), rec)
	if !ok {
		return nil
	}
	return dets
}

// Feeder incrementally replays a dataset that is still growing — the
// collector's poll loop appends to Len3/Long and fetches details between
// polls; each Feed call offers the records that have become complete
// since the last one. Records whose details never complete are flushed
// (offered without details) by Finish via FlushPending.
type Feeder struct {
	eng  *Engine
	data *collector.Dataset

	next3, nextL int   // high-water marks into data.Len3 / data.Long
	pending3     []int // indices offered-deferred awaiting details
	pendingL     []int
}

// NewFeeder builds a feeder over the engine and the growing dataset.
func NewFeeder(eng *Engine, data *collector.Dataset) *Feeder {
	return &Feeder{eng: eng, data: data}
}

// Feed offers every newly-appended record whose details are complete
// (length-3 always requires details before offering, so the detection
// fold sees them; lengths outside the detector's reach offer
// immediately). Call after each poll + detail fetch.
func (f *Feeder) Feed() {
	f.next3, f.pending3 = f.feedRange(f.data.Len3, f.next3, f.pending3)
	if f.eng.cfg.Extended {
		f.nextL, f.pendingL = f.feedRange(f.data.Long, f.nextL, f.pendingL)
	} else {
		f.nextL = len(f.data.Long)
	}
}

func (f *Feeder) feedRange(recs []jito.BundleRecord, next int, pending []int) (int, []int) {
	keep := pending[:0]
	for _, i := range pending {
		rec := &recs[i]
		if dets := detailsOf(f.data, rec); dets != nil {
			f.eng.Offer(Event{Rec: *rec, Details: dets})
		} else {
			keep = append(keep, i)
		}
	}
	pending = keep
	for ; next < len(recs); next++ {
		rec := &recs[next]
		if dets := detailsOf(f.data, rec); dets != nil {
			f.eng.Offer(Event{Rec: *rec, Details: dets})
		} else {
			pending = append(pending, next)
		}
	}
	return next, pending
}

// FlushPending offers every record still awaiting details, without them —
// mirroring the batch fold, which scores detail-less records as
// undetectable rather than dropping them. Call once, before Finish.
func (f *Feeder) FlushPending() {
	f.Feed()
	for _, i := range f.pending3 {
		f.eng.Offer(Event{Rec: f.data.Len3[i]})
	}
	f.pending3 = f.pending3[:0]
	for _, i := range f.pendingL {
		f.eng.Offer(Event{Rec: f.data.Long[i]})
	}
	f.pendingL = f.pendingL[:0]
}

package stream

import (
	"jitomev/internal/core"
	"jitomev/internal/jito"
	"jitomev/internal/obs"
	"jitomev/internal/solana"
	"jitomev/internal/token"
)

// Cross-block detection: the batch methodology only sees sandwiches whose
// three legs share one bundle. An attacker that front-runs in one bundle
// and back-runs in another — possibly blocks later, within a window of
// consecutive slots the same leader builds — is invisible to it. This
// stage tracks open positions in a bounded candidate cache keyed by
// (pool, signer):
//
//   - every clean trade opens (or refreshes) a candidate — a potential
//     front-leg — and marks same-direction trades by other signers as
//     that candidate's victim;
//   - an opposite-direction trade by the same signer on the same pool
//     closes the position; if a victim traded in between, the close came
//     from a different bundle, the span fits the leader-contiguity
//     window, and the legs net a profit (the batch C4 test), a
//     CrossVerdict is emitted.
//
// The cache is hard-bounded: capacity evictions (LRU by front freshness)
// and window evictions (candidates whose window expired) are both
// counted, so the byte bound is provable from the counters plus the
// high-water gauge. All mutation happens on the fold goroutine in
// canonical slot/record order, so verdicts and counters are
// bit-identical at every Workers setting.

// CrossConfig bounds the cross-block stage.
type CrossConfig struct {
	// WindowSlots is the leader-contiguity window K: a back-leg landing
	// more than K slots after its front-leg cannot complete a sandwich.
	// 0 disables the stage.
	WindowSlots int

	// MaxBytes bounds cache memory (accounted at candBytes per entry,
	// a deliberately conservative per-candidate footprint). ≤ 0 selects
	// 1 MiB.
	MaxBytes int

	// SOLMint for gain quantification; zero selects wrapped SOL.
	SOLMint solana.Pubkey
}

// CrossVerdict is one cross-block sandwich: front- and back-legs from
// different bundles, an interleaved victim, bounded slot span, positive
// net for the attacker.
type CrossVerdict struct {
	Attacker solana.Pubkey
	Victim   solana.Pubkey
	Pair     core.MintPair

	FrontSlot, BackSlot solana.Slot
	FrontID, BackID     jito.BundleID
	FrontTip, BackTip   uint64

	// HasSOL gates the gain figure, like the in-block verdicts.
	HasSOL               bool
	AttackerGainLamports float64
}

// SpanSlots is the front→back distance in slots.
func (v *CrossVerdict) SpanSlots() int { return int(v.BackSlot - v.FrontSlot) }

// candBytes is the per-candidate accounting unit: the candidate struct
// (~312 B), its cache map entry, and its pair-index slot, rounded up so
// len(cache)*candBytes over-counts true footprint.
const candBytes = 512

// candKey identifies an open position: one signer on one pool.
type candKey struct {
	pair   core.MintPair
	signer solana.Pubkey
}

// candidate is an open front-leg awaiting its back-leg. LRU links order
// candidates by front freshness (head = newest), which is also frontSlot
// order — eviction and window expiry both pop the tail.
type candidate struct {
	key       candKey
	front     core.Trade
	frontSlot solana.Slot
	frontID   jito.BundleID
	frontTip  uint64

	victim     solana.Pubkey
	victimSeen bool

	prev, next *candidate // LRU links
	pairNext   *candidate // per-pair index chain (newest first)
}

type crossTracker struct {
	cfg        CrossConfig
	solMint    solana.Pubkey
	maxEntries int

	cache  map[candKey]*candidate
	byPair map[core.MintPair]*candidate // head of each pair's chain
	head   *candidate // newest front
	tail   *candidate // stalest front

	verdicts  []CrossVerdict
	highWater int        // max len(cache) observed
	free      *candidate // freelist of removed candidates (linked via next)

	cCand, cVerd             *obs.Counter
	cEvictWindow, cEvictCap  *obs.Counter
	gBytes                   *obs.Gauge
}

func newCrossTracker(cfg CrossConfig, reg *obs.Registry) *crossTracker {
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = 1 << 20
	}
	if cfg.SOLMint == (solana.Pubkey{}) {
		cfg.SOLMint = token.SOL.Address
	}
	maxEntries := cfg.MaxBytes / candBytes
	if maxEntries < 1 {
		maxEntries = 1
	}
	reg.Help("stream_cross_candidates_total", "Cross-block front-leg candidates opened.")
	reg.Help("stream_cross_verdicts_total", "Cross-block sandwich verdicts emitted.")
	reg.Help("stream_cross_evictions_total", "Cross-block candidates evicted, by reason.")
	reg.Help("stream_cross_cache_bytes", "Cross-block candidate cache footprint (accounted bytes).")
	return &crossTracker{
		cfg:          cfg,
		solMint:      cfg.SOLMint,
		maxEntries:   maxEntries,
		cache:        make(map[candKey]*candidate),
		byPair:       make(map[core.MintPair]*candidate),
		cCand:        reg.Counter("stream_cross_candidates_total"),
		cVerd:        reg.Counter("stream_cross_verdicts_total"),
		cEvictWindow: reg.Counter("stream_cross_evictions_total", "reason", "window"),
		cEvictCap:    reg.Counter("stream_cross_evictions_total", "reason", "capacity"),
		gBytes:       reg.Gauge("stream_cross_cache_bytes"),
	}
}

// processSlot feeds every clean trade of a sealed slot through the
// tracker in canonical order, then expires candidates whose window
// closed. Fold goroutine only.
func (c *crossTracker) processSlot(job *slotJob) {
	for i := range job.events {
		ev := &job.events[i]
		if len(ev.Details) != ev.Rec.NumTxs() {
			continue
		}
		for t := range ev.Details {
			tr, ok := core.ExtractTrade(&ev.Details[t])
			if !ok {
				continue
			}
			c.observe(job.slot, ev.Rec.ID, ev.Rec.TipLamps, tr)
		}
	}
	c.expire(job.slot)
}

// observe advances the tracker by one trade.
func (c *crossTracker) observe(slot solana.Slot, id jito.BundleID, tip uint64, tr core.Trade) {
	key := candKey{pair: tr.Pair(), signer: tr.Signer}
	if cand, ok := c.cache[key]; ok {
		if cand.front.Opposes(tr) {
			// Back-leg: the position closes either way; a verdict needs a
			// victim in between, a distinct bundle, an in-window span, and
			// attacker profit.
			if cand.victimSeen && id != cand.frontID &&
				int(slot-cand.frontSlot) <= c.cfg.WindowSlots {
				c.emit(cand, slot, id, tip, tr)
			}
			c.remove(cand)
			// The back trade is itself a fresh position in the opposite
			// direction; fall through to open it.
		} else {
			// Re-front: the newest outlay is the live position; victim
			// marking restarts behind it.
			cand.front = tr
			cand.frontSlot, cand.frontID, cand.frontTip = slot, id, tip
			cand.victim, cand.victimSeen = solana.Pubkey{}, false
			c.moveFront(cand)
			c.markVictims(key, tr)
			return
		}
	}
	c.markVictims(key, tr)
	c.insert(key, tr, slot, id, tip)
}

// markVictims records tr's signer as the victim of every other open
// candidate on the pool whose front runs the same direction — the C3
// shape (the front-run raised the rate the victim pays) stretched across
// bundles. Marking every match keeps the pass order-free.
func (c *crossTracker) markVictims(key candKey, tr core.Trade) {
	for cand := c.byPair[key.pair]; cand != nil; cand = cand.pairNext {
		if cand.key.signer != key.signer && !cand.victimSeen && cand.front.SameDirection(tr) {
			cand.victim = tr.Signer
			cand.victimSeen = true
		}
	}
}

// emit appends one verdict if the legs pass the batch detector's C4
// profit test.
func (c *crossTracker) emit(cand *candidate, slot solana.Slot, id jito.BundleID, tip uint64, back core.Trade) {
	front := cand.front
	netSold := int64(back.BoughtAmount) - int64(front.SoldAmount)
	netBought := int64(front.BoughtAmount) - int64(back.SoldAmount)
	gainNoPayment := netSold >= 0 && netBought >= 0 && (netSold > 0 || netBought > 0)
	if !gainNoPayment && netSold <= 0 {
		return
	}
	v := CrossVerdict{
		Attacker:  cand.key.signer,
		Victim:    cand.victim,
		Pair:      cand.key.pair,
		FrontSlot: cand.frontSlot,
		BackSlot:  slot,
		FrontID:   cand.frontID,
		BackID:    id,
		FrontTip:  cand.frontTip,
		BackTip:   tip,
	}
	switch c.solMint {
	case front.Sold:
		v.HasSOL = true
		v.AttackerGainLamports = float64(netSold)
	case front.Bought:
		v.HasSOL = true
		v.AttackerGainLamports = float64(netBought)
	}
	c.verdicts = append(c.verdicts, v)
	c.cVerd.Inc()
}

// insert opens a candidate, evicting the stalest front at capacity.
func (c *crossTracker) insert(key candKey, tr core.Trade, slot solana.Slot, id jito.BundleID, tip uint64) {
	if len(c.cache) >= c.maxEntries {
		c.cEvictCap.Inc()
		c.remove(c.tail)
	}
	cand := c.free
	if cand != nil {
		c.free = cand.next
		*cand = candidate{}
	} else {
		cand = new(candidate)
	}
	cand.key, cand.front = key, tr
	cand.frontSlot, cand.frontID, cand.frontTip = slot, id, tip
	c.cache[key] = cand
	cand.pairNext = c.byPair[key.pair]
	c.byPair[key.pair] = cand
	c.pushFront(cand)
	c.cCand.Inc()
	if n := len(c.cache); n > c.highWater {
		c.highWater = n
	}
	c.gBytes.Set(int64(len(c.cache) * candBytes))
}

// expire drops candidates whose back-leg can no longer land in window:
// once slot s is processed, any later trade lands in a slot > s, so a
// front older than s-K+1 is dead.
func (c *crossTracker) expire(sealed solana.Slot) {
	w := solana.Slot(c.cfg.WindowSlots)
	if sealed < w {
		return
	}
	evicted := false
	for c.tail != nil && c.tail.frontSlot < sealed-w {
		c.cEvictWindow.Inc()
		c.remove(c.tail)
		evicted = true
	}
	if evicted {
		c.gBytes.Set(int64(len(c.cache) * candBytes))
	}
}

// Bytes is the cache's accounted footprint right now.
func (c *crossTracker) bytes() int { return len(c.cache) * candBytes }

// remove unlinks a candidate from the cache, the pair index and the LRU
// list.
func (c *crossTracker) remove(cand *candidate) {
	delete(c.cache, cand.key)
	if head := c.byPair[cand.key.pair]; head == cand {
		if cand.pairNext == nil {
			delete(c.byPair, cand.key.pair)
		} else {
			c.byPair[cand.key.pair] = cand.pairNext
		}
	} else {
		for x := head; x != nil; x = x.pairNext {
			if x.pairNext == cand {
				x.pairNext = cand.pairNext
				break
			}
		}
	}
	cand.pairNext = nil
	c.unlink(cand)
	cand.next, c.free = c.free, cand
}

func (c *crossTracker) pushFront(cand *candidate) {
	cand.prev, cand.next = nil, c.head
	if c.head != nil {
		c.head.prev = cand
	}
	c.head = cand
	if c.tail == nil {
		c.tail = cand
	}
}

func (c *crossTracker) moveFront(cand *candidate) {
	if c.head == cand {
		return
	}
	c.unlink(cand)
	c.pushFront(cand)
}

func (c *crossTracker) unlink(cand *candidate) {
	if cand.prev != nil {
		cand.prev.next = cand.next
	} else if c.head == cand {
		c.head = cand.next
	}
	if cand.next != nil {
		cand.next.prev = cand.prev
	} else if c.tail == cand {
		c.tail = cand.prev
	}
	cand.prev, cand.next = nil, nil
}

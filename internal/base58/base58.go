// Package base58 implements Bitcoin-alphabet base58 encoding as used by
// Solana for public keys, transaction signatures and block hashes.
//
// The implementation is self-contained (stdlib only) and optimized for the
// fixed-width inputs that dominate this codebase: 32-byte public keys and
// 64-byte signatures.
package base58

import (
	"errors"
	"fmt"
)

// Alphabet is the Bitcoin base58 alphabet, which Solana uses verbatim.
const Alphabet = "123456789ABCDEFGHJKLMNPQRSTUVWXYZabcdefghijkmnopqrstuvwxyz"

var decodeMap [256]int8

func init() {
	for i := range decodeMap {
		decodeMap[i] = -1
	}
	for i := 0; i < len(Alphabet); i++ {
		decodeMap[Alphabet[i]] = int8(i)
	}
}

// Encode returns the base58 encoding of b.
//
// Leading zero bytes are encoded as leading '1' characters, matching the
// Bitcoin/Solana convention.
func Encode(b []byte) string {
	// Count leading zeros.
	zeros := 0
	for zeros < len(b) && b[zeros] == 0 {
		zeros++
	}

	// Base conversion: interpret b as a big-endian integer and repeatedly
	// divide by 58. size is an upper bound on output length:
	// log(256)/log(58) ≈ 1.365.
	size := (len(b)-zeros)*138/100 + 1
	buf := make([]byte, size)
	high := size - 1
	for _, c := range b[zeros:] {
		carry := int(c)
		i := size - 1
		for ; i > high || carry != 0; i-- {
			carry += 256 * int(buf[i])
			buf[i] = byte(carry % 58)
			carry /= 58
		}
		high = i
	}

	// Skip leading zero digits in buf.
	start := 0
	for start < size && buf[start] == 0 {
		start++
	}

	out := make([]byte, zeros+size-start)
	for i := 0; i < zeros; i++ {
		out[i] = '1'
	}
	for i, v := range buf[start:] {
		out[zeros+i] = Alphabet[v]
	}
	return string(out)
}

// Decode parses a base58 string and returns the decoded bytes.
func Decode(s string) ([]byte, error) {
	if s == "" {
		return []byte{}, nil
	}

	zeros := 0
	for zeros < len(s) && s[zeros] == '1' {
		zeros++
	}

	size := (len(s)-zeros)*733/1000 + 1 // log(58)/log(256) ≈ 0.7327
	buf := make([]byte, size)
	high := size - 1
	for i := zeros; i < len(s); i++ {
		d := decodeMap[s[i]]
		if d < 0 {
			return nil, fmt.Errorf("base58: invalid character %q at index %d", s[i], i)
		}
		carry := int(d)
		j := size - 1
		for ; j > high || carry != 0; j-- {
			if j < 0 {
				return nil, errors.New("base58: value overflow")
			}
			carry += 58 * int(buf[j])
			buf[j] = byte(carry % 256)
			carry /= 256
		}
		high = j
	}

	start := 0
	for start < size && buf[start] == 0 {
		start++
	}

	out := make([]byte, zeros+size-start)
	copy(out[zeros:], buf[start:])
	return out, nil
}

// DecodeInto decodes s into dst and errors unless the decoded length is
// exactly len(dst). It is the checked path used for fixed-width keys and
// signatures.
func DecodeInto(dst []byte, s string) error {
	b, err := Decode(s)
	if err != nil {
		return err
	}
	if len(b) != len(dst) {
		return fmt.Errorf("base58: decoded %d bytes, want %d", len(b), len(dst))
	}
	copy(dst, b)
	return nil
}

package base58

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

var vectors = []struct {
	raw []byte
	enc string
}{
	{[]byte{}, ""},
	{[]byte{0}, "1"},
	{[]byte{0, 0, 0}, "111"},
	{[]byte{57}, "z"},
	{[]byte{58}, "21"},
	{[]byte{255}, "5Q"},
	{[]byte("hello world"), "StV1DL6CwTryKyV"},
	{[]byte{0, 0, 40, 127, 180, 205}, "11233QC4"},
	{[]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, "4HUtbHhN2TkpR"},
}

func TestEncodeVectors(t *testing.T) {
	for _, v := range vectors {
		if got := Encode(v.raw); got != v.enc {
			t.Errorf("Encode(%v) = %q, want %q", v.raw, got, v.enc)
		}
	}
}

func TestDecodeVectors(t *testing.T) {
	for _, v := range vectors {
		got, err := Decode(v.enc)
		if err != nil {
			t.Fatalf("Decode(%q): %v", v.enc, err)
		}
		if !bytes.Equal(got, v.raw) {
			t.Errorf("Decode(%q) = %v, want %v", v.enc, got, v.raw)
		}
	}
}

func TestDecodeInvalidCharacter(t *testing.T) {
	for _, s := range []string{"0", "O", "I", "l", "abc!", "Zz0"} {
		if _, err := Decode(s); err == nil {
			t.Errorf("Decode(%q) succeeded, want error", s)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(b []byte) bool {
		dec, err := Decode(Encode(b))
		return err == nil && bytes.Equal(dec, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripFixedWidths(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{32, 64} {
		for i := 0; i < 200; i++ {
			b := make([]byte, n)
			rng.Read(b)
			dst := make([]byte, n)
			if err := DecodeInto(dst, Encode(b)); err != nil {
				t.Fatalf("DecodeInto width %d: %v", n, err)
			}
			if !bytes.Equal(dst, b) {
				t.Fatalf("width %d round trip mismatch", n)
			}
		}
	}
}

func TestDecodeIntoWrongLength(t *testing.T) {
	var dst [32]byte
	if err := DecodeInto(dst[:], Encode([]byte{1, 2, 3})); err == nil {
		t.Fatal("DecodeInto accepted short input")
	}
}

func TestLeadingZerosPreserved(t *testing.T) {
	f := func(b []byte) bool {
		withZeros := append([]byte{0, 0, 0, 0}, b...)
		dec, err := Decode(Encode(withZeros))
		return err == nil && bytes.Equal(dec, withZeros)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncode32(b *testing.B) {
	var key [32]byte
	rand.New(rand.NewSource(7)).Read(key[:])
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Encode(key[:])
	}
}

func BenchmarkDecode32(b *testing.B) {
	var key [32]byte
	rand.New(rand.NewSource(7)).Read(key[:])
	s := Encode(key[:])
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(s); err != nil {
			b.Fatal(err)
		}
	}
}

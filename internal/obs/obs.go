// Package obs is the pipeline's unified metrics and tracing layer: a
// dependency-free registry of counters, gauges and fixed-bucket
// histograms shared by every stage of the collection→analysis pipeline,
// exposed three ways — Prometheus text format and JSON over HTTP (the
// live ops endpoints), a human-readable end-of-run summary table, and a
// Snapshot that tests assert against.
//
// The design is governed by the repo's two standing constraints:
//
//   - Hot paths must stay hot. Handles are resolved once (a mutex-guarded
//     map lookup at registration) and increments are a single atomic add
//     with zero allocations. For single-owner loops — a detection shard,
//     the sequential collector loop — Counter.Local returns an
//     unsynchronized adder that costs a plain register increment and is
//     folded into the shared counter once, at Flush.
//
//   - Determinism survives instrumentation. Every count-valued metric is
//     a pure function of (seed, days, scale): bit-identical at any worker
//     count. Metrics that cannot promise this — wall-clock durations,
//     queue depths, per-worker busy time, shard counts that depend on the
//     worker count — are marked Volatile and excluded from
//     DeterministicSnapshot, which the worker-count determinism tests
//     compare.
//
// Every handle and the registry itself are nil-safe: methods on a nil
// *Registry return nil handles, and operations on nil handles are no-ops.
// Instrumented code therefore never branches on "is observability on";
// passing a nil registry compiles the layer down to predicted-not-taken
// nil checks (see BenchmarkObsCounterNop).
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind discriminates the metric types in a Snapshot.
type Kind uint8

const (
	KindCounter Kind = iota
	KindGauge
	KindFloatGauge
	KindHistogram
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge, KindFloatGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Counter is a monotonically increasing uint64. The zero value is ready
// to use; a nil *Counter is a no-op.
type Counter struct{ v atomic.Uint64 }

// Inc adds one and returns the new value (0 on a nil counter).
func (c *Counter) Inc() uint64 { return c.Add(1) }

// Add adds n and returns the new value (0 on a nil counter).
func (c *Counter) Add(n uint64) uint64 {
	if c == nil {
		return 0
	}
	return c.v.Add(n)
}

// Value reads the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Local returns an unsynchronized adder bound to c, for loops owned by a
// single goroutine (a detection shard, the sequential collector loop).
// Increments cost a plain register add; Flush folds the local tally into
// the shared counter with one atomic. A Local bound to a nil counter
// still counts locally and flushes nowhere.
func (c *Counter) Local() Local { return Local{c: c} }

// Local is Counter's single-owner fast path. Not safe for concurrent
// use; each goroutine takes its own via Counter.Local.
type Local struct {
	n uint64
	c *Counter
}

// Inc adds one to the local tally.
func (l *Local) Inc() { l.n++ }

// Add adds n to the local tally.
func (l *Local) Add(n uint64) { l.n += n }

// N reads the unflushed local tally.
func (l *Local) N() uint64 { return l.n }

// Flush folds the local tally into the bound counter and zeroes it.
func (l *Local) Flush() {
	if l.n == 0 {
		return
	}
	l.c.Add(l.n)
	l.n = 0
}

// Gauge is an int64 that can move both ways. A nil *Gauge is a no-op.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add moves the gauge by d.
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.v.Add(d)
	}
}

// SetMax raises the gauge to v if v is greater — a high-water mark.
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value reads the gauge.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// FloatGauge is a float64 gauge (ratios, seconds). A nil *FloatGauge is
// a no-op.
type FloatGauge struct{ bits atomic.Uint64 }

// Set stores v.
func (f *FloatGauge) Set(v float64) {
	if f != nil {
		f.bits.Store(math.Float64bits(v))
	}
}

// Add moves the gauge by d (CAS loop).
func (f *FloatGauge) Add(d float64) {
	if f == nil {
		return
	}
	for {
		old := f.bits.Load()
		if f.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value reads the gauge.
func (f *FloatGauge) Value() float64 {
	if f == nil {
		return 0
	}
	return math.Float64frombits(f.bits.Load())
}

// Histogram counts observations into fixed buckets (Prometheus `le`
// semantics: bucket i counts v ≤ bounds[i]; the last bucket is +Inf).
// Bounds are fixed at registration, so concurrent observation is a
// single atomic add with no allocation. A nil *Histogram is a no-op.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Uint64 // len(bounds)+1; non-cumulative
	count   atomic.Uint64
	sum     FloatGauge

	// exemplars holds the latest traced observation per bucket
	// (OpenMetrics exemplars): the link from a /metrics tail bucket to
	// the /tracez entry that landed in it. Same length as buckets.
	exemplars []atomic.Pointer[exemplar]
}

// exemplar is one traced observation pinned to a histogram bucket.
type exemplar struct {
	traceID string
	value   float64
}

// DurationBuckets are the default bounds for wall-time histograms, in
// seconds: 1µs to 10s by decades, with a 100µs–1s midpoint refinement.
var DurationBuckets = []float64{1e-6, 1e-5, 1e-4, 1e-3, 5e-3, 1e-2, 5e-2, 1e-1, 5e-1, 1, 10}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Linear scan: bucket counts are small and fixed; the common case
	// (small v in a duration histogram) exits early.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// ObserveExemplar records one sample and, when tid identifies a sampled
// trace, pins it as the bucket's exemplar — linking the /metrics bucket
// the observation landed in to its /tracez entry. A zero tid degrades
// to a plain Observe.
func (h *Histogram) ObserveExemplar(v float64, tid TraceID) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	if !tid.IsZero() {
		h.exemplars[i].Store(&exemplar{traceID: tid.String(), value: v})
	}
}

// Count reads the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum reads the sum of observed values.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// Quantile estimates the q-quantile (q in [0,1]) from the bucket counts,
// interpolating linearly inside the bucket that crosses the rank — the
// standard Prometheus histogram_quantile estimate, so precision is
// bounded by the bucket bounds, not the sample count. Returns 0 with no
// observations; ranks landing in the +Inf bucket report the last finite
// bound (the estimate cannot exceed what the buckets resolve).
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i, bound := range h.bounds {
		n := float64(h.buckets[i].Load())
		if cum+n >= rank {
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			if n == 0 {
				return bound
			}
			return lo + (bound-lo)*(rank-cum)/n
		}
		cum += n
	}
	if len(h.bounds) == 0 {
		return 0
	}
	return h.bounds[len(h.bounds)-1]
}

// metric is one registered instrument plus its identity.
type metric struct {
	family string // metric name without labels
	labels string // rendered `{k="v",...}`, or ""
	name   string // family + labels
	kind   Kind
	help   string

	c *Counter
	g *Gauge
	f *FloatGauge
	h *Histogram
}

// Registry holds every registered metric. Registration is mutex-guarded;
// the returned handles are lock-free. A nil *Registry returns nil
// handles everywhere, so instrumentation reads the same with
// observability on or off.
type Registry struct {
	mu       sync.Mutex
	metrics  map[string]*metric
	volatile map[string]bool // families excluded from DeterministicSnapshot

	// createdAt anchors /statusz's uptime_seconds.
	createdAt time.Time

	// tracer, when attached, is the process's distributed tracer:
	// NewOpsMux mounts its /tracez and every layer holding the registry
	// reaches it through TracerAttached without extra plumbing.
	tracer *Tracer
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		metrics:   make(map[string]*metric),
		volatile:  make(map[string]bool),
		createdAt: time.Now(),
	}
}

// AttachTracer binds t as the registry's tracer (NewTracer calls this;
// attaching nil detaches). Nil-safe.
func (r *Registry) AttachTracer(t *Tracer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.tracer = t
	r.mu.Unlock()
}

// TracerAttached returns the attached tracer, or nil — and a nil
// *Tracer never samples, so call sites chain
// reg.TracerAttached().StartTrace(...) unconditionally.
func (r *Registry) TracerAttached() *Tracer {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.tracer
}

// Uptime reports how long ago the registry was created (zero for nil or
// pre-createdAt registries).
func (r *Registry) Uptime() time.Duration {
	if r == nil || r.createdAt.IsZero() {
		return 0
	}
	return time.Since(r.createdAt)
}

// renderLabels turns variadic k,v pairs into a canonical `{k="v",...}`
// suffix. Pairs keep their given order; values are escaped per the
// Prometheus text format. Odd-length label lists are a programming
// error.
func renderLabels(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("obs: odd label list %q", labels))
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(labels[i])
		b.WriteString(`="`)
		v := labels[i+1]
		v = strings.ReplaceAll(v, `\`, `\\`)
		v = strings.ReplaceAll(v, "\n", `\n`)
		v = strings.ReplaceAll(v, `"`, `\"`)
		b.WriteString(v)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// register resolves (family, labels) to its metric, creating it on first
// use. Re-registration with a different kind panics — two packages
// claiming one name as different types is a bug worth failing loudly on.
func (r *Registry) register(kind Kind, family string, labels []string) *metric {
	ls := renderLabels(labels)
	name := family + ls
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("obs: %s re-registered as %s (was %s)", name, kind, m.kind))
		}
		return m
	}
	m := &metric{family: family, labels: ls, name: name, kind: kind}
	switch kind {
	case KindCounter:
		m.c = &Counter{}
	case KindGauge:
		m.g = &Gauge{}
	case KindFloatGauge:
		m.f = &FloatGauge{}
	}
	r.metrics[name] = m
	return m
}

// Counter returns the counter for (family, labels), registering it on
// first use. labels are k,v pairs: Counter("faults_total", "class", "throttle").
func (r *Registry) Counter(family string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	return r.register(KindCounter, family, labels).c
}

// Gauge returns the int64 gauge for (family, labels).
func (r *Registry) Gauge(family string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	return r.register(KindGauge, family, labels).g
}

// FloatGauge returns the float64 gauge for (family, labels).
func (r *Registry) FloatGauge(family string, labels ...string) *FloatGauge {
	if r == nil {
		return nil
	}
	return r.register(KindFloatGauge, family, labels).f
}

// Histogram returns the histogram for (family, labels), registering it
// with the given bucket bounds on first use. Bounds must be sorted
// ascending; later registrations reuse the first bounds.
func (r *Registry) Histogram(family string, bounds []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	ls := renderLabels(labels)
	name := family + ls
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if m.kind != KindHistogram {
			panic(fmt.Sprintf("obs: %s re-registered as histogram (was %s)", name, m.kind))
		}
		return m.h
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: %s: bucket bounds not ascending: %v", name, bounds))
		}
	}
	h := &Histogram{bounds: append([]float64(nil), bounds...)}
	h.buckets = make([]atomic.Uint64, len(bounds)+1)
	h.exemplars = make([]atomic.Pointer[exemplar], len(bounds)+1)
	r.metrics[name] = &metric{family: family, labels: ls, name: name, kind: KindHistogram, h: h}
	return h
}

// Help attaches a help string to a family (rendered as # HELP).
func (r *Registry) Help(family, text string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, m := range r.metrics {
		if m.family == family {
			m.help = text
		}
	}
}

// Volatile marks a family as excluded from DeterministicSnapshot: its
// values depend on wall time, scheduling or the worker count rather than
// on (seed, days, scale). Applies to metrics of the family registered
// before or after the call.
func (r *Registry) Volatile(families ...string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, f := range families {
		r.volatile[f] = true
	}
}

// IsVolatile reports whether family carries the Volatile marker.
func (r *Registry) IsVolatile(family string) bool {
	if r == nil {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.volatile[family]
}

// Sample is one metric's state in a Snapshot.
type Sample struct {
	Name     string // family + labels
	Family   string
	Kind     Kind
	Volatile bool

	// Value is the counter count, gauge value, or histogram sum.
	Value float64
	// Histogram-only: observation count, bucket bounds, and
	// non-cumulative per-bucket counts (len(Bounds)+1, last is +Inf).
	Count   uint64
	Bounds  []float64
	Buckets []uint64
	// Exemplars holds the latest traced observation per bucket, where
	// one exists (same indexing as Buckets; nil entries mean none).
	Exemplars []Exemplar
}

// Exemplar is one traced histogram observation in a Snapshot.
type Exemplar struct {
	Bucket  int     // bucket index (Buckets/Bounds indexing)
	TraceID string  // 32-hex trace id
	Value   float64 // the observed value
}

// Snapshot captures every registered metric, sorted by name. The result
// is detached: mutating it does not touch the registry.
func (r *Registry) Snapshot() []Sample {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	ms := make([]*metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		ms = append(ms, m)
	}
	vol := make(map[string]bool, len(r.volatile))
	for f := range r.volatile {
		vol[f] = true
	}
	r.mu.Unlock()

	out := make([]Sample, 0, len(ms))
	for _, m := range ms {
		s := Sample{Name: m.name, Family: m.family, Kind: m.kind, Volatile: vol[m.family]}
		switch m.kind {
		case KindCounter:
			s.Value = float64(m.c.Value())
		case KindGauge:
			s.Value = float64(m.g.Value())
		case KindFloatGauge:
			s.Value = m.f.Value()
		case KindHistogram:
			s.Value = m.h.Sum()
			s.Count = m.h.Count()
			s.Bounds = append([]float64(nil), m.h.bounds...)
			s.Buckets = make([]uint64, len(m.h.buckets))
			for i := range m.h.buckets {
				s.Buckets[i] = m.h.buckets[i].Load()
			}
			for i := range m.h.exemplars {
				if e := m.h.exemplars[i].Load(); e != nil {
					s.Exemplars = append(s.Exemplars, Exemplar{Bucket: i, TraceID: e.traceID, Value: e.value})
				}
			}
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// DeterministicSnapshot is Snapshot without the Volatile families — the
// view that must be bit-identical at any worker count for the same
// (seed, days, scale), which the determinism tests enforce.
func (r *Registry) DeterministicSnapshot() []Sample {
	all := r.Snapshot()
	out := all[:0]
	for _, s := range all {
		if !s.Volatile {
			out = append(out, s)
		}
	}
	return out
}

// Value reads one metric by full name (family plus rendered labels):
// counter count, gauge value, or histogram sum. Absent names read 0.
func (r *Registry) Value(family string, labels ...string) float64 {
	if r == nil {
		return 0
	}
	name := family + renderLabels(labels)
	r.mu.Lock()
	m, ok := r.metrics[name]
	r.mu.Unlock()
	if !ok {
		return 0
	}
	switch m.kind {
	case KindCounter:
		return float64(m.c.Value())
	case KindGauge:
		return float64(m.g.Value())
	case KindFloatGauge:
		return m.f.Value()
	case KindHistogram:
		return m.h.Sum()
	}
	return 0
}

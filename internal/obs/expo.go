package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// fmtValue renders a sample value the way the Prometheus text format
// expects: integral values without a decimal point, everything else in
// shortest-round-trip form.
func fmtValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4): families sorted by name, a # TYPE
// line per family, histograms expanded into cumulative _bucket/_sum/
// _count series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	samples := r.Snapshot()
	// Group by family, keeping the global name sort within each.
	byFamily := make(map[string][]Sample)
	families := make([]string, 0)
	for _, s := range samples {
		if _, ok := byFamily[s.Family]; !ok {
			families = append(families, s.Family)
		}
		byFamily[s.Family] = append(byFamily[s.Family], s)
	}
	sort.Strings(families)

	bw := bufio.NewWriter(w)
	help := r.helps()
	for _, fam := range families {
		group := byFamily[fam]
		if h := help[fam]; h != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", fam, strings.ReplaceAll(h, "\n", " "))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", fam, group[0].Kind)
		for _, s := range group {
			switch s.Kind {
			case KindHistogram:
				exemplars := make(map[int]Exemplar, len(s.Exemplars))
				for _, e := range s.Exemplars {
					exemplars[e.Bucket] = e
				}
				cum := uint64(0)
				for i, n := range s.Buckets {
					cum += n
					le := "+Inf"
					if i < len(s.Bounds) {
						le = fmtValue(s.Bounds[i])
					}
					fmt.Fprintf(bw, "%s_bucket%s %d", fam, withLabel(s.Name, fam, "le", le), cum)
					// OpenMetrics exemplar: ` # {trace_id="..."} value`,
					// the link from this bucket to its /tracez entry.
					if e, ok := exemplars[i]; ok {
						fmt.Fprintf(bw, ` # {trace_id="%s"} %s`, e.TraceID, fmtValue(e.Value))
					}
					fmt.Fprintln(bw)
				}
				fmt.Fprintf(bw, "%s_sum%s %s\n", fam, labelsOf(s.Name, fam), fmtValue(s.Value))
				fmt.Fprintf(bw, "%s_count%s %d\n", fam, labelsOf(s.Name, fam), s.Count)
			default:
				fmt.Fprintf(bw, "%s %s\n", s.Name, fmtValue(s.Value))
			}
		}
	}
	return bw.Flush()
}

// helps snapshots the family → help map.
func (r *Registry) helps() map[string]string {
	out := make(map[string]string)
	if r == nil {
		return out
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, m := range r.metrics {
		if m.help != "" {
			out[m.family] = m.help
		}
	}
	return out
}

// labelsOf extracts the rendered label block from a full metric name.
func labelsOf(name, family string) string { return name[len(family):] }

// withLabel appends one more label pair to a (possibly empty) rendered
// label block — used to add the `le` bound to histogram bucket series.
func withLabel(name, family, k, v string) string {
	ls := labelsOf(name, family)
	pair := fmt.Sprintf(`%s="%s"`, k, v)
	if ls == "" {
		return "{" + pair + "}"
	}
	return ls[:len(ls)-1] + "," + pair + "}"
}

// statusHistogram is the JSON shape of one histogram in /statusz.
type statusHistogram struct {
	Count   uint64            `json:"count"`
	Sum     float64           `json:"sum"`
	Buckets map[string]uint64 `json:"buckets,omitempty"`
}

// buildInfo is the process identity block in /statusz, resolved once.
type buildInfo struct {
	GoVersion string `json:"go_version"`
	Revision  string `json:"vcs_revision,omitempty"`
	Modified  bool   `json:"vcs_modified,omitempty"`
}

var (
	buildOnce sync.Once
	buildInf  buildInfo
)

// readBuildInfo resolves the Go version and vcs revision baked into the
// binary by the toolchain.
func readBuildInfo() buildInfo {
	buildOnce.Do(func() {
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			buildInf = buildInfo{GoVersion: runtime.Version()}
			return
		}
		buildInf = buildInfo{GoVersion: bi.GoVersion}
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				buildInf.Revision = s.Value
			case "vcs.modified":
				buildInf.Modified = s.Value == "true"
			}
		}
	})
	return buildInf
}

// WriteStatusJSON renders the registry as the /statusz JSON document: a
// flat metrics object (full name → value, histograms as
// {count, sum, buckets}), process identity (uptime, Go version, vcs
// revision), with volatile families listed so consumers know which
// values are excluded from determinism comparisons.
func (r *Registry) WriteStatusJSON(w io.Writer) error {
	type doc struct {
		UptimeSeconds float64        `json:"uptime_seconds"`
		Build         buildInfo      `json:"build"`
		Metrics       map[string]any `json:"metrics"`
		Volatile      []string       `json:"volatile_families,omitempty"`
	}
	d := doc{
		UptimeSeconds: r.Uptime().Seconds(),
		Build:         readBuildInfo(),
		Metrics:       make(map[string]any),
	}
	seenVol := make(map[string]bool)
	for _, s := range r.Snapshot() {
		if s.Volatile && !seenVol[s.Family] {
			seenVol[s.Family] = true
			d.Volatile = append(d.Volatile, s.Family)
		}
		if s.Kind == KindHistogram {
			h := statusHistogram{Count: s.Count, Sum: s.Value}
			if s.Count > 0 {
				h.Buckets = make(map[string]uint64, len(s.Buckets))
				cum := uint64(0)
				for i, n := range s.Buckets {
					cum += n
					le := "+Inf"
					if i < len(s.Bounds) {
						le = fmtValue(s.Bounds[i])
					}
					h.Buckets[le] = cum
				}
			}
			d.Metrics[s.Name] = h
			continue
		}
		d.Metrics[s.Name] = s.Value
	}
	sort.Strings(d.Volatile)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// MetricsHandler serves WritePrometheus — the /metrics endpoint.
func (r *Registry) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// StatusHandler serves WriteStatusJSON — the /statusz endpoint.
func (r *Registry) StatusHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = r.WriteStatusJSON(w)
	})
}

// Endpoint is one extra route for NewOpsMux — how higher layers (the
// quality sentinel's /qualityz and /healthz, for instance) join the ops
// mux without obs importing them.
type Endpoint struct {
	Path    string
	Handler http.Handler
}

// NewOpsMux builds the operational endpoint mux every binary mounts:
// /metrics (Prometheus text), /statusz (JSON), /tracez when a tracer is
// attached to the registry, any extra endpoints the caller supplies,
// and — only when withPprof is set — the net/http/pprof handlers under
// /debug/pprof/. The runtime telemetry gauges (goroutines, heap, GC
// pauses) are registered here and refreshed on every /metrics and
// /statusz scrape, so each exposition carries scrape-fresh saturation
// readings.
func NewOpsMux(r *Registry, withPprof bool, extra ...Endpoint) *http.ServeMux {
	r.SampleRuntime()
	withRuntime := func(h http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
			r.SampleRuntime()
			h.ServeHTTP(w, req)
		})
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", withRuntime(r.MetricsHandler()))
	mux.Handle("/statusz", withRuntime(r.StatusHandler()))
	if t := r.TracerAttached(); t != nil {
		mux.Handle("/tracez", t.Handler())
	}
	for _, e := range extra {
		mux.Handle(e.Path, e.Handler)
	}
	if withPprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// ValidateExposition checks a Prometheus text-format stream line by
// line: comments must be well-formed # HELP/# TYPE lines, every sample
// line must be `name[{labels}] value` with a legal metric name, balanced
// quoted labels, and a parseable float value. The first malformed line
// fails the whole stream — this is the gate behind `make metrics-smoke`
// and the exposition golden test.
func ValidateExposition(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := validateComment(line); err != nil {
				return fmt.Errorf("obs: exposition line %d: %w", lineNo, err)
			}
			continue
		}
		if err := validateSample(line); err != nil {
			return fmt.Errorf("obs: exposition line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("obs: exposition: %w", err)
	}
	return nil
}

// validateComment accepts `# HELP name text`, `# TYPE name kind`, and
// free-form `# ...` comments.
func validateComment(line string) error {
	fields := strings.Fields(line)
	if len(fields) < 2 || fields[0] != "#" {
		return nil // bare comment
	}
	switch fields[1] {
	case "HELP":
		if len(fields) < 3 || !validMetricName(fields[2]) {
			return fmt.Errorf("malformed HELP comment %q", line)
		}
	case "TYPE":
		if len(fields) != 4 || !validMetricName(fields[2]) {
			return fmt.Errorf("malformed TYPE comment %q", line)
		}
		switch fields[3] {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q", fields[3])
		}
	}
	return nil
}

// validateSample accepts `name value` and `name{k="v",...} value`, each
// optionally followed by an OpenMetrics exemplar (` # {labels} value`).
func validateSample(line string) error {
	rest := line
	// Split off a trailing exemplar before field parsing: the exemplar's
	// own label block and value are validated separately.
	if i := strings.Index(rest, " # "); i >= 0 {
		if err := validateExemplar(rest[i+3:]); err != nil {
			return fmt.Errorf("%v in %q", err, line)
		}
		rest = rest[:i]
	}
	// Metric name.
	i := 0
	for i < len(rest) && isNameChar(rest[i], i == 0) {
		i++
	}
	if i == 0 {
		return fmt.Errorf("no metric name in %q", line)
	}
	name, rest := rest[:i], rest[i:]
	_ = name
	// Optional label block.
	if strings.HasPrefix(rest, "{") {
		end, err := scanLabels(rest)
		if err != nil {
			return fmt.Errorf("%v in %q", err, line)
		}
		rest = rest[end:]
	}
	// Value (and optional timestamp).
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return fmt.Errorf("expected value after metric in %q", line)
	}
	if _, err := strconv.ParseFloat(fields[0], 64); err != nil {
		return fmt.Errorf("bad value %q in %q", fields[0], line)
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return fmt.Errorf("bad timestamp %q in %q", fields[1], line)
		}
	}
	return nil
}

// validateExemplar accepts the OpenMetrics exemplar tail `{labels} value`
// (the part after the ` # ` separator).
func validateExemplar(s string) error {
	if !strings.HasPrefix(s, "{") {
		return fmt.Errorf("exemplar missing label block")
	}
	end, err := scanLabels(s)
	if err != nil {
		return fmt.Errorf("exemplar: %v", err)
	}
	fields := strings.Fields(s[end:])
	if len(fields) < 1 || len(fields) > 2 {
		return fmt.Errorf("expected exemplar value")
	}
	if _, err := strconv.ParseFloat(fields[0], 64); err != nil {
		return fmt.Errorf("bad exemplar value %q", fields[0])
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseFloat(fields[1], 64); err != nil {
			return fmt.Errorf("bad exemplar timestamp %q", fields[1])
		}
	}
	return nil
}

// scanLabels walks a `{k="v",...}` block, returning the index just past
// the closing brace.
func scanLabels(s string) (int, error) {
	i := 1
	for {
		if i >= len(s) {
			return 0, fmt.Errorf("unterminated label block")
		}
		if s[i] == '}' {
			return i + 1, nil
		}
		// Label name.
		start := i
		for i < len(s) && isNameChar(s[i], i == start) {
			i++
		}
		if i == start || i >= len(s) || s[i] != '=' {
			return 0, fmt.Errorf("malformed label name")
		}
		i++ // '='
		if i >= len(s) || s[i] != '"' {
			return 0, fmt.Errorf("label value not quoted")
		}
		i++ // opening quote
		for i < len(s) && s[i] != '"' {
			if s[i] == '\\' {
				i++
			}
			i++
		}
		if i >= len(s) {
			return 0, fmt.Errorf("unterminated label value")
		}
		i++ // closing quote
		if i < len(s) && s[i] == ',' {
			i++
		}
	}
}

// validMetricName reports whether s is a legal metric name.
func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if !isNameChar(s[i], i == 0) {
			return false
		}
	}
	return true
}

// isNameChar reports whether c may appear in a metric or label name
// (leading digits are reserved).
func isNameChar(c byte, first bool) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		return true
	case c >= '0' && c <= '9':
		return !first
	}
	return false
}

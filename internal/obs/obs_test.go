package obs

import (
	"reflect"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total")
	if got := c.Inc(); got != 1 {
		t.Fatalf("Inc = %d, want 1", got)
	}
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("Value = %d, want 5", c.Value())
	}
	// Re-registration returns the same instrument.
	if r.Counter("requests_total") != c {
		t.Error("re-registration returned a different counter")
	}
	if r.Value("requests_total") != 5 {
		t.Errorf("registry Value = %v, want 5", r.Value("requests_total"))
	}
}

func TestLabeledCounters(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("faults_total", "class", "throttle")
	b := r.Counter("faults_total", "class", "server")
	if a == b {
		t.Fatal("different label sets resolved to the same counter")
	}
	a.Add(2)
	b.Inc()
	if r.Value("faults_total", "class", "throttle") != 2 ||
		r.Value("faults_total", "class", "server") != 1 {
		t.Errorf("labeled values wrong: %v / %v",
			r.Value("faults_total", "class", "throttle"),
			r.Value("faults_total", "class", "server"))
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("queue_depth")
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Fatalf("gauge = %d, want 5", g.Value())
	}
	g.SetMax(3)
	if g.Value() != 5 {
		t.Error("SetMax lowered a high-water mark")
	}
	g.SetMax(11)
	if g.Value() != 11 {
		t.Errorf("SetMax = %d, want 11", g.Value())
	}
}

func TestFloatGauge(t *testing.T) {
	r := NewRegistry()
	f := r.FloatGauge("overlap_ratio")
	f.Set(0.5)
	f.Add(0.25)
	if f.Value() != 0.75 {
		t.Fatalf("float gauge = %v, want 0.75", f.Value())
	}
}

func TestLocalAdder(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("scanned_total")
	l := c.Local()
	for i := 0; i < 100; i++ {
		l.Inc()
	}
	l.Add(11)
	if c.Value() != 0 {
		t.Fatal("local tally leaked before Flush")
	}
	if l.N() != 111 {
		t.Fatalf("local N = %d, want 111", l.N())
	}
	l.Flush()
	if c.Value() != 111 {
		t.Fatalf("after flush counter = %d, want 111", c.Value())
	}
	l.Flush() // idempotent on empty tally
	if c.Value() != 111 {
		t.Error("empty flush moved the counter")
	}
}

// TestNilSafety pins the no-op contract: every operation on a nil
// registry or nil handle must be safe, so instrumented code never
// branches on whether observability is enabled.
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Inc()
	c.Add(3)
	if c.Value() != 0 {
		t.Error("nil counter holds a value")
	}
	l := c.Local()
	l.Inc()
	l.Flush()
	r.Gauge("g").Set(5)
	r.FloatGauge("f").Add(1)
	r.Histogram("h", DurationBuckets).Observe(0.5)
	r.Volatile("x")
	r.Help("x", "help")
	if r.Snapshot() != nil || r.DeterministicSnapshot() != nil {
		t.Error("nil registry produced samples")
	}
	sp := r.StartSpan("stage")
	sp.AddItems(3)
	sp.AddErrors(1)
	sp.End()
	if r.Value("pipeline_stage_items_total", "stage", "stage") != 0 {
		t.Error("nil span recorded")
	}
}

func TestSnapshotAndVolatile(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total").Add(3)
	r.Gauge("b_depth").Set(4)
	r.FloatGauge("c_ratio").Set(0.5)
	r.Histogram("d_seconds", []float64{1, 2}).Observe(1.5)
	r.Volatile("d_seconds", "b_depth")

	snap := r.Snapshot()
	names := make([]string, len(snap))
	for i, s := range snap {
		names[i] = s.Name
	}
	want := []string{"a_total", "b_depth", "c_ratio", "d_seconds"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("snapshot names = %v, want %v", names, want)
	}

	det := r.DeterministicSnapshot()
	if len(det) != 2 || det[0].Name != "a_total" || det[1].Name != "c_ratio" {
		t.Fatalf("deterministic snapshot kept wrong samples: %+v", det)
	}
	if !r.IsVolatile("d_seconds") || r.IsVolatile("a_total") {
		t.Error("volatile marker misapplied")
	}

	// Snapshot is detached: mutating it must not touch the registry.
	for i := range snap {
		if snap[i].Kind == KindHistogram {
			snap[i].Buckets[0] = 999
		}
	}
	again := r.Snapshot()
	for _, s := range again {
		if s.Kind == KindHistogram && s.Buckets[0] == 999 {
			t.Error("snapshot aliases registry storage")
		}
	}
}

func TestSpanRecordsStageMetrics(t *testing.T) {
	r := NewRegistry()
	sp := r.StartSpan("analyze")
	sp.AddItems(10)
	sp.AddItems(5)
	sp.AddErrors(2)
	sp.End()
	if got := r.Value("pipeline_stage_items_total", "stage", "analyze"); got != 15 {
		t.Errorf("items = %v, want 15", got)
	}
	if got := r.Value("pipeline_stage_errors_total", "stage", "analyze"); got != 2 {
		t.Errorf("errors = %v, want 2", got)
	}
	if got := r.Value("pipeline_stage_runs_total", "stage", "analyze"); got != 1 {
		t.Errorf("runs = %v, want 1", got)
	}
	if !r.IsVolatile("pipeline_stage_seconds") {
		t.Error("stage duration histogram not marked volatile")
	}
	h := r.Histogram("pipeline_stage_seconds", DurationBuckets, "stage", "analyze")
	if h.Count() != 1 {
		t.Errorf("duration observations = %d, want 1", h.Count())
	}
}

// TestConcurrentIncrements is the obs race test (run under -race in the
// make verify matrix): hammer one counter, one gauge, one float gauge
// and one histogram from many goroutines and check totals.
func TestConcurrentIncrements(t *testing.T) {
	r := NewRegistry()
	const goroutines, perG = 16, 10_000
	c := r.Counter("hammer_total")
	g := r.Gauge("hammer_hw")
	f := r.FloatGauge("hammer_sum")
	h := r.Histogram("hammer_seconds", []float64{0.25, 0.5, 0.75})

	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			l := c.Local()
			for i := 0; i < perG; i++ {
				if i%2 == 0 {
					c.Inc()
				} else {
					l.Inc()
				}
				g.SetMax(int64(w*perG + i))
				f.Add(1)
				h.Observe(float64(i%4) * 0.25)
			}
			l.Flush()
		}(w)
	}
	wg.Wait()

	if c.Value() != goroutines*perG {
		t.Errorf("counter = %d, want %d", c.Value(), goroutines*perG)
	}
	if g.Value() != goroutines*perG-1 {
		t.Errorf("high water = %d, want %d", g.Value(), goroutines*perG-1)
	}
	if f.Value() != goroutines*perG {
		t.Errorf("float gauge = %v, want %d", f.Value(), goroutines*perG)
	}
	if h.Count() != goroutines*perG {
		t.Errorf("histogram count = %d, want %d", h.Count(), goroutines*perG)
	}
	// Concurrent registration of the same and different names must be
	// safe too.
	wg = sync.WaitGroup{}
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r.Counter("reg_race_total").Inc()
			r.Counter("reg_race_total", "worker", string(rune('a'+w))).Inc()
		}(w)
	}
	wg.Wait()
	if got := r.Value("reg_race_total"); got != goroutines {
		t.Errorf("registration race lost increments: %v", got)
	}
}

// TestHistogramBucketBoundaries pins the `le` edge semantics: a value
// exactly on a bound lands in that bound's bucket, just above it in the
// next, and anything beyond the last bound in +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("edges", []float64{1, 2, 4})

	cases := []struct {
		v      float64
		bucket int
	}{
		{0, 0}, {0.999, 0}, {1, 0}, // v <= 1
		{1.0000001, 1}, {2, 1}, // 1 < v <= 2
		{3, 2}, {4, 2}, // 2 < v <= 4
		{4.5, 3}, {1e9, 3}, // +Inf
	}
	for _, tc := range cases {
		before := snapshotBuckets(r, "edges")
		h.Observe(tc.v)
		after := snapshotBuckets(r, "edges")
		for i := range after {
			want := before[i]
			if i == tc.bucket {
				want++
			}
			if after[i] != want {
				t.Errorf("Observe(%v): bucket %d = %d, want %d", tc.v, i, after[i], want)
			}
		}
	}
	if h.Count() != uint64(len(cases)) {
		t.Errorf("count = %d, want %d", h.Count(), len(cases))
	}
	var sum float64
	for _, tc := range cases {
		sum += tc.v
	}
	if h.Sum() != sum {
		t.Errorf("sum = %v, want %v", h.Sum(), sum)
	}

	// Negative and zero-width configurations must fail loudly.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("non-ascending bounds did not panic")
			}
		}()
		r.Histogram("bad", []float64{2, 2})
	}()
}

func snapshotBuckets(r *Registry, family string) []uint64 {
	for _, s := range r.Snapshot() {
		if s.Family == family {
			return s.Buckets
		}
	}
	return nil
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total")
	defer func() {
		if recover() == nil {
			t.Error("kind mismatch did not panic")
		}
	}()
	r.Gauge("x_total")
}

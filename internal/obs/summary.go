package obs

import (
	"fmt"
	"io"
	"strings"
)

// WriteSummary renders the registry as an aligned, human-readable
// end-of-run table: one row per non-zero metric, histograms folded into
// `count / sum`. This is the terminal face of the layer — the chaos and
// fault summaries the binaries used to hand-build now fall out of the
// registry for free.
func (r *Registry) WriteSummary(w io.Writer) {
	samples := r.Snapshot()
	type row struct{ name, value string }
	rows := make([]row, 0, len(samples))
	width := 0
	for _, s := range samples {
		var v string
		switch s.Kind {
		case KindHistogram:
			if s.Count == 0 {
				continue
			}
			v = fmt.Sprintf("n=%d sum=%s", s.Count, fmtValue(s.Value))
		default:
			if s.Value == 0 {
				continue
			}
			v = fmtValue(s.Value)
		}
		rows = append(rows, row{s.Name, v})
		if len(s.Name) > width {
			width = len(s.Name)
		}
	}
	if len(rows) == 0 {
		fmt.Fprintln(w, "(no metrics recorded)")
		return
	}
	for _, rw := range rows {
		fmt.Fprintf(w, "%s%s  %s\n", rw.name, strings.Repeat(" ", width-len(rw.name)), rw.value)
	}
}

package obs

import "time"

// Span metric families. Durations are inherently wall-clock and so
// volatile; item and error counts are part of the deterministic surface.
const (
	spanSecondsFamily = "pipeline_stage_seconds"
	spanItemsFamily   = "pipeline_stage_items_total"
	spanErrorsFamily  = "pipeline_stage_errors_total"
	spanRunsFamily    = "pipeline_stage_runs_total"
)

// Span is a lightweight pipeline trace: one timed pass of a named stage
// (generate, fetch_details, analyze, snapshot_save, …). Item and error
// tallies accumulate unsynchronized — a span belongs to the goroutine
// that started it — and land on the registry once, at End, together with
// the stage's wall time. A nil span (from a nil registry) is a no-op.
type Span struct {
	start time.Time
	items uint64
	errs  uint64

	itemsC *Counter
	errsC  *Counter
	runsC  *Counter
	dur    *Histogram
}

// StartSpan opens a span for one pass of the named stage. The caller
// must End it on the same goroutine.
func (r *Registry) StartSpan(stage string) *Span {
	if r == nil {
		return nil
	}
	r.Volatile(spanSecondsFamily)
	return &Span{
		start:  time.Now(),
		itemsC: r.Counter(spanItemsFamily, "stage", stage),
		errsC:  r.Counter(spanErrorsFamily, "stage", stage),
		runsC:  r.Counter(spanRunsFamily, "stage", stage),
		dur:    r.Histogram(spanSecondsFamily, DurationBuckets, "stage", stage),
	}
}

// AddItems credits n processed items to the stage.
func (s *Span) AddItems(n int) {
	if s != nil && n > 0 {
		s.items += uint64(n)
	}
}

// AddErrors credits n stage errors.
func (s *Span) AddErrors(n int) {
	if s != nil && n > 0 {
		s.errs += uint64(n)
	}
}

// End closes the span: wall time goes to the (volatile) stage duration
// histogram, item/error tallies to their deterministic counters.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.runsC.Inc()
	s.itemsC.Add(s.items)
	s.errsC.Add(s.errs)
	s.dur.Observe(time.Since(s.start).Seconds())
}

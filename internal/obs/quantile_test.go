package obs

import (
	"bytes"
	"strings"
	"testing"
)

// TestQuantileEdgeCases pins Histogram.Quantile's behavior at the
// boundaries the estimate is built on: no data, a single sample, all
// mass in the +Inf overflow bucket, degenerate bound lists, and
// out-of-range q values.
func TestQuantileEdgeCases(t *testing.T) {
	r := NewRegistry()

	// Empty histogram: every quantile reads 0.
	empty := r.Histogram("empty_seconds", []float64{0.1, 1})
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := empty.Quantile(q); got != 0 {
			t.Errorf("empty.Quantile(%v) = %v, want 0", q, got)
		}
	}

	// Single sample: every quantile resolves to the sample's bucket.
	single := r.Histogram("single_seconds", []float64{0.1, 1, 10})
	single.Observe(0.5)
	for _, q := range []float64{0.01, 0.5, 0.99} {
		got := single.Quantile(q)
		if got <= 0.1 || got > 1 {
			t.Errorf("single.Quantile(%v) = %v, want in (0.1, 1]", q, got)
		}
	}

	// All observations past the last finite bound: the estimate is capped
	// at that bound — the buckets cannot resolve further.
	over := r.Histogram("over_seconds", []float64{0.1, 1})
	for i := 0; i < 10; i++ {
		over.Observe(100)
	}
	if got := over.Quantile(0.5); got != 1 {
		t.Errorf("overflow-only Quantile(0.5) = %v, want last bound 1", got)
	}
	if got := over.Quantile(0.99); got != 1 {
		t.Errorf("overflow-only Quantile(0.99) = %v, want last bound 1", got)
	}

	// q outside [0,1] clamps rather than extrapolating.
	clamp := r.Histogram("clamp_seconds", []float64{1, 2})
	clamp.Observe(0.5)
	clamp.Observe(1.5)
	if lo, hi := clamp.Quantile(-3), clamp.Quantile(7); lo > hi || hi > 2 {
		t.Errorf("clamped quantiles: q=-3 -> %v, q=7 -> %v", lo, hi)
	}

	// Nil histogram is a no-op reader.
	var nilH *Histogram
	if got := nilH.Quantile(0.5); got != 0 {
		t.Errorf("nil.Quantile = %v", got)
	}
}

// TestQuantileInterpolation sanity-checks the in-bucket linear
// interpolation against a uniform fill.
func TestQuantileInterpolation(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("uniform_seconds", []float64{10, 20, 30})
	// 10 samples ≤10, 10 in (10,20]: the median rank sits at the bucket
	// boundary and the p75 interpolates inside the second bucket.
	for i := 0; i < 10; i++ {
		h.Observe(5)
		h.Observe(15)
	}
	if got := h.Quantile(0.5); got != 10 {
		t.Errorf("Quantile(0.5) = %v, want 10", got)
	}
	got := h.Quantile(0.75)
	if got <= 10 || got > 20 {
		t.Errorf("Quantile(0.75) = %v, want in (10, 20]", got)
	}
}

// TestWriteSummaryZeroSampleHistogram checks the summary skips
// histograms with no observations (and still renders live ones beside
// them).
func TestWriteSummaryZeroSampleHistogram(t *testing.T) {
	r := NewRegistry()
	r.Histogram("idle_seconds", DurationBuckets) // never observed
	busy := r.Histogram("busy_seconds", DurationBuckets)
	busy.Observe(0.25)
	var buf bytes.Buffer
	r.WriteSummary(&buf)
	out := buf.String()
	if strings.Contains(out, "idle_seconds") {
		t.Errorf("summary rendered zero-sample histogram:\n%s", out)
	}
	if !strings.Contains(out, "busy_seconds") || !strings.Contains(out, "n=1") {
		t.Errorf("summary missing live histogram:\n%s", out)
	}

	// A registry holding only zero-sample histograms renders the empty
	// placeholder, not a blank table.
	r2 := NewRegistry()
	r2.Histogram("quiet_seconds", DurationBuckets)
	var buf2 bytes.Buffer
	r2.WriteSummary(&buf2)
	if !strings.Contains(buf2.String(), "no metrics") {
		t.Errorf("zero-sample-only summary = %q", buf2.String())
	}
}

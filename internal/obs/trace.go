// Distributed tracing: the per-request layer over the aggregate
// metrics. A Tracer mints 128-bit trace IDs from the run's seeded RNG
// (so chaos runs reproduce the same IDs), head-samples at StartTrace,
// and tail-samples at finalize into a bounded ring-buffer flight
// recorder served as /tracez. Propagation is W3C traceparent on the
// wire (collector.HTTP and the fleet lease client inject, explorerd
// middleware extracts) and SpanCtx in process.
//
// The same two constraints that govern the metrics half apply here:
//
//   - Hot paths stay hot. An unsampled StartTrace is one atomic add plus
//     one hash — no allocation, no time.Now — and returns a nil *Trace
//     whose every method is a no-op, so instrumented code never branches
//     on "is tracing on" (see BenchmarkTraceUnsampled).
//
//   - Determinism survives instrumentation. Trace IDs are a pure
//     function of (seed, start order); collection is sequential, so the
//     ID sequence is bit-identical across reruns and worker counts.
//     Everything wall-clock — durations, the tail-keep "slow" verdict,
//     recorder occupancy — lives in trace_* families, all Volatile.
package obs

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID is a 128-bit trace identifier (W3C trace-id). The zero value
// is invalid, per the traceparent spec.
type TraceID [16]byte

// String renders the 32-hex-digit wire form.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// IsZero reports whether t is the invalid all-zero ID.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// SpanID is a 64-bit span identifier (W3C parent-id).
type SpanID [8]byte

// String renders the 16-hex-digit wire form.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// IsZero reports whether s is the invalid all-zero ID.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// SpanCtx is the propagation context of one open span: enough to mint
// children, record retroactive spans, and write a traceparent header.
// The zero SpanCtx is valid and unsampled — every method no-ops.
type SpanCtx struct {
	TraceID TraceID
	SpanID  SpanID

	tracer *Tracer
	rec    *traceRec
}

// Sampled reports whether the span belongs to a recorded trace.
func (c SpanCtx) Sampled() bool { return c.rec != nil }

// Traceparent renders the W3C header value
// (`00-<trace-id>-<span-id>-01`), or "" when unsampled — callers skip
// header injection entirely rather than propagate a context nobody
// records.
func (c SpanCtx) Traceparent() string {
	if c.rec == nil || c.TraceID.IsZero() {
		return ""
	}
	return "00-" + c.TraceID.String() + "-" + c.SpanID.String() + "-01"
}

// ParseTraceparent decodes a W3C traceparent header value. ok is false
// on any malformation (wrong shape, bad hex, all-zero IDs); sampled
// reflects the flags byte.
func ParseTraceparent(s string) (tid TraceID, sid SpanID, sampled, ok bool) {
	// version(2) - traceid(32) - spanid(16) - flags(2)
	if len(s) < 55 || s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return TraceID{}, SpanID{}, false, false
	}
	if s[0] == 'f' && s[1] == 'f' { // version 0xff is forbidden
		return TraceID{}, SpanID{}, false, false
	}
	if _, err := hex.Decode(tid[:], []byte(s[3:35])); err != nil {
		return TraceID{}, SpanID{}, false, false
	}
	if _, err := hex.Decode(sid[:], []byte(s[36:52])); err != nil {
		return TraceID{}, SpanID{}, false, false
	}
	var flags [1]byte
	if _, err := hex.Decode(flags[:], []byte(s[53:55])); err != nil {
		return TraceID{}, SpanID{}, false, false
	}
	if tid.IsZero() || sid.IsZero() {
		return TraceID{}, SpanID{}, false, false
	}
	return tid, sid, flags[0]&1 != 0, true
}

// StartChild opens a child span under this context — the carrier-based
// entry point for layers (the transport, the lease client) that hold a
// bound SpanCtx rather than a *Trace. Returns nil when unsampled.
func (c SpanCtx) StartChild(name string) *Trace {
	if c.rec == nil || c.tracer == nil {
		return nil
	}
	return c.tracer.startSpan(c.rec, c.SpanID, name)
}

// RecordSpan appends an already-measured span under this context — for
// stages (stream seal/fold) whose start was stamped before the span
// boundary was known. No-op when unsampled.
func (c SpanCtx) RecordSpan(name string, start, end time.Time, isErr bool) {
	if c.rec == nil || c.tracer == nil {
		return
	}
	c.rec.addSpan(c.tracer, SpanRecord{
		Name:          name,
		SpanID:        c.tracer.nextSpanID().String(),
		ParentSpanID:  c.SpanID.String(),
		StartUnixNano: start.UnixNano(),
		DurationNS:    end.Sub(start).Nanoseconds(),
		Error:         isErr,
	})
}

// SpanRecord is one finished span as it lands in the flight recorder
// (and in /tracez JSON).
type SpanRecord struct {
	Name          string   `json:"name"`
	SpanID        string   `json:"span_id"`
	ParentSpanID  string   `json:"parent_span_id,omitempty"`
	RemoteParent  bool     `json:"remote_parent,omitempty"`
	StartUnixNano int64    `json:"start_unix_nano"`
	DurationNS    int64    `json:"duration_ns"`
	Error         bool     `json:"error,omitempty"`
	Annotations   []string `json:"annotations,omitempty"`
}

// maxSpansPerTrace bounds one trace's span list; overflow is counted,
// not stored, so a runaway loop cannot balloon the recorder.
const maxSpansPerTrace = 256

// traceRec accumulates one in-flight trace: the open-span refcount
// drives finalization, so a locally-rooted trace finalizes when its
// root ends and a remotely-rooted one (created by Extract) when its
// server span ends — sequential requests of the same remote trace each
// finalize a fragment that the ring merges by TraceID.
type traceRec struct {
	mu      sync.Mutex
	traceID TraceID
	idx     uint64 // StartTrace ordinal; seeds the tail-keep hash
	root    string // root span name
	remote  bool   // rooted by an extracted (wire) parent
	start   time.Time
	open    int
	done    bool
	spans   []SpanRecord
	dropped int
	errored bool
	keep    string // forced-keep reason, "" until flagged
}

// addSpan appends one finished span, honoring the per-trace bound.
func (rec *traceRec) addSpan(t *Tracer, s SpanRecord) {
	rec.mu.Lock()
	if len(rec.spans) < maxSpansPerTrace {
		rec.spans = append(rec.spans, s)
		t.spans.Inc()
	} else {
		rec.dropped++
		t.spansDropped.Inc()
	}
	rec.mu.Unlock()
}

// Trace is one open span. A nil *Trace (unsampled) is fully inert:
// every method is a no-op, so call sites read identically with tracing
// on or off.
type Trace struct {
	tracer *Tracer
	rec    *traceRec
	id     SpanID
	parent SpanID
	remote bool // parent lives in another process
	name   string
	start  time.Time
	err    bool
	notes  []string
}

// Ctx returns the propagation context of this span (zero when nil).
func (tr *Trace) Ctx() SpanCtx {
	if tr == nil {
		return SpanCtx{}
	}
	return SpanCtx{TraceID: tr.rec.traceID, SpanID: tr.id, tracer: tr.tracer, rec: tr.rec}
}

// TraceID returns the owning trace's ID (zero when nil).
func (tr *Trace) TraceID() TraceID {
	if tr == nil {
		return TraceID{}
	}
	return tr.rec.traceID
}

// StartChild opens a child span.
func (tr *Trace) StartChild(name string) *Trace {
	if tr == nil {
		return nil
	}
	return tr.tracer.startSpan(tr.rec, tr.id, name)
}

// Annotate attaches a note to the span (retry counts, backoff waits,
// fault classes) — the "why was this slow" breadcrumbs in /tracez.
func (tr *Trace) Annotate(note string) {
	if tr == nil {
		return
	}
	tr.rec.mu.Lock()
	tr.notes = append(tr.notes, note)
	tr.rec.mu.Unlock()
}

// Annotatef is Annotate with formatting.
func (tr *Trace) Annotatef(format string, args ...any) {
	if tr == nil {
		return
	}
	tr.Annotate(fmt.Sprintf(format, args...))
}

// MarkError flags the span (and so the trace) as failed; error traces
// are always kept.
func (tr *Trace) MarkError() {
	if tr == nil {
		return
	}
	tr.err = true
	tr.rec.mu.Lock()
	tr.rec.errored = true
	tr.rec.mu.Unlock()
}

// FlagKeep forces the trace through tail sampling with the given reason
// (e.g. "fenced", "breaker_open", "fault") — the hooks that make chaos
// runs answerable from /tracez alone.
func (tr *Trace) FlagKeep(reason string) {
	if tr == nil {
		return
	}
	tr.rec.mu.Lock()
	if keepPriority(reason) > keepPriority(tr.rec.keep) {
		tr.rec.keep = reason
	}
	tr.rec.mu.Unlock()
}

// keepPriority orders keep reasons so stronger evidence wins: forced
// flags (fault, fenced, breaker_open, ...) beat errors beat the passive
// reasons. A remote fragment pre-keeps as "remote", so without this
// ordering a fault flagged on it could never surface; the same ordering
// resolves which reason a merged multi-fragment trace reports.
func keepPriority(reason string) int {
	switch reason {
	case "":
		return 0
	case "sampled":
		return 1
	case "slow":
		return 2
	case "warmup":
		return 3
	case "remote":
		return 4
	case "error":
		return 5
	default: // forced flags
		return 6
	}
}

// End closes the span; when it is the trace's last open span the trace
// finalizes through tail sampling.
func (tr *Trace) End() {
	if tr == nil {
		return
	}
	end := time.Now()
	tr.rec.addSpan(tr.tracer, SpanRecord{
		Name:          tr.name,
		SpanID:        tr.id.String(),
		ParentSpanID:  parentString(tr.parent),
		RemoteParent:  tr.remote,
		StartUnixNano: tr.start.UnixNano(),
		DurationNS:    end.Sub(tr.start).Nanoseconds(),
		Error:         tr.err,
		Annotations:   tr.notes,
	})
	tr.rec.mu.Lock()
	tr.rec.open--
	final := tr.rec.open == 0 && !tr.rec.done
	if final {
		tr.rec.done = true
	}
	tr.rec.mu.Unlock()
	if final {
		tr.tracer.finalize(tr.rec, end)
	}
}

// EndErr is MarkError-if-non-nil followed by End.
func (tr *Trace) EndErr(err error) {
	if tr == nil {
		return
	}
	if err != nil {
		tr.MarkError()
	}
	tr.End()
}

func parentString(p SpanID) string {
	if p.IsZero() {
		return ""
	}
	return p.String()
}

// TraceConfig shapes a Tracer.
type TraceConfig struct {
	// Service names this process in /tracez (e.g. "explorerd").
	Service string
	// Seed drives trace-ID minting and both sampling hashes; reusing a
	// chaos seed makes a chaos run's trace IDs reproducible.
	Seed uint64
	// SampleRate is the head-sampling probability in [0,1]; 0 selects 1
	// (trace everything, let the tail policy decide what to keep).
	// Negative disables tracing entirely (every StartTrace is unsampled).
	SampleRate float64
	// KeepRate is the probabilistic tail-keep applied to traces that are
	// neither errored, flagged, slow, nor warmup; 0 selects 0.1.
	KeepRate float64
	// Capacity bounds the flight recorder; 0 selects 256.
	Capacity int
}

// Trace-side splitmix64, duplicated from internal/faults (which imports
// obs, so obs cannot import it back): counter-hashed randomness keeps
// IDs and sampling decisions a pure function of (seed, ordinal).
func traceMix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func traceHash(seed, index, salt uint64) uint64 {
	return traceMix(traceMix(seed^salt) + index)
}

// traceUnit maps a hash to [0,1).
func traceUnit(h uint64) float64 { return float64(h>>11) / float64(1<<53) }

const (
	saltTraceHi = 0x74726163656869 // ID high half
	saltTraceLo = 0x74726163656c6f // ID low half
	saltSample  = 0x73616d706c65   // head-sampling decision
	saltKeep    = 0x6b656570       // tail probabilistic keep
	saltSpan    = 0x7370616e       // span IDs
)

// warmupKeep traces are kept unconditionally at startup so a short
// smoke run always has something to show on /tracez.
const warmupKeep = 8

// minSlowSamples gates the slow-tail keep until the root-duration
// histogram has enough mass for Quantile(0.99) to mean anything.
const minSlowSamples = 32

// Tracer mints, samples and records traces. Construct with NewTracer;
// a nil *Tracer never samples.
type Tracer struct {
	cfg TraceConfig

	traceCtr atomic.Uint64
	spanCtr  atomic.Uint64
	kept     atomic.Uint64 // total kept, drives the warmup window

	started      *Counter
	sampled      *Counter
	keptTotal    map[string]*Counter
	keptMu       sync.Mutex
	reg          *Registry
	droppedTotal *Counter
	spans        *Counter
	spansDropped *Counter
	occupancy    *Gauge
	rootDur      *Histogram

	// Flight recorder: a ring of kept traces, newest overwriting oldest,
	// with a TraceID index so fragments of one remote trace merge.
	rmu  sync.Mutex
	ring []*KeptTrace
	head int
	n    int
	byID map[TraceID]*KeptTrace
}

// NewTracer builds a tracer tallying onto reg and attaches it, so
// NewOpsMux serves /tracez and every layer holding the registry finds
// the tracer without new plumbing. All trace_* families are Volatile:
// IDs are deterministic but counts and durations are wall-clock.
func NewTracer(reg *Registry, cfg TraceConfig) *Tracer {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 256
	}
	if cfg.SampleRate == 0 {
		cfg.SampleRate = 1
	}
	if cfg.KeepRate == 0 {
		cfg.KeepRate = 0.1
	}
	t := &Tracer{
		cfg:       cfg,
		reg:       reg,
		keptTotal: make(map[string]*Counter),
		ring:      make([]*KeptTrace, cfg.Capacity),
		byID:      make(map[TraceID]*KeptTrace, cfg.Capacity),
	}
	reg.Help("trace_traces_started_total", "Traces started (sampled or not).")
	reg.Help("trace_traces_kept_total", "Traces kept by the tail sampler, by reason.")
	reg.Help("trace_recorder_occupancy", "Traces currently held by the flight recorder.")
	t.started = reg.Counter("trace_traces_started_total")
	t.sampled = reg.Counter("trace_traces_sampled_total")
	t.droppedTotal = reg.Counter("trace_traces_dropped_total")
	t.spans = reg.Counter("trace_spans_total")
	t.spansDropped = reg.Counter("trace_spans_dropped_total")
	t.occupancy = reg.Gauge("trace_recorder_occupancy")
	t.rootDur = reg.Histogram("trace_root_duration_seconds", DurationBuckets)
	reg.Volatile("trace_traces_started_total", "trace_traces_sampled_total",
		"trace_traces_kept_total", "trace_traces_dropped_total",
		"trace_spans_total", "trace_spans_dropped_total",
		"trace_recorder_occupancy", "trace_root_duration_seconds")
	reg.AttachTracer(t)
	return t
}

// Service names this tracer's process.
func (t *Tracer) Service() string {
	if t == nil {
		return ""
	}
	return t.cfg.Service
}

// nextSpanID mints a deterministic span ID.
func (t *Tracer) nextSpanID() SpanID {
	h := traceHash(t.cfg.Seed, t.spanCtr.Add(1), saltSpan)
	var id SpanID
	for i := 0; i < 8; i++ {
		id[i] = byte(h >> (56 - 8*i))
	}
	if id.IsZero() {
		id[7] = 1
	}
	return id
}

// StartTrace begins a new locally-rooted trace. The unsampled path — the
// common case at low sample rates — is one atomic add and one hash:
// no allocation, no clock read, nil return.
func (t *Tracer) StartTrace(name string) *Trace {
	if t == nil {
		return nil
	}
	idx := t.traceCtr.Add(1)
	t.started.Inc()
	if t.cfg.SampleRate < 1 && !(traceUnit(traceHash(t.cfg.Seed, idx, saltSample)) < t.cfg.SampleRate) {
		return nil
	}
	t.sampled.Inc()
	var tid TraceID
	hi, lo := traceHash(t.cfg.Seed, idx, saltTraceHi), traceHash(t.cfg.Seed, idx, saltTraceLo)
	for i := 0; i < 8; i++ {
		tid[i] = byte(hi >> (56 - 8*i))
		tid[8+i] = byte(lo >> (56 - 8*i))
	}
	if tid.IsZero() {
		tid[15] = 1
	}
	rec := &traceRec{traceID: tid, idx: idx, root: name, start: time.Now(), open: 1}
	return &Trace{tracer: t, rec: rec, id: t.nextSpanID(), name: name, start: rec.start}
}

// Extract begins a remotely-rooted trace from wire identifiers (an
// incoming traceparent): the new server span's parent lives in another
// process. The fragment finalizes when its spans close and is merged by
// TraceID into any fragments earlier requests of the same trace left in
// the recorder; remote fragments are always kept — the client already
// paid the sampling decision.
func (t *Tracer) Extract(name string, tid TraceID, parent SpanID) *Trace {
	if t == nil || tid.IsZero() {
		return nil
	}
	t.sampled.Inc()
	now := time.Now()
	rec := &traceRec{traceID: tid, root: name, remote: true, start: now, open: 1, keep: "remote"}
	return &Trace{tracer: t, rec: rec, id: t.nextSpanID(), parent: parent, remote: true, name: name, start: now}
}

// startSpan opens a child span on rec.
func (t *Tracer) startSpan(rec *traceRec, parent SpanID, name string) *Trace {
	rec.mu.Lock()
	rec.open++
	rec.mu.Unlock()
	return &Trace{tracer: t, rec: rec, id: t.nextSpanID(), parent: parent, name: name, start: time.Now()}
}

// finalize runs the tail-sampling policy on a completed trace. Keep
// order: forced flags (fault/fenced/breaker_open), errors, remote
// fragments, the warmup window, the slow tail (root duration at or past
// the recorder's own p99), then the probabilistic remainder.
func (t *Tracer) finalize(rec *traceRec, end time.Time) {
	dur := end.Sub(rec.start)
	reason := ""
	rec.mu.Lock()
	switch {
	case rec.keep != "":
		reason = rec.keep
	case rec.errored:
		reason = "error"
	}
	rec.mu.Unlock()
	if !rec.remote {
		// Remote fragments are partial — their duration says nothing
		// about the whole trace, so only local roots feed the slow-tail
		// baseline.
		t.rootDur.Observe(dur.Seconds())
		if reason == "" {
			switch {
			case t.kept.Load() < warmupKeep:
				reason = "warmup"
			case t.rootDur.Count() >= minSlowSamples && dur.Seconds() >= t.rootDur.Quantile(0.99):
				reason = "slow"
			case traceUnit(traceHash(t.cfg.Seed, rec.idx, saltKeep)) < t.cfg.KeepRate:
				reason = "sampled"
			}
		}
	}
	if reason == "" {
		t.droppedTotal.Inc()
		return
	}
	t.kept.Add(1)
	t.keepCounter(reason).Inc()
	t.record(rec, reason, end)
}

// keepCounter lazily resolves the per-reason kept counter.
func (t *Tracer) keepCounter(reason string) *Counter {
	t.keptMu.Lock()
	defer t.keptMu.Unlock()
	c, ok := t.keptTotal[reason]
	if !ok {
		c = t.reg.Counter("trace_traces_kept_total", "reason", reason)
		t.keptTotal[reason] = c
	}
	return c
}

// KeptTrace is one recorder entry as served by /tracez.
type KeptTrace struct {
	TraceID    string       `json:"trace_id"`
	Root       string       `json:"root"`
	Service    string       `json:"service"`
	Remote     bool         `json:"remote,omitempty"`
	KeepReason string       `json:"keep_reason"`
	StartNano  int64        `json:"start_unix_nano"`
	DurationNS int64        `json:"duration_ns"`
	Error      bool         `json:"error,omitempty"`
	Dropped    int          `json:"spans_dropped,omitempty"`
	Spans      []SpanRecord `json:"spans"`

	tid TraceID
	seq uint64 // insertion order, for newest-first listing
}

// record upserts a finalized trace into the ring. Fragments sharing a
// TraceID (sequential requests of one remote trace) merge into a single
// entry: spans append, the time window widens, errors stick.
func (t *Tracer) record(rec *traceRec, reason string, end time.Time) {
	rec.mu.Lock()
	spans := rec.spans
	dropped := rec.dropped
	errored := rec.errored
	rec.spans = nil
	rec.mu.Unlock()

	t.rmu.Lock()
	defer t.rmu.Unlock()
	if prev, ok := t.byID[rec.traceID]; ok {
		prev.Spans = append(prev.Spans, spans...)
		prev.Dropped += dropped
		prev.Error = prev.Error || errored
		if keepPriority(reason) > keepPriority(prev.KeepReason) {
			prev.KeepReason = reason
		}
		if rec.start.UnixNano() < prev.StartNano {
			prev.StartNano = rec.start.UnixNano()
		}
		if endNano := end.UnixNano(); endNano-prev.StartNano > prev.DurationNS {
			prev.DurationNS = endNano - prev.StartNano
		}
		return
	}
	kt := &KeptTrace{
		TraceID:    rec.traceID.String(),
		Root:       rec.root,
		Service:    t.cfg.Service,
		Remote:     rec.remote,
		KeepReason: reason,
		StartNano:  rec.start.UnixNano(),
		DurationNS: end.Sub(rec.start).Nanoseconds(),
		Error:      errored,
		Dropped:    dropped,
		Spans:      spans,
		tid:        rec.traceID,
		seq:        t.kept.Load(),
	}
	if old := t.ring[t.head]; old != nil {
		delete(t.byID, old.tid)
	} else {
		t.n++
	}
	t.ring[t.head] = kt
	t.byID[rec.traceID] = kt
	t.head = (t.head + 1) % len(t.ring)
	t.occupancy.Set(int64(t.n))
}

// Kept snapshots the recorder, newest first. filter, when non-empty,
// selects a single trace ID (hex).
func (t *Tracer) Kept(filter string) []KeptTrace {
	if t == nil {
		return nil
	}
	t.rmu.Lock()
	out := make([]KeptTrace, 0, t.n)
	for _, kt := range t.ring {
		if kt == nil || (filter != "" && kt.TraceID != filter) {
			continue
		}
		cp := *kt
		cp.Spans = append([]SpanRecord(nil), kt.Spans...)
		out = append(out, cp)
	}
	t.rmu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].seq > out[j].seq })
	return out
}

// Occupancy reports how many traces the recorder currently holds.
func (t *Tracer) Occupancy() int {
	if t == nil {
		return 0
	}
	t.rmu.Lock()
	defer t.rmu.Unlock()
	return t.n
}

// tracezDoc is the /tracez JSON document.
type tracezDoc struct {
	Service   string      `json:"service"`
	Capacity  int         `json:"capacity"`
	Occupancy int         `json:"occupancy"`
	Started   uint64      `json:"traces_started"`
	Sampled   uint64      `json:"traces_sampled"`
	Dropped   uint64      `json:"traces_dropped"`
	Traces    []KeptTrace `json:"traces"`
}

// Handler serves the flight recorder as /tracez: JSON by default,
// ?trace_id=<hex> drill-down, ?format=text for a human span tree.
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		kept := t.Kept(req.URL.Query().Get("trace_id"))
		if req.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			writeTraceText(w, kept)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		doc := tracezDoc{
			Service:   t.cfg.Service,
			Capacity:  t.cfg.Capacity,
			Occupancy: t.Occupancy(),
			Started:   t.started.Value(),
			Sampled:   t.sampled.Value(),
			Dropped:   t.droppedTotal.Value(),
			Traces:    kept,
		}
		if doc.Traces == nil {
			doc.Traces = []KeptTrace{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(doc)
	})
}

// writeTraceText renders kept traces as indented span trees.
func writeTraceText(w io.Writer, kept []KeptTrace) {
	for _, kt := range kept {
		fmt.Fprintf(w, "trace %s root=%q service=%s keep=%s dur=%.3fms err=%v\n",
			kt.TraceID, kt.Root, kt.Service, kt.KeepReason,
			float64(kt.DurationNS)/1e6, kt.Error)
		children := make(map[string][]SpanRecord)
		local := make(map[string]bool, len(kt.Spans))
		for _, s := range kt.Spans {
			local[s.SpanID] = true
		}
		var roots []SpanRecord
		for _, s := range kt.Spans {
			if s.ParentSpanID != "" && local[s.ParentSpanID] {
				children[s.ParentSpanID] = append(children[s.ParentSpanID], s)
			} else {
				roots = append(roots, s)
			}
		}
		var dump func(s SpanRecord, depth int)
		dump = func(s SpanRecord, depth int) {
			fmt.Fprintf(w, "%s%s span=%s dur=%.3fms", strings.Repeat("  ", depth+1), s.Name, s.SpanID, float64(s.DurationNS)/1e6)
			if s.Error {
				fmt.Fprint(w, " err")
			}
			if s.RemoteParent {
				fmt.Fprintf(w, " remote-parent=%s", s.ParentSpanID)
			}
			for _, a := range s.Annotations {
				fmt.Fprintf(w, " [%s]", a)
			}
			fmt.Fprintln(w)
			kids := children[s.SpanID]
			sort.Slice(kids, func(i, j int) bool { return kids[i].StartUnixNano < kids[j].StartUnixNano })
			for _, k := range kids {
				dump(k, depth+1)
			}
		}
		sort.Slice(roots, func(i, j int) bool { return roots[i].StartUnixNano < roots[j].StartUnixNano })
		for _, s := range roots {
			dump(s, 0)
		}
	}
}

// ctxKey carries the open *Trace through a request context.
type ctxKey struct{}

// ContextWithTrace returns ctx carrying tr (no-op on nil tr).
func ContextWithTrace(ctx context.Context, tr *Trace) context.Context {
	if tr == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, tr)
}

// TraceFromContext returns the open trace span carried by ctx, or nil.
func TraceFromContext(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	tr, _ := ctx.Value(ctxKey{}).(*Trace)
	return tr
}

// statusRecorder captures the response status for the server span.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (s *statusRecorder) WriteHeader(code int) {
	s.status = code
	s.ResponseWriter.WriteHeader(code)
}

// TraceMiddleware extracts an incoming traceparent and runs the handler
// under a server span: the span lands in this process's recorder
// (merged by TraceID with earlier fragments), a 5xx marks it errored,
// and the open span rides the request context so downstream layers —
// the chaos middleware above all — can annotate the trace that suffered
// them. Requests without a sampled traceparent pass straight through;
// the server never roots traces on its own.
func TraceMiddleware(t *Tracer, next http.Handler) http.Handler {
	if t == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		tid, parent, sampled, ok := ParseTraceparent(req.Header.Get("traceparent"))
		if !ok || !sampled {
			next.ServeHTTP(w, req)
			return
		}
		tr := t.Extract(req.Method+" "+req.URL.Path, tid, parent)
		rw := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(rw, req.WithContext(ContextWithTrace(req.Context(), tr)))
		if rw.status >= 500 {
			tr.MarkError()
			tr.Annotatef("status:%d", rw.status)
		}
		tr.End()
	})
}

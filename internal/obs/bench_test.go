package obs

import "testing"

// BenchmarkObsCounter measures the canonical hot-path increment: a Local
// adder owned by one goroutine (how detection shards and the sequential
// collector loop count), flushed once. This is the path the ≤2 ns/op,
// 0 allocs acceptance criterion covers.
func BenchmarkObsCounter(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_total")
	l := c.Local()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Inc()
	}
	b.StopTimer()
	l.Flush()
	if c.Value() != uint64(b.N) {
		b.Fatalf("lost increments: %d != %d", c.Value(), b.N)
	}
}

// BenchmarkObsCounterAtomic measures the shared (multi-writer) increment
// path — one atomic add.
func BenchmarkObsCounterAtomic(b *testing.B) {
	c := NewRegistry().Counter("bench_total")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkObsCounterNop measures the compiled-out path: a nil handle
// (nil registry), which every instrumented call site degrades to when
// observability is off.
func BenchmarkObsCounterNop(b *testing.B) {
	var r *Registry
	c := r.Counter("bench_total")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkObsHistogramObserve measures one histogram observation with
// the default duration buckets.
func BenchmarkObsHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench_seconds", DurationBuckets)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(0.003)
	}
}

// BenchmarkObsGaugeSetMax measures the high-water-mark update (CAS; the
// common case is "not a new max", a single load).
func BenchmarkObsGaugeSetMax(b *testing.B) {
	g := NewRegistry().Gauge("bench_hw")
	g.Set(1 << 40)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.SetMax(int64(i))
	}
}

package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func newTestTracer(cfg TraceConfig) (*Registry, *Tracer) {
	reg := NewRegistry()
	return reg, NewTracer(reg, cfg)
}

// TestTraceIDsDeterministic pins ID minting to (seed, start order): two
// tracers at the same seed mint identical trace IDs, a different seed
// diverges.
func TestTraceIDsDeterministic(t *testing.T) {
	ids := func(seed uint64) []string {
		_, tr := newTestTracer(TraceConfig{Seed: seed, KeepRate: 1})
		var out []string
		for i := 0; i < 16; i++ {
			sp := tr.StartTrace("op")
			out = append(out, sp.TraceID().String())
			sp.End()
		}
		return out
	}
	a, b := ids(7), ids(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run divergence at %d: %s vs %s", i, a[i], b[i])
		}
	}
	c := ids(8)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds minted identical ID sequences")
	}
	for i, id := range a {
		if len(id) != 32 || id == strings.Repeat("0", 32) {
			t.Fatalf("trace id %d malformed: %q", i, id)
		}
	}
}

// TestTraceparentRoundTrip covers the W3C codec both ways, plus the
// malformed inputs the middleware must shrug off.
func TestTraceparentRoundTrip(t *testing.T) {
	_, tr := newTestTracer(TraceConfig{Seed: 3, KeepRate: 1})
	sp := tr.StartTrace("op")
	hdr := sp.Ctx().Traceparent()
	if len(hdr) != 55 || !strings.HasPrefix(hdr, "00-") || !strings.HasSuffix(hdr, "-01") {
		t.Fatalf("traceparent shape: %q", hdr)
	}
	tid, sid, sampled, ok := ParseTraceparent(hdr)
	if !ok || !sampled || tid != sp.TraceID() || sid != sp.Ctx().SpanID {
		t.Fatalf("round trip: ok=%v sampled=%v tid=%s sid=%s", ok, sampled, tid, sid)
	}
	sp.End()

	var nilSp *Trace
	if got := nilSp.Ctx().Traceparent(); got != "" {
		t.Fatalf("nil trace traceparent = %q", got)
	}

	bad := []string{
		"",
		"00-abc-def-01",
		"00-" + strings.Repeat("0", 32) + "-00f067aa0ba902b7-01", // zero trace id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-" + strings.Repeat("0", 16) + "-01",
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // forbidden version
		"00-4bf92f3577b34da6a3ce929d0e0e47zz-00f067aa0ba902b7-01", // bad hex
	}
	for _, s := range bad {
		if _, _, _, ok := ParseTraceparent(s); ok {
			t.Errorf("accepted malformed traceparent %q", s)
		}
	}
	if _, _, sampled, ok := ParseTraceparent("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-00"); !ok || sampled {
		t.Errorf("unsampled flag misread: ok=%v sampled=%v", ok, sampled)
	}
}

// TestHeadSampling checks the deterministic head decision: rate 1 keeps
// everything, negative rates nothing, a mid rate lands near its target
// and reproduces exactly across tracers.
func TestHeadSampling(t *testing.T) {
	_, all := newTestTracer(TraceConfig{Seed: 1, SampleRate: 1})
	if all.StartTrace("op") == nil {
		t.Fatal("rate 1 rejected a trace")
	}
	_, none := newTestTracer(TraceConfig{Seed: 1, SampleRate: -1})
	if none.StartTrace("op") != nil {
		t.Fatal("negative rate sampled a trace")
	}
	count := func() int {
		_, half := newTestTracer(TraceConfig{Seed: 9, SampleRate: 0.5})
		n := 0
		for i := 0; i < 1000; i++ {
			if sp := half.StartTrace("op"); sp != nil {
				n++
				sp.End()
			}
		}
		return n
	}
	n1, n2 := count(), count()
	if n1 != n2 {
		t.Fatalf("sampling not reproducible: %d vs %d", n1, n2)
	}
	if n1 < 400 || n1 > 600 {
		t.Fatalf("0.5 rate sampled %d of 1000", n1)
	}
}

// TestTailKeepPolicy covers the finalize ladder: errors and flagged
// traces always keep, the warmup window keeps, and at KeepRate 0 a
// plain trace past warmup drops.
func TestTailKeepPolicy(t *testing.T) {
	reg, tr := newTestTracer(TraceConfig{Seed: 2, KeepRate: -1})
	// KeepRate < 0 is below every hash draw — no probabilistic keeps.
	for i := 0; i < warmupKeep; i++ {
		tr.StartTrace("warm").End()
	}
	if got := reg.Value("trace_traces_kept_total", "reason", "warmup"); got != warmupKeep {
		t.Fatalf("warmup keeps = %v", got)
	}
	tr.StartTrace("plain").End()
	if got := reg.Value("trace_traces_dropped_total"); got != 1 {
		t.Fatalf("plain trace not dropped: dropped=%v", got)
	}
	sp := tr.StartTrace("failing")
	sp.MarkError()
	sp.End()
	if got := reg.Value("trace_traces_kept_total", "reason", "error"); got != 1 {
		t.Fatalf("error keeps = %v", got)
	}
	sp = tr.StartTrace("fenced-op")
	sp.FlagKeep("fenced")
	sp.End()
	if got := reg.Value("trace_traces_kept_total", "reason", "fenced"); got != 1 {
		t.Fatalf("fenced keeps = %v", got)
	}
	if tr.Occupancy() != warmupKeep+2 {
		t.Fatalf("occupancy = %d", tr.Occupancy())
	}
}

// TestRecorderRingBound fills the recorder past capacity and checks the
// bound holds, evictions forget the oldest, and the occupancy gauge
// tracks.
func TestRecorderRingBound(t *testing.T) {
	reg, tr := newTestTracer(TraceConfig{Seed: 4, KeepRate: 1, Capacity: 8})
	var first string
	for i := 0; i < 20; i++ {
		sp := tr.StartTrace("op")
		if i == 0 {
			first = sp.TraceID().String()
		}
		sp.End()
	}
	if tr.Occupancy() != 8 {
		t.Fatalf("occupancy = %d want 8", tr.Occupancy())
	}
	if got := reg.Value("trace_recorder_occupancy"); got != 8 {
		t.Fatalf("occupancy gauge = %v", got)
	}
	if got := tr.Kept(first); len(got) != 0 {
		t.Fatalf("evicted trace still listed: %v", got)
	}
	kept := tr.Kept("")
	if len(kept) != 8 {
		t.Fatalf("kept %d traces", len(kept))
	}
	// Newest first.
	for i := 1; i < len(kept); i++ {
		if kept[i-1].seq < kept[i].seq {
			t.Fatalf("kept not newest-first at %d", i)
		}
	}
}

// TestChildSpansAndAnnotations builds a three-level trace and checks
// parent links, annotations and error propagation in the record.
func TestChildSpansAndAnnotations(t *testing.T) {
	_, tr := newTestTracer(TraceConfig{Seed: 5, KeepRate: 1})
	root := tr.StartTrace("poll")
	child := root.StartChild("http:recent")
	child.Annotate("retry:1")
	child.Annotatef("backoff:%dms", 50)
	grand := child.Ctx().StartChild("dial")
	grand.End()
	child.End()
	root.End()

	kept := tr.Kept(root.TraceID().String())
	if len(kept) != 1 {
		t.Fatalf("kept %d", len(kept))
	}
	spans := kept[0].Spans
	if len(spans) != 3 {
		t.Fatalf("span count %d", len(spans))
	}
	byName := map[string]SpanRecord{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	if byName["poll"].ParentSpanID != "" {
		t.Errorf("root has parent %q", byName["poll"].ParentSpanID)
	}
	if byName["http:recent"].ParentSpanID != byName["poll"].SpanID {
		t.Errorf("child parent link broken")
	}
	if byName["dial"].ParentSpanID != byName["http:recent"].SpanID {
		t.Errorf("grandchild parent link broken")
	}
	notes := byName["http:recent"].Annotations
	if len(notes) != 2 || notes[0] != "retry:1" || notes[1] != "backoff:50ms" {
		t.Errorf("annotations = %v", notes)
	}
}

// TestRemoteFragmentsMerge simulates three sequential server requests
// carrying the same trace ID (one replica page cycle hitting renew,
// page, checkpoint) and checks they merge into one recorder entry.
func TestRemoteFragmentsMerge(t *testing.T) {
	_, client := newTestTracer(TraceConfig{Seed: 6, KeepRate: 1, Service: "client"})
	_, server := newTestTracer(TraceConfig{Seed: 60, KeepRate: 1, Service: "server"})

	root := client.StartTrace("fleet.page")
	for _, op := range []string{"POST /leasez/renew", "GET /recent", "POST /leasez/checkpoint"} {
		child := root.StartChild(op)
		tid, sid, _, ok := ParseTraceparent(child.Ctx().Traceparent())
		if !ok {
			t.Fatal("child traceparent malformed")
		}
		srv := server.Extract(op, tid, sid)
		srv.End()
		child.End()
	}
	root.End()

	kept := server.Kept("")
	if len(kept) != 1 {
		t.Fatalf("server kept %d entries, want 1 merged", len(kept))
	}
	if kept[0].TraceID != root.TraceID().String() {
		t.Errorf("merged trace id %s", kept[0].TraceID)
	}
	if kept[0].KeepReason != "remote" {
		t.Errorf("keep reason %s", kept[0].KeepReason)
	}
	if len(kept[0].Spans) != 3 {
		t.Errorf("merged span count %d", len(kept[0].Spans))
	}
	for _, s := range kept[0].Spans {
		if !s.RemoteParent || s.ParentSpanID == "" {
			t.Errorf("server span %q lost remote parent link", s.Name)
		}
	}
}

// TestTraceMiddleware covers extraction, context propagation, 5xx error
// marking, and the pass-through for untraced requests.
func TestTraceMiddleware(t *testing.T) {
	_, client := newTestTracer(TraceConfig{Seed: 11, KeepRate: 1})
	_, server := newTestTracer(TraceConfig{Seed: 12, KeepRate: 1, Service: "explorerd"})

	var sawTrace *Trace
	h := TraceMiddleware(server, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sawTrace = TraceFromContext(r.Context())
		if r.URL.Path == "/boom" {
			w.WriteHeader(http.StatusInternalServerError)
		}
	}))

	// No traceparent: passes through, roots nothing.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/data", nil))
	if sawTrace != nil {
		t.Fatal("untraced request grew a trace")
	}
	if n := server.Occupancy(); n != 0 {
		t.Fatalf("server recorded %d traces for untraced request", n)
	}

	// Traced request: extracted, in context, recorded.
	root := client.StartTrace("poll")
	req := httptest.NewRequest("GET", "/data", nil)
	req.Header.Set("traceparent", root.Ctx().Traceparent())
	h.ServeHTTP(httptest.NewRecorder(), req)
	if sawTrace == nil || sawTrace.TraceID() != root.TraceID() {
		t.Fatal("handler did not see the extracted trace")
	}

	// 5xx marks the server span errored.
	req = httptest.NewRequest("GET", "/boom", nil)
	req.Header.Set("traceparent", root.Ctx().Traceparent())
	h.ServeHTTP(httptest.NewRecorder(), req)
	root.End()

	kept := server.Kept(root.TraceID().String())
	if len(kept) != 1 {
		t.Fatalf("server kept %d entries", len(kept))
	}
	if !kept[0].Error {
		t.Error("5xx not marked as error")
	}
	var boom *SpanRecord
	for i := range kept[0].Spans {
		if kept[0].Spans[i].Name == "GET /boom" {
			boom = &kept[0].Spans[i]
		}
	}
	if boom == nil || !boom.Error || len(boom.Annotations) == 0 || boom.Annotations[0] != "status:500" {
		t.Errorf("boom span = %+v", boom)
	}
}

// TestTracezHandler checks the JSON document shape, the trace_id
// drill-down, and the text dump.
func TestTracezHandler(t *testing.T) {
	reg, tr := newTestTracer(TraceConfig{Seed: 13, KeepRate: 1, Service: "test", Capacity: 32})
	root := tr.StartTrace("poll")
	child := root.StartChild("http:recent")
	child.Annotate("retry:2")
	child.End()
	root.End()
	tr.StartTrace("other").End()

	mux := NewOpsMux(reg, false)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/tracez", nil))
	if rec.Code != 200 {
		t.Fatalf("/tracez -> %d", rec.Code)
	}
	var doc struct {
		Service   string      `json:"service"`
		Capacity  int         `json:"capacity"`
		Occupancy int         `json:"occupancy"`
		Started   uint64      `json:"traces_started"`
		Traces    []KeptTrace `json:"traces"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("tracez JSON: %v", err)
	}
	if doc.Service != "test" || doc.Capacity != 32 || doc.Occupancy != 2 || doc.Started != 2 || len(doc.Traces) != 2 {
		t.Fatalf("tracez doc = %+v", doc)
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/tracez?trace_id="+root.TraceID().String(), nil))
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Traces) != 1 || doc.Traces[0].TraceID != root.TraceID().String() {
		t.Fatalf("drill-down returned %d traces", len(doc.Traces))
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/tracez?format=text", nil))
	text := rec.Body.String()
	if !strings.Contains(text, "trace "+root.TraceID().String()) ||
		!strings.Contains(text, "http:recent") || !strings.Contains(text, "[retry:2]") {
		t.Fatalf("text dump missing content:\n%s", text)
	}
}

// TestRecordSpanRetroactive covers SpanCtx.RecordSpan — the stream
// engine's seal/fold spans whose boundaries are stamped before the span
// is written.
func TestRecordSpanRetroactive(t *testing.T) {
	_, tr := newTestTracer(TraceConfig{Seed: 14, KeepRate: 1})
	root := tr.StartTrace("stream.event")
	start := time.Now().Add(-5 * time.Millisecond)
	root.Ctx().RecordSpan("stream.seal", start, start.Add(2*time.Millisecond), false)
	root.End()
	kept := tr.Kept(root.TraceID().String())
	if len(kept) != 1 || len(kept[0].Spans) != 2 {
		t.Fatalf("kept = %+v", kept)
	}
	var seal *SpanRecord
	for i := range kept[0].Spans {
		if kept[0].Spans[i].Name == "stream.seal" {
			seal = &kept[0].Spans[i]
		}
	}
	if seal == nil || seal.DurationNS != (2*time.Millisecond).Nanoseconds() {
		t.Fatalf("seal span = %+v", seal)
	}
	// Unsampled contexts are inert.
	var none SpanCtx
	none.RecordSpan("x", start, start, false)
	if none.StartChild("x") != nil {
		t.Fatal("unsampled StartChild returned a span")
	}
}

// TestNilTraceSafety drives every method through nil receivers — the
// unsampled fast path call sites rely on.
func TestNilTraceSafety(t *testing.T) {
	var tr *Tracer
	sp := tr.StartTrace("op")
	if sp != nil {
		t.Fatal("nil tracer sampled")
	}
	sp.Annotate("x")
	sp.Annotatef("%d", 1)
	sp.MarkError()
	sp.FlagKeep("r")
	child := sp.StartChild("c")
	if child != nil {
		t.Fatal("nil span minted a child")
	}
	sp.EndErr(nil)
	sp.End()
	if !sp.TraceID().IsZero() || sp.Ctx().Sampled() {
		t.Fatal("nil span leaked identity")
	}
	if tr.Kept("") != nil || tr.Occupancy() != 0 || tr.Service() != "" {
		t.Fatal("nil tracer state")
	}
	if TraceFromContext(nil) != nil {
		t.Fatal("nil context trace")
	}
}

// TestSpanBound checks the per-trace span cap: overflow is counted, not
// stored.
func TestSpanBound(t *testing.T) {
	reg, tr := newTestTracer(TraceConfig{Seed: 15, KeepRate: 1})
	root := tr.StartTrace("big")
	for i := 0; i < maxSpansPerTrace+10; i++ {
		root.StartChild("c").End()
	}
	root.End()
	kept := tr.Kept(root.TraceID().String())
	if len(kept) != 1 {
		t.Fatal("trace not kept")
	}
	if len(kept[0].Spans) > maxSpansPerTrace {
		t.Fatalf("span bound broken: %d", len(kept[0].Spans))
	}
	if kept[0].Dropped == 0 || reg.Value("trace_spans_dropped_total") == 0 {
		t.Fatal("dropped spans not counted")
	}
}

// TestTracerConcurrent hammers one tracer from many goroutines — the
// race-detector coverage for the recorder, counters and span lists.
func TestTracerConcurrent(t *testing.T) {
	_, tr := newTestTracer(TraceConfig{Seed: 16, KeepRate: 1, Capacity: 64})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				sp := tr.StartTrace("op")
				c := sp.StartChild("child")
				c.Annotate("note")
				c.End()
				if i%3 == 0 {
					sp.MarkError()
				}
				sp.End()
			}
		}()
	}
	wg.Wait()
	if tr.Occupancy() != 64 {
		t.Fatalf("occupancy %d", tr.Occupancy())
	}
}

// TestExemplars covers ObserveExemplar end to end: snapshot exposure,
// Prometheus rendering, and validator acceptance of exemplar lines.
func TestExemplars(t *testing.T) {
	reg, tr := newTestTracer(TraceConfig{Seed: 17, KeepRate: 1})
	h := reg.Histogram("req_seconds", []float64{0.01, 0.1})
	sp := tr.StartTrace("op")
	h.ObserveExemplar(0.05, sp.TraceID())
	h.ObserveExemplar(0.5, TraceID{}) // zero id: plain observe
	sp.End()

	var sample *Sample
	for _, s := range reg.Snapshot() {
		if s.Name == "req_seconds" {
			sample = &s
		}
	}
	if sample == nil || len(sample.Exemplars) != 1 {
		t.Fatalf("exemplars in snapshot = %+v", sample)
	}
	e := sample.Exemplars[0]
	if e.Bucket != 1 || e.TraceID != sp.TraceID().String() || e.Value != 0.05 {
		t.Fatalf("exemplar = %+v", e)
	}

	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `req_seconds_bucket{le="0.1"} 1 # {trace_id="` + sp.TraceID().String() + `"} 0.05`
	if !strings.Contains(buf.String(), want) {
		t.Fatalf("exposition missing exemplar line %q:\n%s", want, buf.String())
	}
	if err := ValidateExposition(strings.NewReader(buf.String())); err != nil {
		t.Fatalf("exposition with exemplars rejected: %v", err)
	}
	if err := ValidateExposition(strings.NewReader("x_bucket{le=\"1\"} 1 # {trace_id=\"zz\"} notafloat\n")); err == nil {
		t.Fatal("malformed exemplar accepted")
	}
}

// TestTraceUnsampledZeroAlloc pins the no-sample fast path at zero
// allocations.
func TestTraceUnsampledZeroAlloc(t *testing.T) {
	_, tr := newTestTracer(TraceConfig{Seed: 18, SampleRate: -1})
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.StartTrace("op")
		sp.StartChild("c").End()
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("unsampled path allocates: %v allocs/op", allocs)
	}
}

// BenchmarkTraceUnsampled measures the no-sample fast path (the BENCH
// acceptance: 0 allocs).
func BenchmarkTraceUnsampled(b *testing.B) {
	_, tr := newTestTracer(TraceConfig{Seed: 1, SampleRate: -1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.StartTrace("op").End()
	}
}

// BenchmarkTraceSampled measures the full sampled span lifecycle.
func BenchmarkTraceSampled(b *testing.B) {
	_, tr := newTestTracer(TraceConfig{Seed: 1, SampleRate: 1, KeepRate: 0.1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := tr.StartTrace("op")
		sp.StartChild("child").End()
		sp.End()
	}
}

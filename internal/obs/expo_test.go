package obs

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// goldenRegistry builds a registry exercising every metric kind, label
// rendering (including escapes), help text and histogram expansion.
func goldenRegistry() *Registry {
	r := NewRegistry()
	r.Counter("requests_total").Add(42)
	r.Counter("faults_total", "class", "throttle").Add(3)
	r.Counter("faults_total", "class", "server").Add(1)
	r.Counter("escaped_total", "path", `a"b\c`).Inc()
	r.Gauge("pending").Set(-7)
	r.FloatGauge("overlap_ratio").Set(0.9375)
	h := r.Histogram("fetch_seconds", []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(0.05)
	h.Observe(5)
	r.Help("requests_total", "requests served")
	return r
}

// TestPrometheusGolden pins the exposition byte-for-byte: families
// sorted, TYPE lines once per family, cumulative histogram buckets with
// +Inf, sum and count.
func TestPrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE escaped_total counter
escaped_total{path="a\"b\\c"} 1
# TYPE faults_total counter
faults_total{class="server"} 1
faults_total{class="throttle"} 3
# TYPE fetch_seconds histogram
fetch_seconds_bucket{le="0.01"} 1
fetch_seconds_bucket{le="0.1"} 3
fetch_seconds_bucket{le="1"} 3
fetch_seconds_bucket{le="+Inf"} 4
fetch_seconds_sum 5.105
fetch_seconds_count 4
# TYPE overlap_ratio gauge
overlap_ratio 0.9375
# TYPE pending gauge
pending -7
# HELP requests_total requests served
# TYPE requests_total counter
requests_total 42
`
	if got := buf.String(); got != want {
		t.Errorf("exposition golden mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	// The golden output must satisfy our own validator.
	if err := ValidateExposition(strings.NewReader(buf.String())); err != nil {
		t.Errorf("golden output fails validation: %v", err)
	}
}

func TestStatusJSON(t *testing.T) {
	r := goldenRegistry()
	r.Volatile("fetch_seconds")
	var buf bytes.Buffer
	if err := r.WriteStatusJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Metrics  map[string]json.RawMessage `json:"metrics"`
		Volatile []string                   `json:"volatile_families"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("statusz is not valid JSON: %v\n%s", err, buf.String())
	}
	if string(doc.Metrics["requests_total"]) != "42" {
		t.Errorf("requests_total = %s", doc.Metrics["requests_total"])
	}
	var hist struct {
		Count   uint64            `json:"count"`
		Sum     float64           `json:"sum"`
		Buckets map[string]uint64 `json:"buckets"`
	}
	if err := json.Unmarshal(doc.Metrics["fetch_seconds"], &hist); err != nil {
		t.Fatalf("histogram shape: %v", err)
	}
	if hist.Count != 4 || hist.Buckets["+Inf"] != 4 || hist.Buckets["0.1"] != 3 {
		t.Errorf("histogram JSON wrong: %+v", hist)
	}
	if len(doc.Volatile) != 1 || doc.Volatile[0] != "fetch_seconds" {
		t.Errorf("volatile families = %v", doc.Volatile)
	}
}

func TestHandlers(t *testing.T) {
	mux := NewOpsMux(goldenRegistry(), false)

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "requests_total 42") {
		t.Errorf("/metrics: code=%d body=%q", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics content type %q", ct)
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/statusz", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), `"requests_total": 42`) {
		t.Errorf("/statusz: code=%d body=%q", rec.Code, rec.Body.String())
	}

	// pprof is off by default: the mux must not serve /debug/pprof/.
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rec.Code != 404 {
		t.Errorf("pprof served without opt-in: %d", rec.Code)
	}
	withPprof := NewOpsMux(goldenRegistry(), true)
	rec = httptest.NewRecorder()
	withPprof.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rec.Code != 200 {
		t.Errorf("pprof opt-in not served: %d", rec.Code)
	}
}

// TestStatusJSONShape pins the /statusz document shape: the top-level
// key set and the exact metric-name set for a known registry. Values
// are free to change; keys are the contract scrapers rely on.
func TestStatusJSONShape(t *testing.T) {
	r := goldenRegistry()
	r.Volatile("fetch_seconds")
	var buf bytes.Buffer
	if err := r.WriteStatusJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	for k := range doc {
		switch k {
		case "metrics", "volatile_families", "uptime_seconds", "build":
		default:
			t.Errorf("unexpected top-level key %q", k)
		}
	}
	var uptime float64
	if err := json.Unmarshal(doc["uptime_seconds"], &uptime); err != nil || uptime < 0 {
		t.Errorf("uptime_seconds = %s (err %v)", doc["uptime_seconds"], err)
	}
	var build struct {
		GoVersion string `json:"go_version"`
	}
	if err := json.Unmarshal(doc["build"], &build); err != nil || build.GoVersion == "" {
		t.Errorf("build info = %s (err %v)", doc["build"], err)
	}
	var metrics map[string]json.RawMessage
	if err := json.Unmarshal(doc["metrics"], &metrics); err != nil {
		t.Fatal(err)
	}
	want := []string{
		`escaped_total{path="a\"b\\c"}`,
		"faults_total{class=\"server\"}",
		"faults_total{class=\"throttle\"}",
		"fetch_seconds",
		"overlap_ratio",
		"pending",
		"requests_total",
	}
	if len(metrics) != len(want) {
		t.Errorf("metrics key count %d want %d", len(metrics), len(want))
	}
	for _, k := range want {
		if _, ok := metrics[k]; !ok {
			t.Errorf("metrics missing key %q", k)
		}
	}
	// Volatile families stay in metrics (live view) but are declared, so
	// determinism-minded consumers know to exclude them.
	var vol []string
	if err := json.Unmarshal(doc["volatile_families"], &vol); err != nil {
		t.Fatal(err)
	}
	if len(vol) != 1 || vol[0] != "fetch_seconds" {
		t.Errorf("volatile_families = %v", vol)
	}
}

// TestOpsMuxExtraEndpoints covers the variadic extension: caller-
// supplied routes mount beside /metrics and /statusz.
func TestOpsMuxExtraEndpoints(t *testing.T) {
	called := false
	mux := NewOpsMux(goldenRegistry(), false, Endpoint{
		Path: "/customz",
		Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			called = true
		}),
	})
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/customz", nil))
	if rec.Code != 200 || !called {
		t.Errorf("extra endpoint not served: code=%d called=%v", rec.Code, called)
	}
	// The core endpoints still work with extras present.
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Errorf("/metrics with extras: %d", rec.Code)
	}
}

func TestValidateExpositionRejectsMalformed(t *testing.T) {
	bad := []string{
		"1leading_digit 3",
		"no_value",
		"bad_value x",
		`unterminated{label="v 3`,
		`missing_quote{label=v} 3`,
		"# TYPE foo flavor",
		"# TYPE foo counter extra",
		"# HELP 9name text",
	}
	for _, line := range bad {
		if err := ValidateExposition(strings.NewReader(line + "\n")); err == nil {
			t.Errorf("accepted malformed line %q", line)
		}
	}
	good := "# arbitrary comment\nok_total 1\nok_labeled{a=\"b\",c=\"d\"} 2.5\nwith_ts 3 1700000000\n"
	if err := ValidateExposition(strings.NewReader(good)); err != nil {
		t.Errorf("rejected well-formed stream: %v", err)
	}
}

func TestWriteSummary(t *testing.T) {
	r := goldenRegistry()
	r.Counter("zero_total") // zero-valued: must not render
	var buf bytes.Buffer
	r.WriteSummary(&buf)
	out := buf.String()
	if !strings.Contains(out, "requests_total") || !strings.Contains(out, "42") {
		t.Errorf("summary missing counter: %s", out)
	}
	if strings.Contains(out, "zero_total") {
		t.Errorf("summary rendered zero metric: %s", out)
	}
	if !strings.Contains(out, "n=4") {
		t.Errorf("summary missing histogram fold: %s", out)
	}
	var empty bytes.Buffer
	NewRegistry().WriteSummary(&empty)
	if !strings.Contains(empty.String(), "no metrics") {
		t.Errorf("empty summary = %q", empty.String())
	}
}

package obs

import (
	"encoding/json"
	"net/http"
)

// HealthSource is one subsystem's contribution to a combined /healthz
// probe: the quality sentinel's CRIT verdict and the SLO engine's
// fast-burn alert both answer through this interface, so a binary
// serves exactly one 503 no matter how many monitors trip.
type HealthSource struct {
	// Name prefixes the reason line ("quality", "slo").
	Name string
	// Check reports whether the subsystem considers the process
	// healthy, with a human-readable reason when it does not.
	Check func() (healthy bool, reason string)
}

// healthDoc is the /healthz JSON body.
type healthDoc struct {
	Status  string   `json:"status"`
	Reasons []string `json:"reasons,omitempty"`
}

// HealthHandler combines any number of health sources into one
// liveness probe: 200 {"status":"ok"} when every source passes, 503
// {"status":"unhealthy","reasons":[...]} with every failing source's
// reason when any does. Sources are consulted on each probe, in the
// given order, and all of them are consulted even after one fails — a
// probe must surface every concurrent failure, not just the first.
func HealthHandler(sources ...HealthSource) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		doc := healthDoc{Status: "ok"}
		for _, s := range sources {
			if s.Check == nil {
				continue
			}
			healthy, reason := s.Check()
			if healthy {
				continue
			}
			doc.Status = "unhealthy"
			if reason == "" {
				reason = "unhealthy"
			}
			doc.Reasons = append(doc.Reasons, s.Name+": "+reason)
		}
		w.Header().Set("Content-Type", "application/json")
		if doc.Status != "ok" {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(doc)
	})
}

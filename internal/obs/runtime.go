package obs

import (
	"runtime"
	"sort"
)

// SampleRuntime refreshes the process-runtime gauges: goroutine count,
// heap bytes, GC cycles and GC pause p99. All are Volatile — they
// measure the machine, not the workload — and exist so a loadgen run
// can correlate serving saturation (goroutine pileup, heap growth, GC
// stalls) with SLO burn rate on the same /metrics scrape. NewOpsMux
// arranges a refresh on every /metrics and /statusz hit, so the values
// are scrape-fresh without a background poller.
func (r *Registry) SampleRuntime() {
	if r == nil {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)

	r.Gauge("go_goroutines").Set(int64(runtime.NumGoroutine()))
	r.Gauge("go_heap_alloc_bytes").Set(int64(ms.HeapAlloc))
	r.Gauge("go_heap_sys_bytes").Set(int64(ms.HeapSys))
	r.Gauge("go_gc_cycles_total").Set(int64(ms.NumGC))
	r.FloatGauge("go_gc_pause_p99_seconds").Set(gcPauseP99(&ms))

	r.Volatile("go_goroutines", "go_heap_alloc_bytes", "go_heap_sys_bytes",
		"go_gc_cycles_total", "go_gc_pause_p99_seconds")
	r.Help("go_goroutines", "Live goroutine count at last scrape.")
	r.Help("go_heap_alloc_bytes", "Heap bytes in use at last scrape.")
	r.Help("go_heap_sys_bytes", "Heap bytes obtained from the OS.")
	r.Help("go_gc_cycles_total", "Completed GC cycles.")
	r.Help("go_gc_pause_p99_seconds", "p99 of the recent GC pause ring (up to 256 pauses).")
}

// gcPauseP99 computes the 99th-percentile stop-the-world pause from
// MemStats' 256-entry circular pause buffer, over however many cycles
// have actually run.
func gcPauseP99(ms *runtime.MemStats) float64 {
	n := int(ms.NumGC)
	if n == 0 {
		return 0
	}
	if n > len(ms.PauseNs) {
		n = len(ms.PauseNs)
	}
	pauses := make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		pauses = append(pauses, ms.PauseNs[i])
	}
	sort.Slice(pauses, func(i, j int) bool { return pauses[i] < pauses[j] })
	idx := (99*len(pauses) + 99) / 100 // ceil(0.99n), 1-based rank
	if idx > len(pauses) {
		idx = len(pauses)
	}
	return float64(pauses[idx-1]) / 1e9
}

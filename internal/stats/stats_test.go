package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestECDFBasics(t *testing.T) {
	e := NewECDF([]float64{3, 1, 2, 4, 5})
	if e.Len() != 5 {
		t.Fatalf("Len = %d", e.Len())
	}
	if e.Quantile(0.5) != 3 {
		t.Errorf("median = %v", e.Quantile(0.5))
	}
	if e.Quantile(0) != 1 || e.Quantile(1) != 5 {
		t.Error("extreme quantiles wrong")
	}
	if e.At(3) != 0.6 {
		t.Errorf("At(3) = %v", e.At(3))
	}
	if e.At(0.5) != 0 || e.At(100) != 1 {
		t.Error("At extremes wrong")
	}
	if e.Mean() != 3 {
		t.Errorf("Mean = %v", e.Mean())
	}
}

func TestECDFEmpty(t *testing.T) {
	e := NewECDF(nil)
	if e.At(1) != 0 || e.Quantile(0.5) != 0 || e.Mean() != 0 || e.Curve(5) != nil {
		t.Error("empty ECDF should be all zeros")
	}
}

func TestECDFDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	NewECDF(in)
	if in[0] != 3 || in[1] != 1 {
		t.Error("NewECDF sorted the caller's slice")
	}
}

func TestECDFCurveMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	samples := make([]float64, 1000)
	for i := range samples {
		samples[i] = rng.ExpFloat64() * 100
	}
	curve := NewECDF(samples).Curve(50)
	if len(curve) != 50 {
		t.Fatalf("curve points = %d", len(curve))
	}
	for i := 1; i < len(curve); i++ {
		if curve[i].X < curve[i-1].X || curve[i].F <= curve[i-1].F {
			t.Fatal("CDF curve not monotone")
		}
	}
	if curve[len(curve)-1].F != 1 {
		t.Error("curve does not reach 1")
	}
}

func TestQuantileProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]float64, len(raw))
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			vals[i] = v
		}
		e := NewECDF(vals)
		// Quantile and At must be inverse-consistent:
		// At(Quantile(q)) >= q for all q.
		for _, q := range []float64{0.1, 0.25, 0.5, 0.9, 0.99} {
			if e.At(e.Quantile(q)) < q-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestLogHistogramQuantiles(t *testing.T) {
	h := NewTipHistogram()
	// A known mixture: 90% at 1,000 lamports, 10% at 2,000,000.
	h.AddN(1_000, 900)
	h.AddN(2_000_000, 100)

	if h.Total() != 1000 {
		t.Fatalf("Total = %d", h.Total())
	}
	med := h.Quantile(0.5)
	if med < 900 || med > 1_100 {
		t.Errorf("median = %v, want ≈1000", med)
	}
	p95 := h.Quantile(0.95)
	if p95 < 1_800_000 || p95 > 2_200_000 {
		t.Errorf("p95 = %v, want ≈2e6", p95)
	}
}

func TestLogHistogramAccuracyProperty(t *testing.T) {
	// Histogram quantiles must match exact ECDF quantiles within the
	// bucket resolution (~2.3% at 50 buckets/decade ⇒ allow 6%).
	rng := rand.New(rand.NewSource(7))
	h := NewTipHistogram()
	var raw []float64
	for i := 0; i < 20_000; i++ {
		v := math.Exp(rng.NormFloat64()*2 + 9) // lognormal around e^9≈8100
		h.Add(v)
		raw = append(raw, v)
	}
	e := NewECDF(raw)
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		exact, approx := e.Quantile(q), h.Quantile(q)
		if rel := math.Abs(approx-exact) / exact; rel > 0.06 {
			t.Errorf("q=%v: exact %v approx %v (rel %.3f)", q, exact, approx, rel)
		}
	}
}

func TestLogHistogramAtAndCurve(t *testing.T) {
	h := NewLogHistogram(1, 6, 10)
	h.AddN(10, 50)
	h.AddN(10_000, 50)
	if f := h.At(100); f != 0.5 {
		t.Errorf("At(100) = %v", f)
	}
	if f := h.At(100_000); f != 1 {
		t.Errorf("At(1e5) = %v", f)
	}
	curve := h.Curve()
	if len(curve) != 2 {
		t.Fatalf("curve buckets = %d", len(curve))
	}
	if curve[1].F != 1 {
		t.Error("curve does not reach 1")
	}
}

func TestLogHistogramEdges(t *testing.T) {
	h := NewLogHistogram(1, 3, 10)
	h.Add(0.5)  // below min → bucket 0
	h.Add(1e12) // above range → clamped to last bucket
	if h.Total() != 2 {
		t.Fatal("total wrong")
	}
	if h.Quantile(0) == 0 {
		t.Error("quantile of non-empty histogram is 0")
	}
	if h.Quantile(-1) != h.Quantile(0) || h.Quantile(2) != h.Quantile(1) {
		t.Error("out-of-range q not clamped")
	}
	empty := NewLogHistogram(1, 3, 10)
	if empty.Quantile(0.5) != 0 || empty.At(10) != 0 || empty.Curve() != nil {
		t.Error("empty histogram should report zeros")
	}
}

func TestTimeSeries(t *testing.T) {
	ts := NewTimeSeries()
	ts.Add(3, 10)
	ts.Add(1, 5)
	ts.Add(3, 2)
	if ts.Get(3) != 12 || ts.Get(1) != 5 || ts.Get(99) != 0 {
		t.Error("Get wrong")
	}
	days := ts.Days()
	if len(days) != 2 || days[0] != 1 || days[1] != 3 {
		t.Errorf("Days = %v", days)
	}
	if ts.Sum() != 17 {
		t.Errorf("Sum = %v", ts.Sum())
	}
}

func TestLinearTrend(t *testing.T) {
	up := NewTimeSeries()
	down := NewTimeSeries()
	for d := 0; d < 100; d++ {
		up.Add(d, float64(10+2*d))
		down.Add(d, float64(1000-5*d))
	}
	if b := up.LinearTrend(); math.Abs(b-2) > 1e-9 {
		t.Errorf("up slope = %v", b)
	}
	if b := down.LinearTrend(); math.Abs(b+5) > 1e-9 {
		t.Errorf("down slope = %v", b)
	}
	if NewTimeSeries().LinearTrend() != 0 {
		t.Error("empty trend should be 0")
	}
}

func TestLamportsToUSD(t *testing.T) {
	if got := LamportsToUSD(1e9, 242); got != 242 {
		t.Errorf("1 SOL = $%v", got)
	}
	// The paper's defensive-tip average: $0.0028 at $242/SOL ≈ 11.6k lamports.
	if got := LamportsToUSD(11_570, SOLPriceUSD); math.Abs(got-0.0028) > 0.0001 {
		t.Errorf("11570 lamports = $%v", got)
	}
}

func BenchmarkLogHistogramAdd(b *testing.B) {
	h := NewTipHistogram()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Add(float64(i%1_000_000 + 1))
	}
}

func TestBootstrapCI(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	samples := make([]float64, 500)
	for i := range samples {
		samples[i] = 100 + rng.NormFloat64()*10
	}
	lo, hi := BootstrapCI(samples, 0.5, 0.05, 400, rng)
	if lo >= hi {
		t.Fatalf("degenerate interval [%f, %f]", lo, hi)
	}
	med := NewECDF(samples).Quantile(0.5)
	if med < lo || med > hi {
		t.Errorf("point estimate %f outside CI [%f, %f]", med, lo, hi)
	}
	// Interval width should be modest for n=500, sigma=10: a few units.
	if hi-lo > 5 {
		t.Errorf("CI implausibly wide: [%f, %f]", lo, hi)
	}
	// Edge cases.
	if lo, hi := BootstrapCI(nil, 0.5, 0.05, 100, rng); lo != 0 || hi != 0 {
		t.Error("empty sample should return zeros")
	}
}

func TestBootstrapDeterministic(t *testing.T) {
	samples := []float64{5, 1, 9, 3, 7, 2, 8}
	l1, h1 := BootstrapCI(samples, 0.5, 0.1, 200, rand.New(rand.NewSource(3)))
	l2, h2 := BootstrapCI(samples, 0.5, 0.1, 200, rand.New(rand.NewSource(3)))
	if l1 != l2 || h1 != h2 {
		t.Error("bootstrap not deterministic under a fixed seed")
	}
}

func TestLogHistogramAppendBinaryMatchesMarshal(t *testing.T) {
	h := NewTipHistogram()
	for _, v := range []float64{1, 2.5, 1000, 2.8e6} {
		h.Add(v)
	}
	marshaled, err := h.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	appended := h.AppendBinary([]byte("prefix"))
	if string(appended[:6]) != "prefix" {
		t.Fatal("AppendBinary did not preserve the prefix")
	}
	if string(appended[6:]) != string(marshaled) {
		t.Error("AppendBinary payload differs from MarshalBinary")
	}
	var back LogHistogram
	if err := back.UnmarshalBinary(appended[6:]); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if back.Total() != h.Total() {
		t.Errorf("total %d after round trip, want %d", back.Total(), h.Total())
	}
}

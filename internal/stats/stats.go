// Package stats provides the numerical building blocks the analysis and
// report layers share: empirical CDFs, streaming log-bucket histograms
// (for tip distributions over hundreds of millions of bundles), per-day
// time series, and SOL↔USD conversion.
package stats

import (
	"encoding/binary"
	"errors"
	"math"
	"math/rand"
	"sort"
)

// SOLPriceUSD is the SOL→USD conversion rate. The paper pins all dollar
// figures to the rate of September 12, 2025 (~$242); studies may override.
const SOLPriceUSD = 242.0

// LamportsToUSD converts lamports to dollars at rate (USD per SOL).
func LamportsToUSD(lamports float64, rate float64) float64 {
	return lamports / 1e9 * rate
}

// ECDF is an empirical cumulative distribution over float64 samples.
type ECDF struct {
	sorted []float64
}

// NewECDF copies and sorts the samples.
func NewECDF(samples []float64) *ECDF {
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	return &ECDF{sorted: s}
}

// Len returns the sample count.
func (e *ECDF) Len() int { return len(e.sorted) }

// At returns the fraction of samples ≤ x.
func (e *ECDF) At(x float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(e.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(e.sorted))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) using the nearest-rank
// method. Quantile(0.5) is the median.
func (e *ECDF) Quantile(q float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return e.sorted[0]
	}
	if q >= 1 {
		return e.sorted[len(e.sorted)-1]
	}
	i := int(math.Ceil(q*float64(len(e.sorted)))) - 1
	if i < 0 {
		i = 0
	}
	return e.sorted[i]
}

// Values returns a copy of the sorted samples (for resampling).
func (e *ECDF) Values() []float64 { return append([]float64(nil), e.sorted...) }

// Mean returns the arithmetic mean.
func (e *ECDF) Mean() float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	var sum float64
	for _, v := range e.sorted {
		sum += v
	}
	return sum / float64(len(e.sorted))
}

// Point is one (x, cumulative fraction) pair of a CDF curve.
type Point struct {
	X float64
	F float64
}

// Curve returns n points sampling the CDF at evenly spaced quantiles,
// suitable for plotting Figures 3 and 4.
func (e *ECDF) Curve(n int) []Point {
	if len(e.sorted) == 0 || n <= 0 {
		return nil
	}
	out := make([]Point, 0, n)
	for i := 1; i <= n; i++ {
		q := float64(i) / float64(n)
		out = append(out, Point{X: e.Quantile(q), F: q})
	}
	return out
}

// LogHistogram is a streaming histogram with logarithmically spaced
// buckets, used where holding raw samples is infeasible — the paper's
// Figure 4 covers tip values across ~1.5 billion bundles. BucketsPerDecade
// log-spaced buckets per power of ten bound quantile error to a few
// percent, ample for CDF plots spanning six orders of magnitude.
type LogHistogram struct {
	counts []uint64
	total  uint64
	min    float64 // smallest representable value (bucket 0 covers <= min)
	perDec int
}

// NewLogHistogram creates a histogram covering [min, min*10^decades) with
// perDecade buckets per power of ten.
func NewLogHistogram(min float64, decades, perDecade int) *LogHistogram {
	if min <= 0 || decades <= 0 || perDecade <= 0 {
		panic("stats: invalid log histogram shape")
	}
	return &LogHistogram{
		counts: make([]uint64, decades*perDecade+1),
		min:    min,
		perDec: perDecade,
	}
}

// NewTipHistogram covers 1 lamport to 10^7 SOL with 1% resolution —
// the range of every Jito tip in the study.
func NewTipHistogram() *LogHistogram { return NewLogHistogram(1, 16, 50) }

func (h *LogHistogram) bucket(v float64) int {
	if v <= h.min {
		return 0
	}
	b := int(math.Log10(v/h.min)*float64(h.perDec)) + 1
	if b >= len(h.counts) {
		b = len(h.counts) - 1
	}
	return b
}

// Add records one observation.
func (h *LogHistogram) Add(v float64) {
	h.counts[h.bucket(v)]++
	h.total++
}

// AddN records n identical observations.
func (h *LogHistogram) AddN(v float64, n uint64) {
	h.counts[h.bucket(v)] += n
	h.total += n
}

// Total returns the observation count.
func (h *LogHistogram) Total() uint64 { return h.total }

// value returns the upper edge of bucket b.
func (h *LogHistogram) value(b int) float64 {
	if b == 0 {
		return h.min
	}
	return h.min * math.Pow(10, float64(b)/float64(h.perDec))
}

// Quantile returns the approximate q-quantile.
func (h *LogHistogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(math.Ceil(q * float64(h.total)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for b, c := range h.counts {
		cum += c
		if cum >= target {
			return h.value(b)
		}
	}
	return h.value(len(h.counts) - 1)
}

// At returns the fraction of observations ≤ x.
func (h *LogHistogram) At(x float64) float64 {
	if h.total == 0 {
		return 0
	}
	bx := h.bucket(x)
	var cum uint64
	for b := 0; b <= bx; b++ {
		cum += h.counts[b]
	}
	return float64(cum) / float64(h.total)
}

// Curve returns the non-empty buckets as CDF points.
func (h *LogHistogram) Curve() []Point {
	if h.total == 0 {
		return nil
	}
	var out []Point
	var cum uint64
	for b, c := range h.counts {
		if c == 0 {
			continue
		}
		cum += c
		out = append(out, Point{X: h.value(b), F: float64(cum) / float64(h.total)})
	}
	return out
}

// AppendBinary appends the histogram's binary encoding to buf and
// returns the extended slice — the allocation-free core of
// MarshalBinary, called directly by the snapshot encoder.
func (h *LogHistogram) AppendBinary(buf []byte) []byte {
	put := func(v uint64) { buf = binary.LittleEndian.AppendUint64(buf, v) }
	put(math.Float64bits(h.min))
	put(uint64(h.perDec))
	put(h.total)
	put(uint64(len(h.counts)))
	for _, c := range h.counts {
		put(c)
	}
	return buf
}

// MarshalBinary encodes the histogram for persistence (gob honors
// encoding.BinaryMarshaler, so datasets containing histograms serialize
// transparently).
func (h *LogHistogram) MarshalBinary() ([]byte, error) {
	return h.AppendBinary(make([]byte, 0, 8*(4+len(h.counts)))), nil
}

// UnmarshalBinary decodes a histogram produced by MarshalBinary.
func (h *LogHistogram) UnmarshalBinary(b []byte) error {
	if len(b) < 32 {
		return errors.New("stats: histogram truncated")
	}
	get := func() uint64 {
		v := binary.LittleEndian.Uint64(b)
		b = b[8:]
		return v
	}
	h.min = math.Float64frombits(get())
	h.perDec = int(get())
	h.total = get()
	n := int(get())
	if n < 0 || n > 1<<20 || len(b) != 8*n {
		return errors.New("stats: histogram length mismatch")
	}
	h.counts = make([]uint64, n)
	for i := range h.counts {
		h.counts[i] = get()
	}
	return nil
}

// TimeSeries accumulates one float64 value per study day.
type TimeSeries struct {
	vals map[int]float64
}

// NewTimeSeries returns an empty series.
func NewTimeSeries() *TimeSeries { return &TimeSeries{vals: make(map[int]float64)} }

// Add accumulates v into day d.
func (t *TimeSeries) Add(d int, v float64) { t.vals[d] += v }

// Get returns day d's value (0 if never touched).
func (t *TimeSeries) Get(d int) float64 { return t.vals[d] }

// Days returns the touched days in ascending order.
func (t *TimeSeries) Days() []int {
	out := make([]int, 0, len(t.vals))
	for d := range t.vals {
		out = append(out, d)
	}
	sort.Ints(out)
	return out
}

// Sum returns the total across all days.
func (t *TimeSeries) Sum() float64 {
	var s float64
	for _, v := range t.vals {
		s += v
	}
	return s
}

// BootstrapCI estimates a (1-alpha) confidence interval for the
// q-quantile of the sample by bootstrap resampling. The scaled studies
// report medians from hundreds rather than hundreds of thousands of
// sandwiches, so EXPERIMENTS.md quotes intervals, not just points.
// Deterministic in rng.
func BootstrapCI(samples []float64, q, alpha float64, iters int, rng *rand.Rand) (lo, hi float64) {
	n := len(samples)
	if n == 0 || iters <= 0 {
		return 0, 0
	}
	ests := make([]float64, iters)
	resample := make([]float64, n)
	for it := 0; it < iters; it++ {
		for i := range resample {
			resample[i] = samples[rng.Intn(n)]
		}
		ests[it] = NewECDF(resample).Quantile(q)
	}
	e := NewECDF(ests)
	return e.Quantile(alpha / 2), e.Quantile(1 - alpha/2)
}

// Pearson returns the Pearson correlation coefficient between two series
// over the days present in both. The paper observes that the decline in
// attacks "may be partially explained by a corresponding increase in
// defensive bundling" (§5) — this makes that observation a number.
// Returns 0 when fewer than two common days exist or either series is
// constant.
func Pearson(a, b *TimeSeries) float64 {
	var xs, ys []float64
	for _, d := range a.Days() {
		if _, ok := b.vals[d]; ok {
			xs = append(xs, a.vals[d])
			ys = append(ys, b.vals[d])
		}
	}
	n := float64(len(xs))
	if n < 2 {
		return 0
	}
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var cov, vx, vy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}

// LinearTrend fits v = a + b*day by least squares and returns the slope b.
// Used to assert direction of the Figure 2 trends (attacks declining,
// defensive bundles rising).
func (t *TimeSeries) LinearTrend() float64 {
	days := t.Days()
	n := float64(len(days))
	if n < 2 {
		return 0
	}
	var sx, sy, sxx, sxy float64
	for _, d := range days {
		x, y := float64(d), t.vals[d]
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0
	}
	return (n*sxy - sx*sy) / den
}

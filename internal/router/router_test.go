package router

import (
	"testing"

	"jitomev/internal/amm"
	"jitomev/internal/solana"
	"jitomev/internal/token"
)

// testUniverse: three memecoins, each with a SOL pool, plus one direct
// A↔B pool that is deliberately shallow.
type testUniverse struct {
	reg        *token.Registry
	a, b, c    token.Mint
	poolA      *amm.Pool // A/SOL deep
	poolB      *amm.Pool // B/SOL deep
	poolC      *amm.Pool // C/SOL deep
	poolABThin *amm.Pool // A/B shallow
	router     *Router
}

func newTestUniverse(t *testing.T) *testUniverse {
	t.Helper()
	u := &testUniverse{reg: token.NewRegistry()}
	u.a = u.reg.NewMemecoin("AAA")
	u.b = u.reg.NewMemecoin("BBB")
	u.c = u.reg.NewMemecoin("CCC")
	sol := token.SOL.Address
	u.poolA = amm.New(u.a.Address, sol, 1e12, 1e12, amm.DefaultFeeBps)
	u.poolB = amm.New(u.b.Address, sol, 1e12, 1e12, amm.DefaultFeeBps)
	u.poolC = amm.New(u.c.Address, sol, 1e12, 1e12, amm.DefaultFeeBps)
	u.poolABThin = amm.New(u.a.Address, u.b.Address, 1e8, 1e8, amm.DefaultFeeBps)
	u.router = New([]*amm.Pool{u.poolA, u.poolB, u.poolC, u.poolABThin})
	return u
}

func TestBestRouteDirect(t *testing.T) {
	u := newTestUniverse(t)
	r, err := u.router.BestRoute(token.SOL.Address, u.a.Address, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Direct() || r.Hops[0].Pool.Address != u.poolA.Address {
		t.Errorf("route %v", r)
	}
	if r.AmountOut == 0 {
		t.Error("zero quote")
	}
}

func TestBestRoutePrefersTwoHopOverThinDirect(t *testing.T) {
	u := newTestUniverse(t)
	// A→B: direct pool is tiny (1e8 reserves); a 1e7 trade there loses
	// ~10% to impact, while A→SOL→B through deep pools loses ~0.5%.
	in := uint64(10_000_000)
	r, err := u.router.BestRoute(u.a.Address, u.b.Address, in)
	if err != nil {
		t.Fatal(err)
	}
	if r.Direct() {
		t.Fatalf("chose thin direct pool: %v", r)
	}
	if len(r.Hops) != 2 {
		t.Fatalf("hops = %d", len(r.Hops))
	}
	if r.Hops[0].OutputMint != token.SOL.Address {
		t.Error("intermediate is not SOL")
	}
	// And the quote must beat the direct pool's.
	direct, err := u.poolABThin.QuoteOut(u.a.Address, in)
	if err != nil {
		t.Fatal(err)
	}
	if r.AmountOut <= direct {
		t.Errorf("two-hop %d not better than thin direct %d", r.AmountOut, direct)
	}
}

func TestBestRoutePrefersDirectForDust(t *testing.T) {
	u := newTestUniverse(t)
	// A 1,000-unit trade barely moves even the thin pool; direct wins by
	// saving a second fee.
	r, err := u.router.BestRoute(u.a.Address, u.b.Address, 1_000)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Direct() {
		t.Errorf("dust trade should route direct: %v", r)
	}
}

func TestBestRouteErrors(t *testing.T) {
	u := newTestUniverse(t)
	if _, err := u.router.BestRoute(u.a.Address, u.a.Address, 100); err != ErrSameMint {
		t.Errorf("same mint: %v", err)
	}
	if _, err := u.router.BestRoute(u.a.Address, u.b.Address, 0); err != ErrZeroInput {
		t.Errorf("zero input: %v", err)
	}
	stranger := solana.NewKeypairFromSeed("stranger-mint").Pubkey()
	if _, err := u.router.BestRoute(u.a.Address, stranger, 100); err != ErrNoRoute {
		t.Errorf("unroutable: %v", err)
	}
}

func TestRouteDeterministic(t *testing.T) {
	u := newTestUniverse(t)
	// Same pools in different input orders must route identically.
	other := New([]*amm.Pool{u.poolABThin, u.poolC, u.poolB, u.poolA})
	for _, in := range []uint64{1_000, 1_000_000, 50_000_000} {
		r1, err1 := u.router.BestRoute(u.a.Address, u.b.Address, in)
		r2, err2 := other.BestRoute(u.a.Address, u.b.Address, in)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("error mismatch: %v vs %v", err1, err2)
		}
		if err1 != nil {
			continue
		}
		if r1.AmountOut != r2.AmountOut || len(r1.Hops) != len(r2.Hops) {
			t.Fatalf("routing depends on pool insertion order at in=%d", in)
		}
	}
}

func TestInstructionsSlippageOnFinalHopOnly(t *testing.T) {
	u := newTestUniverse(t)
	r, err := u.router.BestRoute(u.a.Address, u.b.Address, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if r.Direct() {
		t.Skip("expected two-hop route")
	}
	instrs := r.Instructions(100)
	if len(instrs) != 2 {
		t.Fatalf("instructions = %d", len(instrs))
	}
	first := instrs[0].(*solana.Swap)
	last := instrs[1].(*solana.Swap)
	if first.MinOut != 0 {
		t.Error("intermediate hop carries MinOut")
	}
	want := r.AmountOut * 9_900 / 10_000
	if last.MinOut != want {
		t.Errorf("final MinOut = %d, want %d", last.MinOut, want)
	}
	// The chained input of hop 2 must equal hop 1's quote.
	q, _ := r.Hops[0].Pool.QuoteOut(first.InputMint, first.AmountIn)
	if last.AmountIn != q {
		t.Errorf("hop chaining: %d != %d", last.AmountIn, q)
	}
}

func TestBuildSwap(t *testing.T) {
	u := newTestUniverse(t)
	user := solana.NewKeypairFromSeed("router-user")

	tx, protect, err := u.router.BuildSwap(SwapRequest{
		User: user, In: token.SOL.Address, Out: u.a.Address,
		AmountIn: 5_000_000, SlippageBps: 50, MEVProtect: true, Nonce: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !protect {
		t.Error("MEV protection flag lost")
	}
	if err := tx.Validate(); err != nil {
		t.Fatalf("built tx invalid: %v", err)
	}
	if !tx.HasSwap() {
		t.Error("no swap instruction")
	}
	sw := tx.Instructions[0].(*solana.Swap)
	if sw.MinOut == 0 {
		t.Error("slippage floor missing")
	}

	if _, _, err := u.router.BuildSwap(SwapRequest{
		User: user, In: u.a.Address, Out: u.a.Address, AmountIn: 100, Nonce: 2,
	}); err == nil {
		t.Error("same-mint request accepted")
	}
}

func BenchmarkBestRouteTwoHop(b *testing.B) {
	reg := token.NewRegistry()
	var pools []*amm.Pool
	sol := token.SOL.Address
	mints := make([]token.Mint, 30)
	for i := range mints {
		mints[i] = reg.NewMemecoin(string(rune('A'+i%26)) + "X")
		pools = append(pools, amm.New(mints[i].Address, sol, 1e12, 1e12, amm.DefaultFeeBps))
	}
	r := New(pools)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := r.BestRoute(mints[0].Address, mints[1].Address, 1_000_000); err != nil {
			b.Fatal(err)
		}
	}
}

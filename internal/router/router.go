// Package router implements a Jupiter-like swap aggregator: given a set of
// AMM pools, it quotes the best route between two mints — direct, or
// two-hop through a shared intermediate (in practice SOL, which quotes
// every memecoin pool).
//
// The paper's victims mostly trade through Jupiter, "Solana's largest and
// most popular aggregator" (§3.3), and Jupiter is also where defensive
// bundling enters the picture: its "MEV protection" option wraps the
// routed transaction in a length-1 Jito bundle. The router therefore
// produces exactly the transaction shapes the workload needs — single
// swaps for direct routes, two-swap transactions for hops — and exposes
// the MEV-protection wrapping decision.
package router

import (
	"errors"
	"fmt"
	"sort"

	"jitomev/internal/amm"
	"jitomev/internal/solana"
)

// Errors returned by routing.
var (
	ErrNoRoute   = errors.New("router: no route between mints")
	ErrSameMint  = errors.New("router: input and output mints are equal")
	ErrZeroInput = errors.New("router: zero input amount")
)

// Hop is one pool traversal in a route.
type Hop struct {
	Pool       *amm.Pool
	InputMint  solana.Pubkey
	OutputMint solana.Pubkey
}

// Route is a quoted path from an input mint to an output mint.
type Route struct {
	Hops      []Hop
	AmountIn  uint64
	AmountOut uint64 // quoted output at quote time
}

// Direct reports whether the route is a single pool traversal.
func (r *Route) Direct() bool { return len(r.Hops) == 1 }

// String renders the route for logs.
func (r *Route) String() string {
	s := fmt.Sprintf("route in=%d", r.AmountIn)
	for _, h := range r.Hops {
		s += fmt.Sprintf(" ->[%s]", h.Pool.Address.Short())
	}
	return s + fmt.Sprintf(" out=%d", r.AmountOut)
}

// Router indexes pools by mint pair and by member mint.
type Router struct {
	pools  []*amm.Pool
	byMint map[solana.Pubkey][]*amm.Pool
}

// New builds a router over pool snapshots. The router never mutates pools;
// callers re-quote against fresh snapshots when state may have moved.
func New(pools []*amm.Pool) *Router {
	r := &Router{byMint: make(map[solana.Pubkey][]*amm.Pool)}
	for _, p := range pools {
		r.pools = append(r.pools, p)
		r.byMint[p.MintA] = append(r.byMint[p.MintA], p)
		r.byMint[p.MintB] = append(r.byMint[p.MintB], p)
	}
	// Deterministic candidate order regardless of input order.
	for _, list := range r.byMint {
		sort.Slice(list, func(i, j int) bool {
			return lessKey(list[i].Address, list[j].Address)
		})
	}
	return r
}

func lessKey(a, b solana.Pubkey) bool {
	for i := 0; i < 32; i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// PoolCount returns the number of indexed pools.
func (r *Router) PoolCount() int { return len(r.pools) }

// BestRoute quotes the best route from in to out for amountIn, considering
// every direct pool and every two-hop path through a shared mint, and
// returns the route with the highest quoted output.
func (r *Router) BestRoute(in, out solana.Pubkey, amountIn uint64) (*Route, error) {
	if in == out {
		return nil, ErrSameMint
	}
	if amountIn == 0 {
		return nil, ErrZeroInput
	}

	var best *Route

	consider := func(candidate *Route) {
		if candidate == nil {
			return
		}
		if best == nil || candidate.AmountOut > best.AmountOut {
			best = candidate
		}
	}

	// Direct routes.
	for _, p := range r.byMint[in] {
		if !p.Trades(out) {
			continue
		}
		got, err := p.QuoteOut(in, amountIn)
		if err != nil {
			continue
		}
		consider(&Route{
			Hops:      []Hop{{Pool: p, InputMint: in, OutputMint: out}},
			AmountIn:  amountIn,
			AmountOut: got,
		})
	}

	// Two-hop routes through a shared mint.
	for _, p1 := range r.byMint[in] {
		mid, err := p1.OtherMint(in)
		if err != nil || mid == out {
			continue
		}
		midAmt, err := p1.QuoteOut(in, amountIn)
		if err != nil || midAmt == 0 {
			continue
		}
		for _, p2 := range r.byMint[mid] {
			if p2 == p1 || !p2.Trades(out) {
				continue
			}
			got, err := p2.QuoteOut(mid, midAmt)
			if err != nil {
				continue
			}
			consider(&Route{
				Hops: []Hop{
					{Pool: p1, InputMint: in, OutputMint: mid},
					{Pool: p2, InputMint: mid, OutputMint: out},
				},
				AmountIn:  amountIn,
				AmountOut: got,
			})
		}
	}

	if best == nil {
		return nil, ErrNoRoute
	}
	return best, nil
}

// Instructions converts a route into swap instructions with an overall
// slippage tolerance in basis points applied to the final output. For
// multi-hop routes intermediate hops carry no MinOut (atomic transaction
// execution makes per-hop floors redundant); the final hop enforces the
// user's tolerance.
func (rt *Route) Instructions(slippageBps uint64) []solana.Instruction {
	out := make([]solana.Instruction, 0, len(rt.Hops))
	amountIn := rt.AmountIn
	for i, h := range rt.Hops {
		sw := &solana.Swap{Pool: h.Pool.Address, InputMint: h.InputMint, AmountIn: amountIn}
		if i == len(rt.Hops)-1 && slippageBps > 0 {
			sw.MinOut = rt.AmountOut * (10_000 - slippageBps) / 10_000
		}
		if i < len(rt.Hops)-1 {
			// Chain the quoted intermediate amount into the next hop.
			q, err := h.Pool.QuoteOut(h.InputMint, amountIn)
			if err != nil {
				return nil
			}
			amountIn = q
		}
		out = append(out, sw)
	}
	return out
}

// SwapRequest is what a user asks the aggregator for.
type SwapRequest struct {
	User        *solana.Keypair
	In, Out     solana.Pubkey
	AmountIn    uint64
	SlippageBps uint64
	// MEVProtect selects Jupiter's MEV-protection path: the returned
	// transaction should be submitted inside a length-1 Jito bundle with
	// a minimal tip rather than natively (paper §3.3).
	MEVProtect bool
	Nonce      uint64
}

// BuildSwap quotes and builds the signed transaction for a request. The
// second return value reports whether the caller must wrap it in a
// defensive bundle (MEV protection) or may submit natively.
func (r *Router) BuildSwap(req SwapRequest) (*solana.Transaction, bool, error) {
	route, err := r.BestRoute(req.In, req.Out, req.AmountIn)
	if err != nil {
		return nil, false, err
	}
	instrs := route.Instructions(req.SlippageBps)
	if instrs == nil {
		return nil, false, ErrNoRoute
	}
	tx := solana.NewTransaction(req.User, req.Nonce, 0, instrs...)
	return tx, req.MEVProtect, nil
}

// Package jito models the Jito block engine: the validator-client extension
// that accepts bundles of up to five transactions, orders them by tip, and
// executes each bundle atomically within a block (paper §2.3).
//
// It also defines the record types the Jito Explorer exposes — bundleIds,
// the transactionIds inside each bundle, the bundle's tip, and per-
// transaction balance details — which are the only inputs the paper's
// measurement pipeline ever sees.
package jito

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"

	"jitomev/internal/ledger"
	"jitomev/internal/solana"
)

// MaxBundleTxs is the bundle size limit: "Jito allows users ... to bundle
// up to five transactions per request" (paper §2.3).
const MaxBundleTxs = 5

// NumTipAccounts is the number of designated tip payment accounts the real
// Jito block engine rotates over.
const NumTipAccounts = 8

// TipAccounts are the designated accounts a bundle must tip to be accepted.
var TipAccounts = func() [NumTipAccounts]solana.Pubkey {
	var out [NumTipAccounts]solana.Pubkey
	for i := range out {
		out[i] = solana.NewKeypairFromSeed(fmt.Sprintf("jito/tip-account/%d", i)).Pubkey()
	}
	return out
}()

// IsTipAccount reports whether p is one of the designated tip accounts.
func IsTipAccount(p solana.Pubkey) bool {
	for _, a := range TipAccounts {
		if a == p {
			return true
		}
	}
	return false
}

// BundleID identifies a bundle. Jito assigns bundles their own ids distinct
// from the transactionIds inside (paper §2.3); we derive the id from the
// content so it is stable and collision-free.
type BundleID [32]byte

// String returns the hexadecimal form, matching the Jito Explorer's style.
func (id BundleID) String() string { return hex.EncodeToString(id[:]) }

// Short returns an abbreviated form for logs.
func (id BundleID) Short() string { return hex.EncodeToString(id[:4]) }

// MarshalJSON encodes the id as a hex JSON string.
func (id BundleID) MarshalJSON() ([]byte, error) { return json.Marshal(id.String()) }

// UnmarshalJSON decodes a hex JSON string.
func (id *BundleID) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	raw, err := hex.DecodeString(s)
	if err != nil {
		return fmt.Errorf("bundle id: %w", err)
	}
	if len(raw) != 32 {
		return fmt.Errorf("bundle id: %d bytes, want 32", len(raw))
	}
	copy(id[:], raw)
	return nil
}

// Errors returned by bundle validation and submission.
var (
	ErrEmptyBundle    = errors.New("jito: bundle has no transactions")
	ErrBundleTooLarge = fmt.Errorf("jito: bundle exceeds %d transactions", MaxBundleTxs)
	ErrTipTooSmall    = fmt.Errorf("jito: bundle tip below minimum %d lamports", solana.MinJitoTip)
	ErrNoTipAccount   = errors.New("jito: tip not paid to a designated tip account")
)

// Bundle is an ordered group of transactions submitted for atomic
// execution.
type Bundle struct {
	Txs []*solana.Transaction
}

// NewBundle builds a bundle from transactions in execution order.
func NewBundle(txs ...*solana.Transaction) *Bundle { return &Bundle{Txs: txs} }

// ID derives the bundleId from the contained transaction signatures.
func (b *Bundle) ID() BundleID {
	h := sha256.New()
	h.Write([]byte("jitomev/bundle/"))
	for _, tx := range b.Txs {
		h.Write(tx.Sig[:])
	}
	var id BundleID
	h.Sum(id[:0])
	return id
}

// Len returns the number of transactions in the bundle.
func (b *Bundle) Len() int { return len(b.Txs) }

// Tip returns the total tip the bundle pays into designated tip accounts.
func (b *Bundle) Tip() solana.Lamports {
	var total solana.Lamports
	for _, tx := range b.Txs {
		for _, in := range tx.Instructions {
			if t, ok := in.(*solana.Tip); ok && IsTipAccount(t.TipAccount) {
				total += t.Amount
			}
		}
	}
	return total
}

// TxIDs returns the transaction signatures in bundle order.
func (b *Bundle) TxIDs() []solana.Signature {
	out := make([]solana.Signature, len(b.Txs))
	for i, tx := range b.Txs {
		out[i] = tx.Sig
	}
	return out
}

// Validate checks bundle structure: size bounds, signed member
// transactions, a tip of at least MinJitoTip paid to a designated account.
func (b *Bundle) Validate() error {
	if len(b.Txs) == 0 {
		return ErrEmptyBundle
	}
	if len(b.Txs) > MaxBundleTxs {
		return ErrBundleTooLarge
	}
	for i, tx := range b.Txs {
		if err := tx.Validate(); err != nil {
			return fmt.Errorf("jito: bundle tx %d: %w", i, err)
		}
	}
	if !b.paysTipAccount() {
		return ErrNoTipAccount
	}
	if b.Tip() < solana.MinJitoTip {
		return ErrTipTooSmall
	}
	return nil
}

func (b *Bundle) paysTipAccount() bool {
	for _, tx := range b.Txs {
		for _, in := range tx.Instructions {
			if t, ok := in.(*solana.Tip); ok && IsTipAccount(t.TipAccount) {
				return true
			}
		}
	}
	return false
}

// BundleRecord is what the Explorer's recent-bundles endpoint returns per
// bundle: "Jito's API endpoint only provides the bundleIds, the
// corresponding transactionIds within that bundle, as well as the
// associated Jito tip; it does not provide the full content of included
// transactions" (paper §3.1).
type BundleRecord struct {
	Seq      uint64             `json:"seq"` // monotone acceptance sequence, newest last
	ID       BundleID           `json:"bundleId"`
	Slot     solana.Slot        `json:"slot"`
	UnixMs   int64              `json:"timestamp"`
	TxIDs    []solana.Signature `json:"transactions"`
	TipLamps uint64             `json:"tipLamports"`
}

// NumTxs returns the bundle length.
func (r *BundleRecord) NumTxs() int { return len(r.TxIDs) }

// Equal reports whether two records carry the same data. A nil and an
// empty TxIDs slice compare equal: serialization round trips (gob and
// the snapshot codecs alike) do not preserve that distinction.
func (r *BundleRecord) Equal(o *BundleRecord) bool {
	if r.Seq != o.Seq || r.ID != o.ID || r.Slot != o.Slot ||
		r.UnixMs != o.UnixMs || r.TipLamps != o.TipLamps ||
		len(r.TxIDs) != len(o.TxIDs) {
		return false
	}
	for i := range r.TxIDs {
		if r.TxIDs[i] != o.TxIDs[i] {
			return false
		}
	}
	return true
}

// Tip returns the bundle tip.
func (r *BundleRecord) Tip() solana.Lamports { return solana.Lamports(r.TipLamps) }

// TokenDelta is a per-transaction balance change as serialized by the
// Explorer's detail endpoint.
type TokenDelta struct {
	Owner solana.Pubkey `json:"owner"`
	Mint  solana.Pubkey `json:"mint"`
	Delta int64         `json:"delta"`
}

// TxDetail is what the Explorer's bulk transaction endpoint returns: the
// signer, the token balance changes, the lamport tip, and whether the
// transaction does anything besides tipping. This is deliberately the
// complete input surface of the paper's detector.
type TxDetail struct {
	Sig         solana.Signature `json:"signature"`
	Signer      solana.Pubkey    `json:"signer"`
	Slot        solana.Slot      `json:"slot"`
	Failed      bool             `json:"failed,omitempty"`
	TipLamports uint64           `json:"tipLamports,omitempty"`
	TipOnly     bool             `json:"tipOnly,omitempty"`
	TokenDeltas []TokenDelta     `json:"tokenDeltas,omitempty"`
}

// Equal reports whether two details carry the same data, treating nil
// and empty TokenDeltas as equal (see BundleRecord.Equal).
func (d *TxDetail) Equal(o *TxDetail) bool {
	if d.Sig != o.Sig || d.Signer != o.Signer || d.Slot != o.Slot ||
		d.Failed != o.Failed || d.TipLamports != o.TipLamports ||
		d.TipOnly != o.TipOnly || len(d.TokenDeltas) != len(o.TokenDeltas) {
		return false
	}
	for i := range d.TokenDeltas {
		if d.TokenDeltas[i] != o.TokenDeltas[i] {
			return false
		}
	}
	return true
}

// DetailFromResult converts an execution result into the Explorer's detail
// record.
func DetailFromResult(res *ledger.TxResult, slot solana.Slot) TxDetail {
	d := TxDetail{
		Sig:         res.Sig,
		Signer:      res.Signer,
		Slot:        slot,
		Failed:      res.Err != nil,
		TipLamports: uint64(res.Tip),
		TipOnly:     res.TipOnly,
	}
	if n := len(res.TokenDeltas); n > 0 {
		d.TokenDeltas = make([]TokenDelta, n)
		for i, td := range res.TokenDeltas {
			d.TokenDeltas[i] = TokenDelta{Owner: td.Owner, Mint: td.Mint, Delta: td.Delta}
		}
	}
	return d
}

package jito

import (
	"sort"

	"jitomev/internal/ledger"
	"jitomev/internal/solana"
)

// Accepted describes a bundle that landed on chain, together with the
// execution results the Explorer derives its detail endpoint from.
type Accepted struct {
	Record  BundleRecord
	Details []TxDetail
	// DelaySlots is the inclusion latency: slots between submission and
	// landing. Zero when the engine is uncongested — which is why prior
	// work found higher tips buy "negligible" confirmation-time benefit
	// for length-1 bundles in normal conditions (paper §3.3, ref [1]);
	// only under per-slot capacity pressure does the tip auction turn
	// into a latency queue.
	DelaySlots solana.Slot
}

// Rejection reasons counted by the engine.
type EngineStats struct {
	Submitted        uint64
	AcceptedCount    uint64
	RejectedInvalid  uint64 // failed Validate (size, tip, signatures)
	RejectedExec     uint64 // atomic execution failed (e.g. victim slippage)
	TipsPaid         solana.Lamports
	TxsLanded        uint64
	ByLength         [MaxBundleTxs + 1]uint64 // accepted bundles by length
	RejectedByLength [MaxBundleTxs + 1]uint64 // exec-rejected bundles by length
}

// BlockEngine queues submitted bundles and, once per slot, auctions them by
// tip and executes each atomically against the bank. Higher tips execute
// earlier, which is why "attackers are using Jito tips to prioritize their
// attack bundles, potentially to outbid others attacking the same victim
// transaction" (paper §4.2).
type BlockEngine struct {
	bank    *ledger.Bank
	clock   solana.Clock
	pending []pendingBundle
	seq     uint64
	Stats   EngineStats

	// MaxBundlesPerSlot caps how many bundles one block fits. 0 means
	// unlimited (the default; the real engine's capacity is rarely
	// binding). With a cap, lower-tip bundles queue across slots and the
	// tip auction becomes a latency auction.
	MaxBundlesPerSlot int
}

type pendingBundle struct {
	bundle    *Bundle
	submitted solana.Slot
}

// NewBlockEngine creates an engine executing against bank.
func NewBlockEngine(bank *ledger.Bank, clock solana.Clock) *BlockEngine {
	return &BlockEngine{bank: bank, clock: clock}
}

// Submit queues a bundle for the next slot. Structurally invalid bundles
// are rejected immediately, like the real engine's pre-checks.
func (e *BlockEngine) Submit(b *Bundle) error {
	e.Stats.Submitted++
	if err := b.Validate(); err != nil {
		e.Stats.RejectedInvalid++
		return err
	}
	e.pending = append(e.pending, pendingBundle{bundle: b, submitted: e.bank.Slot()})
	return nil
}

// PendingCount returns the number of queued bundles.
func (e *BlockEngine) PendingCount() int { return len(e.pending) }

// Simulate dry-runs a bundle against current state and rolls everything
// back — the equivalent of Jito's simulateBundle RPC. Searchers use it to
// drop plans invalidated by state that moved between quoting and
// submission, instead of burning a slot on an atomic rejection.
func (e *BlockEngine) Simulate(b *Bundle) ([]*ledger.TxResult, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	e.bank.Checkpoint()
	results, err := e.bank.ExecuteBundle(b.Txs)
	if err != nil {
		e.bank.Rollback()
		return nil, err
	}
	// Undo everything, including the counters the committed bundle bumped.
	e.bank.Rollback()
	e.bank.TxCount -= uint64(len(results))
	for _, r := range results {
		e.bank.FeesCollected -= r.Fee
		e.bank.TipsCollected -= r.Tip
	}
	return results, nil
}

// ProcessSlot executes all pending bundles for the given slot, ordered by
// descending tip (ties broken by submission order for determinism), and
// returns those that landed. Bundles whose atomic execution fails are
// dropped — on the real chain they simply never land, costing the
// submitter nothing, which is the "no financial risk" property defensive
// bundlers and attackers both rely on.
func (e *BlockEngine) ProcessSlot(slot solana.Slot) []*Accepted {
	if len(e.pending) == 0 {
		return nil
	}
	e.bank.SetSlot(slot)

	sort.SliceStable(e.pending, func(i, j int) bool {
		return e.pending[i].bundle.Tip() > e.pending[j].bundle.Tip()
	})
	batch := e.pending
	if e.MaxBundlesPerSlot > 0 && len(batch) > e.MaxBundlesPerSlot {
		batch = batch[:e.MaxBundlesPerSlot]
		e.pending = e.pending[e.MaxBundlesPerSlot:]
	} else {
		e.pending = nil
	}

	accepted := make([]*Accepted, 0, len(batch))
	for _, pb := range batch {
		b := pb.bundle
		results, err := e.bank.ExecuteBundle(b.Txs)
		if err != nil {
			e.Stats.RejectedExec++
			e.Stats.RejectedByLength[b.Len()]++
			continue
		}
		e.seq++
		rec := BundleRecord{
			Seq:      e.seq,
			ID:       b.ID(),
			Slot:     slot,
			UnixMs:   e.clock.TimeOf(slot).UnixMilli(),
			TxIDs:    b.TxIDs(),
			TipLamps: uint64(b.Tip()),
		}
		details := make([]TxDetail, len(results))
		for i, r := range results {
			details[i] = DetailFromResult(r, slot)
		}
		delay := solana.Slot(0)
		if slot > pb.submitted {
			delay = slot - pb.submitted
		}
		accepted = append(accepted, &Accepted{Record: rec, Details: details, DelaySlots: delay})

		e.Stats.AcceptedCount++
		e.Stats.ByLength[b.Len()]++
		e.Stats.TipsPaid += b.Tip()
		e.Stats.TxsLanded += uint64(len(b.Txs))
	}
	return accepted
}

package jito

import (
	"testing"

	"jitomev/internal/solana"
)

// Latency-vs-tip tests, reproducing the claim the paper cites ([1],
// chorus.one): in normal (uncongested) conditions a higher Jito tip on a
// length-1 bundle buys no confirmation-time benefit — which is exactly
// what makes low-tip length-1 bundles classifiable as defensive rather
// than priority-seeking. Under capacity pressure the auction does turn
// into a latency queue, and the tip ordering becomes visible.

func TestUncongestedTipsBuyNoLatency(t *testing.T) {
	f := newFixture(t)
	// No per-slot cap: everything lands in the next slot regardless of tip.
	f.bank.SetSlot(1)
	tips := []solana.Lamports{1_000, 50_000, 2_000_000, 50_000_000}
	for i, tip := range tips {
		if err := f.engine.Submit(NewBundle(f.swapTx(f.alice, uint64(i+1), 1e6, tip))); err != nil {
			t.Fatal(err)
		}
	}
	for _, acc := range f.engine.ProcessSlot(1) {
		if acc.DelaySlots != 0 {
			t.Errorf("uncongested bundle delayed %d slots (tip %d)",
				acc.DelaySlots, acc.Record.TipLamps)
		}
	}
}

func TestCongestedTipsBecomeLatencyAuction(t *testing.T) {
	f := newFixture(t)
	f.engine.MaxBundlesPerSlot = 1

	// Three bundles submitted in the same slot with ascending tips.
	f.bank.SetSlot(10)
	lowest := NewBundle(f.swapTx(f.alice, 1, 1e6, 1_000))
	middle := NewBundle(f.swapTx(f.alice, 2, 1e6, 100_000))
	highest := NewBundle(f.swapTx(f.alice, 3, 1e6, 5_000_000))
	for _, b := range []*Bundle{lowest, middle, highest} {
		if err := f.engine.Submit(b); err != nil {
			t.Fatal(err)
		}
	}

	delays := map[BundleID]solana.Slot{}
	for slot := solana.Slot(10); slot <= 12; slot++ {
		for _, acc := range f.engine.ProcessSlot(slot) {
			delays[acc.Record.ID] = acc.DelaySlots
		}
	}
	if len(delays) != 3 {
		t.Fatalf("%d bundles landed, want 3", len(delays))
	}
	if delays[highest.ID()] != 0 {
		t.Errorf("highest tip delayed %d", delays[highest.ID()])
	}
	if delays[middle.ID()] != 1 {
		t.Errorf("middle tip delay = %d, want 1", delays[middle.ID()])
	}
	if delays[lowest.ID()] != 2 {
		t.Errorf("lowest tip delay = %d, want 2", delays[lowest.ID()])
	}
	if f.engine.PendingCount() != 0 {
		t.Error("queue not drained")
	}
}

func TestCongestionQueueIsTipOrderedAcrossArrivals(t *testing.T) {
	f := newFixture(t)
	f.engine.MaxBundlesPerSlot = 1

	f.bank.SetSlot(1)
	old := NewBundle(f.swapTx(f.alice, 1, 1e6, 1_000)) // early but cheap
	f.engine.Submit(old)
	f.engine.ProcessSlot(2) // lands nothing else; old is alone → lands

	// Refill: a cheap bundle first, then an expensive late arrival.
	cheap := NewBundle(f.swapTx(f.alice, 2, 1e6, 2_000))
	f.engine.Submit(cheap)
	rich := NewBundle(f.swapTx(f.alice, 3, 1e6, 9_000_000))
	f.engine.Submit(rich)

	acc := f.engine.ProcessSlot(3)
	if len(acc) != 1 || acc[0].Record.ID != rich.ID() {
		t.Fatal("late high-tip bundle should jump the queue")
	}
	acc = f.engine.ProcessSlot(4)
	if len(acc) != 1 || acc[0].Record.ID != cheap.ID() {
		t.Fatal("queued cheap bundle should land next")
	}
}

package jito

import (
	"testing"

	"jitomev/internal/solana"
	"jitomev/internal/token"
)

// Auction-interaction tests: the tip ordering is not cosmetic — it decides
// which of two competing attackers lands, and executing first can break a
// later bundle's slippage floors. This is exactly why Figure 4 shows
// attackers tipping three orders of magnitude above benign bundles.

func TestCompetingSandwichersHigherTipWins(t *testing.T) {
	f := newFixture(t)
	carol := solana.NewKeypairFromSeed("carol")
	f.bank.CreditLamports(carol.Pubkey(), 100*solana.LamportsPerSOL)
	f.bank.MintTo(carol.Pubkey(), token.SOL.Address, 1e12)
	f.bank.MintTo(carol.Pubkey(), f.meme.Address, 1e12)

	victimIn := uint64(50_000_000_000) // 5% of the pool
	quote, _ := f.pool.QuoteOut(token.SOL.Address, victimIn)
	minOut := quote * 9_700 / 10_000 // 3% tolerance

	// Both attackers target the same victim trade. Each submits a bundle
	// containing its own copy of the victim's swap (only one can land:
	// the second bundle's victim swap will face a moved pool and fail
	// its MinOut).
	mkAttack := func(atk *solana.Keypair, frontrun uint64, tip solana.Lamports, victimNonce uint64) *Bundle {
		victim := solana.NewTransaction(f.bob, victimNonce, 0,
			&solana.Swap{Pool: f.pool.Address, InputMint: token.SOL.Address,
				AmountIn: victimIn, MinOut: minOut})
		front := solana.NewTransaction(atk, 1, 0,
			&solana.Swap{Pool: f.pool.Address, InputMint: token.SOL.Address, AmountIn: frontrun},
			&solana.Tip{TipAccount: TipAccounts[0], Amount: tip})
		back := solana.NewTransaction(atk, 2, 0,
			&solana.Swap{Pool: f.pool.Address, InputMint: f.meme.Address, AmountIn: frontrun / 2})
		return NewBundle(front, victim, back)
	}

	// Note: both bundles embed the *same* victim intent but as separate
	// transactions (different nonces) — on the real chain it is the same
	// transaction and the second bundle fails on duplicate execution; in
	// either modeling, only one attack extracts value.
	low := mkAttack(f.alice, 10_000_000_000, 100_000, 1)
	high := mkAttack(carol, 10_000_000_000, 5_000_000, 2)

	if err := f.engine.Submit(low); err != nil {
		t.Fatal(err)
	}
	if err := f.engine.Submit(high); err != nil {
		t.Fatal(err)
	}
	acc := f.engine.ProcessSlot(1)

	if len(acc) != 1 {
		t.Fatalf("%d bundles landed, want exactly 1 (loser must fail atomically)", len(acc))
	}
	if acc[0].Details[0].Signer != carol.Pubkey() {
		t.Error("the higher-tipping attacker did not win the auction")
	}
	if f.engine.Stats.RejectedExec != 1 {
		t.Errorf("RejectedExec = %d", f.engine.Stats.RejectedExec)
	}
	// The losing attacker paid nothing: atomic rejection refunds all.
	if got := f.bank.Lamports(f.alice.Pubkey()); got != 100*solana.LamportsPerSOL {
		t.Errorf("losing attacker balance changed: %d", got)
	}
}

func TestTipTieBreaksBySubmissionOrder(t *testing.T) {
	f := newFixture(t)
	b1 := NewBundle(f.swapTx(f.alice, 1, 1e6, 7_777))
	b2 := NewBundle(f.swapTx(f.bob, 1, 1e6, 7_777))
	f.engine.Submit(b1)
	f.engine.Submit(b2)
	acc := f.engine.ProcessSlot(1)
	if len(acc) != 2 {
		t.Fatal("both bundles should land")
	}
	if acc[0].Record.ID != b1.ID() {
		t.Error("equal tips must preserve submission order (stable sort)")
	}
}

func TestPendingBundlesCarryAcrossSlots(t *testing.T) {
	f := newFixture(t)
	f.engine.Submit(NewBundle(f.swapTx(f.alice, 1, 1e6, 1_000)))
	if got := f.engine.ProcessSlot(1); len(got) != 1 {
		t.Fatal("first slot did not process")
	}
	// Nothing pending: later slots are empty, seq does not advance.
	if got := f.engine.ProcessSlot(2); got != nil {
		t.Fatal("empty slot produced bundles")
	}
	f.engine.Submit(NewBundle(f.swapTx(f.alice, 2, 1e6, 1_000)))
	acc := f.engine.ProcessSlot(3)
	if len(acc) != 1 || acc[0].Record.Seq != 2 {
		t.Fatalf("seq should be 2, got %+v", acc[0].Record.Seq)
	}
}

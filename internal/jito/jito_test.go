package jito

import (
	"encoding/json"
	"errors"
	"testing"
	"time"

	"jitomev/internal/amm"
	"jitomev/internal/ledger"
	"jitomev/internal/solana"
	"jitomev/internal/token"
)

type fixture struct {
	bank   *ledger.Bank
	engine *BlockEngine
	pool   *amm.Pool
	meme   token.Mint
	alice  *solana.Keypair
	bob    *solana.Keypair
}

func newFixture(t testing.TB) *fixture {
	t.Helper()
	f := &fixture{
		bank:  ledger.NewBank(),
		alice: solana.NewKeypairFromSeed("alice"),
		bob:   solana.NewKeypairFromSeed("bob"),
	}
	reg := token.NewRegistry()
	f.meme = reg.NewMemecoin("MEME")
	f.pool = amm.New(f.meme.Address, token.SOL.Address, 1e12, 1e12, amm.DefaultFeeBps)
	f.bank.AddPool(f.pool)
	clock := solana.Clock{Genesis: time.Date(2025, 2, 9, 0, 0, 0, 0, time.UTC)}
	f.engine = NewBlockEngine(f.bank, clock)
	for _, kp := range []*solana.Keypair{f.alice, f.bob} {
		f.bank.CreditLamports(kp.Pubkey(), 100*solana.LamportsPerSOL)
		f.bank.MintTo(kp.Pubkey(), token.SOL.Address, 1e12)
		f.bank.MintTo(kp.Pubkey(), f.meme.Address, 1e12)
	}
	return f
}

func (f *fixture) swapTx(kp *solana.Keypair, nonce uint64, in uint64, tip solana.Lamports) *solana.Transaction {
	instrs := []solana.Instruction{
		&solana.Swap{Pool: f.pool.Address, InputMint: token.SOL.Address, AmountIn: in},
	}
	if tip > 0 {
		instrs = append(instrs, &solana.Tip{TipAccount: TipAccounts[0], Amount: tip})
	}
	return solana.NewTransaction(kp, nonce, 0, instrs...)
}

func TestTipAccountsDistinct(t *testing.T) {
	seen := map[solana.Pubkey]bool{}
	for _, a := range TipAccounts {
		if seen[a] {
			t.Fatal("duplicate tip account")
		}
		seen[a] = true
		if !IsTipAccount(a) {
			t.Error("IsTipAccount false for designated account")
		}
	}
	if IsTipAccount(solana.NewKeypairFromSeed("random").Pubkey()) {
		t.Error("IsTipAccount true for random key")
	}
}

func TestBundleIDDeterministicAndDistinct(t *testing.T) {
	f := newFixture(t)
	b1 := NewBundle(f.swapTx(f.alice, 1, 1e6, 1000))
	b2 := NewBundle(f.swapTx(f.alice, 1, 1e6, 1000))
	b3 := NewBundle(f.swapTx(f.alice, 2, 1e6, 1000))
	if b1.ID() != b2.ID() {
		t.Error("identical bundles have different ids")
	}
	if b1.ID() == b3.ID() {
		t.Error("different bundles share an id")
	}
}

func TestBundleIDOrderSensitive(t *testing.T) {
	f := newFixture(t)
	t1 := f.swapTx(f.alice, 1, 1e6, 1000)
	t2 := f.swapTx(f.bob, 1, 1e6, 0)
	if NewBundle(t1, t2).ID() == NewBundle(t2, t1).ID() {
		t.Error("bundle id ignores transaction order")
	}
}

func TestBundleIDJSONRoundTrip(t *testing.T) {
	f := newFixture(t)
	id := NewBundle(f.swapTx(f.alice, 1, 1e6, 1000)).ID()
	b, err := json.Marshal(id)
	if err != nil {
		t.Fatal(err)
	}
	var back BundleID
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != id {
		t.Error("bundle id JSON round trip mismatch")
	}
	if len(id.String()) != 64 {
		t.Errorf("id hex length %d, want 64", len(id.String()))
	}
}

func TestBundleValidate(t *testing.T) {
	f := newFixture(t)

	if err := NewBundle().Validate(); !errors.Is(err, ErrEmptyBundle) {
		t.Errorf("empty bundle: %v", err)
	}

	txs := make([]*solana.Transaction, 6)
	for i := range txs {
		txs[i] = f.swapTx(f.alice, uint64(i), 1e6, 1000)
	}
	if err := NewBundle(txs...).Validate(); !errors.Is(err, ErrBundleTooLarge) {
		t.Errorf("oversized bundle: %v", err)
	}

	noTip := NewBundle(f.swapTx(f.alice, 1, 1e6, 0))
	if err := noTip.Validate(); !errors.Is(err, ErrNoTipAccount) {
		t.Errorf("untipped bundle: %v", err)
	}

	// Tip below the 1000-lamport minimum.
	lowTip := NewBundle(f.swapTx(f.alice, 1, 1e6, 999))
	if err := lowTip.Validate(); !errors.Is(err, ErrTipTooSmall) {
		t.Errorf("low-tip bundle: %v", err)
	}

	// Tip paid to a non-designated account doesn't count.
	stray := solana.NewTransaction(f.alice, 1, 0,
		&solana.Swap{Pool: f.pool.Address, InputMint: token.SOL.Address, AmountIn: 1e6},
		&solana.Tip{TipAccount: solana.NewKeypairFromSeed("stray").Pubkey(), Amount: 1e6})
	if err := NewBundle(stray).Validate(); !errors.Is(err, ErrNoTipAccount) {
		t.Errorf("stray-tip bundle: %v", err)
	}

	ok := NewBundle(f.swapTx(f.alice, 1, 1e6, 1000))
	if err := ok.Validate(); err != nil {
		t.Errorf("valid bundle rejected: %v", err)
	}
}

func TestBundleTipSumsAcrossTxs(t *testing.T) {
	f := newFixture(t)
	b := NewBundle(
		f.swapTx(f.alice, 1, 1e6, 600),
		f.swapTx(f.bob, 1, 1e6, 500),
	)
	if b.Tip() != 1100 {
		t.Errorf("Tip = %d, want 1100", b.Tip())
	}
}

func TestProcessSlotOrdersByTip(t *testing.T) {
	f := newFixture(t)
	low := NewBundle(f.swapTx(f.alice, 1, 1e6, 1_000))
	high := NewBundle(f.swapTx(f.bob, 1, 1e6, 2_000_000))
	if err := f.engine.Submit(low); err != nil {
		t.Fatal(err)
	}
	if err := f.engine.Submit(high); err != nil {
		t.Fatal(err)
	}
	acc := f.engine.ProcessSlot(1)
	if len(acc) != 2 {
		t.Fatalf("accepted %d bundles", len(acc))
	}
	if acc[0].Record.ID != high.ID() {
		t.Error("higher tip did not execute first")
	}
	if acc[0].Record.Seq >= acc[1].Record.Seq {
		t.Error("seq not monotone in execution order")
	}
}

func TestProcessSlotAtomicRejection(t *testing.T) {
	f := newFixture(t)
	// Victim swap with impossible MinOut makes the bundle fail atomically.
	victim := solana.NewTransaction(f.bob, 1, 0,
		&solana.Swap{Pool: f.pool.Address, InputMint: token.SOL.Address,
			AmountIn: 1e6, MinOut: 1 << 60})
	b := NewBundle(
		f.swapTx(f.alice, 1, 1e6, 5_000),
		victim,
		solana.NewTransaction(f.alice, 2, 0,
			&solana.Swap{Pool: f.pool.Address, InputMint: f.meme.Address, AmountIn: 1e5}),
	)
	if err := f.engine.Submit(b); err != nil {
		t.Fatal(err)
	}
	if acc := f.engine.ProcessSlot(1); len(acc) != 0 {
		t.Fatal("failing bundle was accepted")
	}
	if f.engine.Stats.RejectedExec != 1 {
		t.Errorf("RejectedExec = %d", f.engine.Stats.RejectedExec)
	}
	if f.bank.TipsCollected != 0 {
		t.Error("rejected bundle paid tips")
	}
}

func TestProcessSlotRecordsAndDetails(t *testing.T) {
	f := newFixture(t)
	tipTx := solana.NewTransaction(f.alice, 3, 0,
		&solana.Tip{TipAccount: TipAccounts[2], Amount: 7_000})
	b := NewBundle(f.swapTx(f.alice, 1, 2e6, 0), f.swapTx(f.bob, 1, 3e6, 0), tipTx)
	if err := f.engine.Submit(b); err != nil {
		t.Fatal(err)
	}
	acc := f.engine.ProcessSlot(42)
	if len(acc) != 1 {
		t.Fatal("bundle not accepted")
	}
	rec, det := acc[0].Record, acc[0].Details
	if rec.Slot != 42 || rec.NumTxs() != 3 || rec.Tip() != 7_000 {
		t.Errorf("record %+v", rec)
	}
	if len(det) != 3 {
		t.Fatalf("details = %d", len(det))
	}
	if det[0].Signer != f.alice.Pubkey() || det[1].Signer != f.bob.Pubkey() {
		t.Error("detail signers wrong")
	}
	if len(det[0].TokenDeltas) != 2 {
		t.Errorf("tx0 deltas = %v", det[0].TokenDeltas)
	}
	if !det[2].TipOnly || det[2].TipLamports != 7_000 {
		t.Errorf("tip tx detail %+v", det[2])
	}
	if det[0].TipOnly {
		t.Error("swap tx marked tip-only")
	}
	// Timestamp corresponds to slot 42 on the clock.
	wantMs := time.Date(2025, 2, 9, 0, 0, 16, 800e6, time.UTC).UnixMilli()
	if rec.UnixMs != wantMs {
		t.Errorf("UnixMs = %d, want %d", rec.UnixMs, wantMs)
	}
}

func TestEngineStatsByLength(t *testing.T) {
	f := newFixture(t)
	f.engine.Submit(NewBundle(f.swapTx(f.alice, 1, 1e6, 1_000)))
	f.engine.Submit(NewBundle(
		f.swapTx(f.alice, 2, 1e6, 1_000),
		f.swapTx(f.bob, 1, 1e6, 0),
	))
	f.engine.ProcessSlot(1)
	if f.engine.Stats.ByLength[1] != 1 || f.engine.Stats.ByLength[2] != 1 {
		t.Errorf("ByLength = %v", f.engine.Stats.ByLength)
	}
	if f.engine.Stats.TxsLanded != 3 {
		t.Errorf("TxsLanded = %d", f.engine.Stats.TxsLanded)
	}
}

func TestSubmitInvalidCounted(t *testing.T) {
	f := newFixture(t)
	if err := f.engine.Submit(NewBundle()); err == nil {
		t.Fatal("empty bundle accepted")
	}
	if f.engine.Stats.RejectedInvalid != 1 || f.engine.Stats.Submitted != 1 {
		t.Errorf("stats %+v", f.engine.Stats)
	}
}

func TestDetailFromResultFailedTx(t *testing.T) {
	res := &ledger.TxResult{
		Sig:    solana.NewKeypairFromSeed("x").Sign([]byte("m")),
		Signer: solana.NewKeypairFromSeed("x").Pubkey(),
		Err:    errors.New("boom"),
	}
	d := DetailFromResult(res, 9)
	if !d.Failed || d.Slot != 9 {
		t.Errorf("detail %+v", d)
	}
}

func BenchmarkProcessSlotSandwiches(b *testing.B) {
	f := newFixture(b)
	f.bank.CreditLamports(f.alice.Pubkey(), 1<<50)
	f.bank.CreditLamports(f.bob.Pubkey(), 1<<50)
	f.bank.MintTo(f.alice.Pubkey(), token.SOL.Address, 1<<55)
	f.bank.MintTo(f.alice.Pubkey(), f.meme.Address, 1<<55)
	f.bank.MintTo(f.bob.Pubkey(), token.SOL.Address, 1<<55)
	b.ReportAllocs()
	nonce := uint64(0)
	for i := 0; i < b.N; i++ {
		nonce++
		front := f.swapTx(f.alice, nonce, 1e6, 2_000_000)
		nonce++
		victim := f.swapTx(f.bob, nonce, 5e6, 0)
		nonce++
		back := solana.NewTransaction(f.alice, nonce, 0,
			&solana.Swap{Pool: f.pool.Address, InputMint: f.meme.Address, AmountIn: 9e5})
		if err := f.engine.Submit(NewBundle(front, victim, back)); err != nil {
			b.Fatal(err)
		}
		f.engine.ProcessSlot(solana.Slot(i + 1))
	}
}

func TestSimulateDryRun(t *testing.T) {
	f := newFixture(t)
	preA := f.bank.Lamports(f.alice.Pubkey())
	prePool, _ := f.bank.PoolSnapshot(f.pool.Address)
	preTx, preFees, preTips := f.bank.TxCount, f.bank.FeesCollected, f.bank.TipsCollected

	b := NewBundle(f.swapTx(f.alice, 1, 1e6, 5_000))
	results, err := f.engine.Simulate(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || len(results[0].Swaps) != 1 {
		t.Fatalf("simulation results %+v", results)
	}
	// Nothing changed: balances, pool, counters.
	if f.bank.Lamports(f.alice.Pubkey()) != preA {
		t.Error("simulation mutated lamports")
	}
	postPool, _ := f.bank.PoolSnapshot(f.pool.Address)
	if postPool.ReserveA != prePool.ReserveA || postPool.ReserveB != prePool.ReserveB {
		t.Error("simulation mutated pool")
	}
	if f.bank.TxCount != preTx || f.bank.FeesCollected != preFees || f.bank.TipsCollected != preTips {
		t.Error("simulation leaked counters")
	}
	// The same bundle still lands for real afterwards.
	if err := f.engine.Submit(b); err != nil {
		t.Fatal(err)
	}
	if acc := f.engine.ProcessSlot(1); len(acc) != 1 {
		t.Fatal("bundle failed after simulation")
	}
}

func TestSimulateReportsDoomedBundle(t *testing.T) {
	f := newFixture(t)
	doomed := NewBundle(
		f.swapTx(f.alice, 1, 1e6, 5_000),
		solana.NewTransaction(f.bob, 1, 0,
			&solana.Swap{Pool: f.pool.Address, InputMint: token.SOL.Address,
				AmountIn: 1e6, MinOut: 1 << 60}),
	)
	if _, err := f.engine.Simulate(doomed); err == nil {
		t.Fatal("simulation passed a bundle that must fail")
	}
	if f.bank.TxCount != 0 || f.bank.FeesCollected != 0 {
		t.Error("failed simulation leaked state")
	}
}

func TestBundleRecordEqual(t *testing.T) {
	base := BundleRecord{
		Seq:      7,
		ID:       BundleID{1, 2, 3},
		Slot:     99,
		UnixMs:   -12345,
		TipLamps: 1047,
		TxIDs:    []solana.Signature{{1}, {2}, {3}},
	}
	same := base
	same.TxIDs = append([]solana.Signature(nil), base.TxIDs...)
	if !base.Equal(&same) {
		t.Error("identical records compare unequal")
	}
	empty := BundleRecord{}
	emptySlice := BundleRecord{TxIDs: []solana.Signature{}}
	if !empty.Equal(&emptySlice) {
		t.Error("nil vs empty TxIDs must compare equal (serialization does not preserve the distinction)")
	}
	for _, mut := range []func(*BundleRecord){
		func(r *BundleRecord) { r.Seq++ },
		func(r *BundleRecord) { r.ID[0]++ },
		func(r *BundleRecord) { r.Slot++ },
		func(r *BundleRecord) { r.UnixMs++ },
		func(r *BundleRecord) { r.TipLamps++ },
		func(r *BundleRecord) { r.TxIDs = r.TxIDs[:2] },
		func(r *BundleRecord) { r.TxIDs[1][0]++ },
	} {
		mod := base
		mod.TxIDs = append([]solana.Signature(nil), base.TxIDs...)
		mut(&mod)
		if base.Equal(&mod) {
			t.Error("mutated record compares equal")
		}
	}
}

func TestTxDetailEqual(t *testing.T) {
	owner := solana.Pubkey{9}
	base := TxDetail{
		Sig:         solana.Signature{5},
		Signer:      solana.Pubkey{6},
		Slot:        42,
		Failed:      true,
		TipOnly:     false,
		TipLamports: 1000,
		TokenDeltas: []TokenDelta{{Owner: owner, Mint: solana.Pubkey{7}, Delta: -55}},
	}
	same := base
	same.TokenDeltas = append([]TokenDelta(nil), base.TokenDeltas...)
	if !base.Equal(&same) {
		t.Error("identical details compare unequal")
	}
	noDeltas := TxDetail{Sig: base.Sig}
	emptyDeltas := TxDetail{Sig: base.Sig, TokenDeltas: []TokenDelta{}}
	if !noDeltas.Equal(&emptyDeltas) {
		t.Error("nil vs empty Deltas must compare equal")
	}
	mod := same
	mod.TokenDeltas = []TokenDelta{{Owner: owner, Mint: solana.Pubkey{7}, Delta: 55}}
	if base.Equal(&mod) {
		t.Error("flipped delta sign compares equal")
	}
	mod2 := same
	mod2.TipOnly = true
	if base.Equal(&mod2) {
		t.Error("flag change compares equal")
	}
}

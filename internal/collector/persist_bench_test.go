package collector

import (
	"bytes"
	"fmt"
	"io"
	"runtime"
	"sync"
	"testing"

	"jitomev/internal/explorer"
	"jitomev/internal/workload"
)

// The persistence benchmarks run over the shared 20-day Scale=10,000
// bench study — the same dataset scale the analysis benchmarks use —
// so v1-vs-v2 numbers in EXPERIMENTS.md are comparable across PRs.
var (
	persistBenchOnce sync.Once
	persistBenchData *Dataset
)

func benchDataset(b *testing.B) *Dataset {
	b.Helper()
	persistBenchOnce.Do(func() {
		st := workload.New(workload.Params{Seed: 1, Days: 20, Scale: 10_000})
		store := explorer.NewStore()
		c := New(Config{PageLimit: 500}, st.P.Clock(), Direct{Store: store})
		sink := &PollingSink{Store: store, Collector: c}
		st.Run(sink)
		if _, err := c.FetchDetails(); err != nil {
			panic(err)
		}
		persistBenchData = c.Data
	})
	return persistBenchData
}

// BenchmarkSnapshotSave measures checkpoint encoding: the legacy v1
// gzip+gob stream against the v2 sharded columnar format, serial and at
// NumCPU workers. SetBytes reports throughput in snapshot bytes/sec.
func BenchmarkSnapshotSave(b *testing.B) {
	d := benchDataset(b)
	run := func(name string, save func(w io.Writer) error) {
		b.Run(name, func(b *testing.B) {
			var probe bytes.Buffer
			if err := save(&probe); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(probe.Len()))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := save(io.Discard); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	run("v1-gob", d.saveV1)
	run("v2-w1", func(w io.Writer) error { return d.SaveWorkers(w, 1) })
	if n := runtime.NumCPU(); n > 1 {
		run(fmt.Sprintf("v2-w%d", n), func(w io.Writer) error {
			return d.SaveWorkers(w, n)
		})
	}
}

// BenchmarkSnapshotLoad measures checkpoint decoding for the same
// matrix. SetBytes reports throughput in snapshot bytes/sec.
func BenchmarkSnapshotLoad(b *testing.B) {
	d := benchDataset(b)
	var v1, v2 bytes.Buffer
	if err := d.saveV1(&v1); err != nil {
		b.Fatal(err)
	}
	if err := d.Save(&v2); err != nil {
		b.Fatal(err)
	}
	run := func(name string, data []byte, workers int) {
		b.Run(name, func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := LoadDatasetWorkers(bytes.NewReader(data), 200, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	run("v1-gob", v1.Bytes(), 1)
	run("v2-w1", v2.Bytes(), 1)
	if n := runtime.NumCPU(); n > 1 {
		run(fmt.Sprintf("v2-w%d", n), v2.Bytes(), n)
	}
}

package collector

import (
	"jitomev/internal/jito"
	"jitomev/internal/snapshot"
	"jitomev/internal/solana"
	"jitomev/internal/stats"
)

// DayAgg aggregates one study day of collected bundles — the per-day
// series behind Figures 1 and 2. The definition lives in the snapshot
// package (the persistence layer encodes it and cannot import the
// collector); this alias keeps collector.DayAgg the canonical name for
// every consumer.
type DayAgg = snapshot.DayAgg

// Dataset is everything the collector keeps: per-day aggregates and tip
// histograms for all traffic, plus full records (and later, details) for
// length-3 bundles only — the same economy the paper used ("we request the
// detailed transaction information only for bundles of length three",
// §3.1).
type Dataset struct {
	Clock solana.Clock

	Days     map[int]*DayAgg
	TipsLen1 *stats.LogHistogram
	TipsLen3 *stats.LogHistogram

	Len3 []jito.BundleRecord
	// Long holds records of other retained lengths (4–5) when extended
	// detection is enabled; empty under the paper's length-3-only economy.
	Long    []jito.BundleRecord
	Details map[solana.Signature]jito.TxDetail

	// retain selects which bundle lengths keep full records for detail
	// fetching. Length 3 is always retained.
	retain map[int]bool

	// Collected counts every ingested (non-duplicate) bundle; Duplicates
	// counts page entries already seen.
	Collected  uint64
	Duplicates uint64

	seen *dedupWindow
}

// NewDataset builds an empty dataset. windowSize bounds the dedup memory;
// it must comfortably exceed the poll page size (4× is ample, since a page
// can only overlap its immediate predecessors).
func NewDataset(clock solana.Clock, windowSize int) *Dataset {
	if windowSize < 64 {
		windowSize = 64
	}
	return &Dataset{
		Clock:    clock,
		Days:     make(map[int]*DayAgg),
		TipsLen1: stats.NewTipHistogram(),
		TipsLen3: stats.NewTipHistogram(),
		Details:  make(map[solana.Signature]jito.TxDetail),
		retain:   map[int]bool{3: true},
		seen:     newDedupWindow(windowSize),
	}
}

// RetainLengths widens the set of bundle lengths whose full records are
// kept for detail fetching (length 3 is always kept). Call before
// ingestion starts.
func (d *Dataset) RetainLengths(lengths ...int) {
	for _, n := range lengths {
		d.retain[n] = true
	}
}

// day returns the aggregate for the record's day, creating it on demand.
func (d *Dataset) day(rec *jito.BundleRecord) *DayAgg {
	day := d.Clock.DayOf(rec.Slot)
	agg, ok := d.Days[day]
	if !ok {
		agg = &DayAgg{}
		d.Days[day] = agg
	}
	return agg
}

// Ingest folds one page entry into the dataset, returning false for
// duplicates (already collected via an earlier page).
func (d *Dataset) Ingest(rec jito.BundleRecord) bool {
	if !d.seen.add(rec.ID) {
		d.Duplicates++
		return false
	}
	d.Collected++

	n := rec.NumTxs()
	agg := d.day(&rec)
	agg.Bundles++
	agg.Txs += uint64(n)
	if n <= jito.MaxBundleTxs {
		agg.ByLength[n]++
	}

	switch n {
	case 1:
		d.TipsLen1.Add(float64(rec.TipLamps))
		if rec.Tip() <= solana.DefensiveTipCeiling {
			agg.DefensiveCount++
			agg.DefensiveSpend += rec.TipLamps
		} else {
			agg.PriorityCount++
		}
		// Normally length-1 traffic only feeds the aggregates; a capture
		// dataset (fleet partition snapshot) opts records in so a merge
		// can rebuild those aggregates from scratch.
		if d.retain[1] {
			d.Long = append(d.Long, rec)
		}
	case 3:
		d.TipsLen3.Add(float64(rec.TipLamps))
		d.Len3 = append(d.Len3, rec)
	default:
		if d.retain[n] {
			d.Long = append(d.Long, rec)
		}
	}
	return true
}

// DetailsFor returns the aligned detail slice for a length-3 record, and
// whether every member transaction's detail has been fetched.
func (d *Dataset) DetailsFor(rec *jito.BundleRecord) ([]jito.TxDetail, bool) {
	out, ok := d.AppendDetails(make([]jito.TxDetail, 0, len(rec.TxIDs)), rec)
	if !ok {
		return nil, false
	}
	return out, true
}

// AppendDetails appends the record's aligned details to dst and reports
// whether every member transaction's detail is present. Passing a reused
// scratch slice (dst[:0]) keeps the analysis hot loop allocation-free;
// safe to call from concurrent readers once ingestion has finished.
func (d *Dataset) AppendDetails(dst []jito.TxDetail, rec *jito.BundleRecord) ([]jito.TxDetail, bool) {
	for _, id := range rec.TxIDs {
		det, ok := d.Details[id]
		if !ok {
			return dst, false
		}
		dst = append(dst, det)
	}
	return dst, true
}

// SortedDays returns the days present, ascending.
func (d *Dataset) SortedDays() []int {
	ts := stats.NewTimeSeries()
	for day := range d.Days {
		ts.Add(day, 1)
	}
	return ts.Days()
}

// dedupWindow is a fixed-capacity sliding set of bundle ids: membership
// checks for recent ids, eviction of the oldest once full. Pages only ever
// overlap their immediate predecessors, so a window a few pages deep
// deduplicates exactly while using constant memory across a four-month
// collection.
type dedupWindow struct {
	set  map[jito.BundleID]struct{}
	ring []jito.BundleID
	next int
	full bool
}

func newDedupWindow(capacity int) *dedupWindow {
	return &dedupWindow{
		set:  make(map[jito.BundleID]struct{}, capacity),
		ring: make([]jito.BundleID, capacity),
	}
}

// add inserts id, evicting the oldest entry when full. It returns false if
// id was already present.
func (w *dedupWindow) add(id jito.BundleID) bool {
	if _, ok := w.set[id]; ok {
		return false
	}
	if w.full {
		delete(w.set, w.ring[w.next])
	}
	w.ring[w.next] = id
	w.set[id] = struct{}{}
	w.next++
	if w.next == len(w.ring) {
		w.next = 0
		w.full = true
	}
	return true
}

func (w *dedupWindow) len() int { return len(w.set) }

package collector

import (
	"reflect"
	"testing"

	"jitomev/internal/explorer"
	"jitomev/internal/workload"
)

// runStudy drives a small seeded study into a fresh store + polling
// collector, optionally through the pipelined (asynchronous, ordered)
// sink, and returns the collected dataset and collector.
func runStudy(tb testing.TB, pipelined bool) (*Dataset, *Collector) {
	tb.Helper()
	st := workload.New(workload.Params{Seed: 3, Days: 3, Scale: 50_000})
	store := explorer.NewStore()
	coll := New(Config{}, st.P.Clock(), Direct{Store: store})
	sink := &PollingSink{Store: store, Collector: coll, InOutage: st.P.InOutage}
	if pipelined {
		st.RunPipelined(sink, 64) // small buffer: force backpressure
	} else {
		st.Run(sink)
	}
	if _, err := coll.FetchDetails(); err != nil {
		tb.Fatalf("fetching details: %v", err)
	}
	return coll.Data, coll
}

// TestPipelinedSinkMatchesSynchronous is the generation→ingest pipeline's
// fidelity contract: routing every accepted bundle through the bounded
// ordered queue must leave the collected dataset — ingestion order,
// dedup-window state, per-day aggregates, overlap statistics — exactly
// as a synchronous run leaves it. Run under -race this also exercises
// the producer/consumer synchronization (store writes and collector
// polls happen on the ingest goroutine while the study mutates the bank).
func TestPipelinedSinkMatchesSynchronous(t *testing.T) {
	syncData, syncColl := runStudy(t, false)
	pipeData, pipeColl := runStudy(t, true)

	if syncData.Collected == 0 {
		t.Fatal("study collected nothing; comparison is vacuous")
	}
	if !reflect.DeepEqual(syncData, pipeData) {
		t.Errorf("pipelined dataset diverges: collected %d vs %d, len3 %d vs %d",
			syncData.Collected, pipeData.Collected, len(syncData.Len3), len(pipeData.Len3))
	}
	if syncColl.Polls() != pipeColl.Polls() || syncColl.OverlapRate() != pipeColl.OverlapRate() {
		t.Errorf("polling stats diverge: %d/%f vs %d/%f",
			syncColl.Polls(), syncColl.OverlapRate(), pipeColl.Polls(), pipeColl.OverlapRate())
	}
}

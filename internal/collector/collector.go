package collector

import (
	"errors"
	"fmt"

	"jitomev/internal/explorer"
	"jitomev/internal/faults"
	"jitomev/internal/jito"
	"jitomev/internal/obs"
	"jitomev/internal/quality"
	"jitomev/internal/solana"
)

// Config shapes the collection loop after the paper's scraper.
type Config struct {
	// PageLimit is the recent-bundles page size. The paper widened the
	// endpoint from 200 to 50,000; scaled studies shrink it by the same
	// factor as the traffic so the coverage dynamics are preserved.
	PageLimit int
	// DetailBatch caps each bulk transaction-detail request (paper: 10,000).
	DetailBatch int
	// PollEverySlots is the polling cadence; 300 slots is the paper's
	// "roughly every two minutes".
	PollEverySlots solana.Slot
	// DetailLengths widens detail collection beyond the paper's
	// length-3-only economy (e.g. 4 and 5 for extended disguise
	// detection). Length 3 is always collected.
	DetailLengths []int
	// BackfillPages enables spike recovery: when a poll's page shares no
	// bundle with its predecessor (the paper's missed-bundle signal), the
	// collector pages backwards through the `before` cursor up to this
	// many extra pages to recover what scrolled past. 0 reproduces the
	// paper's behaviour (spikes are simply lost).
	BackfillPages int
	// DetailRetries bounds per-batch retry attempts in FetchDetails
	// after the first try; a batch still failing is skipped and its ids
	// stay pending for the next FetchDetails call. 0 selects 2; negative
	// disables retries.
	DetailRetries int
}

// detailRetries resolves the DetailRetries default.
func (c Config) detailRetries() int {
	if c.DetailRetries == 0 {
		return 2
	}
	if c.DetailRetries < 0 {
		return 0
	}
	return c.DetailRetries
}

// Defaults fills zero fields with the paper's values.
func (c Config) Defaults() Config {
	if c.PageLimit == 0 {
		c.PageLimit = explorer.MaxPageLimit
	}
	if c.DetailBatch == 0 {
		c.DetailBatch = explorer.MaxDetailBatch
	}
	if c.PollEverySlots == 0 {
		c.PollEverySlots = 300
	}
	return c
}

// Collector drives polling and detail fetching against a Transport,
// accumulating into a Dataset.
//
// Every tally the collector keeps — polls, overlap pairs, per-class
// faults survived, detail batch outcomes, backfill activity — lives on
// an obs.Registry rather than on bespoke struct fields, so the same
// numbers appear on /metrics, in end-of-run summaries, and in test
// assertions via Registry.Snapshot. The accessor methods below read the
// registry back; collection is sequential (one transport call at a
// time), so the counts are deterministic at any Workers setting.
type Collector struct {
	Cfg  Config
	Data *Dataset

	transport Transport

	// prevPage holds the ids returned by the previous successful poll,
	// for the paper's §3.1 completeness check: "we determine if there is
	// any overlap for the bundles returned in successive calls; if any
	// bundles appear in both, we know we have not missed any."
	prevPage map[jito.BundleID]struct{}

	reg *obs.Registry

	// quality, when attached, receives the coverage-ledger feed: every
	// poll (successful or failed), backfill page, and detail-fetch
	// outcome. Nil is fine — all sentinel methods are nil-safe no-ops.
	quality *quality.Sentinel

	// lastDay is the study day of the newest bundle the collector has
	// seen — the day failed polls are attributed to (a failed poll
	// carries no page to date it by).
	lastDay int

	// Registry handles, bound once in NewObs so the hot loops never take
	// the registry lock.
	polls, pairs, overlapPairs, pollErrors          *obs.Counter
	faultc                                          [faults.NumClasses]*obs.Counter
	detailRequests, detailRetries                   *obs.Counter
	batchOK, batchRetried, batchSkipped             *obs.Counter
	idsRequeued                                     *obs.Counter
	backfillPolls, backfilledBundles, backfillFails *obs.Counter
	pendingGauge                                    *obs.Gauge
	overlapRatio                                    *obs.FloatGauge
}

// New builds a collector over the given transport with a private
// registry.
func New(cfg Config, clock solana.Clock, transport Transport) *Collector {
	return NewObs(cfg, clock, transport, nil)
}

// NewObs builds a collector tallying onto reg (nil selects a private
// registry, so every collector has one to publish and snapshot).
func NewObs(cfg Config, clock solana.Clock, transport Transport, reg *obs.Registry) *Collector {
	cfg = cfg.Defaults()
	data := NewDataset(clock, 4*cfg.PageLimit)
	data.RetainLengths(cfg.DetailLengths...)
	if reg == nil {
		reg = obs.NewRegistry()
	}
	c := &Collector{
		Cfg:       cfg,
		Data:      data,
		transport: transport,
		reg:       reg,
	}
	reg.Help("collector_polls_total", "Successful recent-bundles polls.")
	reg.Help("collector_overlap_pairs_total", "Successive poll pairs sharing at least one bundle (paper §3.1).")
	reg.Help("collector_faults_total", "Transport failures survived by the collection loop, by fault class.")
	reg.Help("collector_detail_batches_total", "Bulk detail batches by final outcome.")
	c.polls = reg.Counter("collector_polls_total")
	c.pairs = reg.Counter("collector_poll_pairs_total")
	c.overlapPairs = reg.Counter("collector_overlap_pairs_total")
	c.pollErrors = reg.Counter("collector_poll_errors_total")
	for class := faults.ClassTransport; class < faults.NumClasses; class++ {
		c.faultc[class] = reg.Counter("collector_faults_total", "class", class.String())
	}
	c.detailRequests = reg.Counter("collector_detail_requests_total")
	c.detailRetries = reg.Counter("collector_detail_retries_total")
	c.batchOK = reg.Counter("collector_detail_batches_total", "outcome", "ok")
	c.batchRetried = reg.Counter("collector_detail_batches_total", "outcome", "retried")
	c.batchSkipped = reg.Counter("collector_detail_batches_total", "outcome", "skipped")
	c.idsRequeued = reg.Counter("collector_detail_ids_requeued_total")
	c.backfillPolls = reg.Counter("collector_backfill_polls_total")
	c.backfilledBundles = reg.Counter("collector_backfill_bundles_total")
	c.backfillFails = reg.Counter("collector_backfill_errors_total")
	c.pendingGauge = reg.Gauge("collector_detail_pending")
	c.overlapRatio = reg.FloatGauge("collector_overlap_ratio")
	return c
}

// Obs returns the registry the collector tallies onto.
func (c *Collector) Obs() *obs.Registry { return c.reg }

// AttachQuality connects a data-quality sentinel: from here on every
// poll, backfill page and detail fetch feeds its coverage ledger.
// Attaching nil detaches.
func (c *Collector) AttachQuality(s *quality.Sentinel) { c.quality = s }

// recordFault counts one classified transport failure (nil is ignored).
func (c *Collector) recordFault(err error) {
	if class := faults.Classify(err); class != faults.ClassNone {
		c.faultc[class].Inc()
	}
}

// traceBinder is the carrier the hardened transport (and the chaos
// wrapper around it) implements: parent subsequent requests under the
// given span context. Sound here because collection is sequential.
type traceBinder interface {
	BindTrace(obs.SpanCtx)
}

// bindTrace parents subsequent transport calls under ctx, when the
// transport supports it.
func (c *Collector) bindTrace(ctx obs.SpanCtx) {
	if tb, ok := c.transport.(traceBinder); ok {
		tb.BindTrace(ctx)
	}
}

// startTrace roots one traced collector operation (nil when no tracer
// is attached or the trace is unsampled) and binds it onto the
// transport; the caller must End it and unbind.
func (c *Collector) startTrace(name string) *obs.Trace {
	tr := c.reg.TracerAttached().StartTrace(name)
	if tr != nil {
		c.bindTrace(tr.Ctx())
	}
	return tr
}

// endTrace unbinds the transport and closes the operation's root span.
func (c *Collector) endTrace(tr *obs.Trace, err error) {
	if tr != nil {
		c.bindTrace(obs.SpanCtx{})
	}
	tr.EndErr(err)
}

// Polls reports successful polls.
func (c *Collector) Polls() uint64 { return c.polls.Value() }

// Pairs reports successive-poll pairs observed (the overlap denominator).
func (c *Collector) Pairs() uint64 { return c.pairs.Value() }

// OverlapPairs reports pairs whose pages shared at least one bundle.
func (c *Collector) OverlapPairs() uint64 { return c.overlapPairs.Value() }

// Errors reports failed polls (transport-level), backfill included.
func (c *Collector) Errors() uint64 { return c.pollErrors.Value() }

// Faults snapshots the per-class tally of every transport failure seen
// by Poll, backfill and FetchDetails — the structured view of what the
// collection survived, and the denominator for arguing coverage under
// faults.
func (c *Collector) Faults() faults.Stats {
	var s faults.Stats
	for class := faults.ClassTransport; class < faults.NumClasses; class++ {
		s[class] = c.faultc[class].Value()
	}
	return s
}

// DetailRequests reports bulk detail calls made by FetchDetails.
func (c *Collector) DetailRequests() uint64 { return c.detailRequests.Value() }

// DetailRetries reports retried detail batches.
func (c *Collector) DetailRetries() uint64 { return c.detailRetries.Value() }

// DetailBatchesFailed reports batches skipped after exhausting retries
// (their ids remain pending and are re-queued by the next FetchDetails).
func (c *Collector) DetailBatchesFailed() uint64 { return c.batchSkipped.Value() }

// BackfillPolls reports spike-recovery pages fetched.
func (c *Collector) BackfillPolls() uint64 { return c.backfillPolls.Value() }

// BackfilledBundles reports bundles recovered by backfill.
func (c *Collector) BackfilledBundles() uint64 { return c.backfilledBundles.Value() }

// BackfillErrors reports backfill pages abandoned on transport failure.
func (c *Collector) BackfillErrors() uint64 { return c.backfillFails.Value() }

// OverlapRate returns the fraction of successive poll pairs whose pages
// shared at least one bundle.
func (c *Collector) OverlapRate() float64 {
	if c.Pairs() == 0 {
		return 0
	}
	return float64(c.OverlapPairs()) / float64(c.Pairs())
}

// Poll performs one recent-bundles request, updates the overlap statistic,
// and ingests the page (oldest entry first, so dataset order tracks chain
// order). When a tracer is attached to the registry the whole poll runs
// as one trace — transport request, backfill, ingest — propagated to the
// server over the wire.
func (c *Collector) Poll() error {
	tr := c.startTrace("collector.poll")
	err := c.poll(tr)
	c.endTrace(tr, err)
	return err
}

func (c *Collector) poll(tr *obs.Trace) error {
	page, err := c.transport.RecentBundles(c.Cfg.PageLimit)
	if err != nil {
		c.pollErrors.Inc()
		c.recordFault(err)
		// Refresh the gauge even on failure: through a fault storm the
		// denominator is not growing, but /statusz must keep showing the
		// live ratio rather than whatever the last success published.
		c.overlapRatio.Set(c.OverlapRate())
		c.quality.ObservePollError()
		return err
	}
	c.polls.Inc()

	cur := make(map[jito.BundleID]struct{}, len(page))
	overlap := false
	for i := range page {
		cur[page[i].ID] = struct{}{}
		if c.prevPage != nil {
			if _, ok := c.prevPage[page[i].ID]; ok {
				overlap = true
			}
		}
	}
	hadPrev := c.prevPage != nil
	if hadPrev {
		c.pairs.Inc()
		if overlap {
			c.overlapPairs.Inc()
		}
	}
	c.overlapRatio.Set(c.OverlapRate())
	c.prevPage = cur

	// A broken pair means bundles scrolled past between polls; with
	// backfill enabled, page backwards through the cursor until the gap
	// is closed or the page budget runs out.
	if hadPrev && !overlap && c.Cfg.BackfillPages > 0 && len(page) > 0 {
		tr.Annotate("overlap_broken")
		c.backfill(tr, page[len(page)-1].Seq)
	}

	newN, dupN := 0, 0
	for i := len(page) - 1; i >= 0; i-- {
		if c.Data.Ingest(page[i]) {
			newN++
		} else {
			dupN++
		}
	}
	if len(page) > 0 {
		// page[0] is the newest entry; its day dates the whole poll.
		c.lastDay = c.Data.Clock.DayOf(page[0].Slot)
	}
	c.quality.ObservePoll(c.lastDay, c.Cfg.PageLimit, newN, dupN, hadPrev, overlap)
	return nil
}

// backfill pages backwards from the cursor, ingesting until it reaches
// already-collected territory or exhausts the page budget. Recovered
// bundles are counted in BackfilledBundles.
func (c *Collector) backfill(tr *obs.Trace, cursor uint64) {
	sp := tr.StartChild("collector.backfill")
	recovered := 0
	defer func() {
		sp.Annotatef("recovered:%d", recovered)
		sp.End()
		if recovered > 0 {
			c.quality.ObserveBackfill(recovered)
		}
	}()
	for page := 0; page < c.Cfg.BackfillPages && cursor > 0; page++ {
		older, err := c.transport.RecentBundlesBefore(cursor, c.Cfg.PageLimit)
		if err != nil {
			sp.MarkError()
			c.pollErrors.Inc()
			c.backfillFails.Inc()
			c.recordFault(err)
			c.overlapRatio.Set(c.OverlapRate())
			c.quality.ObserveBackfillError()
			return
		}
		if len(older) == 0 {
			return
		}
		c.backfillPolls.Inc()
		closed := false
		for i := len(older) - 1; i >= 0; i-- {
			if c.Data.Ingest(older[i]) {
				c.backfilledBundles.Inc()
				recovered++
			} else {
				closed = true
			}
		}
		if closed {
			return // reached bundles we already had: gap closed
		}
		cursor = older[len(older)-1].Seq
	}
}

// ResetOverlapChain forgets the previous page, so the next poll does not
// count toward the overlap statistic. Called when collection resumes after
// an outage: a gap pair says nothing about steady-state coverage.
func (c *Collector) ResetOverlapChain() { c.prevPage = nil }

// ErrDetailShortfall marks a FetchDetails return where some batches
// failed after retries: the fetched count is partial, the failed ids are
// still pending (PendingDetails reports how many), and a later call will
// pick them up again. Callers degrade gracefully — the collected records
// and every already-fetched detail are intact.
var ErrDetailShortfall = errors.New("collector: detail shortfall")

// pendingDetailIDs lists every transaction id of a retained record whose
// detail has not been fetched yet. Recomputed from the dataset each time,
// so the pending queue survives Save/Load checkpoints for free: a resumed
// collection re-derives exactly the shortfall it left off with.
func (c *Collector) pendingDetailIDs() []solana.Signature {
	var pending []solana.Signature
	collect := func(recs []jito.BundleRecord) {
		for i := range recs {
			for _, id := range recs[i].TxIDs {
				if _, ok := c.Data.Details[id]; !ok {
					pending = append(pending, id)
				}
			}
		}
	}
	collect(c.Data.Len3)
	collect(c.Data.Long)
	return pending
}

// PendingDetails counts transaction ids still awaiting details — the
// visible shortfall after a degraded FetchDetails (or before any fetch).
func (c *Collector) PendingDetails() int { return len(c.pendingDetailIDs()) }

// FetchDetails bulk-fetches transaction details for every collected
// length-3 bundle that does not have them yet, in batches of at most
// Cfg.DetailBatch ids. It returns the number of details fetched.
//
// Failure is per batch, not per call: a batch is retried up to
// Cfg.DetailRetries times, and if it still fails it is skipped — its ids
// stay pending (see PendingDetails) and the remaining batches proceed, so
// one bad batch can no longer abort the rest of the fetch or discard
// partial progress. When any batch was skipped the call returns the
// partial fetched count and an error wrapping ErrDetailShortfall.
func (c *Collector) FetchDetails() (int, error) {
	tr := c.startTrace("collector.fetch_details")
	n, err := c.fetchDetails(tr)
	c.endTrace(tr, err)
	return n, err
}

func (c *Collector) fetchDetails(tr *obs.Trace) (int, error) {
	pending := c.pendingDetailIDs()
	tr.Annotatef("pending:%d", len(pending))
	c.pendingGauge.Set(int64(len(pending)))
	retries := c.Cfg.detailRetries()
	fetched, batches, failed := 0, 0, 0
	var lastErr error
	for start := 0; start < len(pending); start += c.Cfg.DetailBatch {
		end := start + c.Cfg.DetailBatch
		if end > len(pending) {
			end = len(pending)
		}
		batches++
		var details []jito.TxDetail
		var err error
		for attempt := 0; attempt <= retries; attempt++ {
			if attempt > 0 {
				c.detailRetries.Inc()
			}
			c.detailRequests.Inc()
			details, err = c.transport.TxDetails(pending[start:end])
			if err == nil {
				if attempt > 0 {
					c.batchRetried.Inc()
				} else {
					c.batchOK.Inc()
				}
				break
			}
			c.recordFault(err)
		}
		if err != nil {
			c.batchSkipped.Inc()
			c.idsRequeued.Add(uint64(end - start))
			failed++
			lastErr = err
			continue
		}
		for _, d := range details {
			c.Data.Details[d.Sig] = d
		}
		fetched += len(details)
	}
	c.pendingGauge.Set(int64(c.PendingDetails()))
	c.quality.ObserveDetails(fetched, c.PendingDetails(), uint64(failed))
	if failed > 0 {
		return fetched, fmt.Errorf("%w: %d of %d batches failed (last: %v), %d ids pending",
			ErrDetailShortfall, failed, batches, lastErr, c.PendingDetails())
	}
	return fetched, nil
}

// PollingSink chains a study into live collection: every accepted bundle
// flows to the explorer store, and whenever chain time crosses the polling
// cadence the collector polls — unless the day is an outage, reproducing
// the grey gaps in Figures 1 and 2.
type PollingSink struct {
	Store     *explorer.Store
	Collector *Collector
	// InOutage reports whether collection is down on a study day.
	InOutage func(day int) bool

	nextPoll  solana.Slot
	wasOutage bool
}

// Accept implements the study sink.
func (p *PollingSink) Accept(day int, acc *jito.Accepted) {
	p.Store.Accept(day, acc)
	if acc.Record.Slot < p.nextPoll {
		return
	}
	p.nextPoll = acc.Record.Slot + p.Collector.Cfg.PollEverySlots
	if p.InOutage != nil && p.InOutage(day) {
		p.wasOutage = true
		return
	}
	if p.wasOutage {
		// First poll after downtime: don't let the gap pair pollute the
		// steady-state overlap statistic.
		p.Collector.ResetOverlapChain()
		p.wasOutage = false
	}
	// Poll errors surface in Collector.Errors; collection continues, as
	// the paper's scraper did across transient failures.
	_ = p.Collector.Poll()
}

package collector

import (
	"compress/gzip"
	"encoding/gob"
	"fmt"
	"io"
	"time"

	"jitomev/internal/jito"
	"jitomev/internal/solana"
	"jitomev/internal/stats"
)

// unixNano converts a persisted genesis timestamp back to time.Time.
func unixNano(ns int64) time.Time { return time.Unix(0, ns).UTC() }

// Dataset persistence: a four-month collection is too valuable to re-run
// (the paper's actual dataset took four months of wall time to gather),
// so the collector can checkpoint what it has and analysis tools can load
// it without regenerating. The format is gzip-compressed gob of a stable
// snapshot struct, versioned for forward compatibility.

// snapshotVersion guards the on-disk layout.
const snapshotVersion = 1

// datasetSnapshot is the persisted form of a Dataset. Only collection
// results travel; transient machinery (dedup window) restarts fresh.
type datasetSnapshot struct {
	Version  int
	Genesis  int64 // UnixNano of the chain clock genesis
	Days     map[int]*DayAgg
	TipsLen1 *stats.LogHistogram
	TipsLen3 *stats.LogHistogram
	Len3     []jito.BundleRecord
	Long     []jito.BundleRecord
	Details  map[solana.Signature]jito.TxDetail

	Collected  uint64
	Duplicates uint64
}

// Save writes the dataset to w. The dedup window is not persisted; a
// loaded dataset resumes collection with a fresh window, which can at
// worst re-ingest a page boundary's worth of duplicates (and they will be
// dropped by the record-level dedup on analysis keys).
func (d *Dataset) Save(w io.Writer) error {
	zw := gzip.NewWriter(w)
	snap := datasetSnapshot{
		Version:    snapshotVersion,
		Genesis:    d.Clock.Genesis.UnixNano(),
		Days:       d.Days,
		TipsLen1:   d.TipsLen1,
		TipsLen3:   d.TipsLen3,
		Len3:       d.Len3,
		Long:       d.Long,
		Details:    d.Details,
		Collected:  d.Collected,
		Duplicates: d.Duplicates,
	}
	if err := gob.NewEncoder(zw).Encode(&snap); err != nil {
		zw.Close()
		return fmt.Errorf("collector: encoding dataset: %w", err)
	}
	if err := zw.Close(); err != nil {
		return fmt.Errorf("collector: flushing dataset: %w", err)
	}
	return nil
}

// LoadDataset reads a dataset previously written by Save. windowSize
// shapes the fresh dedup window for any subsequent ingestion.
func LoadDataset(r io.Reader, windowSize int) (*Dataset, error) {
	zr, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("collector: opening dataset: %w", err)
	}
	defer zr.Close()

	var snap datasetSnapshot
	if err := gob.NewDecoder(zr).Decode(&snap); err != nil {
		return nil, fmt.Errorf("collector: decoding dataset: %w", err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("collector: dataset version %d, want %d", snap.Version, snapshotVersion)
	}

	d := NewDataset(solana.Clock{Genesis: unixNano(snap.Genesis)}, windowSize)
	d.Days = snap.Days
	if d.Days == nil {
		d.Days = make(map[int]*DayAgg)
	}
	if snap.TipsLen1 != nil {
		d.TipsLen1 = snap.TipsLen1
	}
	if snap.TipsLen3 != nil {
		d.TipsLen3 = snap.TipsLen3
	}
	d.Len3 = snap.Len3
	d.Long = snap.Long
	d.Details = snap.Details
	if d.Details == nil {
		d.Details = make(map[solana.Signature]jito.TxDetail)
	}
	d.Collected = snap.Collected
	d.Duplicates = snap.Duplicates

	// Re-seed the dedup window with the most recent records so resumed
	// polling does not double-count the page straddling the checkpoint.
	reseed := func(recs []jito.BundleRecord) {
		start := len(recs) - windowSize
		if start < 0 {
			start = 0
		}
		for _, rec := range recs[start:] {
			d.seen.add(rec.ID)
		}
	}
	reseed(d.Len3)
	reseed(d.Long)
	return d, nil
}

package collector

import (
	"bufio"
	"compress/gzip"
	"encoding/gob"
	"fmt"
	"io"
	"time"

	"jitomev/internal/jito"
	"jitomev/internal/obs"
	"jitomev/internal/snapshot"
	"jitomev/internal/solana"
	"jitomev/internal/stats"
)

// unixNano converts a persisted genesis timestamp back to time.Time.
func unixNano(ns int64) time.Time { return time.Unix(0, ns).UTC() }

// Dataset persistence: a four-month collection is too valuable to re-run
// (the paper's actual dataset took four months of wall time to gather),
// so the collector can checkpoint what it has and analysis tools can load
// it without regenerating. Save writes the sharded columnar v3 format
// (package snapshot): parallel encode/decode, byte-identical output at
// every worker count, self-contained shards carrying pushdown metadata
// for the out-of-core query engine. LoadDataset sniffs the version and
// retains the v2 and v1 (single-stream gzip+gob) formats read-only, so
// every checkpoint ever written stays loadable.

// v1SnapshotVersion guards the legacy gob layout.
const v1SnapshotVersion = 1

// datasetSnapshotV1 is the v1 persisted form of a Dataset, kept for
// decoding old checkpoints (and for benchmarking v2 against v1).
type datasetSnapshotV1 struct {
	Version  int
	Genesis  int64 // UnixNano of the chain clock genesis
	Days     map[int]*DayAgg
	TipsLen1 *stats.LogHistogram
	TipsLen3 *stats.LogHistogram
	Len3     []jito.BundleRecord
	Long     []jito.BundleRecord
	Details  map[solana.Signature]jito.TxDetail

	Collected  uint64
	Duplicates uint64
}

// snapshotView is the persistence view of d: shared slices and maps, no
// copies. The dedup window is deliberately absent; a loaded dataset
// resumes collection with a fresh window (see LoadDataset).
func (d *Dataset) snapshotView() *snapshot.Snapshot {
	return &snapshot.Snapshot{
		Genesis:    d.Clock.Genesis.UnixNano(),
		Days:       d.Days,
		TipsLen1:   d.TipsLen1,
		TipsLen3:   d.TipsLen3,
		Len3:       d.Len3,
		Long:       d.Long,
		Details:    d.Details,
		Collected:  d.Collected,
		Duplicates: d.Duplicates,
	}
}

// Save writes the dataset to w in the v2 snapshot format using every
// core. The dedup window is not persisted; a loaded dataset resumes
// collection with a fresh window, which can at worst re-ingest a page
// boundary's worth of duplicates (and they will be dropped by the
// record-level dedup on analysis keys).
func (d *Dataset) Save(w io.Writer) error {
	return d.SaveWorkers(w, 0)
}

// SaveWorkers is Save with an explicit worker count (0 = all cores,
// 1 = serial). The bytes written are identical for every worker count.
func (d *Dataset) SaveWorkers(w io.Writer, workers int) error {
	return d.SaveWorkersObs(w, workers, nil)
}

// SaveWorkersObs is SaveWorkers recording shard counts, byte totals and
// save duration onto reg (nil = uninstrumented).
func (d *Dataset) SaveWorkersObs(w io.Writer, workers int, reg *obs.Registry) error {
	if err := snapshot.WriteObs(w, d.snapshotView(), workers, reg); err != nil {
		return fmt.Errorf("collector: encoding dataset: %w", err)
	}
	return nil
}

// saveV1 writes the legacy gzip+gob format. Unexported: kept only so
// tests and benchmarks can produce v1 inputs (the golden fixture,
// v1→v2 equivalence, and the before/after benchmark baseline).
func (d *Dataset) saveV1(w io.Writer) error {
	zw := gzip.NewWriter(w)
	snap := datasetSnapshotV1{
		Version:    v1SnapshotVersion,
		Genesis:    d.Clock.Genesis.UnixNano(),
		Days:       d.Days,
		TipsLen1:   d.TipsLen1,
		TipsLen3:   d.TipsLen3,
		Len3:       d.Len3,
		Long:       d.Long,
		Details:    d.Details,
		Collected:  d.Collected,
		Duplicates: d.Duplicates,
	}
	if err := gob.NewEncoder(zw).Encode(&snap); err != nil {
		zw.Close()
		return fmt.Errorf("collector: encoding dataset: %w", err)
	}
	if err := zw.Close(); err != nil {
		return fmt.Errorf("collector: flushing dataset: %w", err)
	}
	return nil
}

// SniffVersion inspects a snapshot stream's leading bytes without
// consuming them and reports the container version: 1 (legacy gzip+gob),
// 2 ("jitosnp2") or 3 ("jitosnp3"). Anything else — a truncated header,
// a foreign file, damaged magic — is a descriptive error, so callers can
// refuse a bad checkpoint before any decoder touches it.
func SniffVersion(br *bufio.Reader) (int, error) {
	head, err := br.Peek(len(snapshot.Magic))
	if err != nil && len(head) < 2 {
		return 0, fmt.Errorf("truncated header: %d bytes, need at least 2", len(head))
	}
	if head[0] == 0x1f && head[1] == 0x8b {
		return 1, nil
	}
	if len(head) < len(snapshot.Magic) {
		return 0, fmt.Errorf("truncated header: %d bytes, need %d", len(head), len(snapshot.Magic))
	}
	switch string(head) {
	case snapshot.Magic:
		return 2, nil
	case snapshot.MagicV3:
		return 3, nil
	}
	return 0, fmt.Errorf("unrecognized header %q — not a dataset snapshot", head)
}

// LoadCheckpoint is the resume loader: it accepts only the current (v3)
// checkpoint format and refuses everything else with a clear, versioned
// error instead of handing a stale archive to a decoder. Resuming
// rewrites the file in place as v3, so pointing -resume at a v1/v2
// archive would silently convert it; a truncated checkpoint means the
// previous run's atomic-save discipline was bypassed. Both deserve a
// loud stop, not a best-effort decode.
func LoadCheckpoint(r io.Reader, windowSize, workers int, reg *obs.Registry) (*Dataset, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	v, err := SniffVersion(br)
	if err != nil {
		return nil, fmt.Errorf("collector: checkpoint: %w", err)
	}
	if v != 3 {
		return nil, fmt.Errorf("collector: checkpoint is a v%d snapshot; resume requires the current v3 format "+
			"(load the archive with `report -load` or start a fresh collection — resuming would rewrite it)", v)
	}
	snap, err := snapshot.ReadObs(br, workers, reg)
	if err != nil {
		return nil, fmt.Errorf("collector: decoding checkpoint: %w", err)
	}
	return datasetFromSnapshot(snap, windowSize), nil
}

// LoadDataset reads a dataset previously written by Save — either
// format; the version is sniffed from the leading bytes. windowSize
// shapes the fresh dedup window for any subsequent ingestion.
func LoadDataset(r io.Reader, windowSize int) (*Dataset, error) {
	return LoadDatasetWorkers(r, windowSize, 0)
}

// LoadDatasetWorkers is LoadDataset with an explicit worker count for
// the v2 parallel decode path (0 = all cores, 1 = serial).
func LoadDatasetWorkers(r io.Reader, windowSize, workers int) (*Dataset, error) {
	return LoadDatasetObs(r, windowSize, workers, nil)
}

// LoadDatasetObs is LoadDatasetWorkers recording shard counts, byte
// totals and load duration onto reg (nil = uninstrumented).
func LoadDatasetObs(r io.Reader, windowSize, workers int, reg *obs.Registry) (*Dataset, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	v, err := SniffVersion(br)
	if err != nil {
		return nil, fmt.Errorf("collector: opening dataset: %w", err)
	}
	var snap *snapshot.Snapshot
	if v == 1 { // gzip magic: the legacy v1 stream
		snap, err = loadV1(br)
	} else {
		snap, err = snapshot.ReadObs(br, workers, reg)
	}
	if err != nil {
		return nil, fmt.Errorf("collector: decoding dataset: %w", err)
	}
	return datasetFromSnapshot(snap, windowSize), nil
}

// loadV1 decodes the legacy single-stream gzip+gob format.
func loadV1(r io.Reader) (*snapshot.Snapshot, error) {
	zr, err := gzip.NewReader(r)
	if err != nil {
		return nil, err
	}
	defer zr.Close()
	var snap datasetSnapshotV1
	if err := gob.NewDecoder(zr).Decode(&snap); err != nil {
		return nil, err
	}
	if snap.Version != v1SnapshotVersion {
		return nil, fmt.Errorf("dataset version %d, want %d", snap.Version, v1SnapshotVersion)
	}
	return &snapshot.Snapshot{
		Genesis:    snap.Genesis,
		Days:       snap.Days,
		TipsLen1:   snap.TipsLen1,
		TipsLen3:   snap.TipsLen3,
		Len3:       snap.Len3,
		Long:       snap.Long,
		Details:    snap.Details,
		Collected:  snap.Collected,
		Duplicates: snap.Duplicates,
	}, nil
}

// datasetFromSnapshot rebuilds a live dataset around the decoded state.
func datasetFromSnapshot(snap *snapshot.Snapshot, windowSize int) *Dataset {
	d := NewDataset(solana.Clock{Genesis: unixNano(snap.Genesis)}, windowSize)
	if snap.Days != nil {
		d.Days = snap.Days
	}
	if snap.TipsLen1 != nil {
		d.TipsLen1 = snap.TipsLen1
	}
	if snap.TipsLen3 != nil {
		d.TipsLen3 = snap.TipsLen3
	}
	d.Len3 = snap.Len3
	d.Long = snap.Long
	if snap.Details != nil {
		d.Details = snap.Details
	}
	d.Collected = snap.Collected
	d.Duplicates = snap.Duplicates

	// Re-seed the dedup window with the most recent records so resumed
	// polling does not double-count the page straddling the checkpoint.
	reseed := func(recs []jito.BundleRecord) {
		start := len(recs) - windowSize
		if start < 0 {
			start = 0
		}
		for _, rec := range recs[start:] {
			d.seen.add(rec.ID)
		}
	}
	reseed(d.Len3)
	reseed(d.Long)
	return d
}

package collector

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"jitomev/internal/explorer"
	"jitomev/internal/faults"
	"jitomev/internal/jito"
	"jitomev/internal/obs"
	"jitomev/internal/solana"
)

// Transport abstracts the explorer API so studies can run either over real
// HTTP (the faithful path) or in-process (the fast path for large scales).
type Transport interface {
	// RecentBundles returns up to limit of the most recent bundles,
	// newest first.
	RecentBundles(limit int) ([]jito.BundleRecord, error)
	// RecentBundlesBefore pages backwards: up to limit bundles whose
	// acceptance sequence is strictly below beforeSeq, newest first.
	// Used by the backfill path to recover spike-overflowed bundles.
	RecentBundlesBefore(beforeSeq uint64, limit int) ([]jito.BundleRecord, error)
	// TxDetails returns details for the given transaction ids; unknown
	// ids are absent from the result.
	TxDetails(ids []solana.Signature) ([]jito.TxDetail, error)
}

// Direct is the in-process transport: it reads the explorer store without
// HTTP. Used for large-scale studies and as the control in transport
// equivalence tests.
type Direct struct {
	Store *explorer.Store
}

// RecentBundles implements Transport.
func (d Direct) RecentBundles(limit int) ([]jito.BundleRecord, error) {
	return d.Store.Recent(limit), nil
}

// RecentBundlesBefore implements Transport.
func (d Direct) RecentBundlesBefore(beforeSeq uint64, limit int) ([]jito.BundleRecord, error) {
	return d.Store.RecentBefore(beforeSeq, limit)
}

// TxDetails implements Transport.
func (d Direct) TxDetails(ids []solana.Signature) ([]jito.TxDetail, error) {
	return d.Store.TxDetails(ids), nil
}

// ErrCircuitOpen is returned (wrapped) when an endpoint's circuit breaker
// is open: recent calls failed persistently and the cooldown has not
// elapsed, so the call is rejected without touching the network.
var ErrCircuitOpen = errors.New("collector: circuit open")

// HTTP is the faithful transport: it speaks the explorer's JSON API like
// the paper's scraper spoke to explorer.jito.wtf, and survives the API's
// documented misbehaviours — throttling (429 + Retry-After), transient
// 5xx, timeouts, oversized or damaged bodies — with capped jittered
// exponential backoff and a per-endpoint circuit breaker. A four-month
// collection rides on this loop, so every failure mode is bounded: retry
// counts, backoff delays, response bytes, consecutive-failure streaks.
type HTTP struct {
	BaseURL string
	Client  *http.Client

	// Context, when non-nil, bounds every request and backoff sleep;
	// cancelling it aborts in-flight collection promptly. nil means
	// context.Background() (a long-lived scraper with no deadline).
	Context context.Context

	// MaxRetries bounds retry attempts after the first try. Retried:
	// transport errors, timeouts, 429 and 5xx. Not retried: other 4xx
	// (a malformed request will not improve) and decode failures of a
	// 200 body (a cached corrupt page may repeat verbatim).
	MaxRetries int
	// Backoff is the base delay between retries (doubled each attempt,
	// jittered ±50%, capped at MaxBackoff).
	Backoff time.Duration
	// MaxBackoff caps the exponential backoff and any server-suggested
	// Retry-After delay, so a hostile header cannot stall the scraper.
	// 0 selects 5s.
	MaxBackoff time.Duration
	// MaxBody bounds how many response-body bytes a single request may
	// buffer through the JSON decoder — a hostile or corrupt payload
	// cannot balloon memory (the same bounded-allocation guarantee
	// snapshot decoding gives). 0 selects 256 MiB, comfortably above the
	// largest legitimate 50,000-bundle page. Bodies cut by the bound
	// surface as truncation errors.
	MaxBody int64

	// BreakerThreshold opens an endpoint's circuit after this many
	// consecutive exhausted calls (0 selects 5); while open, calls fail
	// fast with ErrCircuitOpen until BreakerCooldown (0 selects 2s)
	// elapses, then a single half-open probe decides: success closes the
	// breaker, failure re-opens it for another cooldown.
	BreakerThreshold int
	BreakerCooldown  time.Duration

	// now and sleep are injectable for tests; nil selects the real clock.
	now   func() time.Time
	sleep func(context.Context, time.Duration) error

	mu       sync.Mutex
	breakers map[string]*breaker
	jitterN  uint64

	// Every tally the transport keeps — request attempts, retries,
	// backoff sleeps, Retry-After honors, bytes read, breaker
	// transitions — lives on an obs.Registry under the
	// collector_http_* families. WithObs rebinds the registry; by
	// default each transport gets a private one.
	reg       *obs.Registry
	endpoints map[string]*endpointObs
	breakerTo [3]*obs.Counter // transitions, indexed by target state
	shorted   *obs.Counter

	// traceCtx, when bound, parents a child span around every logical
	// request and rides the wire as a traceparent header. Collection is
	// sequential (one transport call at a time), so a single binding
	// covers the call in flight; BindTrace swaps it per operation.
	traceMu  sync.Mutex
	traceCtx obs.SpanCtx
}

// endpointObs carries the per-endpoint registry handles.
type endpointObs struct {
	attempts   *obs.Counter
	retries    *obs.Counter
	sleeps     *obs.Counter
	sleepSecs  *obs.FloatGauge
	retryAfter *obs.Counter
	bytes      *obs.Counter
	seconds    *obs.Histogram
}

// NewHTTP returns an HTTP transport with sane defaults and a private
// registry.
func NewHTTP(baseURL string) *HTTP {
	h := &HTTP{
		BaseURL:    baseURL,
		Client:     &http.Client{Timeout: 30 * time.Second},
		MaxRetries: 3,
		Backoff:    50 * time.Millisecond,
	}
	h.bindObs(obs.NewRegistry())
	return h
}

// WithContext binds ctx to all subsequent requests and backoff waits.
// It returns h for chaining.
func (h *HTTP) WithContext(ctx context.Context) *HTTP {
	h.Context = ctx
	return h
}

// WithObs rebinds the transport's tallies onto reg (call before the
// first request). It returns h for chaining.
func (h *HTTP) WithObs(reg *obs.Registry) *HTTP {
	if reg != nil {
		h.bindObs(reg)
	}
	return h
}

// bindObs (re)creates the registry handles on reg.
func (h *HTTP) bindObs(reg *obs.Registry) {
	h.reg = reg
	h.endpoints = make(map[string]*endpointObs)
	reg.Help("collector_http_requests_total", "HTTP request attempts (retries included), by endpoint.")
	reg.Help("collector_http_breaker_transitions_total", "Circuit-breaker state transitions.")
	reg.Help("collector_http_request_seconds", "Logical request latency (retries and backoff included), by endpoint.")
	// Backoff and request wall time depend on the clock; exclude them
	// from determinism comparisons.
	reg.Volatile("collector_http_backoff_seconds_total", "collector_http_request_seconds")
	for state, name := range [...]string{"closed", "open", "half_open"} {
		h.breakerTo[state] = reg.Counter("collector_http_breaker_transitions_total", "state", name)
	}
	h.shorted = reg.Counter("collector_http_breaker_shorted_total")
}

// Obs returns the registry the transport tallies onto.
func (h *HTTP) Obs() *obs.Registry { return h.reg }

// BindTrace parents subsequent requests under ctx: each logical call
// runs as a child span (retries, backoff waits and breaker verdicts
// annotated) and propagates the trace over the wire as a traceparent
// header. Bind the zero SpanCtx to detach. Sound because collection is
// sequential — the caller binds its open span, issues the call, then
// rebinds.
func (h *HTTP) BindTrace(ctx obs.SpanCtx) {
	h.traceMu.Lock()
	h.traceCtx = ctx
	h.traceMu.Unlock()
}

// boundTrace reads the current trace binding.
func (h *HTTP) boundTrace() obs.SpanCtx {
	h.traceMu.Lock()
	defer h.traceMu.Unlock()
	return h.traceCtx
}

// BreakerOpens reports breaker transitions to the open state.
func (h *HTTP) BreakerOpens() uint64 { return h.breakerTo[breakerOpen].Value() }

// BreakerShorted reports calls rejected while a breaker was open.
func (h *HTTP) BreakerShorted() uint64 { return h.shorted.Value() }

// obsFor returns the endpoint's handle bundle, creating it lazily. A
// transport built as a struct literal (no NewHTTP, no WithObs) has a nil
// registry; its handles are nil and every record is a no-op.
func (h *HTTP) obsFor(endpoint string) *endpointObs {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.endpoints == nil {
		h.endpoints = make(map[string]*endpointObs)
	}
	eo, ok := h.endpoints[endpoint]
	if !ok {
		eo = &endpointObs{
			attempts:   h.reg.Counter("collector_http_requests_total", "endpoint", endpoint),
			retries:    h.reg.Counter("collector_http_retries_total", "endpoint", endpoint),
			sleeps:     h.reg.Counter("collector_http_backoff_sleeps_total", "endpoint", endpoint),
			sleepSecs:  h.reg.FloatGauge("collector_http_backoff_seconds_total", "endpoint", endpoint),
			retryAfter: h.reg.Counter("collector_http_retry_after_honored_total", "endpoint", endpoint),
			bytes:      h.reg.Counter("collector_http_response_bytes_total", "endpoint", endpoint),
			seconds:    h.reg.Histogram("collector_http_request_seconds", obs.DurationBuckets, "endpoint", endpoint),
		}
		h.endpoints[endpoint] = eo
	}
	return eo
}

func (h *HTTP) ctx() context.Context {
	if h.Context != nil {
		return h.Context
	}
	return context.Background()
}

func (h *HTTP) clock() time.Time {
	if h.now != nil {
		return h.now()
	}
	return time.Now()
}

func (h *HTTP) maxBackoff() time.Duration {
	if h.MaxBackoff <= 0 {
		return 5 * time.Second
	}
	return h.MaxBackoff
}

func (h *HTTP) maxBody() int64 {
	if h.MaxBody <= 0 {
		return 256 << 20
	}
	return h.MaxBody
}

// wait sleeps for d or until ctx is cancelled.
func (h *HTTP) wait(ctx context.Context, d time.Duration) error {
	if h.sleep != nil {
		return h.sleep(ctx, d)
	}
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// retryDelay computes the attempt'th backoff: exponential from Backoff,
// jittered in [0.5, 1.5), capped at MaxBackoff — then raised to any
// server-suggested Retry-After (itself capped at MaxBackoff, so a hostile
// header cannot park the scraper). honored reports whether a Retry-After
// suggestion won over the computed backoff.
func (h *HTTP) retryDelay(attempt int, lastErr error) (_ time.Duration, honored bool) {
	d := h.Backoff
	for i := 1; i < attempt && d < h.maxBackoff(); i++ {
		d *= 2
	}
	if d > h.maxBackoff() {
		d = h.maxBackoff()
	}
	// Deterministic decorrelation jitter: a counter-hashed factor in
	// [0.5, 1.5). No shared rand state, no time dependence.
	h.mu.Lock()
	h.jitterN++
	n := h.jitterN
	h.mu.Unlock()
	x := n * 0x9e3779b97f4a7c15
	x ^= x >> 29
	factor := 0.5 + float64(x&((1<<20)-1))/float64(1<<20)
	d = time.Duration(float64(d) * factor)

	var fe *faults.Error
	if errors.As(lastErr, &fe) && fe.RetryAfter > 0 {
		ra := fe.RetryAfter
		if ra > h.maxBackoff() {
			ra = h.maxBackoff()
		}
		if ra > d {
			d = ra
			honored = true
		}
	}
	return d, honored
}

// breakerFor returns the endpoint's circuit breaker, creating it lazily.
func (h *HTTP) breakerFor(endpoint string) *breaker {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.breakers == nil {
		h.breakers = make(map[string]*breaker)
	}
	br, ok := h.breakers[endpoint]
	if !ok {
		threshold := h.BreakerThreshold
		if threshold <= 0 {
			threshold = 5
		}
		cooldown := h.BreakerCooldown
		if cooldown <= 0 {
			cooldown = 2 * time.Second
		}
		br = &breaker{threshold: threshold, cooldown: cooldown}
		h.breakers[endpoint] = br
	}
	return br
}

// do runs one logical request with the full hardening loop: breaker
// check, bounded retries with capped jittered backoff, Retry-After
// honoring, 429/5xx/transport-error retry. The whole loop runs as one
// child span under the bound trace — retries and backoff annotated, the
// traceparent handed to send for header injection — so a slow call's
// time is attributable from /tracez. On success the caller owns
// resp.Body.
func (h *HTTP) do(endpoint string, send func(ctx context.Context, traceparent string) (*http.Response, error)) (*http.Response, error) {
	ctx := h.ctx()
	eo := h.obsFor(endpoint)
	sp := h.boundTrace().StartChild("http:" + endpoint)
	tp := sp.Ctx().Traceparent()
	started := time.Now()
	finish := func(resp *http.Response, err error) (*http.Response, error) {
		eo.seconds.ObserveExemplar(time.Since(started).Seconds(), sp.TraceID())
		sp.EndErr(err)
		return resp, err
	}
	br := h.breakerFor(endpoint)
	allowed, probe := br.allow(h.clock())
	if probe {
		h.breakerTo[breakerHalfOpen].Inc()
		sp.Annotate("breaker:half_open_probe")
	}
	if !allowed {
		h.shorted.Inc()
		sp.FlagKeep("breaker_open")
		sp.Annotate("breaker:shorted")
		return finish(nil, fmt.Errorf("collector: %s: %w", endpoint, ErrCircuitOpen))
	}
	var lastErr error
	for attempt := 0; attempt <= h.MaxRetries; attempt++ {
		if attempt > 0 {
			eo.retries.Inc()
			delay, honored := h.retryDelay(attempt, lastErr)
			if honored {
				eo.retryAfter.Inc()
			}
			eo.sleeps.Inc()
			eo.sleepSecs.Add(delay.Seconds())
			sp.Annotatef("retry:%d backoff:%s retry_after:%v", attempt, delay.Round(time.Microsecond), honored)
			if err := h.wait(ctx, delay); err != nil {
				lastErr = err
				break
			}
		}
		if err := ctx.Err(); err != nil {
			lastErr = err
			break
		}
		eo.attempts.Inc()
		resp, err := send(ctx, tp)
		if err != nil {
			lastErr = err
			continue
		}
		switch {
		case resp.StatusCode == http.StatusOK:
			if br.success() {
				h.breakerTo[breakerClosed].Inc()
				sp.Annotate("breaker:closed")
			}
			return finish(resp, nil)
		case resp.StatusCode == http.StatusTooManyRequests:
			ra := parseRetryAfter(resp.Header, h.clock)
			drain(resp)
			lastErr = &faults.Error{Class: faults.ClassThrottle, Status: resp.StatusCode, RetryAfter: ra}
		case resp.StatusCode >= 500:
			ra := parseRetryAfter(resp.Header, h.clock)
			drain(resp)
			lastErr = &faults.Error{Class: faults.ClassServer, Status: resp.StatusCode, RetryAfter: ra}
		default:
			// Other 4xx: our request is wrong; retrying cannot help and
			// the server is healthy, so the breaker stays untouched.
			drain(resp)
			return finish(nil, fmt.Errorf("collector: %s: HTTP %d", endpoint, resp.StatusCode))
		}
	}
	if br.failure(h.clock()) {
		h.breakerTo[breakerOpen].Inc()
		sp.FlagKeep("breaker_open")
		sp.Annotate("breaker:opened")
	}
	return finish(nil, fmt.Errorf("collector: %s: retries exhausted: %w", endpoint, lastErr))
}

// drain discards a response body so the connection can be reused.
func drain(resp *http.Response) {
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10)) //nolint:errcheck
	resp.Body.Close()
}

// parseRetryAfter reads a Retry-After header: delay seconds (fractions
// accepted) or an HTTP date. 0 means absent or unparseable.
func parseRetryAfter(hdr http.Header, now func() time.Time) time.Duration {
	v := hdr.Get("Retry-After")
	if v == "" {
		return 0
	}
	if secs, err := strconv.ParseFloat(v, 64); err == nil && secs >= 0 {
		return time.Duration(secs * float64(time.Second))
	}
	if at, err := http.ParseTime(v); err == nil {
		if d := at.Sub(now()); d > 0 {
			return d
		}
	}
	return 0
}

// RecentBundles implements Transport.
func (h *HTTP) RecentBundles(limit int) ([]jito.BundleRecord, error) {
	return h.recent(fmt.Sprintf("%s/api/v1/bundles/recent?limit=%d", h.BaseURL, limit))
}

// RecentBundlesBefore implements Transport.
func (h *HTTP) RecentBundlesBefore(beforeSeq uint64, limit int) ([]jito.BundleRecord, error) {
	return h.recent(fmt.Sprintf("%s/api/v1/bundles/recent?limit=%d&before=%d",
		h.BaseURL, limit, beforeSeq))
}

func (h *HTTP) recent(url string) ([]jito.BundleRecord, error) {
	resp, err := h.do("recent", func(ctx context.Context, traceparent string) (*http.Response, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err != nil {
			return nil, err
		}
		if traceparent != "" {
			req.Header.Set("traceparent", traceparent)
		}
		return h.Client.Do(req)
	})
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var body explorer.RecentResponse
	if err := h.decodeBounded("recent", resp.Body, &body); err != nil {
		return nil, fmt.Errorf("collector: decoding recent bundles: %w", err)
	}
	return body.Bundles, nil
}

// TxDetails implements Transport.
func (h *HTTP) TxDetails(ids []solana.Signature) ([]jito.TxDetail, error) {
	payload, err := json.Marshal(explorer.DetailRequest{IDs: ids})
	if err != nil {
		return nil, err
	}
	url := h.BaseURL + "/api/v1/transactions"
	resp, err := h.do("details", func(ctx context.Context, traceparent string) (*http.Response, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(payload))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		if traceparent != "" {
			req.Header.Set("traceparent", traceparent)
		}
		return h.Client.Do(req)
	})
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var body explorer.DetailResponse
	if err := h.decodeBounded("details", resp.Body, &body); err != nil {
		return nil, fmt.Errorf("collector: decoding tx details: %w", err)
	}
	return body.Transactions, nil
}

// decodeBounded decodes a JSON body read through an io.LimitReader, so a
// hostile or damaged payload is capped at MaxBody bytes. A body cut by
// the cap (or by the wire) classifies as truncation; syntactically
// invalid bytes classify as corruption. Bytes actually read land on the
// endpoint's collector_http_response_bytes_total counter.
func (h *HTTP) decodeBounded(endpoint string, body io.Reader, v any) error {
	cr := &countingReader{r: io.LimitReader(body, h.maxBody())}
	defer func() { h.obsFor(endpoint).bytes.Add(cr.n) }()
	if err := json.NewDecoder(cr).Decode(v); err != nil {
		class := faults.ClassCorrupt
		if errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF) {
			class = faults.ClassTruncate
		}
		return &faults.Error{Class: class, Err: err}
	}
	return nil
}

// countingReader counts bytes delivered by the wrapped reader.
type countingReader struct {
	r io.Reader
	n uint64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += uint64(n)
	return n, err
}

// breaker is a per-endpoint circuit breaker: closed → open after
// `threshold` consecutive exhausted calls, open → half-open after
// `cooldown`, half-open → closed on a successful probe (or back to open
// on a failed one). It protects a months-long collection from hammering
// a down endpoint and gives the server room to recover.
type breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration

	fails    int
	state    int // 0 closed, 1 open, 2 half-open
	openedAt time.Time
}

const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

// allow reports whether a call may proceed now. In the open state it
// admits a single half-open probe once the cooldown has elapsed; probe
// reports that transition, so the caller can count it.
func (b *breaker) allow(now time.Time) (ok, probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true, false
	case breakerOpen:
		if now.Sub(b.openedAt) >= b.cooldown {
			b.state = breakerHalfOpen
			return true, true
		}
		return false, false
	default: // half-open: one probe already in flight
		return false, false
	}
}

// success records a successful call; returns true when it closed a
// half-open breaker.
func (b *breaker) success() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	recovered := b.state == breakerHalfOpen
	b.state = breakerClosed
	b.fails = 0
	return recovered
}

// failure records an exhausted call; returns true when it opened the
// breaker (threshold crossed, or a half-open probe failed).
func (b *breaker) failure(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails++
	if b.state == breakerHalfOpen || (b.state == breakerClosed && b.fails >= b.threshold) {
		b.state = breakerOpen
		b.openedAt = now
		return true
	}
	if b.state == breakerOpen {
		b.openedAt = now
	}
	return false
}

// Package collector implements the paper's measurement pipeline (§3.1):
// poll the explorer's recent-bundles endpoint on a fixed cadence, dedup
// into a dataset, measure the overlap between successive pages to validate
// coverage, and bulk-fetch transaction details for length-3 bundles in
// batches of at most 10,000.
package collector

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"jitomev/internal/explorer"
	"jitomev/internal/jito"
	"jitomev/internal/solana"
)

// Transport abstracts the explorer API so studies can run either over real
// HTTP (the faithful path) or in-process (the fast path for large scales).
type Transport interface {
	// RecentBundles returns up to limit of the most recent bundles,
	// newest first.
	RecentBundles(limit int) ([]jito.BundleRecord, error)
	// RecentBundlesBefore pages backwards: up to limit bundles whose
	// acceptance sequence is strictly below beforeSeq, newest first.
	// Used by the backfill path to recover spike-overflowed bundles.
	RecentBundlesBefore(beforeSeq uint64, limit int) ([]jito.BundleRecord, error)
	// TxDetails returns details for the given transaction ids; unknown
	// ids are absent from the result.
	TxDetails(ids []solana.Signature) ([]jito.TxDetail, error)
}

// Direct is the in-process transport: it reads the explorer store without
// HTTP. Used for large-scale studies and as the control in transport
// equivalence tests.
type Direct struct {
	Store *explorer.Store
}

// RecentBundles implements Transport.
func (d Direct) RecentBundles(limit int) ([]jito.BundleRecord, error) {
	return d.Store.Recent(limit), nil
}

// RecentBundlesBefore implements Transport.
func (d Direct) RecentBundlesBefore(beforeSeq uint64, limit int) ([]jito.BundleRecord, error) {
	return d.Store.RecentBefore(beforeSeq, limit), nil
}

// TxDetails implements Transport.
func (d Direct) TxDetails(ids []solana.Signature) ([]jito.TxDetail, error) {
	return d.Store.TxDetails(ids), nil
}

// HTTP is the faithful transport: it speaks the explorer's JSON API like
// the paper's scraper spoke to explorer.jito.wtf, including backing off on
// HTTP 429.
type HTTP struct {
	BaseURL string
	Client  *http.Client

	// MaxRetries bounds retry attempts on 429 or transient errors.
	MaxRetries int
	// Backoff is the base delay between retries (doubled each attempt).
	Backoff time.Duration
}

// NewHTTP returns an HTTP transport with sane defaults.
func NewHTTP(baseURL string) *HTTP {
	return &HTTP{
		BaseURL:    baseURL,
		Client:     &http.Client{Timeout: 30 * time.Second},
		MaxRetries: 3,
		Backoff:    50 * time.Millisecond,
	}
}

func (h *HTTP) do(req func() (*http.Response, error)) (*http.Response, error) {
	backoff := h.Backoff
	var lastErr error
	for attempt := 0; attempt <= h.MaxRetries; attempt++ {
		if attempt > 0 {
			time.Sleep(backoff)
			backoff *= 2
		}
		resp, err := req()
		if err != nil {
			lastErr = err
			continue
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			resp.Body.Close()
			lastErr = fmt.Errorf("collector: throttled (429)")
			continue
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			return nil, fmt.Errorf("collector: HTTP %d", resp.StatusCode)
		}
		return resp, nil
	}
	return nil, fmt.Errorf("collector: retries exhausted: %w", lastErr)
}

// RecentBundles implements Transport.
func (h *HTTP) RecentBundles(limit int) ([]jito.BundleRecord, error) {
	return h.recent(fmt.Sprintf("%s/api/v1/bundles/recent?limit=%d", h.BaseURL, limit))
}

// RecentBundlesBefore implements Transport.
func (h *HTTP) RecentBundlesBefore(beforeSeq uint64, limit int) ([]jito.BundleRecord, error) {
	return h.recent(fmt.Sprintf("%s/api/v1/bundles/recent?limit=%d&before=%d",
		h.BaseURL, limit, beforeSeq))
}

func (h *HTTP) recent(url string) ([]jito.BundleRecord, error) {
	resp, err := h.do(func() (*http.Response, error) { return h.Client.Get(url) })
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var body explorer.RecentResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, fmt.Errorf("collector: decoding recent bundles: %w", err)
	}
	return body.Bundles, nil
}

// TxDetails implements Transport.
func (h *HTTP) TxDetails(ids []solana.Signature) ([]jito.TxDetail, error) {
	payload, err := json.Marshal(explorer.DetailRequest{IDs: ids})
	if err != nil {
		return nil, err
	}
	url := h.BaseURL + "/api/v1/transactions"
	resp, err := h.do(func() (*http.Response, error) {
		return h.Client.Post(url, "application/json", bytes.NewReader(payload))
	})
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var body explorer.DetailResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, fmt.Errorf("collector: decoding tx details: %w", err)
	}
	return body.Transactions, nil
}

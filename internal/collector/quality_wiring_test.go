package collector

// Quality-sentinel wiring: the coverage ledger must see every poll —
// successful, failed, and backfill — and the overlap gauge must stay
// fresh through a fault storm instead of holding whatever the last
// successful poll published.

import (
	"testing"

	"jitomev/internal/faults"
	"jitomev/internal/jito"
	"jitomev/internal/obs"
	"jitomev/internal/quality"
	"jitomev/internal/solana"
)

// stormTransport fails RecentBundles on a fixed schedule.
type stormTransport struct {
	Direct
	calls int
	fail  func(call int) bool
}

func (s *stormTransport) RecentBundles(limit int) ([]jito.BundleRecord, error) {
	s.calls++
	if s.fail != nil && s.fail(s.calls) {
		return nil, &faults.Error{Class: faults.ClassTimeout}
	}
	return s.Direct.RecentBundles(limit)
}

func TestOverlapGaugeFreshUnderFaultStorm(t *testing.T) {
	store := seededStore(10, 1)
	tr := &stormTransport{Direct: Direct{Store: store}, fail: func(call int) bool { return call%2 == 0 }}
	reg := obs.NewRegistry()
	c := NewObs(Config{PageLimit: 5}, testClock, tr, reg)
	q := quality.New(quality.Config{}, reg)
	c.AttachQuality(q)

	gauge := reg.FloatGauge("collector_overlap_ratio")
	okPolls, failPolls := 0, 0
	for i := 0; i < 12; i++ {
		if err := c.Poll(); err != nil {
			failPolls++
		} else {
			okPolls++
		}
		// The gauge must track the live ratio after every poll, failed
		// ones included. Poison it before each check so a stale (not
		// rewritten) value is caught, not just a coincidentally equal one.
		if got, want := gauge.Value(), c.OverlapRate(); got != want {
			t.Fatalf("poll %d: gauge %v != live rate %v", i, got, want)
		}
		gauge.Set(-1)
	}
	if okPolls == 0 || failPolls == 0 {
		t.Fatalf("storm did not mix outcomes: ok=%d fail=%d", okPolls, failPolls)
	}

	sum := q.LedgerSummary()
	if int(sum.PollsOK) != okPolls || int(sum.PollsFailed) != failPolls {
		t.Errorf("ledger polls ok=%d fail=%d, want %d/%d", sum.PollsOK, sum.PollsFailed, okPolls, failPolls)
	}
	if sum.PollFailureRate == 0 {
		t.Error("ledger poll failure rate not populated")
	}
	// The drift detector saw the same storm.
	var pollFail quality.DetectorState
	for _, d := range q.DriftState() {
		if d.Name == "poll_failure_rate" {
			pollFail = d
		}
	}
	if pollFail.Samples != uint64(okPolls+failPolls) || pollFail.Value == 0 {
		t.Errorf("poll failure detector %+v", pollFail)
	}
}

func TestBackfillFeedsLedger(t *testing.T) {
	store := seededStore(5, 1)
	reg := obs.NewRegistry()
	c := NewObs(Config{PageLimit: 5, BackfillPages: 10}, testClock, Direct{Store: store}, reg)
	q := quality.New(quality.Config{}, reg)
	c.AttachQuality(q)

	if err := c.Poll(); err != nil {
		t.Fatal(err)
	}
	// A spike larger than the page breaks the pair; backfill recovers it.
	for i := 6; i <= 25; i++ {
		store.Accept(0, fakeAccepted(i, 1, solana.Slot(i), 1_000))
	}
	if err := c.Poll(); err != nil {
		t.Fatal(err)
	}
	sum := q.LedgerSummary()
	if sum.Gaps != 1 {
		t.Fatalf("ledger gaps = %d, want 1", sum.Gaps)
	}
	if sum.BackfillRecovered == 0 {
		t.Fatal("backfill recovery not recorded in ledger")
	}
	if sum.BackfillRecovered != c.BackfilledBundles() {
		t.Errorf("ledger recovered %d != collector counter %d", sum.BackfillRecovered, c.BackfilledBundles())
	}
	// Recovery is credited against the missed estimate.
	if max := sum.Gaps * uint64(c.Cfg.PageLimit); sum.EstimatedMissed >= max {
		t.Errorf("estimated missed %d not credited (cap %d)", sum.EstimatedMissed, max)
	}
	if reg.Value("quality_page_gaps_total") != 1 {
		t.Errorf("gap counter = %v", reg.Value("quality_page_gaps_total"))
	}
}

func TestBackfillErrorFeedsLedgerAndGauge(t *testing.T) {
	store := seededStore(5, 1)
	reg := obs.NewRegistry()
	c := NewObs(Config{PageLimit: 5, BackfillPages: 3}, testClock, failingBefore{Direct{Store: store}}, reg)
	q := quality.New(quality.Config{}, reg)
	c.AttachQuality(q)

	if err := c.Poll(); err != nil {
		t.Fatal(err)
	}
	for i := 6; i <= 25; i++ {
		store.Accept(0, fakeAccepted(i, 1, solana.Slot(i), 1_000))
	}
	gauge := reg.FloatGauge("collector_overlap_ratio")
	gauge.Set(-1)
	if err := c.Poll(); err != nil {
		t.Fatalf("poll should survive backfill failure: %v", err)
	}
	if got := gauge.Value(); got != c.OverlapRate() {
		t.Errorf("gauge %v != live rate %v after backfill failure", got, c.OverlapRate())
	}
	sum := q.LedgerSummary()
	if sum.BackfillErrors != 1 {
		t.Errorf("ledger backfill errors = %d, want 1", sum.BackfillErrors)
	}
	if sum.Gaps != 1 {
		t.Errorf("ledger gaps = %d, want 1", sum.Gaps)
	}
}

// TestDetailFeed pins FetchDetails → sentinel flow.
func TestDetailFeed(t *testing.T) {
	store := seededStore(4, 3)
	reg := obs.NewRegistry()
	c := NewObs(Config{PageLimit: 100, DetailBatch: 6}, testClock, Direct{Store: store}, reg)
	q := quality.New(quality.Config{}, reg)
	c.AttachQuality(q)
	if err := c.Poll(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.FetchDetails(); err != nil {
		t.Fatal(err)
	}
	// 4 length-3 bundles fully fetched → detail completeness is clean.
	sum := q.LedgerSummary()
	if sum.NewBundles != 4 {
		t.Errorf("ledger new bundles = %d, want 4", sum.NewBundles)
	}
}

package collector

// Resilience tests: the hardened HTTP loop (5xx retry, Retry-After,
// backoff cap, bounded bodies, circuit breaker) and the gracefully
// degrading collection paths (per-batch detail retry and requeue,
// backfill under failure, overlap-chain hygiene across outages, pending
// queue resume across checkpoints).

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"jitomev/internal/explorer"
	"jitomev/internal/faults"
	"jitomev/internal/jito"
	"jitomev/internal/solana"
)

// instantSleep makes retry waits immediate while preserving cancellation.
func instantSleep(ctx context.Context, _ time.Duration) error { return ctx.Err() }

func seededStore(n, bundleLen int) *explorer.Store {
	store := explorer.NewStore()
	for i := 1; i <= n; i++ {
		store.Accept(0, fakeAccepted(i, bundleLen, solana.Slot(i), 1_000))
	}
	return store
}

func TestHTTPRetries5xx(t *testing.T) {
	store := seededStore(10, 1)
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			http.Error(w, "bad gateway", http.StatusBadGateway)
			return
		}
		explorer.NewServer(store, 0).ServeHTTP(w, r)
	}))
	defer srv.Close()

	tr := NewHTTP(srv.URL)
	tr.Backoff = time.Millisecond
	page, err := tr.RecentBundles(5)
	if err != nil {
		t.Fatalf("5xx should be retried: %v", err)
	}
	if len(page) != 5 || hits.Load() != 3 {
		t.Errorf("page=%d hits=%d", len(page), hits.Load())
	}
}

func TestHTTPDoesNotRetryClient4xx(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, "bad request", http.StatusBadRequest)
	}))
	defer srv.Close()
	tr := NewHTTP(srv.URL)
	tr.Backoff = time.Millisecond
	if _, err := tr.RecentBundles(5); err == nil {
		t.Fatal("400 should fail")
	}
	if hits.Load() != 1 {
		t.Errorf("400 retried: %d hits", hits.Load())
	}
}

func TestHTTPHonorsRetryAfter(t *testing.T) {
	store := seededStore(5, 1)
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 1 {
			w.Header().Set("Retry-After", "0.08")
			http.Error(w, "throttled", http.StatusTooManyRequests)
			return
		}
		explorer.NewServer(store, 0).ServeHTTP(w, r)
	}))
	defer srv.Close()

	tr := NewHTTP(srv.URL)
	tr.Backoff = time.Millisecond // far below the advertised 80ms
	start := time.Now()
	if _, err := tr.RecentBundles(3); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 60*time.Millisecond {
		t.Errorf("Retry-After ignored: recovered in %v, server asked for 80ms", elapsed)
	}
}

func TestRetryDelayCapAndJitter(t *testing.T) {
	h := &HTTP{Backoff: 10 * time.Millisecond, MaxBackoff: 80 * time.Millisecond}
	for attempt := 1; attempt <= 12; attempt++ {
		d, _ := h.retryDelay(attempt, nil)
		if d > 120*time.Millisecond { // 1.5 × cap
			t.Fatalf("attempt %d: delay %v exceeds jittered cap", attempt, d)
		}
		if d <= 0 {
			t.Fatalf("attempt %d: non-positive delay %v", attempt, d)
		}
	}
	// Deep attempts saturate at the cap (within jitter bounds).
	if d, _ := h.retryDelay(10, nil); d < 40*time.Millisecond {
		t.Errorf("attempt 10 delay %v below 0.5×cap", d)
	}
	// Server-suggested delay dominates a smaller backoff…
	ra := &faults.Error{Class: faults.ClassThrottle, RetryAfter: 60 * time.Millisecond}
	if d, _ := h.retryDelay(1, ra); d < 60*time.Millisecond {
		t.Errorf("Retry-After not honored: %v", d)
	}
	// …but a hostile header is capped at MaxBackoff.
	hostile := &faults.Error{Class: faults.ClassThrottle, RetryAfter: time.Hour}
	if d, _ := h.retryDelay(1, hostile); d > 120*time.Millisecond {
		t.Errorf("hostile Retry-After not capped: %v", d)
	}
}

func TestHTTPBoundedBody(t *testing.T) {
	store := seededStore(200, 1)
	srv := httptest.NewServer(explorer.NewServer(store, 0))
	defer srv.Close()

	tr := NewHTTP(srv.URL)
	tr.MaxRetries = 0
	tr.MaxBody = 64 // far below the legitimate page's JSON
	_, err := tr.RecentBundles(200)
	if err == nil {
		t.Fatal("oversized body decoded despite MaxBody")
	}
	if got := faults.Classify(err); got != faults.ClassTruncate {
		t.Errorf("bounded body classified as %v (%v)", got, err)
	}
	// With the default bound the same page decodes fine.
	tr2 := NewHTTP(srv.URL)
	if page, err := tr2.RecentBundles(200); err != nil || len(page) != 200 {
		t.Fatalf("legitimate page failed: %v (%d)", err, len(page))
	}
}

func TestHTTPContextCancellation(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer srv.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tr := NewHTTP(srv.URL).WithContext(ctx)
	tr.Backoff = time.Millisecond
	start := time.Now()
	_, err := tr.RecentBundles(1)
	if err == nil {
		t.Fatal("cancelled context should abort")
	}
	if time.Since(start) > time.Second {
		t.Error("cancelled context still waited through retries")
	}
}

func TestCircuitBreaker(t *testing.T) {
	var healthy atomic.Bool
	var hits atomic.Int64
	store := seededStore(5, 1)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		if !healthy.Load() {
			http.Error(w, "down", http.StatusServiceUnavailable)
			return
		}
		explorer.NewServer(store, 0).ServeHTTP(w, r)
	}))
	defer srv.Close()

	now := time.Unix(1000, 0)
	tr := NewHTTP(srv.URL)
	tr.Backoff = time.Millisecond
	tr.MaxRetries = 0
	tr.BreakerThreshold = 2
	tr.BreakerCooldown = time.Minute
	tr.now = func() time.Time { return now }
	tr.sleep = instantSleep

	// Two exhausted calls open the breaker.
	for i := 0; i < 2; i++ {
		if _, err := tr.RecentBundles(1); err == nil {
			t.Fatal("unhealthy server succeeded")
		}
	}
	if tr.BreakerOpens() != 1 {
		t.Fatalf("BreakerOpens = %d", tr.BreakerOpens())
	}

	// While open, calls are shorted without touching the server.
	before := hits.Load()
	_, err := tr.RecentBundles(1)
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("open breaker returned %v", err)
	}
	if hits.Load() != before || tr.BreakerShorted() != 1 {
		t.Errorf("open breaker hit server (%d → %d), shorted=%d", before, hits.Load(), tr.BreakerShorted())
	}

	// After the cooldown, a half-open probe against a still-down server
	// re-opens…
	now = now.Add(2 * time.Minute)
	if _, err := tr.RecentBundles(1); err == nil || errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("half-open probe should reach the server and fail: %v", err)
	}
	if _, err := tr.RecentBundles(1); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("failed probe should re-open: %v", err)
	}

	// …and once the server recovers, the probe closes the breaker for
	// good.
	healthy.Store(true)
	now = now.Add(2 * time.Minute)
	if _, err := tr.RecentBundles(1); err != nil {
		t.Fatalf("recovery probe failed: %v", err)
	}
	if _, err := tr.RecentBundles(1); err != nil {
		t.Fatalf("closed breaker rejected call: %v", err)
	}
}

// flakyDetails fails TxDetails while broken, then heals.
type flakyDetails struct {
	Direct
	broken    func(ids []solana.Signature) bool
	detCalls  int
	pageCalls int
}

func (f *flakyDetails) TxDetails(ids []solana.Signature) ([]jito.TxDetail, error) {
	f.detCalls++
	if f.broken != nil && f.broken(ids) {
		return nil, &faults.Error{Class: faults.ClassServer, Status: 500}
	}
	return f.Direct.TxDetails(ids)
}

func TestFetchDetailsDegradesPerBatch(t *testing.T) {
	store := seededStore(6, 3) // 6 length-3 bundles → 18 ids
	var poison solana.Signature
	poison[0], poison[1], poison[2], poison[3] = 2, 0, 0, 0 // an id of bundle 2
	tr := &flakyDetails{Direct: Direct{Store: store}}
	tr.broken = func(ids []solana.Signature) bool {
		for _, id := range ids {
			if id == poison {
				return true
			}
		}
		return false
	}
	c := New(Config{PageLimit: 100, DetailBatch: 3, DetailRetries: 1}, testClock, tr)
	c.Poll()

	fetched, err := c.FetchDetails()
	if !errors.Is(err, ErrDetailShortfall) {
		t.Fatalf("want ErrDetailShortfall, got %v", err)
	}
	// 18 ids in 6 batches of 3; the poisoned batch fails (1 retry → 2
	// attempts), the other 5 proceed — no aborted remainder.
	if fetched != 15 {
		t.Errorf("fetched = %d, want 15", fetched)
	}
	if c.PendingDetails() != 3 {
		t.Errorf("PendingDetails = %d, want 3", c.PendingDetails())
	}
	if c.DetailBatchesFailed() != 1 || c.DetailRetries() != 1 {
		t.Errorf("failed=%d retries=%d", c.DetailBatchesFailed(), c.DetailRetries())
	}
	if c.Faults()[faults.ClassServer] != 2 {
		t.Errorf("server faults = %d, want 2 (initial + retry)", c.Faults()[faults.ClassServer])
	}

	// The transport heals; the next call re-queues exactly the shortfall.
	tr.broken = nil
	fetched, err = c.FetchDetails()
	if err != nil || fetched != 3 {
		t.Fatalf("healed refetch: %d, %v", fetched, err)
	}
	if c.PendingDetails() != 0 {
		t.Errorf("PendingDetails after heal = %d", c.PendingDetails())
	}
	for i := range c.Data.Len3 {
		if _, ok := c.Data.DetailsFor(&c.Data.Len3[i]); !ok {
			t.Errorf("bundle %d still incomplete", i)
		}
	}
}

// TestPendingDetailsResumeAcrossCheckpoint pins the crash-resume story:
// a checkpoint taken mid-shortfall re-derives its pending queue after
// load, and a later FetchDetails completes it.
func TestPendingDetailsResumeAcrossCheckpoint(t *testing.T) {
	store := seededStore(4, 3)
	tr := &flakyDetails{Direct: Direct{Store: store}}
	tr.broken = func([]solana.Signature) bool { return true } // total outage
	c := New(Config{PageLimit: 100, DetailBatch: 6, DetailRetries: -1}, testClock, tr)
	c.Poll()
	if _, err := c.FetchDetails(); !errors.Is(err, ErrDetailShortfall) {
		t.Fatalf("want shortfall, got %v", err)
	}
	if c.PendingDetails() != 12 {
		t.Fatalf("PendingDetails = %d, want 12", c.PendingDetails())
	}

	var buf bytes.Buffer
	if err := c.Data.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadDataset(&buf, 256)
	if err != nil {
		t.Fatal(err)
	}

	c2 := New(Config{PageLimit: 100, DetailBatch: 6}, testClock, Direct{Store: store})
	c2.Data = loaded
	if c2.PendingDetails() != 12 {
		t.Fatalf("pending queue lost across checkpoint: %d", c2.PendingDetails())
	}
	fetched, err := c2.FetchDetails()
	if err != nil || fetched != 12 {
		t.Fatalf("resumed fetch: %d, %v", fetched, err)
	}
	if c2.PendingDetails() != 0 {
		t.Errorf("pending after resume = %d", c2.PendingDetails())
	}
}

// failingBefore fails only the backfill cursor endpoint.
type failingBefore struct{ Direct }

func (f failingBefore) RecentBundlesBefore(uint64, int) ([]jito.BundleRecord, error) {
	return nil, &faults.Error{Class: faults.ClassTimeout}
}

func TestBackfillErrorPath(t *testing.T) {
	store := seededStore(5, 1)
	c := New(Config{PageLimit: 5, BackfillPages: 3}, testClock, failingBefore{Direct{Store: store}})
	c.Poll()
	// A 20-bundle spike breaks the overlap pair and triggers backfill,
	// whose cursor endpoint is down.
	for i := 6; i <= 25; i++ {
		store.Accept(0, fakeAccepted(i, 1, solana.Slot(i), 1_000))
	}
	if err := c.Poll(); err != nil {
		t.Fatalf("poll itself should survive a backfill failure: %v", err)
	}
	if c.BackfillErrors() != 1 || c.Errors() != 1 {
		t.Errorf("backfillErrors=%d errors=%d", c.BackfillErrors(), c.Errors())
	}
	if c.Faults()[faults.ClassTimeout] != 1 {
		t.Errorf("faults = %v", c.Faults())
	}
	// The page itself was still ingested: 5 + newest 5 of the spike.
	if c.Data.Collected != 10 {
		t.Errorf("Collected = %d, want 10", c.Data.Collected)
	}
}

func TestBackfillClosesGap(t *testing.T) {
	store := seededStore(10, 1)
	c := New(Config{PageLimit: 5, BackfillPages: 10}, testClock, Direct{Store: store})
	c.Poll() // covers 6..10
	for i := 11; i <= 30; i++ {
		store.Accept(0, fakeAccepted(i, 1, solana.Slot(i), 1_000))
	}
	c.Poll() // page 26..30: no overlap → backfill pages backwards

	// Backfill recovers 11..25, then reaches already-collected territory
	// (6..10) and stops with the gap closed: 5 (first poll) + 5 (second)
	// + 15 backfilled. Bundles 1..5 predate collection entirely.
	if c.Data.Collected != 25 {
		t.Errorf("Collected = %d, want 25 (gap fully closed)", c.Data.Collected)
	}
	if c.BackfilledBundles() != 15 {
		t.Errorf("BackfilledBundles = %d, want 15", c.BackfilledBundles())
	}
	if c.BackfillPolls() == 0 || c.BackfillErrors() != 0 {
		t.Errorf("polls=%d errors=%d", c.BackfillPolls(), c.BackfillErrors())
	}
	// The overlap diagnostic still records the broken pair — backfill
	// repairs coverage, not the statistic.
	if c.OverlapPairs() != 0 || c.Pairs() != 1 {
		t.Errorf("overlap stats polluted: %d/%d", c.OverlapPairs(), c.Pairs())
	}
}

// TestResetOverlapChainAfterOutage pins the outage-resume hygiene: the
// pair spanning a gap must not pollute the steady-state overlap
// statistic when the chain is reset, and must count (as a miss) when it
// is not.
func TestResetOverlapChainAfterOutage(t *testing.T) {
	run := func(reset bool) *Collector {
		store := seededStore(10, 1)
		c := New(Config{PageLimit: 5}, testClock, Direct{Store: store})
		c.Poll() // covers 6..10
		// An outage: 90 bundles scroll past uncollected.
		for i := 11; i <= 100; i++ {
			store.Accept(0, fakeAccepted(i, 1, solana.Slot(i), 1_000))
		}
		if reset {
			c.ResetOverlapChain()
		}
		c.Poll() // covers 96..100 — shares nothing with 6..10
		// Steady state resumes.
		for i := 101; i <= 102; i++ {
			store.Accept(0, fakeAccepted(i, 1, solana.Slot(i), 1_000))
		}
		c.Poll() // covers 98..102 — overlaps
		return c
	}

	with := run(true)
	if with.Pairs() != 1 || with.OverlapPairs() != 1 || with.OverlapRate() != 1 {
		t.Errorf("reset run: pairs=%d overlap=%d rate=%v — gap pair polluted the statistic",
			with.Pairs(), with.OverlapPairs(), with.OverlapRate())
	}
	without := run(false)
	if without.Pairs() != 2 || without.OverlapPairs() != 1 {
		t.Errorf("control run: pairs=%d overlap=%d — gap pair should count as a miss",
			without.Pairs(), without.OverlapPairs())
	}
}

package collector

import (
	"bytes"
	"compress/gzip"
	"net/http/httptest"
	"testing"

	"jitomev/internal/jito"

	"jitomev/internal/core"
	"jitomev/internal/explorer"
	"jitomev/internal/solana"
	"jitomev/internal/workload"
)

func collectedDataset(t *testing.T) *Collector {
	t.Helper()
	st := workload.New(workload.Params{Seed: 6, Days: 3, Scale: 20_000,
		Outages: []workload.DayRange{}})
	store := explorer.NewStore()
	c := New(Config{PageLimit: 50}, st.P.Clock(), Direct{Store: store})
	sink := &PollingSink{Store: store, Collector: c}
	st.Run(sink)
	if _, err := c.FetchDetails(); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestDatasetSaveLoadRoundTrip(t *testing.T) {
	c := collectedDataset(t)
	var buf bytes.Buffer
	if err := c.Data.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadDataset(&buf, 4*50)
	if err != nil {
		t.Fatal(err)
	}

	if loaded.Collected != c.Data.Collected || loaded.Duplicates != c.Data.Duplicates {
		t.Errorf("counters: %d/%d vs %d/%d",
			loaded.Collected, loaded.Duplicates, c.Data.Collected, c.Data.Duplicates)
	}
	if len(loaded.Len3) != len(c.Data.Len3) || len(loaded.Details) != len(c.Data.Details) {
		t.Fatalf("records: %d/%d vs %d/%d",
			len(loaded.Len3), len(loaded.Details), len(c.Data.Len3), len(c.Data.Details))
	}
	if !loaded.Clock.Genesis.Equal(c.Data.Clock.Genesis) {
		t.Error("clock genesis lost")
	}

	// Detection over the loaded dataset must be identical.
	det := core.NewDefaultDetector()
	sweep := func(d *Dataset) (sandwiches int, loss float64) {
		for i := range d.Len3 {
			rec := &d.Len3[i]
			if details, ok := d.DetailsFor(rec); ok {
				if v := det.Detect(rec, details); v.Sandwich {
					sandwiches++
					loss += v.VictimLossLamports
				}
			}
		}
		return
	}
	na, la := sweep(c.Data)
	nb, lb := sweep(loaded)
	if na != nb || la != lb {
		t.Errorf("detection diverges after save/load: %d/%.0f vs %d/%.0f", na, la, nb, lb)
	}
	if c.Data.TipsLen1.Quantile(0.5) != loaded.TipsLen1.Quantile(0.5) ||
		c.Data.TipsLen3.Quantile(0.95) != loaded.TipsLen3.Quantile(0.95) {
		t.Error("tip histograms diverge after save/load")
	}
	// Per-day aggregates survive.
	for day, agg := range c.Data.Days {
		got := loaded.Days[day]
		if got == nil || got.Bundles != agg.Bundles || got.DefensiveSpend != agg.DefensiveSpend {
			t.Errorf("day %d aggregate lost", day)
		}
	}
}

func TestLoadedDatasetResumesWithoutDoubleCounting(t *testing.T) {
	c := collectedDataset(t)
	var buf bytes.Buffer
	if err := c.Data.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadDataset(&buf, 4*50)
	if err != nil {
		t.Fatal(err)
	}

	// Re-ingest the most recent length-3 record: the reseeded dedup
	// window must reject it.
	if len(loaded.Len3) == 0 {
		t.Skip("no length-3 records in sample")
	}
	last := loaded.Len3[len(loaded.Len3)-1]
	before := loaded.Collected
	if loaded.Ingest(last) {
		t.Error("checkpoint-straddling record re-ingested after load")
	}
	if loaded.Collected != before {
		t.Error("collected count changed on duplicate")
	}
}

func TestLoadDatasetRejectsGarbage(t *testing.T) {
	if _, err := LoadDataset(bytes.NewReader([]byte("not a gzip")), 64); err == nil {
		t.Error("garbage accepted")
	}
	// Valid gzip, invalid gob.
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	zw.Write([]byte("gibberish"))
	zw.Close()
	if _, err := LoadDataset(&buf, 64); err == nil {
		t.Error("gzip-wrapped garbage accepted")
	}
}

func TestStoreRecentBefore(t *testing.T) {
	store := explorer.NewStore()
	for i := 1; i <= 10; i++ {
		store.Accept(0, fakeAccepted(i, 1, solana.Slot(i), 1_000))
	}
	// Cursor at seq 6: returns 5,4,3 for limit 3.
	got := store.RecentBefore(6, 3)
	if len(got) != 3 || got[0].Seq != 5 || got[2].Seq != 3 {
		t.Fatalf("RecentBefore(6,3) = %+v", seqsOf(got))
	}
	// Cursor at 1: nothing older.
	if got := store.RecentBefore(1, 5); len(got) != 0 {
		t.Errorf("RecentBefore(1) returned %v", seqsOf(got))
	}
	// Cursor 0 means from the newest.
	got = store.RecentBefore(0, 2)
	if len(got) != 2 || got[0].Seq != 10 {
		t.Errorf("RecentBefore(0,2) = %v", seqsOf(got))
	}
}

func seqsOf(recs []jito.BundleRecord) []uint64 {
	out := make([]uint64, len(recs))
	for i := range recs {
		out[i] = recs[i].Seq
	}
	return out
}

func TestBackfillRecoversSpike(t *testing.T) {
	run := func(backfillPages int) *Collector {
		store := explorer.NewStore()
		c := New(Config{PageLimit: 5, BackfillPages: backfillPages},
			testClock, Direct{Store: store})
		for i := 1; i <= 5; i++ {
			store.Accept(0, fakeAccepted(i, 1, solana.Slot(i), 1_000))
		}
		c.Poll()
		// Spike: 30 bundles between polls with a 5-bundle page.
		for i := 6; i <= 35; i++ {
			store.Accept(0, fakeAccepted(i, 1, solana.Slot(i), 1_000))
		}
		c.Poll()
		return c
	}

	paper := run(0)
	if paper.Data.Collected != 10 {
		t.Fatalf("paper behaviour collected %d, want 10", paper.Data.Collected)
	}
	if paper.BackfilledBundles != 0 {
		t.Error("backfill ran while disabled")
	}

	fixed := run(10)
	if fixed.Data.Collected != 35 {
		t.Fatalf("backfill collected %d, want all 35", fixed.Data.Collected)
	}
	if fixed.BackfilledBundles != 25 || fixed.BackfillPolls == 0 {
		t.Errorf("backfilled=%d polls=%d", fixed.BackfilledBundles, fixed.BackfillPolls)
	}
	// Overlap statistic still records the broken pair — backfill repairs
	// data, not the diagnostic.
	if fixed.OverlapPairs != 0 || fixed.Pairs != 1 {
		t.Error("backfill should not fake the overlap statistic")
	}
}

func TestBackfillBudgetBounded(t *testing.T) {
	store := explorer.NewStore()
	c := New(Config{PageLimit: 5, BackfillPages: 2}, testClock, Direct{Store: store})
	for i := 1; i <= 5; i++ {
		store.Accept(0, fakeAccepted(i, 1, solana.Slot(i), 1_000))
	}
	c.Poll()
	// A spike far larger than the backfill budget (2 pages = 10 bundles).
	for i := 6; i <= 105; i++ {
		store.Accept(0, fakeAccepted(i, 1, solana.Slot(i), 1_000))
	}
	c.Poll()
	// Collected: 5 + page 5 + backfill 2*5 = 20.
	if c.Data.Collected != 20 {
		t.Errorf("collected %d, want 20 under a 2-page budget", c.Data.Collected)
	}
}

func TestBackfillOverHTTP(t *testing.T) {
	store := explorer.NewStore()
	srv := httptest.NewServer(explorer.NewServer(store, 0))
	defer srv.Close()
	c := New(Config{PageLimit: 5, BackfillPages: 10}, testClock, NewHTTP(srv.URL))

	for i := 1; i <= 5; i++ {
		store.Accept(0, fakeAccepted(i, 1, solana.Slot(i), 1_000))
	}
	if err := c.Poll(); err != nil {
		t.Fatal(err)
	}
	for i := 6; i <= 25; i++ {
		store.Accept(0, fakeAccepted(i, 1, solana.Slot(i), 1_000))
	}
	if err := c.Poll(); err != nil {
		t.Fatal(err)
	}
	if c.Data.Collected != 25 {
		t.Errorf("HTTP backfill collected %d, want 25", c.Data.Collected)
	}
}

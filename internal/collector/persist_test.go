package collector

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"errors"
	"flag"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"jitomev/internal/jito"

	"jitomev/internal/core"
	"jitomev/internal/explorer"
	"jitomev/internal/snapshot"
	"jitomev/internal/solana"
	"jitomev/internal/workload"
)

func collectedDataset(t *testing.T) *Collector {
	t.Helper()
	st := workload.New(workload.Params{Seed: 6, Days: 3, Scale: 20_000,
		Outages: []workload.DayRange{}})
	store := explorer.NewStore()
	c := New(Config{PageLimit: 50}, st.P.Clock(), Direct{Store: store})
	sink := &PollingSink{Store: store, Collector: c}
	st.Run(sink)
	if _, err := c.FetchDetails(); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestDatasetSaveLoadRoundTrip(t *testing.T) {
	c := collectedDataset(t)
	var buf bytes.Buffer
	if err := c.Data.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadDataset(&buf, 4*50)
	if err != nil {
		t.Fatal(err)
	}

	if loaded.Collected != c.Data.Collected || loaded.Duplicates != c.Data.Duplicates {
		t.Errorf("counters: %d/%d vs %d/%d",
			loaded.Collected, loaded.Duplicates, c.Data.Collected, c.Data.Duplicates)
	}
	if len(loaded.Len3) != len(c.Data.Len3) || len(loaded.Details) != len(c.Data.Details) {
		t.Fatalf("records: %d/%d vs %d/%d",
			len(loaded.Len3), len(loaded.Details), len(c.Data.Len3), len(c.Data.Details))
	}
	if !loaded.Clock.Genesis.Equal(c.Data.Clock.Genesis) {
		t.Error("clock genesis lost")
	}

	// Detection over the loaded dataset must be identical.
	det := core.NewDefaultDetector()
	sweep := func(d *Dataset) (sandwiches int, loss float64) {
		for i := range d.Len3 {
			rec := &d.Len3[i]
			if details, ok := d.DetailsFor(rec); ok {
				if v := det.Detect(rec, details); v.Sandwich {
					sandwiches++
					loss += v.VictimLossLamports
				}
			}
		}
		return
	}
	na, la := sweep(c.Data)
	nb, lb := sweep(loaded)
	if na != nb || la != lb {
		t.Errorf("detection diverges after save/load: %d/%.0f vs %d/%.0f", na, la, nb, lb)
	}
	if c.Data.TipsLen1.Quantile(0.5) != loaded.TipsLen1.Quantile(0.5) ||
		c.Data.TipsLen3.Quantile(0.95) != loaded.TipsLen3.Quantile(0.95) {
		t.Error("tip histograms diverge after save/load")
	}
	// Per-day aggregates survive.
	for day, agg := range c.Data.Days {
		got := loaded.Days[day]
		if got == nil || got.Bundles != agg.Bundles || got.DefensiveSpend != agg.DefensiveSpend {
			t.Errorf("day %d aggregate lost", day)
		}
	}
}

func TestLoadedDatasetResumesWithoutDoubleCounting(t *testing.T) {
	c := collectedDataset(t)
	var buf bytes.Buffer
	if err := c.Data.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadDataset(&buf, 4*50)
	if err != nil {
		t.Fatal(err)
	}

	// Re-ingest the most recent length-3 record: the reseeded dedup
	// window must reject it.
	if len(loaded.Len3) == 0 {
		t.Skip("no length-3 records in sample")
	}
	last := loaded.Len3[len(loaded.Len3)-1]
	before := loaded.Collected
	if loaded.Ingest(last) {
		t.Error("checkpoint-straddling record re-ingested after load")
	}
	if loaded.Collected != before {
		t.Error("collected count changed on duplicate")
	}
}

func TestLoadDatasetRejectsGarbage(t *testing.T) {
	if _, err := LoadDataset(bytes.NewReader([]byte("not a gzip")), 64); err == nil {
		t.Error("garbage accepted")
	}
	// Valid gzip, invalid gob.
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	zw.Write([]byte("gibberish"))
	zw.Close()
	if _, err := LoadDataset(&buf, 64); err == nil {
		t.Error("gzip-wrapped garbage accepted")
	}
}

// TestLoadCheckpointRefusesNonV3 is the -resume regression test: a
// checkpoint that is not a current-format snapshot — a v1 or v2 archive,
// a truncated header, foreign bytes — must be refused with a clear
// versioned error, never decoded (or panicked over) and then rewritten.
func TestLoadCheckpointRefusesNonV3(t *testing.T) {
	c := collectedDataset(t)

	var v3 bytes.Buffer
	if err := c.Data.Save(&v3); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(bytes.NewReader(v3.Bytes()), 256, 1, nil); err != nil {
		t.Fatalf("v3 checkpoint refused: %v", err)
	}

	var v1 bytes.Buffer
	if err := c.Data.saveV1(&v1); err != nil {
		t.Fatal(err)
	}
	var v2 bytes.Buffer
	if err := snapshot.WriteV2(&v2, c.Data.snapshotView(), 1); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name, want string
		data       []byte
	}{
		{"v1 archive", "v1 snapshot", v1.Bytes()},
		{"v2 archive", "v2 snapshot", v2.Bytes()},
		{"empty file", "truncated header", nil},
		{"one byte", "truncated header", []byte{'j'}},
		{"short magic", "truncated header", []byte("jitos")},
		{"foreign bytes", "not a dataset snapshot", []byte("PK\x03\x04 definitely a zip")},
		{"damaged magic", "not a dataset snapshot", []byte("jitosnp9????????")},
	}
	for _, tc := range cases {
		_, err := LoadCheckpoint(bytes.NewReader(tc.data), 256, 1, nil)
		if err == nil {
			t.Errorf("%s: accepted as a checkpoint", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}

	// A v3 header with a truncated body is refused by the decoder (not a
	// panic), wrapped as a corrupt snapshot.
	cut := v3.Bytes()[:v3.Len()/2]
	if _, err := LoadCheckpoint(bytes.NewReader(cut), 256, 1, nil); !errors.Is(err, snapshot.ErrCorrupt) {
		t.Errorf("truncated v3 body: err = %v, want ErrCorrupt", err)
	}
}

func TestSniffVersion(t *testing.T) {
	for _, tc := range []struct {
		head []byte
		want int
	}{
		{[]byte{0x1f, 0x8b, 0x08, 0, 0, 0, 0, 0}, 1},
		{[]byte("jitosnp2rest"), 2},
		{[]byte("jitosnp3rest"), 3},
	} {
		v, err := SniffVersion(bufio.NewReader(bytes.NewReader(tc.head)))
		if err != nil || v != tc.want {
			t.Errorf("SniffVersion(%q) = %d, %v; want %d", tc.head, v, err, tc.want)
		}
	}
	if _, err := SniffVersion(bufio.NewReader(bytes.NewReader(nil))); err == nil {
		t.Error("empty stream sniffed without error")
	}
}

func TestStoreRecentBefore(t *testing.T) {
	store := explorer.NewStore()
	for i := 1; i <= 10; i++ {
		store.Accept(0, fakeAccepted(i, 1, solana.Slot(i), 1_000))
	}
	// Cursor at seq 6: returns 5,4,3 for limit 3.
	got, err := store.RecentBefore(6, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0].Seq != 5 || got[2].Seq != 3 {
		t.Fatalf("RecentBefore(6,3) = %+v", seqsOf(got))
	}
	// Cursor at 1: nothing older — caught up, not an error.
	if got, err := store.RecentBefore(1, 5); err != nil || len(got) != 0 {
		t.Errorf("RecentBefore(1) returned %v, %v", seqsOf(got), err)
	}
	// Cursor 0 means from the newest.
	got, err = store.RecentBefore(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Seq != 10 {
		t.Errorf("RecentBefore(0,2) = %v", seqsOf(got))
	}
}

func seqsOf(recs []jito.BundleRecord) []uint64 {
	out := make([]uint64, len(recs))
	for i := range recs {
		out[i] = recs[i].Seq
	}
	return out
}

func TestBackfillRecoversSpike(t *testing.T) {
	run := func(backfillPages int) *Collector {
		store := explorer.NewStore()
		c := New(Config{PageLimit: 5, BackfillPages: backfillPages},
			testClock, Direct{Store: store})
		for i := 1; i <= 5; i++ {
			store.Accept(0, fakeAccepted(i, 1, solana.Slot(i), 1_000))
		}
		c.Poll()
		// Spike: 30 bundles between polls with a 5-bundle page.
		for i := 6; i <= 35; i++ {
			store.Accept(0, fakeAccepted(i, 1, solana.Slot(i), 1_000))
		}
		c.Poll()
		return c
	}

	paper := run(0)
	if paper.Data.Collected != 10 {
		t.Fatalf("paper behaviour collected %d, want 10", paper.Data.Collected)
	}
	if paper.BackfilledBundles() != 0 {
		t.Error("backfill ran while disabled")
	}

	fixed := run(10)
	if fixed.Data.Collected != 35 {
		t.Fatalf("backfill collected %d, want all 35", fixed.Data.Collected)
	}
	if fixed.BackfilledBundles() != 25 || fixed.BackfillPolls() == 0 {
		t.Errorf("backfilled=%d polls=%d", fixed.BackfilledBundles(), fixed.BackfillPolls())
	}
	// Overlap statistic still records the broken pair — backfill repairs
	// data, not the diagnostic.
	if fixed.OverlapPairs() != 0 || fixed.Pairs() != 1 {
		t.Error("backfill should not fake the overlap statistic")
	}
}

func TestBackfillBudgetBounded(t *testing.T) {
	store := explorer.NewStore()
	c := New(Config{PageLimit: 5, BackfillPages: 2}, testClock, Direct{Store: store})
	for i := 1; i <= 5; i++ {
		store.Accept(0, fakeAccepted(i, 1, solana.Slot(i), 1_000))
	}
	c.Poll()
	// A spike far larger than the backfill budget (2 pages = 10 bundles).
	for i := 6; i <= 105; i++ {
		store.Accept(0, fakeAccepted(i, 1, solana.Slot(i), 1_000))
	}
	c.Poll()
	// Collected: 5 + page 5 + backfill 2*5 = 20.
	if c.Data.Collected != 20 {
		t.Errorf("collected %d, want 20 under a 2-page budget", c.Data.Collected)
	}
}

func TestBackfillOverHTTP(t *testing.T) {
	store := explorer.NewStore()
	srv := httptest.NewServer(explorer.NewServer(store, 0))
	defer srv.Close()
	c := New(Config{PageLimit: 5, BackfillPages: 10}, testClock, NewHTTP(srv.URL))

	for i := 1; i <= 5; i++ {
		store.Accept(0, fakeAccepted(i, 1, solana.Slot(i), 1_000))
	}
	if err := c.Poll(); err != nil {
		t.Fatal(err)
	}
	for i := 6; i <= 25; i++ {
		store.Accept(0, fakeAccepted(i, 1, solana.Slot(i), 1_000))
	}
	if err := c.Poll(); err != nil {
		t.Fatal(err)
	}
	if c.Data.Collected != 25 {
		t.Errorf("HTTP backfill collected %d, want 25", c.Data.Collected)
	}
}

// updateGolden regenerates testdata/v1-golden.snap with the legacy v1
// encoder: go test ./internal/collector -run GoldenV1 -update-golden
var updateGolden = flag.Bool("update-golden", false, "rewrite the v1 golden fixture")

// goldenDataset is the hand-built dataset behind the v1 golden fixture.
// Fully deterministic — no workload, no randomness — so the assertions
// in TestGoldenV1Fixture can be exact.
func goldenDataset() *Dataset {
	d := NewDataset(testClock, 64)
	var signerA, signerB, mintSOL, mintMEME solana.Pubkey
	signerA[0], signerB[0], mintSOL[0], mintMEME[0] = 0xAA, 0xBB, 0x01, 0x02
	for i := 0; i < 30; i++ {
		rec := jito.BundleRecord{
			Seq:      uint64(i + 1),
			Slot:     solana.Slot(i) * 90_000,
			UnixMs:   1_739_059_200_000 + int64(i)*40_000_000,
			TipLamps: uint64(500 * (i + 1)),
		}
		rec.ID[0], rec.ID[31] = byte(i), 0x77
		n := 1 + i%5
		for j := 0; j < n; j++ {
			var sig solana.Signature
			sig[0], sig[1], sig[63] = byte(i), byte(j), 0x3C
			rec.TxIDs = append(rec.TxIDs, sig)
		}
		d.Ingest(rec)
	}
	for r := range d.Len3 {
		rec := &d.Len3[r]
		for j, sig := range rec.TxIDs {
			det := jito.TxDetail{Sig: sig, Signer: signerA, Slot: rec.Slot,
				TipLamports: rec.TipLamps * uint64(j)}
			if j == 1 {
				det.Signer = signerB
				det.TokenDeltas = []jito.TokenDelta{
					{Owner: signerB, Mint: mintSOL, Delta: -1_000_000},
					{Owner: signerB, Mint: mintMEME, Delta: 42},
				}
			}
			if j == 2 {
				det.Failed, det.TipOnly = true, true
			}
			d.Details[sig] = det
		}
	}
	return d
}

// datasetsEquivalent asserts a and b carry the same collection results.
func datasetsEquivalent(t *testing.T, want, got *Dataset) {
	t.Helper()
	if !got.Clock.Genesis.Equal(want.Clock.Genesis) {
		t.Errorf("genesis: %v vs %v", got.Clock.Genesis, want.Clock.Genesis)
	}
	if got.Collected != want.Collected || got.Duplicates != want.Duplicates {
		t.Errorf("counters: %d/%d vs %d/%d",
			got.Collected, got.Duplicates, want.Collected, want.Duplicates)
	}
	if len(got.Days) != len(want.Days) {
		t.Fatalf("days: %d vs %d", len(got.Days), len(want.Days))
	}
	for day, agg := range want.Days {
		g := got.Days[day]
		if g == nil || *g != *agg {
			t.Fatalf("day %d: %+v vs %+v", day, g, agg)
		}
	}
	wantH1, _ := want.TipsLen1.MarshalBinary()
	gotH1, _ := got.TipsLen1.MarshalBinary()
	wantH3, _ := want.TipsLen3.MarshalBinary()
	gotH3, _ := got.TipsLen3.MarshalBinary()
	if !bytes.Equal(wantH1, gotH1) || !bytes.Equal(wantH3, gotH3) {
		t.Error("tip histograms diverge")
	}
	for _, recs := range []struct {
		name      string
		want, got []jito.BundleRecord
	}{{"len3", want.Len3, got.Len3}, {"long", want.Long, got.Long}} {
		if len(recs.want) != len(recs.got) {
			t.Fatalf("%s: %d vs %d", recs.name, len(recs.got), len(recs.want))
		}
		for i := range recs.want {
			if !recs.want[i].Equal(&recs.got[i]) {
				t.Fatalf("%s[%d]: %+v vs %+v", recs.name, i, recs.got[i], recs.want[i])
			}
		}
	}
	if len(got.Details) != len(want.Details) {
		t.Fatalf("details: %d vs %d", len(got.Details), len(want.Details))
	}
	for sig, det := range want.Details {
		g, ok := got.Details[sig]
		if !ok || !det.Equal(&g) {
			t.Fatalf("detail %x: %+v vs %+v", sig[:4], g, det)
		}
	}
}

// TestGoldenV1Fixture pins backward compatibility: the checked-in v1
// (gzip+gob) snapshot must keep decoding through LoadDataset forever,
// whatever format Save currently writes.
func TestGoldenV1Fixture(t *testing.T) {
	const path = "testdata/v1-golden.snap"
	if *updateGolden {
		var buf bytes.Buffer
		if err := goldenDataset().saveV1(&buf); err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, buf.Len())
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	loaded, err := LoadDataset(f, 64)
	if err != nil {
		t.Fatal(err)
	}
	datasetsEquivalent(t, goldenDataset(), loaded)
}

// TestV1V2Equivalence: the same dataset saved through the legacy gob
// path and the v2 sharded path must load back identical.
func TestV1V2Equivalence(t *testing.T) {
	d := collectedDataset(t).Data

	var v1, v2 bytes.Buffer
	if err := d.saveV1(&v1); err != nil {
		t.Fatal(err)
	}
	if err := d.Save(&v2); err != nil {
		t.Fatal(err)
	}
	if v2.Bytes()[0] == 0x1f {
		t.Fatal("Save still writes the v1 gzip stream")
	}

	fromV1, err := LoadDataset(&v1, 200)
	if err != nil {
		t.Fatalf("v1 load: %v", err)
	}
	fromV2, err := LoadDataset(&v2, 200)
	if err != nil {
		t.Fatalf("v2 load: %v", err)
	}
	datasetsEquivalent(t, d, fromV1)
	datasetsEquivalent(t, d, fromV2)
	datasetsEquivalent(t, fromV1, fromV2)
}

// TestSaveByteIdenticalAcrossWorkers: checkpoint bytes are a pure
// function of the dataset, not of the machine's core count.
func TestSaveByteIdenticalAcrossWorkers(t *testing.T) {
	d := collectedDataset(t).Data
	var ref bytes.Buffer
	if err := d.SaveWorkers(&ref, 1); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 5, 0} {
		var buf bytes.Buffer
		if err := d.SaveWorkers(&buf, workers); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ref.Bytes(), buf.Bytes()) {
			t.Fatalf("workers=%d: %d bytes vs %d-byte reference, or content drift",
				workers, buf.Len(), ref.Len())
		}
	}
	// And a parallel load of those bytes round-trips.
	loaded, err := LoadDatasetWorkers(&ref, 200, 0)
	if err != nil {
		t.Fatal(err)
	}
	datasetsEquivalent(t, d, loaded)
}

package collector

import (
	"net/http/httptest"
	"testing"
	"time"

	"jitomev/internal/explorer"
	"jitomev/internal/jito"
	"jitomev/internal/solana"
	"jitomev/internal/workload"
)

var testClock = solana.Clock{Genesis: time.Date(2025, 2, 9, 0, 0, 0, 0, time.UTC)}

// fakeAccepted fabricates an accepted bundle of length n at the given slot.
func fakeAccepted(i int, n int, slot solana.Slot, tip uint64) *jito.Accepted {
	rec := jito.BundleRecord{Seq: uint64(i), Slot: slot, TipLamps: tip}
	rec.ID[0], rec.ID[1], rec.ID[2] = byte(i), byte(i>>8), byte(i>>16)
	details := make([]jito.TxDetail, n)
	for j := 0; j < n; j++ {
		var sig solana.Signature
		sig[0], sig[1], sig[2], sig[3] = byte(i), byte(i>>8), byte(i>>16), byte(j)
		rec.TxIDs = append(rec.TxIDs, sig)
		details[j] = jito.TxDetail{Sig: sig, Slot: slot}
	}
	return &jito.Accepted{Record: rec, Details: details}
}

func TestDedupWindow(t *testing.T) {
	w := newDedupWindow(3)
	ids := make([]jito.BundleID, 5)
	for i := range ids {
		ids[i][0] = byte(i + 1)
	}
	if !w.add(ids[0]) || !w.add(ids[1]) || !w.add(ids[2]) {
		t.Fatal("fresh ids rejected")
	}
	if w.add(ids[0]) {
		t.Fatal("duplicate accepted")
	}
	// Adding a 4th evicts the oldest (ids[0]).
	if !w.add(ids[3]) {
		t.Fatal("4th id rejected")
	}
	if !w.add(ids[0]) {
		t.Fatal("evicted id should be addable again")
	}
	if w.len() != 3 {
		t.Errorf("len = %d", w.len())
	}
}

func TestDatasetIngestAggregates(t *testing.T) {
	d := NewDataset(testClock, 100)
	// Day 0: one defensive, one priority, one length-3.
	d.Ingest(fakeAccepted(1, 1, 10, 5_000).Record)     // defensive
	d.Ingest(fakeAccepted(2, 1, 20, 2_000_000).Record) // priority
	d.Ingest(fakeAccepted(3, 3, 30, 1_000).Record)     // length 3
	// Day 1.
	d.Ingest(fakeAccepted(4, 2, solana.SlotsPerDay+5, 1_000).Record)

	if d.Collected != 4 {
		t.Fatalf("Collected = %d", d.Collected)
	}
	day0 := d.Days[0]
	if day0.Bundles != 3 || day0.ByLength[1] != 2 || day0.ByLength[3] != 1 {
		t.Errorf("day0 %+v", day0)
	}
	if day0.DefensiveCount != 1 || day0.PriorityCount != 1 || day0.DefensiveSpend != 5_000 {
		t.Errorf("day0 defense %+v", day0)
	}
	if d.Days[1].ByLength[2] != 1 {
		t.Error("day1 length-2 missing")
	}
	if len(d.Len3) != 1 {
		t.Errorf("Len3 = %d", len(d.Len3))
	}
	if d.TipsLen1.Total() != 2 || d.TipsLen3.Total() != 1 {
		t.Error("tip histograms wrong")
	}
	if days := d.SortedDays(); len(days) != 2 || days[0] != 0 || days[1] != 1 {
		t.Errorf("SortedDays = %v", days)
	}
}

func TestDatasetIngestDuplicates(t *testing.T) {
	d := NewDataset(testClock, 100)
	rec := fakeAccepted(1, 1, 10, 5_000).Record
	if !d.Ingest(rec) {
		t.Fatal("first ingest rejected")
	}
	if d.Ingest(rec) {
		t.Fatal("duplicate ingested")
	}
	if d.Duplicates != 1 || d.Collected != 1 {
		t.Errorf("dup=%d collected=%d", d.Duplicates, d.Collected)
	}
}

func TestPollOverlapAndDedup(t *testing.T) {
	store := explorer.NewStore()
	c := New(Config{PageLimit: 10}, testClock, Direct{Store: store})

	// First burst of 6 bundles, then poll.
	for i := 1; i <= 6; i++ {
		store.Accept(0, fakeAccepted(i, 1, solana.Slot(i), 1_000))
	}
	if err := c.Poll(); err != nil {
		t.Fatal(err)
	}
	// 4 more bundles: page of 10 covers all 10, overlapping the previous.
	for i := 7; i <= 10; i++ {
		store.Accept(0, fakeAccepted(i, 1, solana.Slot(i), 1_000))
	}
	if err := c.Poll(); err != nil {
		t.Fatal(err)
	}
	if c.Data.Collected != 10 {
		t.Errorf("Collected = %d, want 10", c.Data.Collected)
	}
	if c.Pairs() != 1 || c.OverlapPairs() != 1 {
		t.Errorf("pairs=%d overlap=%d", c.Pairs(), c.OverlapPairs())
	}
	if c.OverlapRate() != 1 {
		t.Errorf("OverlapRate = %v", c.OverlapRate())
	}
}

func TestPollDetectsMissedSpike(t *testing.T) {
	store := explorer.NewStore()
	c := New(Config{PageLimit: 5}, testClock, Direct{Store: store})

	for i := 1; i <= 5; i++ {
		store.Accept(0, fakeAccepted(i, 1, solana.Slot(i), 1_000))
	}
	c.Poll()
	// A spike of 20 bundles overflows the page: successive pages share
	// nothing, which is exactly the paper's missed-bundle signal.
	for i := 6; i <= 25; i++ {
		store.Accept(0, fakeAccepted(i, 1, solana.Slot(i), 1_000))
	}
	c.Poll()
	if c.OverlapPairs() != 0 || c.Pairs() != 1 {
		t.Errorf("spike should break overlap: pairs=%d overlap=%d", c.Pairs(), c.OverlapPairs())
	}
	// The collector only got the most recent 5 of the spike.
	if c.Data.Collected != 10 {
		t.Errorf("Collected = %d, want 10 (5 + last 5 of spike)", c.Data.Collected)
	}
}

func TestResetOverlapChain(t *testing.T) {
	store := explorer.NewStore()
	c := New(Config{PageLimit: 5}, testClock, Direct{Store: store})
	store.Accept(0, fakeAccepted(1, 1, 1, 1_000))
	c.Poll()
	c.ResetOverlapChain()
	store.Accept(0, fakeAccepted(2, 1, 2, 1_000))
	c.Poll()
	if c.Pairs() != 0 {
		t.Errorf("pair counted across reset: %d", c.Pairs())
	}
}

func TestFetchDetails(t *testing.T) {
	store := explorer.NewStore()
	c := New(Config{PageLimit: 100, DetailBatch: 2}, testClock, Direct{Store: store})

	for i := 1; i <= 3; i++ {
		store.Accept(0, fakeAccepted(i, 3, solana.Slot(i), 1_000))
	}
	store.Accept(0, fakeAccepted(4, 1, 4, 1_000))
	c.Poll()

	n, err := c.FetchDetails()
	if err != nil {
		t.Fatal(err)
	}
	if n != 9 {
		t.Errorf("fetched %d details, want 9", n)
	}
	// 9 ids at batch size 2 → 5 requests.
	if c.DetailRequests() != 5 {
		t.Errorf("DetailRequests = %d, want 5", c.DetailRequests())
	}
	for i := range c.Data.Len3 {
		if det, ok := c.Data.DetailsFor(&c.Data.Len3[i]); !ok || len(det) != 3 {
			t.Errorf("bundle %d details incomplete", i)
		}
	}
	// Second call is a no-op.
	if n, _ := c.FetchDetails(); n != 0 {
		t.Errorf("refetch fetched %d", n)
	}
}

func TestDetailsForMissing(t *testing.T) {
	d := NewDataset(testClock, 100)
	rec := fakeAccepted(1, 3, 1, 1_000).Record
	d.Ingest(rec)
	if _, ok := d.DetailsFor(&d.Len3[0]); ok {
		t.Error("DetailsFor reported complete without fetch")
	}
}

func TestHTTPTransportAgainstServer(t *testing.T) {
	store := explorer.NewStore()
	for i := 1; i <= 50; i++ {
		n := 1
		if i%10 == 0 {
			n = 3
		}
		store.Accept(0, fakeAccepted(i, n, solana.Slot(i), uint64(1_000+i)))
	}
	srv := httptest.NewServer(explorer.NewServer(store, 0))
	defer srv.Close()

	tr := NewHTTP(srv.URL)
	page, err := tr.RecentBundles(20)
	if err != nil {
		t.Fatal(err)
	}
	if len(page) != 20 || page[0].Seq != 50 {
		t.Fatalf("page len=%d first=%d", len(page), page[0].Seq)
	}

	// Detail fetch for a length-3 bundle.
	var len3 *jito.BundleRecord
	for i := range page {
		if page[i].NumTxs() == 3 {
			len3 = &page[i]
			break
		}
	}
	if len3 == nil {
		t.Fatal("no length-3 bundle in page")
	}
	details, err := tr.TxDetails(len3.TxIDs)
	if err != nil {
		t.Fatal(err)
	}
	if len(details) != 3 {
		t.Errorf("details = %d", len(details))
	}
}

func TestHTTPTransportRetriesOn429(t *testing.T) {
	store := explorer.NewStore()
	store.Accept(0, fakeAccepted(1, 1, 1, 1_000))
	// 2/min: first two requests pass, then throttle; retry must recover
	// after backoff refills ~nothing, so expect eventual error with tiny
	// backoff — and success when under the limit.
	srv := httptest.NewServer(explorer.NewServer(store, 2))
	defer srv.Close()

	tr := NewHTTP(srv.URL)
	tr.Backoff = time.Millisecond
	tr.MaxRetries = 1
	if _, err := tr.RecentBundles(1); err != nil {
		t.Fatalf("first request: %v", err)
	}
	if _, err := tr.RecentBundles(1); err != nil {
		t.Fatalf("second request: %v", err)
	}
	// Bucket empty; with 1ms backoff the retry cannot refill a 2/min
	// bucket, so this must fail cleanly rather than hang.
	if _, err := tr.RecentBundles(1); err == nil {
		t.Fatal("throttled request should error after retries")
	}
}

// TestEquivalenceHTTPvsDirect runs the same small study through both
// transports and requires identical datasets — the faithful HTTP path and
// the fast in-process path must be interchangeable.
func TestEquivalenceHTTPvsDirect(t *testing.T) {
	run := func(useHTTP bool) *Dataset {
		st := workload.New(workload.Params{Seed: 4, Days: 2, Scale: 20_000, Outages: []workload.DayRange{}})
		store := explorer.NewStore()
		var tr Transport = Direct{Store: store}
		var srv *httptest.Server
		if useHTTP {
			srv = httptest.NewServer(explorer.NewServer(store, 0))
			defer srv.Close()
			tr = NewHTTP(srv.URL)
		}
		c := New(Config{PageLimit: 50}, st.P.Clock(), tr)
		sink := &PollingSink{Store: store, Collector: c}
		st.Run(sink)
		if _, err := c.FetchDetails(); err != nil {
			t.Fatal(err)
		}
		return c.Data
	}
	a, b := run(false), run(true)
	if a.Collected != b.Collected || len(a.Len3) != len(b.Len3) || len(a.Details) != len(b.Details) {
		t.Fatalf("direct (%d,%d,%d) != http (%d,%d,%d)",
			a.Collected, len(a.Len3), len(a.Details),
			b.Collected, len(b.Len3), len(b.Details))
	}
	for i := range a.Len3 {
		if a.Len3[i].ID != b.Len3[i].ID {
			t.Fatalf("Len3 order diverges at %d", i)
		}
	}
}

func TestPollingSinkOutageSkipsPolls(t *testing.T) {
	st := workload.New(workload.Params{Seed: 5, Days: 2, Scale: 20_000,
		Outages: []workload.DayRange{{From: 1, To: 1}}})
	store := explorer.NewStore()
	c := New(Config{PageLimit: 50}, st.P.Clock(), Direct{Store: store})
	sink := &PollingSink{Store: store, Collector: c, InOutage: st.P.InOutage}
	st.Run(sink)

	// Nothing from day 1 can be in the per-day aggregates beyond what a
	// final page straddles; with PageLimit 50 and ~700 bundles/day the
	// whole outage day must be missing.
	if agg, ok := c.Data.Days[1]; ok && agg.Bundles > 100 {
		t.Errorf("outage day collected %d bundles", agg.Bundles)
	}
	if day0 := c.Data.Days[0]; day0 == nil || day0.Bundles == 0 {
		t.Fatal("day 0 not collected")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.Defaults()
	if c.PageLimit != explorer.MaxPageLimit || c.DetailBatch != explorer.MaxDetailBatch || c.PollEverySlots != 300 {
		t.Errorf("defaults %+v", c)
	}
}

func TestPollingSinkCadence(t *testing.T) {
	// One poll per PollEverySlots of chain time, driven by bundle slots.
	store := explorer.NewStore()
	c := New(Config{PageLimit: 100, PollEverySlots: 300}, testClock, Direct{Store: store})
	sink := &PollingSink{Store: store, Collector: c}

	// 10 bundles per 300-slot window across 10 windows.
	seq := 0
	for w := 0; w < 10; w++ {
		for i := 0; i < 10; i++ {
			seq++
			slot := solana.Slot(w*300 + i*30)
			sink.Accept(0, fakeAccepted(seq, 1, slot, 1_000))
		}
	}
	// First qualifying bundle of each window triggers one poll.
	if c.Polls() != 10 {
		t.Errorf("polls = %d, want 10", c.Polls())
	}
	// The last window's 9 post-poll bundles are never seen — collection
	// always trails the live feed by up to one cadence, exactly like the
	// paper's scraper.
	if c.Data.Collected != 91 {
		t.Errorf("collected = %d, want 91", c.Data.Collected)
	}
	if c.OverlapRate() != 1 {
		t.Errorf("overlap = %v, want 1 at this page size", c.OverlapRate())
	}
}

func TestCollectorErrorsCounted(t *testing.T) {
	c := New(Config{PageLimit: 10}, testClock, failingTransport{})
	if err := c.Poll(); err == nil {
		t.Fatal("poll against failing transport succeeded")
	}
	if c.Errors() != 1 || c.Polls() != 0 {
		t.Errorf("errors=%d polls=%d", c.Errors(), c.Polls())
	}
	if _, err := c.FetchDetails(); err != nil {
		t.Fatalf("FetchDetails with nothing pending should be a no-op: %v", err)
	}
}

type failingTransport struct{}

func (failingTransport) RecentBundles(int) ([]jito.BundleRecord, error) {
	return nil, errFail
}
func (failingTransport) RecentBundlesBefore(uint64, int) ([]jito.BundleRecord, error) {
	return nil, errFail
}
func (failingTransport) TxDetails([]solana.Signature) ([]jito.TxDetail, error) {
	return nil, errFail
}

var errFail = errTransport("transport down")

type errTransport string

func (e errTransport) Error() string { return string(e) }

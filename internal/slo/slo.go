// Package slo turns the obs registry's raw series into service-level
// objectives: declarative availability and latency objectives compiled
// against registered counter and histogram families, sliding-window SLI
// evaluation with error-budget accounting, and Google-SRE-style
// multi-window multi-burn-rate alerting (a fast burn pages, a slow burn
// warns), exposed as the /sloz JSON document, an end-of-run summary
// table, and a /healthz contribution (fast burn joins the quality
// sentinel's CRIT on the 503 path).
//
// The paper's measurement rests on an uninterrupted 31-day scrape, so
// sustained collection availability and bounded poll latency are
// correctness concerns, not operational niceties: a poll failure rate of
// 0.078 under chaos is only interpretable against an objective. This
// package supplies the objectives.
//
// Determinism is the same bar the metrics, quality and tracing layers
// set: the engine's verdicts are a pure function of the (clock, counter
// value) sequence it observes. With the injectable clock pinned and the
// counter feed deterministic — as it is at any worker count for the
// same chaos seed — the /sloz document and the alert-transition
// sequence are bit-identical across reruns, worker counts and chaos
// replays.
package slo

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"jitomev/internal/obs"
)

// AlertState is one objective's alert-machine state, ordered by
// severity: an escalation is immediate, a de-escalation waits out the
// hysteresis hold.
type AlertState uint8

const (
	// StateOK: burning within budget on every window.
	StateOK AlertState = iota
	// StateSlowBurn: the slow-burn rule fired — the budget is eroding
	// fast enough to exhaust well before the window ends (warn).
	StateSlowBurn
	// StateFastBurn: the fast-burn rule fired — at this rate the budget
	// is gone in hours, not days (page; joins /healthz's 503).
	StateFastBurn
)

var stateNames = [...]string{"ok", "slow_burn", "fast_burn"}

// String implements fmt.Stringer.
func (s AlertState) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// MarshalJSON renders the state as its lowercase name.
func (s AlertState) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// UnmarshalJSON accepts exactly the lowercase names — anything else is
// an illegal alert state, which metricscheck treats as a shape error.
func (s *AlertState) UnmarshalJSON(b []byte) error {
	var str string
	if err := json.Unmarshal(b, &str); err != nil {
		return err
	}
	for i, name := range stateNames {
		if str == name {
			*s = AlertState(i)
			return nil
		}
	}
	return fmt.Errorf("slo: illegal alert state %q", str)
}

// Series selects registered metrics by family plus required label
// pairs: a sample matches when its family equals Family and its
// rendered name carries every `k="v"` in Labels. An empty Labels list
// matches every series of the family — the way a per-route family is
// summed into one SLI.
type Series struct {
	Family string
	Labels [][2]string
}

// matches reports whether the sample belongs to this selector.
func (s Series) matches(sm *obs.Sample) bool {
	if sm.Family != s.Family {
		return false
	}
	for _, kv := range s.Labels {
		if !strings.Contains(sm.Name, kv[0]+`="`+kv[1]+`"`) {
			return false
		}
	}
	return true
}

// Index is one tick's view of the registry: a snapshot grouped by
// family so every objective's selectors resolve against the same
// instant.
type Index struct {
	byFamily map[string][]obs.Sample
}

// NewIndex groups a registry snapshot by family.
func NewIndex(samples []obs.Sample) *Index {
	ix := &Index{byFamily: make(map[string][]obs.Sample)}
	for _, s := range samples {
		ix.byFamily[s.Family] = append(ix.byFamily[s.Family], s)
	}
	return ix
}

// Sum adds the values of every sample each selector matches. Absent
// families contribute zero — an objective compiled before its inputs
// exist simply reports "no data".
func (ix *Index) Sum(sel ...Series) float64 {
	var total float64
	for _, s := range sel {
		for i := range ix.byFamily[s.Family] {
			if sm := &ix.byFamily[s.Family][i]; s.matches(sm) {
				total += sm.Value
			}
		}
	}
	return total
}

// Source yields an objective's cumulative (good, total) event counts
// from a tick's Index. Both are cumulative-since-process-start; the
// engine differences them across ticks for windows and against its
// first tick for the budget.
type Source interface {
	Eval(ix *Index) (good, total float64)
}

// GoodBad is the availability source for split counter families: good
// events on one set of series, bad events on another, total their sum —
// e.g. collector_polls_total vs collector_poll_errors_total, or the
// explorer's ok outcomes vs the chaos injector's server-class faults.
type GoodBad struct {
	Good []Series
	Bad  []Series
}

// Eval implements Source.
func (g GoodBad) Eval(ix *Index) (good, total float64) {
	gd, bd := ix.Sum(g.Good...), ix.Sum(g.Bad...)
	return gd, gd + bd
}

// GoodTotal is the availability source for families where the total is
// its own series (good ⊆ total), e.g. ok outcomes over all outcomes of
// a labeled request family.
type GoodTotal struct {
	Good  []Series
	Total []Series
}

// Eval implements Source.
func (g GoodTotal) Eval(ix *Index) (good, total float64) {
	return ix.Sum(g.Good...), ix.Sum(g.Total...)
}

// LatencyUnder is the latency source: good = histogram observations at
// or under Threshold seconds, total = all observations, summed over
// every series the selector matches (e.g. all routes of a latency
// family). Precision is bounded by the bucket bounds: the effective
// threshold is the largest bound ≤ Threshold, the standard Prometheus
// histogram caveat.
type LatencyUnder struct {
	Hist      Series
	Threshold float64
}

// Eval implements Source.
func (l LatencyUnder) Eval(ix *Index) (good, total float64) {
	for i := range ix.byFamily[l.Hist.Family] {
		sm := &ix.byFamily[l.Hist.Family][i]
		if sm.Kind != obs.KindHistogram || !l.Hist.matches(sm) {
			continue
		}
		total += float64(sm.Count)
		for bi, bound := range sm.Bounds {
			if bound <= l.Threshold {
				good += float64(sm.Buckets[bi])
			}
		}
	}
	return good, total
}

// BurnRule is one multi-window burn-rate alert rule: fire when the
// error-budget burn rate is at least Factor over both the Long window
// (sustained) and the Short window (still happening). The two-window
// conjunction is what keeps a recovered incident from paging for the
// rest of the long window.
type BurnRule struct {
	Long   time.Duration
	Short  time.Duration
	Factor float64
}

// Windows is an objective's full alerting policy: the fast-burn rule
// (page), the slow-burn rule (warn), and the hysteresis hold an alert
// must stay below threshold before de-escalating — the anti-flap gate.
type Windows struct {
	Fast      BurnRule
	Slow      BurnRule
	ClearHold time.Duration
}

// ScaledWindows maps the Google SRE workbook's canonical multi-window
// policy (fast: 1h/5m at 14.4×, slow: 6h/30m at 6×) onto a base unit:
// unit = 1h reproduces the book, unit = 4s compresses the same shape
// into a smoke run. The hold is unit/6 (10 minutes at the book's
// scale).
func ScaledWindows(unit time.Duration) Windows {
	if unit <= 0 {
		unit = time.Hour
	}
	short := unit / 12
	if short <= 0 {
		short = 1
	}
	return Windows{
		Fast:      BurnRule{Long: unit, Short: short, Factor: 14.4},
		Slow:      BurnRule{Long: 6 * unit, Short: unit / 2, Factor: 6},
		ClearHold: unit / 6,
	}
}

// DefaultWindows is ScaledWindows at the book's own one-hour unit.
func DefaultWindows() Windows { return ScaledWindows(time.Hour) }

// Objective is one declarative SLO: a named target ratio over a
// compiled good/total source, alerted per Windows.
type Objective struct {
	// Name identifies the objective in /sloz, the summary table and the
	// slo_* metric labels. Required, unique within an engine.
	Name string
	// Description says what is being promised, for humans.
	Description string
	// Target is the objective ratio in (0,1), e.g. 0.999. The error
	// budget is 1 - Target.
	Target float64
	// Source yields cumulative (good, total) counts each tick.
	Source Source
	// Windows is the alerting policy; the zero value selects
	// DefaultWindows.
	Windows Windows
}

// resolved fills the zero-value policy.
func (o Objective) resolved() Objective {
	z := Windows{}
	if o.Windows == z {
		o.Windows = DefaultWindows()
	}
	return o
}

package slo

import (
	"testing"
	"time"

	"jitomev/internal/obs"
)

// burnHarness drives one availability objective with a controllable
// per-tick error rate: 100 events per one-second tick.
type burnHarness struct {
	reg  *obs.Registry
	good *obs.Counter
	bad  *obs.Counter
	clk  *fakeClock
	eng  *Engine
}

// newBurnHarness uses a 60-second window unit: fast 60s/5s @14.4, slow
// 360s/30s @6, clear hold 10s — the book's policy shape at test speed.
func newBurnHarness(t *testing.T) *burnHarness {
	t.Helper()
	h := &burnHarness{reg: obs.NewRegistry(), clk: newFakeClock()}
	h.good = h.reg.Counter("g_total")
	h.bad = h.reg.Counter("b_total")
	h.eng = New(h.reg, Config{Now: h.clk.Now}, Objective{
		Name:    "avail",
		Target:  0.99,
		Source:  GoodBad{Good: []Series{{Family: "g_total"}}, Bad: []Series{{Family: "b_total"}}},
		Windows: ScaledWindows(60 * time.Second),
	})
	h.eng.Tick() // baseline
	return h
}

// tick advances one second with errRate errors out of 100 events.
func (h *burnHarness) tick(errRate float64) {
	errs := uint64(errRate * 100)
	h.bad.Add(errs)
	h.good.Add(100 - errs)
	h.clk.Advance(time.Second)
	h.eng.Tick()
}

func (h *burnHarness) state() AlertState { return h.eng.State().Objectives[0].Alert.State }

// TestBurnLadder walks the full alert ladder: clean traffic holds OK, a
// sustained 50% error rate escalates ok → slow_burn → fast_burn, and a
// recovery de-escalates back through slow_burn to ok — each downward
// hop gated by the hysteresis hold.
func TestBurnLadder(t *testing.T) {
	h := newBurnHarness(t)
	for i := 0; i < 10; i++ {
		h.tick(0)
	}
	if s := h.state(); s != StateOK {
		t.Fatalf("clean traffic: state %s, want ok", s)
	}
	for i := 0; i < 15; i++ {
		h.tick(0.5)
	}
	if s := h.state(); s != StateFastBurn {
		t.Fatalf("after 15 faulting ticks: state %s, want fast_burn", s)
	}
	o := h.eng.State().Objectives[0]
	if o.Alert.Reason == "" {
		t.Error("fast burn with no firing reason")
	}
	for i := 0; i < 90; i++ {
		h.tick(0)
	}
	if s := h.state(); s != StateOK {
		t.Fatalf("after 90 clean ticks: state %s, want ok", s)
	}

	// The recorded ladder must be exactly the four hops, in order.
	want := [][2]AlertState{
		{StateOK, StateSlowBurn},
		{StateSlowBurn, StateFastBurn},
		{StateFastBurn, StateSlowBurn},
		{StateSlowBurn, StateOK},
	}
	trs := h.eng.State().Objectives[0].Alert.Transitions
	if len(trs) != len(want) {
		t.Fatalf("recorded %d transitions, want %d: %+v", len(trs), len(want), trs)
	}
	for i, w := range want {
		if trs[i].From != w[0] || trs[i].To != w[1] {
			t.Errorf("transition %d = %s -> %s, want %s -> %s",
				i, trs[i].From, trs[i].To, w[0], w[1])
		}
		if trs[i].Reason == "" {
			t.Errorf("transition %d has no reason", i)
		}
		if _, err := time.Parse(time.RFC3339Nano, trs[i].At); err != nil {
			t.Errorf("transition %d timestamp %q: %v", i, trs[i].At, err)
		}
	}
}

// TestHysteresisBlocksFlapping: once fast burn fires, a recovery
// shorter than the clear hold must not de-escalate, and a relapse
// during the hold resets it — the alert never flaps.
func TestHysteresisBlocksFlapping(t *testing.T) {
	h := newBurnHarness(t)
	for i := 0; i < 10; i++ {
		h.tick(0)
	}
	for i := 0; i < 15; i++ {
		h.tick(0.5)
	}
	if s := h.state(); s != StateFastBurn {
		t.Fatalf("setup: state %s, want fast_burn", s)
	}
	transBefore := h.eng.State().Objectives[0].Alert.TransitionsTotal

	// Oscillate: 6 clean ticks (enough to clear the 5s short window,
	// not the 10s hold), then a relapse, three times over.
	for round := 0; round < 3; round++ {
		for i := 0; i < 6; i++ {
			h.tick(0)
			if s := h.state(); s != StateFastBurn {
				t.Fatalf("round %d tick %d: state %s during hold, want fast_burn", round, i, s)
			}
		}
		for i := 0; i < 6; i++ {
			h.tick(0.5)
		}
	}
	if got := h.eng.State().Objectives[0].Alert.TransitionsTotal; got != transBefore {
		t.Errorf("oscillation recorded %d transitions, want 0", got-transBefore)
	}
}

// TestEscalationIsImmediate: the hold only gates de-escalation; a
// worsening burn escalates on the tick it crosses the threshold.
func TestEscalationIsImmediate(t *testing.T) {
	h := newBurnHarness(t)
	for i := 0; i < 10; i++ {
		h.tick(0)
	}
	// A full-outage tick drives every window's short side to 1.0
	// immediately; keep it up until both fast windows cross.
	for i := 0; i < 60 && h.state() != StateFastBurn; i++ {
		h.tick(1)
	}
	if s := h.state(); s != StateFastBurn {
		t.Fatalf("full outage never reached fast_burn: %s", s)
	}
	// No intermediate dwell requirement: slow_burn may have been a
	// single tick, but every hop must still be recorded.
	trs := h.eng.State().Objectives[0].Alert.Transitions
	if len(trs) == 0 || trs[len(trs)-1].To != StateFastBurn {
		t.Errorf("transitions %+v do not end in fast_burn", trs)
	}
}

// TestTransitionHistoryCap: the kept history is bounded by
// MaxTransitions while transitions_total keeps counting.
func TestTransitionHistoryCap(t *testing.T) {
	reg := obs.NewRegistry()
	bad := reg.Counter("b_total")
	good := reg.Counter("g_total")
	clk := newFakeClock()
	eng := New(reg, Config{Now: clk.Now, MaxTransitions: 4}, Objective{
		Name:    "avail",
		Target:  0.99,
		Source:  GoodBad{Good: []Series{{Family: "g_total"}}, Bad: []Series{{Family: "b_total"}}},
		Windows: ScaledWindows(10 * time.Second),
	})
	eng.Tick()
	// Alternate long outage / long recovery phases to rack up hops.
	for cycle := 0; cycle < 5; cycle++ {
		for i := 0; i < 20; i++ {
			bad.Add(100)
			clk.Advance(time.Second)
			eng.Tick()
		}
		for i := 0; i < 20; i++ {
			good.Add(100)
			clk.Advance(time.Second)
			eng.Tick()
		}
	}
	o := eng.State().Objectives[0]
	if len(o.Alert.Transitions) > 4 {
		t.Errorf("kept %d transitions, cap is 4", len(o.Alert.Transitions))
	}
	if o.Alert.TransitionsTotal < 8 {
		t.Errorf("transitions_total = %d, want >= 8 over 5 outage cycles", o.Alert.TransitionsTotal)
	}
	if got := reg.Value("slo_transitions_total", "slo", "avail"); got != float64(o.Alert.TransitionsTotal) {
		t.Errorf("slo_transitions_total = %v, doc says %d", got, o.Alert.TransitionsTotal)
	}
}

package slo

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"jitomev/internal/obs"
	"jitomev/internal/quality"
)

// probeHealth hits a combined /healthz handler and decodes the body.
func probeHealth(t *testing.T, sources ...obs.HealthSource) (int, []string) {
	t.Helper()
	rec := httptest.NewRecorder()
	obs.HealthHandler(sources...).ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	var body struct {
		Status  string   `json:"status"`
		Reasons []string `json:"reasons"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("healthz body %q: %v", rec.Body.String(), err)
	}
	return rec.Code, body.Reasons
}

// TestHealthzPrecedence is the satellite's acceptance test: when the
// quality sentinel goes CRIT and an SLO objective hits fast burn at the
// same time, the combined /healthz serves exactly one 503 with both
// reasons surfaced; the SLO contribution then clears through
// hysteresis without flapping, and the probe keeps answering 503 as
// long as either monitor is tripped.
func TestHealthzPrecedence(t *testing.T) {
	reg := obs.NewRegistry()

	// Quality: drive the poll-failure EWMA well past PollFailCrit with
	// MinPolls satisfied.
	q := quality.New(quality.Config{}, reg)
	q.ObservePoll(0, 200, 100, 0, false, false)
	q.ObservePoll(0, 200, 100, 0, false, false)
	for i := 0; i < 12; i++ {
		q.ObservePollError()
	}
	if rep := q.Evaluate(); rep.Status != quality.CRIT {
		t.Fatalf("setup: quality verdict %s, want crit", rep.Status)
	}

	// SLO: burn an availability objective into fast burn.
	h := newBurnHarness(t)
	for i := 0; i < 10; i++ {
		h.tick(0)
	}
	for i := 0; i < 15; i++ {
		h.tick(0.5)
	}
	if s := h.state(); s != StateFastBurn {
		t.Fatalf("setup: slo state %s, want fast_burn", s)
	}

	sources := []obs.HealthSource{q.HealthSource(), h.eng.HealthSource()}

	// Both tripped: one 503, both reasons, in source order.
	code, reasons := probeHealth(t, sources...)
	if code != 503 {
		t.Fatalf("both tripped: status %d, want 503", code)
	}
	if len(reasons) != 2 ||
		!strings.HasPrefix(reasons[0], "quality:") ||
		!strings.HasPrefix(reasons[1], "slo:") ||
		!strings.Contains(reasons[1], "avail") {
		t.Fatalf("reasons = %q, want quality and slo entries", reasons)
	}

	// Recovery starts: within the hysteresis hold the SLO stays in fast
	// burn, so the probe must not flap even though the burn stopped.
	for i := 0; i < 6; i++ {
		h.tick(0)
		code, reasons = probeHealth(t, sources...)
		if code != 503 || len(reasons) != 2 {
			t.Fatalf("during hold tick %d: status %d reasons %q — flapped", i, code, reasons)
		}
	}

	// Past the hold the SLO de-escalates; quality is still CRIT, so the
	// probe stays 503 with only the quality reason.
	for i := 0; i < 90; i++ {
		h.tick(0)
	}
	if s := h.state(); s != StateOK {
		t.Fatalf("slo never recovered: %s", s)
	}
	code, reasons = probeHealth(t, sources...)
	if code != 503 || len(reasons) != 1 || !strings.HasPrefix(reasons[0], "quality:") {
		t.Errorf("slo recovered: status %d reasons %q, want 503 with quality only", code, reasons)
	}

	// With the SLO engine alone (quality healthy), the probe goes 200.
	code, reasons = probeHealth(t, h.eng.HealthSource())
	if code != 200 || len(reasons) != 0 {
		t.Errorf("all clear: status %d reasons %q, want 200 with none", code, reasons)
	}
}

// TestHealthSourceReasons: the SLO health source names the burning
// objective and only trips on fast burn, never slow.
func TestHealthSourceReasons(t *testing.T) {
	h := newBurnHarness(t)
	for i := 0; i < 10; i++ {
		h.tick(0)
	}
	// Ease into slow burn only: an error rate over the slow threshold
	// (0.06) but under the fast one (0.144).
	for i := 0; i < 40; i++ {
		h.tick(0.1)
	}
	if s := h.state(); s != StateSlowBurn {
		t.Fatalf("state %s, want slow_burn", s)
	}
	if healthy, _ := h.eng.HealthSource().Check(); !healthy {
		t.Error("slow burn tripped the health probe; only fast burn should")
	}
	for i := 0; i < 30; i++ {
		h.tick(1)
	}
	healthy, reason := h.eng.HealthSource().Check()
	if healthy || !strings.Contains(reason, "avail") || !strings.Contains(reason, "fast burn") {
		t.Errorf("fast burn: healthy=%v reason=%q", healthy, reason)
	}
}

package slo

import (
	"encoding/json"
	"net/http"

	"jitomev/internal/obs"
)

// Handler serves /sloz: the engine's current Doc as indented JSON. The
// handler only reads the last tick's verdicts — scraping /sloz never
// advances the alert machines, so a monitoring burst cannot perturb the
// thing it monitors.
func (e *Engine) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(e.State())
	})
}

// OpsEndpoints returns the engine's ops-mux routes, ready to append to
// obs.NewOpsMux's extras the same way the quality sentinel's are.
func (e *Engine) OpsEndpoints() []obs.Endpoint {
	return []obs.Endpoint{{Path: "/sloz", Handler: e.Handler()}}
}

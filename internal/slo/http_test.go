package slo

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"jitomev/internal/obs"
)

// TestSlozEndpoint: /sloz serves the Doc shape with no unknown fields,
// scraping never advances the machine, and repeated scrapes between
// ticks are byte-identical.
func TestSlozEndpoint(t *testing.T) {
	reg := obs.NewRegistry()
	bad := reg.Counter("b_total")
	clk := newFakeClock()
	eng := New(reg, Config{Now: clk.Now}, Objective{
		Name:        "avail",
		Description: "test objective",
		Target:      0.99,
		Source:      GoodBad{Good: []Series{{Family: "g_total"}}, Bad: []Series{{Family: "b_total"}}},
		Windows:     ScaledWindows(time.Minute),
	})
	eng.Tick()
	bad.Add(50)
	clk.Advance(time.Second)
	eng.Tick()

	mux := obs.NewOpsMux(reg, false, eng.OpsEndpoints()...)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	get := func() []byte {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + "/sloz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 || resp.Header.Get("Content-Type") != "application/json" {
			t.Fatalf("GET /sloz: %d %s", resp.StatusCode, resp.Header.Get("Content-Type"))
		}
		body, _ := io.ReadAll(resp.Body)
		return body
	}
	first := get()
	var doc Doc
	dec := json.NewDecoder(bytes.NewReader(first))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		t.Fatalf("decoding /sloz: %v", err)
	}
	if doc.Ticks != 2 || len(doc.Objectives) != 1 {
		t.Fatalf("ticks=%d objectives=%d, want 2/1", doc.Ticks, len(doc.Objectives))
	}
	o := doc.Objectives[0]
	if o.Name != "avail" || o.Description != "test objective" || o.Target != 0.99 {
		t.Errorf("objective header %+v", o)
	}
	if len(o.BurnRates) != 4 {
		t.Errorf("%d burn windows, want 4", len(o.BurnRates))
	}
	if o.SLI != 0 || o.BudgetRemaining != 0 {
		t.Errorf("all-errors tick: sli=%v budget=%v, want 0/0", o.SLI, o.BudgetRemaining)
	}
	if second := get(); !bytes.Equal(first, second) {
		t.Error("two scrapes between ticks differ")
	}

	// The ops mux also refreshes the runtime telemetry gauges on scrape.
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, fam := range []string{"go_goroutines", "go_heap_alloc_bytes", "go_gc_pause_p99_seconds", "slo_budget_remaining"} {
		if !strings.Contains(string(body), fam) {
			t.Errorf("/metrics missing %s", fam)
		}
	}
}

// TestWriteSummary: the end-of-run SLO table names every objective and
// its alert state.
func TestWriteSummary(t *testing.T) {
	reg := obs.NewRegistry()
	clk := newFakeClock()
	eng := New(reg, Config{Now: clk.Now},
		CollectorPollAvailability(ScaledWindows(time.Minute)),
		StreamDetectLatency(ScaledWindows(time.Minute)))
	eng.Tick()
	var buf bytes.Buffer
	if err := eng.WriteSummary(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"service-level objectives", "collector_poll_availability", "stream_detect_latency", "ok"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

// TestAlertStateJSON pins the enum's wire form both ways.
func TestAlertStateJSON(t *testing.T) {
	for s, name := range map[AlertState]string{
		StateOK: `"ok"`, StateSlowBurn: `"slow_burn"`, StateFastBurn: `"fast_burn"`,
	} {
		b, err := json.Marshal(s)
		if err != nil || string(b) != name {
			t.Errorf("marshal %v = %s, %v; want %s", s, b, err, name)
		}
		var back AlertState
		if err := json.Unmarshal([]byte(name), &back); err != nil || back != s {
			t.Errorf("unmarshal %s = %v, %v", name, back, err)
		}
	}
	var bad AlertState
	if err := json.Unmarshal([]byte(`"paging"`), &bad); err == nil {
		t.Error("illegal state unmarshaled without error")
	}
}

package slo

import "time"

// Standard objectives compiled against the families the pipeline
// already records. Each constructor takes the alerting policy so
// binaries can scale the windows (production: DefaultWindows; smoke
// runs: ScaledWindows with a seconds-scale unit).

// ExplorerAvailability is the explorerd request success ratio. Good
// events are requests that completed with an ok outcome; bad events are
// the chaos injector's response-damaging faults (server errors,
// truncation, corruption), which the middleware applies outside the
// server's own counters — exactly the failures a client of the real
// Jito explorer would see.
func ExplorerAvailability(w Windows) Objective {
	return Objective{
		Name:        "explorer_availability",
		Description: "explorerd requests served successfully (chaos-injected failures count against)",
		Target:      0.999,
		Source: GoodBad{
			Good: []Series{{Family: "explorer_requests_total", Labels: [][2]string{{"outcome", "ok"}}}},
			Bad: []Series{
				{Family: "faults_injected_total", Labels: [][2]string{{"class", "server"}}},
				{Family: "faults_injected_total", Labels: [][2]string{{"class", "truncate"}}},
				{Family: "faults_injected_total", Labels: [][2]string{{"class", "corrupt"}}},
			},
		},
		Windows: w,
	}
}

// ExplorerLatency is the explorerd serving-latency objective: 99% of
// requests under 100 ms, summed across routes.
func ExplorerLatency(w Windows) Objective {
	return Objective{
		Name:        "explorer_latency",
		Description: "explorerd requests served under 100ms",
		Target:      0.99,
		Source: LatencyUnder{
			Hist:      Series{Family: "explorer_request_latency_seconds"},
			Threshold: 0.1,
		},
		Windows: w,
	}
}

// CollectorPollAvailability is the scrape-loop success ratio — the
// paper's 31-day-uninterrupted-collection requirement as an objective.
func CollectorPollAvailability(w Windows) Objective {
	return Objective{
		Name:        "collector_poll_availability",
		Description: "recent-bundles polls that succeeded",
		Target:      0.99,
		Source: GoodBad{
			Good: []Series{{Family: "collector_polls_total"}},
			Bad:  []Series{{Family: "collector_poll_errors_total"}},
		},
		Windows: w,
	}
}

// StreamDetectLatency is the incremental-detection latency objective:
// 99% of events folded to a verdict within one Solana slot (400 ms) —
// the bound that makes detection "real-time" relative to block
// production.
func StreamDetectLatency(w Windows) Objective {
	return Objective{
		Name:        "stream_detect_latency",
		Description: "stream events folded to a verdict within the 400ms slot budget",
		Target:      0.99,
		Source: LatencyUnder{
			Hist:      Series{Family: "stream_detect_latency_seconds"},
			Threshold: 0.4,
		},
		Windows: w,
	}
}

// FleetTakeoverLatency is the failover objective: 95% of orphaned
// partitions re-leased within a second, bounding the collection gap a
// replica crash can open.
func FleetTakeoverLatency(w Windows) Objective {
	return Objective{
		Name:        "fleet_takeover_latency",
		Description: "orphaned fleet partitions taken over within 1s of lease expiry",
		Target:      0.95,
		Source: LatencyUnder{
			Hist:      Series{Family: "fleet_takeover_latency_seconds"},
			Threshold: 1.0,
		},
		Windows: w,
	}
}

// unitOrDefault maps a flag-supplied window unit (zero means the
// production one-hour unit) onto a Windows policy.
func unitOrDefault(unit time.Duration) Windows {
	if unit <= 0 {
		return DefaultWindows()
	}
	return ScaledWindows(unit)
}

// ExplorerObjectives is the objective set explorerd runs.
func ExplorerObjectives(unit time.Duration) []Objective {
	w := unitOrDefault(unit)
	return []Objective{ExplorerAvailability(w), ExplorerLatency(w)}
}

// CollectorObjectives is the objective set collect runs: poll
// availability always, plus stream detection latency (absent families
// read as no-data OK) and fleet takeover latency on fleet runs.
func CollectorObjectives(unit time.Duration) []Objective {
	w := unitOrDefault(unit)
	return []Objective{
		CollectorPollAvailability(w),
		StreamDetectLatency(w),
		FleetTakeoverLatency(w),
	}
}

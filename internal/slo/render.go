package slo

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// stamp renders an engine-clock instant for /sloz: UTC RFC3339Nano, so
// the document bytes are a pure function of the injected clock.
func stamp(t time.Time) string { return t.UTC().Format(time.RFC3339Nano) }

// Transition is one alert-machine hop in an objective's history.
type Transition struct {
	At     string     `json:"at"`
	From   AlertState `json:"from"`
	To     AlertState `json:"to"`
	Reason string     `json:"reason,omitempty"`
}

// WindowBurn is one alerting window's burn rate in /sloz.
type WindowBurn struct {
	Window    string  `json:"window"`
	Seconds   float64 `json:"seconds"`
	BurnRate  float64 `json:"burn_rate"`
	Threshold float64 `json:"threshold"`
}

// AlertStatus is one objective's alert machine in /sloz.
type AlertStatus struct {
	State            AlertState   `json:"state"`
	Since            string       `json:"since"`
	Reason           string       `json:"reason,omitempty"`
	TransitionsTotal uint64       `json:"transitions_total"`
	Transitions      []Transition `json:"transitions"`
}

// ObjectiveStatus is one objective's full verdict in /sloz.
type ObjectiveStatus struct {
	Name            string       `json:"name"`
	Description     string       `json:"description,omitempty"`
	Target          float64      `json:"target"`
	SLI             float64      `json:"sli"`
	GoodEvents      float64      `json:"good_events"`
	TotalEvents     float64      `json:"total_events"`
	BudgetRemaining float64      `json:"budget_remaining"`
	BurnRates       []WindowBurn `json:"burn_rates"`
	Alert           AlertStatus  `json:"alert"`
}

// Doc is the /sloz document: every objective's verdict as of the last
// tick. With a pinned clock and a deterministic counter feed its
// marshaled bytes are identical across reruns, worker counts and chaos
// replays.
type Doc struct {
	GeneratedAt string            `json:"generated_at"`
	Ticks       uint64            `json:"ticks"`
	Objectives  []ObjectiveStatus `json:"objectives"`
}

// State builds the current Doc. Objectives appear in registration
// order; call Tick at least once first or every objective reads as a
// full-budget OK.
func (e *Engine) State() Doc {
	e.mu.Lock()
	defer e.mu.Unlock()
	d := Doc{GeneratedAt: stamp(e.lastTick), Ticks: e.ticks}
	for _, st := range e.objs {
		w := st.obj.Windows
		rules := [4]BurnRule{w.Fast, w.Fast, w.Slow, w.Slow}
		durs := [4]time.Duration{w.Fast.Long, w.Fast.Short, w.Slow.Long, w.Slow.Short}
		os := ObjectiveStatus{
			Name:            st.obj.Name,
			Description:     st.obj.Description,
			Target:          st.obj.Target,
			SLI:             st.sli,
			GoodEvents:      st.good,
			TotalEvents:     st.total,
			BudgetRemaining: st.budget,
			Alert: AlertStatus{
				State:            st.state,
				Since:            stamp(st.since),
				Reason:           st.reason,
				TransitionsTotal: st.transTotal,
				Transitions:      append([]Transition(nil), st.transitions...),
			},
		}
		if os.Alert.Transitions == nil {
			os.Alert.Transitions = []Transition{}
		}
		for i, name := range windowNames {
			os.BurnRates = append(os.BurnRates, WindowBurn{
				Window:    name,
				Seconds:   durs[i].Seconds(),
				BurnRate:  st.burns[i],
				Threshold: rules[i].Factor,
			})
		}
		d.Objectives = append(d.Objectives, os)
	}
	if d.Objectives == nil {
		d.Objectives = []ObjectiveStatus{}
	}
	return d
}

// WriteSummary renders the end-of-run SLO table beside the registry's
// WriteSummary: one row per objective with target, SLI, budget left,
// the worst burn rate, and the alert state.
func (e *Engine) WriteSummary(w io.Writer) error {
	d := e.State()
	tw := &tableWriter{w: w}
	tw.printf("\n== service-level objectives ==\n")
	tw.printf("%-28s %9s %9s %9s %10s %10s  %s\n",
		"objective", "target", "sli", "budget", "burn(max)", "events", "alert")
	for _, o := range d.Objectives {
		worst := 0.0
		for _, b := range o.BurnRates {
			if b.BurnRate > worst {
				worst = b.BurnRate
			}
		}
		tw.printf("%-28s %9.5f %9.5f %8.1f%% %9.2fx %10.0f  %s\n",
			o.Name, o.Target, o.SLI, o.BudgetRemaining*100, worst, o.TotalEvents,
			o.Alert.State)
	}
	for _, o := range d.Objectives {
		if o.Alert.State != StateOK && o.Alert.Reason != "" {
			tw.printf("  %s: %s\n", o.Name, strings.TrimSpace(o.Alert.Reason))
		}
	}
	return tw.err
}

// tableWriter accumulates the first write error.
type tableWriter struct {
	w   io.Writer
	err error
}

func (t *tableWriter) printf(format string, args ...any) {
	if t.err == nil {
		_, t.err = fmt.Fprintf(t.w, format, args...)
	}
}

package slo

import (
	"strings"
	"testing"
	"time"

	"jitomev/internal/obs"
)

// fakeClock is a hand-advanced engine clock.
type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_700_000_000, 0).UTC()}
}
func (c *fakeClock) Now() time.Time          { return c.t }
func (c *fakeClock) Advance(d time.Duration) { c.t = c.t.Add(d) }

func TestSources(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("good_total", "route", "a").Add(70)
	reg.Counter("good_total", "route", "b").Add(20)
	reg.Counter("bad_total").Add(10)
	h := reg.Histogram("lat_seconds", []float64{0.1, 0.4, 1})
	for _, v := range []float64{0.05, 0.2, 0.3, 0.9, 5} {
		h.Observe(v)
	}
	ix := NewIndex(reg.Snapshot())

	if g, tot := (GoodBad{
		Good: []Series{{Family: "good_total"}},
		Bad:  []Series{{Family: "bad_total"}},
	}).Eval(ix); g != 90 || tot != 100 {
		t.Errorf("GoodBad = (%v, %v), want (90, 100)", g, tot)
	}
	// A label selector restricts to the matching series.
	if g, _ := (GoodBad{
		Good: []Series{{Family: "good_total", Labels: [][2]string{{"route", "a"}}}},
	}).Eval(ix); g != 70 {
		t.Errorf(`good_total{route="a"} = %v, want 70`, g)
	}
	if g, tot := (GoodTotal{
		Good:  []Series{{Family: "good_total"}},
		Total: []Series{{Family: "good_total"}, {Family: "bad_total"}},
	}).Eval(ix); g != 90 || tot != 100 {
		t.Errorf("GoodTotal = (%v, %v), want (90, 100)", g, tot)
	}
	// LatencyUnder counts observations in buckets bounded <= threshold:
	// 0.05 lands in le=0.1, {0.2, 0.3} in le=0.4; 0.9 and 5 are over.
	if g, tot := (LatencyUnder{
		Hist: Series{Family: "lat_seconds"}, Threshold: 0.4,
	}).Eval(ix); g != 3 || tot != 5 {
		t.Errorf("LatencyUnder = (%v, %v), want (3, 5)", g, tot)
	}
	// Absent families read as no data, not as an error.
	if g, tot := (GoodBad{Good: []Series{{Family: "nope"}}}).Eval(ix); g != 0 || tot != 0 {
		t.Errorf("absent family = (%v, %v), want (0, 0)", g, tot)
	}
}

func TestScaledWindowsReproduceTheBook(t *testing.T) {
	w := ScaledWindows(time.Hour)
	if w.Fast.Long != time.Hour || w.Fast.Short != 5*time.Minute || w.Fast.Factor != 14.4 {
		t.Errorf("fast rule = %+v, want 1h/5m @14.4", w.Fast)
	}
	if w.Slow.Long != 6*time.Hour || w.Slow.Short != 30*time.Minute || w.Slow.Factor != 6 {
		t.Errorf("slow rule = %+v, want 6h/30m @6", w.Slow)
	}
	if w.ClearHold != 10*time.Minute {
		t.Errorf("clear hold = %v, want 10m", w.ClearHold)
	}
	if DefaultWindows() != w {
		t.Error("DefaultWindows differs from ScaledWindows(1h)")
	}
}

// TestBudgetAccounting pins the error-budget arithmetic: the baseline
// is the engine's first tick (pre-engine history spends nothing), and
// the remaining budget is 1 - cumErrRate/(1-target), clamped.
func TestBudgetAccounting(t *testing.T) {
	reg := obs.NewRegistry()
	good := reg.Counter("g_total")
	bad := reg.Counter("b_total")
	good.Add(1000)
	bad.Add(1000) // pre-engine history: must not count against the budget

	clk := newFakeClock()
	eng := New(reg, Config{Now: clk.Now}, Objective{
		Name:   "avail",
		Target: 0.99,
		Source: GoodBad{Good: []Series{{Family: "g_total"}}, Bad: []Series{{Family: "b_total"}}},
	})
	eng.Tick()
	d := eng.State()
	if o := d.Objectives[0]; o.SLI != 1 || o.BudgetRemaining != 1 || o.TotalEvents != 0 {
		t.Errorf("first tick: sli=%v budget=%v total=%v, want 1/1/0", o.SLI, o.BudgetRemaining, o.TotalEvents)
	}

	// 995 good + 5 bad post-baseline: err rate 0.005 against a 0.01
	// budget leaves half of it.
	good.Add(995)
	bad.Add(5)
	clk.Advance(time.Second)
	eng.Tick()
	o := eng.State().Objectives[0]
	if o.SLI != 0.995 || o.TotalEvents != 1000 {
		t.Errorf("sli=%v total=%v, want 0.995/1000", o.SLI, o.TotalEvents)
	}
	if o.BudgetRemaining < 0.499 || o.BudgetRemaining > 0.501 {
		t.Errorf("budget remaining = %v, want ~0.5", o.BudgetRemaining)
	}

	// Burn past the whole budget: remaining clamps at 0.
	bad.Add(1000)
	clk.Advance(time.Second)
	eng.Tick()
	if o := eng.State().Objectives[0]; o.BudgetRemaining != 0 {
		t.Errorf("overspent budget remaining = %v, want 0", o.BudgetRemaining)
	}
}

// TestNoDataReadsOK: an objective over families nobody registered is a
// full-budget OK, not a page.
func TestNoDataReadsOK(t *testing.T) {
	reg := obs.NewRegistry()
	clk := newFakeClock()
	eng := New(reg, Config{Now: clk.Now}, StreamDetectLatency(ScaledWindows(time.Minute)))
	for i := 0; i < 10; i++ {
		clk.Advance(time.Second)
		eng.Tick()
	}
	o := eng.State().Objectives[0]
	if o.SLI != 1 || o.BudgetRemaining != 1 || o.Alert.State != StateOK {
		t.Errorf("no-data objective: sli=%v budget=%v state=%s", o.SLI, o.BudgetRemaining, o.Alert.State)
	}
}

// TestRegistryMirrors: every verdict lands on the registry as a
// Volatile slo_* series, so /metrics carries the same numbers as /sloz.
func TestRegistryMirrors(t *testing.T) {
	reg := obs.NewRegistry()
	bad := reg.Counter("b_total")
	clk := newFakeClock()
	eng := New(reg, Config{Now: clk.Now}, Objective{
		Name:   "avail",
		Target: 0.99,
		Source: GoodBad{Good: []Series{{Family: "g_total"}}, Bad: []Series{{Family: "b_total"}}},
	})
	eng.Tick()
	bad.Add(100)
	clk.Advance(time.Second)
	eng.Tick()

	if got := reg.Value("slo_sli", "slo", "avail"); got != 0 {
		t.Errorf(`slo_sli{slo="avail"} = %v, want 0`, got)
	}
	if got := reg.Value("slo_budget_remaining", "slo", "avail"); got != 0 {
		t.Errorf(`slo_budget_remaining = %v, want 0`, got)
	}
	found := 0
	for _, s := range reg.Snapshot() {
		if strings.HasPrefix(s.Family, "slo_") {
			if !s.Volatile {
				t.Errorf("%s is not Volatile", s.Name)
			}
			found++
		}
	}
	// 2 sli/budget + 4 burn windows + alert state + transitions counter.
	if found < 8 {
		t.Errorf("found %d slo_* series, want >= 8", found)
	}
}

// TestEngineRejectsBadObjectives: name collisions and empty names are
// programming errors worth a panic, same as metric re-registration.
func TestEngineRejectsBadObjectives(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate objective names did not panic")
		}
	}()
	New(obs.NewRegistry(), Config{},
		Objective{Name: "x", Target: 0.9, Source: GoodBad{}},
		Objective{Name: "x", Target: 0.9, Source: GoodBad{}})
}

package slo

import (
	"testing"
	"time"

	"jitomev/internal/obs"
)

// BenchmarkSLOTick measures one full engine tick — registry snapshot,
// source evaluation for five objectives, window arithmetic and alert
// step — over a registry populated the way a real collect run's is.
func BenchmarkSLOTick(b *testing.B) {
	reg := obs.NewRegistry()
	reg.Counter("collector_polls_total").Add(10_000)
	reg.Counter("collector_poll_errors_total").Add(37)
	for _, route := range []string{"recent", "transactions", "other"} {
		for _, oc := range []string{"ok", "throttled", "client_error", "server_error"} {
			reg.Counter("explorer_requests_total", "route", route, "outcome", oc).Add(1000)
		}
		h := reg.Histogram("explorer_request_latency_seconds", []float64{0.01, 0.05, 0.1, 0.5, 1}, "route", route)
		for i := 0; i < 1000; i++ {
			h.Observe(float64(i%100) / 1000)
		}
	}
	clk := newFakeClock()
	objs := append(CollectorObjectives(time.Minute), ExplorerObjectives(time.Minute)...)
	eng := New(reg, Config{Now: clk.Now}, objs...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clk.Advance(time.Second)
		eng.Tick()
	}
}

// BenchmarkSLOState measures building the /sloz document from a ticked
// engine — the per-scrape cost.
func BenchmarkSLOState(b *testing.B) {
	reg := obs.NewRegistry()
	reg.Counter("collector_polls_total").Add(10_000)
	reg.Counter("collector_poll_errors_total").Add(37)
	clk := newFakeClock()
	eng := New(reg, Config{Now: clk.Now}, CollectorObjectives(time.Minute)...)
	for i := 0; i < 100; i++ {
		clk.Advance(time.Second)
		eng.Tick()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = eng.State()
	}
}

package slo

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"

	"jitomev/internal/faults"
	"jitomev/internal/obs"
)

// chaosRun drives one availability objective through a clean → faulting
// → recovered scenario where every event's good/bad outcome comes from
// the pure chaos schedule at a global event index, and the per-tick
// event range is partitioned across `workers` goroutines with a barrier
// before each Tick — the same structure as the pipeline's worker-count
// determinism tests. Returns the marshaled /sloz document.
func chaosRun(t *testing.T, workers int, seed int64) []byte {
	t.Helper()
	reg := obs.NewRegistry()
	good := reg.Counter("sim_good_total")
	bad := reg.Counter("sim_bad_total")
	clk := newFakeClock()
	eng := New(reg, Config{Now: clk.Now}, Objective{
		Name:    "sim_availability",
		Target:  0.99,
		Source:  GoodBad{Good: []Series{{Family: "sim_good_total"}}, Bad: []Series{{Family: "sim_bad_total"}}},
		Windows: ScaledWindows(60 * time.Second),
	})
	eng.Tick()

	const eventsPerTick = 200
	phases := []struct {
		ticks int
		rate  float64
	}{
		{30, 0},   // healthy
		{30, 0.5}, // chaos
		{150, 0},  // recovery (long enough to walk back down the ladder)
	}
	eventIdx := uint64(0)
	for _, ph := range phases {
		sched := faults.Schedule{Seed: seed, Rate: ph.rate}
		for tick := 0; tick < ph.ticks; tick++ {
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				lo := eventIdx + uint64(w*eventsPerTick/workers)
				hi := eventIdx + uint64((w+1)*eventsPerTick/workers)
				wg.Add(1)
				go func(lo, hi uint64) {
					defer wg.Done()
					for i := lo; i < hi; i++ {
						if sched.At(i, faults.HTTPMask) != faults.ClassNone {
							bad.Inc()
						} else {
							good.Inc()
						}
					}
				}(lo, hi)
			}
			wg.Wait() // barrier: the tick sees the whole event range
			eventIdx += eventsPerTick
			clk.Advance(time.Second)
			eng.Tick()
		}
	}
	doc, err := json.MarshalIndent(eng.State(), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

// TestSlozDeterministicAcrossWorkers is the tentpole's acceptance
// criterion: the /sloz document — verdicts, burn rates, budget
// arithmetic, and the full alert-transition sequence with timestamps —
// is bit-identical at Workers 1, 4 and 8, and across a replay of the
// same chaos seed.
func TestSlozDeterministicAcrossWorkers(t *testing.T) {
	base := chaosRun(t, 1, 7)
	for _, workers := range []int{4, 8} {
		if got := chaosRun(t, workers, 7); !bytes.Equal(base, got) {
			t.Errorf("workers=%d: /sloz diverges from workers=1:\n%s\nvs\n%s", workers, base, got)
		}
	}
	if got := chaosRun(t, 1, 7); !bytes.Equal(base, got) {
		t.Error("seed replay diverges from the original run")
	}

	// The scenario must actually exercise the machine: chaos at 50%
	// against a 0.1% budget walks the whole ladder and recovers.
	var doc Doc
	if err := json.Unmarshal(base, &doc); err != nil {
		t.Fatal(err)
	}
	o := doc.Objectives[0]
	if o.Alert.State != StateOK {
		t.Errorf("final state %s, want ok after recovery", o.Alert.State)
	}
	if o.Alert.TransitionsTotal < 2 {
		t.Errorf("only %d transitions — the chaos phase never alerted", o.Alert.TransitionsTotal)
	}
	sawFast := false
	for _, tr := range o.Alert.Transitions {
		if tr.To == StateFastBurn {
			sawFast = true
		}
	}
	if !sawFast {
		t.Error("50% chaos never reached fast_burn")
	}
}

// TestSlozSeedSensitivity: a different chaos seed yields a different
// document — determinism is replay, not constancy.
func TestSlozSeedSensitivity(t *testing.T) {
	if bytes.Equal(chaosRun(t, 1, 7), chaosRun(t, 1, 8)) {
		t.Error("seeds 7 and 8 produced identical /sloz documents")
	}
}

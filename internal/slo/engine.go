package slo

import (
	"fmt"
	"sync"
	"time"

	"jitomev/internal/obs"
)

// Config tunes an Engine. The zero value is production-ready: wall
// clock, default transition history.
type Config struct {
	// Now is the engine's clock. Tests and replay harnesses inject a
	// fake; nil means time.Now. Every verdict, window lookup and
	// transition timestamp flows from this single source, which is what
	// makes /sloz bit-identical across reruns when the clock is pinned.
	Now func() time.Time
	// MaxTransitions caps the per-objective transition history kept for
	// /sloz (0 means 32). The slo_transitions_total counter is not
	// capped.
	MaxTransitions int
}

// cumSample is one tick's cumulative (good, total) reading.
type cumSample struct {
	t           time.Time
	good, total float64
}

// objState is one objective's runtime state: the sample ring the
// sliding windows difference against, the budget baseline, and the
// alert machine.
type objState struct {
	obj  Objective
	keep int // transition-history cap
	ring []cumSample
	// base anchors the error budget at the engine's first tick, so a
	// registry with pre-engine history starts with a full budget.
	baseGood, baseTotal float64

	state      AlertState
	since      time.Time // when the current state was entered
	belowSince time.Time // start of a continuous below-threshold stretch, zero if at/above
	reason     string    // why the current state holds

	transitions []Transition
	transTotal  uint64

	// latest verdict, refreshed every tick.
	sli, budget float64
	burns       [4]float64 // fast_long, fast_short, slow_long, slow_short
	good, total float64

	// registry mirrors (all Volatile: verdicts depend on wall time).
	sliG, budgetG *obs.FloatGauge
	alertG        *obs.Gauge
	transC        *obs.Counter
	burnG         [4]*obs.FloatGauge
}

// windowNames label the burns array in slo_burn_rate and /sloz.
var windowNames = [4]string{"fast_long", "fast_short", "slow_long", "slow_short"}

// Engine evaluates a set of objectives against one registry. All
// methods are safe for concurrent use; Tick is the only mutator.
type Engine struct {
	reg     *obs.Registry
	now     func() time.Time
	maxKeep int

	mu       sync.Mutex
	objs     []*objState
	ticks    uint64
	lastTick time.Time
}

// New compiles objectives against reg. Objective names must be
// non-empty and unique — two objectives claiming one name is a bug
// worth failing loudly on, same as metric re-registration.
func New(reg *obs.Registry, cfg Config, objs ...Objective) *Engine {
	e := &Engine{reg: reg, now: cfg.Now, maxKeep: cfg.MaxTransitions}
	if e.now == nil {
		e.now = time.Now
	}
	if e.maxKeep <= 0 {
		e.maxKeep = 32
	}
	seen := make(map[string]bool, len(objs))
	for _, o := range objs {
		if o.Name == "" {
			panic("slo: objective with empty name")
		}
		if seen[o.Name] {
			panic(fmt.Sprintf("slo: duplicate objective %q", o.Name))
		}
		seen[o.Name] = true
		st := &objState{obj: o.resolved(), keep: e.maxKeep, sli: 1, budget: 1}
		st.sliG = reg.FloatGauge("slo_sli", "slo", o.Name)
		st.budgetG = reg.FloatGauge("slo_budget_remaining", "slo", o.Name)
		st.alertG = reg.Gauge("slo_alert_state", "slo", o.Name)
		st.transC = reg.Counter("slo_transitions_total", "slo", o.Name)
		for i, w := range windowNames {
			st.burnG[i] = reg.FloatGauge("slo_burn_rate", "slo", o.Name, "window", w)
		}
		st.sliG.Set(1)
		st.budgetG.Set(1)
		e.objs = append(e.objs, st)
	}
	reg.Volatile("slo_sli", "slo_budget_remaining", "slo_alert_state",
		"slo_transitions_total", "slo_burn_rate")
	reg.Help("slo_sli", "Cumulative service-level indicator per objective (good/total since engine start).")
	reg.Help("slo_budget_remaining", "Fraction of the error budget remaining, clamped to [0,1].")
	reg.Help("slo_burn_rate", "Error-budget burn rate per alerting window (1 = burning exactly at budget).")
	reg.Help("slo_alert_state", "Alert machine state: 0 ok, 1 slow_burn, 2 fast_burn.")
	reg.Help("slo_transitions_total", "Alert state transitions since engine start.")
	return e
}

// Tick evaluates every objective against one registry snapshot at the
// engine clock's current instant and advances the alert machines.
func (e *Engine) Tick() {
	now := e.now()
	ix := NewIndex(e.reg.Snapshot())
	e.mu.Lock()
	defer e.mu.Unlock()
	first := e.ticks == 0
	e.ticks++
	e.lastTick = now
	for _, st := range e.objs {
		good, total := st.obj.Source.Eval(ix)
		if first {
			st.baseGood, st.baseTotal = good, total
			st.since = now
		}
		st.ring = append(st.ring, cumSample{t: now, good: good, total: total})
		st.evict(now)
		st.evaluate(now)
	}
}

// evict drops ring samples older than the longest alert window, always
// keeping one boundary sample at or beyond it so window lookups can
// still difference across the full span.
func (st *objState) evict(now time.Time) {
	maxW := st.obj.Windows.Fast.Long
	if w := st.obj.Windows.Slow.Long; w > maxW {
		maxW = w
	}
	cutoff := now.Add(-maxW)
	keepFrom := 0
	for i, s := range st.ring {
		if !s.t.After(cutoff) {
			keepFrom = i // latest sample still at/before the boundary
		} else {
			break
		}
	}
	if keepFrom > 0 {
		st.ring = append(st.ring[:0], st.ring[keepFrom:]...)
	}
}

// windowErrRate is the error rate over the window ending now: the
// difference between the latest sample and the latest sample at least w
// old (clamped to engine lifetime). No events in the window reads as a
// zero error rate — silence is not an outage; absence of polls is the
// quality sentinel's beat.
func (st *objState) windowErrRate(now time.Time, w time.Duration) float64 {
	latest := st.ring[len(st.ring)-1]
	cutoff := now.Add(-w)
	ref := st.ring[0]
	for _, s := range st.ring[1:] {
		if s.t.After(cutoff) {
			break
		}
		ref = s
	}
	dTotal := latest.total - ref.total
	if dTotal <= 0 {
		return 0
	}
	dErr := (latest.total - latest.good) - (ref.total - ref.good)
	if dErr < 0 {
		dErr = 0
	}
	return dErr / dTotal
}

// evaluate refreshes the objective's verdict from its ring and runs one
// alert-machine step at instant now. Caller holds the engine lock.
func (st *objState) evaluate(now time.Time) {
	latest := st.ring[len(st.ring)-1]
	st.good = latest.good - st.baseGood
	st.total = latest.total - st.baseTotal

	budgetFrac := 1 - st.obj.Target // the error budget as an error-rate allowance
	st.sli = 1.0
	if st.total > 0 {
		st.sli = st.good / st.total
	}
	st.budget = 1.0
	if st.total > 0 && budgetFrac > 0 {
		st.budget = 1 - (1-st.sli)/budgetFrac
		if st.budget < 0 {
			st.budget = 0
		} else if st.budget > 1 {
			st.budget = 1
		}
	}

	w := st.obj.Windows
	durs := [4]time.Duration{w.Fast.Long, w.Fast.Short, w.Slow.Long, w.Slow.Short}
	for i, d := range durs {
		burn := 0.0
		if budgetFrac > 0 {
			burn = st.windowErrRate(now, d) / budgetFrac
		}
		st.burns[i] = burn
	}

	// Desired state: the most severe rule whose long AND short windows
	// both exceed its factor.
	desired := StateOK
	reason := ""
	if st.burns[2] >= w.Slow.Factor && st.burns[3] >= w.Slow.Factor {
		desired = StateSlowBurn
		reason = fmt.Sprintf("slow burn %.2fx over %s and %.2fx over %s (threshold %.1fx)",
			st.burns[2], w.Slow.Long, st.burns[3], w.Slow.Short, w.Slow.Factor)
	}
	if st.burns[0] >= w.Fast.Factor && st.burns[1] >= w.Fast.Factor {
		desired = StateFastBurn
		reason = fmt.Sprintf("fast burn %.2fx over %s and %.2fx over %s (threshold %.1fx)",
			st.burns[0], w.Fast.Long, st.burns[1], w.Fast.Short, w.Fast.Factor)
	}

	switch {
	case desired > st.state:
		// Escalation is immediate — hysteresis only slows the way down.
		st.transition(now, desired, reason)
	case desired == st.state:
		st.belowSince = time.Time{}
		if reason != "" {
			st.reason = reason
		}
	default: // desired < st.state: de-escalate only after ClearHold
		if st.belowSince.IsZero() {
			st.belowSince = now
		}
		if now.Sub(st.belowSince) >= w.ClearHold {
			r := reason
			if r == "" {
				r = fmt.Sprintf("burn below threshold for %s", w.ClearHold)
			}
			st.transition(now, desired, r)
		} else {
			st.reason = fmt.Sprintf("%s (clearing: below threshold %s of %s)",
				st.reason, now.Sub(st.belowSince), w.ClearHold)
		}
	}

	st.sliG.Set(st.sli)
	st.budgetG.Set(st.budget)
	st.alertG.Set(int64(st.state))
	for i := range st.burns {
		st.burnG[i].Set(st.burns[i])
	}
}

// transition moves the alert machine to next, recording the hop.
func (st *objState) transition(now time.Time, next AlertState, reason string) {
	st.transitions = append(st.transitions, Transition{
		At: stamp(now), From: st.state, To: next, Reason: reason,
	})
	if len(st.transitions) > st.keep {
		st.transitions = append(st.transitions[:0], st.transitions[len(st.transitions)-st.keep:]...)
	}
	st.state = next
	st.since = now
	st.belowSince = time.Time{}
	st.reason = reason
	st.transTotal++
	st.transC.Inc()
}

// Start runs Tick on a fixed interval until the returned stop function
// is called. stop blocks until the loop has exited.
func (e *Engine) Start(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = time.Second
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				e.Tick()
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() { close(done) })
		<-finished
	}
}

// HealthSource is the engine's contribution to /healthz: unhealthy
// exactly when some objective is in fast burn — the page-worthy state —
// so a slow burn warns on /sloz without failing the probe.
func (e *Engine) HealthSource() obs.HealthSource {
	return obs.HealthSource{
		Name: "slo",
		Check: func() (bool, string) {
			e.mu.Lock()
			defer e.mu.Unlock()
			for _, st := range e.objs {
				if st.state == StateFastBurn {
					return false, fmt.Sprintf("objective %s in fast burn: %s", st.obj.Name, st.reason)
				}
			}
			return true, ""
		},
	}
}

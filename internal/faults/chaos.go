package faults

import (
	"bytes"
	"fmt"
	"net/http"
	"time"

	"jitomev/internal/obs"
)

// ChaosConfig shapes the wire-level faults ChaosHandler injects.
type ChaosConfig struct {
	// SlowDelay is how long a ClassTimeout request stalls before being
	// served normally. Pair it with the client's timeout: shorter means
	// "slow response", longer means "client-observed timeout". 0 selects
	// 50ms.
	SlowDelay time.Duration
	// RetryAfter is the base delay advertised on 429/503 responses
	// (scaled 1–3× per fault), written as fractional seconds. 0 selects
	// 20ms.
	RetryAfter time.Duration
}

func (c ChaosConfig) slowDelay() time.Duration {
	if c.SlowDelay <= 0 {
		return 50 * time.Millisecond
	}
	return c.SlowDelay
}

func (c ChaosConfig) retryAfter() time.Duration {
	if c.RetryAfter <= 0 {
		return 20 * time.Millisecond
	}
	return c.RetryAfter
}

// ChaosHandler wraps an HTTP handler (typically explorer.NewServer) with
// wire-level fault injection on the Injector's deterministic schedule:
// 429 with Retry-After, 5xx, slow responses, and truncated or corrupt
// JSON bodies. This is the explorer server's chaos mode — the faithful
// way to exercise the collector's HTTP hardening, since the faults travel
// through a real client, real headers and a real JSON decoder.
//
// The schedule is per request index; with a single sequential client the
// injected sequence is exactly reproducible. Retried requests consume
// fresh indices, as real repeated requests would.
func ChaosHandler(next http.Handler, inj *Injector, cfg ChaosConfig) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		class, idx := inj.Next(HTTPMask)
		// When the request rides a sampled trace (the trace middleware
		// runs outside this wrapper), pin the injected fault to it: the
		// trace is force-kept and annotated, so /tracez answers "which
		// request did this fault hit".
		if class != ClassNone {
			if tr := obs.TraceFromContext(r.Context()); tr != nil {
				tr.Annotate("fault:" + class.String())
				tr.FlagKeep("fault")
				inj.Attribute(class)
			}
		}
		switch class {
		case ClassNone:
			next.ServeHTTP(w, r)
		case ClassThrottle:
			scale := 1 + time.Duration(hash(inj.Seed(), idx, 0x7e7a)%3)
			ra := scale * cfg.retryAfter()
			w.Header().Set("Retry-After", fmt.Sprintf("%.3f", ra.Seconds()))
			http.Error(w, "rate limit exceeded (chaos)", http.StatusTooManyRequests)
		case ClassServer:
			statuses := [...]int{http.StatusInternalServerError,
				http.StatusBadGateway, http.StatusServiceUnavailable}
			status := statuses[hash(inj.Seed(), idx, 0x5e4e)%3]
			if status == http.StatusServiceUnavailable {
				w.Header().Set("Retry-After", fmt.Sprintf("%.3f", cfg.retryAfter().Seconds()))
			}
			http.Error(w, "server error (chaos)", status)
		case ClassTimeout:
			time.Sleep(cfg.slowDelay())
			next.ServeHTTP(w, r)
		case ClassTruncate:
			rec := record(next, r)
			copyHeader(w.Header(), rec.header)
			w.WriteHeader(rec.status)
			// Cut the body mid-stream: an aborted response that decodes
			// to an unexpected EOF.
			w.Write(rec.body.Bytes()[:rec.body.Len()/2]) //nolint:errcheck
		case ClassCorrupt:
			rec := record(next, r)
			body := rec.body.Bytes()
			// Flip a handful of bytes at deterministic offsets — invalid
			// JSON that still arrives with status 200.
			for k := uint64(0); k < 4 && rec.body.Len() > 0; k++ {
				off := int(hash(inj.Seed(), idx, 0xc042+k) % uint64(len(body)))
				body[off] ^= 0x5a
			}
			copyHeader(w.Header(), rec.header)
			w.WriteHeader(rec.status)
			w.Write(body) //nolint:errcheck
		}
	})
}

func copyHeader(dst, src http.Header) {
	for k, v := range src {
		dst[k] = v
	}
}

// recorder buffers a downstream response so the chaos layer can damage it
// before it hits the wire.
type recorder struct {
	status int
	header http.Header
	body   bytes.Buffer
}

func record(next http.Handler, r *http.Request) *recorder {
	rec := &recorder{status: http.StatusOK, header: make(http.Header)}
	next.ServeHTTP(rec, r)
	return rec
}

// Header implements http.ResponseWriter.
func (r *recorder) Header() http.Header { return r.header }

// Write implements http.ResponseWriter.
func (r *recorder) Write(p []byte) (int, error) { return r.body.Write(p) }

// WriteHeader implements http.ResponseWriter.
func (r *recorder) WriteHeader(status int) { r.status = status }

package faults

import (
	"io"
	"sync"
	"time"

	"jitomev/internal/jito"
	"jitomev/internal/obs"
	"jitomev/internal/solana"
)

// Inner is the transport surface the wrapper faults — structurally
// identical to collector.Transport (this package cannot import the
// collector, which imports it for the taxonomy; Go's structural
// interfaces make the two interchangeable).
type Inner interface {
	RecentBundles(limit int) ([]jito.BundleRecord, error)
	RecentBundlesBefore(beforeSeq uint64, limit int) ([]jito.BundleRecord, error)
	TxDetails(ids []solana.Signature) ([]jito.TxDetail, error)
}

// TransportOptions tune the injected faults' shape (never their schedule,
// which belongs to the Injector).
type TransportOptions struct {
	// SlowDelay is a real sleep added before ClassTimeout errors, to
	// exercise wall-clock-sensitive consumers. 0 (the default) fails
	// immediately — chaos soaks stay fast.
	SlowDelay time.Duration
	// RetryAfter is the base server-suggested delay attached to throttle
	// faults (scaled 1–3× per fault). 0 selects 20ms.
	RetryAfter time.Duration
}

func (o TransportOptions) retryAfter() time.Duration {
	if o.RetryAfter <= 0 {
		return 20 * time.Millisecond
	}
	return o.RetryAfter
}

// Transport wraps an Inner transport and injects the failure taxonomy on
// the Injector's deterministic schedule. It satisfies collector.Transport.
//
// Fault semantics per class:
//
//	transport, timeout      — the call fails without reaching Inner
//	throttle, server        — the call fails as HTTP 429/5xx would surface
//	truncate, corrupt       — Inner is consulted but the "body" fails to
//	                          decode, exactly as a damaged payload surfaces
//	                          through a JSON decoder
//	partial (details only)  — a deterministic subset of details is dropped
//	duplicate, reorder      — page entries are repeated / permuted
type Transport struct {
	Inner    Inner
	Injector *Injector
	Opts     TransportOptions

	// traceMu guards the bound span context (see BindTrace).
	traceMu  sync.Mutex
	traceCtx obs.SpanCtx
}

// WrapTransport builds a fault-injecting transport over inner.
func WrapTransport(inner Inner, inj *Injector, opts TransportOptions) *Transport {
	return &Transport{Inner: inner, Injector: inj, Opts: opts}
}

// BindTrace accepts the collector's trace binding and forwards it to
// the inner transport when that one is itself a carrier. Faults this
// wrapper injects while a sampled context is bound are attributed to
// the trace (a fault:<class> child span, force-kept), so the chaos
// wrapper is transparent to latency attribution.
func (t *Transport) BindTrace(ctx obs.SpanCtx) {
	t.traceMu.Lock()
	t.traceCtx = ctx
	t.traceMu.Unlock()
	if tb, ok := t.Inner.(interface{ BindTrace(obs.SpanCtx) }); ok {
		tb.BindTrace(ctx)
	}
}

// attribute pins an injected fault to the bound trace, when sampled.
func (t *Transport) attribute(class Class) {
	if class == ClassNone {
		return
	}
	t.traceMu.Lock()
	ctx := t.traceCtx
	t.traceMu.Unlock()
	if !ctx.Sampled() {
		return
	}
	sp := ctx.StartChild("fault:" + class.String())
	sp.FlagKeep("fault")
	sp.MarkError()
	sp.End()
	t.Injector.Attribute(class)
}

// errorFor builds the typed error for an error-shaped fault class.
func (t *Transport) errorFor(class Class, idx uint64) error {
	switch class {
	case ClassTransport:
		return &Error{Class: ClassTransport}
	case ClassThrottle:
		scale := 1 + time.Duration(hash(t.Injector.Seed(), idx, 0x7e7a)%3)
		return &Error{Class: ClassThrottle, Status: 429, RetryAfter: scale * t.Opts.retryAfter()}
	case ClassServer:
		statuses := [...]int{500, 502, 503}
		return &Error{Class: ClassServer, Status: statuses[hash(t.Injector.Seed(), idx, 0x5e4e)%3]}
	case ClassTimeout:
		if t.Opts.SlowDelay > 0 {
			time.Sleep(t.Opts.SlowDelay)
		}
		return &Error{Class: ClassTimeout}
	case ClassTruncate:
		return &Error{Class: ClassTruncate, Err: io.ErrUnexpectedEOF}
	case ClassCorrupt:
		return &Error{Class: ClassCorrupt}
	}
	return nil
}

// page applies a page-level fault to a successful inner response.
func (t *Transport) page(recs []jito.BundleRecord, class Class, idx uint64) []jito.BundleRecord {
	switch class {
	case ClassDuplicate:
		return duplicateEntries(recs, t.Injector.Seed(), idx)
	case ClassReorder:
		return reorderEntries(recs, t.Injector.Seed(), idx)
	}
	return recs
}

// RecentBundles implements the transport contract with page faults.
func (t *Transport) RecentBundles(limit int) ([]jito.BundleRecord, error) {
	class, idx := t.Injector.Next(PageMask)
	t.attribute(class)
	if err := t.errorFor(class, idx); err != nil {
		return nil, err
	}
	recs, err := t.Inner.RecentBundles(limit)
	if err != nil {
		return nil, err
	}
	return t.page(recs, class, idx), nil
}

// RecentBundlesBefore implements the transport contract with page faults.
func (t *Transport) RecentBundlesBefore(beforeSeq uint64, limit int) ([]jito.BundleRecord, error) {
	class, idx := t.Injector.Next(PageMask)
	t.attribute(class)
	if err := t.errorFor(class, idx); err != nil {
		return nil, err
	}
	recs, err := t.Inner.RecentBundlesBefore(beforeSeq, limit)
	if err != nil {
		return nil, err
	}
	return t.page(recs, class, idx), nil
}

// TxDetails implements the transport contract with detail faults.
func (t *Transport) TxDetails(ids []solana.Signature) ([]jito.TxDetail, error) {
	class, idx := t.Injector.Next(DetailMask)
	t.attribute(class)
	if err := t.errorFor(class, idx); err != nil {
		return nil, err
	}
	details, err := t.Inner.TxDetails(ids)
	if err != nil {
		return nil, err
	}
	if class == ClassPartial {
		details = dropDetails(details, t.Injector.Seed(), idx)
	}
	return details, nil
}

// duplicateEntries repeats ~1/8 of the page's entries (at least one),
// deterministically in (seed, idx). The dedup window must absorb them.
func duplicateEntries(recs []jito.BundleRecord, seed int64, idx uint64) []jito.BundleRecord {
	if len(recs) == 0 {
		return recs
	}
	out := make([]jito.BundleRecord, 0, len(recs)+len(recs)/8+1)
	dups := 0
	for i, r := range recs {
		out = append(out, r)
		if hash(seed, idx, 0xd0b1e+uint64(i))%8 == 0 {
			out = append(out, r)
			dups++
		}
	}
	if dups == 0 {
		out = append(out, recs[len(recs)-1])
	}
	return out
}

// reorderEntries permutes the page with a deterministic Fisher–Yates
// shuffle keyed on (seed, idx).
func reorderEntries(recs []jito.BundleRecord, seed int64, idx uint64) []jito.BundleRecord {
	out := append([]jito.BundleRecord(nil), recs...)
	for i := len(out) - 1; i > 0; i-- {
		j := int(hash(seed, idx, 0x4e04de4+uint64(i)) % uint64(i+1))
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// dropDetails removes ~1/4 of the response's details (at least one when
// the response is non-empty), deterministically in (seed, idx) — a bulk
// endpoint silently omitting ids it failed to look up.
func dropDetails(details []jito.TxDetail, seed int64, idx uint64) []jito.TxDetail {
	if len(details) == 0 {
		return details
	}
	out := details[:0]
	dropped := 0
	for i := range details {
		if hash(seed, idx, 0x9a47a1+uint64(i))%4 == 0 {
			dropped++
			continue
		}
		out = append(out, details[i])
	}
	if dropped == 0 {
		out = out[:len(out)-1]
	}
	return out
}

package faults

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
)

// adminDoc is the /chaosz document: the injector's live schedule
// parameters and what it has injected so far.
type adminDoc struct {
	Seed     int64             `json:"seed"`
	Rate     float64           `json:"rate"`
	Calls    uint64            `json:"calls"`
	Injected map[string]uint64 `json:"injected"`
}

// AdminHandler serves the chaos-admin endpoint. GET reports the
// injector's seed, live fault rate, consumed call count and per-class
// injected tally. POST sets the rate mid-run — body is either a JSON
// object {"rate": 0.5} or a form/query parameter rate=0.5 — so a load
// smoke can walk the server through healthy → faulting → recovered
// without a restart. The seed is immutable: at any rate the decision
// stream stays the pure Schedule function of (seed, rate, index).
func AdminHandler(in *Injector) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		switch req.Method {
		case http.MethodGet:
			// fallthrough to the status document below
		case http.MethodPost:
			rate, err := parseRate(req)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			in.SetRate(rate)
		default:
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		st := in.Stats()
		doc := adminDoc{
			Seed:     in.Seed(),
			Rate:     in.Rate(),
			Calls:    in.Calls(),
			Injected: make(map[string]uint64),
		}
		for c := ClassTransport; c < NumClasses; c++ {
			if st[c] > 0 {
				doc.Injected[c.String()] = st[c]
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(doc)
	})
}

// parseRate extracts the requested fault rate from a POST: JSON body
// first, then the rate form/query value.
func parseRate(req *http.Request) (float64, error) {
	if ct := req.Header.Get("Content-Type"); ct == "application/json" {
		var body struct {
			Rate *float64 `json:"rate"`
		}
		dec := json.NewDecoder(req.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&body); err != nil {
			return 0, fmt.Errorf("bad JSON body: %v", err)
		}
		if body.Rate == nil {
			return 0, fmt.Errorf("missing rate")
		}
		return *body.Rate, nil
	}
	if err := req.ParseForm(); err != nil {
		return 0, fmt.Errorf("bad form: %v", err)
	}
	v := req.Form.Get("rate")
	if v == "" {
		return 0, fmt.Errorf("missing rate")
	}
	rate, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("bad rate %q: %v", v, err)
	}
	return rate, nil
}

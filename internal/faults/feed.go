package faults

// FeedChaos scrambles a per-bundle delivery feed on the deterministic
// schedule: a schedule-selected subset of deliveries arrives late by
// 1..MaxDelaySlots slots (so they land out of slot order), and another
// subset is delivered twice. It exists for the streaming detection
// engine's watermark path — delayed deliveries exercise out-of-order
// sealing, duplicates exercise the feed-level dedup — but is usable by
// any consumer that replays an ordered event sequence.
//
// Like every injector-backed fault source, the plan for delivery i is a
// pure function of (seed, rate, i): the same feed scrambled twice yields
// the same arrival order, so chaos-fed determinism tests stay exact.
type FeedChaos struct {
	inj *Injector
	// MaxDelaySlots bounds how late a delayed delivery arrives (≥ 1).
	MaxDelaySlots int
}

// NewFeedChaos builds a feed scrambler over the injector's schedule.
// maxDelaySlots ≤ 0 selects 1 (the minimum observable delay).
func NewFeedChaos(inj *Injector, maxDelaySlots int) *FeedChaos {
	if maxDelaySlots <= 0 {
		maxDelaySlots = 1
	}
	return &FeedChaos{inj: inj, MaxDelaySlots: maxDelaySlots}
}

// Plan consumes one delivery index and returns its fault: ClassNone
// (deliver on time), ClassDelay with 1..MaxDelaySlots slots of lateness,
// or ClassDuplicate (deliver on time, then once more). The delay amount
// is derived from the same index hash as the class, so it is as
// deterministic as the schedule itself.
func (f *FeedChaos) Plan() (class Class, delaySlots int) {
	c, idx := f.inj.Next(FeedMask)
	if c != ClassDelay {
		return c, 0
	}
	h := hash(f.inj.Seed(), idx, 0xde1a9)
	return c, 1 + int(h%uint64(f.MaxDelaySlots))
}

package faults

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestAdminHandler exercises the /chaosz contract: GET reports the live
// schedule, POST (JSON or form) retunes the rate with clamping, and the
// injected tally shows up once faults fire.
func TestAdminHandler(t *testing.T) {
	in := NewInjector(7, 0)
	h := AdminHandler(in)

	get := func() adminDoc {
		t.Helper()
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/chaosz", nil))
		if rec.Code != 200 {
			t.Fatalf("GET /chaosz: status %d", rec.Code)
		}
		var doc adminDoc
		if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
			t.Fatalf("GET /chaosz body %q: %v", rec.Body.String(), err)
		}
		return doc
	}

	if doc := get(); doc.Rate != 0 || doc.Seed != 7 {
		t.Errorf("initial doc = %+v, want rate 0 seed 7", doc)
	}

	// POST JSON sets the rate and echoes the new document.
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("POST", "/chaosz", strings.NewReader(`{"rate": 0.5}`))
	req.Header.Set("Content-Type", "application/json")
	h.ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("POST /chaosz: status %d body %s", rec.Code, rec.Body.String())
	}
	if got := in.Rate(); got != 0.5 {
		t.Errorf("rate after JSON POST = %v, want 0.5", got)
	}

	// POST form works too, and the rate clamps to [0,1].
	rec = httptest.NewRecorder()
	req = httptest.NewRequest("POST", "/chaosz", strings.NewReader("rate=7"))
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	h.ServeHTTP(rec, req)
	if rec.Code != 200 || in.Rate() != 1 {
		t.Errorf("form POST: status %d rate %v, want 200 and clamp to 1", rec.Code, in.Rate())
	}

	// A missing rate is a 400, not a silent no-op.
	rec = httptest.NewRecorder()
	req = httptest.NewRequest("POST", "/chaosz", strings.NewReader(`{}`))
	req.Header.Set("Content-Type", "application/json")
	h.ServeHTTP(rec, req)
	if rec.Code != 400 {
		t.Errorf("POST without rate: status %d, want 400", rec.Code)
	}
	if in.Rate() != 1 {
		t.Errorf("failed POST changed the rate to %v", in.Rate())
	}

	// At rate 1 every call faults; the tally appears on GET.
	for i := 0; i < 10; i++ {
		in.Next(HTTPMask)
	}
	doc := get()
	if doc.Calls != 10 {
		t.Errorf("calls = %d, want 10", doc.Calls)
	}
	var sum uint64
	for _, n := range doc.Injected {
		sum += n
	}
	if sum != 10 {
		t.Errorf("injected tally sums to %d, want 10 (doc %+v)", sum, doc)
	}
}

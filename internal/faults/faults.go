// Package faults is the failure taxonomy of the paper's data source and a
// deterministic injector for it. The paper's dataset exists only because
// its scraper survived four months of an undocumented, rate-limited web
// API — outages, throttling and traffic spikes are first-class phenomena
// (§3.1's overlap check, the grey gaps in Figures 1–2). This package makes
// those failures reproducible: every injected fault is a pure function of
// (seed, call index), so a chaos run is exactly repeatable and
// bit-identical at any worker count.
//
// The package has three faces:
//
//   - the taxonomy itself (Class, Error, Classify) — shared vocabulary
//     between the injectors and the hardened consumers in
//     internal/collector, which count what they survive per class;
//   - Transport, a fault-injecting wrapper around any collector-style
//     transport (the in-process chaos path);
//   - ChaosHandler, HTTP middleware that injects wire-level faults
//     (429 + Retry-After, 5xx, slow responses, truncated and corrupt
//     JSON) in front of the explorer server (the faithful chaos path).
package faults

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"strings"
	"sync/atomic"
	"time"

	"jitomev/internal/obs"
)

// Class identifies one failure mode of the explorer API, as the paper's
// scraper experienced them.
type Class int

const (
	// ClassNone is the absence of a fault (the call proceeds normally).
	ClassNone Class = iota
	// ClassTransport is a connection-level failure: reset, refused, EOF.
	ClassTransport
	// ClassThrottle is HTTP 429, optionally carrying Retry-After.
	ClassThrottle
	// ClassServer is HTTP 5xx (500/502/503).
	ClassServer
	// ClassTimeout is a request that exceeds its deadline (or a response
	// slow enough that the client gives up).
	ClassTimeout
	// ClassTruncate is a response body cut off mid-stream.
	ClassTruncate
	// ClassCorrupt is a response body with flipped bytes (invalid JSON).
	ClassCorrupt
	// ClassPartial is a detail response missing some requested ids.
	ClassPartial
	// ClassDuplicate is a page with repeated entries.
	ClassDuplicate
	// ClassReorder is a page with entries out of acceptance order.
	ClassReorder
	// ClassDelay is a bundle delivered late — it arrives after bundles
	// from younger slots, the out-of-order arrival a streaming consumer's
	// watermark must absorb (or count as dropped when the delay exceeds
	// its allowed lateness).
	ClassDelay
	// ClassCrash is a whole-process death: the replica stops mid-batch
	// without releasing its leases or flushing its in-memory progress —
	// the failure mode a fleet's lease TTL plus checkpoint resume exists
	// to absorb.
	ClassCrash
	// ClassPartition is a split-brain network partition from the
	// coordinator: the replica keeps fetching and writing but can no
	// longer renew its lease, so after takeover every one of its
	// checkpoint writes must be fenced off by the epoch check.
	ClassPartition

	// NumClasses bounds the taxonomy (ClassNone included).
	NumClasses
)

var classNames = [NumClasses]string{
	"none", "transport", "throttle", "server", "timeout",
	"truncate", "corrupt", "partial", "duplicate", "reorder", "delay",
	"crash", "partition",
}

// String implements fmt.Stringer.
func (c Class) String() string {
	if c < 0 || c >= NumClasses {
		return fmt.Sprintf("class(%d)", int(c))
	}
	return classNames[c]
}

// Mask selects a subset of classes an injection site can produce: a page
// request cannot suffer a partial-details fault, an HTTP middleware cannot
// reorder entries it never parses.
type Mask uint16

// Has reports whether the mask includes c.
func (m Mask) Has(c Class) bool { return m&(1<<uint(c)) != 0 }

// MaskOf builds a mask from classes.
func MaskOf(classes ...Class) Mask {
	var m Mask
	for _, c := range classes {
		m |= 1 << uint(c)
	}
	return m
}

// Masks for the standard injection sites.
var (
	// PageMask: faults a recent-bundles (or backfill cursor) call can hit.
	PageMask = MaskOf(ClassTransport, ClassThrottle, ClassServer, ClassTimeout,
		ClassTruncate, ClassCorrupt, ClassDuplicate, ClassReorder)
	// DetailMask: faults a bulk transaction-details call can hit.
	DetailMask = MaskOf(ClassTransport, ClassThrottle, ClassServer, ClassTimeout,
		ClassTruncate, ClassCorrupt, ClassPartial)
	// HTTPMask: faults the wire-level chaos middleware can inject.
	HTTPMask = MaskOf(ClassThrottle, ClassServer, ClassTimeout,
		ClassTruncate, ClassCorrupt)
	// FeedMask: faults a per-bundle delivery feed can suffer — late
	// (out-of-order) arrival and repeated delivery.
	FeedMask = MaskOf(ClassDelay, ClassDuplicate)
	// ReplicaMask: whole-replica faults a fleet member can suffer —
	// crashing outright or being partitioned away from the coordinator.
	ReplicaMask = MaskOf(ClassCrash, ClassPartition)
)

// classes expands the mask into a stable, ascending class list.
func (m Mask) classes() []Class {
	out := make([]Class, 0, NumClasses)
	for c := ClassTransport; c < NumClasses; c++ {
		if m.Has(c) {
			out = append(out, c)
		}
	}
	return out
}

// Error is a classified failure. The injectors return it and the hardened
// HTTP transport converts real wire failures into it, so every consumer
// counts faults with one vocabulary.
type Error struct {
	Class      Class
	Status     int           // HTTP status, when Class is Throttle/Server
	RetryAfter time.Duration // server-suggested delay (0 = none given)
	Err        error         // wrapped cause, may be nil for injected faults
}

// Error implements error.
func (e *Error) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "faults: %s", e.Class)
	if e.Status != 0 {
		fmt.Fprintf(&b, " (HTTP %d)", e.Status)
	}
	if e.RetryAfter > 0 {
		fmt.Fprintf(&b, " retry-after %s", e.RetryAfter)
	}
	if e.Err != nil {
		fmt.Fprintf(&b, ": %v", e.Err)
	}
	return b.String()
}

// Unwrap exposes the cause to errors.Is/As.
func (e *Error) Unwrap() error { return e.Err }

// Timeout implements the net.Error-style timeout probe.
func (e *Error) Timeout() bool { return e.Class == ClassTimeout }

// Temporary reports whether retrying may succeed: everything except
// corrupt payloads (which a retry of the same cached page may repeat).
func (e *Error) Temporary() bool { return e.Class != ClassCorrupt }

// Classify maps any error onto the taxonomy. Typed *Error values carry
// their class; otherwise timeouts, context deadlines, truncated streams
// and JSON syntax errors are recognized structurally, and everything else
// is a transport-level failure.
func Classify(err error) Class {
	if err == nil {
		return ClassNone
	}
	var fe *Error
	if errors.As(err, &fe) {
		return fe.Class
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return ClassTimeout
	}
	var to interface{ Timeout() bool }
	if errors.As(err, &to) && to.Timeout() {
		return ClassTimeout
	}
	if errors.Is(err, io.ErrUnexpectedEOF) {
		return ClassTruncate
	}
	var syn *json.SyntaxError
	var typ *json.UnmarshalTypeError
	if errors.As(err, &syn) || errors.As(err, &typ) {
		return ClassCorrupt
	}
	return ClassTransport
}

// Stats counts faults per class. Not synchronized: each consumer owns its
// own Stats (the Injector keeps its own atomic tally and snapshots it).
type Stats [NumClasses]uint64

// Record counts one classified error (nil errors are ignored).
func (s *Stats) Record(err error) {
	if c := Classify(err); c != ClassNone {
		s[c]++
	}
}

// Add counts one occurrence of class c.
func (s *Stats) Add(c Class) {
	if c > ClassNone && c < NumClasses {
		s[c]++
	}
}

// Total sums all fault classes (ClassNone excluded).
func (s Stats) Total() uint64 {
	var n uint64
	for c := ClassTransport; c < NumClasses; c++ {
		n += s[c]
	}
	return n
}

// String renders the non-zero classes, e.g. "throttle=3 server=1".
func (s Stats) String() string {
	var b strings.Builder
	for c := ClassTransport; c < NumClasses; c++ {
		if s[c] == 0 {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", c, s[c])
	}
	if b.Len() == 0 {
		return "none"
	}
	return b.String()
}

// splitmix64 is the SplitMix64 finalizer: a high-quality 64-bit mixer,
// the same construction the workload generator family uses for seedable,
// index-addressable randomness.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// hash derives the fault stream for (seed, index, salt). Pure function:
// the whole chaos schedule and every payload mutation come from it.
func hash(seed int64, index uint64, salt uint64) uint64 {
	return splitmix64(splitmix64(uint64(seed)^salt) ^ splitmix64(index))
}

// unit maps a hash onto [0,1).
func unit(h uint64) float64 { return float64(h>>11) / float64(1<<53) }

// Schedule decides, for each call index, whether to fault and how. It is
// a pure value: At never mutates state, so the same (Seed, Rate) always
// yields the same decision sequence regardless of concurrency.
type Schedule struct {
	// Seed selects the chaos universe.
	Seed int64
	// Rate is the per-call fault probability in [0,1].
	Rate float64
}

// At returns the fault class for the call at index, restricted to mask.
// The fault/no-fault decision depends only on (Seed, Rate, index); the
// class choice additionally depends on the mask so that every faulting
// index yields a class the call site can actually express.
func (s Schedule) At(index uint64, mask Mask) Class {
	if s.Rate <= 0 {
		return ClassNone
	}
	h := hash(s.Seed, index, 0xfa017a11)
	if unit(h) >= s.Rate {
		return ClassNone
	}
	classes := mask.classes()
	if len(classes) == 0 {
		return ClassNone
	}
	return classes[splitmix64(h)%uint64(len(classes))]
}

// Injector is a Schedule with a call counter and an injected-fault tally.
// Safe for concurrent use; when calls arrive in a deterministic order (as
// the collector's do — polling and detail fetching are sequential at any
// Workers setting), the injected sequence is deterministic too.
//
// The tallies live on an obs.Registry — `faults_injected_total{class=…}`
// and `faults_injector_calls_total` — so a chaos run's injection schedule
// is visible on /metrics next to what the consumers survived. Stats reads
// the same counters back, so the registry is the single source of truth.
// The fault rate is mutable at runtime (SetRate, atomically): the
// chaos-admin endpoint toggles it mid-run so a load smoke can walk an
// explorerd through healthy → faulting → recovered without restarts.
// The seed stays fixed, so at any given rate the decision stream is
// still the pure Schedule function of (seed, rate, index).
type Injector struct {
	seed     int64
	rateBits atomic.Uint64 // math.Float64bits of the current rate
	reg      *obs.Registry
	calls    *obs.Counter
	injected [NumClasses]*obs.Counter

	// attributed counts injected faults that landed inside a sampled
	// trace — the subset a chaos run can pin to a specific request on
	// /tracez. Volatile: the count depends on the sampling rate, not on
	// (seed, days, scale).
	attributed [NumClasses]*obs.Counter
}

// NewInjector builds an injector over Schedule{seed, rate} with a
// private registry.
func NewInjector(seed int64, rate float64) *Injector {
	return NewInjectorObs(seed, rate, nil)
}

// NewInjectorObs builds an injector whose tallies land on reg (nil
// selects a private registry, so the injector always has one).
func NewInjectorObs(seed int64, rate float64, reg *obs.Registry) *Injector {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	in := &Injector{seed: seed, reg: reg}
	in.SetRate(rate)
	in.calls = reg.Counter("faults_injector_calls_total")
	reg.Help("faults_attributed_total", "Injected faults attributed to a sampled trace (visible on /tracez).")
	reg.Volatile("faults_attributed_total")
	for c := ClassTransport; c < NumClasses; c++ {
		in.injected[c] = reg.Counter("faults_injected_total", "class", c.String())
		in.attributed[c] = reg.Counter("faults_attributed_total", "class", c.String())
	}
	return in
}

// Attribute counts one injected fault that hit a sampled trace: the
// fault is answerable from /tracez (the trace carries a fault:<class>
// annotation), and this counter says how many of the injected faults
// have that provenance.
func (in *Injector) Attribute(c Class) {
	if in == nil || c <= ClassNone || c >= NumClasses {
		return
	}
	in.attributed[c].Inc()
}

// Attributed snapshots the per-class attributed tally.
func (in *Injector) Attributed() Stats {
	var s Stats
	if in == nil {
		return s
	}
	for c := ClassTransport; c < NumClasses; c++ {
		s[c] = in.attributed[c].Value()
	}
	return s
}

// Obs returns the registry the injector tallies onto.
func (in *Injector) Obs() *obs.Registry { return in.reg }

// Next consumes one call index and returns its fault class (restricted to
// mask) plus the index, for deriving payload mutations.
func (in *Injector) Next(mask Mask) (Class, uint64) {
	idx := in.calls.Inc() - 1
	c := Schedule{Seed: in.seed, Rate: in.Rate()}.At(idx, mask)
	if c != ClassNone {
		in.injected[c].Inc()
	}
	return c, idx
}

// Seed returns the schedule's seed (payload mutations key off it).
func (in *Injector) Seed() int64 { return in.seed }

// Rate returns the current per-call fault probability.
func (in *Injector) Rate() float64 {
	return math.Float64frombits(in.rateBits.Load())
}

// SetRate replaces the per-call fault probability, clamped to [0,1].
// Calls already decided keep their outcomes; calls from here on draw
// from the schedule at the new rate.
func (in *Injector) SetRate(rate float64) {
	if rate < 0 || math.IsNaN(rate) {
		rate = 0
	} else if rate > 1 {
		rate = 1
	}
	in.rateBits.Store(math.Float64bits(rate))
}

// Calls returns how many call indices have been consumed.
func (in *Injector) Calls() uint64 { return in.calls.Value() }

// Stats snapshots the injected-fault tally from the registry.
func (in *Injector) Stats() Stats {
	var s Stats
	for c := ClassTransport; c < NumClasses; c++ {
		s[c] = in.injected[c].Value()
	}
	return s
}

package faults_test

// Wire-level chaos tests: the ChaosHandler middleware in front of a real
// explorer server, scraped by the hardened collector.HTTP transport. This
// is the faithful end-to-end path — faults travel through real headers,
// a real client and a real JSON decoder. (External test package: the
// collector imports faults for the taxonomy, so these tests cannot live
// inside package faults.)

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"jitomev/internal/collector"
	"jitomev/internal/explorer"
	"jitomev/internal/faults"
	"jitomev/internal/jito"
	"jitomev/internal/solana"
)

func chaosStore(n int) *explorer.Store {
	store := explorer.NewStore()
	for i := 1; i <= n; i++ {
		rec := jito.BundleRecord{Seq: uint64(i), Slot: solana.Slot(i), TipLamps: 1000}
		rec.ID[0], rec.ID[1] = byte(i), byte(i>>8)
		var sig solana.Signature
		sig[0], sig[1] = byte(i), byte(i>>8)
		rec.TxIDs = []solana.Signature{sig}
		store.Accept(0, &jito.Accepted{Record: rec, Details: []jito.TxDetail{{Sig: sig, Slot: rec.Slot}}})
	}
	return store
}

// TestChaosHandlerTaxonomy drives the hardened client through a fully
// chaotic server (rate 1 would never let a request through, so each class
// is isolated with a mask-of-one injector via a fresh handler).
func TestChaosHandlerClasses(t *testing.T) {
	store := chaosStore(50)

	// statusOf fires one raw request through a chaos handler pinned at
	// rate 1 and reports what the wire saw.
	fire := func(t *testing.T, inj *faults.Injector, cfg faults.ChaosConfig) *http.Response {
		t.Helper()
		srv := httptest.NewServer(faults.ChaosHandler(explorer.NewServer(store, 0), inj, cfg))
		defer srv.Close()
		resp, err := http.Get(srv.URL + "/api/v1/bundles/recent?limit=10")
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	t.Run("throttle sets Retry-After", func(t *testing.T) {
		seed := seedFor(t, faults.ClassThrottle)
		resp := fire(t, faults.NewInjector(seed, 1), faults.ChaosConfig{RetryAfter: 30 * time.Millisecond})
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("status = %d", resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatal("429 without Retry-After")
		}
	})

	t.Run("server errors are 5xx", func(t *testing.T) {
		seed := seedFor(t, faults.ClassServer)
		resp := fire(t, faults.NewInjector(seed, 1), faults.ChaosConfig{})
		defer resp.Body.Close()
		if resp.StatusCode < 500 {
			t.Fatalf("status = %d", resp.StatusCode)
		}
	})

	t.Run("truncated and corrupt bodies fail decode", func(t *testing.T) {
		for _, class := range []faults.Class{faults.ClassTruncate, faults.ClassCorrupt} {
			seed := seedFor(t, class)
			srv := httptest.NewServer(faults.ChaosHandler(explorer.NewServer(store, 0),
				faults.NewInjector(seed, 1), faults.ChaosConfig{}))
			tr := collector.NewHTTP(srv.URL)
			tr.MaxRetries = 0
			_, err := tr.RecentBundles(10)
			srv.Close()
			if err == nil {
				t.Fatalf("%v body decoded successfully", class)
			}
			if got := faults.Classify(err); got != class {
				t.Errorf("%v body classified as %v (%v)", class, got, err)
			}
		}
	})

	t.Run("slow responses still serve", func(t *testing.T) {
		seed := seedFor(t, faults.ClassTimeout)
		srv := httptest.NewServer(faults.ChaosHandler(explorer.NewServer(store, 0),
			faults.NewInjector(seed, 1), faults.ChaosConfig{SlowDelay: 10 * time.Millisecond}))
		defer srv.Close()
		tr := collector.NewHTTP(srv.URL)
		start := time.Now()
		page, err := tr.RecentBundles(5)
		if err != nil || len(page) != 5 {
			t.Fatalf("slow response failed: %v (%d)", err, len(page))
		}
		if time.Since(start) < 10*time.Millisecond {
			t.Error("slow response was not slow")
		}
	})
}

// seedFor finds a seed whose first HTTP-mask draw at rate 1 is class c,
// so a single request deterministically hits that class.
func seedFor(t *testing.T, c faults.Class) int64 {
	t.Helper()
	for seed := int64(0); seed < 10_000; seed++ {
		if (faults.Schedule{Seed: seed, Rate: 1}).At(0, faults.HTTPMask) == c {
			return seed
		}
	}
	t.Fatalf("no seed reaches class %v", c)
	return 0
}

// TestCollectorSurvivesChaoticServer is the wire-level soak: a collector
// polls a server injecting the full HTTP taxonomy at 30% and must keep
// collecting, dedup intact, faults counted per class.
func TestCollectorSurvivesChaoticServer(t *testing.T) {
	store := chaosStore(0)
	srv := httptest.NewServer(faults.ChaosHandler(explorer.NewServer(store, 0),
		faults.NewInjector(3, 0.3), faults.ChaosConfig{SlowDelay: time.Millisecond, RetryAfter: time.Millisecond}))
	defer srv.Close()

	tr := collector.NewHTTP(srv.URL)
	tr.Backoff = time.Millisecond
	tr.MaxBackoff = 5 * time.Millisecond
	c := collector.New(collector.Config{PageLimit: 30, DetailBatch: 10}, solana.Clock{}, tr)

	next := 1
	for poll := 0; poll < 40; poll++ {
		for i := 0; i < 10; i++ {
			rec := jito.BundleRecord{Seq: uint64(next), Slot: solana.Slot(next), TipLamps: 1000}
			rec.ID[0], rec.ID[1] = byte(next), byte(next>>8)
			var sig solana.Signature
			sig[0], sig[1], sig[2] = byte(next), byte(next>>8), 1
			rec.TxIDs = []solana.Signature{sig}
			store.Accept(0, &jito.Accepted{Record: rec, Details: []jito.TxDetail{{Sig: sig, Slot: rec.Slot}}})
			next++
		}
		_ = c.Poll() // errors are the point; they must not stop collection
	}

	if c.Data.Collected == 0 {
		t.Fatal("chaotic server prevented all collection")
	}
	if c.Data.Collected+c.Data.Duplicates == 0 || c.Polls() == 0 {
		t.Fatalf("polls=%d collected=%d", c.Polls(), c.Data.Collected)
	}
	// The retry loop hides some faults; the rest must be classified.
	if c.Errors() > 0 && c.Faults().Total() == 0 {
		t.Errorf("%d poll errors but no classified faults", c.Errors())
	}
	// Dedup integrity: collected bundles are unique by construction of
	// the window; verify via per-day aggregate consistency.
	if c.Data.Collected > uint64(next-1) {
		t.Errorf("collected %d > generated %d — duplicate ingest", c.Data.Collected, next-1)
	}
}

package faults

import (
	"errors"
	"testing"

	"jitomev/internal/jito"
	"jitomev/internal/solana"
)

// fakeInner serves a fixed page and echoes detail requests back fully.
type fakeInner struct {
	page  []jito.BundleRecord
	calls int
}

func makePage(n int) []jito.BundleRecord {
	page := make([]jito.BundleRecord, n)
	for i := range page {
		page[i].Seq = uint64(n - i) // newest first, like the explorer
		page[i].ID[0] = byte(n - i)
	}
	return page
}

func (f *fakeInner) RecentBundles(limit int) ([]jito.BundleRecord, error) {
	f.calls++
	return f.page, nil
}

func (f *fakeInner) RecentBundlesBefore(beforeSeq uint64, limit int) ([]jito.BundleRecord, error) {
	f.calls++
	return f.page, nil
}

func (f *fakeInner) TxDetails(ids []solana.Signature) ([]jito.TxDetail, error) {
	f.calls++
	out := make([]jito.TxDetail, len(ids))
	for i, id := range ids {
		out[i] = jito.TxDetail{Sig: id}
	}
	return out, nil
}

func makeIDs(n int) []solana.Signature {
	ids := make([]solana.Signature, n)
	for i := range ids {
		ids[i][0] = byte(i + 1)
	}
	return ids
}

// driveUntil pulls page calls until the injector emits class c, returning
// the faulted result. Rate 1 guarantees progress.
func driveUntil(t *testing.T, tr *Transport, c Class) ([]jito.BundleRecord, error) {
	t.Helper()
	for i := 0; i < 2000; i++ {
		page, err := tr.RecentBundles(10)
		if Classify(err) == c {
			return page, err
		}
		if err == nil && c == ClassDuplicate && len(page) > len(tr.Inner.(*fakeInner).page) {
			return page, nil
		}
		if err == nil && c == ClassReorder && !inOrder(page) {
			return page, nil
		}
	}
	t.Fatalf("class %v never surfaced", c)
	return nil, nil
}

func inOrder(page []jito.BundleRecord) bool {
	for i := 1; i < len(page); i++ {
		if page[i].Seq > page[i-1].Seq {
			return false
		}
	}
	return true
}

func TestTransportErrorClasses(t *testing.T) {
	inner := &fakeInner{page: makePage(20)}
	tr := WrapTransport(inner, NewInjector(5, 1), TransportOptions{})

	for _, class := range []Class{ClassTransport, ClassThrottle, ClassServer, ClassTimeout, ClassTruncate, ClassCorrupt} {
		before := inner.calls
		_, err := driveUntil(t, tr, class)
		if err == nil {
			t.Fatalf("class %v produced no error", class)
		}
		var fe *Error
		if !errors.As(err, &fe) || fe.Class != class {
			t.Fatalf("class %v surfaced as %v", class, err)
		}
		switch class {
		case ClassThrottle:
			if fe.Status != 429 || fe.RetryAfter <= 0 {
				t.Errorf("throttle fault missing status/Retry-After: %+v", fe)
			}
		case ClassServer:
			if fe.Status < 500 || fe.Status > 599 {
				t.Errorf("server fault status = %d", fe.Status)
			}
		case ClassTransport, ClassTimeout:
			// Connection-level faults never reach the inner transport
			// beyond the calls that succeeded while driving.
			_ = before
		}
	}
}

func TestTransportDuplicateEntries(t *testing.T) {
	inner := &fakeInner{page: makePage(40)}
	tr := WrapTransport(inner, NewInjector(6, 1), TransportOptions{})
	page, err := driveUntil(t, tr, ClassDuplicate)
	if err != nil {
		t.Fatal(err)
	}
	if len(page) <= 40 {
		t.Fatalf("duplicate fault produced no duplicates: %d entries", len(page))
	}
	seen := make(map[jito.BundleID]int)
	for _, r := range page {
		seen[r.ID]++
	}
	if len(seen) != 40 {
		t.Errorf("duplicate fault lost entries: %d unique of 40", len(seen))
	}
}

func TestTransportReorderEntries(t *testing.T) {
	inner := &fakeInner{page: makePage(40)}
	tr := WrapTransport(inner, NewInjector(8, 1), TransportOptions{})
	page, err := driveUntil(t, tr, ClassReorder)
	if err != nil {
		t.Fatal(err)
	}
	if len(page) != 40 {
		t.Fatalf("reorder changed page size: %d", len(page))
	}
	seen := make(map[jito.BundleID]bool)
	for _, r := range page {
		seen[r.ID] = true
	}
	if len(seen) != 40 {
		t.Errorf("reorder is not a permutation: %d unique", len(seen))
	}
	if inOrder(page) {
		t.Error("reordered page still in order")
	}
}

func TestTransportPartialDetails(t *testing.T) {
	inner := &fakeInner{page: makePage(5)}
	tr := WrapTransport(inner, NewInjector(10, 1), TransportOptions{})
	ids := makeIDs(40)
	for i := 0; i < 2000; i++ {
		details, err := tr.TxDetails(ids)
		if err != nil {
			continue
		}
		if len(details) == len(ids) {
			continue
		}
		// Partial fault hit: the result must be a strict subset.
		if len(details) == 0 || len(details) >= len(ids) {
			t.Fatalf("partial details dropped everything or nothing: %d of %d", len(details), len(ids))
		}
		want := make(map[solana.Signature]bool, len(ids))
		for _, id := range ids {
			want[id] = true
		}
		for _, d := range details {
			if !want[d.Sig] {
				t.Fatalf("partial details invented id %v", d.Sig)
			}
		}
		return
	}
	t.Fatal("partial fault never surfaced")
}

// TestTransportDeterministic pins the whole wrapper: two identically
// seeded wrappers over identical inners produce identical fault and
// payload sequences.
func TestTransportDeterministic(t *testing.T) {
	run := func() ([]string, []int) {
		inner := &fakeInner{page: makePage(30)}
		tr := WrapTransport(inner, NewInjector(77, 0.5), TransportOptions{})
		var classes []string
		var sizes []int
		for i := 0; i < 300; i++ {
			page, err := tr.RecentBundles(30)
			classes = append(classes, Classify(err).String())
			sizes = append(sizes, len(page))
		}
		for i := 0; i < 50; i++ {
			det, err := tr.TxDetails(makeIDs(20))
			classes = append(classes, Classify(err).String())
			sizes = append(sizes, len(det))
		}
		return classes, sizes
	}
	c1, s1 := run()
	c2, s2 := run()
	for i := range c1 {
		if c1[i] != c2[i] || s1[i] != s2[i] {
			t.Fatalf("chaos runs diverge at call %d: %s/%d vs %s/%d", i, c1[i], s1[i], c2[i], s2[i])
		}
	}
}

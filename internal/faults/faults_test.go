package faults

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"strings"
	"testing"
	"time"
)

func TestScheduleIsPureFunction(t *testing.T) {
	s := Schedule{Seed: 42, Rate: 0.3}
	for i := uint64(0); i < 1000; i++ {
		if s.At(i, PageMask) != s.At(i, PageMask) {
			t.Fatalf("schedule not deterministic at index %d", i)
		}
	}
	// Two injectors over the same schedule consume identical sequences.
	a, b := NewInjector(42, 0.3), NewInjector(42, 0.3)
	for i := 0; i < 1000; i++ {
		ca, _ := a.Next(PageMask)
		cb, _ := b.Next(PageMask)
		if ca != cb {
			t.Fatalf("injector sequences diverge at call %d: %v vs %v", i, ca, cb)
		}
	}
}

func TestScheduleSeedsDiffer(t *testing.T) {
	a := Schedule{Seed: 1, Rate: 0.5}
	b := Schedule{Seed: 2, Rate: 0.5}
	same := 0
	for i := uint64(0); i < 1000; i++ {
		if a.At(i, PageMask) == b.At(i, PageMask) {
			same++
		}
	}
	if same == 1000 {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestScheduleRate(t *testing.T) {
	for _, rate := range []float64{0, 0.1, 0.5, 1} {
		s := Schedule{Seed: 7, Rate: rate}
		faultsN := 0
		const n = 20000
		for i := uint64(0); i < n; i++ {
			if s.At(i, PageMask) != ClassNone {
				faultsN++
			}
		}
		got := float64(faultsN) / n
		if got < rate-0.02 || got > rate+0.02 {
			t.Errorf("rate %.2f: measured fault fraction %.3f", rate, got)
		}
	}
}

func TestScheduleCoversEveryClassInMask(t *testing.T) {
	s := Schedule{Seed: 9, Rate: 1}
	fullMask := PageMask | DetailMask | HTTPMask
	var seen Stats
	for i := uint64(0); i < 500; i++ {
		seen.Add(s.At(i, fullMask))
	}
	for c := ClassTransport; c < NumClasses; c++ {
		if fullMask.Has(c) && seen[c] == 0 {
			t.Errorf("class %v never injected in 500 draws at rate 1", c)
		}
	}
}

func TestScheduleRespectsMask(t *testing.T) {
	s := Schedule{Seed: 3, Rate: 1}
	onlyThrottle := MaskOf(ClassThrottle)
	for i := uint64(0); i < 100; i++ {
		if c := s.At(i, onlyThrottle); c != ClassThrottle {
			t.Fatalf("masked schedule produced %v", c)
		}
	}
	// Rate 1 with an empty mask degrades to no injection, not a panic.
	if c := s.At(0, 0); c != ClassNone {
		t.Fatalf("empty mask produced %v", c)
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want Class
	}{
		{nil, ClassNone},
		{&Error{Class: ClassThrottle, Status: 429}, ClassThrottle},
		{&Error{Class: ClassServer, Status: 502}, ClassServer},
		{errors.New("plain"), ClassTransport},
		{context.DeadlineExceeded, ClassTimeout},
		{&Error{Class: ClassTimeout}, ClassTimeout},
		{io.ErrUnexpectedEOF, ClassTruncate},
		{&json.SyntaxError{}, ClassCorrupt},
		// Wrapped typed errors classify through the chain.
		{errWrap{&Error{Class: ClassPartial}}, ClassPartial},
	}
	for _, tc := range cases {
		if got := Classify(tc.err); got != tc.want {
			t.Errorf("Classify(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
}

type errWrap struct{ inner error }

func (e errWrap) Error() string { return "wrap: " + e.inner.Error() }
func (e errWrap) Unwrap() error { return e.inner }

func TestErrorRendering(t *testing.T) {
	e := &Error{Class: ClassThrottle, Status: 429, RetryAfter: 50 * time.Millisecond}
	for _, want := range []string{"throttle", "429", "50ms"} {
		if !strings.Contains(e.Error(), want) {
			t.Errorf("error %q missing %q", e.Error(), want)
		}
	}
	if !e.Temporary() || e.Timeout() {
		t.Error("throttle should be temporary, not a timeout")
	}
	if !(&Error{Class: ClassTimeout}).Timeout() {
		t.Error("timeout class should report Timeout()")
	}
	if (&Error{Class: ClassCorrupt}).Temporary() {
		t.Error("corrupt payloads are not temporary")
	}
}

func TestStats(t *testing.T) {
	var s Stats
	s.Record(&Error{Class: ClassServer})
	s.Record(&Error{Class: ClassServer})
	s.Record(errors.New("conn reset"))
	s.Record(nil)
	if s.Total() != 3 || s[ClassServer] != 2 || s[ClassTransport] != 1 {
		t.Errorf("stats = %+v", s)
	}
	str := s.String()
	if !strings.Contains(str, "server=2") || !strings.Contains(str, "transport=1") {
		t.Errorf("String() = %q", str)
	}
	var zero Stats
	if zero.String() != "none" {
		t.Errorf("zero stats = %q", zero.String())
	}
}

func TestInjectorTally(t *testing.T) {
	in := NewInjector(11, 1)
	for i := 0; i < 200; i++ {
		in.Next(PageMask)
	}
	st := in.Stats()
	if in.Calls() != 200 || st.Total() != 200 {
		t.Errorf("calls=%d injected=%d", in.Calls(), st.Total())
	}
	for c := ClassTransport; c < NumClasses; c++ {
		if st[c] > 0 && !PageMask.Has(c) {
			t.Errorf("injected %v outside mask", c)
		}
	}
}

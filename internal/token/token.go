// Package token models SPL-token-like mints: the currencies traded on the
// simulated DEX. Balances live in the ledger's bank; this package owns mint
// identity and metadata (symbol, decimals) and amount formatting.
//
// The paper's analysis cares about exactly one mint distinction: SOL versus
// everything else. Victim losses and attacker gains are only quantified in
// USD for sandwiches with a SOL leg (28% of detected sandwiches had none and
// are excluded, making the dollar figures lower bounds).
package token

import (
	"fmt"
	"sort"
	"sync"

	"jitomev/internal/solana"
)

// Mint describes one token.
type Mint struct {
	Address  solana.Pubkey
	Symbol   string
	Decimals uint8
}

// SOL is the wrapped-SOL mint, the quote currency of most pools. Its base
// unit is the lamport (9 decimals).
var SOL = Mint{
	Address:  solana.NewKeypairFromSeed("mint/wSOL").Pubkey(),
	Symbol:   "SOL",
	Decimals: 9,
}

// UIAmount converts base units to a human-readable quantity.
func (m Mint) UIAmount(base uint64) float64 {
	div := 1.0
	for i := uint8(0); i < m.Decimals; i++ {
		div *= 10
	}
	return float64(base) / div
}

// BaseAmount converts a human-readable quantity to base units, truncating.
func (m Mint) BaseAmount(ui float64) uint64 {
	mul := 1.0
	for i := uint8(0); i < m.Decimals; i++ {
		mul *= 10
	}
	if ui <= 0 {
		return 0
	}
	return uint64(ui * mul)
}

// Format renders an amount with the mint's symbol.
func (m Mint) Format(base uint64) string {
	return fmt.Sprintf("%.6f %s", m.UIAmount(base), m.Symbol)
}

// IsSOL reports whether the mint is wrapped SOL.
func (m Mint) IsSOL() bool { return m.Address == SOL.Address }

// Registry is a concurrency-safe mint directory.
type Registry struct {
	mu    sync.RWMutex
	mints map[solana.Pubkey]Mint
}

// NewRegistry returns a registry pre-populated with the SOL mint.
func NewRegistry() *Registry {
	r := &Registry{mints: make(map[solana.Pubkey]Mint)}
	r.mints[SOL.Address] = SOL
	return r
}

// Register adds a mint. Re-registering the same address overwrites.
func (r *Registry) Register(m Mint) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.mints[m.Address] = m
}

// NewMemecoin registers and returns a 6-decimal mint with the given symbol,
// the standard shape for the memecoins that dominate Solana DEX volume.
func (r *Registry) NewMemecoin(symbol string) Mint {
	m := Mint{
		Address:  solana.NewKeypairFromSeed("mint/" + symbol).Pubkey(),
		Symbol:   symbol,
		Decimals: 6,
	}
	r.Register(m)
	return m
}

// Get looks up a mint by address.
func (r *Registry) Get(addr solana.Pubkey) (Mint, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	m, ok := r.mints[addr]
	return m, ok
}

// Symbol returns the mint's symbol, or a shortened address if unknown.
func (r *Registry) Symbol(addr solana.Pubkey) string {
	if m, ok := r.Get(addr); ok {
		return m.Symbol
	}
	return addr.Short()
}

// Len returns the number of registered mints.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.mints)
}

// All returns every registered mint sorted by symbol for deterministic
// iteration.
func (r *Registry) All() []Mint {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Mint, 0, len(r.mints))
	for _, m := range r.mints {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Symbol < out[j].Symbol })
	return out
}

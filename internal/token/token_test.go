package token

import (
	"testing"

	"jitomev/internal/solana"
)

func TestSOLMint(t *testing.T) {
	if !SOL.IsSOL() {
		t.Error("SOL mint does not report IsSOL")
	}
	if SOL.Decimals != 9 {
		t.Errorf("SOL decimals = %d, want 9", SOL.Decimals)
	}
	if SOL.UIAmount(uint64(solana.LamportsPerSOL)) != 1.0 {
		t.Error("1e9 lamports should be 1 SOL")
	}
}

func TestUIAndBaseAmount(t *testing.T) {
	m := Mint{Symbol: "X", Decimals: 6}
	if m.UIAmount(1_500_000) != 1.5 {
		t.Errorf("UIAmount = %v", m.UIAmount(1_500_000))
	}
	if m.BaseAmount(2.5) != 2_500_000 {
		t.Errorf("BaseAmount = %v", m.BaseAmount(2.5))
	}
	if m.BaseAmount(-1) != 0 {
		t.Error("negative UI amount should clamp to 0")
	}
	if m.IsSOL() {
		t.Error("non-SOL mint reports IsSOL")
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	if r.Len() != 1 {
		t.Fatalf("new registry has %d mints, want 1 (SOL)", r.Len())
	}
	if _, ok := r.Get(SOL.Address); !ok {
		t.Fatal("SOL not pre-registered")
	}

	bonk := r.NewMemecoin("BONK")
	if bonk.Decimals != 6 {
		t.Errorf("memecoin decimals = %d, want 6", bonk.Decimals)
	}
	got, ok := r.Get(bonk.Address)
	if !ok || got.Symbol != "BONK" {
		t.Fatalf("Get(BONK) = %+v, %v", got, ok)
	}
	if r.Symbol(bonk.Address) != "BONK" {
		t.Error("Symbol lookup failed")
	}

	unknown := solana.NewKeypairFromSeed("nope").Pubkey()
	if r.Symbol(unknown) == "" {
		t.Error("unknown mint symbol should fall back to short address")
	}
}

func TestMemecoinDeterministicAddress(t *testing.T) {
	a := NewRegistry().NewMemecoin("WIF")
	b := NewRegistry().NewMemecoin("WIF")
	if a.Address != b.Address {
		t.Error("same symbol produced different mint addresses across registries")
	}
}

func TestAllSorted(t *testing.T) {
	r := NewRegistry()
	r.NewMemecoin("ZETA")
	r.NewMemecoin("AAA")
	all := r.All()
	if len(all) != 3 {
		t.Fatalf("All() returned %d mints, want 3", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].Symbol > all[i].Symbol {
			t.Fatal("All() not sorted by symbol")
		}
	}
}

func TestFormat(t *testing.T) {
	m := Mint{Symbol: "WIF", Decimals: 6}
	if got := m.Format(1_250_000); got != "1.250000 WIF" {
		t.Errorf("Format = %q", got)
	}
}

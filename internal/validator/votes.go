package validator

import (
	"math/rand"
)

// Vote traffic. The paper's scale framing (§2.1) distinguishes Solana's
// ~80M daily *non-voting* transactions from total traffic precisely
// because consensus votes dominate raw transaction counts: every active
// validator submits roughly one vote transaction per slot. The simulator
// models votes statistically — they never touch user balances and no MEV
// pipeline observes them — but block statistics carry them so volume
// comparisons against chain explorers line up.

// VoteModel produces per-slot vote transaction counts for a validator set.
type VoteModel struct {
	// Participation is the fraction of validators landing a vote in any
	// given slot (votes lag and batch; ~0.85 matches mainnet behaviour).
	Participation float64
	set           *Set
	rng           *rand.Rand
}

// NewVoteModel builds a vote model over the set, seeded deterministically.
func NewVoteModel(set *Set, seed int64) *VoteModel {
	return &VoteModel{
		Participation: 0.85,
		set:           set,
		rng:           rand.New(rand.NewSource(seed ^ 0x766f7465)),
	}
}

// VotesInSlot returns the number of vote transactions landing in a slot:
// binomial around Participation × validators, approximated by a normal
// draw for speed at 216,000 slots/day.
func (m *VoteModel) VotesInSlot() int {
	n := float64(m.set.Len())
	mean := m.Participation * n
	sd := 0.05 * n
	v := int(mean + m.rng.NormFloat64()*sd)
	if v < 0 {
		v = 0
	}
	if v > m.set.Len() {
		v = m.set.Len()
	}
	return v
}

// ChainStats aggregates block production over a window, the counters a
// chain explorer (Solscan's "200K blocks with over 80M non-voting
// transactions per day", §2.1) would report.
type ChainStats struct {
	Blocks       uint64
	VoteTxs      uint64
	NonVoteTxs   uint64
	BundleTxs    uint64
	FailedTxs    uint64
	SkippedSlots uint64 // slots with no block (leader offline)
}

// ObserveBlock folds one produced block plus its vote count.
func (s *ChainStats) ObserveBlock(blk *Block, votes int) {
	s.Blocks++
	s.VoteTxs += uint64(votes)
	s.NonVoteTxs += uint64(len(blk.LooseTxs))
	for _, acc := range blk.Bundles {
		n := uint64(acc.Record.NumTxs())
		s.NonVoteTxs += n
		s.BundleTxs += n
	}
	s.FailedTxs += uint64(blk.Failed)
}

// NonVoteShare returns the fraction of transactions that are not votes.
func (s *ChainStats) NonVoteShare() float64 {
	total := s.VoteTxs + s.NonVoteTxs
	if total == 0 {
		return 0
	}
	return float64(s.NonVoteTxs) / float64(total)
}

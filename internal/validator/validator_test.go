package validator

import (
	"math"
	"testing"
	"time"

	"jitomev/internal/amm"
	"jitomev/internal/jito"
	"jitomev/internal/ledger"
	"jitomev/internal/mempool"
	"jitomev/internal/solana"
	"jitomev/internal/token"
)

func TestNewSetStakeAndAdoption(t *testing.T) {
	s := NewSet(500, 7)
	if s.Len() != 500 {
		t.Fatalf("Len = %d", s.Len())
	}
	share := s.JitoStakeShare()
	if share < JitoAdoptionRate || share > 1.0 {
		t.Errorf("Jito stake share = %.4f, want >= %.2f", share, JitoAdoptionRate)
	}
}

func TestNewSetDeterministic(t *testing.T) {
	a := NewSet(100, 3)
	b := NewSet(100, 3)
	for slot := solana.Slot(0); slot < 50; slot++ {
		if a.LeaderAt(slot).Identity != b.LeaderAt(slot).Identity {
			t.Fatal("leader schedule not deterministic across identical sets")
		}
	}
}

func TestLeaderAtStakeWeighted(t *testing.T) {
	s := NewSet(200, 11)
	// Count leadership over many slots; the top validator (highest stake,
	// ~ stake share of 1/H(200) ≈ 17%) must lead far more often than a
	// tail validator.
	counts := map[solana.Pubkey]int{}
	const slots = 20_000
	for slot := solana.Slot(0); slot < slots; slot++ {
		counts[s.LeaderAt(slot).Identity]++
	}
	top := counts[s.validators[0].Identity]
	tail := counts[s.validators[199].Identity]
	if top <= tail*5 {
		t.Errorf("stake weighting weak: top=%d tail=%d", top, tail)
	}
	// Top validator share should be near its stake share.
	wantShare := float64(s.validators[0].Stake) / float64(s.totalStake)
	gotShare := float64(top) / slots
	if math.Abs(gotShare-wantShare) > 0.03 {
		t.Errorf("top leader share %.3f, stake share %.3f", gotShare, wantShare)
	}
}

func TestProduceSlotExecutesBundlesAndLooseTxs(t *testing.T) {
	bank := ledger.NewBank()
	reg := token.NewRegistry()
	meme := reg.NewMemecoin("MEME")
	pool := amm.New(meme.Address, token.SOL.Address, 1e12, 1e12, amm.DefaultFeeBps)
	bank.AddPool(pool)

	alice := solana.NewKeypairFromSeed("alice")
	bank.CreditLamports(alice.Pubkey(), 100*solana.LamportsPerSOL)
	bank.MintTo(alice.Pubkey(), token.SOL.Address, 1e12)

	clock := solana.Clock{Genesis: time.Unix(0, 0)}
	engine := jito.NewBlockEngine(bank, clock)
	mp := mempool.New(mempool.VisibilityPrivate)

	// All-Jito set so the bundle lands on the first slot.
	set := NewSet(10, 1)
	for i := range set.validators {
		set.validators[i].RunsJito = true
	}
	p := NewProducer(set, bank, engine, mp, 100)

	bundleTx := solana.NewTransaction(alice, 1, 0,
		&solana.Swap{Pool: pool.Address, InputMint: token.SOL.Address, AmountIn: 1e6},
		&solana.Tip{TipAccount: jito.TipAccounts[0], Amount: 5_000})
	if err := engine.Submit(jito.NewBundle(bundleTx)); err != nil {
		t.Fatal(err)
	}

	loose := solana.NewTransaction(alice, 2, 99,
		&solana.Swap{Pool: pool.Address, InputMint: token.SOL.Address, AmountIn: 2e6})
	mp.Add(loose, 0)

	blk := p.ProduceSlot(5)
	if len(blk.Bundles) != 1 {
		t.Fatalf("bundles in block = %d", len(blk.Bundles))
	}
	if len(blk.LooseTxs) != 1 || blk.LooseTxs[0] != loose.Sig {
		t.Fatalf("loose txs = %v", blk.LooseTxs)
	}
	if mp.Len() != 0 {
		t.Error("mempool not drained")
	}
	if blk.Leader.IsZero() {
		t.Error("block has no leader")
	}
}

func TestNonJitoLeaderDefersBundles(t *testing.T) {
	bank := ledger.NewBank()
	alice := solana.NewKeypairFromSeed("alice")
	bank.CreditLamports(alice.Pubkey(), solana.LamportsPerSOL)

	clock := solana.Clock{Genesis: time.Unix(0, 0)}
	engine := jito.NewBlockEngine(bank, clock)
	mp := mempool.New(mempool.VisibilityPrivate)

	set := NewSet(4, 2)
	for i := range set.validators {
		set.validators[i].RunsJito = false
	}
	p := NewProducer(set, bank, engine, mp, 10)

	tipTx := solana.NewTransaction(alice, 1, 0,
		&solana.Tip{TipAccount: jito.TipAccounts[0], Amount: 5_000})
	if err := engine.Submit(jito.NewBundle(tipTx)); err != nil {
		t.Fatal(err)
	}

	blk := p.ProduceSlot(1)
	if len(blk.Bundles) != 0 {
		t.Fatal("non-Jito leader executed bundles")
	}
	if engine.PendingCount() != 1 {
		t.Fatal("bundle lost while leader was non-Jito")
	}

	// Flip everyone to Jito: the deferred bundle lands next slot.
	for i := range set.validators {
		set.validators[i].RunsJito = true
	}
	blk = p.ProduceSlot(2)
	if len(blk.Bundles) != 1 {
		t.Fatal("deferred bundle did not land under Jito leader")
	}
}

func TestProduceSlotCountsFailedLooseTxs(t *testing.T) {
	bank := ledger.NewBank()
	alice := solana.NewKeypairFromSeed("alice")
	bank.CreditLamports(alice.Pubkey(), solana.LamportsPerSOL)

	clock := solana.Clock{Genesis: time.Unix(0, 0)}
	engine := jito.NewBlockEngine(bank, clock)
	mp := mempool.New(mempool.VisibilityPublic)
	set := NewSet(4, 3)
	p := NewProducer(set, bank, engine, mp, 10)

	// Transfer more than the balance: lands but fails.
	bad := solana.NewTransaction(alice, 1, 0,
		&solana.Transfer{From: alice.Pubkey(), To: solana.Pubkey{}, Amount: 1 << 62})
	mp.Add(bad, 0)

	blk := p.ProduceSlot(1)
	if len(blk.LooseTxs) != 1 || blk.Failed != 1 {
		t.Errorf("landed=%d failed=%d", len(blk.LooseTxs), blk.Failed)
	}
}

// Package validator models the block-producing side of the network: a
// stake-weighted leader schedule over a validator set in which 97% of
// stake runs a Jito-compatible client (paper §1, §2.3), and per-slot block
// production that executes Jito bundles (tip auction) before loose
// mempool transactions (priority-fee order).
package validator

import (
	"fmt"
	"math/rand"

	"jitomev/internal/jito"
	"jitomev/internal/ledger"
	"jitomev/internal/mempool"
	"jitomev/internal/solana"
)

// Validator is one network validator.
type Validator struct {
	Identity solana.Pubkey
	Stake    uint64 // arbitrary stake units; weights leader selection
	RunsJito bool
}

// Set is a fixed validator population with a deterministic, stake-weighted
// leader schedule.
type Set struct {
	validators []Validator
	cumStake   []uint64
	totalStake uint64
	epochSeed  int64
}

// JitoAdoptionRate is the fraction of stake running a Jito-compatible
// client: "currently over 97% of Solana validators run a Jito compatible
// client" (paper §1).
const JitoAdoptionRate = 0.97

// NewSet builds n validators with Zipf-ish stake (a few heavy validators,
// a long tail — the shape behind Solana's "super-minority") and assigns
// Jito compatibility to the heaviest stake first until JitoAdoptionRate of
// total stake runs Jito. Deterministic in seed.
func NewSet(n int, seed int64) *Set {
	if n <= 0 {
		panic("validator: empty set")
	}
	rng := rand.New(rand.NewSource(seed))
	s := &Set{epochSeed: seed}
	s.validators = make([]Validator, n)
	for i := range s.validators {
		// Stake ~ 1/(rank+1) with noise: heavy head, long tail.
		stake := uint64(1_000_000/(i+1)) + uint64(rng.Intn(5_000)) + 1
		s.validators[i] = Validator{
			Identity: solana.NewKeypairFromSeed(fmt.Sprintf("validator/%d/%d", seed, i)).Pubkey(),
			Stake:    stake,
		}
	}
	var total uint64
	for i := range s.validators {
		total += s.validators[i].Stake
	}
	// Highest-staked validators adopt Jito first; stop once ≥97% of stake
	// is covered. (The paper notes every validator in the super-minority
	// runs Jito.)
	var covered uint64
	for i := range s.validators {
		if float64(covered) < JitoAdoptionRate*float64(total) {
			s.validators[i].RunsJito = true
			covered += s.validators[i].Stake
		}
	}
	s.cumStake = make([]uint64, n)
	var cum uint64
	for i := range s.validators {
		cum += s.validators[i].Stake
		s.cumStake[i] = cum
	}
	s.totalStake = cum
	return s
}

// Len returns the number of validators.
func (s *Set) Len() int { return len(s.validators) }

// JitoStakeShare returns the fraction of stake running Jito.
func (s *Set) JitoStakeShare() float64 {
	var jito uint64
	for _, v := range s.validators {
		if v.RunsJito {
			jito += v.Stake
		}
	}
	return float64(jito) / float64(s.totalStake)
}

// LeaderAt returns the leader of slot, chosen stake-weighted and
// deterministically from the set's seed.
func (s *Set) LeaderAt(slot solana.Slot) Validator {
	// Hash slot with the epoch seed into a stake-weighted pick.
	rng := rand.New(rand.NewSource(s.epochSeed ^ int64(uint64(slot)*0x9E3779B97F4A7C15)))
	target := rng.Uint64() % s.totalStake
	// Binary search the cumulative stake table.
	lo, hi := 0, len(s.cumStake)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if s.cumStake[mid] <= target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return s.validators[lo]
}

// Block is a produced block: the observable unit the collector's
// timestamps ultimately anchor to.
type Block struct {
	Slot     solana.Slot
	Leader   solana.Pubkey
	Bundles  []*jito.Accepted
	LooseTxs []solana.Signature
	// LooseResults holds the execution results of LooseTxs in order,
	// for consumers that need balance effects of non-bundled traffic
	// (e.g. block-scan detection baselines).
	LooseResults []*ledger.TxResult
	Failed       int // loose txs that landed but failed
}

// TxDetails flattens the block into explorer-style transaction details in
// execution order: bundles first (tip-auction order), then loose
// transactions. This is the view an Ethereum-style block-scanning
// detector has — transaction order without bundle boundaries.
func (b *Block) TxDetails() []jito.TxDetail {
	var out []jito.TxDetail
	for _, acc := range b.Bundles {
		out = append(out, acc.Details...)
	}
	for _, res := range b.LooseResults {
		out = append(out, jito.DetailFromResult(res, b.Slot))
	}
	return out
}

// Producer drives per-slot block production against one bank.
type Producer struct {
	Set     *Set
	Bank    *ledger.Bank
	Engine  *jito.BlockEngine
	Mempool *mempool.Pool

	// MaxLooseTxsPerSlot caps non-bundle transactions per block.
	MaxLooseTxsPerSlot int
}

// NewProducer wires a producer. maxLoose caps loose transactions per block
// (Solana blocks fit tens of thousands; studies use a scaled-down cap).
func NewProducer(set *Set, bank *ledger.Bank, engine *jito.BlockEngine, mp *mempool.Pool, maxLoose int) *Producer {
	return &Producer{Set: set, Bank: bank, Engine: engine, Mempool: mp, MaxLooseTxsPerSlot: maxLoose}
}

// ProduceSlot runs one slot: if the leader runs Jito, pending bundles are
// auctioned and executed first; then loose mempool transactions execute in
// priority-fee order. When the leader does not run Jito, bundles stay
// queued for the next Jito-compatible leader — on the real network the
// block engine simply targets Jito leaders.
func (p *Producer) ProduceSlot(slot solana.Slot) *Block {
	leader := p.Set.LeaderAt(slot)
	blk := &Block{Slot: slot, Leader: leader.Identity}
	p.Bank.SetSlot(slot)

	if leader.RunsJito {
		blk.Bundles = p.Engine.ProcessSlot(slot)
	}

	for _, tx := range p.Mempool.DrainForBlock(p.MaxLooseTxsPerSlot) {
		res, err := p.Bank.ExecuteTx(tx)
		if err != nil {
			continue // rejected outright (e.g. cannot pay fee): never lands
		}
		blk.LooseTxs = append(blk.LooseTxs, tx.Sig)
		blk.LooseResults = append(blk.LooseResults, res)
		if res.Err != nil {
			blk.Failed++
		}
	}
	return blk
}

package validator

import (
	"testing"

	"jitomev/internal/jito"
	"jitomev/internal/solana"
)

func TestVoteModelBounds(t *testing.T) {
	set := NewSet(200, 4)
	m := NewVoteModel(set, 4)
	var sum int
	const slots = 5_000
	for i := 0; i < slots; i++ {
		v := m.VotesInSlot()
		if v < 0 || v > set.Len() {
			t.Fatalf("votes %d out of [0,%d]", v, set.Len())
		}
		sum += v
	}
	mean := float64(sum) / slots
	want := 0.85 * float64(set.Len())
	if mean < want*0.95 || mean > want*1.05 {
		t.Errorf("mean votes/slot = %.1f, want ≈%.1f", mean, want)
	}
}

func TestVoteModelDeterministic(t *testing.T) {
	set := NewSet(50, 9)
	a, b := NewVoteModel(set, 9), NewVoteModel(set, 9)
	for i := 0; i < 100; i++ {
		if a.VotesInSlot() != b.VotesInSlot() {
			t.Fatal("vote stream not deterministic")
		}
	}
}

func TestChainStats(t *testing.T) {
	var s ChainStats
	blk := &Block{
		Slot:     1,
		LooseTxs: make([]solana.Signature, 3),
		Failed:   1,
		Bundles: []*jito.Accepted{
			{Record: jito.BundleRecord{TxIDs: make([]solana.Signature, 2)}},
		},
	}
	s.ObserveBlock(blk, 170)
	if s.Blocks != 1 || s.VoteTxs != 170 || s.NonVoteTxs != 5 || s.BundleTxs != 2 || s.FailedTxs != 1 {
		t.Errorf("stats %+v", s)
	}
	// Votes dominate raw counts, so the non-vote share is small — the
	// distinction the paper's §2.1 framing rests on.
	if share := s.NonVoteShare(); share > 0.05 {
		t.Errorf("non-vote share = %.3f", share)
	}
	var empty ChainStats
	if empty.NonVoteShare() != 0 {
		t.Error("empty stats share should be 0")
	}
}

package snapshot

import (
	"bytes"
	"math/rand"
	"testing"

	"jitomev/internal/jito"
	"jitomev/internal/solana"
	"jitomev/internal/stats"
)

// randPubkey draws from a small pool so the intern table actually
// deduplicates, as it does for real signers and mints.
func randPubkey(rng *rand.Rand, pool int) solana.Pubkey {
	var p solana.Pubkey
	p[0] = byte(rng.Intn(pool))
	p[1] = 0xA5
	return p
}

func randSig(rng *rand.Rand) solana.Signature {
	var s solana.Signature
	rng.Read(s[:])
	return s
}

func randRecord(rng *rand.Rand, maxTxs int) jito.BundleRecord {
	rec := jito.BundleRecord{
		Seq:      rng.Uint64(),
		Slot:     solana.Slot(rng.Uint64() >> 20),
		UnixMs:   rng.Int63() - rng.Int63(), // negative values too
		TipLamps: rng.Uint64() >> uint(rng.Intn(64)),
	}
	rng.Read(rec.ID[:])
	n := rng.Intn(maxTxs + 1)
	for i := 0; i < n; i++ {
		rec.TxIDs = append(rec.TxIDs, randSig(rng))
	}
	return rec
}

func randDetail(rng *rand.Rand, maxDeltas int) jito.TxDetail {
	det := jito.TxDetail{
		Sig:         randSig(rng),
		Signer:      randPubkey(rng, 40),
		Slot:        solana.Slot(rng.Uint64() >> 20),
		Failed:      rng.Intn(2) == 0,
		TipLamports: rng.Uint64() >> uint(rng.Intn(64)),
		TipOnly:     rng.Intn(2) == 0,
	}
	n := rng.Intn(maxDeltas + 1)
	for i := 0; i < n; i++ {
		det.TokenDeltas = append(det.TokenDeltas, jito.TokenDelta{
			Owner: randPubkey(rng, 40),
			Mint:  randPubkey(rng, 8),
			Delta: rng.Int63() - rng.Int63(),
		})
	}
	return det
}

// testSnapshot builds a randomized snapshot big enough to span several
// shards when shardSize is small relative to n.
func testSnapshot(seed int64, nRecords, nDetails int) *Snapshot {
	rng := rand.New(rand.NewSource(seed))
	s := &Snapshot{
		Genesis:    1_700_000_000_000_000_000,
		Days:       make(map[int]*DayAgg),
		TipsLen1:   stats.NewTipHistogram(),
		TipsLen3:   stats.NewTipHistogram(),
		Details:    make(map[solana.Signature]jito.TxDetail),
		Collected:  12345678,
		Duplicates: 999,
	}
	for d := 0; d < 7; d++ {
		agg := &DayAgg{Bundles: rng.Uint64() >> 32, Txs: rng.Uint64() >> 32,
			DefensiveCount: uint64(rng.Intn(1000)), PriorityCount: uint64(rng.Intn(1000)),
			DefensiveSpend: rng.Uint64() >> 24}
		for i := range agg.ByLength {
			agg.ByLength[i] = uint64(rng.Intn(100000))
		}
		s.Days[d*3-2] = agg // negative day included
	}
	for i := 0; i < 2000; i++ {
		s.TipsLen1.Add(float64(rng.Intn(1_000_000) + 1))
		s.TipsLen3.Add(float64(rng.Intn(100_000_000) + 1))
	}
	for i := 0; i < nRecords; i++ {
		s.Len3 = append(s.Len3, randRecord(rng, 5))
	}
	for i := 0; i < nRecords/4; i++ {
		s.Long = append(s.Long, randRecord(rng, 5))
	}
	for i := 0; i < nDetails; i++ {
		det := randDetail(rng, 6)
		s.Details[det.Sig] = det
	}
	return s
}

func histEqual(a, b *stats.LogHistogram) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	return bytes.Equal(a.AppendBinary(nil), b.AppendBinary(nil))
}

func snapshotsEqual(t *testing.T, want, got *Snapshot) {
	t.Helper()
	if got.Genesis != want.Genesis || got.Collected != want.Collected ||
		got.Duplicates != want.Duplicates {
		t.Errorf("scalars diverge: %d/%d/%d vs %d/%d/%d",
			got.Genesis, got.Collected, got.Duplicates,
			want.Genesis, want.Collected, want.Duplicates)
	}
	if len(got.Days) != len(want.Days) {
		t.Fatalf("days: %d vs %d", len(got.Days), len(want.Days))
	}
	for d, agg := range want.Days {
		g := got.Days[d]
		if g == nil || *g != *agg {
			t.Fatalf("day %d diverges: %+v vs %+v", d, g, agg)
		}
	}
	if !histEqual(want.TipsLen1, got.TipsLen1) || !histEqual(want.TipsLen3, got.TipsLen3) {
		t.Error("histograms diverge")
	}
	for name, pair := range map[string][2][]jito.BundleRecord{
		"len3": {want.Len3, got.Len3}, "long": {want.Long, got.Long},
	} {
		w, g := pair[0], pair[1]
		if len(w) != len(g) {
			t.Fatalf("%s: %d vs %d records", name, len(g), len(w))
		}
		for i := range w {
			if !w[i].Equal(&g[i]) {
				t.Fatalf("%s[%d] diverges:\n%+v\n%+v", name, i, g[i], w[i])
			}
		}
	}
	if len(got.Details) != len(want.Details) {
		t.Fatalf("details: %d vs %d", len(got.Details), len(want.Details))
	}
	for sig, det := range want.Details {
		g, ok := got.Details[sig]
		if !ok || !det.Equal(&g) {
			t.Fatalf("detail %x diverges:\n%+v\n%+v", sig[:4], g, det)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	s := testSnapshot(1, 3000, 2500) // > one shard once encoded? shard sizes are 8192: single-shard path
	for _, workers := range []int{1, 2, 4, 0} {
		var buf bytes.Buffer
		if err := Write(&buf, s, workers); err != nil {
			t.Fatal(err)
		}
		got, err := Read(bytes.NewReader(buf.Bytes()), workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		snapshotsEqual(t, s, got)
	}
}

// TestRoundTripMultiShard forces many shards by exceeding the shard size
// thresholds, exercising the parallel encode and decode paths across
// shard boundaries.
func TestRoundTripMultiShard(t *testing.T) {
	if testing.Short() {
		t.Skip("large round trip")
	}
	s := testSnapshot(2, 3*recordShardSize+17, 2*detailShardSize+5)
	var buf bytes.Buffer
	if err := Write(&buf, s, 0); err != nil {
		t.Fatal(err)
	}
	got, err := Read(bytes.NewReader(buf.Bytes()), 0)
	if err != nil {
		t.Fatal(err)
	}
	snapshotsEqual(t, s, got)
}

func TestWriteByteIdenticalAcrossWorkers(t *testing.T) {
	s := testSnapshot(3, 2*recordShardSize+100, detailShardSize+50)
	var ref bytes.Buffer
	if err := Write(&ref, s, 1); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8, 0} {
		var buf bytes.Buffer
		if err := Write(&buf, s, workers); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ref.Bytes(), buf.Bytes()) {
			t.Fatalf("workers=%d produced different bytes (%d vs %d)",
				workers, buf.Len(), ref.Len())
		}
	}
}

func TestEmptySnapshotRoundTrip(t *testing.T) {
	s := &Snapshot{Genesis: 42} // nil maps, nil slices, nil histograms
	var buf bytes.Buffer
	if err := Write(&buf, s, 0); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Genesis != 42 || got.TipsLen1 != nil || got.TipsLen3 != nil ||
		got.Len3 != nil || got.Long != nil || len(got.Days) != 0 {
		t.Errorf("empty snapshot mutated on round trip: %+v", got)
	}
}

func TestRecordOverLimitRejected(t *testing.T) {
	rec := jito.BundleRecord{TxIDs: make([]solana.Signature, 256)}
	s := &Snapshot{Len3: []jito.BundleRecord{rec}}
	if err := Write(&buffer{}, s, 1); err == nil {
		t.Error("256-transaction record encoded without error")
	}
}

// buffer is a minimal io.Writer for error-path tests.
type buffer struct{ bytes.Buffer }

func TestReadRejectsCorruption(t *testing.T) {
	s := testSnapshot(4, 500, 400)
	var buf bytes.Buffer
	if err := Write(&buf, s, 1); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	cases := map[string][]byte{
		"empty":         {},
		"bad magic":     append([]byte("jitosnpX"), good[8:]...),
		"v2 magic":      append([]byte("jitosnp2"), good[8:]...),
		"truncated":     good[:len(good)/2],
		"no terminator": good[:len(good)-1],
	}
	// Flip a byte inside a compressed shard body (past the magic and
	// first section headers): the gzip CRC or the columnar layout must
	// catch it.
	flipped := append([]byte(nil), good...)
	flipped[len(flipped)/2] ^= 0xFF
	cases["bit flip"] = flipped

	for name, data := range cases {
		if _, err := Read(bytes.NewReader(data), 0); err == nil {
			t.Errorf("%s: corrupt input accepted", name)
		}
	}
}

func TestReadRejectsHostileLengths(t *testing.T) {
	// A frame claiming a multi-GB shard must fail before allocating.
	data := []byte(Magic)
	data = append(data, secMeta)
	data = appendUvarint(data, 1)     // one shard
	data = appendUvarint(data, 1)     // one item
	data = appendUvarint(data, 1)     // items
	data = appendUvarint(data, 1<<40) // rawLen: hostile
	data = appendUvarint(data, 10)
	if _, err := Read(bytes.NewReader(data), 0); err == nil {
		t.Error("hostile length prefix accepted")
	}
}

// TestRandomizedRoundTrip is the quick-style sweep over the record and
// detail codecs: many small random snapshots, including empty slices,
// nil maps, zero values and maximum-length token-delta lists.
func TestRandomizedRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 60; iter++ {
		s := &Snapshot{Genesis: rng.Int63()}
		if rng.Intn(4) > 0 {
			s.Details = make(map[solana.Signature]jito.TxDetail)
			for i, n := 0, rng.Intn(50); i < n; i++ {
				det := randDetail(rng, 16)
				if i%7 == 0 {
					det.TokenDeltas = nil
				}
				if i%11 == 0 { // max-length delta list
					det.TokenDeltas = nil
					for j := 0; j < 64; j++ {
						det.TokenDeltas = append(det.TokenDeltas, jito.TokenDelta{
							Owner: randPubkey(rng, 3), Mint: randPubkey(rng, 2),
							Delta: int64(j) - 32,
						})
					}
				}
				s.Details[det.Sig] = det
			}
		}
		for i, n := 0, rng.Intn(40); i < n; i++ {
			rec := randRecord(rng, 5)
			if i%5 == 0 {
				rec.TxIDs = nil // empty transaction list
			}
			s.Len3 = append(s.Len3, rec)
		}
		var buf bytes.Buffer
		if err := Write(&buf, s, rng.Intn(4)); err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		got, err := Read(&buf, rng.Intn(4))
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		snapshotsEqual(t, s, got)
	}
}

package snapshot

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"io"
	"sync"

	"jitomev/internal/jito"
	"jitomev/internal/parallel"
	"jitomev/internal/solana"
	"jitomev/internal/stats"
)

// maxShardBytes bounds any single frame's claimed raw or compressed
// length. Honest writers stay far below it (shards are ~1 MiB); it
// exists so a corrupt or hostile length prefix cannot demand an
// arbitrary allocation before the payload is even read.
const maxShardBytes = 1 << 28

var gzipReaders = sync.Pool{New: func() any { return new(gzip.Reader) }}

// decompressShard inflates blob, whose decompressed size must be exactly
// rawLen.
func decompressShard(blob []byte, rawLen int) ([]byte, error) {
	zr := gzipReaders.Get().(*gzip.Reader)
	defer gzipReaders.Put(zr)
	if err := zr.Reset(bytes.NewReader(blob)); err != nil {
		return nil, corrupt("shard gzip header: %v", err)
	}
	raw := make([]byte, rawLen)
	if _, err := io.ReadFull(zr, raw); err != nil {
		return nil, corrupt("shard inflate: %v", err)
	}
	// One byte past the claimed length must be clean EOF — this read
	// also forces the gzip trailer check, so a corrupted blob fails on
	// its CRC here even when it inflates to the right length.
	var one [1]byte
	if n, err := zr.Read(one[:]); n != 0 || err != io.EOF {
		return nil, corrupt("shard not exactly %d declared bytes: %v", rawLen, err)
	}
	return raw, nil
}

// frameHeader is the per-shard prefix.
type frameHeader struct {
	items, rawLen, compLen int
}

// readFrame reads shard number idx's frame. Every failure — including a
// short read truncating the header or body — is a corrupt error naming
// the shard, so a checkpoint cut mid-stream can never load silently.
func readFrame(br *bufio.Reader, idx, itemsLeft int) (frameHeader, []byte, error) {
	var h frameHeader
	for _, dst := range []*int{&h.items, &h.rawLen, &h.compLen} {
		v, err := binary.ReadUvarint(br)
		if err != nil {
			return h, nil, corrupt("shard %d: header: %v", idx, err)
		}
		if v > maxShardBytes {
			return h, nil, corrupt("shard %d: length %d exceeds limit", idx, v)
		}
		*dst = int(v)
	}
	if h.items > itemsLeft {
		return h, nil, corrupt("shard %d: items %d overflow section total", idx, h.items)
	}
	blob := make([]byte, h.compLen)
	if n, err := io.ReadFull(br, blob); err != nil {
		return h, nil, corrupt("shard %d: body truncated at byte %d of %d: %v", idx, n, h.compLen, err)
	}
	return h, blob, nil
}

// forEachShard reads shardCount frames from br in order, decompressing
// and decoding them on a bounded pool of workers: the serial reader
// stays ahead of the pool by at most ~2×workers shards, so peak
// transient memory is bounded by the shard size, not the section.
// handle(base, items, raw) is invoked once per shard with base = the sum
// of preceding shards' items; it must be safe for concurrent calls on
// distinct shards.
func forEachShard(br *bufio.Reader, shardCount, totalItems, workers int, m *snapObs, handle func(base, items int, raw []byte) error) error {
	workers = parallel.Workers(workers)
	if workers == 1 || shardCount <= 1 {
		base := 0
		for i := 0; i < shardCount; i++ {
			h, blob, err := readFrame(br, i, totalItems-base)
			if err != nil {
				return err
			}
			m.frame(h.rawLen, h.compLen)
			raw, err := decompressShard(blob, h.rawLen)
			if err != nil {
				return corruptShard(i, err)
			}
			if err := handle(base, h.items, raw); err != nil {
				return corruptShard(i, err)
			}
			base += h.items
		}
		if base != totalItems {
			return corrupt("section holds %d items, header declared %d", base, totalItems)
		}
		return nil
	}

	type job struct {
		idx  int
		base int
		h    frameHeader
		blob []byte
	}
	var (
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	failed := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return firstErr != nil
	}

	jobs := make(chan job, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				if failed() {
					continue
				}
				raw, err := decompressShard(j.blob, j.h.rawLen)
				if err == nil {
					err = handle(j.base, j.h.items, raw)
				}
				if err != nil {
					fail(corruptShard(j.idx, err))
				}
			}
		}()
	}

	base := 0
	for i := 0; i < shardCount && !failed(); i++ {
		h, blob, err := readFrame(br, i, totalItems-base)
		if err != nil {
			fail(err)
			break
		}
		m.frame(h.rawLen, h.compLen)
		jobs <- job{idx: i, base: base, h: h, blob: blob}
		base += h.items
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	if base != totalItems {
		return corrupt("section holds %d items, header declared %d", base, totalItems)
	}
	return nil
}

// Read decodes a v2 or v3 snapshot from r, sniffing the version from
// the magic. workers bounds the shard decompress/decode pool (0 = all
// cores, 1 = serial).
func Read(r io.Reader, workers int) (*Snapshot, error) {
	return read(r, workers, &snapObs{})
}

func read(r io.Reader, workers int, m *snapObs) (*Snapshot, error) {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(r, 1<<16)
	}
	var magic [len(Magic)]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, corrupt("magic: %v", err)
	}
	switch string(magic[:]) {
	case Magic:
		return readV2(br, workers, m)
	case MagicV3:
		return readV3(br, workers, m)
	default:
		return nil, corrupt("bad magic %q (not a snapshot container)", magic[:])
	}
}

// readV2 decodes the superseded v2 body (everything after the magic).
func readV2(br *bufio.Reader, workers int, m *snapObs) (*Snapshot, error) {
	s := &Snapshot{}
	var interned []solana.Pubkey
	seen := make(map[byte]bool)
	for {
		id, err := br.ReadByte()
		if err != nil {
			return nil, corrupt("section id: %v", err)
		}
		if id == secEnd {
			break
		}
		if seen[id] {
			return nil, corrupt("duplicate section %#x", id)
		}
		seen[id] = true

		shards64, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, corrupt("shard count: %v", err)
		}
		total64, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, corrupt("item count: %v", err)
		}
		if shards64 > 1<<24 || total64 > 1<<40 {
			return nil, corrupt("implausible section shape %d/%d", shards64, total64)
		}
		shards, total := int(shards64), int(total64)

		switch id {
		case secMeta:
			err = forEachShard(br, shards, total, 1, m, func(_, _ int, raw []byte) error {
				if len(raw) != 24 {
					return corrupt("meta payload %d bytes, want 24", len(raw))
				}
				s.Genesis = int64(binary.LittleEndian.Uint64(raw[0:]))
				s.Collected = binary.LittleEndian.Uint64(raw[8:])
				s.Duplicates = binary.LittleEndian.Uint64(raw[16:])
				return nil
			})
		case secDays:
			if total > 0 {
				s.Days = make(map[int]*DayAgg, total)
			}
			err = forEachShard(br, shards, total, 1, m, func(_, items int, raw []byte) error {
				return decodeDays(s.Days, items, raw)
			})
		case secTipsLen1:
			s.TipsLen1, err = readHistogram(br, shards, total, m)
		case secTipsLen3:
			s.TipsLen3, err = readHistogram(br, shards, total, m)
		case secInterns:
			if total > 0 {
				interned = make([]solana.Pubkey, total)
			}
			err = forEachShard(br, shards, total, workers, m, func(base, items int, raw []byte) error {
				if len(raw) != 32*items {
					return corrupt("intern shard %d bytes for %d keys", len(raw), items)
				}
				for i := 0; i < items; i++ {
					copy(interned[base+i][:], raw[32*i:])
				}
				return nil
			})
		case secLen3, secLong:
			var recs []jito.BundleRecord
			if total > 0 {
				recs = make([]jito.BundleRecord, total)
			}
			err = forEachShard(br, shards, total, workers, m, func(base, items int, raw []byte) error {
				return decodeRecordShard(recs[base:base+items], raw)
			})
			if id == secLen3 {
				s.Len3 = recs
			} else {
				s.Long = recs
			}
		case secDetails:
			s.Details = make(map[solana.Signature]jito.TxDetail, total)
			var mu sync.Mutex
			err = forEachShard(br, shards, total, workers, m, func(_, items int, raw []byte) error {
				return decodeDetailShard(s.Details, &mu, items, raw, interned)
			})
		default:
			return nil, corrupt("unknown section %#x", id)
		}
		if err != nil {
			return nil, err
		}
	}
	// The writer emits every section unconditionally (empty sections have
	// zero shards), so a missing one means the stream was cut at a section
	// boundary — a truncation shape that would otherwise load as a
	// silently smaller dataset if the next byte happened to read as 0xFF.
	for _, id := range []byte{secMeta, secDays, secTipsLen1, secTipsLen3,
		secInterns, secLen3, secLong, secDetails} {
		if !seen[id] {
			return nil, corrupt("missing section %#x (truncated at a section boundary?)", id)
		}
	}
	return s, nil
}

// readHistogram decodes a histogram section: 0 shards means nil.
func readHistogram(br *bufio.Reader, shards, total int, m *snapObs) (*stats.LogHistogram, error) {
	if shards == 0 {
		return nil, nil
	}
	h := new(stats.LogHistogram)
	err := forEachShard(br, shards, total, 1, m, func(_, _ int, raw []byte) error {
		return h.UnmarshalBinary(raw)
	})
	if err != nil {
		return nil, err
	}
	return h, nil
}

// varintCursor walks a raw shard payload.
type varintCursor struct {
	raw []byte
	off int
}

func (c *varintCursor) uvarint() (uint64, error) {
	v, n := binary.Uvarint(c.raw[c.off:])
	if n <= 0 {
		return 0, corrupt("truncated varint at offset %d", c.off)
	}
	c.off += n
	return v, nil
}

func (c *varintCursor) u64() (uint64, error) {
	if c.off+8 > len(c.raw) {
		return 0, corrupt("truncated u64 at offset %d", c.off)
	}
	v := binary.LittleEndian.Uint64(c.raw[c.off:])
	c.off += 8
	return v, nil
}

func (c *varintCursor) take(n int) ([]byte, error) {
	if n < 0 || c.off+n > len(c.raw) {
		return nil, corrupt("truncated field at offset %d", c.off)
	}
	b := c.raw[c.off : c.off+n]
	c.off += n
	return b, nil
}

func (c *varintCursor) done() error {
	if c.off != len(c.raw) {
		return corrupt("%d trailing bytes in shard", len(c.raw)-c.off)
	}
	return nil
}

// decodeDays parses the days payload into dst.
func decodeDays(dst map[int]*DayAgg, items int, raw []byte) error {
	c := varintCursor{raw: raw}
	for i := 0; i < items; i++ {
		day, err := c.uvarint()
		if err != nil {
			return err
		}
		agg := new(DayAgg)
		fields := make([]*uint64, 0, 5+len(agg.ByLength))
		fields = append(fields, &agg.Bundles, &agg.Txs)
		for j := range agg.ByLength {
			fields = append(fields, &agg.ByLength[j])
		}
		fields = append(fields, &agg.DefensiveCount, &agg.PriorityCount, &agg.DefensiveSpend)
		for _, f := range fields {
			if *f, err = c.uvarint(); err != nil {
				return err
			}
		}
		dst[int(unzigzag(day))] = agg
	}
	return c.done()
}

// decodeRecordShard parses a columnar record shard into dst (one entry
// per record).
func decodeRecordShard(dst []jito.BundleRecord, raw []byte) error {
	c := varintCursor{raw: raw}
	if err := decodeRecordColumns(dst, &c); err != nil {
		return err
	}
	return c.done()
}

// decodeRecordColumns parses the record columns at the cursor into dst
// (one entry per record), leaving the cursor just past them — v3 bundle
// shards continue decoding detail columns from there. Signatures for the
// whole shard share one backing array.
func decodeRecordColumns(dst []jito.BundleRecord, c *varintCursor) error {
	n := len(dst)
	col, err := c.take(8 * n)
	if err != nil {
		return err
	}
	for i := range dst {
		dst[i].Seq = binary.LittleEndian.Uint64(col[8*i:])
	}
	if col, err = c.take(32 * n); err != nil {
		return err
	}
	for i := range dst {
		copy(dst[i].ID[:], col[32*i:])
	}
	if col, err = c.take(8 * n); err != nil {
		return err
	}
	for i := range dst {
		dst[i].Slot = solana.Slot(binary.LittleEndian.Uint64(col[8*i:]))
	}
	if col, err = c.take(8 * n); err != nil {
		return err
	}
	for i := range dst {
		dst[i].UnixMs = int64(binary.LittleEndian.Uint64(col[8*i:]))
	}
	if col, err = c.take(8 * n); err != nil {
		return err
	}
	for i := range dst {
		dst[i].TipLamps = binary.LittleEndian.Uint64(col[8*i:])
	}
	counts, err := c.take(n)
	if err != nil {
		return err
	}
	totalSigs := 0
	for _, cnt := range counts {
		totalSigs += int(cnt)
	}
	sigCol, err := c.take(64 * totalSigs)
	if err != nil {
		return err
	}
	backing := make([]solana.Signature, totalSigs)
	for i := range backing {
		copy(backing[i][:], sigCol[64*i:])
	}
	off := 0
	for i := range dst {
		cnt := int(counts[i])
		if cnt > 0 {
			dst[i].TxIDs = backing[off : off+cnt : off+cnt]
		}
		off += cnt
	}
	return nil
}

// decodeDetailShard parses a detail shard and inserts the entries into
// dst under mu. Parsing — the expensive part — runs outside the lock.
func decodeDetailShard(dst map[solana.Signature]jito.TxDetail, mu *sync.Mutex, items int, raw []byte, interned []solana.Pubkey) error {
	c := varintCursor{raw: raw}
	sigCol, err := c.take(64 * items)
	if err != nil {
		return err
	}
	dets := make([]jito.TxDetail, items)
	for i := range dets {
		copy(dets[i].Sig[:], sigCol[64*i:])
	}
	if err := decodeDetailColumns(dets, &c, interned); err != nil {
		return err
	}
	if err := c.done(); err != nil {
		return err
	}
	mu.Lock()
	for i := range dets {
		dst[dets[i].Sig] = dets[i]
	}
	mu.Unlock()
	return nil
}

// decodeDetailColumns parses the detail columns at the cursor into dets
// (whose length fixes the item count): signer index, slot, flags, tip,
// delta counts, then the ragged delta triples — the layout shared by the
// v2 details section and the v3 bundle/orphan shards. Pubkey indices
// resolve against interned (the global v2 table or a v3 shard-local
// dictionary).
func decodeDetailColumns(dets []jito.TxDetail, c *varintCursor, interned []solana.Pubkey) error {
	items := len(dets)
	var err error
	pubkey := func() (solana.Pubkey, error) {
		idx, err := c.uvarint()
		if err != nil {
			return solana.Pubkey{}, err
		}
		if idx >= uint64(len(interned)) {
			return solana.Pubkey{}, corrupt("intern index %d out of range %d", idx, len(interned))
		}
		return interned[idx], nil
	}
	for i := range dets {
		if dets[i].Signer, err = pubkey(); err != nil {
			return err
		}
	}
	col, err := c.take(8 * items)
	if err != nil {
		return err
	}
	for i := range dets {
		dets[i].Slot = solana.Slot(binary.LittleEndian.Uint64(col[8*i:]))
	}
	flags, err := c.take(items)
	if err != nil {
		return err
	}
	for i := range dets {
		dets[i].Failed = flags[i]&1 != 0
		dets[i].TipOnly = flags[i]&2 != 0
	}
	for i := range dets {
		if dets[i].TipLamports, err = c.uvarint(); err != nil {
			return err
		}
	}
	counts := make([]int, items)
	totalDeltas := 0
	for i := range dets {
		n, err := c.uvarint()
		if err != nil {
			return err
		}
		if n > uint64(len(c.raw)) { // each delta needs ≥3 bytes; cheap sanity bound
			return corrupt("delta count %d exceeds shard size", n)
		}
		counts[i] = int(n)
		totalDeltas += int(n)
	}
	backing := make([]jito.TokenDelta, totalDeltas)
	off := 0
	for i := range dets {
		for j := 0; j < counts[i]; j++ {
			td := &backing[off+j]
			if td.Owner, err = pubkey(); err != nil {
				return err
			}
			if td.Mint, err = pubkey(); err != nil {
				return err
			}
			d, err := c.uvarint()
			if err != nil {
				return err
			}
			td.Delta = unzigzag(d)
		}
		if counts[i] > 0 {
			dets[i].TokenDeltas = backing[off : off+counts[i] : off+counts[i]]
		}
		off += counts[i]
	}
	return nil
}

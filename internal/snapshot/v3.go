package snapshot

import (
	"bufio"
	"io"
	"sort"
	"time"

	"jitomev/internal/jito"
	"jitomev/internal/parallel"
	"jitomev/internal/solana"
)

// v3 encode: self-contained bundle shards. Each shard carries its
// records, the details aligned to them, and a local pubkey dictionary,
// so a streaming reader can decode → analyze → discard one shard at a
// time with no dataset-sized state — the property the v2 layout (global
// intern table, globally signature-sorted details) could not offer.

// write emits the v3 container: the v2 header sections, then the three
// streaming sections with pushdown metadata on every frame.
func write(w io.Writer, s *Snapshot, workers int, m *snapObs) error {
	bw := &writer{w: bufio.NewWriterSize(w, 1<<16), m: m}
	bw.bytes([]byte(MagicV3))
	bw.headerSections(s)

	clock := solana.Clock{Genesis: time.Unix(0, s.Genesis).UTC()}
	bw.bundleSection(secBundles3, s.Len3, s.Details, clock, workers)
	bw.bundleSection(secBundlesLong, s.Long, s.Details, clock, workers)

	// Orphans: details no retained record references, kept so the details
	// map round-trips exactly. Signature-sorted like the v2 details
	// section, which makes the shard split deterministic.
	referenced := make(map[solana.Signature]bool, 3*len(s.Len3))
	mark := func(recs []jito.BundleRecord) {
		for i := range recs {
			for _, sig := range recs[i].TxIDs {
				referenced[sig] = true
			}
		}
	}
	mark(s.Len3)
	mark(s.Long)
	orphans := make([]solana.Signature, 0)
	for sig := range s.Details {
		if !referenced[sig] {
			orphans = append(orphans, sig)
		}
	}
	sort.Slice(orphans, func(i, j int) bool {
		return string(orphans[i][:]) < string(orphans[j][:])
	})
	bw.sectionV3(secOrphans, len(orphans), orphanShardSize, workers, func(lo, hi int) ([]byte, ShardMeta, error) {
		return encodeOrphanShard(orphans[lo:hi], s.Details, clock)
	})

	bw.byte1(secEnd)
	if bw.err == nil {
		bw.err = bw.w.Flush()
	}
	if bw.err != nil {
		return &writeError{bw.err}
	}
	return nil
}

// shardFrameV3 is one encoded-and-compressed streaming shard with its
// metadata header.
type shardFrameV3 struct {
	meta ShardMeta
	raw  int
	blob []byte
	err  error
}

// sectionV3 emits one streaming section: like section, but every frame
// is prefixed with its ShardMeta pushdown block.
func (w *writer) sectionV3(id byte, totalItems, shardSize, workers int, encode func(lo, hi int) ([]byte, ShardMeta, error)) {
	if w.err != nil {
		return
	}
	shards := (totalItems + shardSize - 1) / shardSize
	w.byte1(id)
	w.uvarint(uint64(shards))
	w.uvarint(uint64(totalItems))
	parallel.OrderedStreamObs(w.m.reg, "snapshot_encode", workers, shards, func(i int) shardFrameV3 {
		lo := i * shardSize
		hi := lo + shardSize
		if hi > totalItems {
			hi = totalItems
		}
		raw, meta, err := encode(lo, hi)
		if err != nil {
			return shardFrameV3{err: err}
		}
		return shardFrameV3{meta: meta, raw: len(raw), blob: compressShard(raw)}
	}, func(f shardFrameV3) {
		if w.err == nil && f.err != nil {
			w.err = f.err
		}
		if w.err != nil {
			return
		}
		w.m.frame(f.raw, len(f.blob))
		w.uvarint(uint64(f.meta.Items))
		w.uvarint(zigzag(int64(f.meta.MinDay)))
		w.uvarint(zigzag(int64(f.meta.MaxDay)))
		for _, c := range f.meta.ByLength {
			w.uvarint(c)
		}
		w.uvarint(uint64(f.raw))
		w.uvarint(uint64(len(f.blob)))
		w.bytes(f.blob)
	})
}

// bundleSection emits one record family as self-contained bundle shards.
func (w *writer) bundleSection(id byte, recs []jito.BundleRecord, details map[solana.Signature]jito.TxDetail, clock solana.Clock, workers int) {
	w.sectionV3(id, len(recs), bundleShardSize, workers, func(lo, hi int) ([]byte, ShardMeta, error) {
		return encodeBundleShard(recs[lo:hi], details, clock)
	})
}

// internDetails builds a local dictionary over dets in first-use order —
// a pure function of the shard contents, so shard bytes stay
// deterministic at every worker count.
func internDetails(dets []jito.TxDetail) *interner {
	in := newInterner()
	for i := range dets {
		in.intern(dets[i].Signer)
		for _, td := range dets[i].TokenDeltas {
			in.intern(td.Owner)
			in.intern(td.Mint)
		}
	}
	return in
}

// appendLocalInterns emits the per-shard dictionary.
func appendLocalInterns(raw []byte, in *interner) []byte {
	raw = appendUvarint(raw, uint64(len(in.keys)))
	for _, k := range in.keys {
		raw = append(raw, k[:]...)
	}
	return raw
}

// encodeBundleShard lays out one self-contained shard: record columns,
// local dictionary, presence bytes, then detail columns over the present
// details in (record, member) order. A member's detail keeps no
// signature column — its signature is the transaction id at its position
// in the owning record.
func encodeBundleShard(recs []jito.BundleRecord, details map[solana.Signature]jito.TxDetail, clock solana.Clock) ([]byte, ShardMeta, error) {
	var meta ShardMeta
	meta.Items = len(recs)
	for i := range recs {
		n := len(recs[i].TxIDs)
		if n > jito.MaxBundleTxs {
			n = jito.MaxBundleTxs
		}
		meta.ByLength[n]++
		day := clock.DayOf(recs[i].Slot)
		if i == 0 || day < meta.MinDay {
			meta.MinDay = day
		}
		if i == 0 || day > meta.MaxDay {
			meta.MaxDay = day
		}
	}

	raw, err := encodeRecordShard(recs)
	if err != nil {
		return nil, meta, err
	}

	// Gather the present details in (record, member) order; pres carries
	// one byte per member so absent details (a degraded collection)
	// survive the round trip.
	dets := make([]jito.TxDetail, 0, 3*len(recs))
	pres := make([]byte, 0, 3*len(recs))
	for i := range recs {
		for _, sig := range recs[i].TxIDs {
			if det, ok := details[sig]; ok {
				dets = append(dets, det)
				pres = append(pres, 1)
			} else {
				pres = append(pres, 0)
			}
		}
	}
	in := internDetails(dets)
	raw = appendLocalInterns(raw, in)
	raw = append(raw, pres...)
	return appendDetailColumns(raw, dets, in), meta, nil
}

// encodeOrphanShard lays out unreferenced details: local dictionary,
// signature column, detail columns — the v2 detail shard carrying its
// own interns.
func encodeOrphanShard(sigs []solana.Signature, details map[solana.Signature]jito.TxDetail, clock solana.Clock) ([]byte, ShardMeta, error) {
	var meta ShardMeta
	meta.Items = len(sigs)
	dets := make([]jito.TxDetail, len(sigs))
	for i, sig := range sigs {
		dets[i] = details[sig]
		day := clock.DayOf(dets[i].Slot)
		if i == 0 || day < meta.MinDay {
			meta.MinDay = day
		}
		if i == 0 || day > meta.MaxDay {
			meta.MaxDay = day
		}
	}
	in := internDetails(dets)
	raw := appendLocalInterns(make([]byte, 0, 128*len(sigs)), in)
	for _, sig := range sigs {
		raw = append(raw, sig[:]...)
	}
	return appendDetailColumns(raw, dets, in), meta, nil
}

// Batch is one decoded streaming shard. Bundle shards carry Recs plus
// the details that were stored alongside them; orphan shards carry only
// details (Recs is nil). Batches are the unit of a streaming fold:
// decode, analyze, drop.
type Batch struct {
	Recs []jito.BundleRecord

	hasDetails bool
	dets       []jito.TxDetail // present details, (record, member) order
	detOff     []int32         // per record, index of its first detail; len(Recs)+1
}

// HasDetails reports whether detail columns were decoded (false when the
// scan asked for records only).
func (b *Batch) HasDetails() bool { return b.hasDetails }

// Details returns every detail present in the batch in (record, member)
// order — orphan batches return their whole payload. Full loads use it
// to rebuild the details map; the slice is owned by the batch.
func (b *Batch) Details() []jito.TxDetail { return b.dets }

// AppendDetails appends record i's aligned details to dst and reports
// whether every member transaction's detail is present — the same
// all-or-nothing contract as collector.Dataset.AppendDetails, so a
// streaming fold sees exactly what the in-memory pass sees.
func (b *Batch) AppendDetails(dst []jito.TxDetail, i int) ([]jito.TxDetail, bool) {
	lo, hi := b.detOff[i], b.detOff[i+1]
	if int(hi-lo) != len(b.Recs[i].TxIDs) {
		return dst, false
	}
	return append(dst, b.dets[lo:hi]...), true
}

// readLocalInterns decodes a shard's pubkey dictionary.
func readLocalInterns(c *varintCursor) ([]solana.Pubkey, error) {
	n, err := c.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(c.raw)-c.off)/32 {
		return nil, corrupt("dictionary of %d keys exceeds shard size", n)
	}
	col, err := c.take(32 * int(n))
	if err != nil {
		return nil, err
	}
	keys := make([]solana.Pubkey, n)
	for i := range keys {
		copy(keys[i][:], col[32*i:])
	}
	return keys, nil
}

// decodeBundleShard parses one self-contained shard. With withDetails
// false only the record columns are decoded and the rest of the payload
// is deliberately left unparsed — the records-only fast path for
// queries that never touch details.
func decodeBundleShard(items int, raw []byte, withDetails bool) (*Batch, error) {
	b := &Batch{Recs: make([]jito.BundleRecord, items)}
	c := varintCursor{raw: raw}
	if err := decodeRecordColumns(b.Recs, &c); err != nil {
		return nil, err
	}
	if !withDetails {
		return b, nil
	}

	keys, err := readLocalInterns(&c)
	if err != nil {
		return nil, err
	}
	members := 0
	for i := range b.Recs {
		members += len(b.Recs[i].TxIDs)
	}
	pres, err := c.take(members)
	if err != nil {
		return nil, err
	}
	count := 0
	for _, p := range pres {
		if p > 1 {
			return nil, corrupt("presence byte %d, want 0 or 1", p)
		}
		count += int(p)
	}
	dets := make([]jito.TxDetail, count)
	b.detOff = make([]int32, items+1)
	k, di := 0, 0
	for i := range b.Recs {
		b.detOff[i] = int32(di)
		for _, sig := range b.Recs[i].TxIDs {
			if pres[k] == 1 {
				dets[di].Sig = sig
				di++
			}
			k++
		}
	}
	b.detOff[items] = int32(di)
	if err := decodeDetailColumns(dets, &c, keys); err != nil {
		return nil, err
	}
	if err := c.done(); err != nil {
		return nil, err
	}
	b.dets = dets
	b.hasDetails = true
	return b, nil
}

// decodeOrphanShard parses an orphan shard into a details-only batch.
func decodeOrphanShard(items int, raw []byte) (*Batch, error) {
	c := varintCursor{raw: raw}
	keys, err := readLocalInterns(&c)
	if err != nil {
		return nil, err
	}
	sigCol, err := c.take(64 * items)
	if err != nil {
		return nil, err
	}
	dets := make([]jito.TxDetail, items)
	for i := range dets {
		copy(dets[i].Sig[:], sigCol[64*i:])
	}
	if err := decodeDetailColumns(dets, &c, keys); err != nil {
		return nil, err
	}
	if err := c.done(); err != nil {
		return nil, err
	}
	return &Batch{dets: dets, hasDetails: true}, nil
}

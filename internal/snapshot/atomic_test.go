package snapshot

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestWriteFileAtomic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "data.snap")
	n, err := WriteFileAtomic(path, func(w io.Writer) error {
		_, err := w.Write([]byte("hello snapshot"))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len("hello snapshot")) {
		t.Errorf("reported %d bytes", n)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "hello snapshot" {
		t.Fatalf("read back %q, %v", got, err)
	}
}

// TestWriteFileAtomicPreservesOldOnFailure is the property the collector
// checkpoints rely on: a failed save must leave the previous checkpoint
// byte-for-byte intact and no temp litter behind.
func TestWriteFileAtomicPreservesOldOnFailure(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data.snap")
	if err := os.WriteFile(path, []byte("precious"), 0o644); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("disk on fire")
	_, err := WriteFileAtomic(path, func(w io.Writer) error {
		w.Write([]byte("partial garbage"))
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("error not propagated: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "precious" {
		t.Fatalf("previous checkpoint damaged: %q, %v", got, err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("temp file leaked: %d entries in dir", len(entries))
	}
}

func TestWriteFileAtomicMissingDir(t *testing.T) {
	_, err := WriteFileAtomic(filepath.Join(t.TempDir(), "no", "such", "dir", "x"),
		func(io.Writer) error { return nil })
	if err == nil {
		t.Error("write into a missing directory succeeded")
	}
}

package snapshot

import (
	"io"
	"time"

	"jitomev/internal/obs"
)

// Observability for the snapshot container. Shard counts and byte
// totals are pure functions of the snapshot contents (shard boundaries
// are fixed-size, never worker-dependent — the format's byte-identity
// guarantee), so they stay in the deterministic snapshot; only the
// wall-time histogram is volatile.
const (
	famShards    = "snapshot_shards_total"
	famRawBytes  = "snapshot_raw_bytes_total"
	famCompBytes = "snapshot_compressed_bytes_total"
	famSeconds   = "snapshot_seconds"
)

// snapObs carries the registry handles for one direction (encode or
// decode). The zero value (all nil handles) is a valid no-op recorder.
type snapObs struct {
	reg       *obs.Registry
	shards    *obs.Counter
	rawBytes  *obs.Counter
	compBytes *obs.Counter
	dur       *obs.Histogram
}

func newSnapObs(reg *obs.Registry, op string) *snapObs {
	if reg == nil {
		return &snapObs{}
	}
	reg.Help(famShards, "Snapshot shards processed, by operation.")
	reg.Volatile(famSeconds)
	return &snapObs{
		reg:       reg,
		shards:    reg.Counter(famShards, "op", op),
		rawBytes:  reg.Counter(famRawBytes, "op", op),
		compBytes: reg.Counter(famCompBytes, "op", op),
		dur:       reg.Histogram(famSeconds, obs.DurationBuckets, "op", op),
	}
}

// frame records one shard passing through (raw = uncompressed payload
// bytes, comp = on-the-wire bytes).
func (m *snapObs) frame(raw, comp int) {
	m.shards.Inc()
	m.rawBytes.Add(uint64(raw))
	m.compBytes.Add(uint64(comp))
}

// WriteObs is Write recording shard counts, raw/compressed byte totals
// and save duration onto reg (nil reg selects the uninstrumented path).
func WriteObs(w io.Writer, s *Snapshot, workers int, reg *obs.Registry) error {
	m := newSnapObs(reg, "encode")
	start := time.Now()
	err := write(w, s, workers, m)
	m.dur.Observe(time.Since(start).Seconds())
	return err
}

// ReadObs is Read recording shard counts, raw/compressed byte totals
// and load duration onto reg (nil reg selects the uninstrumented path).
func ReadObs(r io.Reader, workers int, reg *obs.Registry) (*Snapshot, error) {
	m := newSnapObs(reg, "decode")
	start := time.Now()
	s, err := read(r, workers, m)
	m.dur.Observe(time.Since(start).Seconds())
	return s, err
}

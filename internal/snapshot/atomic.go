package snapshot

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WriteFileAtomic writes a snapshot (or any stream) to path without ever
// exposing a partial file: the payload lands in a temporary file in the
// destination directory, is synced, and is renamed over path only on
// success. A crash mid-save leaves any previous checkpoint untouched —
// the property the collector relies on for mid-run checkpointing of a
// months-long collection. Returns the byte count written.
func WriteFileAtomic(path string, write func(w io.Writer) error) (int64, error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return 0, fmt.Errorf("snapshot: %w", err)
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()

	if err := write(tmp); err != nil {
		return 0, err
	}
	if err := tmp.Sync(); err != nil {
		return 0, fmt.Errorf("snapshot: syncing %s: %w", tmp.Name(), err)
	}
	info, err := tmp.Stat()
	if err != nil {
		return 0, fmt.Errorf("snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return 0, fmt.Errorf("snapshot: closing %s: %w", tmp.Name(), err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return 0, fmt.Errorf("snapshot: publishing %s: %w", path, err)
	}
	tmp = nil // published: disarm the cleanup
	return info.Size(), nil
}

// Package snapshot implements the dataset checkpoint formats (v2 and
// v3): length-prefixed, versioned containers of independently
// gzip-compressed shards, written and read in parallel. The paper's
// four-month collection is the asset the whole pipeline exists to
// protect, and the v1 format — one gzip stream around one reflective gob
// encoding of the entire dataset — pushed every byte through a single
// core. v2 split the dataset into fixed-size shards whose encoding is a
// pure function of the data (never of the worker count), compressed them
// concurrently, and concatenated them in shard order, so Save and Load
// both scale with cores, output bytes are identical at every worker
// count, and peak transient memory is bounded by the compression window
// rather than the dataset.
//
// v3 — the current write format — restructures the bundle payload for
// out-of-core analytics: every shard is a self-contained streaming unit
// (records plus their aligned transaction details plus a local pubkey
// dictionary), and every shard frame carries a pushdown-metadata header
// (record count, min/max study day, bundle-length histogram) that a
// streaming scanner can use to skip the shard without even inflating it.
// v2 files stay readable; see the versioning policy below.
//
// # Container layout (v2)
//
// All multi-byte integers are little-endian when fixed-width and unsigned
// LEB128 ("uvarint") when variable; signed varints use zigzag. The file
// is a magic string followed by sections in a fixed order:
//
//	offset 0: magic "jitosnp2" (8 bytes; v1 files instead start with the
//	          gzip magic 0x1f 0x8b, which is how LoadDataset sniffs the
//	          version without consuming the stream)
//	then, per section:
//	  id         byte    (see section constants below)
//	  shardCount uvarint
//	  totalItems uvarint (sum of the per-shard item counts)
//	  then shardCount frames, each:
//	    items   uvarint (records/keys/entries encoded in this shard)
//	    rawLen  uvarint (decompressed payload length in bytes)
//	    compLen uvarint
//	    blob    compLen bytes of gzip(payload)
//	terminator: the single byte 0xFF
//
// Sections appear in this order: meta, days, tipsLen1, tipsLen3, interns,
// len3, long, details. The intern table precedes the sections that
// reference it. Unknown section ids are a decode error — the version
// byte in the magic, not section skipping, is the compatibility
// mechanism.
//
// # Container layout (v3)
//
// A v3 file opens with magic "jitosnp3" and holds the header sections
// meta, days, tipsLen1 and tipsLen3 exactly as v2 does, followed by
// three streaming sections — bundles3, bundlesLong, orphans — and the
// 0xFF terminator. Streaming sections use an extended frame whose
// header is the pushdown-metadata block:
//
//	items   uvarint          records (or orphan details) in this shard
//	minDay  zigzag uvarint   earliest study day touched by the shard
//	maxDay  zigzag uvarint   latest study day touched by the shard
//	byLen   uvarints         bundle-length histogram, lengths 0..5
//	                         (all zero for orphan shards)
//	rawLen  uvarint
//	compLen uvarint
//	blob    compLen bytes of gzip(payload)
//
// A bundle shard's payload is self-contained: the v2 record columns,
// then a local pubkey dictionary (nKeys uvarint + nKeys×32 bytes, in
// first-use order), then one presence byte per (record, member
// transaction) pair, then the v2 detail columns over exactly the present
// details in (record, member) order. Member signatures are not stored
// with the details — a detail's signature is the transaction id at its
// position in the owning record, which is also why the v2 global intern
// table and the globally signature-sorted details section disappear: a
// scanner can decode, analyze and discard one shard at a time with no
// dataset-sized state. Details not referenced by any retained record
// land in the orphans section (signature-sorted, v2 detail layout plus
// the same local dictionary), preserving exact map round trips.
//
// The metadata header is what predicate pushdown reads: a day-ranged
// query drops shards whose [minDay, maxDay] misses the range, and a
// query that needs no long bundles drops every shard with no length-3
// entries, in both cases skipping the gzip inflate entirely.
//
// # Shard payloads
//
// Record shards (len3/long) are columnar with fixed-width columns, one
// column fully emitted before the next — this groups similar bytes and
// lets a fast gzip level reach the ratio v1 needed a slow level for:
//
//	seq[items]   uint64     id[items]     [32]byte
//	slot[items]  uint64     unixMs[items] int64 (as uint64 bits)
//	tip[items]   uint64     nTx[items]    byte
//	txids        concatenated [64]byte signatures, sum(nTx) of them
//
// The intern shard payload is items × 32-byte pubkeys, in first-use
// order (deterministic because details are encoded in sorted-signature
// order). Detail shards reference pubkeys as uvarint intern indices so a
// signer or mint that appears in thousands of transactions is stored
// once:
//
//	sig[items]    [64]byte          signerIdx[items] uvarint
//	slot[items]   uint64            flags[items]     byte (bit0 failed,
//	tip[items]    uvarint                             bit1 tipOnly)
//	nDelta[items] uvarint
//	deltas        per delta: ownerIdx uvarint, mintIdx uvarint,
//	              delta zigzag-varint
//
// The meta payload is genesis unixNano, collected, duplicates (3 ×
// uint64). The days payload is, per day in ascending order: zigzag day
// then uvarint Bundles, Txs, ByLength[0..MaxBundleTxs], DefensiveCount,
// PriorityCount, DefensiveSpend. Histogram payloads reuse
// stats.LogHistogram's binary encoding.
//
// # Versioning policy
//
// The magic string carries the version; readers sniff the first two
// bytes and route v1 (gzip magic) to the legacy gob decoder, which is
// retained read-only. Any layout change bumps the magic to "jitosnp3" —
// old readers fail loudly on new files rather than misparsing them, and
// new readers keep decoding every format ever shipped.
package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"

	"jitomev/internal/jito"
	"jitomev/internal/solana"
	"jitomev/internal/stats"
)

// Magic opens every v2 snapshot. The first byte (0x6a) is distinct from
// the gzip magic's 0x1f, so version sniffing needs only one byte.
const Magic = "jitosnp2"

// MagicV3 opens every v3 snapshot — the current write format, with
// self-contained bundle shards and per-shard pushdown metadata.
const MagicV3 = "jitosnp3"

// Section identifiers, in file order. The 0x0A+ block is v3-only.
const (
	secMeta     = 0x01
	secDays     = 0x02
	secTipsLen1 = 0x03
	secTipsLen3 = 0x04
	secInterns  = 0x05 // v2 only
	secLen3     = 0x06 // v2 only
	secLong     = 0x07 // v2 only
	secDetails  = 0x08 // v2 only
	secEnd      = 0xFF

	secBundles3    = 0x0A // v3: len-3 records + aligned details
	secBundlesLong = 0x0B // v3: retained length-4/5 records + details
	secOrphans     = 0x0C // v3: details referenced by no retained record
)

// Shard sizing: fixed constants so shard boundaries — and therefore the
// output bytes — depend only on the data, never on the worker count.
// 8192 records ≈ 1 MiB raw for the record columns, which keeps per-shard
// compression state small while amortizing the frame overhead. v3 bundle
// shards carry their details inline, so they use a smaller record count
// both to hold the raw payload near the same size and to keep the
// per-shard day span tight (finer-grained shards prune better).
const (
	recordShardSize = 8192
	detailShardSize = 8192
	internShardSize = 16384

	bundleShardSize = 4096
	orphanShardSize = 8192
)

// ShardMeta is the pushdown-metadata block every v3 streaming frame
// carries: enough for a planner to decide whether a shard can be skipped
// without inflating it. Day bounds are zero-based study days (the same
// solana.Clock.DayOf the collector aggregates by); ByLength counts the
// shard's records by bundle length, with out-of-spec lengths clamped
// into the top bucket, and is all zero for orphan-detail shards.
type ShardMeta struct {
	Items  int
	MinDay int
	MaxDay int

	ByLength [jito.MaxBundleTxs + 1]uint64

	// RawLen and CompLen size the shard's payload: CompLen is what a
	// pruned scan skips, RawLen what a full scan inflates.
	RawLen  int
	CompLen int
}

// DayAgg aggregates one study day of collected bundles — the per-day
// series behind Figures 1 and 2. The canonical definition lives here so
// the persistence layer and the collector share one type without an
// import cycle; collector re-exports it under the same name.
type DayAgg struct {
	Bundles  uint64
	Txs      uint64
	ByLength [jito.MaxBundleTxs + 1]uint64

	// Defensive-bundling aggregates (paper §3.3 classification applied
	// at ingest so length-1 bundles never need to be retained).
	DefensiveCount uint64
	PriorityCount  uint64
	DefensiveSpend uint64 // lamports
}

// Snapshot is the persisted view of a dataset: collection results only,
// shared (not copied) with the live collector.Dataset. Transient
// machinery like the dedup window restarts fresh on load.
type Snapshot struct {
	Genesis  int64 // UnixNano of the chain clock genesis
	Days     map[int]*DayAgg
	TipsLen1 *stats.LogHistogram
	TipsLen3 *stats.LogHistogram
	Len3     []jito.BundleRecord
	Long     []jito.BundleRecord
	Details  map[solana.Signature]jito.TxDetail

	Collected  uint64
	Duplicates uint64
}

// zigzag encoding for signed varints.
func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

func appendUvarint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }

// ErrCorrupt is the sentinel every decode failure wraps: any malformed,
// truncated or hostile input — including a short read anywhere in the
// stream — surfaces as errors.Is(err, ErrCorrupt), so callers can
// distinguish "bad checkpoint" from I/O plumbing failures.
var ErrCorrupt = errors.New("snapshot: corrupt")

// corrupt builds the uniform decode error, wrapping ErrCorrupt.
func corrupt(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// corruptShard tags a shard-level failure with its shard index, ensuring
// exactly one ErrCorrupt wrap even when the inner error already carries
// one (payload decoders) or none (histogram codecs).
func corruptShard(idx int, err error) error {
	if errors.Is(err, ErrCorrupt) {
		return fmt.Errorf("snapshot: shard %d: %w", idx, err)
	}
	return fmt.Errorf("%w: shard %d: %v", ErrCorrupt, idx, err)
}

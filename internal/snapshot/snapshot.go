// Package snapshot implements the dataset checkpoint format (v2): a
// length-prefixed, versioned container of independently gzip-compressed
// shards, written and read in parallel. The paper's four-month collection
// is the asset the whole pipeline exists to protect, and the v1 format —
// one gzip stream around one reflective gob encoding of the entire
// dataset — pushed every byte through a single core. v2 splits the
// dataset into fixed-size shards whose encoding is a pure function of the
// data (never of the worker count), compresses them concurrently, and
// concatenates them in shard order, so Save and Load both scale with
// cores, output bytes are identical at every worker count, and peak
// transient memory is bounded by the compression window rather than the
// dataset.
//
// # Container layout
//
// All multi-byte integers are little-endian when fixed-width and unsigned
// LEB128 ("uvarint") when variable; signed varints use zigzag. The file
// is a magic string followed by sections in a fixed order:
//
//	offset 0: magic "jitosnp2" (8 bytes; v1 files instead start with the
//	          gzip magic 0x1f 0x8b, which is how LoadDataset sniffs the
//	          version without consuming the stream)
//	then, per section:
//	  id         byte    (see section constants below)
//	  shardCount uvarint
//	  totalItems uvarint (sum of the per-shard item counts)
//	  then shardCount frames, each:
//	    items   uvarint (records/keys/entries encoded in this shard)
//	    rawLen  uvarint (decompressed payload length in bytes)
//	    compLen uvarint
//	    blob    compLen bytes of gzip(payload)
//	terminator: the single byte 0xFF
//
// Sections appear in this order: meta, days, tipsLen1, tipsLen3, interns,
// len3, long, details. The intern table precedes the sections that
// reference it. Unknown section ids are a decode error — the version
// byte in the magic, not section skipping, is the compatibility
// mechanism.
//
// # Shard payloads
//
// Record shards (len3/long) are columnar with fixed-width columns, one
// column fully emitted before the next — this groups similar bytes and
// lets a fast gzip level reach the ratio v1 needed a slow level for:
//
//	seq[items]   uint64     id[items]     [32]byte
//	slot[items]  uint64     unixMs[items] int64 (as uint64 bits)
//	tip[items]   uint64     nTx[items]    byte
//	txids        concatenated [64]byte signatures, sum(nTx) of them
//
// The intern shard payload is items × 32-byte pubkeys, in first-use
// order (deterministic because details are encoded in sorted-signature
// order). Detail shards reference pubkeys as uvarint intern indices so a
// signer or mint that appears in thousands of transactions is stored
// once:
//
//	sig[items]    [64]byte          signerIdx[items] uvarint
//	slot[items]   uint64            flags[items]     byte (bit0 failed,
//	tip[items]    uvarint                             bit1 tipOnly)
//	nDelta[items] uvarint
//	deltas        per delta: ownerIdx uvarint, mintIdx uvarint,
//	              delta zigzag-varint
//
// The meta payload is genesis unixNano, collected, duplicates (3 ×
// uint64). The days payload is, per day in ascending order: zigzag day
// then uvarint Bundles, Txs, ByLength[0..MaxBundleTxs], DefensiveCount,
// PriorityCount, DefensiveSpend. Histogram payloads reuse
// stats.LogHistogram's binary encoding.
//
// # Versioning policy
//
// The magic string carries the version; readers sniff the first two
// bytes and route v1 (gzip magic) to the legacy gob decoder, which is
// retained read-only. Any layout change bumps the magic to "jitosnp3" —
// old readers fail loudly on new files rather than misparsing them, and
// new readers keep decoding every format ever shipped.
package snapshot

import (
	"encoding/binary"
	"fmt"

	"jitomev/internal/jito"
	"jitomev/internal/solana"
	"jitomev/internal/stats"
)

// Magic opens every v2 snapshot. The first byte (0x6a) is distinct from
// the gzip magic's 0x1f, so version sniffing needs only one byte.
const Magic = "jitosnp2"

// Section identifiers, in file order.
const (
	secMeta     = 0x01
	secDays     = 0x02
	secTipsLen1 = 0x03
	secTipsLen3 = 0x04
	secInterns  = 0x05
	secLen3     = 0x06
	secLong     = 0x07
	secDetails  = 0x08
	secEnd      = 0xFF
)

// Shard sizing: fixed constants so shard boundaries — and therefore the
// output bytes — depend only on the data, never on the worker count.
// 8192 records ≈ 1 MiB raw for the record columns, which keeps per-shard
// compression state small while amortizing the frame overhead.
const (
	recordShardSize = 8192
	detailShardSize = 8192
	internShardSize = 16384
)

// DayAgg aggregates one study day of collected bundles — the per-day
// series behind Figures 1 and 2. The canonical definition lives here so
// the persistence layer and the collector share one type without an
// import cycle; collector re-exports it under the same name.
type DayAgg struct {
	Bundles  uint64
	Txs      uint64
	ByLength [jito.MaxBundleTxs + 1]uint64

	// Defensive-bundling aggregates (paper §3.3 classification applied
	// at ingest so length-1 bundles never need to be retained).
	DefensiveCount uint64
	PriorityCount  uint64
	DefensiveSpend uint64 // lamports
}

// Snapshot is the persisted view of a dataset: collection results only,
// shared (not copied) with the live collector.Dataset. Transient
// machinery like the dedup window restarts fresh on load.
type Snapshot struct {
	Genesis  int64 // UnixNano of the chain clock genesis
	Days     map[int]*DayAgg
	TipsLen1 *stats.LogHistogram
	TipsLen3 *stats.LogHistogram
	Len3     []jito.BundleRecord
	Long     []jito.BundleRecord
	Details  map[solana.Signature]jito.TxDetail

	Collected  uint64
	Duplicates uint64
}

// zigzag encoding for signed varints.
func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

func appendUvarint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }

// corrupt builds the uniform decode error.
func corrupt(format string, args ...any) error {
	return fmt.Errorf("snapshot: corrupt: "+format, args...)
}

package snapshot

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

// TestTruncationAlwaysDetected is the truncation fuzz: no strict prefix
// of a valid snapshot may load. The dangerous shapes are cuts landing
// exactly on frame or section boundaries — a short read mid-varint or
// mid-blob fails trivially, but a cut at a boundary leaves a stream that
// parses cleanly up to the cut, and only the section-completeness and
// item-total checks can tell it from a smaller dataset.
func TestTruncationAlwaysDetected(t *testing.T) {
	s := testSnapshot(11, recordShardSize+37, detailShardSize/8)
	var buf bytes.Buffer
	if err := Write(&buf, s, 0); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	check := func(n int) {
		t.Helper()
		_, err := Read(bytes.NewReader(good[:n]), 0)
		if err == nil {
			t.Fatalf("prefix of %d/%d bytes loaded without error", n, len(good))
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("prefix of %d bytes: error not wrapping ErrCorrupt: %v", n, err)
		}
	}

	// Exhaustive over the container header region, sampled beyond it, and
	// exhaustive again over the final bytes (the trailing-shard shapes the
	// fuzz exists for).
	limit := len(good) - 1
	for n := 0; n < 2048 && n <= limit; n++ {
		check(n)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 128; i++ {
		check(rng.Intn(limit + 1))
	}
	for n := limit - 1024; n <= limit; n++ {
		if n >= 0 {
			check(n)
		}
	}
}

// TestCorruptErrorsCarryShardIndex pins the diagnostic contract: a
// failure inside shard k names shard k, so a four-month checkpoint that
// breaks can be triaged without a hex dump.
func TestCorruptErrorsCarryShardIndex(t *testing.T) {
	s := testSnapshot(12, 3*recordShardSize, 100)
	var buf bytes.Buffer
	if err := Write(&buf, s, 1); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Flip one byte near the end: some trailing shard's gzip CRC (or the
	// columnar layout) must catch it and say which shard.
	bad := append([]byte(nil), good...)
	bad[len(bad)-64] ^= 0xFF
	_, err := Read(bytes.NewReader(bad), 0)
	if err == nil {
		t.Fatal("bit flip near stream end accepted")
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("error not wrapping ErrCorrupt: %v", err)
	}
	if !bytes.Contains([]byte(err.Error()), []byte("shard")) {
		t.Errorf("error does not name a shard: %v", err)
	}
}

package snapshot

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"jitomev/internal/jito"
	"jitomev/internal/solana"
)

// alignedSnapshot builds a snapshot whose records actually reference
// their details — the shape real collections have and the self-contained
// v3 shards exist for. Records spread evenly across [0, days) study
// days; each member transaction carries a detail with probability
// detailFrac, and a handful of orphan details ride along.
func alignedSnapshot(seed int64, nRecords, days int, detailFrac float64) *Snapshot {
	rng := rand.New(rand.NewSource(seed))
	s := testSnapshot(seed, 0, 0)
	for i := 0; i < nRecords; i++ {
		day := i * days / nRecords
		nTx := 3
		long := i%7 == 3
		if long {
			nTx = 4 + rng.Intn(2)
		}
		rec := jito.BundleRecord{
			Seq:      uint64(i),
			Slot:     solana.DayStart(day) + solana.Slot(rng.Intn(int(solana.SlotsPerDay))),
			UnixMs:   rng.Int63(),
			TipLamps: rng.Uint64() >> uint(rng.Intn(40)),
		}
		rng.Read(rec.ID[:])
		for j := 0; j < nTx; j++ {
			sig := randSig(rng)
			rec.TxIDs = append(rec.TxIDs, sig)
			if rng.Float64() < detailFrac {
				det := randDetail(rng, 4)
				det.Sig = sig
				det.Slot = rec.Slot
				s.Details[sig] = det
			}
		}
		if long {
			s.Long = append(s.Long, rec)
		} else {
			s.Len3 = append(s.Len3, rec)
		}
	}
	for i := 0; i < nRecords/10; i++ {
		det := randDetail(rng, 4)
		s.Details[det.Sig] = det
	}
	return s
}

// TestWriteV2ReadBack pins the compatibility promise: v2 containers stay
// readable even though Write now emits v3.
func TestWriteV2ReadBack(t *testing.T) {
	s := alignedSnapshot(21, 6000, 9, 0.9)
	var buf bytes.Buffer
	if err := WriteV2(&buf, s, 0); err != nil {
		t.Fatal(err)
	}
	if buf.String()[:8] != Magic {
		t.Fatalf("WriteV2 emitted magic %q", buf.String()[:8])
	}
	got, err := Read(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	snapshotsEqual(t, s, got)
}

// TestScanRoundTrip rebuilds a snapshot from a full streaming scan and
// checks it matches the original — prelude, records, aligned details and
// orphans alike — while every shard's metadata agrees with its contents.
func TestScanRoundTrip(t *testing.T) {
	s := alignedSnapshot(22, 3*bundleShardSize+17, 11, 0.85)
	clock := solana.Clock{Genesis: unixNanoTime(s.Genesis)}
	var buf bytes.Buffer
	if err := Write(&buf, s, 0); err != nil {
		t.Fatal(err)
	}

	got := &Snapshot{Details: make(map[solana.Signature]jito.TxDetail)}
	err := Scan(&buf, ScanOptions{Workers: 4}, func(p *Prelude) error {
		got.Genesis, got.Collected, got.Duplicates = p.Genesis, p.Collected, p.Duplicates
		got.Days, got.TipsLen1, got.TipsLen3 = p.Days, p.TipsLen1, p.TipsLen3
		return nil
	}, func(sec Section, m ShardMeta, b *Batch, _ any) error {
		if b == nil {
			t.Fatalf("%s: shard pruned with no Prune configured", sec)
		}
		if len(b.Recs) != 0 {
			var byLen [jito.MaxBundleTxs + 1]uint64
			minDay, maxDay := 0, 0
			for i := range b.Recs {
				byLen[len(b.Recs[i].TxIDs)]++
				d := clock.DayOf(b.Recs[i].Slot)
				if i == 0 || d < minDay {
					minDay = d
				}
				if i == 0 || d > maxDay {
					maxDay = d
				}
			}
			if m.Items != len(b.Recs) || m.ByLength != byLen ||
				m.MinDay != minDay || m.MaxDay != maxDay {
				t.Errorf("%s: metadata %+v disagrees with shard contents", sec, m)
			}
		}
		switch sec {
		case SectionLen3:
			got.Len3 = append(got.Len3, b.Recs...)
		case SectionLong:
			got.Long = append(got.Long, b.Recs...)
		}
		for _, det := range b.Details() {
			got.Details[det.Sig] = det
		}
		// Aligned access must agree with the original dataset's
		// all-or-nothing contract (dst content is scratch when a record
		// is incomplete, so only complete records compare content).
		for i := range b.Recs {
			want, wantOK := appendDetailsFromMap(nil, &b.Recs[i], s.Details)
			dst, ok := b.AppendDetails(nil, i)
			if ok != wantOK {
				t.Fatalf("%s: AppendDetails(%d) completeness %v, map lookup says %v", sec, i, ok, wantOK)
			}
			if ok && !reflect.DeepEqual(dst, want) {
				t.Fatalf("%s: AppendDetails(%d) diverges from map lookup", sec, i)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	snapshotsEqual(t, s, got)
}

// appendDetailsFromMap mirrors collector.Dataset.AppendDetails against a
// raw map — the reference the batch accessor must match.
func appendDetailsFromMap(dst []jito.TxDetail, rec *jito.BundleRecord, details map[solana.Signature]jito.TxDetail) ([]jito.TxDetail, bool) {
	for _, id := range rec.TxIDs {
		det, ok := details[id]
		if !ok {
			return dst, false
		}
		dst = append(dst, det)
	}
	return dst, true
}

// TestScanPruneDays exercises day-range pushdown: pruned shards must be
// delivered batchless, surviving shards must cover every record in the
// range, and the skip path must actually skip (no decode of pruned
// frames).
func TestScanPruneDays(t *testing.T) {
	const days = 12
	s := alignedSnapshot(23, 4*bundleShardSize, days, 0.8)
	var buf bytes.Buffer
	if err := Write(&buf, s, 0); err != nil {
		t.Fatal(err)
	}
	lo, hi := 4, 7
	clock := solana.Clock{Genesis: unixNanoTime(s.Genesis)}

	pruned, scanned := 0, 0
	var kept []jito.BundleRecord
	err := Scan(&buf, ScanOptions{Workers: 3, Prune: func(sec Section, m ShardMeta) bool {
		return m.MaxDay < lo || m.MinDay > hi
	}}, nil, func(sec Section, m ShardMeta, b *Batch, _ any) error {
		if b == nil {
			pruned++
			if m.MaxDay >= lo && m.MinDay <= hi {
				t.Errorf("%s: in-range shard [%d,%d] was pruned", sec, m.MinDay, m.MaxDay)
			}
			return nil
		}
		scanned++
		if sec == SectionLen3 {
			kept = append(kept, b.Recs...)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if pruned == 0 {
		t.Fatalf("day range [%d,%d] over %d days pruned no shards (scanned %d)", lo, hi, days, scanned)
	}

	want := 0
	for i := range s.Len3 {
		if d := clock.DayOf(s.Len3[i].Slot); d >= lo && d <= hi {
			want++
		}
	}
	got := 0
	for i := range kept {
		if d := clock.DayOf(kept[i].Slot); d >= lo && d <= hi {
			got++
		}
	}
	if got != want {
		t.Errorf("surviving shards carry %d in-range len3 records, want %d", got, want)
	}
}

// TestScanRecordsOnly checks the records-only fast path leaves details
// unparsed but records intact.
func TestScanRecordsOnly(t *testing.T) {
	s := alignedSnapshot(24, bundleShardSize+100, 5, 0.9)
	var buf bytes.Buffer
	if err := Write(&buf, s, 0); err != nil {
		t.Fatal(err)
	}
	var recs int
	err := Scan(&buf, ScanOptions{
		Workers:     2,
		RecordsOnly: func(Section) bool { return true },
		// Orphan shards hold only details; prune them outright.
		Prune: func(sec Section, _ ShardMeta) bool { return sec == SectionOrphans },
	}, nil, func(sec Section, m ShardMeta, b *Batch, _ any) error {
		if b == nil {
			return nil
		}
		if b.HasDetails() {
			t.Errorf("%s: details decoded under RecordsOnly", sec)
		}
		if len(b.Details()) != 0 {
			t.Errorf("%s: %d details under RecordsOnly", sec, len(b.Details()))
		}
		recs += len(b.Recs)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := len(s.Len3) + len(s.Long); recs != want {
		t.Errorf("scanned %d records, want %d", recs, want)
	}
}

// TestScanIdenticalAcrossWorkers pins scan determinism: the fold
// sequence (sections, metadata, batch contents) must be identical at
// every worker count.
func TestScanIdenticalAcrossWorkers(t *testing.T) {
	s := alignedSnapshot(25, 2*bundleShardSize+321, 8, 0.7)
	var buf bytes.Buffer
	if err := Write(&buf, s, 0); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	type foldRec struct {
		Sec   Section
		Meta  ShardMeta
		Seqs  []uint64
		NDets int
	}
	trace := func(workers int) []foldRec {
		var out []foldRec
		err := Scan(bytes.NewReader(data), ScanOptions{Workers: workers}, nil,
			func(sec Section, m ShardMeta, b *Batch, _ any) error {
				fr := foldRec{Sec: sec, Meta: m, NDets: len(b.Details())}
				for i := range b.Recs {
					fr.Seqs = append(fr.Seqs, b.Recs[i].Seq)
				}
				out = append(out, fr)
				return nil
			})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}

	base := trace(1)
	for _, w := range []int{4, 8} {
		if got := trace(w); !reflect.DeepEqual(base, got) {
			t.Errorf("fold sequence at workers=%d diverges from serial", w)
		}
	}
}

// TestScanRejectsOlderContainers: the streaming path is v3-only; Sniff
// is the sanctioned router for older files.
func TestScanRejectsOlderContainers(t *testing.T) {
	s := testSnapshot(26, 100, 50)
	var buf bytes.Buffer
	if err := WriteV2(&buf, s, 1); err != nil {
		t.Fatal(err)
	}
	err := Scan(&buf, ScanOptions{}, nil, func(Section, ShardMeta, *Batch, any) error { return nil })
	if err == nil {
		t.Fatal("scan of a v2 container succeeded")
	}
}

// TestScanAllShardsPrunedSkipsMap: when the planner prunes every shard
// (a day filter entirely outside the snapshot), Map must never run —
// the scan is pure frame-skipping — while the fold still sees every
// shard's metadata with a nil batch and a nil mapped value.
func TestScanAllShardsPrunedSkipsMap(t *testing.T) {
	s := alignedSnapshot(27, 2*bundleShardSize+55, 6, 0.8)
	var buf bytes.Buffer
	if err := Write(&buf, s, 0); err != nil {
		t.Fatal(err)
	}

	mapCalls := 0
	folds := 0
	err := Scan(&buf, ScanOptions{
		Workers: 4,
		Prune:   func(sec Section, m ShardMeta) bool { return sec != SectionOrphans },
		Map: func(sec Section, m ShardMeta, b *Batch) (any, error) {
			if sec != SectionOrphans {
				mapCalls++
			}
			return nil, nil
		},
	}, nil, func(sec Section, m ShardMeta, b *Batch, mapped any) error {
		if sec == SectionOrphans {
			return nil
		}
		folds++
		if b != nil {
			t.Errorf("%s: pruned shard delivered a batch", sec)
		}
		if mapped != nil {
			t.Errorf("%s: pruned shard delivered a mapped value", sec)
		}
		if m.Items == 0 {
			t.Errorf("%s: pruned shard lost its metadata", sec)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if mapCalls != 0 {
		t.Errorf("Map ran %d times on a fully pruned scan", mapCalls)
	}
	if folds == 0 {
		t.Error("fully pruned scan delivered no shard metadata at all")
	}
}

package snapshot

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"io"
	"sort"
	"sync"

	"jitomev/internal/jito"
	"jitomev/internal/parallel"
	"jitomev/internal/solana"
	"jitomev/internal/stats"
)

// Shards compress at gzip.BestSpeed: the columnar layout already groups
// similar bytes, so the fast level lands near v1's on-disk size while
// cutting the dominant CPU cost of a checkpoint by several times.
const shardGzipLevel = gzip.BestSpeed

var gzipWriters = sync.Pool{
	New: func() any {
		zw, _ := gzip.NewWriterLevel(io.Discard, shardGzipLevel)
		return zw
	},
}

// compressShard gzips raw into a fresh buffer.
func compressShard(raw []byte) []byte {
	var buf bytes.Buffer
	buf.Grow(len(raw)/2 + 64)
	zw := gzipWriters.Get().(*gzip.Writer)
	zw.Reset(&buf)
	zw.Write(raw)
	zw.Close() // in-memory buffer: cannot fail
	gzipWriters.Put(zw)
	return buf.Bytes()
}

// interner assigns dense indices to pubkeys in first-use order. Built
// serially (over the sorted detail order) so indices are deterministic;
// read concurrently by the detail shard encoders.
type interner struct {
	idx  map[solana.Pubkey]uint64
	keys []solana.Pubkey
}

func newInterner() *interner {
	return &interner{idx: make(map[solana.Pubkey]uint64)}
}

func (in *interner) intern(p solana.Pubkey) uint64 {
	if i, ok := in.idx[p]; ok {
		return i
	}
	i := uint64(len(in.keys))
	in.idx[p] = i
	in.keys = append(in.keys, p)
	return i
}

// shardFrame is one encoded-and-compressed shard ready to be framed into
// the output stream.
type shardFrame struct {
	items int
	raw   int
	blob  []byte
	err   error
}

// writer wraps the destination with buffering and sticky error state.
type writer struct {
	w   *bufio.Writer
	m   *snapObs
	err error
	scr [binary.MaxVarintLen64]byte
}

func (w *writer) bytes(b []byte) {
	if w.err == nil {
		_, w.err = w.w.Write(b)
	}
}

func (w *writer) byte1(b byte) {
	if w.err == nil {
		w.err = w.w.WriteByte(b)
	}
}

func (w *writer) uvarint(v uint64) {
	w.bytes(appendUvarint(w.scr[:0], v))
}

// section emits one section: header, then shardCount frames produced by
// encode(lo, hi) over [0, totalItems) in fixed-size slices. Shards are
// encoded and compressed on the worker pool but emitted strictly in
// shard order, so the output is byte-identical at every worker count.
func (w *writer) section(id byte, totalItems, shardSize, workers int, encode func(lo, hi int) ([]byte, error)) {
	if w.err != nil {
		return
	}
	shards := (totalItems + shardSize - 1) / shardSize
	w.byte1(id)
	w.uvarint(uint64(shards))
	w.uvarint(uint64(totalItems))
	parallel.OrderedStreamObs(w.m.reg, "snapshot_encode", workers, shards, func(i int) shardFrame {
		lo := i * shardSize
		hi := lo + shardSize
		if hi > totalItems {
			hi = totalItems
		}
		raw, err := encode(lo, hi)
		if err != nil {
			return shardFrame{err: err}
		}
		return shardFrame{items: hi - lo, raw: len(raw), blob: compressShard(raw)}
	}, func(f shardFrame) {
		if w.err == nil && f.err != nil {
			w.err = f.err
		}
		if w.err != nil {
			return
		}
		w.m.frame(f.raw, len(f.blob))
		w.uvarint(uint64(f.items))
		w.uvarint(uint64(f.raw))
		w.uvarint(uint64(len(f.blob)))
		w.bytes(f.blob)
	})
}

// Write encodes s to w in the v3 container format: self-contained
// bundle shards with pushdown metadata. workers bounds the shard
// encode/compress pool (0 = all cores, 1 = serial); the bytes written
// are identical for every worker count.
func Write(w io.Writer, s *Snapshot, workers int) error {
	return write(w, s, workers, &snapObs{})
}

// WriteV2 encodes s in the superseded v2 container format. Retained so
// tests and benchmarks can produce the older format against the
// still-supported read path; new checkpoints should use Write.
func WriteV2(w io.Writer, s *Snapshot, workers int) error {
	return writeV2(w, s, workers, &snapObs{})
}

// headerSections emits the aggregate sections shared by v2 and v3: meta,
// days, and the two tip histograms.
func (w *writer) headerSections(s *Snapshot) {
	// meta: three fixed uint64s.
	w.section(secMeta, 1, 1, 1, func(_, _ int) ([]byte, error) {
		raw := make([]byte, 0, 24)
		raw = appendU64(raw, uint64(s.Genesis))
		raw = appendU64(raw, s.Collected)
		raw = appendU64(raw, s.Duplicates)
		return raw, nil
	})

	// days, ascending.
	days := make([]int, 0, len(s.Days))
	for d := range s.Days {
		days = append(days, d)
	}
	sort.Ints(days)
	w.section(secDays, len(days), len(days)+1, 1, func(lo, hi int) ([]byte, error) {
		raw := make([]byte, 0, 32*(hi-lo))
		for _, d := range days[lo:hi] {
			agg := s.Days[d]
			raw = appendUvarint(raw, zigzag(int64(d)))
			raw = appendUvarint(raw, agg.Bundles)
			raw = appendUvarint(raw, agg.Txs)
			for _, c := range agg.ByLength {
				raw = appendUvarint(raw, c)
			}
			raw = appendUvarint(raw, agg.DefensiveCount)
			raw = appendUvarint(raw, agg.PriorityCount)
			raw = appendUvarint(raw, agg.DefensiveSpend)
		}
		return raw, nil
	})

	w.histogram(secTipsLen1, s.TipsLen1)
	w.histogram(secTipsLen3, s.TipsLen3)
}

func writeV2(w io.Writer, s *Snapshot, workers int, m *snapObs) error {
	bw := &writer{w: bufio.NewWriterSize(w, 1<<16), m: m}
	bw.bytes([]byte(Magic))
	bw.headerSections(s)

	// Details in sorted-signature order: the canonical encode order that
	// makes both the shard payloads and the intern table deterministic.
	sigs := make([]solana.Signature, 0, len(s.Details))
	for sig := range s.Details {
		sigs = append(sigs, sig)
	}
	sort.Slice(sigs, func(i, j int) bool {
		return bytes.Compare(sigs[i][:], sigs[j][:]) < 0
	})
	in := newInterner()
	for _, sig := range sigs {
		det := s.Details[sig]
		in.intern(det.Signer)
		for _, td := range det.TokenDeltas {
			in.intern(td.Owner)
			in.intern(td.Mint)
		}
	}

	bw.section(secInterns, len(in.keys), internShardSize, workers, func(lo, hi int) ([]byte, error) {
		raw := make([]byte, 0, 32*(hi-lo))
		for _, k := range in.keys[lo:hi] {
			raw = append(raw, k[:]...)
		}
		return raw, nil
	})

	bw.recordSection(secLen3, s.Len3, workers)
	bw.recordSection(secLong, s.Long, workers)

	bw.section(secDetails, len(sigs), detailShardSize, workers, func(lo, hi int) ([]byte, error) {
		return encodeDetailShard(sigs[lo:hi], s.Details, in)
	})

	bw.byte1(secEnd)
	if bw.err == nil {
		bw.err = bw.w.Flush()
	}
	if bw.err != nil {
		return &writeError{bw.err}
	}
	return nil
}

// writeError brands container-level write failures.
type writeError struct{ err error }

func (e *writeError) Error() string { return "snapshot: write: " + e.err.Error() }
func (e *writeError) Unwrap() error { return e.err }

// histogram emits a histogram section; a nil histogram is an empty
// section (0 shards) and loads back as nil.
func (w *writer) histogram(id byte, h *stats.LogHistogram) {
	n := 0
	if h != nil {
		n = 1
	}
	w.section(id, n, 1, 1, func(_, _ int) ([]byte, error) {
		return h.AppendBinary(nil), nil
	})
}

// recordSection emits a columnar record section over the worker pool.
func (w *writer) recordSection(id byte, recs []jito.BundleRecord, workers int) {
	w.section(id, len(recs), recordShardSize, workers, func(lo, hi int) ([]byte, error) {
		return encodeRecordShard(recs[lo:hi])
	})
}

func appendU64(b []byte, v uint64) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// encodeRecordShard lays the shard out column by column (fixed width),
// then the ragged signature lists.
func encodeRecordShard(recs []jito.BundleRecord) ([]byte, error) {
	sigBytes := 0
	for i := range recs {
		if len(recs[i].TxIDs) > 255 {
			return nil, corrupt("bundle %s has %d transactions, limit 255",
				recs[i].ID.Short(), len(recs[i].TxIDs))
		}
		sigBytes += 64 * len(recs[i].TxIDs)
	}
	raw := make([]byte, 0, len(recs)*(8*4+32+1)+sigBytes)
	for i := range recs {
		raw = appendU64(raw, recs[i].Seq)
	}
	for i := range recs {
		raw = append(raw, recs[i].ID[:]...)
	}
	for i := range recs {
		raw = appendU64(raw, uint64(recs[i].Slot))
	}
	for i := range recs {
		raw = appendU64(raw, uint64(recs[i].UnixMs))
	}
	for i := range recs {
		raw = appendU64(raw, recs[i].TipLamps)
	}
	for i := range recs {
		raw = append(raw, byte(len(recs[i].TxIDs)))
	}
	for i := range recs {
		for _, sig := range recs[i].TxIDs {
			raw = append(raw, sig[:]...)
		}
	}
	return raw, nil
}

// encodeDetailShard lays out the details for sigs (already sorted) with
// pubkeys replaced by intern indices. One map pass gathers the shard's
// details so the column loops touch only the flat slice.
func encodeDetailShard(sigs []solana.Signature, details map[solana.Signature]jito.TxDetail, in *interner) ([]byte, error) {
	dets := make([]jito.TxDetail, len(sigs))
	for i, sig := range sigs {
		dets[i] = details[sig]
	}
	raw := make([]byte, 0, len(sigs)*96)
	for _, sig := range sigs {
		raw = append(raw, sig[:]...)
	}
	return appendDetailColumns(raw, dets, in), nil
}

// appendDetailColumns emits the detail columns shared by the v2 details
// section and the v3 bundle/orphan shards: signer index, slot, flags,
// tip, delta count, then the ragged delta triples.
func appendDetailColumns(raw []byte, dets []jito.TxDetail, in *interner) []byte {
	for i := range dets {
		raw = appendUvarint(raw, in.idx[dets[i].Signer])
	}
	for i := range dets {
		raw = appendU64(raw, uint64(dets[i].Slot))
	}
	for i := range dets {
		var flags byte
		if dets[i].Failed {
			flags |= 1
		}
		if dets[i].TipOnly {
			flags |= 2
		}
		raw = append(raw, flags)
	}
	for i := range dets {
		raw = appendUvarint(raw, dets[i].TipLamports)
	}
	for i := range dets {
		raw = appendUvarint(raw, uint64(len(dets[i].TokenDeltas)))
	}
	for i := range dets {
		for _, td := range dets[i].TokenDeltas {
			raw = appendUvarint(raw, in.idx[td.Owner])
			raw = appendUvarint(raw, in.idx[td.Mint])
			raw = appendUvarint(raw, zigzag(td.Delta))
		}
	}
	return raw
}

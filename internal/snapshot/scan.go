package snapshot

import (
	"bufio"
	"encoding/binary"
	"errors"
	"io"
	"sync"
	"time"

	"jitomev/internal/jito"
	"jitomev/internal/obs"
	"jitomev/internal/parallel"
	"jitomev/internal/solana"
	"jitomev/internal/stats"
)

// Streaming scan over a v3 snapshot: the out-of-core read path. The
// caller sees the prelude (every aggregate stored ahead of the bundle
// sections) once, then one fold call per shard in file order; shard
// payloads are decompressed and decoded on a bounded worker pool while
// frames are read serially, so peak live memory is proportional to
// workers × shard size and independent of the dataset.

// Prelude is everything a v3 snapshot stores ahead of the streaming
// sections — small aggregates a bounded-memory pass can hold whole.
type Prelude struct {
	Genesis    int64 // UnixNano of the chain clock genesis
	Collected  uint64
	Duplicates uint64
	Days       map[int]*DayAgg
	TipsLen1   *stats.LogHistogram
	TipsLen3   *stats.LogHistogram
}

// Clock rebuilds the chain clock the snapshot was aggregated under.
func (p *Prelude) Clock() solana.Clock {
	return solana.Clock{Genesis: unixNanoTime(p.Genesis)}
}

// Section identifies which streaming section a shard belongs to.
type Section byte

const (
	SectionLen3 Section = iota
	SectionLong
	SectionOrphans
)

// String names the section for metrics labels and error messages.
func (s Section) String() string {
	switch s {
	case SectionLen3:
		return "len3"
	case SectionLong:
		return "long"
	case SectionOrphans:
		return "orphans"
	}
	return "unknown"
}

// ScanFold receives every shard of the streaming sections in file order
// on the calling goroutine. b is nil for a pruned shard (its metadata is
// still delivered, so folds can count what was skipped) and for every
// shard when Map is set — mapped then carries Map's result instead.
// Batches are owned by the fold and dropped by the scanner — holding
// every batch would defeat the bounded-memory point.
type ScanFold func(sec Section, m ShardMeta, b *Batch, mapped any) error

// ScanOptions configure a streaming pass. The zero value scans
// everything on all cores, uninstrumented.
type ScanOptions struct {
	// Workers bounds the decompress/decode pool (0 = all cores,
	// 1 = serial). Frames are always read, pruned and folded serially in
	// shard order, so results are identical at every worker count.
	Workers int

	// Reg optionally records shard counts, byte totals and scan duration
	// (the same families the batch read path uses, op="scan").
	Reg *obs.Registry

	// Prune, when non-nil, is consulted once per shard in file order
	// before the blob is touched; returning true skips decompression and
	// decode entirely — the reader discards CompLen bytes — and the fold
	// sees a nil batch. Pruning decisions must rely on ShardMeta only.
	Prune func(sec Section, m ShardMeta) bool

	// Map, when non-nil, runs on the worker pool right after a shard is
	// decoded, turning the batch into whatever the fold actually needs
	// (detection partials, counts). The batch is released on the worker —
	// the fold receives b == nil and Map's return value — so per-shard
	// work heavier than the decode itself scales with the pool instead of
	// serializing on the fold goroutine. Map must not retain the batch
	// and must be safe to call concurrently. Pruned shards never reach
	// Map.
	Map func(sec Section, m ShardMeta, b *Batch) (any, error)

	// RecordsOnly, when non-nil and reporting true for a bundle section,
	// leaves that section's detail payloads unparsed: batches carry
	// records with HasDetails() == false. Ignored for the orphans
	// section (which holds nothing but details).
	RecordsOnly func(sec Section) bool

	// SectionStart, when non-nil, runs before each streaming section's
	// shards with the section's totals — the hook full loads use to
	// preallocate and planners use to size their accounting.
	SectionStart func(sec Section, shards, items int) error
}

// Scan streams a v3 snapshot from r: prelude once, then one fold call
// per shard of the len3, long and orphans sections, in file order.
// Scanning a v1/v2 stream fails with ErrCorrupt — callers wanting
// transparent fallback should Sniff first and take the full-load path
// for older containers.
func Scan(r io.Reader, opts ScanOptions, prelude func(*Prelude) error, fold ScanFold) error {
	m := newSnapObs(opts.Reg, "scan")
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(r, 1<<20)
	}
	var magic [len(MagicV3)]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return corrupt("magic: %v", err)
	}
	if string(magic[:]) != MagicV3 {
		return corrupt("streaming scan needs a v3 snapshot, found magic %q", magic[:])
	}
	return scanSections(br, &opts, m, prelude, fold)
}

// Sniff peeks at the opening bytes of br and reports the container
// version without consuming input: 1 for the legacy gzip/gob stream, 2
// or 3 for the sharded containers.
func Sniff(br *bufio.Reader) (int, error) {
	head, err := br.Peek(2)
	if err != nil {
		return 0, corrupt("sniffing version: %v", err)
	}
	if head[0] == 0x1f && head[1] == 0x8b {
		return 1, nil
	}
	head, err = br.Peek(len(Magic))
	if err != nil {
		return 0, corrupt("sniffing version: %v", err)
	}
	switch string(head) {
	case Magic:
		return 2, nil
	case MagicV3:
		return 3, nil
	}
	return 0, corrupt("unrecognized container magic %q", head)
}

// readSectionHeader consumes one section header, enforcing the v3
// strict section order (which is also what turns a cut at a section
// boundary into a loud error).
func readSectionHeader(br *bufio.Reader, want byte) (shards, total int, err error) {
	id, err := br.ReadByte()
	if err != nil {
		return 0, 0, corrupt("section id: %v", err)
	}
	if id != want {
		return 0, 0, corrupt("section %#x, want %#x (v3 sections are strictly ordered)", id, want)
	}
	shards64, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, 0, corrupt("shard count: %v", err)
	}
	total64, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, 0, corrupt("item count: %v", err)
	}
	if shards64 > 1<<24 || total64 > 1<<40 {
		return 0, 0, corrupt("implausible section shape %d/%d", shards64, total64)
	}
	return int(shards64), int(total64), nil
}

// scanSections walks the v3 body (everything after the magic).
func scanSections(br *bufio.Reader, opts *ScanOptions, m *snapObs, preludeFn func(*Prelude) error, fold ScanFold) error {
	p := &Prelude{}

	shards, total, err := readSectionHeader(br, secMeta)
	if err != nil {
		return err
	}
	if err := forEachShard(br, shards, total, 1, m, func(_, _ int, raw []byte) error {
		if len(raw) != 24 {
			return corrupt("meta payload %d bytes, want 24", len(raw))
		}
		p.Genesis = int64(binary.LittleEndian.Uint64(raw[0:]))
		p.Collected = binary.LittleEndian.Uint64(raw[8:])
		p.Duplicates = binary.LittleEndian.Uint64(raw[16:])
		return nil
	}); err != nil {
		return err
	}

	if shards, total, err = readSectionHeader(br, secDays); err != nil {
		return err
	}
	if total > 0 {
		p.Days = make(map[int]*DayAgg, total)
	}
	if err := forEachShard(br, shards, total, 1, m, func(_, items int, raw []byte) error {
		return decodeDays(p.Days, items, raw)
	}); err != nil {
		return err
	}

	for _, h := range []struct {
		id  byte
		dst **stats.LogHistogram
	}{{secTipsLen1, &p.TipsLen1}, {secTipsLen3, &p.TipsLen3}} {
		if shards, total, err = readSectionHeader(br, h.id); err != nil {
			return err
		}
		if *h.dst, err = readHistogram(br, shards, total, m); err != nil {
			return err
		}
	}

	if preludeFn != nil {
		if err := preludeFn(p); err != nil {
			return err
		}
	}

	for _, sec := range []struct {
		id  byte
		sec Section
	}{{secBundles3, SectionLen3}, {secBundlesLong, SectionLong}, {secOrphans, SectionOrphans}} {
		if shards, total, err = readSectionHeader(br, sec.id); err != nil {
			return err
		}
		if opts.SectionStart != nil {
			if err := opts.SectionStart(sec.sec, shards, total); err != nil {
				return err
			}
		}
		if err := scanSection(br, sec.sec, shards, total, opts, m, fold); err != nil {
			return err
		}
	}

	id, err := br.ReadByte()
	if err != nil {
		return corrupt("terminator: %v", err)
	}
	if id != secEnd {
		return corrupt("terminator byte %#x, want %#x", id, secEnd)
	}
	return nil
}

// errScanAborted marks shards skipped because an earlier shard already
// failed; it never escapes the scanner.
var errScanAborted = errors.New("snapshot: scan aborted")

// scanShard is one frame's journey through the scan pipeline.
type scanShard struct {
	meta   ShardMeta
	blob   []byte
	batch  *Batch
	mapped any
	pruned bool
	err    error
}

// scanSection streams one v3 section: a serial read gate hands frames to
// the pool in file order (pruned frames are discarded right at the
// gate), payloads inflate and decode concurrently, and
// parallel.OrderedStream folds results back in strict shard order — the
// same primitive the writer uses, giving identical folds at every
// worker count.
func scanSection(br *bufio.Reader, sec Section, shards, total int, opts *ScanOptions, m *snapObs, fold ScanFold) error {
	workers := parallel.Workers(opts.Workers)
	withDetails := true
	if opts.RecordsOnly != nil && sec != SectionOrphans {
		withDetails = !opts.RecordsOnly(sec)
	}

	// The gate: produce(i) may read its frame only once frames 0..i-1
	// are off the stream. Its holder is always inside produce (indices
	// are claimed after the window token), so turns advance and the
	// window never deadlocks.
	var (
		gate     sync.Mutex
		turn     = sync.NewCond(&gate)
		nextRead = 0
		base     = 0
		readErr  error
		foldErr  error
	)

	parallel.OrderedStream(workers, shards, func(i int) scanShard {
		gate.Lock()
		for nextRead != i {
			turn.Wait()
		}
		var sh scanShard
		if readErr != nil {
			sh.err = errScanAborted
		} else {
			sh.meta, sh.err = readFrameV3(br, i, total-base)
			if sh.err == nil {
				base += sh.meta.Items
				if opts.Prune != nil && opts.Prune(sec, sh.meta) {
					sh.pruned = true
					if _, err := br.Discard(sh.meta.CompLen); err != nil {
						sh.err = corrupt("shard %d: body truncated in skip: %v", i, err)
					}
				} else {
					blob := make([]byte, sh.meta.CompLen)
					if n, err := io.ReadFull(br, blob); err != nil {
						sh.err = corrupt("shard %d: body truncated at byte %d of %d: %v",
							i, n, sh.meta.CompLen, err)
					} else {
						sh.blob = blob
						m.frame(sh.meta.RawLen, sh.meta.CompLen)
					}
				}
			}
			if sh.err != nil {
				readErr = sh.err
			}
		}
		nextRead++
		turn.Broadcast()
		gate.Unlock()

		if sh.err != nil || sh.pruned {
			return sh
		}
		// Off the gate: the parallel part.
		raw, err := decompressShard(sh.blob, sh.meta.RawLen)
		sh.blob = nil
		if err == nil {
			if sec == SectionOrphans {
				sh.batch, err = decodeOrphanShard(sh.meta.Items, raw)
			} else {
				sh.batch, err = decodeBundleShard(sh.meta.Items, raw, withDetails)
			}
		}
		if err != nil {
			sh.err = corruptShard(i, err)
			return sh
		}
		if opts.Map != nil {
			sh.mapped, sh.err = opts.Map(sec, sh.meta, sh.batch)
			sh.batch = nil
		}
		return sh
	}, func(sh scanShard) {
		if foldErr != nil {
			return
		}
		if sh.err != nil {
			if sh.err != errScanAborted {
				foldErr = sh.err
			}
			return
		}
		if err := fold(sec, sh.meta, sh.batch, sh.mapped); err != nil {
			foldErr = err
		}
	})

	if foldErr != nil {
		return foldErr
	}
	if readErr != nil {
		return readErr
	}
	if base != total {
		return corrupt("section holds %d items, header declared %d", base, total)
	}
	return nil
}

// readFrameV3 reads one extended frame header (the pushdown metadata
// block), validating it against the section totals so a hostile or
// truncated header cannot demand absurd work.
func readFrameV3(br *bufio.Reader, idx, itemsLeft int) (ShardMeta, error) {
	var m ShardMeta
	next := func(what string) (uint64, error) {
		v, err := binary.ReadUvarint(br)
		if err != nil {
			return 0, corrupt("shard %d: %s: %v", idx, what, err)
		}
		return v, nil
	}
	items, err := next("header")
	if err != nil {
		return m, err
	}
	if items > uint64(itemsLeft) {
		return m, corrupt("shard %d: items %d overflow section total", idx, items)
	}
	m.Items = int(items)
	for _, dst := range []*int{&m.MinDay, &m.MaxDay} {
		v, err := next("day bound")
		if err != nil {
			return m, err
		}
		d := unzigzag(v)
		if d < -(1<<32) || d > 1<<32 {
			return m, corrupt("shard %d: implausible day bound %d", idx, d)
		}
		*dst = int(d)
	}
	if m.Items > 0 && m.MinDay > m.MaxDay {
		return m, corrupt("shard %d: inverted day bounds [%d, %d]", idx, m.MinDay, m.MaxDay)
	}
	sum := uint64(0)
	for j := range m.ByLength {
		v, err := next("length histogram")
		if err != nil {
			return m, err
		}
		if v > items {
			return m, corrupt("shard %d: length histogram bucket %d overflows items", idx, v)
		}
		m.ByLength[j] = v
		sum += v
	}
	if sum != items && sum != 0 {
		return m, corrupt("shard %d: length histogram sums %d, want %d or 0", idx, sum, items)
	}
	for _, f := range []struct {
		what string
		dst  *int
	}{{"raw length", &m.RawLen}, {"compressed length", &m.CompLen}} {
		v, err := next(f.what)
		if err != nil {
			return m, err
		}
		if v > maxShardBytes {
			return m, corrupt("shard %d: length %d exceeds limit", idx, v)
		}
		*f.dst = int(v)
	}
	return m, nil
}

// readV3 is the full-materialization read path for v3 snapshots: the
// streaming scan with no pruning, reassembling the in-memory Snapshot.
func readV3(br *bufio.Reader, workers int, m *snapObs) (*Snapshot, error) {
	s := &Snapshot{Details: make(map[solana.Signature]jito.TxDetail)}
	opts := ScanOptions{
		Workers: workers,
		SectionStart: func(sec Section, _, items int) error {
			switch {
			case sec == SectionLen3 && items > 0:
				s.Len3 = make([]jito.BundleRecord, 0, items)
			case sec == SectionLong && items > 0:
				s.Long = make([]jito.BundleRecord, 0, items)
			}
			return nil
		},
	}
	err := scanSections(br, &opts, m, func(p *Prelude) error {
		s.Genesis = p.Genesis
		s.Collected = p.Collected
		s.Duplicates = p.Duplicates
		s.Days = p.Days
		s.TipsLen1 = p.TipsLen1
		s.TipsLen3 = p.TipsLen3
		return nil
	}, func(sec Section, _ ShardMeta, b *Batch, _ any) error {
		switch sec {
		case SectionLen3:
			s.Len3 = append(s.Len3, b.Recs...)
		case SectionLong:
			s.Long = append(s.Long, b.Recs...)
		}
		dets := b.Details()
		for i := range dets {
			s.Details[dets[i].Sig] = dets[i]
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return s, nil
}

// unixNanoTime converts a persisted genesis back to wall time.
func unixNanoTime(ns int64) time.Time { return time.Unix(0, ns).UTC() }

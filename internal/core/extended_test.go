package core

import (
	"testing"

	"jitomev/internal/jito"
	"jitomev/internal/solana"
)

func recordN(details []jito.TxDetail, tip uint64) *jito.BundleRecord {
	ids := make([]solana.Signature, len(details))
	for i, d := range details {
		ids[i] = d.Sig
	}
	return &jito.BundleRecord{ID: jito.BundleID{2}, Slot: 1, TxIDs: ids, TipLamps: tip}
}

func tipOnlyDetail(i int, signer solana.Pubkey) jito.TxDetail {
	return jito.TxDetail{Sig: sig(i), Signer: signer, TipOnly: true, TipLamports: 5_000}
}

func memoDetail(i int, signer solana.Pubkey) jito.TxDetail {
	return jito.TxDetail{Sig: sig(i), Signer: signer}
}

func TestExtendedFindsPlainLength3(t *testing.T) {
	dt := NewDefaultDetector()
	details, rec := canonicalSandwich()
	ev := dt.DetectExtended(rec, details)
	if !ev.Found() || len(ev.Sandwiches) != 1 {
		t.Fatalf("extended missed canonical sandwich: %+v", ev)
	}
	if ev.Indices[0] != [3]int{0, 1, 2} {
		t.Errorf("indices %v", ev.Indices[0])
	}
	// Quantification must agree with the plain detector.
	plain := dt.Detect(rec, details)
	if ev.Sandwiches[0].VictimLossLamports != plain.VictimLossLamports {
		t.Error("extended quantification diverges from plain detector")
	}
}

func TestExtendedFindsTrailingPad(t *testing.T) {
	dt := NewDefaultDetector()
	details, _ := canonicalSandwich()
	padded := append(details, memoDetail(10, other))
	rec := recordN(padded, 2_000_000)

	// The plain detector misses it (CritLength) — the paper's gap.
	if v := dt.Detect(rec, padded); v.Sandwich || v.Failed != CritLength {
		t.Fatalf("plain detector verdict %v", v.Failed)
	}
	ev := dt.DetectExtended(rec, padded)
	if !ev.Found() {
		t.Fatal("extended missed length-4 disguised sandwich")
	}
	if ev.Indices[0] != [3]int{0, 1, 2} {
		t.Errorf("indices %v", ev.Indices[0])
	}
}

func TestExtendedFindsLeadingAndMiddlePads(t *testing.T) {
	dt := NewDefaultDetector()
	s, _ := canonicalSandwich()

	// Pad at the front.
	front := append([]jito.TxDetail{memoDetail(11, other)}, s...)
	ev := dt.DetectExtended(recordN(front, 1_000), front)
	if !ev.Found() || ev.Indices[0] != [3]int{1, 2, 3} {
		t.Fatalf("front pad: %+v", ev.Indices)
	}

	// Pad between victim and back-run.
	mid := []jito.TxDetail{s[0], s[1], tipOnlyDetail(12, attacker), s[2]}
	ev = dt.DetectExtended(recordN(mid, 1_000), mid)
	if !ev.Found() || ev.Indices[0] != [3]int{0, 1, 3} {
		t.Fatalf("middle pad: %+v", ev.Indices)
	}
}

func TestExtendedUnrelatedTradePad(t *testing.T) {
	// The pad is itself a trade, but on a different mint pair.
	dt := NewDefaultDetector()
	s, _ := canonicalSandwich()
	pad := detail(13, other, meme2, 500, solMint, 400)
	padded := []jito.TxDetail{s[0], pad, s[1], s[2]}
	ev := dt.DetectExtended(recordN(padded, 1_000), padded)
	if !ev.Found() {
		t.Fatal("unrelated-trade pad defeated extended detector")
	}
	if ev.Indices[0] != [3]int{0, 2, 3} {
		t.Errorf("indices %v", ev.Indices[0])
	}
	if ev.Sandwiches[0].Victim != victim {
		t.Error("victim attribution wrong")
	}
}

func TestExtendedRejectsBenignLong(t *testing.T) {
	dt := NewDefaultDetector()
	// Four unrelated trades by four signers.
	a := detail(20, attacker, solMint, 100, memeMint, 90)
	b := detail(21, victim, solMint, 100, meme2, 90)
	c := detail(22, other, meme2, 100, solMint, 90)
	d := tipOnlyDetail(23, other)
	details := []jito.TxDetail{a, b, c, d}
	if ev := dt.DetectExtended(recordN(details, 1_000), details); ev.Found() {
		t.Fatalf("benign length-4 flagged: %+v", ev.Indices)
	}
}

func TestExtendedRejectsUnprofitableTriple(t *testing.T) {
	dt := NewDefaultDetector()
	details := []jito.TxDetail{
		detail(30, attacker, solMint, 10_000_000_000, memeMint, 10_000),
		detail(31, victim, solMint, 1_000_000_000_000, memeMint, 900_000),
		detail(32, attacker, memeMint, 10_000, solMint, 9_000_000_000), // loss
		memoDetail(33, other),
	}
	if ev := dt.DetectExtended(recordN(details, 1_000), details); ev.Found() {
		t.Fatal("unprofitable padded A-B-A flagged")
	}
}

func TestExtendedTipOnlyNeverALeg(t *testing.T) {
	dt := NewDefaultDetector()
	s, _ := canonicalSandwich()
	// Replace the back-run with a tip-only tx: no complete sandwich left.
	details := []jito.TxDetail{s[0], s[1], tipOnlyDetail(40, attacker), memoDetail(41, attacker)}
	if ev := dt.DetectExtended(recordN(details, 1_000), details); ev.Found() {
		t.Fatal("tip-only transaction used as a sandwich leg")
	}
}

func TestExtendedBoundsChecks(t *testing.T) {
	dt := NewDefaultDetector()
	s, _ := canonicalSandwich()
	if ev := dt.DetectExtended(recordN(s[:2], 1_000), s[:2]); ev.Found() {
		t.Error("length-2 bundle produced a sandwich")
	}
	six := append(append([]jito.TxDetail{}, s...), s...)
	if ev := dt.DetectExtended(recordN(six, 1_000), six); ev.Found() {
		t.Error("over-length bundle should be rejected (Jito max is 5)")
	}
}

func TestExtendedLength5WithTwoPads(t *testing.T) {
	dt := NewDefaultDetector()
	s, _ := canonicalSandwich()
	details := []jito.TxDetail{memoDetail(50, other), s[0], s[1], s[2], tipOnlyDetail(51, attacker)}
	ev := dt.DetectExtended(recordN(details, 3_000_000), details)
	if !ev.Found() || ev.Indices[0] != [3]int{1, 2, 3} {
		t.Fatalf("length-5 disguise: %+v", ev.Indices)
	}
	if ev.Sandwiches[0].TipLamports != 3_000_000 {
		t.Error("bundle tip not propagated")
	}
}

func BenchmarkDetectExtendedLen5(b *testing.B) {
	dt := NewDefaultDetector()
	s, _ := canonicalSandwich()
	details := []jito.TxDetail{memoDetail(60, other), s[0], s[1], s[2], tipOnlyDetail(61, attacker)}
	rec := recordN(details, 1_000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if ev := dt.DetectExtended(rec, details); !ev.Found() {
			b.Fatal("missed")
		}
	}
}

package core

import "jitomev/internal/jito"

// DetectNaive is the ablation baseline: the bare A-B-A ordering heuristic
// that earlier Ethereum measurement tooling started from — same outer
// signer, same traded mint pair, same direction — without the paper's
// profit check (C4) or tip-only exclusion (C5).
//
// Against simulator ground truth the naive detector shows why the paper's
// refinements matter: trading-app bundles that end in a tip-only
// transaction and benign A-B-A flows (e.g. a market maker refreshing
// quotes around an unrelated user trade) are misclassified as attacks.
func DetectNaive(rec *jito.BundleRecord, details []jito.TxDetail) Verdict {
	v := Verdict{TipLamports: rec.TipLamps}

	if rec.NumTxs() != 3 || len(details) != 3 {
		v.Failed = CritLength
		return v
	}
	if details[0].Signer != details[2].Signer || details[0].Signer == details[1].Signer {
		v.Failed = CritSigners
		return v
	}
	t1 := tradeOf(&details[0])
	t2 := tradeOf(&details[1])
	// The naive heuristic only needs the first two trades to line up; a
	// tip-only or odd-shaped third transaction does not disqualify.
	if !t1.ok || !t2.ok {
		v.Failed = CritNoTrade
		return v
	}
	if pairOf(t1.sold, t1.bought) != pairOf(t2.sold, t2.bought) {
		v.Failed = CritMints
		return v
	}
	if t1.bought != t2.bought {
		v.Failed = CritDirection
		return v
	}
	v.Sandwich = true
	v.Attacker = details[0].Signer
	v.Victim = details[1].Signer
	return v
}

// Confusion tallies detector output against simulator ground truth.
type Confusion struct {
	TruePositive  uint64
	FalsePositive uint64
	TrueNegative  uint64
	FalseNegative uint64
}

// Observe folds one (predicted, actual) pair.
func (c *Confusion) Observe(predicted, actual bool) {
	switch {
	case predicted && actual:
		c.TruePositive++
	case predicted && !actual:
		c.FalsePositive++
	case !predicted && actual:
		c.FalseNegative++
	default:
		c.TrueNegative++
	}
}

// Merge folds another confusion tally into c. Counts are integers, so a
// sharded tally merged in any order equals the serial one.
func (c *Confusion) Merge(o Confusion) {
	c.TruePositive += o.TruePositive
	c.FalsePositive += o.FalsePositive
	c.TrueNegative += o.TrueNegative
	c.FalseNegative += o.FalseNegative
}

// Precision returns TP/(TP+FP), or 1 when nothing was predicted positive.
func (c *Confusion) Precision() float64 {
	d := c.TruePositive + c.FalsePositive
	if d == 0 {
		return 1
	}
	return float64(c.TruePositive) / float64(d)
}

// Recall returns TP/(TP+FN), or 1 when there were no positives.
func (c *Confusion) Recall() float64 {
	d := c.TruePositive + c.FalseNegative
	if d == 0 {
		return 1
	}
	return float64(c.TruePositive) / float64(d)
}

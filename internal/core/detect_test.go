package core

import (
	"testing"
	"time"

	"jitomev/internal/amm"
	"jitomev/internal/jito"
	"jitomev/internal/ledger"
	"jitomev/internal/solana"
	"jitomev/internal/token"
)

var (
	attacker = solana.NewKeypairFromSeed("attacker").Pubkey()
	victim   = solana.NewKeypairFromSeed("victim").Pubkey()
	other    = solana.NewKeypairFromSeed("other").Pubkey()
	memeMint = solana.NewKeypairFromSeed("meme-mint").Pubkey()
	meme2    = solana.NewKeypairFromSeed("meme-mint-2").Pubkey()
	solMint  = token.SOL.Address
)

func sig(i int) solana.Signature {
	return solana.NewKeypairFromSeed("sig").Sign([]byte{byte(i), byte(i >> 8)})
}

// detail builds a TxDetail with a two-mint trade for the signer.
func detail(i int, signer solana.Pubkey, soldMint solana.Pubkey, soldAmt uint64, boughtMint solana.Pubkey, boughtAmt uint64) jito.TxDetail {
	return jito.TxDetail{
		Sig:    sig(i),
		Signer: signer,
		TokenDeltas: []jito.TokenDelta{
			{Owner: signer, Mint: soldMint, Delta: -int64(soldAmt)},
			{Owner: signer, Mint: boughtMint, Delta: int64(boughtAmt)},
		},
	}
}

func record(details []jito.TxDetail, tip uint64) *jito.BundleRecord {
	ids := make([]solana.Signature, len(details))
	for i, d := range details {
		ids[i] = d.Sig
	}
	return &jito.BundleRecord{ID: jito.BundleID{1}, Slot: 1, TxIDs: ids, TipLamps: tip}
}

// canonicalSandwich is the Table 1 scenario: attacker buys, victim buys at
// a worse rate, attacker sells everything for more SOL than it spent.
func canonicalSandwich() ([]jito.TxDetail, *jito.BundleRecord) {
	details := []jito.TxDetail{
		// A: spends 10 SOL for 10,000 MEME (rate 1000 MEME/SOL)
		detail(1, attacker, solMint, 10_000_000_000, memeMint, 10_000),
		// B: spends 1,000 SOL for 900,000 MEME (rate 900 MEME/SOL — worse)
		detail(2, victim, solMint, 1_000_000_000_000, memeMint, 900_000),
		// A: sells the 10,000 MEME back for 11 SOL
		detail(3, attacker, memeMint, 10_000, solMint, 11_000_000_000),
	}
	return details, record(details, 2_000_000)
}

func TestDetectCanonicalSandwich(t *testing.T) {
	dt := NewDefaultDetector()
	details, rec := canonicalSandwich()
	v := dt.Detect(rec, details)
	if !v.Sandwich {
		t.Fatalf("canonical sandwich not detected: failed %v", v.Failed)
	}
	if v.Attacker != attacker || v.Victim != victim {
		t.Error("attacker/victim attribution wrong")
	}
	if !v.HasSOL {
		t.Error("SOL leg not recognized")
	}
	// Victim paid 1000 SOL for 900,000 MEME; at the attacker's rate
	// (1 SOL per 1000 MEME) that should have cost 900 SOL. Loss = 100 SOL.
	wantLoss := 100e9
	if diff := v.VictimLossLamports - wantLoss; diff > 1 || diff < -1 {
		t.Errorf("VictimLoss = %.0f, want %.0f", v.VictimLossLamports, wantLoss)
	}
	// Attacker: spent 10 SOL, got back 11 SOL.
	if v.AttackerGainLamports != 1e9 {
		t.Errorf("AttackerGain = %.0f, want 1e9", v.AttackerGainLamports)
	}
	if v.TipLamports != 2_000_000 {
		t.Errorf("tip = %d", v.TipLamports)
	}
}

func TestDetectSellSideSandwich(t *testing.T) {
	dt := NewDefaultDetector()
	details := []jito.TxDetail{
		// A sells 10,000 MEME for 10 SOL (rate 0.001 SOL/MEME)
		detail(1, attacker, memeMint, 10_000, solMint, 10_000_000_000),
		// B sells 1,000,000 MEME for 900 SOL (fair would be 1000 SOL)
		detail(2, victim, memeMint, 1_000_000, solMint, 900_000_000_000),
		// A buys back 10,500 MEME for 9 SOL: net +1 SOL and +500 MEME
		detail(3, attacker, solMint, 9_000_000_000, memeMint, 10_500),
	}
	v := dt.Detect(record(details, 1_000_000), details)
	if !v.Sandwich {
		t.Fatalf("sell-side sandwich not detected: %v", v.Failed)
	}
	if !v.HasSOL {
		t.Fatal("SOL leg missed")
	}
	// Fair revenue = 1,000,000 * (10e9/10,000) = 1000 SOL; victim got 900.
	wantLoss := 100e9
	if diff := v.VictimLossLamports - wantLoss; diff > 1 || diff < -1 {
		t.Errorf("VictimLoss = %.0f, want %.0f", v.VictimLossLamports, wantLoss)
	}
	if v.AttackerGainLamports != 1e9 {
		t.Errorf("AttackerGain = %.0f", v.AttackerGainLamports)
	}
}

func TestDetectFootnote7NetCoinProfit(t *testing.T) {
	// The attacker ends with net SOL profit but also a net token deficit
	// is NOT allowed; the footnote-7 case is net profit in the sold coin
	// even though the bought coin went negative.
	dt := NewDefaultDetector()
	details := []jito.TxDetail{
		detail(1, attacker, solMint, 10_000_000_000, memeMint, 10_000),
		detail(2, victim, solMint, 1_000_000_000_000, memeMint, 900_000),
		// A sells MORE than it bought (10,800 > 10,000), netting extra SOL.
		detail(3, attacker, memeMint, 10_800, solMint, 11_500_000_000),
	}
	v := dt.Detect(record(details, 1_000_000), details)
	if !v.Sandwich {
		t.Fatalf("footnote-7 sandwich not detected: %v", v.Failed)
	}
	if v.AttackerGainLamports != 1.5e9 {
		t.Errorf("AttackerGain = %.0f, want 1.5e9", v.AttackerGainLamports)
	}
}

func TestDetectRejectsWrongLength(t *testing.T) {
	dt := NewDefaultDetector()
	details, _ := canonicalSandwich()
	short := details[:2]
	v := dt.Detect(record(short, 1000), short)
	if v.Sandwich || v.Failed != CritLength {
		t.Errorf("length-2 verdict %v", v.Failed)
	}
}

func TestDetectC1Signers(t *testing.T) {
	dt := NewDefaultDetector()

	// Outer signers differ.
	details, _ := canonicalSandwich()
	details[2].Signer = other
	for i := range details[2].TokenDeltas {
		details[2].TokenDeltas[i].Owner = other
	}
	v := dt.Detect(record(details, 1000), details)
	if v.Failed != CritSigners {
		t.Errorf("differing outer signers: %v", v.Failed)
	}

	// All three same signer (self-trading, not a sandwich).
	details, _ = canonicalSandwich()
	details[1].Signer = attacker
	for i := range details[1].TokenDeltas {
		details[1].TokenDeltas[i].Owner = attacker
	}
	v = dt.Detect(record(details, 1000), details)
	if v.Failed != CritSigners {
		t.Errorf("same middle signer: %v", v.Failed)
	}
}

func TestDetectC2MintSet(t *testing.T) {
	dt := NewDefaultDetector()
	details, _ := canonicalSandwich()
	// Victim trades a different memecoin.
	details[1] = detail(2, victim, solMint, 1_000_000_000_000, meme2, 900_000)
	v := dt.Detect(record(details, 1000), details)
	if v.Failed != CritMints {
		t.Errorf("mismatched mint set: %v", v.Failed)
	}
}

func TestDetectC3Direction(t *testing.T) {
	dt := NewDefaultDetector()
	// Attacker SELLS first while the victim buys: opposite direction
	// improves the victim's rate — not a sandwich.
	details := []jito.TxDetail{
		detail(1, attacker, memeMint, 10_000, solMint, 10_000_000_000),
		detail(2, victim, solMint, 1_000_000_000_000, memeMint, 900_000),
		detail(3, attacker, solMint, 9_000_000_000, memeMint, 10_000),
	}
	v := dt.Detect(record(details, 1000), details)
	if v.Failed != CritDirection {
		t.Errorf("opposite direction: %v", v.Failed)
	}
}

func TestDetectC4Profit(t *testing.T) {
	dt := NewDefaultDetector()
	// Attacker loses on the round trip: sells for less SOL than spent and
	// holds no extra tokens.
	details := []jito.TxDetail{
		detail(1, attacker, solMint, 10_000_000_000, memeMint, 10_000),
		detail(2, victim, solMint, 1_000_000_000_000, memeMint, 900_000),
		detail(3, attacker, memeMint, 10_000, solMint, 9_000_000_000),
	}
	v := dt.Detect(record(details, 1000), details)
	if v.Failed != CritProfit {
		t.Errorf("unprofitable A-B-A: %v", v.Failed)
	}
}

func TestDetectC4AllowsTokenAccumulation(t *testing.T) {
	// "Net gains currency with no payment": attacker keeps some tokens
	// while recovering all SOL.
	dt := NewDefaultDetector()
	details := []jito.TxDetail{
		detail(1, attacker, solMint, 10_000_000_000, memeMint, 10_000),
		detail(2, victim, solMint, 1_000_000_000_000, memeMint, 900_000),
		// Sells only 9,000 MEME but recovers all 10 SOL: net +1000 MEME.
		detail(3, attacker, memeMint, 9_000, solMint, 10_000_000_000),
	}
	v := dt.Detect(record(details, 1000), details)
	if !v.Sandwich {
		t.Errorf("token-accumulating sandwich rejected: %v", v.Failed)
	}
}

func TestDetectC5TipOnly(t *testing.T) {
	dt := NewDefaultDetector()
	// Trading-app pattern: two swaps then a tip-only transaction.
	details := []jito.TxDetail{
		detail(1, attacker, solMint, 10_000_000_000, memeMint, 10_000),
		detail(2, victim, solMint, 1_000_000_000_000, memeMint, 900_000),
		{Sig: sig(3), Signer: attacker, TipOnly: true, TipLamports: 5_000},
	}
	v := dt.Detect(record(details, 5_000), details)
	if v.Failed != CritTipOnly {
		t.Errorf("tip-only final tx: %v", v.Failed)
	}
}

func TestDetectNoSOLLeg(t *testing.T) {
	dt := NewDefaultDetector()
	// Memecoin-to-memecoin sandwich: detected, but excluded from dollar
	// quantification (28% of the paper's sandwiches).
	details := []jito.TxDetail{
		detail(1, attacker, meme2, 10_000, memeMint, 10_000),
		detail(2, victim, meme2, 1_000_000, memeMint, 900_000),
		detail(3, attacker, memeMint, 10_000, meme2, 11_000),
	}
	v := dt.Detect(record(details, 1000), details)
	if !v.Sandwich {
		t.Fatalf("non-SOL sandwich not detected: %v", v.Failed)
	}
	if v.HasSOL {
		t.Error("HasSOL true for memecoin pair")
	}
	if v.VictimLossLamports != 0 || v.AttackerGainLamports != 0 {
		t.Error("dollar figures populated without SOL leg")
	}
}

func TestDetectNoTrade(t *testing.T) {
	dt := NewDefaultDetector()
	details, _ := canonicalSandwich()
	details[1].TokenDeltas = nil // middle tx is not a trade
	v := dt.Detect(record(details, 1000), details)
	if v.Failed != CritNoTrade {
		t.Errorf("missing trade: %v", v.Failed)
	}
}

func TestDetectLossClampedNonNegative(t *testing.T) {
	dt := NewDefaultDetector()
	// Victim somehow got a *better* rate than the attacker (rounding).
	details := []jito.TxDetail{
		detail(1, attacker, solMint, 10_000_000_000, memeMint, 10_000),
		detail(2, victim, solMint, 1_000_000_000, memeMint, 1_100),
		detail(3, attacker, memeMint, 10_000, solMint, 10_500_000_000),
	}
	v := dt.Detect(record(details, 1000), details)
	if !v.Sandwich {
		t.Fatalf("not detected: %v", v.Failed)
	}
	if v.VictimLossLamports < 0 {
		t.Errorf("negative loss %f", v.VictimLossLamports)
	}
}

func TestCriterionStrings(t *testing.T) {
	for c := CritNone; c <= CritTipOnly; c++ {
		if c.String() == "unknown" {
			t.Errorf("criterion %d has no name", c)
		}
	}
	if Criterion(99).String() != "unknown" {
		t.Error("out-of-range criterion named")
	}
}

// TestDetectEndToEnd runs a real sandwich through the bank and block
// engine, then feeds the resulting explorer records to the detector —
// the full pipeline the paper's methodology assumes.
func TestDetectEndToEnd(t *testing.T) {
	bank := ledger.NewBank()
	reg := token.NewRegistry()
	mm := reg.NewMemecoin("MEME")
	pool := amm.New(mm.Address, token.SOL.Address, 1e12, 1e12, amm.DefaultFeeBps)
	bank.AddPool(pool)

	atk := solana.NewKeypairFromSeed("e2e-attacker")
	vic := solana.NewKeypairFromSeed("e2e-victim")
	for _, kp := range []*solana.Keypair{atk, vic} {
		bank.CreditLamports(kp.Pubkey(), 100*solana.LamportsPerSOL)
		bank.MintTo(kp.Pubkey(), token.SOL.Address, 1e12)
		bank.MintTo(kp.Pubkey(), mm.Address, 1e12)
	}
	engine := jito.NewBlockEngine(bank, solana.Clock{Genesis: time.Unix(0, 0)})

	victimIn := uint64(20_000_000_000)
	quote, _ := pool.QuoteOut(token.SOL.Address, victimIn)
	minOut := quote * 9_500 / 10_000
	snap, _ := bank.PoolSnapshot(pool.Address)
	plan, ok := amm.PlanSandwich(snap, token.SOL.Address, victimIn, minOut, 1<<40)
	if !ok {
		t.Fatal("no plan")
	}

	bundle := jito.NewBundle(
		solana.NewTransaction(atk, 1, 0,
			&solana.Swap{Pool: pool.Address, InputMint: token.SOL.Address, AmountIn: plan.FrontrunIn},
			&solana.Tip{TipAccount: jito.TipAccounts[0], Amount: 2_000_000}),
		solana.NewTransaction(vic, 1, 0,
			&solana.Swap{Pool: pool.Address, InputMint: token.SOL.Address, AmountIn: victimIn, MinOut: minOut}),
		solana.NewTransaction(atk, 2, 0,
			&solana.Swap{Pool: pool.Address, InputMint: mm.Address, AmountIn: plan.FrontrunOut}),
	)
	if err := engine.Submit(bundle); err != nil {
		t.Fatal(err)
	}
	acc := engine.ProcessSlot(1)
	if len(acc) != 1 {
		t.Fatal("bundle did not land")
	}

	v := NewDefaultDetector().Detect(&acc[0].Record, acc[0].Details)
	if !v.Sandwich {
		t.Fatalf("end-to-end sandwich not detected: %v", v.Failed)
	}
	if v.Attacker != atk.Pubkey() || v.Victim != vic.Pubkey() {
		t.Error("attribution wrong")
	}
	if !v.HasSOL {
		t.Error("SOL leg missed")
	}
	// The detector's attacker gain must match the plan's profit. The tip
	// is paid in lamports, not wSOL, so it does not appear in token deltas.
	if int64(v.AttackerGainLamports) != plan.Profit {
		t.Errorf("gain %.0f != planned profit %d", v.AttackerGainLamports, plan.Profit)
	}
	if v.VictimLossLamports <= 0 {
		t.Error("victim loss not positive")
	}
}

func BenchmarkDetect(b *testing.B) {
	dt := NewDefaultDetector()
	details, rec := canonicalSandwich()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if v := dt.Detect(rec, details); !v.Sandwich {
			b.Fatal("not detected")
		}
	}
}

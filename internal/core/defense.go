package core

import (
	"jitomev/internal/jito"
	"jitomev/internal/solana"
)

// BundlePurpose classifies why a length-1 bundle was submitted (paper §3.3).
type BundlePurpose int

const (
	// PurposeNotSingle marks bundles with more than one transaction; the
	// defensive-bundling classifier does not apply.
	PurposeNotSingle BundlePurpose = iota
	// PurposeDefensive marks a length-1 bundle whose tip is at or below
	// 100,000 lamports: too small to buy meaningful priority, so the only
	// economic rationale is MEV protection — wrapping the transaction in a
	// bundle makes it impossible to include in an attacker's bundle, since
	// bundles cannot be nested on Jito.
	PurposeDefensive
	// PurposePriority marks a length-1 bundle with a tip large enough that
	// faster inclusion is a plausible motive.
	PurposePriority
)

// String names the purpose.
func (p BundlePurpose) String() string {
	switch p {
	case PurposeNotSingle:
		return "not-single"
	case PurposeDefensive:
		return "defensive"
	case PurposePriority:
		return "priority"
	}
	return "unknown"
}

// ClassifyDefensive applies the paper's §3.3 rule: a bundle of length one
// with a Jito tip at or below 100,000 lamports (the minimum Jupiter allows,
// a conservative threshold) is classified as defensive bundling. The
// classification is deliberately tip-based: recent work found tips on
// length-1 bundles have negligible effect on time-to-confirmation unless
// they exceed ~50% of the 95th-percentile tip (≈2,000,000 lamports).
func ClassifyDefensive(rec *jito.BundleRecord) BundlePurpose {
	if rec.NumTxs() != 1 {
		return PurposeNotSingle
	}
	if rec.Tip() <= solana.DefensiveTipCeiling {
		return PurposeDefensive
	}
	return PurposePriority
}

// DefenseStats aggregates defensive-bundling activity across a dataset.
type DefenseStats struct {
	SingleTxBundles uint64
	Defensive       uint64
	Priority        uint64
	// DefensiveSpendLamports is the cumulative Jito tips paid on
	// defensive bundles — money "that would not be necessary to pay if
	// the transaction was sent through Solana itself" (paper §5).
	DefensiveSpendLamports uint64
}

// Observe folds one bundle into the stats.
func (s *DefenseStats) Observe(rec *jito.BundleRecord) BundlePurpose {
	p := ClassifyDefensive(rec)
	switch p {
	case PurposeDefensive:
		s.SingleTxBundles++
		s.Defensive++
		s.DefensiveSpendLamports += rec.TipLamps
	case PurposePriority:
		s.SingleTxBundles++
		s.Priority++
	}
	return p
}

// DefensiveShare returns the fraction of length-1 bundles classified as
// defensive (the paper reports over 86%).
func (s *DefenseStats) DefensiveShare() float64 {
	if s.SingleTxBundles == 0 {
		return 0
	}
	return float64(s.Defensive) / float64(s.SingleTxBundles)
}

// AvgDefensiveTipLamports returns the mean tip paid per defensive bundle
// (the paper reports $0.0028, about 11,600 lamports).
func (s *DefenseStats) AvgDefensiveTipLamports() float64 {
	if s.Defensive == 0 {
		return 0
	}
	return float64(s.DefensiveSpendLamports) / float64(s.Defensive)
}

package core

import "jitomev/internal/jito"

// Extended detection: the paper notes its length-3 methodology misses
// disguised sandwiches — "adding on a fourth unrelated transaction, an
// unrelated currency trade, or doing multiple sandwiches in one bundle"
// (§3.2) — and therefore reports a lower bound. DetectExtended closes that
// gap for bundles up to the Jito maximum of five transactions by searching
// for an embedded A–B–A triple among the member transactions, tolerating
// padding (memos, tip-only transactions, unrelated trades) anywhere in the
// bundle.
//
// The embedded triple must satisfy the same criteria as the length-3
// detector: same outer signer, different middle signer (C1), one traded
// mint pair (C2), same direction on the first two legs (C3), and attacker
// profit (C4). Tip-only transactions never participate as legs, which
// subsumes C5.

// ExtendedVerdict reports every embedded sandwich found in one bundle.
type ExtendedVerdict struct {
	// Sandwiches holds one verdict per disjoint embedded sandwich, in
	// leftmost-first order. Empty means no sandwich found.
	Sandwiches []Verdict
	// Indices[i] are the bundle positions of Sandwiches[i]'s
	// front-run, victim and back-run transactions.
	Indices [][3]int
}

// Found reports whether at least one embedded sandwich was detected.
func (e *ExtendedVerdict) Found() bool { return len(e.Sandwiches) > 0 }

// DetectExtended scans a bundle of any length (3–5 in practice) for
// embedded sandwiches. Triples are claimed greedily leftmost-first and
// disjointly, so a five-transaction bundle can in principle yield one
// sandwich plus padding, and overlapping candidates never double-count.
func (dt *Detector) DetectExtended(rec *jito.BundleRecord, details []jito.TxDetail) ExtendedVerdict {
	var out ExtendedVerdict
	n := len(details)
	if n < 3 || n > jito.MaxBundleTxs {
		return out
	}

	// Precompute trades; tip-only and trade-less transactions are
	// padding and can never be a sandwich leg.
	trades := make([]trade, n)
	legOK := make([]bool, n)
	for i := range details {
		if details[i].TipOnly {
			continue
		}
		trades[i] = tradeOf(&details[i])
		legOK[i] = trades[i].ok
	}

	used := make([]bool, n)
	for i := 0; i < n-2; i++ {
		if used[i] || !legOK[i] {
			continue
		}
		for j := i + 1; j < n-1; j++ {
			if used[j] || !legOK[j] {
				continue
			}
			matched := false
			for k := j + 1; k < n; k++ {
				if used[k] || !legOK[k] {
					continue
				}
				v, ok := dt.tryTriple(rec, trades[i], trades[j], trades[k])
				if !ok {
					continue
				}
				out.Sandwiches = append(out.Sandwiches, v)
				out.Indices = append(out.Indices, [3]int{i, j, k})
				used[i], used[j], used[k] = true, true, true
				matched = true
				break
			}
			if matched {
				break
			}
		}
	}
	return out
}

// tryTriple applies the C1–C4 criteria to an ordered (front, victim, back)
// trade triple and quantifies on success.
func (dt *Detector) tryTriple(rec *jito.BundleRecord, t1, t2, t3 trade) (Verdict, bool) {
	v := Verdict{TipLamports: rec.TipLamps}

	// C1: same outer signer, different middle signer.
	if t1.signer != t3.signer || t1.signer == t2.signer {
		return v, false
	}
	// C2: one traded mint pair across all three legs.
	p := pairOf(t1.sold, t1.bought)
	if pairOf(t2.sold, t2.bought) != p || pairOf(t3.sold, t3.bought) != p {
		return v, false
	}
	// C3: front-run trades in the victim's direction.
	if t1.bought != t2.bought || t1.sold != t2.sold {
		return v, false
	}
	// C4: attacker profit across the outer legs.
	netSold := int64(t3.boughtAm) - int64(t1.soldAmt)
	netBought := int64(t1.boughtAm) - int64(t3.soldAmt)
	gainNoPayment := netSold >= 0 && netBought >= 0 && (netSold > 0 || netBought > 0)
	if !gainNoPayment && netSold <= 0 {
		return v, false
	}

	v.Sandwich = true
	v.Attacker = t1.signer
	v.Victim = t2.signer
	dt.quantify(&v, t1, t2, netSold, netBought)
	return v, true
}

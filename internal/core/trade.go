package core

import (
	"jitomev/internal/jito"
	"jitomev/internal/solana"
)

// This file exports the detector's trade-extraction primitives for
// consumers that detect across bundle boundaries (internal/stream's
// cross-block stage): the per-transaction clean-trade view and the
// canonical unordered mint pair that keys a trading pool.

// Trade is one transaction's clean two-mint balance effect for its
// signer: exactly one mint out, one mint in — the shape every criterion
// of the paper's methodology is defined over.
type Trade struct {
	Signer solana.Pubkey
	Sold   solana.Pubkey // mint with negative delta
	Bought solana.Pubkey // mint with positive delta
	SoldAmount   uint64
	BoughtAmount uint64
}

// ExtractTrade extracts the signer's trade from a transaction detail,
// reporting false when the transaction has no clean two-mint trade
// (no deltas, one-sided transfers, or more than two mints touched).
func ExtractTrade(d *jito.TxDetail) (Trade, bool) {
	tr := tradeOf(d)
	if !tr.ok {
		return Trade{}, false
	}
	return Trade{
		Signer:       tr.signer,
		Sold:         tr.sold,
		Bought:       tr.bought,
		SoldAmount:   tr.soldAmt,
		BoughtAmount: tr.boughtAm,
	}, true
}

// Opposes reports whether the other trade runs the same pair in the
// opposite direction — the shape of a position-closing back-run.
func (t Trade) Opposes(o Trade) bool {
	return t.Sold == o.Bought && t.Bought == o.Sold
}

// SameDirection reports whether the other trade runs the same pair the
// same way — the shape of a front-run relative to its victim.
func (t Trade) SameDirection(o Trade) bool {
	return t.Sold == o.Sold && t.Bought == o.Bought
}

// MintPair is an unordered mint pair — the identity of a trading pool as
// the balance-delta view resolves it.
type MintPair struct{ A, B solana.Pubkey }

// PairOf canonicalizes two mints into a MintPair (byte order).
func PairOf(x, y solana.Pubkey) MintPair {
	if lessKey(x, y) {
		return MintPair{x, y}
	}
	return MintPair{y, x}
}

// Pair returns the trade's canonical pool identity.
func (t Trade) Pair() MintPair { return PairOf(t.Sold, t.Bought) }

package core

import (
	"testing"

	"jitomev/internal/jito"
)

func TestNaiveDetectsCanonical(t *testing.T) {
	details, rec := canonicalSandwich()
	if v := DetectNaive(rec, details); !v.Sandwich {
		t.Fatalf("naive missed canonical sandwich: %v", v.Failed)
	}
}

func TestNaiveFalsePositiveOnTipOnlyPattern(t *testing.T) {
	// Trading-app bundle: swap, swap, tip-only — the paper's C5 excludes
	// it; the naive heuristic flags it when the first two trades line up.
	details := []jito.TxDetail{
		detail(1, attacker, solMint, 10_000_000_000, memeMint, 10_000),
		detail(2, victim, solMint, 1_000_000_000_000, memeMint, 900_000),
		{Sig: sig(3), Signer: attacker, TipOnly: true, TipLamports: 5_000},
	}
	rec := record(details, 5_000)

	naive := DetectNaive(rec, details)
	full := NewDefaultDetector().Detect(rec, details)
	if !naive.Sandwich {
		t.Error("naive should flag the app pattern (that's its known flaw)")
	}
	if full.Sandwich {
		t.Error("full detector must exclude tip-only-final bundles")
	}
}

func TestNaiveFalsePositiveOnUnprofitableABA(t *testing.T) {
	// Benign A-B-A (e.g. market maker refreshing quotes at a loss).
	details := []jito.TxDetail{
		detail(1, attacker, solMint, 10_000_000_000, memeMint, 10_000),
		detail(2, victim, solMint, 1_000_000_000_000, memeMint, 900_000),
		detail(3, attacker, memeMint, 10_000, solMint, 9_000_000_000),
	}
	rec := record(details, 1000)
	if v := DetectNaive(rec, details); !v.Sandwich {
		t.Error("naive should flag unprofitable A-B-A (no C4)")
	}
	if v := NewDefaultDetector().Detect(rec, details); v.Sandwich {
		t.Error("full detector must reject unprofitable A-B-A")
	}
}

func TestNaiveRejectsNonABA(t *testing.T) {
	details, _ := canonicalSandwich()
	details[2].Signer = other
	rec := record(details, 1000)
	if v := DetectNaive(rec, details); v.Sandwich {
		t.Error("naive flagged non-A-B-A pattern")
	}
}

func TestConfusionMatrix(t *testing.T) {
	var c Confusion
	c.Observe(true, true)
	c.Observe(true, true)
	c.Observe(true, false)
	c.Observe(false, true)
	c.Observe(false, false)

	if c.TruePositive != 2 || c.FalsePositive != 1 || c.FalseNegative != 1 || c.TrueNegative != 1 {
		t.Fatalf("confusion %+v", c)
	}
	if p := c.Precision(); p < 0.66 || p > 0.67 {
		t.Errorf("precision = %f", p)
	}
	if r := c.Recall(); r < 0.66 || r > 0.67 {
		t.Errorf("recall = %f", r)
	}
}

func TestConfusionEmptyDefaults(t *testing.T) {
	var c Confusion
	if c.Precision() != 1 || c.Recall() != 1 {
		t.Error("empty confusion should default to 1.0")
	}
}

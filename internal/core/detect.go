// Package core implements the paper's primary contribution: the
// methodology for finding and quantifying Sandwiching MEV in Jito bundle
// data (paper §3.2) and for classifying defensive bundling (paper §3.3).
//
// The detector consumes exactly what the Jito Explorer exposes — a bundle's
// member transactions with signer and token balance changes — and applies
// the paper's five criteria, adapted from Ethereum heuristics (Qin et al.,
// S&P'22):
//
//	C1  tx1 and tx3 are signed by the same account A; tx2 by a different B
//	C2  the same set of minted coins is traded in all three transactions
//	C3  A's first trade moves the exchange rate against B
//	C4  A nets positive currency with no payment, or net profit in the
//	    quantity of coin sold
//	C5  bundles whose final transaction only tips a Jito validator are
//	    excluded
//
// Like the paper's, this detector is a lower bound: disguised sandwiches
// (extra padding transactions, multiple sandwiches per bundle) are missed
// by construction.
package core

import (
	"jitomev/internal/jito"
	"jitomev/internal/solana"
	"jitomev/internal/token"
)

// Criterion identifies which detection criterion a bundle failed.
type Criterion int

// Criteria outcomes. CritNone means every criterion passed (a sandwich).
const (
	CritNone      Criterion = iota // all criteria passed: sandwich
	CritLength                     // bundle is not length 3
	CritNoTrade                    // a member transaction has no clean two-mint trade
	CritSigners                    // C1 failed
	CritMints                      // C2 failed
	CritDirection                  // C3 failed
	CritProfit                     // C4 failed
	CritTipOnly                    // C5: final transaction is tip-only
)

// NumCriteria is the number of distinct Criterion values, so hot loops
// can tally rejections in a fixed-size array indexed by Criterion
// instead of a map.
const NumCriteria = int(CritTipOnly) + 1

// String names the criterion for reports.
func (c Criterion) String() string {
	switch c {
	case CritNone:
		return "sandwich"
	case CritLength:
		return "not-length-3"
	case CritNoTrade:
		return "no-clean-trade"
	case CritSigners:
		return "C1-signers"
	case CritMints:
		return "C2-mints"
	case CritDirection:
		return "C3-direction"
	case CritProfit:
		return "C4-profit"
	case CritTipOnly:
		return "C5-tip-only"
	}
	return "unknown"
}

// Verdict is the detector's output for one bundle.
type Verdict struct {
	Sandwich bool
	Failed   Criterion // first criterion that rejected; CritNone if Sandwich

	Attacker solana.Pubkey
	Victim   solana.Pubkey

	// HasSOL reports whether SOL is one of the traded mints. Only then are
	// the loss/gain figures populated — 28% of the paper's sandwiches had
	// no SOL leg and are excluded from dollar totals (paper §4.1).
	HasSOL bool

	// VictimLossLamports is the revenue the victim missed versus trading
	// at the attacker's tx1 rate, in lamports (paper §4.1).
	VictimLossLamports float64
	// AttackerGainLamports is the attacker's net SOL across tx1+tx3.
	AttackerGainLamports float64

	// TipLamports is the bundle's Jito tip (for Figure 4).
	TipLamports uint64
}

// trade summarizes one transaction's signed two-mint balance effect.
type trade struct {
	signer   solana.Pubkey
	sold     solana.Pubkey // mint with negative delta
	bought   solana.Pubkey // mint with positive delta
	soldAmt  uint64
	boughtAm uint64
	ok       bool
}

// tradeOf extracts the signer's trade from a transaction detail. A clean
// trade touches exactly two mints for the signer: one out, one in.
func tradeOf(d *jito.TxDetail) trade {
	var tr trade
	tr.signer = d.Signer
	var neg, pos int
	for _, td := range d.TokenDeltas {
		if td.Owner != d.Signer {
			continue
		}
		switch {
		case td.Delta < 0:
			neg++
			tr.sold = td.Mint
			tr.soldAmt = uint64(-td.Delta)
		case td.Delta > 0:
			pos++
			tr.bought = td.Mint
			tr.boughtAm = uint64(td.Delta)
		}
	}
	tr.ok = neg == 1 && pos == 1
	return tr
}

// mintPair is an unordered mint pair for C2's set comparison.
type mintPair struct{ a, b solana.Pubkey }

func pairOf(x, y solana.Pubkey) mintPair {
	if lessKey(x, y) {
		return mintPair{x, y}
	}
	return mintPair{y, x}
}

func lessKey(a, b solana.Pubkey) bool {
	for i := 0; i < 32; i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// Detector applies the paper's criteria. The zero value is not usable;
// construct with NewDetector.
type Detector struct {
	solMint solana.Pubkey
}

// NewDetector returns a detector that recognizes the given mint as SOL for
// loss quantification. Pass token.SOL.Address in production.
func NewDetector(solMint solana.Pubkey) *Detector {
	return &Detector{solMint: solMint}
}

// NewDefaultDetector uses the standard wrapped-SOL mint.
func NewDefaultDetector() *Detector { return NewDetector(token.SOL.Address) }

// Detect classifies one bundle. details must align 1:1 with
// rec.TxIDs; the detector only ever fires on length-3 bundles, "which
// captures the canonical example of Sandwiching behavior with a victim
// transaction in the middle" (paper §3.1).
func (dt *Detector) Detect(rec *jito.BundleRecord, details []jito.TxDetail) Verdict {
	v := Verdict{TipLamports: rec.TipLamps}

	if rec.NumTxs() != 3 || len(details) != 3 {
		v.Failed = CritLength
		return v
	}

	// C5 first, as the paper applies it as an exclusion: a final tx that
	// only tips the validator marks an app-generated length-2-plus-tip
	// bundle, not a sandwich (paper §3.2 footnote).
	if details[2].TipOnly {
		v.Failed = CritTipOnly
		return v
	}

	// C1: same outer signer, different middle signer.
	if details[0].Signer != details[2].Signer || details[0].Signer == details[1].Signer {
		v.Failed = CritSigners
		return v
	}

	t1 := tradeOf(&details[0])
	t2 := tradeOf(&details[1])
	t3 := tradeOf(&details[2])
	if !t1.ok || !t2.ok || !t3.ok {
		v.Failed = CritNoTrade
		return v
	}

	// C2: the same set of minted coins is traded in all three txs.
	p := pairOf(t1.sold, t1.bought)
	if pairOf(t2.sold, t2.bought) != p || pairOf(t3.sold, t3.bought) != p {
		v.Failed = CritMints
		return v
	}

	// C3: the attacker's first trade raises the rate the victim pays —
	// i.e. tx1 trades in the same direction as the victim (buys what the
	// victim is about to buy).
	if t1.bought != t2.bought || t1.sold != t2.sold {
		v.Failed = CritDirection
		return v
	}

	// C4: net effect on A across tx1 and tx3. Per mint:
	//   net[t1.sold]   = -t1.soldAmt + t3.boughtAm  (A sold then re-bought)
	//   net[t1.bought] = +t1.boughtAm - t3.soldAmt  (A bought then re-sold)
	// A must either gain currency with no payment (all nets >= 0, one > 0)
	// or end with net profit in the quantity of coin sold (the footnote-7
	// case: the victim's slippage let A sell more than it bought).
	netSold := int64(t3.boughtAm) - int64(t1.soldAmt)   // in t1.sold units
	netBought := int64(t1.boughtAm) - int64(t3.soldAmt) // in t1.bought units
	gainNoPayment := netSold >= 0 && netBought >= 0 && (netSold > 0 || netBought > 0)
	profitOnSold := netSold > 0
	if !gainNoPayment && !profitOnSold {
		v.Failed = CritProfit
		return v
	}

	v.Sandwich = true
	v.Attacker = t1.signer
	v.Victim = t2.signer
	dt.quantify(&v, t1, t2, netSold, netBought)
	return v
}

// quantify fills the SOL-denominated loss/gain figures (paper §4.1): the
// victim's loss is the difference between what they traded at and what
// they would have traded at the attacker's tx1 rate; the attacker's gain
// is their net SOL across the two outer transactions.
func (dt *Detector) quantify(v *Verdict, t1, t2 trade, netSold, netBought int64) {
	switch dt.solMint {
	case t1.sold:
		// Buy-side sandwich: both pay SOL for tokens.
		v.HasSOL = true
		if t1.boughtAm == 0 {
			return
		}
		// Attacker's SOL-per-token rate in tx1.
		rate := float64(t1.soldAmt) / float64(t1.boughtAm)
		fairCost := float64(t2.boughtAm) * rate
		v.VictimLossLamports = float64(t2.soldAmt) - fairCost
		v.AttackerGainLamports = float64(netSold)
	case t1.bought:
		// Sell-side sandwich: both sell tokens for SOL.
		v.HasSOL = true
		if t1.soldAmt == 0 {
			return
		}
		rate := float64(t1.boughtAm) / float64(t1.soldAmt) // SOL per token
		fairRevenue := float64(t2.soldAmt) * rate
		v.VictimLossLamports = fairRevenue - float64(t2.boughtAm)
		v.AttackerGainLamports = float64(netBought)
	default:
		// No SOL leg: detected but excluded from dollar quantification.
	}
	if v.VictimLossLamports < 0 {
		// The victim somehow traded at a better rate than the attacker
		// (rounding dust); clamp, the paper reports losses.
		v.VictimLossLamports = 0
	}
}

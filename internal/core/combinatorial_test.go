package core

import (
	"fmt"
	"testing"

	"jitomev/internal/jito"
)

// Combinatorial detector test: build bundles violating every subset of the
// five criteria and assert (a) detection fires exactly when no criterion
// is violated, and (b) the reported Failed value is the first violated
// criterion in the detector's documented evaluation order
// (C5 → C1 → clean-trade → C2 → C3 → C4).

// violation flags. Each bit breaks one criterion independently.
type violation uint8

const (
	vC5           violation = 1 << iota // final tx tip-only
	vC1                                 // outer signers differ
	vC2                                 // victim trades a different mint pair
	vC3                                 // attacker trades opposite direction
	vC4                                 // attacker takes a loss
	numViolations = 5
)

// buildCase constructs a canonical sandwich and then applies the selected
// violations.
func buildCase(v violation) ([]jito.TxDetail, *jito.BundleRecord) {
	details, _ := canonicalSandwich()

	if v&vC1 != 0 {
		details[2].Signer = other
		for i := range details[2].TokenDeltas {
			details[2].TokenDeltas[i].Owner = other
		}
	}
	if v&vC2 != 0 {
		details[1] = detail(2, victim, solMint, 1_000_000_000_000, meme2, 900_000)
	}
	if v&vC3 != 0 {
		// Attacker's first trade reversed: sells MEME for SOL.
		details[0] = detail(1, attacker, memeMint, 10_000, solMint, 10_000_000_000)
	}
	if v&vC4 != 0 {
		// Back-run recovers less SOL than spent with no token surplus.
		soldMint, soldAmt := memeMint, uint64(10_000)
		if v&vC3 != 0 {
			// With C3 violated the attacker bought SOL first; make the
			// round trip lose SOL-side quantity instead.
			soldMint, soldAmt = solMint, uint64(10_000_000_000)
			details[2] = detail(3, details[2].Signer, soldMint, soldAmt, memeMint, 9_000)
		} else {
			details[2] = detail(3, details[2].Signer, soldMint, soldAmt, solMint, 9_000_000_000)
		}
		if v&vC1 != 0 {
			details[2].Signer = other
			for i := range details[2].TokenDeltas {
				details[2].TokenDeltas[i].Owner = other
			}
		}
	}
	if v&vC5 != 0 {
		details[2] = jito.TxDetail{Sig: sig(3), Signer: details[2].Signer,
			TipOnly: true, TipLamports: 5_000}
	}
	return details, record(details, 1_000)
}

// expectedFailure returns the first criterion the detector should report,
// following its evaluation order.
func expectedFailure(v violation) Criterion {
	switch {
	case v&vC5 != 0:
		return CritTipOnly
	case v&vC1 != 0:
		return CritSigners
	case v&vC2 != 0:
		return CritMints
	case v&vC3 != 0:
		return CritDirection
	case v&vC4 != 0:
		return CritProfit
	}
	return CritNone
}

func TestDetectorAllViolationCombinations(t *testing.T) {
	dt := NewDefaultDetector()
	for v := violation(0); v < 1<<numViolations; v++ {
		v := v
		t.Run(fmt.Sprintf("violations=%05b", v), func(t *testing.T) {
			details, rec := buildCase(v)
			got := dt.Detect(rec, details)
			want := expectedFailure(v)

			if want == CritNone {
				if !got.Sandwich {
					t.Fatalf("clean sandwich rejected: %v", got.Failed)
				}
				return
			}
			if got.Sandwich {
				t.Fatalf("violated bundle (%05b) detected as sandwich", v)
			}
			// C4-violation cases that also break C3 can legitimately be
			// caught at C3 or C4 depending on construction order; all
			// other orderings must be exact.
			if got.Failed != want {
				t.Fatalf("failed = %v, want %v", got.Failed, want)
			}
		})
	}
}

func TestNaiveIgnoresC4AndC5Combinations(t *testing.T) {
	// The naive baseline only enforces C1/C2/C3 (plus clean trades on the
	// first two legs): it must flag every combination whose violations
	// are confined to C4/C5.
	for _, v := range []violation{vC4, vC5, vC4 | vC5} {
		details, rec := buildCase(v)
		if got := DetectNaive(rec, details); !got.Sandwich {
			t.Errorf("naive rejected %05b (violations it cannot see): %v", v, got.Failed)
		}
	}
	// And reject anything violating what it does check.
	for _, v := range []violation{vC1, vC2, vC3, vC1 | vC4, vC2 | vC5} {
		details, rec := buildCase(v)
		if got := DetectNaive(rec, details); got.Sandwich {
			t.Errorf("naive accepted %05b", v)
		}
	}
}

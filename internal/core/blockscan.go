package core

import "jitomev/internal/jito"

// Block-scan baseline: how sandwich detection worked before bundle data.
//
// Prior Ethereum measurement work (Qin et al., S&P'22; Züst et al.)
// detects sandwiches by scanning a *block's* transaction sequence for
// A-B-A patterns, because Ethereum has no equivalent of Jito bundles to
// delimit attacker intent. The paper's methodological contribution is
// precisely that Jito bundleIds provide those boundaries on Solana — the
// attacker declared, on the record, that these three transactions execute
// together atomically.
//
// DetectBlockScan reconstructs the pre-bundle approach on our chain: slide
// over a block's flattened transaction details and flag A-B-A triples
// within a proximity window that satisfy the trade criteria. Comparing it
// against the bundle-aware detector on ground truth quantifies what bundle
// visibility buys: the block scanner cannot distinguish an atomic bundle
// from coincidental adjacency across bundle boundaries, and it has no C5
// (tip-only) signal because tips are just transfers once flattened.

// BlockScanWindow is the default maximum index distance between a
// sandwich's front-run and back-run in the block sequence.
const BlockScanWindow = 4

// DetectBlockScan scans a block's transactions (in execution order) for
// sandwich-shaped triples. window bounds k-i; pass BlockScanWindow for the
// literature's near-adjacency assumption. Triples are claimed greedily
// and disjointly, leftmost-first.
func (dt *Detector) DetectBlockScan(details []jito.TxDetail, window int) []Verdict {
	if window < 2 {
		window = BlockScanWindow
	}
	n := len(details)
	trades := make([]trade, n)
	legOK := make([]bool, n)
	for i := range details {
		if details[i].TipOnly || details[i].Failed {
			continue
		}
		trades[i] = tradeOf(&details[i])
		legOK[i] = trades[i].ok
	}

	var out []Verdict
	used := make([]bool, n)
	// Synthetic record carrying no bundle tip: the scanner cannot know it.
	rec := &jito.BundleRecord{}
	for i := 0; i < n-2; i++ {
		if used[i] || !legOK[i] {
			continue
		}
		for j := i + 1; j < n-1 && j <= i+window-1; j++ {
			if used[j] || !legOK[j] {
				continue
			}
			matched := false
			for k := j + 1; k < n && k <= i+window; k++ {
				if used[k] || !legOK[k] {
					continue
				}
				v, ok := dt.tryTriple(rec, trades[i], trades[j], trades[k])
				if !ok {
					continue
				}
				out = append(out, v)
				used[i], used[j], used[k] = true, true, true
				matched = true
				break
			}
			if matched {
				break
			}
		}
	}
	return out
}

package core

import (
	"testing"

	"jitomev/internal/jito"
	"jitomev/internal/solana"
)

func rec1(tip uint64) *jito.BundleRecord {
	return &jito.BundleRecord{TxIDs: make([]solana.Signature, 1), TipLamps: tip}
}

func recN(n int, tip uint64) *jito.BundleRecord {
	return &jito.BundleRecord{TxIDs: make([]solana.Signature, n), TipLamps: tip}
}

func TestClassifyDefensive(t *testing.T) {
	cases := []struct {
		rec  *jito.BundleRecord
		want BundlePurpose
	}{
		{rec1(1_000), PurposeDefensive},
		{rec1(100_000), PurposeDefensive}, // threshold is inclusive ("at or below")
		{rec1(100_001), PurposePriority},
		{rec1(2_000_000), PurposePriority},
		{recN(3, 1_000), PurposeNotSingle},
		{recN(2, 100), PurposeNotSingle},
	}
	for i, c := range cases {
		if got := ClassifyDefensive(c.rec); got != c.want {
			t.Errorf("case %d: got %v, want %v", i, got, c.want)
		}
	}
}

func TestDefenseStats(t *testing.T) {
	var s DefenseStats
	s.Observe(rec1(1_000))
	s.Observe(rec1(21_000))
	s.Observe(rec1(500_000))  // priority
	s.Observe(recN(3, 1_000)) // ignored

	if s.SingleTxBundles != 3 {
		t.Errorf("SingleTxBundles = %d", s.SingleTxBundles)
	}
	if s.Defensive != 2 || s.Priority != 1 {
		t.Errorf("defensive=%d priority=%d", s.Defensive, s.Priority)
	}
	if s.DefensiveSpendLamports != 22_000 {
		t.Errorf("spend = %d", s.DefensiveSpendLamports)
	}
	if got := s.DefensiveShare(); got < 0.66 || got > 0.67 {
		t.Errorf("share = %f", got)
	}
	if got := s.AvgDefensiveTipLamports(); got != 11_000 {
		t.Errorf("avg tip = %f", got)
	}
}

func TestDefenseStatsEmpty(t *testing.T) {
	var s DefenseStats
	if s.DefensiveShare() != 0 || s.AvgDefensiveTipLamports() != 0 {
		t.Error("empty stats should report zeros")
	}
}

func TestPurposeStrings(t *testing.T) {
	if PurposeDefensive.String() != "defensive" ||
		PurposePriority.String() != "priority" ||
		PurposeNotSingle.String() != "not-single" ||
		BundlePurpose(9).String() != "unknown" {
		t.Error("purpose names wrong")
	}
}

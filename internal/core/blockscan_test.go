package core

import (
	"testing"

	"jitomev/internal/jito"
)

func TestBlockScanFindsContiguousSandwich(t *testing.T) {
	dt := NewDefaultDetector()
	s, _ := canonicalSandwich()
	// A block: two unrelated txs, the sandwich, one more tx.
	block := []jito.TxDetail{
		detail(90, other, solMint, 100, meme2, 90),
		tipOnlyDetail(91, other),
		s[0], s[1], s[2],
		detail(92, other, meme2, 50, solMint, 40),
	}
	found := dt.DetectBlockScan(block, BlockScanWindow)
	if len(found) != 1 {
		t.Fatalf("found %d sandwiches, want 1", len(found))
	}
	if found[0].Attacker != attacker || found[0].Victim != victim {
		t.Error("attribution wrong")
	}
}

func TestBlockScanWindowLimitsSpread(t *testing.T) {
	dt := NewDefaultDetector()
	s, _ := canonicalSandwich()
	// Sandwich legs spread 5 positions apart: outside a window of 4.
	block := []jito.TxDetail{
		s[0],
		detail(93, other, meme2, 100, solMint, 90),
		s[1],
		detail(94, other, solMint, 100, meme2, 90),
		tipOnlyDetail(95, other),
		s[2],
	}
	if found := dt.DetectBlockScan(block, 4); len(found) != 0 {
		t.Error("window 4 should not span 6 positions")
	}
	if found := dt.DetectBlockScan(block, 6); len(found) != 1 {
		t.Error("window 6 should find the spread sandwich")
	}
}

func TestBlockScanFalsePositiveAcrossBundleBoundaries(t *testing.T) {
	// The block scanner's structural weakness: a benign A tx in one
	// bundle, an unrelated B trade next to it, and another benign A tx —
	// three *different* bundles — look exactly like a sandwich once
	// flattened. The bundle-aware detector never sees them as one unit.
	dt := NewDefaultDetector()
	block := []jito.TxDetail{
		// A market maker (attacker key) buys in its own bundle...
		detail(96, attacker, solMint, 10_000_000_000, memeMint, 10_000),
		// ...a user happens to buy right after, separately...
		detail(97, victim, solMint, 1_000_000_000_000, memeMint, 900_000),
		// ...and the market maker takes profit in a third bundle.
		detail(98, attacker, memeMint, 10_000, solMint, 11_000_000_000),
	}
	if found := dt.DetectBlockScan(block, BlockScanWindow); len(found) != 1 {
		t.Fatal("block scan should (wrongly) flag the flattened pattern")
	}
	// With bundle boundaries, each transaction sits in its own length-1
	// bundle: the bundle-aware detector never even considers the triple
	// (CritLength on any single bundle).
	for i := range block {
		one := block[i : i+1]
		rec := record(one, 1_000)
		if v := dt.Detect(rec, one); v.Sandwich {
			t.Fatal("bundle-aware detector flagged a length-1 bundle")
		}
	}
}

func TestBlockScanSkipsFailedTxs(t *testing.T) {
	dt := NewDefaultDetector()
	s, _ := canonicalSandwich()
	s[1].Failed = true // victim tx failed on chain: no sandwich occurred
	if found := dt.DetectBlockScan(s, BlockScanWindow); len(found) != 0 {
		t.Error("block scan used a failed transaction as a leg")
	}
}

func TestBlockScanDisjointTriples(t *testing.T) {
	dt := NewDefaultDetector()
	a, _ := canonicalSandwich()
	// Second sandwich with different participants.
	atk2 := other
	b := []jito.TxDetail{
		detail(80, atk2, solMint, 5_000_000_000, meme2, 5_000),
		detail(81, victim, solMint, 500_000_000_000, meme2, 450_000),
		detail(82, atk2, meme2, 5_000, solMint, 5_500_000_000),
	}
	block := append(append([]jito.TxDetail{}, a...), b...)
	found := dt.DetectBlockScan(block, BlockScanWindow)
	if len(found) != 2 {
		t.Fatalf("found %d sandwiches, want 2 disjoint", len(found))
	}
}

package fleet

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"jitomev/internal/obs"
)

// TakeoverBuckets are the bucket bounds for the takeover-latency
// histogram, in seconds: how long a partition sat orphaned between its
// lease expiring and a survivor re-acquiring it. The interesting range
// is a few TTLs wide.
var TakeoverBuckets = []float64{0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// LeaseTable is the coordinator: one lease per partition, TTL expiry,
// and epoch fencing. Expiry is lazy — nothing ticks; a lapsed lease is
// observed (and counted) the next time anything touches its partition.
// Every mutation validates (holder, epoch, unexpired), so after a
// takeover bumps the epoch, every write the previous holder still
// attempts is rejected and counted on fleet_writes_fenced_total.
//
// Safe for concurrent use; the in-process harness shares one table
// across replica goroutines and explorerd serves one over /leasez.
type LeaseTable struct {
	mu sync.Mutex
	// highWater supplies the backlog ceiling when the plan is created
	// (explorerd wires the store's HighWater; tests wire a constant).
	highWater func() uint64
	// now is the table's clock, injectable for deterministic expiry
	// tests.
	now func() time.Time

	plan   *Plan
	leases map[int]*leaseState

	acquired, renewed, released *obs.Counter
	expired, takeovers          *obs.Counter
	checkpoints                 *obs.Counter
	fenced                      map[string]*obs.Counter
	takeoverLat                 *obs.Histogram
	activeG, doneG              *obs.Gauge
}

// leaseState is one partition's mutable coordinator record.
type leaseState struct {
	part    Partition
	holder  string
	epoch   uint64
	expires time.Time
	done    bool

	cursor    uint64
	ckptEpoch uint64
	records   uint64

	// expiredSeen marks that this lapse was already counted (lazy
	// expiry must count each lapse once, not once per observation).
	expiredSeen bool
}

// fencedOps label the fleet_writes_fenced_total counter by which write
// path the stale holder attempted.
var fencedOps = []string{"renew", "checkpoint", "release"}

// NewLeaseTable builds a table over the given high-water source,
// publishing its tallies onto reg (nil = private registry).
func NewLeaseTable(highWater func() uint64, reg *obs.Registry) *LeaseTable {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	t := &LeaseTable{
		highWater: highWater,
		now:       time.Now,
		leases:    make(map[int]*leaseState),
		fenced:    make(map[string]*obs.Counter, len(fencedOps)),
	}
	reg.Help("fleet_leases_acquired_total", "Partition leases granted (every grant is a new fencing epoch).")
	reg.Help("fleet_leases_expired_total", "Leases that lapsed past their TTL without renewal.")
	reg.Help("fleet_leases_takeovers_total", "Expired leases re-acquired by a different holder.")
	reg.Help("fleet_writes_fenced_total", "Stale-epoch or expired-lease writes rejected, by operation.")
	reg.Help("fleet_takeover_latency_seconds", "Orphaned time between lease expiry and takeover.")
	// Lease lifecycle depends on wall time (TTLs, stalls), not on
	// (seed, days, scale); keep the determinism snapshot clean.
	reg.Volatile("fleet_leases_acquired_total", "fleet_leases_renewed_total",
		"fleet_leases_released_total", "fleet_leases_expired_total",
		"fleet_leases_takeovers_total", "fleet_writes_fenced_total",
		"fleet_checkpoints_total", "fleet_takeover_latency_seconds",
		"fleet_leases_active", "fleet_partitions_done")
	t.acquired = reg.Counter("fleet_leases_acquired_total")
	t.renewed = reg.Counter("fleet_leases_renewed_total")
	t.released = reg.Counter("fleet_leases_released_total")
	t.expired = reg.Counter("fleet_leases_expired_total")
	t.takeovers = reg.Counter("fleet_leases_takeovers_total")
	t.checkpoints = reg.Counter("fleet_checkpoints_total")
	for _, op := range fencedOps {
		t.fenced[op] = reg.Counter("fleet_writes_fenced_total", "op", op)
	}
	t.takeoverLat = reg.Histogram("fleet_takeover_latency_seconds", TakeoverBuckets)
	t.activeG = reg.Gauge("fleet_leases_active")
	t.doneG = reg.Gauge("fleet_partitions_done")
	return t
}

// WithClock injects the table's clock (tests). Returns t for chaining.
func (t *LeaseTable) WithClock(now func() time.Time) *LeaseTable {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.now = now
	return t
}

// Plan implements Coordinator. The first call fixes the plan over the
// current high-water mark; later calls return it unchanged (joiners
// adopt the existing division regardless of their own n).
func (t *LeaseTable) Plan(n int) (Plan, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.plan != nil {
		return t.planCopyLocked(), nil
	}
	pl, err := PlanOver(t.highWater(), n)
	if err != nil {
		return Plan{}, err
	}
	t.plan = &pl
	for _, p := range pl.Partitions {
		t.leases[p.ID] = &leaseState{part: p}
	}
	return t.planCopyLocked(), nil
}

// planCopyLocked returns a detached copy of the plan.
func (t *LeaseTable) planCopyLocked() Plan {
	return Plan{
		HighWater:  t.plan.HighWater,
		Partitions: append([]Partition(nil), t.plan.Partitions...),
	}
}

// stateFor resolves a partition id, enforcing plan existence.
func (t *LeaseTable) stateFor(partition int) (*leaseState, error) {
	if t.plan == nil {
		return nil, ErrNoPlan
	}
	ls, ok := t.leases[partition]
	if !ok {
		return nil, fmt.Errorf("%w: %d (plan has %d)", ErrUnknownPartition, partition, len(t.leases))
	}
	return ls, nil
}

// observeExpiryLocked counts a lapsed lease once. The holder stays on
// record so the takeover latency can be measured from the expiry
// instant when someone else claims the partition.
func (t *LeaseTable) observeExpiryLocked(ls *leaseState, now time.Time) {
	if ls.holder != "" && !ls.done && !now.Before(ls.expires) && !ls.expiredSeen {
		ls.expiredSeen = true
		t.expired.Inc()
	}
}

// activeLocked recomputes the live-lease gauge.
func (t *LeaseTable) activeLocked(now time.Time) {
	var n int64
	for _, ls := range t.leases {
		if ls.holder != "" && !ls.done && now.Before(ls.expires) {
			n++
		}
	}
	t.activeG.Set(n)
}

// Acquire implements Coordinator.
func (t *LeaseTable) Acquire(partition int, holder string, ttl time.Duration) (Lease, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	ls, err := t.stateFor(partition)
	if err != nil {
		return Lease{}, err
	}
	now := t.now()
	t.observeExpiryLocked(ls, now)
	if ls.done {
		return t.viewLocked(ls, now), fmt.Errorf("%w: partition %d", ErrDone, partition)
	}
	if ls.holder != "" && now.Before(ls.expires) && ls.holder != holder {
		return Lease{}, fmt.Errorf("%w: partition %d held by %s for %s",
			ErrLeaseHeld, partition, ls.holder, ls.expires.Sub(now).Round(time.Millisecond))
	}
	if ls.holder != "" && !now.Before(ls.expires) && ls.holder != holder {
		t.takeovers.Inc()
		t.takeoverLat.Observe(now.Sub(ls.expires).Seconds())
	}
	// Every grant is a new epoch — including a holder re-acquiring its
	// own live or lapsed lease. A restarted process must not be able to
	// alias writes from its previous incarnation.
	ls.epoch++
	ls.holder = holder
	ls.expires = now.Add(ttl)
	ls.expiredSeen = false
	t.acquired.Inc()
	t.activeLocked(now)
	return t.viewLocked(ls, now), nil
}

// validateWriteLocked is the fencing gate every write passes: current
// holder, current epoch, unexpired lease. Anything else is fenced.
func (t *LeaseTable) validateWriteLocked(ls *leaseState, holder string, epoch uint64, now time.Time, op string) error {
	t.observeExpiryLocked(ls, now)
	if ls.holder != holder || ls.epoch != epoch || !now.Before(ls.expires) {
		t.fenced[op].Inc()
		return fmt.Errorf("%w: %s by %s@e%d on partition %d (current %s@e%d, expired=%v)",
			ErrFenced, op, holder, epoch, ls.part.ID, ls.holder, ls.epoch, !now.Before(ls.expires))
	}
	return nil
}

// Renew implements Coordinator.
func (t *LeaseTable) Renew(partition int, holder string, epoch uint64, ttl time.Duration) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	ls, err := t.stateFor(partition)
	if err != nil {
		return err
	}
	now := t.now()
	if err := t.validateWriteLocked(ls, holder, epoch, now, "renew"); err != nil {
		return err
	}
	ls.expires = now.Add(ttl)
	t.renewed.Inc()
	t.activeLocked(now)
	return nil
}

// Checkpoint implements Coordinator.
func (t *LeaseTable) Checkpoint(partition int, holder string, epoch uint64, cursor, records uint64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	ls, err := t.stateFor(partition)
	if err != nil {
		return err
	}
	now := t.now()
	if err := t.validateWriteLocked(ls, holder, epoch, now, "checkpoint"); err != nil {
		return err
	}
	ls.cursor = cursor
	ls.ckptEpoch = epoch
	ls.records = records
	t.checkpoints.Inc()
	return nil
}

// Release implements Coordinator.
func (t *LeaseTable) Release(partition int, holder string, epoch uint64, done bool) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	ls, err := t.stateFor(partition)
	if err != nil {
		return err
	}
	now := t.now()
	if err := t.validateWriteLocked(ls, holder, epoch, now, "release"); err != nil {
		return err
	}
	ls.holder = ""
	ls.expires = time.Time{}
	ls.expiredSeen = false
	if done {
		ls.done = true
		var n int64
		for _, other := range t.leases {
			if other.done {
				n++
			}
		}
		t.doneG.Set(n)
	}
	t.released.Inc()
	t.activeLocked(now)
	return nil
}

// State implements Coordinator.
func (t *LeaseTable) State() (State, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.plan == nil {
		return State{}, ErrNoPlan
	}
	now := t.now()
	st := State{Plan: t.planCopyLocked(), Leases: make([]Lease, 0, len(t.leases))}
	for _, ls := range t.leases {
		t.observeExpiryLocked(ls, now)
		st.Leases = append(st.Leases, t.viewLocked(ls, now))
	}
	sort.Slice(st.Leases, func(i, j int) bool {
		return st.Leases[i].Partition.ID < st.Leases[j].Partition.ID
	})
	t.activeLocked(now)
	return st, nil
}

// viewLocked renders a lease state as its wire form.
func (t *LeaseTable) viewLocked(ls *leaseState, now time.Time) Lease {
	l := Lease{
		Partition: ls.part,
		Holder:    ls.holder,
		Epoch:     ls.epoch,
		Done:      ls.done,
		Cursor:    ls.cursor,
		CkptEpoch: ls.ckptEpoch,
		Records:   ls.records,
	}
	if ls.holder != "" {
		l.ExpiresUnixMs = ls.expires.UnixMilli()
		l.Expired = !now.Before(ls.expires)
	}
	return l
}

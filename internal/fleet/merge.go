package fleet

import (
	"fmt"
	"os"
	"sort"

	"jitomev/internal/collector"
	"jitomev/internal/jito"
	"jitomev/internal/obs"
)

// MergeStats summarizes one merge.
type MergeStats struct {
	// Inputs is how many partition datasets went in.
	Inputs int `json:"inputs"`
	// Records is the merged (deduplicated) record count.
	Records uint64 `json:"records"`
	// Deduped counts records dropped as bundle-id duplicates across
	// inputs — resume overlaps, duplicate-fault pages, double-fetched
	// partition boundaries. Zero on a clean single-replica run.
	Deduped uint64 `json:"deduped"`
	// Details is how many transaction details the merged dataset
	// retains.
	Details uint64 `json:"details"`
}

// Merge rebuilds the canonical dataset from partition captures: the
// bundle-id-deduplicated, sequence-sorted union of every input's
// records is re-ingested into a fresh dataset under the paper's retain
// economy (length 3 plus detailLengths), and the retained records'
// details are copied over.
//
// Rebuilding — rather than summing the inputs' aggregates — is what
// makes the merge chaos-proof: any duplication between inputs (crash
// resume overlap, duplicate-fault pages, boundary refetches) drops out
// in the id dedup, and any ingest-order skew drops out in the sequence
// sort. The result is byte-identical (snapshot Save bytes) to a
// single collector ingesting the same backlog in acceptance order, at
// any replica count and under any fault schedule that did not lose
// data outright.
func Merge(parts []*collector.Dataset, detailLengths []int, reg *obs.Registry) (*collector.Dataset, MergeStats, error) {
	stats := MergeStats{Inputs: len(parts)}
	if len(parts) == 0 {
		return nil, stats, fmt.Errorf("fleet: merge of zero inputs")
	}
	genesis := parts[0].Clock.Genesis
	for i, p := range parts {
		if !p.Clock.Genesis.Equal(genesis) {
			return nil, stats, fmt.Errorf("fleet: merge input %d has genesis %s, input 0 has %s — different studies",
				i, p.Clock.Genesis, genesis)
		}
	}

	seen := make(map[jito.BundleID]struct{})
	var all []jito.BundleRecord
	gather := func(recs []jito.BundleRecord) {
		for i := range recs {
			if _, dup := seen[recs[i].ID]; dup {
				stats.Deduped++
				continue
			}
			seen[recs[i].ID] = struct{}{}
			all = append(all, recs[i])
		}
	}
	for _, p := range parts {
		gather(p.Len3)
		gather(p.Long)
	}
	// Acceptance sequence is the chain order a single collector would
	// have ingested in; ids are unique per sequence, so the sort is
	// total and the rebuild deterministic.
	sort.Slice(all, func(i, j int) bool { return all[i].Seq < all[j].Seq })

	out := collector.NewDataset(parts[0].Clock, 64)
	out.RetainLengths(detailLengths...)
	retained := map[int]bool{3: true}
	for _, n := range detailLengths {
		retained[n] = true
	}
	for i := range all {
		out.Ingest(all[i])
		if !retained[all[i].NumTxs()] {
			continue
		}
		for _, id := range all[i].TxIDs {
			if _, ok := out.Details[id]; ok {
				continue
			}
			for _, p := range parts {
				if d, ok := p.Details[id]; ok {
					out.Details[id] = d
					break
				}
			}
		}
	}
	stats.Records = out.Collected
	stats.Details = uint64(len(out.Details))
	if reg != nil {
		reg.Volatile("fleet_merge_inputs", "fleet_merge_records_total",
			"fleet_merge_dedup_total", "fleet_merge_details_total")
		reg.Help("fleet_merge_dedup_total", "Cross-input duplicate records dropped by the merge.")
		reg.Counter("fleet_merge_inputs").Add(uint64(stats.Inputs))
		reg.Counter("fleet_merge_records_total").Add(stats.Records)
		reg.Counter("fleet_merge_dedup_total").Add(stats.Deduped)
		reg.Counter("fleet_merge_details_total").Add(stats.Details)
	}
	return out, stats, nil
}

// MergeFiles merges partition checkpoint snapshots read from paths.
func MergeFiles(paths []string, detailLengths []int, reg *obs.Registry) (*collector.Dataset, MergeStats, error) {
	parts := make([]*collector.Dataset, 0, len(paths))
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			return nil, MergeStats{}, fmt.Errorf("fleet: merge: %w", err)
		}
		ds, lerr := collector.LoadCheckpoint(f, 64, 0, reg)
		f.Close()
		if lerr != nil {
			return nil, MergeStats{}, fmt.Errorf("fleet: merge %s: %w", path, lerr)
		}
		parts = append(parts, ds)
	}
	return Merge(parts, detailLengths, reg)
}

// MergeDir merges a completed fleet's output from its coordinator
// state: every partition must be done, and each contributes the
// checkpoint snapshot named by its recorded (partition, ckpt-epoch)
// pair — the fencing discipline guarantees that file is the accepted
// lineage even when stale holders wrote others.
func MergeDir(st State, dir string, detailLengths []int, reg *obs.Registry) (*collector.Dataset, MergeStats, error) {
	paths := make([]string, 0, len(st.Leases))
	for i := range st.Leases {
		l := &st.Leases[i]
		if !l.Done {
			return nil, MergeStats{}, fmt.Errorf("fleet: merge: partition %d not complete (holder %q, cursor %d)",
				l.Partition.ID, l.Holder, l.Cursor)
		}
		paths = append(paths, CheckpointPath(dir, l.Partition.ID, l.CkptEpoch))
	}
	return MergeFiles(paths, detailLengths, reg)
}

package fleet

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"jitomev/internal/collector"
	"jitomev/internal/faults"
	"jitomev/internal/jito"
	"jitomev/internal/obs"
	"jitomev/internal/quality"
	"jitomev/internal/snapshot"
	"jitomev/internal/solana"
)

// CheckpointPath names a partition's checkpoint snapshot. The epoch is
// part of the name: a stale holder overwriting "its" file after a
// takeover can only touch its own epoch's file, never the successor's,
// so the filesystem inherits the lease table's fencing for free.
func CheckpointPath(dir string, partition int, epoch uint64) string {
	return filepath.Join(dir, fmt.Sprintf("part-%03d.e%d.snap", partition, epoch))
}

// ReplicaConfig shapes one fleet member.
type ReplicaConfig struct {
	// ID is the holder name leases are granted to (must be unique
	// across live replicas).
	ID    string
	Clock solana.Clock
	// Transport is the data plane — the same hardened transports the
	// single collector uses (Direct, HTTP, chaos-wrapped).
	Transport collector.Transport
	// Coord is the control plane: the in-process LeaseTable or a
	// LeaseClient against explorerd.
	Coord Coordinator
	// Partitions is the plan size this replica proposes (the first
	// replica to call Plan wins; joiners adopt).
	Partitions int

	// PageLimit is the backward-paging page size (default 500).
	PageLimit int
	// DetailBatch caps each bulk detail request (default 10,000).
	DetailBatch int
	// LeaseTTL is the lease duration acquired and renewed with
	// (default 2s). Renewal happens every page, so the TTL only has to
	// outlive one page fetch plus its retries.
	LeaseTTL time.Duration
	// CheckpointEvery checkpoints after this many pages (default 4).
	CheckpointEvery int
	// CkptDir holds the per-partition checkpoint snapshots (required;
	// shared by all replicas of a fleet).
	CkptDir string
	// PageRetries bounds replica-level retries of a failed page or
	// detail batch, beyond whatever the transport itself retries
	// (default 24 — a 10% fault schedule clears that with margin).
	PageRetries int
	// RetryWait sleeps between replica-level retries (default 2ms).
	RetryWait time.Duration
	// IdleWait sleeps between claim sweeps when every remaining
	// partition is held by someone else (default 10ms).
	IdleWait time.Duration
	// PageDelay paces the page loop (0 = full speed). Chaos tests use
	// it to keep an in-process fleet genuinely concurrent — without
	// pacing, one replica can drain every partition before the others'
	// goroutines are even scheduled, and the failure modes under test
	// (contention, expiry, takeover) never occur.
	PageDelay time.Duration
	// Stall is how long an injected coordinator partition freezes the
	// replica — long enough to outlive the TTL, so the write it
	// attempts afterwards meets the fence (default 2×LeaseTTL).
	Stall time.Duration

	// Chaos, when set, draws replica-level faults (crash, partition)
	// from the deterministic schedule before every page.
	Chaos *faults.Injector
	// CrashAfterPages kills the replica after it has fetched this many
	// pages (0 = never) — the harness's deterministic mid-run kill.
	CrashAfterPages int

	// Reg receives the fleet_replica_* tallies (nil = private).
	Reg *obs.Registry
	// Quality, when set, receives the coverage-ledger feed (per-page
	// yield, poll errors, detail outcomes) for fleet-wide aggregation.
	Quality *quality.Sentinel
}

// Replica is one fleet member: it claims partitions, pages them down,
// checkpoints, and survives (or suffers) the replica fault classes.
type Replica struct {
	cfg ReplicaConfig

	pages, records, retries *obs.Counter
	ckpts, completed        *obs.Counter
	abandons, fencedSeen    *obs.Counter
	crashes, stalls         *obs.Counter
	resumes, restoreFails   *obs.Counter

	pagesFetched int
}

// NewReplica builds a replica; zero config fields take the defaults
// documented on ReplicaConfig.
func NewReplica(cfg ReplicaConfig) *Replica {
	if cfg.PageLimit <= 0 {
		cfg.PageLimit = 500
	}
	if cfg.DetailBatch <= 0 {
		cfg.DetailBatch = 10_000
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 2 * time.Second
	}
	if cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = 4
	}
	if cfg.PageRetries <= 0 {
		cfg.PageRetries = 24
	}
	if cfg.RetryWait <= 0 {
		cfg.RetryWait = 2 * time.Millisecond
	}
	if cfg.IdleWait <= 0 {
		cfg.IdleWait = 10 * time.Millisecond
	}
	if cfg.Stall <= 0 {
		cfg.Stall = 2 * cfg.LeaseTTL
	}
	reg := cfg.Reg
	reg.Help("fleet_replica_pages_total", "Partition pages fetched, by replica.")
	reg.Help("fleet_replica_fenced_observed_total", "Fence rejections this replica received for its own writes.")
	reg.Volatile("fleet_replica_pages_total", "fleet_replica_records_total",
		"fleet_replica_page_retries_total", "fleet_replica_checkpoints_total",
		"fleet_replica_partitions_completed_total", "fleet_replica_abandons_total",
		"fleet_replica_fenced_observed_total", "fleet_replica_crashes_total",
		"fleet_replica_stalls_total", "fleet_replica_resumes_total",
		"fleet_replica_restore_failures_total")
	r := &Replica{cfg: cfg}
	lbl := []string{"replica", cfg.ID}
	r.pages = reg.Counter("fleet_replica_pages_total", lbl...)
	r.records = reg.Counter("fleet_replica_records_total", lbl...)
	r.retries = reg.Counter("fleet_replica_page_retries_total", lbl...)
	r.ckpts = reg.Counter("fleet_replica_checkpoints_total", lbl...)
	r.completed = reg.Counter("fleet_replica_partitions_completed_total", lbl...)
	r.abandons = reg.Counter("fleet_replica_abandons_total", lbl...)
	r.fencedSeen = reg.Counter("fleet_replica_fenced_observed_total", lbl...)
	r.crashes = reg.Counter("fleet_replica_crashes_total", lbl...)
	r.stalls = reg.Counter("fleet_replica_stalls_total", lbl...)
	r.resumes = reg.Counter("fleet_replica_resumes_total", lbl...)
	r.restoreFails = reg.Counter("fleet_replica_restore_failures_total", lbl...)
	return r
}

// traceBinder is the carrier surface a transport or coordinator exposes
// when it can ride a trace (collector.HTTP, faults.Transport,
// LeaseClient). Discovered structurally so Direct transports and the
// in-process LeaseTable stay untouched.
type traceBinder interface {
	BindTrace(obs.SpanCtx)
}

// bindTrace pins ctx on the replica's transport and coordinator when
// they are carriers; the zero SpanCtx detaches. Sound because a replica
// works one partition page at a time.
func (r *Replica) bindTrace(ctx obs.SpanCtx) {
	if tb, ok := r.cfg.Transport.(traceBinder); ok {
		tb.BindTrace(ctx)
	}
	if tb, ok := r.cfg.Coord.(traceBinder); ok {
		tb.BindTrace(ctx)
	}
}

// startTrace roots a replica trace (nil without an attached tracer —
// every Trace method is nil-safe) and binds it onto the data and
// control planes so transport and lease calls become child spans.
func (r *Replica) startTrace(name string, part Partition) *obs.Trace {
	t := r.cfg.Reg.TracerAttached()
	if t == nil {
		return nil
	}
	tr := t.StartTrace(name)
	tr.Annotatef("replica:%s partition:%d", r.cfg.ID, part.ID)
	r.bindTrace(tr.Ctx())
	return tr
}

// endTrace detaches the carriers and closes the root span.
func (r *Replica) endTrace(tr *obs.Trace, err error) {
	r.bindTrace(obs.SpanCtx{})
	tr.EndErr(err)
}

// span opens a stage child under tr and re-pins the carriers to it, so
// transport and lease calls made during the stage nest under the stage
// span instead of the root.
func (r *Replica) span(tr *obs.Trace, name string) *obs.Trace {
	sp := tr.StartChild(name)
	if sp != nil {
		r.bindTrace(sp.Ctx())
	}
	return sp
}

// closeSpan ends a stage span and re-pins the carriers to the root.
func (r *Replica) closeSpan(tr, sp *obs.Trace, err error) {
	if sp != nil {
		r.bindTrace(tr.Ctx())
	}
	sp.EndErr(err)
}

// windowSize sizes the capture dataset's dedup window: wide enough to
// absorb the worst resume overlap — a crash between the checkpoint
// snapshot landing on disk and its cursor posting leaves the successor
// re-fetching up to CheckpointEvery pages the snapshot already holds.
func (r *Replica) windowSize() int {
	return (r.cfg.CheckpointEvery + 2) * r.cfg.PageLimit
}

// Run claims and works partitions until every partition in the plan is
// done. It returns nil on fleet completion, ErrCrashed when an injected
// crash killed this replica, or the terminal error that stopped it.
func (r *Replica) Run() error {
	if _, err := r.cfg.Coord.Plan(r.cfg.Partitions); err != nil {
		return fmt.Errorf("fleet: %s: plan: %w", r.cfg.ID, err)
	}
	for {
		st, err := r.cfg.Coord.State()
		if err != nil {
			return fmt.Errorf("fleet: %s: state: %w", r.cfg.ID, err)
		}
		allDone, worked := true, false
		for _, l := range st.Leases {
			if l.Done {
				continue
			}
			allDone = false
			lease, err := r.cfg.Coord.Acquire(l.Partition.ID, r.cfg.ID, r.cfg.LeaseTTL)
			if err != nil {
				continue // held, or completed since the snapshot
			}
			worked = true
			switch werr := r.work(lease); {
			case errors.Is(werr, ErrCrashed):
				return werr
			case errors.Is(werr, errAbandoned):
				r.abandons.Inc()
			case werr != nil:
				return fmt.Errorf("fleet: %s: partition %d: %w", r.cfg.ID, l.Partition.ID, werr)
			}
		}
		if allDone {
			return nil
		}
		if !worked {
			time.Sleep(r.cfg.IdleWait)
		}
	}
}

// restore rebuilds the partition's capture dataset from its recorded
// checkpoint, or starts fresh when there is none (or the snapshot is
// unreadable — safe, the whole range is simply re-fetched). Capture
// datasets retain records of every length: unlike the paper's
// length-3-only economy, a partition snapshot must carry everything the
// merge needs to rebuild the canonical dataset's aggregates.
func (r *Replica) restore(lease Lease) (*collector.Dataset, uint64) {
	part := lease.Partition
	if lease.Cursor > 0 {
		path := CheckpointPath(r.cfg.CkptDir, part.ID, lease.CkptEpoch)
		if f, err := os.Open(path); err == nil {
			ds, lerr := collector.LoadCheckpoint(f, r.windowSize(), 1, nil)
			f.Close()
			if lerr == nil {
				// A loaded dataset reverts to the default length-3-only
				// economy; re-widen it or the resumed capture silently
				// drops every other length from here on.
				ds.RetainLengths(1, 2, 4, 5)
				r.resumes.Inc()
				return ds, lease.Cursor
			}
			r.restoreFails.Inc()
		} else if !errors.Is(err, os.ErrNotExist) {
			r.restoreFails.Inc()
		}
	}
	ds := collector.NewDataset(r.cfg.Clock, r.windowSize())
	ds.RetainLengths(1, 2, 4, 5)
	return ds, part.Hi + 1
}

// work drains one leased partition: page backwards from the resume
// cursor to the partition floor, ingesting, fetching details, renewing
// the lease per page and checkpointing every CheckpointEvery pages —
// snapshot to disk first, cursor post second, so an accepted cursor
// always names a durable snapshot.
func (r *Replica) work(lease Lease) error {
	part := lease.Partition
	ds, cursor := r.restore(lease)
	pagesSince := 0
	// partitioned marks an injected coordinator partition during THIS
	// lease: renewals stop (they would not reach the coordinator), work
	// continues, and the next write that gets through is the stale one
	// the fence must reject. A fresh lease starts healed.
	partitioned := false
	for !part.Empty() && cursor > part.Lo {
		// Each page cycle is one root trace: renew → fetch_page →
		// ingest → details (→ checkpoint), with the transport and
		// coordinator calls nested under their stage spans — the
		// per-hop breakdown /tracez serves for a fleet poll.
		tr := r.startTrace("fleet.page", part)
		wasPartitioned := partitioned
		if err := r.maybeFault(&partitioned); err != nil {
			tr.Annotate("fault:crash")
			tr.FlagKeep("fault")
			r.endTrace(tr, err)
			return err
		}
		if partitioned && !wasPartitioned {
			tr.Annotate("fault:partition")
			tr.FlagKeep("fault")
		}
		if !partitioned {
			sp := r.span(tr, "renew")
			err := r.cfg.Coord.Renew(part.ID, r.cfg.ID, lease.Epoch, r.cfg.LeaseTTL)
			r.closeSpan(tr, sp, err)
			if err != nil {
				r.fencedSeen.Inc()
				tr.FlagKeep("fenced")
				r.endTrace(tr, err)
				return errAbandoned
			}
		}
		page, err := r.fetchPage(tr, cursor)
		if err != nil {
			r.endTrace(tr, err)
			return err
		}
		if r.cfg.PageDelay > 0 {
			time.Sleep(r.cfg.PageDelay)
		}
		if len(page) == 0 {
			cursor = part.Lo // nothing below the cursor: range exhausted
			tr.Annotate("range_exhausted")
			r.endTrace(tr, nil)
			break
		}
		oldest, newest := page[0].Seq, page[0].Seq
		mark := len(ds.Len3)
		newN, dupN := 0, 0
		ingest := tr.StartChild("ingest")
		// Pages arrive newest-first; ingest back-to-front so dataset
		// order tracks chain order within the page. Entries outside
		// [Lo, Hi] belong to a neighboring partition and are skipped.
		for i := len(page) - 1; i >= 0; i-- {
			rec := page[i]
			if rec.Seq < oldest {
				oldest = rec.Seq
			}
			if rec.Seq > newest {
				newest = rec.Seq
			}
			if rec.Seq < part.Lo || rec.Seq > part.Hi {
				continue
			}
			if ds.Ingest(rec) {
				newN++
			} else {
				dupN++
			}
		}
		ingest.Annotatef("new:%d dup:%d", newN, dupN)
		ingest.End()
		r.pages.Inc()
		r.pagesFetched++
		r.records.Add(uint64(newN))
		r.cfg.Quality.ObservePoll(r.cfg.Clock.DayOf(pageSlot(page, newest)),
			r.cfg.PageLimit, newN, dupN, false, false)
		if err := r.fetchDetails(tr, ds, mark); err != nil {
			r.endTrace(tr, err)
			return err
		}
		if oldest < cursor {
			cursor = oldest
		} else {
			// A duplicate-heavy fault page can fail to advance; step
			// past its floor rather than spin.
			cursor = oldest - 1
		}
		if cursor <= part.Lo {
			cursor = part.Lo
			r.endTrace(tr, nil)
			break
		}
		if pagesSince++; pagesSince >= r.cfg.CheckpointEvery {
			if err := r.checkpoint(tr, ds, cursor, part, lease.Epoch); err != nil {
				r.endTrace(tr, err)
				return err
			}
			pagesSince = 0
		}
		r.endTrace(tr, nil)
	}
	// Range fully fetched: settle any pending details, write the final
	// checkpoint, and mark the partition done.
	tr := r.startTrace("fleet.finish", part)
	if err := r.finishDetails(tr, ds); err != nil {
		// Details permanently short: checkpoint what we have and hand
		// the partition back unfinished for another replica (or a
		// calmer retry) to complete.
		_ = r.checkpoint(tr, ds, maxU64(cursor, part.Lo), part, lease.Epoch)
		sp := r.span(tr, "release")
		r.closeSpan(tr, sp, r.cfg.Coord.Release(part.ID, r.cfg.ID, lease.Epoch, false))
		r.endTrace(tr, err)
		return err
	}
	if err := r.checkpoint(tr, ds, maxU64(cursor, part.Lo), part, lease.Epoch); err != nil {
		r.endTrace(tr, err)
		return err
	}
	sp := r.span(tr, "release")
	err := r.cfg.Coord.Release(part.ID, r.cfg.ID, lease.Epoch, true)
	r.closeSpan(tr, sp, err)
	if err != nil {
		r.fencedSeen.Inc()
		tr.FlagKeep("fenced")
		r.endTrace(tr, err)
		return errAbandoned
	}
	r.completed.Inc()
	r.endTrace(tr, nil)
	return nil
}

// maybeFault draws the replica-level fault schedule: a crash ends the
// replica mid-batch (leases unreleased); a coordinator partition
// freezes it past its TTL and stops renewals — the classic stalled
// writer whose next checkpoint the epoch fence must reject.
func (r *Replica) maybeFault(partitioned *bool) error {
	if r.cfg.CrashAfterPages > 0 && r.pagesFetched >= r.cfg.CrashAfterPages {
		r.crashes.Inc()
		return ErrCrashed
	}
	if r.cfg.Chaos == nil {
		return nil
	}
	class, _ := r.cfg.Chaos.Next(faults.ReplicaMask)
	switch class {
	case faults.ClassCrash:
		r.crashes.Inc()
		return ErrCrashed
	case faults.ClassPartition:
		if !*partitioned {
			*partitioned = true
			r.stalls.Inc()
			time.Sleep(r.cfg.Stall)
		}
	}
	return nil
}

// fetchPage requests the page strictly below cursor, retrying through
// the transport fault classes on the replica's own budget.
func (r *Replica) fetchPage(tr *obs.Trace, cursor uint64) (page []jito.BundleRecord, err error) {
	sp := r.span(tr, "fetch_page")
	defer func() { r.closeSpan(tr, sp, err) }()
	for attempt := 0; ; attempt++ {
		page, err = r.cfg.Transport.RecentBundlesBefore(cursor, r.cfg.PageLimit)
		if err == nil {
			if attempt > 0 {
				sp.Annotatef("retries:%d", attempt)
			}
			return page, nil
		}
		r.cfg.Quality.ObservePollError()
		if attempt >= r.cfg.PageRetries {
			return nil, fmt.Errorf("page budget exhausted at cursor %d: %w", cursor, err)
		}
		r.retries.Inc()
		time.Sleep(r.cfg.RetryWait)
	}
}

// fetchDetails fetches details for the length-3 records appended since
// mark. Failures and partial responses leave ids pending; finishDetails
// settles the remainder before the partition completes.
func (r *Replica) fetchDetails(tr *obs.Trace, ds *collector.Dataset, mark int) error {
	var ids []solana.Signature
	for i := mark; i < len(ds.Len3); i++ {
		ids = append(ids, ds.Len3[i].TxIDs...)
	}
	if len(ids) == 0 {
		return nil
	}
	sp := r.span(tr, "details")
	sp.Annotatef("ids:%d", len(ids))
	_ = r.fetchIDs(ds, ids, 1) // best effort; the finish pass retries
	r.closeSpan(tr, sp, nil)
	return nil
}

// finishDetails drains every still-pending length-3 detail, retrying
// across the replica's budget; a remainder after that is an error (the
// partition cannot be declared complete with holes).
func (r *Replica) finishDetails(tr *obs.Trace, ds *collector.Dataset) (err error) {
	sp := r.span(tr, "details_finish")
	defer func() { r.closeSpan(tr, sp, err) }()
	for attempt := 0; attempt <= r.cfg.PageRetries; attempt++ {
		pending := pendingLen3(ds)
		if len(pending) == 0 {
			return nil
		}
		if attempt > 0 {
			r.retries.Inc()
			time.Sleep(r.cfg.RetryWait)
		}
		_ = r.fetchIDs(ds, pending, 1)
	}
	if pending := pendingLen3(ds); len(pending) > 0 {
		return fmt.Errorf("detail budget exhausted: %d ids still pending", len(pending))
	}
	return nil
}

// fetchIDs requests details for ids in DetailBatch chunks with
// `attempts` tries per chunk, folding results into ds. Returns how many
// details landed.
func (r *Replica) fetchIDs(ds *collector.Dataset, ids []solana.Signature, attempts int) int {
	fetched, failedBatches := 0, uint64(0)
	for start := 0; start < len(ids); start += r.cfg.DetailBatch {
		end := start + r.cfg.DetailBatch
		if end > len(ids) {
			end = len(ids)
		}
		var details []jito.TxDetail
		var err error
		for a := 0; a < attempts; a++ {
			details, err = r.cfg.Transport.TxDetails(ids[start:end])
			if err == nil {
				break
			}
		}
		if err != nil {
			failedBatches++
			continue
		}
		for _, d := range details {
			ds.Details[d.Sig] = d
		}
		fetched += len(details)
	}
	if fetched > 0 || failedBatches > 0 {
		r.cfg.Quality.ObserveDetails(fetched, len(pendingLen3(ds)), failedBatches)
	}
	return fetched
}

// pendingLen3 lists every length-3 member transaction whose detail is
// missing. (Long records are capture-only here: the explorer serves
// details for length-3 bundles, the paper's economy.)
func pendingLen3(ds *collector.Dataset) []solana.Signature {
	var pending []solana.Signature
	for i := range ds.Len3 {
		for _, id := range ds.Len3[i].TxIDs {
			if _, ok := ds.Details[id]; !ok {
				pending = append(pending, id)
			}
		}
	}
	return pending
}

// checkpoint persists progress in fencing order: the snapshot lands
// atomically on disk first (named by partition and epoch), the cursor
// posts to the lease table second. A crash between the two leaves the
// table pointing at the previous, still-valid (snapshot, cursor) pair;
// the successor merely re-fetches a few pages the newer file already
// held, which the dedup window (or at worst the merge) absorbs. A
// fenced cursor post means the partition moved on without us.
func (r *Replica) checkpoint(tr *obs.Trace, ds *collector.Dataset, cursor uint64, part Partition, epoch uint64) error {
	sp := r.span(tr, "checkpoint")
	sp.Annotatef("cursor:%d", cursor)
	path := CheckpointPath(r.cfg.CkptDir, part.ID, epoch)
	if _, err := snapshot.WriteFileAtomic(path, func(w io.Writer) error {
		return ds.SaveWorkers(w, 1)
	}); err != nil {
		err = fmt.Errorf("checkpoint %s: %w", path, err)
		r.closeSpan(tr, sp, err)
		return err
	}
	if err := r.cfg.Coord.Checkpoint(part.ID, r.cfg.ID, epoch, cursor, ds.Collected); err != nil {
		r.fencedSeen.Inc()
		tr.FlagKeep("fenced")
		r.closeSpan(tr, sp, err)
		return errAbandoned
	}
	r.ckpts.Inc()
	r.closeSpan(tr, sp, nil)
	return nil
}

// pageSlot finds the slot of the page entry carrying seq (for day
// attribution); falls back to the first entry.
func pageSlot(page []jito.BundleRecord, seq uint64) solana.Slot {
	for i := range page {
		if page[i].Seq == seq {
			return page[i].Slot
		}
	}
	return page[0].Slot
}

// maxU64 returns the larger of a and b.
func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

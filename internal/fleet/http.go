package fleet

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"jitomev/internal/obs"
)

// The /leasez wire protocol: GET /leasez returns the State document;
// the lease operations are POSTs of small JSON bodies under /leasez/.
// Errors come back as {"code","error"} with a stable code the client
// maps onto the package's sentinel errors, so a replica behaves
// identically against an in-process LeaseTable and a remote explorerd.

// planRequest is the body of POST /leasez/plan.
type planRequest struct {
	Partitions int `json:"partitions"`
}

// acquireRequest is the body of POST /leasez/acquire.
type acquireRequest struct {
	Partition int    `json:"partition"`
	Holder    string `json:"holder"`
	TTLMs     int64  `json:"ttl_ms"`
}

// renewRequest is the body of POST /leasez/renew.
type renewRequest struct {
	Partition int    `json:"partition"`
	Holder    string `json:"holder"`
	Epoch     uint64 `json:"epoch"`
	TTLMs     int64  `json:"ttl_ms"`
}

// checkpointRequest is the body of POST /leasez/checkpoint.
type checkpointRequest struct {
	Partition int    `json:"partition"`
	Holder    string `json:"holder"`
	Epoch     uint64 `json:"epoch"`
	Cursor    uint64 `json:"cursor"`
	Records   uint64 `json:"records"`
}

// releaseRequest is the body of POST /leasez/release.
type releaseRequest struct {
	Partition int    `json:"partition"`
	Holder    string `json:"holder"`
	Epoch     uint64 `json:"epoch"`
	Done      bool   `json:"done"`
}

// errorResponse is every non-200 body.
type errorResponse struct {
	Code  string `json:"code"`
	Error string `json:"error"`
}

// codeFor maps a coordination error onto its wire code and HTTP status.
func codeFor(err error) (string, int) {
	switch {
	case errors.Is(err, ErrLeaseHeld):
		return "held", http.StatusConflict
	case errors.Is(err, ErrFenced):
		return "fenced", http.StatusConflict
	case errors.Is(err, ErrDone):
		return "done", http.StatusConflict
	case errors.Is(err, ErrNoPlan):
		return "no_plan", http.StatusConflict
	case errors.Is(err, ErrUnknownPartition):
		return "unknown_partition", http.StatusNotFound
	}
	return "internal", http.StatusInternalServerError
}

// sentinelFor is the client-side inverse of codeFor.
func sentinelFor(code string) error {
	switch code {
	case "held":
		return ErrLeaseHeld
	case "fenced":
		return ErrFenced
	case "done":
		return ErrDone
	case "no_plan":
		return ErrNoPlan
	case "unknown_partition":
		return ErrUnknownPartition
	}
	return nil
}

// LeaseServer serves a Coordinator over the /leasez endpoints, mounted
// on the ops mux beside /metrics and /qualityz.
type LeaseServer struct {
	coord Coordinator
}

// NewLeaseServer wraps a coordinator (normally the explorerd-owned
// LeaseTable) for HTTP serving.
func NewLeaseServer(c Coordinator) *LeaseServer { return &LeaseServer{coord: c} }

// Endpoints returns the routes for obs.NewOpsMux: the state document at
// /leasez and the operations under /leasez/.
func (s *LeaseServer) Endpoints() []obs.Endpoint {
	return []obs.Endpoint{
		{Path: "/leasez", Handler: http.HandlerFunc(s.handleState)},
		{Path: "/leasez/", Handler: http.HandlerFunc(s.handleOp)},
	}
}

// writeJSON encodes v as the 200 response.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// writeError encodes err with its mapped status and stable code.
func writeError(w http.ResponseWriter, err error) {
	code, status := codeFor(err)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(errorResponse{Code: code, Error: err.Error()})
}

// handleState serves GET /leasez.
func (s *LeaseServer) handleState(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	st, err := s.coord.State()
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, st)
}

// decodeBody decodes a bounded JSON request body into v.
func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(io.LimitReader(r.Body, 1<<16))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// handleOp dispatches the POST operations under /leasez/.
func (s *LeaseServer) handleOp(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	switch r.URL.Path {
	case "/leasez/plan":
		var req planRequest
		if err := decodeBody(r, &req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		pl, err := s.coord.Plan(req.Partitions)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, pl)
	case "/leasez/acquire":
		var req acquireRequest
		if err := decodeBody(r, &req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		l, err := s.coord.Acquire(req.Partition, req.Holder, time.Duration(req.TTLMs)*time.Millisecond)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, l)
	case "/leasez/renew":
		var req renewRequest
		if err := decodeBody(r, &req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := s.coord.Renew(req.Partition, req.Holder, req.Epoch, time.Duration(req.TTLMs)*time.Millisecond); err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, struct{}{})
	case "/leasez/checkpoint":
		var req checkpointRequest
		if err := decodeBody(r, &req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := s.coord.Checkpoint(req.Partition, req.Holder, req.Epoch, req.Cursor, req.Records); err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, struct{}{})
	case "/leasez/release":
		var req releaseRequest
		if err := decodeBody(r, &req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := s.coord.Release(req.Partition, req.Holder, req.Epoch, req.Done); err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, struct{}{})
	default:
		http.NotFound(w, r)
	}
}

// LeaseClient speaks the /leasez protocol — the Coordinator a
// multi-process replica uses against explorerd. Coordination calls are
// deliberately not retried here: a replica treats a coordinator error
// as a lost lease (safe — the data path re-fetches), and retrying a
// fenced write cannot unfence it.
type LeaseClient struct {
	BaseURL string
	Client  *http.Client

	// traceMu guards the bound span context (see BindTrace).
	traceMu  sync.Mutex
	traceCtx obs.SpanCtx
}

// NewLeaseClient builds a client for the explorerd ops listener at
// baseURL (e.g. http://127.0.0.1:9100).
func NewLeaseClient(baseURL string) *LeaseClient {
	return &LeaseClient{
		BaseURL: baseURL,
		Client:  &http.Client{Timeout: 10 * time.Second},
	}
}

// BindTrace pins a span context on the client; subsequent coordination
// calls ride it as child spans and carry the W3C traceparent header, so
// explorerd's middleware stitches the server-side handling into the
// same trace. Sound because a replica issues coordination calls
// sequentially; bind the zero SpanCtx to detach.
func (c *LeaseClient) BindTrace(ctx obs.SpanCtx) {
	c.traceMu.Lock()
	c.traceCtx = ctx
	c.traceMu.Unlock()
}

func (c *LeaseClient) boundTrace() obs.SpanCtx {
	c.traceMu.Lock()
	defer c.traceMu.Unlock()
	return c.traceCtx
}

// leaseOp names the client span for a /leasez path.
func leaseOp(path string) string {
	if path == "/leasez" {
		return "lease:state"
	}
	return "lease:" + strings.TrimPrefix(path, "/leasez/")
}

// call performs one POST (or GET when reqBody is nil) and decodes into
// out; non-200 bodies decode to their sentinel error.
func (c *LeaseClient) call(method, path string, reqBody, out any) (err error) {
	sp := c.boundTrace().StartChild(leaseOp(path))
	defer func() { sp.EndErr(err) }()
	var body io.Reader
	if reqBody != nil {
		buf, err := json.Marshal(reqBody)
		if err != nil {
			return err
		}
		body = bytes.NewReader(buf)
	}
	req, err := http.NewRequest(method, c.BaseURL+path, body)
	if err != nil {
		return err
	}
	if reqBody != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if tp := sp.Ctx().Traceparent(); tp != "" {
		req.Header.Set("traceparent", tp)
	}
	resp, err := c.Client.Do(req)
	if err != nil {
		return fmt.Errorf("fleet: %s: %w", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		var er errorResponse
		if json.Unmarshal(raw, &er) == nil && er.Code != "" {
			if sentinel := sentinelFor(er.Code); sentinel != nil {
				return fmt.Errorf("%w: %s", sentinel, er.Error)
			}
			return fmt.Errorf("fleet: %s: %s", path, er.Error)
		}
		return fmt.Errorf("fleet: %s: HTTP %d: %s", path, resp.StatusCode, bytes.TrimSpace(raw))
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(io.LimitReader(resp.Body, 16<<20)).Decode(out)
}

// Plan implements Coordinator.
func (c *LeaseClient) Plan(n int) (Plan, error) {
	var pl Plan
	err := c.call(http.MethodPost, "/leasez/plan", planRequest{Partitions: n}, &pl)
	return pl, err
}

// Acquire implements Coordinator.
func (c *LeaseClient) Acquire(partition int, holder string, ttl time.Duration) (Lease, error) {
	var l Lease
	err := c.call(http.MethodPost, "/leasez/acquire",
		acquireRequest{Partition: partition, Holder: holder, TTLMs: ttl.Milliseconds()}, &l)
	return l, err
}

// Renew implements Coordinator.
func (c *LeaseClient) Renew(partition int, holder string, epoch uint64, ttl time.Duration) error {
	return c.call(http.MethodPost, "/leasez/renew",
		renewRequest{Partition: partition, Holder: holder, Epoch: epoch, TTLMs: ttl.Milliseconds()}, nil)
}

// Checkpoint implements Coordinator.
func (c *LeaseClient) Checkpoint(partition int, holder string, epoch uint64, cursor, records uint64) error {
	return c.call(http.MethodPost, "/leasez/checkpoint",
		checkpointRequest{Partition: partition, Holder: holder, Epoch: epoch, Cursor: cursor, Records: records}, nil)
}

// Release implements Coordinator.
func (c *LeaseClient) Release(partition int, holder string, epoch uint64, done bool) error {
	return c.call(http.MethodPost, "/leasez/release",
		releaseRequest{Partition: partition, Holder: holder, Epoch: epoch, Done: done}, nil)
}

// State implements Coordinator.
func (c *LeaseClient) State() (State, error) {
	var st State
	err := c.call(http.MethodGet, "/leasez", nil, &st)
	return st, err
}

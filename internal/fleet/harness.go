package fleet

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"jitomev/internal/collector"
	"jitomev/internal/explorer"
	"jitomev/internal/faults"
	"jitomev/internal/obs"
	"jitomev/internal/quality"
	"jitomev/internal/solana"
)

// HarnessConfig shapes an in-process fleet run over a populated
// explorer store — the configuration the chaos acceptance test and
// `make fleet` drive.
type HarnessConfig struct {
	Store *explorer.Store
	Clock solana.Clock

	// Replicas is the fleet size; Partitions the plan size (defaults:
	// replicas, and replicas again for partitions — at least one
	// partition per member keeps everyone busy).
	Replicas   int
	Partitions int

	PageLimit       int
	DetailBatch     int
	CheckpointEvery int
	LeaseTTL        time.Duration
	Stall           time.Duration
	// PageDelay paces every replica's page loop (see ReplicaConfig).
	PageDelay time.Duration
	// CkptDir holds the partition checkpoints (required).
	CkptDir string

	// DetailLengths is the merged dataset's retain economy beyond
	// length 3 (normally empty: the paper's economy).
	DetailLengths []int

	// FaultRate/ChaosSeed wrap every replica's transport in the
	// deterministic fault injector (replica i draws schedule seed+i).
	FaultRate float64
	ChaosSeed int64
	// ReplicaFaultRate/ReplicaChaosSeed draw the replica-level classes
	// (crash, partition) per replica from seed+i.
	ReplicaFaultRate float64
	ReplicaChaosSeed int64
	// CrashAfterPages kills specific replicas (by index) after that
	// many fetched pages — the deterministic mid-run kill.
	CrashAfterPages map[int]int

	// Reg receives every fleet_* tally (nil = private registry).
	Reg *obs.Registry
}

// HarnessResult is what a fleet run leaves behind.
type HarnessResult struct {
	// Merged is the canonical dataset rebuilt from the partition
	// checkpoints; Stats its merge accounting.
	Merged *collector.Dataset
	Stats  MergeStats
	// State is the final coordinator state (all partitions done).
	State State
	// Ledger aggregates every replica's coverage ledger — the fleet's
	// answer to the single collector's quality feed.
	Ledger quality.LedgerSummary
	// ReplicaErrs holds each replica's terminal status (nil = clean
	// exit; ErrCrashed = injected kill).
	ReplicaErrs []error
}

// Crashed counts replicas that died mid-run.
func (r *HarnessResult) Crashed() int {
	n := 0
	for _, err := range r.ReplicaErrs {
		if errors.Is(err, ErrCrashed) {
			n++
		}
	}
	return n
}

// RunFleet runs a whole fleet in-process: one shared LeaseTable, N
// replica goroutines over (optionally chaos-wrapped) Direct transports,
// then the merge over the completed coordinator state. It fails if the
// fleet could not finish every partition — e.g. when every replica was
// configured to crash.
func RunFleet(cfg HarnessConfig) (*HarnessResult, error) {
	if cfg.Replicas <= 0 {
		cfg.Replicas = 1
	}
	if cfg.Partitions <= 0 {
		cfg.Partitions = cfg.Replicas
	}
	if cfg.CkptDir == "" {
		return nil, fmt.Errorf("fleet: harness needs a checkpoint directory")
	}
	table := NewLeaseTable(cfg.Store.HighWater, cfg.Reg)

	sentinels := make([]*quality.Sentinel, cfg.Replicas)
	errs := make([]error, cfg.Replicas)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Replicas; i++ {
		var transport collector.Transport = collector.Direct{Store: cfg.Store}
		if cfg.FaultRate > 0 {
			transport = faults.WrapTransport(transport,
				faults.NewInjector(cfg.ChaosSeed+int64(i), cfg.FaultRate), faults.TransportOptions{})
		}
		var chaos *faults.Injector
		if cfg.ReplicaFaultRate > 0 {
			chaos = faults.NewInjector(cfg.ReplicaChaosSeed+int64(i), cfg.ReplicaFaultRate)
		}
		sentinels[i] = quality.New(quality.Config{}, nil)
		rep := NewReplica(ReplicaConfig{
			ID:              fmt.Sprintf("replica-%d", i),
			Clock:           cfg.Clock,
			Transport:       transport,
			Coord:           table,
			Partitions:      cfg.Partitions,
			PageLimit:       cfg.PageLimit,
			DetailBatch:     cfg.DetailBatch,
			LeaseTTL:        cfg.LeaseTTL,
			CheckpointEvery: cfg.CheckpointEvery,
			CkptDir:         cfg.CkptDir,
			Stall:           cfg.Stall,
			PageDelay:       cfg.PageDelay,
			Chaos:           chaos,
			CrashAfterPages: cfg.CrashAfterPages[i],
			Reg:             cfg.Reg,
			Quality:         sentinels[i],
		})
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = rep.Run()
		}(i)
	}
	wg.Wait()

	st, err := table.State()
	if err != nil {
		return nil, fmt.Errorf("fleet: final state: %w", err)
	}
	if !st.Done() {
		return nil, fmt.Errorf("fleet: incomplete after all replicas exited (errors: %v)", errs)
	}
	merged, stats, err := MergeDir(st, cfg.CkptDir, cfg.DetailLengths, cfg.Reg)
	if err != nil {
		return nil, err
	}
	summaries := make([]quality.LedgerSummary, len(sentinels))
	for i, s := range sentinels {
		summaries[i] = s.LedgerSummary()
	}
	return &HarnessResult{
		Merged:      merged,
		Stats:       stats,
		State:       st,
		Ledger:      quality.AggregateLedgers(summaries...),
		ReplicaErrs: errs,
	}, nil
}

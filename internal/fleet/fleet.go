// Package fleet is the distributed-collection coordination layer: N
// collector replicas divide the explorer's backlog into contiguous
// acceptance-sequence partitions, claim them through a TTL lease table,
// page them down concurrently with the hardened transport, and
// checkpoint per-partition progress so a crashed or partitioned replica
// is survivable — its lease expires, a survivor takes the partition
// over at a higher epoch, resumes from the last checkpoint, and every
// write the stale holder still attempts is fenced off by the epoch
// check.
//
// The paper's dataset took four months of single-process scraping
// (§3.1); the fleet exists to answer the operational question that
// leaves open — how to collect faster than one process allows without
// double-counting or losing bundles when members die. The design is
// the classic lease/fencing protocol (leases carry an epoch; the table
// rejects writes from any (holder, epoch) pair that is not the current
// one), with the repo's standing determinism constraint on top: the
// merged dataset is rebuilt from the deduplicated, sequence-sorted
// union of the partition checkpoints, so it is byte-identical to a
// single-collector run regardless of replica count, fault schedule,
// crashes or takeovers.
//
// Moving parts:
//
//   - LeaseTable — the coordinator state explorerd serves: one lease
//     per partition with holder, epoch, TTL expiry, and the last
//     fenced-accepted checkpoint (cursor + epoch). Expiry is lazy and
//     epoch-fenced: every write validates (holder, epoch, unexpired).
//   - LeaseServer / LeaseClient — the /leasez HTTP surface and its
//     client, so real multi-process fleets coordinate through the same
//     explorerd they scrape.
//   - Replica — the worker loop: claim, page backwards, ingest,
//     fetch length-3 details, checkpoint (atomic snapshot first, then
//     the cursor post), renew per page, and absorb the replica-level
//     fault classes (crash, coordinator partition).
//   - Merge — the deterministic reducer over partition checkpoints.
//   - RunFleet — the in-process harness the chaos acceptance tests and
//     `make fleet` drive.
package fleet

import (
	"errors"
	"fmt"
	"time"
)

// Coordination errors, surfaced identically by the in-process table and
// the HTTP client (the server maps them onto stable error codes).
var (
	// ErrLeaseHeld rejects an acquire while another holder's lease is
	// still live. Not a failure — the claimant moves to another
	// partition and retries after the TTL.
	ErrLeaseHeld = errors.New("fleet: lease held")
	// ErrFenced rejects a renew/checkpoint/release whose (holder,
	// epoch) is no longer current or whose lease has expired — the
	// stale-writer rejection the whole protocol exists for.
	ErrFenced = errors.New("fleet: write fenced")
	// ErrDone rejects an acquire of a completed partition.
	ErrDone = errors.New("fleet: partition complete")
	// ErrNoPlan rejects lease operations before a partition plan exists.
	ErrNoPlan = errors.New("fleet: no partition plan")
	// ErrUnknownPartition rejects operations naming a partition outside
	// the plan.
	ErrUnknownPartition = errors.New("fleet: unknown partition")
)

// ErrCrashed is the terminal status of a replica that suffered an
// injected crash fault (or hit its configured kill point): it stops
// mid-batch without releasing leases, exactly the failure the TTL plus
// checkpoint-resume path absorbs.
var ErrCrashed = errors.New("fleet: replica crashed (injected)")

// errAbandoned is a replica's internal signal that it lost a partition
// (a fenced write after takeover, or a renew rejection): the partition
// belongs to someone else now, the replica moves on.
var errAbandoned = errors.New("fleet: partition abandoned")

// Partition is one contiguous acceptance-sequence range [Lo, Hi]
// (inclusive). A partition with Hi < Lo is empty — legal when the plan
// has more partitions than records.
type Partition struct {
	ID int    `json:"id"`
	Lo uint64 `json:"lo"`
	Hi uint64 `json:"hi"`
}

// Empty reports whether the partition covers no sequences.
func (p Partition) Empty() bool { return p.Hi < p.Lo }

// Plan divides the backlog [1, HighWater] into disjoint contiguous
// partitions whose union is exactly the backlog. The plan is fixed at
// creation: replicas joining later adopt it rather than re-planning.
type Plan struct {
	HighWater  uint64      `json:"high_water"`
	Partitions []Partition `json:"partitions"`
}

// PlanOver splits [1, highWater] into n contiguous partitions of
// near-equal size (partition i covers (H·i/n, H·(i+1)/n]). Every
// sequence belongs to exactly one partition.
func PlanOver(highWater uint64, n int) (Plan, error) {
	if n <= 0 {
		return Plan{}, fmt.Errorf("fleet: plan needs at least one partition, got %d", n)
	}
	pl := Plan{HighWater: highWater, Partitions: make([]Partition, n)}
	for i := 0; i < n; i++ {
		lo := highWater * uint64(i) / uint64(n)
		hi := highWater * uint64(i+1) / uint64(n)
		pl.Partitions[i] = Partition{ID: i, Lo: lo + 1, Hi: hi}
	}
	return pl, nil
}

// Lease is the coordinator's view of one partition: who holds it, at
// which fencing epoch, until when — plus the durable progress record
// (the last accepted checkpoint cursor and the epoch that wrote it,
// which names the checkpoint snapshot a successor resumes from).
type Lease struct {
	Partition Partition `json:"partition"`
	Holder    string    `json:"holder,omitempty"`
	Epoch     uint64    `json:"epoch"`
	// ExpiresUnixMs is the lease deadline on the table's clock (0 when
	// unheld). Clients treat it as informational; the table is the
	// authority on expiry.
	ExpiresUnixMs int64 `json:"expires_unix_ms,omitempty"`
	// Expired reports that the holder's lease has lapsed without a
	// takeover yet (the partition is claimable).
	Expired bool `json:"expired,omitempty"`
	Done    bool `json:"done,omitempty"`

	// Cursor is the last checkpoint's resume cursor: the next page
	// request asks for sequences strictly below it. 0 means no
	// checkpoint yet; a cursor at or below Partition.Lo means the range
	// is fully fetched.
	Cursor uint64 `json:"cursor,omitempty"`
	// CkptEpoch is the epoch whose holder wrote Cursor — and the epoch
	// suffix of the checkpoint snapshot file carrying that progress.
	CkptEpoch uint64 `json:"ckpt_epoch,omitempty"`
	// Records is the record count the checkpoint reported (visibility
	// only).
	Records uint64 `json:"records,omitempty"`
}

// State is the full coordinator view: the plan plus every partition's
// lease, ordered by partition id. The /leasez GET body.
type State struct {
	Plan   Plan    `json:"plan"`
	Leases []Lease `json:"leases"`
}

// Done reports whether every partition is complete.
func (s State) Done() bool {
	if len(s.Leases) == 0 {
		return false
	}
	for i := range s.Leases {
		if !s.Leases[i].Done {
			return false
		}
	}
	return true
}

// Coordinator is the lease protocol a replica speaks — implemented
// in-process by *LeaseTable and over HTTP by *LeaseClient, so the
// harness and a real multi-process fleet run the same replica code.
type Coordinator interface {
	// Plan returns the partition plan, creating it over the current
	// high-water mark on first call. Later calls return the existing
	// plan regardless of n (first caller wins; joiners adopt).
	Plan(n int) (Plan, error)
	// Acquire claims a partition for holder with the given TTL. It
	// succeeds on an unheld or expired lease (bumping the fencing
	// epoch — every grant is a new epoch, so a prior holder of the
	// same name cannot alias its old writes in), and fails with
	// ErrLeaseHeld while another holder's lease is live, or ErrDone
	// once the partition completed.
	Acquire(partition int, holder string, ttl time.Duration) (Lease, error)
	// Renew extends a live lease. Fenced (ErrFenced) when the holder or
	// epoch is stale, or the lease already expired.
	Renew(partition int, holder string, epoch uint64, ttl time.Duration) error
	// Checkpoint durably records progress: the resume cursor and the
	// record count, stamped with the writing epoch. Same fencing as
	// Renew — a post-takeover write from a stale holder is rejected.
	Checkpoint(partition int, holder string, epoch uint64, cursor, records uint64) error
	// Release gives the lease up, optionally marking the partition
	// complete. Same fencing as Renew.
	Release(partition int, holder string, epoch uint64, done bool) error
	// State snapshots the plan and every lease.
	State() (State, error)
}

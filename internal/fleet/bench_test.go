package fleet

import (
	"fmt"
	"testing"
	"time"

	"jitomev/internal/obs"
)

// BenchmarkFleetIngest measures end-to-end fleet throughput — lease
// coordination, backward paging, checkpointing, merge — at growing
// replica counts over the same backlog. The interesting output is
// bundles/s: how much of the paging parallelism survives the
// coordination and merge overhead.
func BenchmarkFleetIngest(b *testing.B) {
	clock := testClock()
	store := fillStore(20_000, clock)
	for _, replicas := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("replicas=%d", replicas), func(b *testing.B) {
			b.ReportAllocs()
			start := time.Now()
			var bundles uint64
			for i := 0; i < b.N; i++ {
				res, err := RunFleet(HarnessConfig{
					Store:      store,
					Clock:      clock,
					Replicas:   replicas,
					Partitions: replicas * 2,
					PageLimit:  500,
					CkptDir:    b.TempDir(),
				})
				if err != nil {
					b.Fatalf("RunFleet: %v", err)
				}
				bundles += res.Stats.Records
			}
			elapsed := time.Since(start).Seconds()
			if elapsed > 0 {
				b.ReportMetric(float64(bundles)/elapsed, "bundles/s")
			}
		})
	}
}

// BenchmarkFleetTakeover measures crash failover: a fleet where one
// replica dies mid-run, timed end to end, reporting the coordinator's
// measured orphaned-partition latency (expiry to takeover).
func BenchmarkFleetTakeover(b *testing.B) {
	clock := testClock()
	store := fillStore(6_000, clock)
	reg := obs.NewRegistry()
	for i := 0; i < b.N; i++ {
		_, err := RunFleet(HarnessConfig{
			Store:           store,
			Clock:           clock,
			Replicas:        3,
			Partitions:      6,
			PageLimit:       200,
			CheckpointEvery: 2,
			LeaseTTL:        50 * time.Millisecond,
			CrashAfterPages: map[int]int{1: 2},
			CkptDir:         b.TempDir(),
			Reg:             reg,
		})
		if err != nil {
			b.Fatalf("RunFleet: %v", err)
		}
	}
	h := reg.Histogram("fleet_takeover_latency_seconds", TakeoverBuckets)
	if n := h.Count(); n > 0 {
		b.ReportMetric(h.Sum()/float64(n)*1000, "takeover-ms")
	}
}

package fleet

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"jitomev/internal/collector"
)

// leasezServer mounts the /leasez endpoints over a fresh table.
func leasezServer(t *testing.T, hw uint64) (*LeaseClient, *LeaseTable) {
	t.Helper()
	table := NewLeaseTable(func() uint64 { return hw }, nil)
	mux := http.NewServeMux()
	for _, ep := range NewLeaseServer(table).Endpoints() {
		mux.Handle(ep.Path, ep.Handler)
	}
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return NewLeaseClient(srv.URL), table
}

// TestLeaseHTTPRoundTrip runs the full coordination protocol through
// the wire: the client must behave identically to the in-process table.
func TestLeaseHTTPRoundTrip(t *testing.T) {
	client, _ := leasezServer(t, 1000)

	// No plan yet: state and acquire map to ErrNoPlan across the wire.
	if _, err := client.State(); !errors.Is(err, ErrNoPlan) {
		t.Fatalf("state before plan: %v, want ErrNoPlan", err)
	}
	if _, err := client.Acquire(0, "a", time.Second); !errors.Is(err, ErrNoPlan) {
		t.Fatalf("acquire before plan: %v, want ErrNoPlan", err)
	}

	pl, err := client.Plan(3)
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	if pl.HighWater != 1000 || len(pl.Partitions) != 3 {
		t.Fatalf("plan = %+v", pl)
	}

	lease, err := client.Acquire(1, "a", time.Second)
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	if lease.Epoch != 1 || lease.Holder != "a" || lease.ExpiresUnixMs == 0 {
		t.Fatalf("lease = %+v", lease)
	}
	if _, err := client.Acquire(1, "b", time.Second); !errors.Is(err, ErrLeaseHeld) {
		t.Fatalf("contended acquire: %v, want ErrLeaseHeld", err)
	}
	if _, err := client.Acquire(42, "a", time.Second); !errors.Is(err, ErrUnknownPartition) {
		t.Fatalf("bogus partition: %v, want ErrUnknownPartition", err)
	}

	if err := client.Renew(1, "a", lease.Epoch, time.Second); err != nil {
		t.Fatalf("renew: %v", err)
	}
	if err := client.Renew(1, "a", lease.Epoch+7, time.Second); !errors.Is(err, ErrFenced) {
		t.Fatalf("stale renew: %v, want ErrFenced", err)
	}
	if err := client.Checkpoint(1, "a", lease.Epoch, 640, 25); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if err := client.Release(1, "a", lease.Epoch, true); err != nil {
		t.Fatalf("release: %v", err)
	}
	if _, err := client.Acquire(1, "b", time.Second); !errors.Is(err, ErrDone) {
		t.Fatalf("acquire done partition: %v, want ErrDone", err)
	}

	st, err := client.State()
	if err != nil {
		t.Fatalf("state: %v", err)
	}
	if len(st.Leases) != 3 || st.Plan.HighWater != 1000 {
		t.Fatalf("state = %+v", st)
	}
	l1 := st.Leases[1]
	if !l1.Done || l1.Cursor != 640 || l1.Records != 25 || l1.CkptEpoch != lease.Epoch {
		t.Fatalf("lease 1 over the wire = %+v", l1)
	}
	if st.Done() {
		t.Fatal("fleet should not be done with partitions 0 and 2 open")
	}
}

func TestLeaseHTTPRejectsBadRequests(t *testing.T) {
	client, table := leasezServer(t, 100)
	if _, err := table.Plan(1); err != nil {
		t.Fatalf("plan: %v", err)
	}

	get := func(path string) *http.Response {
		resp, err := http.Get(client.BaseURL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return resp
	}
	post := func(path, body string) *http.Response {
		resp, err := http.Post(client.BaseURL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		return resp
	}

	// Wrong method on either route.
	if resp := get("/leasez/acquire"); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET on op route: %d", resp.StatusCode)
	}
	if resp := post("/leasez", "{}"); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST on state route: %d", resp.StatusCode)
	}
	// Malformed and over-specified bodies.
	if resp := post("/leasez/acquire", "{not json"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: %d", resp.StatusCode)
	}
	if resp := post("/leasez/acquire", `{"partition":0,"holder":"a","ttl_ms":1000,"bogus":1}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: %d", resp.StatusCode)
	}
	// Unknown op.
	if resp := post("/leasez/frobnicate", "{}"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown op: %d", resp.StatusCode)
	}
}

// TestFleetOverHTTPCoordinator runs a small fleet whose replicas
// coordinate through the wire protocol instead of the in-process table
// — the multi-process deployment shape, minus the processes.
func TestFleetOverHTTPCoordinator(t *testing.T) {
	clock := testClock()
	store := fillStore(1_200, clock)
	client, table := leasezServer(t, store.HighWater())
	_ = table

	ckptDir := t.TempDir()
	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		rep := NewReplica(ReplicaConfig{
			ID:         fmt.Sprintf("wire-replica-%d", i),
			Clock:      clock,
			Transport:  collector.Direct{Store: store},
			Coord:      client,
			Partitions: 4,
			PageLimit:  75,
			CkptDir:    ckptDir,
		})
		go func() { errs <- rep.Run() }()
	}
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("replica: %v", err)
		}
	}

	st, err := client.State()
	if err != nil {
		t.Fatalf("state: %v", err)
	}
	if !st.Done() {
		t.Fatalf("fleet over HTTP did not finish: %+v", st)
	}
	merged, _, err := MergeDir(st, ckptDir, nil, nil)
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	want := saveBytes(t, groundTruth(store, clock))
	if got := saveBytes(t, merged); string(got) != string(want) {
		t.Fatal("HTTP-coordinated merge differs from ground truth")
	}
}

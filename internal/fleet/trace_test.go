package fleet

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"jitomev/internal/collector"
	"jitomev/internal/explorer"
	"jitomev/internal/obs"
)

// TestFleetTraceCrossProcess wires the two-process deployment shape in
// one process: a replica whose transport and lease client inject
// traceparent headers, against a server whose data API and /leasez
// endpoints run under TraceMiddleware on their own tracer. The test
// pins the stitching contract end to end — the replica's recorder holds
// fleet.page traces with the per-hop stage breakdown, the server's
// recorder holds the same trace IDs as remotely-rooted fragments with a
// page cycle's requests (renew + page fetch + details) merged into one
// multi-span trace.
func TestFleetTraceCrossProcess(t *testing.T) {
	clock := testClock()
	store := fillStore(600, clock)

	srvReg := obs.NewRegistry()
	srvTracer := obs.NewTracer(srvReg, obs.TraceConfig{Service: "server", Seed: 3, Capacity: 512})
	table := NewLeaseTable(store.HighWater, nil)
	mux := http.NewServeMux()
	mux.Handle("/", explorer.NewServerObs(store, 0, srvReg))
	for _, ep := range NewLeaseServer(table).Endpoints() {
		mux.Handle(ep.Path, ep.Handler)
	}
	srv := httptest.NewServer(obs.TraceMiddleware(srvTracer, mux))
	defer srv.Close()

	repReg := obs.NewRegistry()
	repTracer := obs.NewTracer(repReg, obs.TraceConfig{
		Service: "replica", Seed: 5, SampleRate: 1, KeepRate: 1, Capacity: 512,
	})
	rep := NewReplica(ReplicaConfig{
		ID:         "traced",
		Clock:      clock,
		Transport:  collector.NewHTTP(srv.URL).WithObs(repReg),
		Coord:      NewLeaseClient(srv.URL),
		Partitions: 4,
		PageLimit:  100,
		CkptDir:    t.TempDir(),
		Reg:        repReg,
	})
	if err := rep.Run(); err != nil {
		t.Fatalf("replica: %v", err)
	}

	// Client side: every page cycle rooted a fleet.page trace; at least
	// one must carry the full stage breakdown — renew and fetch_page
	// stage spans with the wire calls nested under them.
	kept := repTracer.Kept("")
	if len(kept) == 0 {
		t.Fatal("replica recorder is empty at SampleRate=KeepRate=1")
	}
	clientIDs := make(map[string]bool, len(kept))
	var sawPage bool
	for _, kt := range kept {
		clientIDs[kt.TraceID] = true
		if kt.Root != "fleet.page" || len(kt.Spans) < 3 {
			continue
		}
		names := make(map[string]bool, len(kt.Spans))
		spanIDs := make(map[string]bool, len(kt.Spans))
		for _, s := range kt.Spans {
			names[s.Name] = true
			spanIDs[s.SpanID] = true
		}
		for _, s := range kt.Spans {
			if s.ParentSpanID != "" && !spanIDs[s.ParentSpanID] {
				t.Fatalf("trace %s: span %s has unresolved parent %s", kt.TraceID, s.Name, s.ParentSpanID)
			}
		}
		if names["renew"] && names["fetch_page"] {
			sawPage = true
		}
	}
	if !sawPage {
		t.Fatalf("no fleet.page trace with renew+fetch_page stages among %d kept traces", len(kept))
	}

	// Server side: the same traffic, remotely rooted. Fragments of one
	// page cycle merge by trace ID into a multi-span trace whose spans
	// all carry remote parents, and the IDs are the client's — the
	// cross-process stitch.
	var deepest int
	var stitched bool
	for _, kt := range srvTracer.Kept("") {
		if !kt.Remote {
			t.Fatalf("server rooted a local trace %q — it should only extract", kt.Root)
		}
		if clientIDs[kt.TraceID] {
			stitched = true
		}
		if len(kt.Spans) > deepest {
			deepest = len(kt.Spans)
		}
		for _, s := range kt.Spans {
			if !s.RemoteParent {
				t.Fatalf("server span %s in trace %s lost its remote parent", s.Name, kt.TraceID)
			}
		}
	}
	if !stitched {
		t.Fatal("no server-side trace shares a trace ID with the replica's recorder")
	}
	if deepest < 3 {
		t.Fatalf("deepest merged server trace has %d spans, want >= 3 (renew + page + details)", deepest)
	}
}

package fleet

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"jitomev/internal/obs"
)

// fakeClock is a hand-advanced clock for deterministic expiry tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 8, 8, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newTestTable(hw uint64, reg *obs.Registry) (*LeaseTable, *fakeClock) {
	clk := newFakeClock()
	return NewLeaseTable(func() uint64 { return hw }, reg).WithClock(clk.now), clk
}

func TestLeaseLifecycle(t *testing.T) {
	reg := obs.NewRegistry()
	table, clk := newTestTable(1000, reg)

	if _, err := table.Acquire(0, "a", time.Second); !errors.Is(err, ErrNoPlan) {
		t.Fatalf("acquire before plan: %v, want ErrNoPlan", err)
	}
	pl, err := table.Plan(4)
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	if len(pl.Partitions) != 4 || pl.HighWater != 1000 {
		t.Fatalf("plan = %+v", pl)
	}
	// The plan is sticky: a joiner asking for a different split adopts it.
	pl2, err := table.Plan(16)
	if err != nil || len(pl2.Partitions) != 4 {
		t.Fatalf("second plan = %+v, %v", pl2, err)
	}

	lease, err := table.Acquire(0, "a", time.Second)
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	if lease.Epoch != 1 || lease.Holder != "a" {
		t.Fatalf("lease = %+v", lease)
	}
	if _, err := table.Acquire(0, "b", time.Second); !errors.Is(err, ErrLeaseHeld) {
		t.Fatalf("contended acquire: %v, want ErrLeaseHeld", err)
	}
	if _, err := table.Acquire(99, "a", time.Second); !errors.Is(err, ErrUnknownPartition) {
		t.Fatalf("bogus partition: %v, want ErrUnknownPartition", err)
	}

	// Self re-acquire bumps the epoch: a restarted holder must not be
	// able to alias its previous incarnation's writes.
	again, err := table.Acquire(0, "a", time.Second)
	if err != nil {
		t.Fatalf("re-acquire: %v", err)
	}
	if again.Epoch != 2 {
		t.Fatalf("re-acquire epoch = %d, want 2", again.Epoch)
	}
	// The old epoch is fenced on every write path.
	if err := table.Renew(0, "a", 1, time.Second); !errors.Is(err, ErrFenced) {
		t.Fatalf("stale renew: %v, want ErrFenced", err)
	}
	if err := table.Checkpoint(0, "a", 1, 500, 10); !errors.Is(err, ErrFenced) {
		t.Fatalf("stale checkpoint: %v, want ErrFenced", err)
	}
	if err := table.Release(0, "a", 1, false); !errors.Is(err, ErrFenced) {
		t.Fatalf("stale release: %v, want ErrFenced", err)
	}
	for _, op := range fencedOps {
		if v := reg.Value("fleet_writes_fenced_total", "op", op); v != 1 {
			t.Fatalf("fenced[%s] = %v, want 1", op, v)
		}
	}

	// Current epoch works.
	if err := table.Renew(0, "a", 2, time.Second); err != nil {
		t.Fatalf("renew: %v", err)
	}
	if err := table.Checkpoint(0, "a", 2, 750, 250); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}

	// Expiry: half a TTL is fine, past it every write is fenced and the
	// lapse counts exactly once.
	clk.advance(2 * time.Second)
	if err := table.Renew(0, "a", 2, time.Second); !errors.Is(err, ErrFenced) {
		t.Fatalf("expired renew: %v, want ErrFenced", err)
	}
	if err := table.Checkpoint(0, "a", 2, 800, 300); !errors.Is(err, ErrFenced) {
		t.Fatalf("expired checkpoint: %v, want ErrFenced", err)
	}
	if v := reg.Value("fleet_leases_expired_total"); v != 1 {
		t.Fatalf("expired = %v, want 1 (lazy expiry counts each lapse once)", v)
	}

	// Takeover: a different holder claims the lapsed partition, epoch
	// bumps, latency lands in the histogram, checkpoint state survives.
	taken, err := table.Acquire(0, "b", time.Second)
	if err != nil {
		t.Fatalf("takeover acquire: %v", err)
	}
	if taken.Epoch != 3 || taken.Holder != "b" {
		t.Fatalf("takeover lease = %+v", taken)
	}
	if taken.Cursor != 750 || taken.Records != 250 || taken.CkptEpoch != 2 {
		t.Fatalf("takeover lost checkpoint state: %+v", taken)
	}
	if v := reg.Value("fleet_leases_takeovers_total"); v != 1 {
		t.Fatalf("takeovers = %v, want 1", v)
	}
	if n := reg.Histogram("fleet_takeover_latency_seconds", TakeoverBuckets).Count(); n != 1 {
		t.Fatalf("takeover latency count = %d, want 1", n)
	}

	// Done: release(done) finishes the partition for good.
	if err := table.Release(0, "b", 3, true); err != nil {
		t.Fatalf("release: %v", err)
	}
	if _, err := table.Acquire(0, "a", time.Second); !errors.Is(err, ErrDone) {
		t.Fatalf("acquire done partition: %v, want ErrDone", err)
	}
	if v := reg.Value("fleet_partitions_done"); v != 1 {
		t.Fatalf("partitions done gauge = %v, want 1", v)
	}

	st, err := table.State()
	if err != nil {
		t.Fatalf("state: %v", err)
	}
	if len(st.Leases) != 4 || !st.Leases[0].Done || st.Done() {
		t.Fatalf("state = %+v", st)
	}
}

// TestLeaseMutualExclusionRace hammers one partition with concurrent
// claimants under -race: at most one holder may ever be inside the
// critical section, across expiries and takeovers.
func TestLeaseMutualExclusionRace(t *testing.T) {
	table := NewLeaseTable(func() uint64 { return 100 }, nil)
	if _, err := table.Plan(1); err != nil {
		t.Fatalf("plan: %v", err)
	}

	var inside int32
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			holder := fmt.Sprintf("worker-%d", w)
			for i := 0; i < 50; i++ {
				lease, err := table.Acquire(0, holder, 500*time.Millisecond)
				if err != nil {
					continue
				}
				if n := atomic.AddInt32(&inside, 1); n != 1 {
					t.Errorf("%d holders in critical section", n)
				}
				time.Sleep(time.Millisecond)
				atomic.AddInt32(&inside, -1)
				if err := table.Release(0, holder, lease.Epoch, false); err != nil &&
					!errors.Is(err, ErrFenced) {
					t.Errorf("release: %v", err)
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestLeaseExpiryRaceUnderContention runs claimants against a tiny real
// TTL so expiry, takeover, and fencing all fire concurrently; the
// invariant is that every fenced writer really had lost its lease (a
// successful checkpoint always carries the table's current epoch).
func TestLeaseExpiryRaceUnderContention(t *testing.T) {
	reg := obs.NewRegistry()
	table := NewLeaseTable(func() uint64 { return 1000 }, reg)
	if _, err := table.Plan(2); err != nil {
		t.Fatalf("plan: %v", err)
	}

	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			holder := fmt.Sprintf("racer-%d", w)
			for i := 0; i < 40; i++ {
				part := i % 2
				lease, err := table.Acquire(part, holder, 2*time.Millisecond)
				if err != nil {
					continue
				}
				// Outlive the TTL half the time so takeovers happen.
				if i%2 == 0 {
					time.Sleep(5 * time.Millisecond)
				}
				err = table.Checkpoint(part, holder, lease.Epoch, uint64(i), uint64(i))
				if err != nil && !errors.Is(err, ErrFenced) {
					t.Errorf("checkpoint: %v", err)
				}
			}
		}(w)
	}
	wg.Wait()

	if v := reg.Value("fleet_leases_expired_total"); v < 1 {
		t.Fatalf("expired = %v, want some under 2ms TTLs", v)
	}
	fenced := 0.0
	for _, op := range fencedOps {
		fenced += reg.Value("fleet_writes_fenced_total", "op", op)
	}
	if fenced < 1 {
		t.Fatalf("no writes fenced under contention")
	}
}

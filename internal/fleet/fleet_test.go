package fleet

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"testing"
	"time"

	"jitomev/internal/collector"
	"jitomev/internal/explorer"
	"jitomev/internal/faults"
	"jitomev/internal/jito"
	"jitomev/internal/obs"
	"jitomev/internal/quality"
	"jitomev/internal/solana"
)

// testClock is the study clock every fleet test shares.
func testClock() solana.Clock {
	return solana.Clock{Genesis: time.Date(2025, 2, 9, 0, 0, 0, 0, time.UTC)}
}

// synthAccepted builds a deterministic accepted bundle for seq: mostly
// length 1, length 3 every 36th, a sprinkle of 2/4/5 — enough shape
// that the merged dataset exercises every aggregate. Length-3 bundles
// carry full details (the store retains those, like the real feed).
func synthAccepted(seq uint64, clock solana.Clock) *jito.Accepted {
	h := seq*0x9e3779b97f4a7c15 + 0xfee7
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27

	length := 1
	switch {
	case seq%36 == 0:
		length = 3
	case seq%97 == 0:
		length = 2
	case seq%131 == 0:
		length = 4
	case seq%191 == 0:
		length = 5
	}
	// ~720 bundles per study day, so a few-thousand-record store spans
	// several days and the ledger aggregation has structure to sum.
	slot := solana.Slot(seq * 300)
	rec := jito.BundleRecord{
		Seq:      seq,
		Slot:     slot,
		UnixMs:   clock.TimeOf(slot).UnixMilli(),
		TipLamps: 3_000 + h%200_000,
	}
	rec.TxIDs = make([]solana.Signature, length)
	for i := range rec.TxIDs {
		binary.LittleEndian.PutUint64(rec.TxIDs[i][:8], seq)
		rec.TxIDs[i][8] = byte(i)
	}
	sum := sha256.Sum256(rec.TxIDs[0][:])
	copy(rec.ID[:], sum[:])

	acc := &jito.Accepted{Record: rec}
	if length == 3 {
		acc.Details = make([]jito.TxDetail, length)
		for i := range acc.Details {
			acc.Details[i] = jito.TxDetail{
				Sig:         rec.TxIDs[i],
				Slot:        slot,
				TipLamports: rec.TipLamps,
				TokenDeltas: []jito.TokenDelta{{Delta: int64(seq%50) - 25}},
			}
		}
	}
	return acc
}

// fillStore populates a store with n synthetic bundles, Seq 1..n.
func fillStore(n int, clock solana.Clock) *explorer.Store {
	store := explorer.NewStore()
	for seq := 1; seq <= n; seq++ {
		acc := synthAccepted(uint64(seq), clock)
		store.Accept(clock.DayOf(acc.Record.Slot), acc)
	}
	return store
}

// groundTruth is what a single collector ingesting the whole store in
// acceptance order would hold — the byte-identity reference.
func groundTruth(store *explorer.Store, clock solana.Clock) *collector.Dataset {
	ds := collector.NewDataset(clock, 64)
	for _, rec := range store.All() {
		ds.Ingest(rec)
	}
	for i := range ds.Len3 {
		for _, d := range store.TxDetails(ds.Len3[i].TxIDs) {
			ds.Details[d.Sig] = d
		}
	}
	return ds
}

// saveBytes renders a dataset's canonical snapshot bytes.
func saveBytes(t testing.TB, ds *collector.Dataset) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := ds.Save(&buf); err != nil {
		t.Fatalf("save: %v", err)
	}
	return buf.Bytes()
}

func TestPlanOverCoversBacklogExactly(t *testing.T) {
	for _, tc := range []struct {
		hw uint64
		n  int
	}{{1000, 4}, {7, 3}, {5, 8}, {1, 1}, {0, 4}} {
		pl, err := PlanOver(tc.hw, tc.n)
		if err != nil {
			t.Fatalf("PlanOver(%d,%d): %v", tc.hw, tc.n, err)
		}
		if len(pl.Partitions) != tc.n {
			t.Fatalf("PlanOver(%d,%d): %d partitions", tc.hw, tc.n, len(pl.Partitions))
		}
		covered := make(map[uint64]int)
		for i, p := range pl.Partitions {
			if p.ID != i {
				t.Fatalf("partition %d has ID %d", i, p.ID)
			}
			for s := p.Lo; s <= p.Hi && !p.Empty(); s++ {
				covered[s]++
			}
		}
		for s := uint64(1); s <= tc.hw; s++ {
			if covered[s] != 1 {
				t.Fatalf("PlanOver(%d,%d): seq %d covered %d times", tc.hw, tc.n, s, covered[s])
			}
		}
		if uint64(len(covered)) != tc.hw {
			t.Fatalf("PlanOver(%d,%d): covered %d seqs", tc.hw, tc.n, len(covered))
		}
	}
	if _, err := PlanOver(100, 0); err == nil {
		t.Fatal("PlanOver with 0 partitions should fail")
	}
}

func TestFleetSingleReplicaMatchesGroundTruth(t *testing.T) {
	clock := testClock()
	store := fillStore(2_500, clock)
	res, err := RunFleet(HarnessConfig{
		Store:     store,
		Clock:     clock,
		Replicas:  1,
		PageLimit: 100,
		CkptDir:   t.TempDir(),
	})
	if err != nil {
		t.Fatalf("RunFleet: %v", err)
	}
	want := saveBytes(t, groundTruth(store, clock))
	got := saveBytes(t, res.Merged)
	if !bytes.Equal(got, want) {
		t.Fatalf("single-replica merged snapshot differs from ground truth (%d vs %d bytes)", len(got), len(want))
	}
	if res.Stats.Deduped != 0 {
		t.Fatalf("clean single-replica run deduped %d records", res.Stats.Deduped)
	}
	if res.Ledger.NewBundles != uint64(store.Len()) {
		t.Fatalf("ledger NewBundles = %d, store holds %d", res.Ledger.NewBundles, store.Len())
	}
}

// TestFleetChaosCrashByteIdentical is the acceptance test: four
// replicas over a 10% transport-fault schedule, one killed mid-run,
// short TTLs forcing a real takeover — and the merged dataset must be
// byte-identical to the single-collector ground truth.
func TestFleetChaosCrashByteIdentical(t *testing.T) {
	clock := testClock()
	store := fillStore(3_000, clock)
	reg := obs.NewRegistry()
	res, err := RunFleet(HarnessConfig{
		Store:           store,
		Clock:           clock,
		Replicas:        4,
		Partitions:      8,
		PageLimit:       100,
		CheckpointEvery: 2,
		LeaseTTL:        150 * time.Millisecond,
		PageDelay:       2 * time.Millisecond,
		FaultRate:       0.10,
		ChaosSeed:       7,
		CrashAfterPages: map[int]int{1: 3},
		CkptDir:         t.TempDir(),
		Reg:             reg,
	})
	if err != nil {
		t.Fatalf("RunFleet: %v", err)
	}
	if got := res.Crashed(); got != 1 {
		t.Fatalf("crashed replicas = %d, want exactly the injected kill", got)
	}
	want := saveBytes(t, groundTruth(store, clock))
	got := saveBytes(t, res.Merged)
	if !bytes.Equal(got, want) {
		t.Fatalf("chaos+crash merged snapshot differs from ground truth (%d vs %d bytes)", len(got), len(want))
	}
	// The kill left a lease to expire and a survivor to take the
	// partition over at a higher epoch.
	if v := reg.Value("fleet_leases_expired_total"); v < 1 {
		t.Fatalf("fleet_leases_expired_total = %v, want >= 1", v)
	}
	if v := reg.Value("fleet_leases_takeovers_total"); v < 1 {
		t.Fatalf("fleet_leases_takeovers_total = %v, want >= 1", v)
	}
	// The coverage ledger aggregates every replica's feed: at least
	// the whole backlog landed (the crashed replica's re-fetched pages
	// may count twice), spread over the study days.
	if res.Ledger.NewBundles < uint64(store.Len()) {
		t.Fatalf("aggregated ledger NewBundles = %d, backlog is %d", res.Ledger.NewBundles, store.Len())
	}
	if len(res.Ledger.Days) < 2 {
		t.Fatalf("aggregated ledger has %d day windows, want several", len(res.Ledger.Days))
	}
	if res.Ledger.PollsOK == 0 || res.Ledger.PollsOK != sumPollsOK(res.Ledger.Days) {
		t.Fatalf("ledger totals inconsistent: PollsOK=%d days=%v", res.Ledger.PollsOK, res.Ledger.Days)
	}
}

func sumPollsOK(days []quality.DayWindow) uint64 {
	var n uint64
	for _, d := range days {
		n += d.PollsOK
	}
	return n
}

// TestFleetReplicaCountInvariance: the merged bytes must not depend on
// the fleet shape — 1, 2 and 4 replicas over the same store agree.
func TestFleetReplicaCountInvariance(t *testing.T) {
	clock := testClock()
	store := fillStore(1_800, clock)
	var first []byte
	for _, n := range []int{1, 2, 4} {
		res, err := RunFleet(HarnessConfig{
			Store:     store,
			Clock:     clock,
			Replicas:  n,
			PageLimit: 90,
			CkptDir:   t.TempDir(),
		})
		if err != nil {
			t.Fatalf("RunFleet(%d): %v", n, err)
		}
		b := saveBytes(t, res.Merged)
		if first == nil {
			first = b
			continue
		}
		if !bytes.Equal(b, first) {
			t.Fatalf("%d-replica merge differs from 1-replica merge", n)
		}
	}
}

// partitionSeed searches the deterministic schedule space for a seed
// where replica 0 draws a coordinator partition early and neither
// replica draws a crash within the run's fault-draw horizon — so the
// test exercises exactly the stalled-writer path, every time.
func partitionSeed(t *testing.T, replicas int, rate float64, horizon uint64) int64 {
	t.Helper()
	for s := int64(1); s < 50_000; s++ {
		ok, sawPartition := true, false
		for i := 0; i < replicas && ok; i++ {
			sched := faults.Schedule{Seed: s + int64(i), Rate: rate}
			for idx := uint64(0); idx < horizon; idx++ {
				switch sched.At(idx, faults.ReplicaMask) {
				case faults.ClassCrash:
					ok = false
				case faults.ClassPartition:
					if i == 0 && idx < 3 {
						sawPartition = true
					}
				}
				if !ok {
					break
				}
			}
		}
		if ok && sawPartition {
			return s
		}
	}
	t.Fatal("no suitable partition-fault seed in search space")
	return 0
}

// TestFleetPartitionFaultIsFenced injects a coordinator partition: the
// replica stalls past its TTL, stops renewing, and its next write must
// be rejected by the epoch/expiry fence — after which the fleet still
// converges to the byte-identical merged dataset.
func TestFleetPartitionFaultIsFenced(t *testing.T) {
	const rate = 0.05
	seed := partitionSeed(t, 2, rate, 120)
	clock := testClock()
	store := fillStore(1_200, clock)
	reg := obs.NewRegistry()
	res, err := RunFleet(HarnessConfig{
		Store:            store,
		Clock:            clock,
		Replicas:         2,
		Partitions:       4,
		PageLimit:        100,
		CheckpointEvery:  2,
		LeaseTTL:         100 * time.Millisecond,
		PageDelay:        time.Millisecond,
		ReplicaFaultRate: rate,
		ReplicaChaosSeed: seed,
		CkptDir:          t.TempDir(),
		Reg:              reg,
	})
	if err != nil {
		t.Fatalf("RunFleet: %v", err)
	}
	if res.Crashed() != 0 {
		t.Fatalf("seed search promised no crashes, got %v", res.ReplicaErrs)
	}
	fenced := 0.0
	for _, op := range fencedOps {
		fenced += reg.Value("fleet_writes_fenced_total", "op", op)
	}
	if fenced < 1 {
		t.Fatal("stalled writer was never fenced")
	}
	if v := reg.Value("fleet_replica_stalls_total", "replica", "replica-0"); v < 1 {
		t.Fatalf("replica-0 stalls = %v, want >= 1", v)
	}
	want := saveBytes(t, groundTruth(store, clock))
	if got := saveBytes(t, res.Merged); !bytes.Equal(got, want) {
		t.Fatal("post-partition merged snapshot differs from ground truth")
	}
}

func TestMergeDedupsOverlappingInputs(t *testing.T) {
	clock := testClock()
	store := fillStore(600, clock)
	all := store.All()

	build := func(lo, hi int) *collector.Dataset {
		ds := collector.NewDataset(clock, 64)
		ds.RetainLengths(1, 2, 4, 5)
		for _, rec := range all[lo:hi] {
			ds.Ingest(rec)
		}
		for i := range ds.Len3 {
			for _, d := range store.TxDetails(ds.Len3[i].TxIDs) {
				ds.Details[d.Sig] = d
			}
		}
		return ds
	}
	// Overlapping halves: records 200..400 appear in both inputs.
	a, b := build(0, 400), build(200, 600)
	merged, stats, err := Merge([]*collector.Dataset{a, b}, nil, nil)
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if stats.Deduped != 200 {
		t.Fatalf("Deduped = %d, want 200", stats.Deduped)
	}
	want := saveBytes(t, groundTruth(store, clock))
	if got := saveBytes(t, merged); !bytes.Equal(got, want) {
		t.Fatalf("overlapping merge differs from ground truth")
	}
}

func TestMergeRefusesGenesisMismatch(t *testing.T) {
	a := collector.NewDataset(testClock(), 64)
	b := collector.NewDataset(solana.Clock{Genesis: time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)}, 64)
	if _, _, err := Merge([]*collector.Dataset{a, b}, nil, nil); err == nil {
		t.Fatal("merging datasets from different studies should fail")
	}
	if _, _, err := Merge(nil, nil, nil); err == nil {
		t.Fatal("merging zero inputs should fail")
	}
}

func TestMergeDirRefusesIncompleteFleet(t *testing.T) {
	st := State{Leases: []Lease{
		{Partition: Partition{ID: 0, Lo: 1, Hi: 10}, Done: true},
		{Partition: Partition{ID: 1, Lo: 11, Hi: 20}, Holder: "replica-1", Cursor: 15},
	}}
	if _, _, err := MergeDir(st, t.TempDir(), nil, nil); err == nil {
		t.Fatal("merging an incomplete fleet should fail")
	}
}

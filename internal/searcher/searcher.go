// Package searcher implements the attacker side of the measurement: MEV
// bots that watch pending transactions (through whatever mempool
// visibility they have), size a front-run against each victim's slippage
// tolerance, and submit three-transaction Jito bundles that execute the
// sandwich atomically.
//
// The bot's tip policy reflects the paper's Figure 4 finding: attackers
// bid a substantial share of expected profit as the Jito tip (median
// sandwich tip >2,000,000 lamports, three orders of magnitude above the
// median length-3 bundle) to win the ordering auction against competing
// attackers.
package searcher

import (
	"math/rand"

	"jitomev/internal/amm"
	"jitomev/internal/jito"
	"jitomev/internal/ledger"
	"jitomev/internal/mempool"
	"jitomev/internal/solana"
)

// Attack is the simulation-side ground-truth record of one submitted
// sandwich bundle, used to score the detector.
type Attack struct {
	BundleID      jito.BundleID
	VictimSig     solana.Signature
	PlannedProfit int64 // lamport-equivalent planned trade profit
	TipLamports   solana.Lamports
	Disguised     bool // padded with an extra transaction to evade A-B-A detectors
}

// Sandwicher is one attacking searcher.
type Sandwicher struct {
	Keys *solana.Keypair
	// Coverage is the fraction of private-mempool traffic this searcher
	// observes (ignored under public visibility).
	Coverage float64
	// Budget is the maximum wSOL (base units) risked per front-run.
	Budget uint64
	// MinProfit is the lamport profit floor, net of tip, below which the
	// bot passes on an opportunity.
	MinProfit int64
	// TipShare is the mean fraction of planned profit bid as the Jito
	// tip; the realized tip is jittered per attack.
	TipShare float64
	// DisguiseRate is the probability of appending a decoy transaction,
	// turning the bundle into length 4 — invisible to the paper's
	// length-3 detector (its acknowledged lower-bound gap).
	DisguiseRate float64

	// DumpRate is the probability the back-run also liquidates held
	// inventory: the bot sells more tokens than the front-run bought,
	// riding the victim's price impact. This is the paper's footnote-7
	// observation ("the attacker sells more in the last transaction of
	// the Sandwich than what they bought in the first") and the reason
	// measured attacker gains exceed measured victim losses.
	DumpRate float64
	// DumpMax bounds the extra inventory sold, as a fraction of the
	// front-run output.
	DumpMax float64

	// PriceOf converts one base unit of a mint to lamports, for sizing
	// tips on sandwiches whose input side is not SOL (the paper's 28%
	// of attacks with no SOL leg). Nil treats profits as lamports.
	PriceOf func(mint solana.Pubkey) float64

	// Preflight dry-runs each attack bundle through the block engine's
	// Simulate (Jito's simulateBundle equivalent) before claiming the
	// victim; plans invalidated by pool state that moved since quoting
	// are dropped instead of submitted and atomically rejected.
	Preflight bool

	rng   *rand.Rand
	nonce uint64
}

// New creates a sandwicher with its own deterministic randomness stream.
func New(seed string, coverage float64, budget uint64, minProfit int64, tipShare float64, rng *rand.Rand) *Sandwicher {
	return &Sandwicher{
		Keys:      solana.NewKeypairFromSeed("searcher/" + seed),
		Coverage:  coverage,
		Budget:    budget,
		MinProfit: minProfit,
		TipShare:  tipShare,
		rng:       rand.New(rand.NewSource(rng.Int63())),
	}
}

func (s *Sandwicher) nextNonce() uint64 {
	s.nonce++
	return s.nonce
}

// victimSwap extracts the first swap instruction of a pending transaction,
// or nil if it has none (nothing to sandwich).
func victimSwap(tx *solana.Transaction) *solana.Swap {
	for _, in := range tx.Instructions {
		if sw, ok := in.(*solana.Swap); ok {
			return sw
		}
	}
	return nil
}

// Scan observes the mempool, plans sandwiches against every visible
// profitable victim, claims those victims out of the pool, and submits the
// attack bundles. It returns ground-truth records for each submitted
// bundle.
//
// Scan is the simulated analogue of the continuous loop a real searcher
// runs against its private mempool feed.
func (s *Sandwicher) Scan(mp *mempool.Pool, bank *ledger.Bank, engine *jito.BlockEngine) []Attack {
	var attacks []Attack
	for _, pd := range mp.Observe(s.Keys.Pubkey(), s.Coverage) {
		sw := victimSwap(pd.Tx)
		if sw == nil {
			continue
		}
		pool, ok := bank.PoolSnapshot(sw.Pool)
		if !ok {
			continue
		}
		plan, ok := amm.PlanSandwich(pool, sw.InputMint, sw.AmountIn, sw.MinOut, s.Budget)
		if !ok {
			continue
		}
		profitLamports := plan.Profit
		if s.PriceOf != nil {
			if px := s.PriceOf(sw.InputMint); px > 0 {
				profitLamports = int64(float64(plan.Profit) * px)
			}
		}
		tip := s.tipFor(profitLamports)
		if profitLamports-int64(tip) < s.MinProfit {
			continue
		}
		bundle, disguised := s.buildBundle(sw, plan, pd.Tx, tip)
		if s.Preflight {
			if _, err := engine.Simulate(bundle); err != nil {
				continue // plan went stale; victim stays in the pool
			}
		}
		// Claim the victim: it will ride inside our bundle instead of
		// landing natively.
		if !mp.Remove(pd.Tx.Sig) {
			continue // another searcher got there first
		}
		if err := engine.Submit(bundle); err != nil {
			continue
		}
		attacks = append(attacks, Attack{
			BundleID:      bundle.ID(),
			VictimSig:     pd.Tx.Sig,
			PlannedProfit: profitLamports,
			TipLamports:   tip,
			Disguised:     disguised,
		})
	}
	return attacks
}

// tipFor converts planned profit into a tip bid: a jittered share of
// profit, floored at the Jito minimum and capped below the profit itself
// so the attack stays rational.
func (s *Sandwicher) tipFor(profit int64) solana.Lamports {
	share := s.TipShare * (0.6 + 0.8*s.rng.Float64()) // ±40% jitter
	tip := int64(float64(profit) * share)
	if tip < int64(solana.MinJitoTip) {
		tip = int64(solana.MinJitoTip)
	}
	if tip >= profit {
		tip = profit - 1
	}
	if tip < int64(solana.MinJitoTip) {
		tip = int64(solana.MinJitoTip)
	}
	return solana.Lamports(tip)
}

// buildBundle assembles [front-run, victim, back-run] and, with
// probability DisguiseRate, appends a decoy memo transaction.
func (s *Sandwicher) buildBundle(sw *solana.Swap, plan amm.Plan, victim *solana.Transaction, tip solana.Lamports) (*jito.Bundle, bool) {
	tipAcct := jito.TipAccounts[s.rng.Intn(jito.NumTipAccounts)]
	front := solana.NewTransaction(s.Keys, s.nextNonce(), 0,
		&solana.Swap{Pool: sw.Pool, InputMint: sw.InputMint, AmountIn: plan.FrontrunIn},
		&solana.Tip{TipAccount: tipAcct, Amount: tip},
	)
	backIn := plan.BackrunIn
	// Inventory dumps only happen when the back-run SELLS tokens for the
	// quote currency (buy-side sandwich): the bot liquidates held tokens
	// at the victim-elevated price. On sell-side sandwiches the back-run
	// spends quote currency, and no rational bot spends extra there.
	buySide := s.PriceOf == nil || s.PriceOf(sw.InputMint) == 1
	if buySide && s.DumpRate > 0 && s.rng.Float64() < s.DumpRate {
		backIn += uint64(float64(plan.BackrunIn) * s.DumpMax * s.rng.Float64())
	}
	back := solana.NewTransaction(s.Keys, s.nextNonce(), 0,
		&solana.Swap{Pool: sw.Pool, InputMint: plan.OutputMint, AmountIn: backIn},
	)

	txs := []*solana.Transaction{front, victim, back}
	disguised := s.rng.Float64() < s.DisguiseRate
	if disguised {
		decoy := solana.NewTransaction(s.Keys, s.nextNonce(), 0,
			&solana.Memo{Data: []byte("gm")})
		txs = append(txs, decoy)
	}
	return jito.NewBundle(txs...), disguised
}

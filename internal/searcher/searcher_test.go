package searcher

import (
	"math/rand"
	"testing"
	"time"

	"jitomev/internal/amm"
	"jitomev/internal/core"
	"jitomev/internal/jito"
	"jitomev/internal/ledger"
	"jitomev/internal/mempool"
	"jitomev/internal/solana"
	"jitomev/internal/token"
)

type world struct {
	bank   *ledger.Bank
	engine *jito.BlockEngine
	mp     *mempool.Pool
	pool   *amm.Pool
	meme   token.Mint
	victim *solana.Keypair
}

func newWorld(t testing.TB, visibility mempool.Visibility) *world {
	t.Helper()
	w := &world{
		bank:   ledger.NewBank(),
		mp:     mempool.New(visibility),
		victim: solana.NewKeypairFromSeed("victim"),
	}
	reg := token.NewRegistry()
	w.meme = reg.NewMemecoin("MEME")
	w.pool = amm.New(w.meme.Address, token.SOL.Address, 1e13, 1e13, amm.DefaultFeeBps)
	w.bank.AddPool(w.pool)
	w.engine = jito.NewBlockEngine(w.bank, solana.Clock{Genesis: time.Unix(0, 0)})

	w.bank.CreditLamports(w.victim.Pubkey(), 1000*solana.LamportsPerSOL)
	w.bank.MintTo(w.victim.Pubkey(), token.SOL.Address, 1e13)
	return w
}

func (w *world) fund(s *Sandwicher) {
	w.bank.CreditLamports(s.Keys.Pubkey(), 1000*solana.LamportsPerSOL)
	w.bank.MintTo(s.Keys.Pubkey(), token.SOL.Address, 1e13)
	w.bank.MintTo(s.Keys.Pubkey(), w.meme.Address, 1e13)
}

// victimTx submits a juicy victim swap into the mempool.
func (w *world) victimTx(nonce uint64, in uint64, slippageBps uint64) *solana.Transaction {
	quote, _ := w.pool.QuoteOut(token.SOL.Address, in)
	minOut := quote * (10_000 - slippageBps) / 10_000
	tx := solana.NewTransaction(w.victim, nonce, 0,
		&solana.Swap{Pool: w.pool.Address, InputMint: token.SOL.Address, AmountIn: in, MinOut: minOut})
	w.mp.Add(tx, 0)
	return tx
}

func newBot(seed string, coverage float64) *Sandwicher {
	return New(seed, coverage, 1<<42, 10_000, 0.5, rand.New(rand.NewSource(1)))
}

func TestScanAttacksProfitableVictim(t *testing.T) {
	w := newWorld(t, mempool.VisibilityPublic)
	bot := newBot("bot", 1)
	w.fund(bot)
	victimTx := w.victimTx(1, 200_000_000_000, 500) // 2% of pool, 5% slippage

	attacks := bot.Scan(w.mp, w.bank, w.engine)
	if len(attacks) != 1 {
		t.Fatalf("attacks = %d", len(attacks))
	}
	if attacks[0].VictimSig != victimTx.Sig {
		t.Error("wrong victim")
	}
	if attacks[0].PlannedProfit <= 0 {
		t.Error("non-positive planned profit")
	}
	if attacks[0].TipLamports < solana.MinJitoTip {
		t.Error("tip below minimum")
	}
	if w.mp.Len() != 0 {
		t.Error("victim not claimed from mempool")
	}
	if w.engine.PendingCount() != 1 {
		t.Error("bundle not submitted")
	}
}

func TestAttackLandsAndIsDetected(t *testing.T) {
	w := newWorld(t, mempool.VisibilityPublic)
	bot := newBot("bot", 1)
	w.fund(bot)
	w.victimTx(1, 200_000_000_000, 500)

	attacks := bot.Scan(w.mp, w.bank, w.engine)
	if len(attacks) != 1 {
		t.Fatal("no attack")
	}
	acc := w.engine.ProcessSlot(1)
	if len(acc) != 1 {
		t.Fatal("attack bundle did not land")
	}
	v := core.NewDefaultDetector().Detect(&acc[0].Record, acc[0].Details)
	if !v.Sandwich {
		t.Fatalf("searcher's own bundle not detected as sandwich: %v", v.Failed)
	}
	if v.Attacker != bot.Keys.Pubkey() {
		t.Error("attacker attribution wrong")
	}
	// Realized gain equals the plan (same pool state).
	if int64(v.AttackerGainLamports) != attacks[0].PlannedProfit {
		t.Errorf("realized %v != planned %d", v.AttackerGainLamports, attacks[0].PlannedProfit)
	}
	if acc[0].Record.Tip() != attacks[0].TipLamports {
		t.Error("tip mismatch")
	}
}

func TestScanSkipsUnprofitableVictims(t *testing.T) {
	w := newWorld(t, mempool.VisibilityPublic)
	bot := newBot("bot", 1)
	w.fund(bot)
	w.victimTx(1, 1_000_000, 10) // tiny trade, tight slippage

	if attacks := bot.Scan(w.mp, w.bank, w.engine); len(attacks) != 0 {
		t.Fatalf("attacked an unprofitable victim: %+v", attacks)
	}
	if w.mp.Len() != 1 {
		t.Error("unprofitable victim was claimed anyway")
	}
}

func TestScanSkipsNonSwapTxs(t *testing.T) {
	w := newWorld(t, mempool.VisibilityPublic)
	bot := newBot("bot", 1)
	w.fund(bot)
	tx := solana.NewTransaction(w.victim, 1, 0, &solana.Memo{Data: []byte("hi")})
	w.mp.Add(tx, 0)
	if attacks := bot.Scan(w.mp, w.bank, w.engine); len(attacks) != 0 {
		t.Fatal("attacked a non-swap transaction")
	}
}

func TestScanRespectsVisibility(t *testing.T) {
	w := newWorld(t, mempool.VisibilityLeaderOnly)
	bot := newBot("bot", 1)
	w.fund(bot)
	w.victimTx(1, 200_000_000_000, 500)
	if attacks := bot.Scan(w.mp, w.bank, w.engine); len(attacks) != 0 {
		t.Fatal("attacked despite leader-only visibility (stock Solana)")
	}
}

func TestPartialCoverageSeesFewerVictims(t *testing.T) {
	wFull := newWorld(t, mempool.VisibilityPrivate)
	wHalf := newWorld(t, mempool.VisibilityPrivate)

	botFull := newBot("bot", 1)
	botHalf := newBot("bot", 0.3)
	wFull.fund(botFull)
	wHalf.fund(botHalf)

	for i := uint64(0); i < 60; i++ {
		wFull.victimTx(i+1, 50_000_000_000, 500)
		wHalf.victimTx(i+1, 50_000_000_000, 500)
	}
	full := len(botFull.Scan(wFull.mp, wFull.bank, wFull.engine))
	half := len(botHalf.Scan(wHalf.mp, wHalf.bank, wHalf.engine))
	if full == 0 {
		t.Fatal("full-coverage bot found nothing")
	}
	if half >= full {
		t.Errorf("30%% coverage found %d >= full coverage %d", half, full)
	}
}

func TestTwoBotsDoNotDoubleClaim(t *testing.T) {
	w := newWorld(t, mempool.VisibilityPublic)
	a := newBot("a", 1)
	b := newBot("b", 1)
	w.fund(a)
	w.fund(b)
	w.victimTx(1, 200_000_000_000, 500)

	attacks := append(a.Scan(w.mp, w.bank, w.engine), b.Scan(w.mp, w.bank, w.engine)...)
	if len(attacks) != 1 {
		t.Fatalf("victim claimed %d times", len(attacks))
	}
}

func TestTipForBounds(t *testing.T) {
	bot := newBot("bot", 1)
	for _, profit := range []int64{1_001, 10_000, 1_000_000, 5_000_000_000} {
		tip := bot.tipFor(profit)
		if tip < solana.MinJitoTip {
			t.Errorf("profit %d: tip %d below minimum", profit, tip)
		}
		if int64(tip) >= profit && profit > int64(solana.MinJitoTip) {
			t.Errorf("profit %d: tip %d not below profit", profit, tip)
		}
	}
}

func TestDisguisedBundlesAreLength4(t *testing.T) {
	w := newWorld(t, mempool.VisibilityPublic)
	bot := newBot("bot", 1)
	bot.DisguiseRate = 1.0
	w.fund(bot)
	w.victimTx(1, 200_000_000_000, 500)

	attacks := bot.Scan(w.mp, w.bank, w.engine)
	if len(attacks) != 1 || !attacks[0].Disguised {
		t.Fatal("disguise did not trigger")
	}
	acc := w.engine.ProcessSlot(1)
	if len(acc) != 1 {
		t.Fatal("disguised bundle did not land")
	}
	if acc[0].Record.NumTxs() != 4 {
		t.Fatalf("disguised bundle length = %d, want 4", acc[0].Record.NumTxs())
	}
	// The paper's length-3 detector misses it — the lower-bound gap.
	v := core.NewDefaultDetector().Detect(&acc[0].Record, acc[0].Details)
	if v.Sandwich {
		t.Error("length-4 disguise should evade the length-3 detector")
	}
	if v.Failed != core.CritLength {
		t.Errorf("failed criterion %v, want CritLength", v.Failed)
	}
}

func TestScanDeterministicWithSeed(t *testing.T) {
	run := func() []Attack {
		w := newWorld(t, mempool.VisibilityPublic)
		bot := New("det", 1, 1<<42, 10_000, 0.5, rand.New(rand.NewSource(99)))
		w.fund(bot)
		for i := uint64(0); i < 5; i++ {
			w.victimTx(i+1, 100_000_000_000, 300)
		}
		return bot.Scan(w.mp, w.bank, w.engine)
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("different attack counts across identical runs")
	}
	for i := range a {
		if a[i].BundleID != b[i].BundleID || a[i].TipLamports != b[i].TipLamports {
			t.Fatal("attack stream not deterministic")
		}
	}
}

func TestPreflightDropsStalePlans(t *testing.T) {
	// Two bots race the same victim with preflight on. The first bot's
	// plan is computed, then we move the pool out from under the second
	// bot by shrinking the victim's headroom — without preflight the
	// second bundle would submit and fail atomically; with it, nothing
	// doomed is ever submitted.
	w := newWorld(t, mempool.VisibilityPublic)
	bot := newBot("preflight", 1)
	bot.Preflight = true
	w.fund(bot)

	// A victim with essentially zero slippage headroom after we shift
	// the pool: quote it first, then move the pool, then let the bot scan.
	in := uint64(200_000_000_000)
	quote, _ := w.pool.QuoteOut(token.SOL.Address, in)
	minOut := quote * 9_999 / 10_000
	tx := solana.NewTransaction(w.victim, 1, 0,
		&solana.Swap{Pool: w.pool.Address, InputMint: token.SOL.Address,
			AmountIn: in, MinOut: minOut})
	w.mp.Add(tx, 0)

	// Shift the live pool so the victim's MinOut is already under water:
	// any sandwich (indeed the victim tx itself) must now fail.
	shifter := solana.NewKeypairFromSeed("shifter")
	w.bank.CreditLamports(shifter.Pubkey(), 1000*solana.LamportsPerSOL)
	w.bank.MintTo(shifter.Pubkey(), token.SOL.Address, 1e13)
	shift := solana.NewTransaction(shifter, 1, 0,
		&solana.Swap{Pool: w.pool.Address, InputMint: token.SOL.Address, AmountIn: 500_000_000_000})
	if _, err := w.bank.ExecuteTx(shift); err != nil {
		t.Fatal(err)
	}

	attacks := bot.Scan(w.mp, w.bank, w.engine)
	if len(attacks) != 0 {
		t.Fatalf("preflight let %d doomed attacks through", len(attacks))
	}
	if w.mp.Len() != 1 {
		t.Error("victim should remain in the pool after a dropped plan")
	}
	if w.engine.PendingCount() != 0 {
		t.Error("doomed bundle was submitted despite preflight")
	}
}

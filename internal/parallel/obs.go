package parallel

import (
	"time"

	"jitomev/internal/obs"
)

// Observability for the concurrency primitives. Everything recorded here
// is scheduling-dependent — shard counts change with the worker count,
// busy time and queue depth with the interleaving — so every family is
// registered Volatile: visible on /metrics and in summaries, excluded
// from the deterministic snapshot the worker-count tests compare.
const (
	famShardSeconds = "parallel_shard_seconds"
	famShards       = "parallel_shards_total"
	famWorkerBusy   = "parallel_worker_busy_seconds"
	famQueueHW      = "parallel_queue_depth_high_water"
	famQueuePushes  = "parallel_queue_pushes_total"
)

// instrument is the per-call handle bundle for an instrumented stage.
type instrument struct {
	shardDur *obs.Histogram
	shards   *obs.Counter
	busy     *obs.FloatGauge
}

func newInstrument(reg *obs.Registry, stage string) instrument {
	if reg == nil {
		return instrument{}
	}
	reg.Volatile(famShardSeconds, famShards, famWorkerBusy, famQueueHW, famQueuePushes)
	return instrument{
		shardDur: reg.Histogram(famShardSeconds, obs.DurationBuckets, "stage", stage),
		shards:   reg.Counter(famShards, "stage", stage),
		busy:     reg.FloatGauge(famWorkerBusy, "stage", stage),
	}
}

// MapReduceObs is MapReduce with per-shard observability: every shard's
// wall time lands in a (volatile) duration histogram, the shard count in
// a counter, and the summed per-worker busy time in a float gauge — the
// before/after surface for judging how well a stage parallelizes. A nil
// registry selects the uninstrumented path with zero overhead.
func MapReduceObs[T any](reg *obs.Registry, stage string, workers, n int, mapRange func(lo, hi int) T, reduce func(T)) {
	if reg == nil {
		MapReduce(workers, n, mapRange, reduce)
		return
	}
	in := newInstrument(reg, stage)
	MapReduce(workers, n, func(lo, hi int) T {
		start := time.Now()
		out := mapRange(lo, hi)
		d := time.Since(start).Seconds()
		in.shardDur.Observe(d)
		in.busy.Add(d)
		in.shards.Inc()
		return out
	}, reduce)
}

// OrderedStreamObs is OrderedStream with the same per-shard
// observability as MapReduceObs.
func OrderedStreamObs[T any](reg *obs.Registry, stage string, workers, n int, produce func(int) T, consume func(T)) {
	if reg == nil {
		OrderedStream(workers, n, produce, consume)
		return
	}
	in := newInstrument(reg, stage)
	OrderedStream(workers, n, func(i int) T {
		start := time.Now()
		out := produce(i)
		d := time.Since(start).Seconds()
		in.shardDur.Observe(d)
		in.busy.Add(d)
		in.shards.Inc()
		return out
	}, consume)
}

// queueObs carries a Queue's registry handles.
type queueObs struct {
	highWater *obs.Gauge
	pushes    *obs.Counter
}

// NewQueueObs is NewQueue with observability: the queue's depth
// high-water mark (its worst backlog) and total pushes are published
// under the given queue name. A nil registry degrades to NewQueue.
func NewQueueObs[T any](reg *obs.Registry, name string, buffer int, consume func(T)) *Queue[T] {
	q := NewQueue(buffer, consume)
	if reg != nil {
		reg.Volatile(famQueueHW, famQueuePushes)
		q.obs = queueObs{
			highWater: reg.Gauge(famQueueHW, "queue", name),
			pushes:    reg.Counter(famQueuePushes, "queue", name),
		}
	}
	return q
}

// HighWater reports the deepest backlog the queue has seen, whether or
// not the queue is bound to a registry.
func (q *Queue[T]) HighWater() int64 { return q.highWater.Load() }

// observePush updates depth tracking around one Push.
func (q *Queue[T]) observePush() {
	depth := int64(len(q.ch))
	for {
		cur := q.highWater.Load()
		if depth <= cur || q.highWater.CompareAndSwap(cur, depth) {
			break
		}
	}
	q.obs.highWater.SetMax(depth)
	q.obs.pushes.Inc()
}

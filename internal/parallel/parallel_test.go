package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkers(t *testing.T) {
	max := runtime.GOMAXPROCS(0)
	for _, tc := range []struct{ in, want int }{
		{0, max}, {-3, max}, {1, 1}, {7, 7},
	} {
		if got := Workers(tc.in); got != tc.want {
			t.Errorf("Workers(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

// TestMapReduceOrder asserts the core determinism contract: every index
// is visited exactly once and reduction observes shards left to right,
// at every worker count.
func TestMapReduceOrder(t *testing.T) {
	const n = 1000
	for _, workers := range []int{1, 2, 3, 8, 16, 0} {
		var got []int
		MapReduce(workers, n,
			func(lo, hi int) []int {
				out := make([]int, 0, hi-lo)
				for i := lo; i < hi; i++ {
					out = append(out, i)
				}
				return out
			},
			func(part []int) { got = append(got, part...) })
		if len(got) != n {
			t.Fatalf("workers=%d: covered %d of %d indices", workers, len(got), n)
		}
		for i, v := range got {
			if v != i {
				t.Fatalf("workers=%d: position %d holds %d — merge out of order", workers, i, v)
			}
		}
	}
}

func TestMapReduceSmallN(t *testing.T) {
	// Fewer items than workers: shards must still partition [0, n).
	for _, n := range []int{1, 2, 5} {
		var seen []int
		MapReduce(8, n,
			func(lo, hi int) [2]int { return [2]int{lo, hi} },
			func(r [2]int) {
				for i := r[0]; i < r[1]; i++ {
					seen = append(seen, i)
				}
			})
		if len(seen) != n {
			t.Fatalf("n=%d: covered %d indices", n, len(seen))
		}
	}
}

func TestMapReduceEmpty(t *testing.T) {
	called := false
	MapReduce(4, 0,
		func(lo, hi int) int { called = true; return 0 },
		func(int) { called = true })
	if called {
		t.Error("MapReduce over empty range invoked callbacks")
	}
}

// TestMapReduceConcurrentMap verifies the map stage actually runs off the
// calling goroutine's serial order (workers really work) while reduce
// still sees deterministic order. With GOMAXPROCS=1 this degenerates
// gracefully; the -race runs in CI exercise the synchronization.
func TestMapReduceConcurrentMap(t *testing.T) {
	var calls atomic.Int64
	var sum int
	MapReduce(4, 100,
		func(lo, hi int) int {
			calls.Add(1)
			s := 0
			for i := lo; i < hi; i++ {
				s += i
			}
			return s
		},
		func(part int) { sum += part })
	if want := 100 * 99 / 2; sum != want {
		t.Errorf("sum = %d, want %d", sum, want)
	}
	if calls.Load() == 0 {
		t.Error("map stage never ran")
	}
}

func TestQueuePreservesOrder(t *testing.T) {
	const n = 10_000
	var got []int
	q := NewQueue(16, func(v int) { got = append(got, v) })
	for i := 0; i < n; i++ {
		q.Push(i)
	}
	q.Close()
	if len(got) != n {
		t.Fatalf("consumed %d of %d items", len(got), n)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("position %d holds %d — order broken", i, v)
		}
	}
}

func TestQueueCloseDrains(t *testing.T) {
	var count atomic.Int64
	q := NewQueue(1, func(int) { count.Add(1) }) // tiny buffer forces backpressure
	for i := 0; i < 100; i++ {
		q.Push(i)
	}
	q.Close()
	if count.Load() != 100 {
		t.Fatalf("Close returned with %d of 100 items consumed", count.Load())
	}
}

func TestOrderedStreamOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 0} {
		const n = 500
		var got []int
		OrderedStream(workers, n,
			func(i int) int {
				if i%7 == 0 {
					time.Sleep(time.Microsecond) // stagger completion order
				}
				return i * i
			},
			func(v int) { got = append(got, v) })
		if len(got) != n {
			t.Fatalf("workers=%d consumed %d of %d", workers, len(got), n)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d position %d holds %d — order broken", workers, i, v)
			}
		}
	}
}

func TestOrderedStreamEmpty(t *testing.T) {
	called := false
	OrderedStream(4, 0, func(int) int { return 0 }, func(int) { called = true })
	if called {
		t.Error("consume ran with n=0")
	}
}

// TestOrderedStreamBoundedWindow asserts the memory guarantee: no more
// than 2×workers results exist unconsumed at any moment.
func TestOrderedStreamBoundedWindow(t *testing.T) {
	const workers, n = 3, 200
	var inFlight, peak atomic.Int64
	OrderedStream(workers, n,
		func(i int) int {
			v := inFlight.Add(1)
			for {
				p := peak.Load()
				if v <= p || peak.CompareAndSwap(p, v) {
					break
				}
			}
			return i
		},
		func(int) { inFlight.Add(-1) })
	if p := peak.Load(); p > 2*workers {
		t.Errorf("peak in-flight %d exceeds window %d", p, 2*workers)
	}
}

// Package parallel provides the deterministic concurrency building blocks
// the pipeline's hot paths share: a bounded worker pool running an
// ordered, sharded map/reduce whose fan-in merges partial results in
// shard order — so a parallel pass reproduces the serial pass bit for
// bit — and a bounded ordered queue that pipelines a producer with a
// single consumer goroutine while preserving submission order exactly.
//
// Determinism is the repo's core fidelity guarantee: every figure and
// headline statistic must be a pure function of (seed, days, scale),
// regardless of GOMAXPROCS or scheduling. Both primitives here are
// designed around that constraint rather than raw throughput: shard
// boundaries depend only on (n, workers) and reduction order depends
// only on shard index, never on which worker finished first.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// shardFactor oversubscribes shards versus workers so uneven per-shard
// costs load-balance across the pool without disturbing the
// deterministic merge order.
const shardFactor = 4

// Workers resolves a worker-count knob: zero or negative selects
// GOMAXPROCS (use every core), any positive count is returned as-is.
// By convention across the repo, 1 selects the serial reference path.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// MapReduce splits [0, n) into contiguous shards, runs mapRange over the
// shards on a bounded pool of workers, and calls reduce once per shard
// in ascending shard order. Shard boundaries are a pure function of
// (n, workers) and the fan-in buffers every partial result, so reduce
// observes exactly the left-to-right order a serial pass would produce —
// identical reductions at any worker count, including floating-point
// accumulation order when reduce replays per-item contributions.
//
// mapRange runs concurrently and must not share mutable state; reduce
// always runs on the calling goroutine after every shard completes.
func MapReduce[T any](workers, n int, mapRange func(lo, hi int) T, reduce func(T)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers)
	if workers == 1 {
		reduce(mapRange(0, n))
		return
	}
	shards := workers * shardFactor
	if shards > n {
		shards = n
	}
	size := (n + shards - 1) / shards
	shards = (n + size - 1) / size // drop empty tail shards
	if workers > shards {
		workers = shards
	}

	results := make([]T, shards)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= shards {
					return
				}
				lo := i * size
				hi := lo + size
				if hi > n {
					hi = n
				}
				results[i] = mapRange(lo, hi)
			}
		}()
	}
	wg.Wait()

	for i := range results {
		reduce(results[i])
	}
}

// OrderedStream runs produce(0..n-1) on a bounded pool of workers and
// feeds every result to consume in strict index order on the calling
// goroutine. Unlike MapReduce it never buffers more than ~2×workers
// results: a worker must hold a window token before claiming an index,
// and the consumer returns tokens as it drains, so peak memory is
// bounded by the window rather than n. The snapshot writer uses this to
// compress shards on every core while emitting them to a single
// io.Writer in a deterministic order.
//
// produce runs concurrently and must not share mutable state; consume
// always runs on the calling goroutine.
func OrderedStream[T any](workers, n int, produce func(int) T, consume func(T)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			consume(produce(i))
		}
		return
	}

	window := 2 * workers
	if window > n {
		window = n
	}
	sem := make(chan struct{}, window)
	out := make([]chan T, n)
	for i := range out {
		out[i] = make(chan T, 1)
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				// Acquire the window slot before claiming an index:
				// indices are claimed in order, so every unconsumed
				// index below the newest claim holds a token and the
				// consumer can always make progress.
				sem <- struct{}{}
				i := int(next.Add(1)) - 1
				if i >= n {
					<-sem
					return
				}
				out[i] <- produce(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		consume(<-out[i])
		<-sem
	}
	wg.Wait()
}

// Queue is a bounded FIFO connecting one producer to one consumer
// goroutine. Push blocks while the buffer is full (backpressure rather
// than unbounded memory), and items are consumed strictly in push order,
// so a pipelined sink preserves acceptance order exactly.
type Queue[T any] struct {
	ch   chan T
	done chan struct{}

	// highWater tracks the deepest backlog observed at push time; obs
	// optionally mirrors it (and a push counter) onto a registry — see
	// NewQueueObs.
	highWater atomic.Int64
	obs       queueObs
}

// NewQueue starts a consumer goroutine draining the queue into consume.
// buffer < 1 is clamped to 1.
func NewQueue[T any](buffer int, consume func(T)) *Queue[T] {
	if buffer < 1 {
		buffer = 1
	}
	q := &Queue[T]{ch: make(chan T, buffer), done: make(chan struct{})}
	go func() {
		defer close(q.done)
		for v := range q.ch {
			consume(v)
		}
	}()
	return q
}

// Push enqueues one item, blocking while the buffer is full.
func (q *Queue[T]) Push(v T) {
	q.ch <- v
	q.observePush()
}

// Close signals end of input and blocks until the consumer has drained
// every pushed item. The queue must not be pushed to after Close.
func (q *Queue[T]) Close() {
	close(q.ch)
	<-q.done
}

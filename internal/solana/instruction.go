package solana

import (
	"encoding/binary"
	"fmt"
)

// Instruction is one executable step inside a transaction. The simulation
// uses a small closed set of instruction kinds — lamport transfers, AMM
// swaps, Jito tips and memos — which covers everything the paper's
// detector can observe on chain: balance movements and trades.
type Instruction interface {
	// Kind returns the instruction discriminator.
	Kind() InstrKind
	// AppendBinary appends the canonical wire encoding used for signing
	// and transaction IDs.
	AppendBinary(b []byte) []byte
	// String renders the instruction for logs and example output.
	String() string
}

// InstrKind discriminates instruction types on the wire.
type InstrKind uint8

// Instruction kinds.
const (
	KindTransfer InstrKind = iota + 1
	KindSwap
	KindTip
	KindMemo
)

// String returns the lowercase name of the kind.
func (k InstrKind) String() string {
	switch k {
	case KindTransfer:
		return "transfer"
	case KindSwap:
		return "swap"
	case KindTip:
		return "tip"
	case KindMemo:
		return "memo"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Transfer moves lamports between system accounts.
type Transfer struct {
	From, To Pubkey
	Amount   Lamports
}

// Kind implements Instruction.
func (t *Transfer) Kind() InstrKind { return KindTransfer }

// AppendBinary implements Instruction.
func (t *Transfer) AppendBinary(b []byte) []byte {
	b = append(b, byte(KindTransfer))
	b = append(b, t.From[:]...)
	b = append(b, t.To[:]...)
	return binary.LittleEndian.AppendUint64(b, uint64(t.Amount))
}

func (t *Transfer) String() string {
	return fmt.Sprintf("transfer %s -> %s %s", t.From.Short(), t.To.Short(), t.Amount)
}

// Swap trades on a constant-product AMM pool. Direction is expressed by
// InputMint: the swapper pays AmountIn of InputMint and receives the other
// side of the pool, subject to MinOut slippage protection.
type Swap struct {
	Pool      Pubkey // pool address
	InputMint Pubkey // mint being sold into the pool
	AmountIn  uint64 // base units of InputMint
	MinOut    uint64 // slippage floor in base units of the output mint; 0 = no protection
}

// Kind implements Instruction.
func (s *Swap) Kind() InstrKind { return KindSwap }

// AppendBinary implements Instruction.
func (s *Swap) AppendBinary(b []byte) []byte {
	b = append(b, byte(KindSwap))
	b = append(b, s.Pool[:]...)
	b = append(b, s.InputMint[:]...)
	b = binary.LittleEndian.AppendUint64(b, s.AmountIn)
	return binary.LittleEndian.AppendUint64(b, s.MinOut)
}

func (s *Swap) String() string {
	return fmt.Sprintf("swap pool=%s in=%d of %s minOut=%d",
		s.Pool.Short(), s.AmountIn, s.InputMint.Short(), s.MinOut)
}

// Tip pays a Jito validator tip into one of the tip accounts. It is a plain
// lamport transfer on chain; keeping it a distinct kind lets the ledger
// account tips separately, exactly as the Explorer reports them.
type Tip struct {
	TipAccount Pubkey
	Amount     Lamports
}

// Kind implements Instruction.
func (t *Tip) Kind() InstrKind { return KindTip }

// AppendBinary implements Instruction.
func (t *Tip) AppendBinary(b []byte) []byte {
	b = append(b, byte(KindTip))
	b = append(b, t.TipAccount[:]...)
	return binary.LittleEndian.AppendUint64(b, uint64(t.Amount))
}

func (t *Tip) String() string {
	return fmt.Sprintf("tip %s -> %s", t.Amount, t.TipAccount.Short())
}

// Memo carries opaque bytes; used by the workload to pad disguised bundles.
type Memo struct {
	Data []byte
}

// Kind implements Instruction.
func (m *Memo) Kind() InstrKind { return KindMemo }

// AppendBinary implements Instruction.
func (m *Memo) AppendBinary(b []byte) []byte {
	b = append(b, byte(KindMemo))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(m.Data)))
	return append(b, m.Data...)
}

func (m *Memo) String() string { return fmt.Sprintf("memo %d bytes", len(m.Data)) }

package solana

import "fmt"

// Lamports is an amount of SOL's smallest unit. One SOL is one billion
// lamports. Solana's base transaction fee is 5,000 lamports and Jito's
// minimum bundle tip is 1,000 lamports; both constants are defined here so
// every module shares one source of truth.
type Lamports uint64

const (
	// LamportsPerSOL is the number of lamports in one SOL.
	LamportsPerSOL Lamports = 1_000_000_000

	// BaseFee is Solana's base transaction fee (0.000005 SOL).
	BaseFee Lamports = 5_000

	// MinJitoTip is the smallest tip the Jito block engine accepts for a
	// bundle (0.000001 SOL).
	MinJitoTip Lamports = 1_000

	// DefensiveTipCeiling is the paper's §3.3 threshold: a length-1 bundle
	// whose tip is at or below this value buys no meaningful priority, so
	// the bundling is classified as MEV protection.
	DefensiveTipCeiling Lamports = 100_000
)

// SOL returns the amount in whole SOL as a float for reporting. All
// accounting is done in integer lamports; floats appear only at the edge.
func (l Lamports) SOL() float64 { return float64(l) / float64(LamportsPerSOL) }

// FromSOL converts a SOL amount to lamports, truncating sub-lamport dust.
func FromSOL(sol float64) Lamports {
	if sol <= 0 {
		return 0
	}
	return Lamports(sol * float64(LamportsPerSOL))
}

// String formats the amount as both lamports and SOL.
func (l Lamports) String() string {
	return fmt.Sprintf("%d lamports (%.9f SOL)", uint64(l), l.SOL())
}

// Saturating subtraction: returns l-x, or 0 if x > l.
func (l Lamports) SubSat(x Lamports) Lamports {
	if x > l {
		return 0
	}
	return l - x
}

package solana

import (
	"math/rand"
	"testing"
)

// Decoder robustness: UnmarshalBinary consumes collector-fetched bytes, so
// it must reject — never panic on — arbitrary input.

func TestUnmarshalBinaryNeverPanicsOnRandomBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 50_000; trial++ {
		n := rng.Intn(400)
		b := make([]byte, n)
		rng.Read(b)
		var tx Transaction
		// Error or success are both fine; a panic fails the test run.
		_ = tx.UnmarshalBinary(b)
	}
}

func TestUnmarshalBinaryMutatedValid(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	base := sampleTx("fuzz", 1)
	valid, err := base.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20_000; trial++ {
		b := append([]byte(nil), valid...)
		// Flip 1–4 random bytes.
		for k := 0; k <= rng.Intn(4); k++ {
			b[rng.Intn(len(b))] ^= byte(1 + rng.Intn(255))
		}
		var tx Transaction
		if err := tx.UnmarshalBinary(b); err != nil {
			continue
		}
		// Structurally decodable mutants must still fail signature
		// verification unless the mutation was confined to the signature
		// half that is not covered — in this construction every byte is
		// covered, so any decodable mutant that differs must not verify.
		reEnc, _ := tx.MarshalBinary()
		if string(reEnc) == string(valid) {
			continue // mutation round-tripped to the original (memo padding etc.)
		}
		if tx.Validate() == nil {
			t.Fatalf("trial %d: mutated transaction still validates", trial)
		}
	}
}

func TestUnmarshalBinaryHostileCounts(t *testing.T) {
	base := sampleTx("hostile", 1)
	b, _ := base.MarshalBinary()
	// Overwrite the instruction count (offset 64+32+8+8) with a huge value.
	for _, count := range []uint32{65, 1 << 20, 1<<32 - 1} {
		mut := append([]byte(nil), b...)
		mut[112] = byte(count)
		mut[113] = byte(count >> 8)
		mut[114] = byte(count >> 16)
		mut[115] = byte(count >> 24)
		var tx Transaction
		if err := tx.UnmarshalBinary(mut); err == nil {
			t.Errorf("instruction count %d accepted", count)
		}
	}
	// Memo with a length prefix far past the buffer.
	kp := NewKeypairFromSeed("hostile2")
	memoTx := NewTransaction(kp, 1, 0, &Memo{Data: []byte("abc")})
	mb, _ := memoTx.MarshalBinary()
	// Memo length lives right after the kind byte at the end; corrupt it.
	mb[len(mb)-4-3] = 0xFF
	var tx Transaction
	if err := tx.UnmarshalBinary(mb); err == nil {
		t.Error("oversized memo length accepted")
	}
}

// Package solana provides the chain primitives that the rest of the
// reproduction builds on: public keys, signatures, lamports, instructions,
// transactions and the slot clock.
//
// The types mirror the parts of the real Solana data model that the paper's
// measurement pipeline observes — transaction identifiers (signatures),
// signers, fees and instruction effects — without importing any external
// SDK. Key generation and signing are deterministic SHA-256 constructions:
// the measurement methodology only needs stable, unforgeable-in-simulation
// identities, not real Ed25519.
package solana

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math/rand"

	"jitomev/internal/base58"
)

// Pubkey is a 32-byte account address, displayed in base58 like Solana's.
type Pubkey [32]byte

// Signature is a 64-byte transaction signature. The first signature of a
// Solana transaction doubles as its transaction ID; we keep that convention.
type Signature [64]byte

// Hash is a 32-byte hash (block hashes, bundle content hashes).
type Hash [32]byte

// String returns the base58 form of the key.
func (p Pubkey) String() string { return base58.Encode(p[:]) }

// Short returns an abbreviated base58 form for logs and tables.
func (p Pubkey) Short() string {
	s := p.String()
	if len(s) <= 8 {
		return s
	}
	return s[:4] + ".." + s[len(s)-4:]
}

// IsZero reports whether p is the all-zero address.
func (p Pubkey) IsZero() bool { return p == Pubkey{} }

// MarshalJSON encodes the key as a base58 JSON string.
func (p Pubkey) MarshalJSON() ([]byte, error) { return json.Marshal(p.String()) }

// UnmarshalJSON decodes a base58 JSON string.
func (p *Pubkey) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	return base58.DecodeInto(p[:], s)
}

// PubkeyFromBase58 parses a base58 address.
func PubkeyFromBase58(s string) (Pubkey, error) {
	var p Pubkey
	if err := base58.DecodeInto(p[:], s); err != nil {
		return Pubkey{}, fmt.Errorf("pubkey: %w", err)
	}
	return p, nil
}

// String returns the base58 form of the signature.
func (s Signature) String() string { return base58.Encode(s[:]) }

// Short returns an abbreviated base58 form for logs and tables.
func (s Signature) Short() string {
	str := s.String()
	if len(str) <= 10 {
		return str
	}
	return str[:5] + ".." + str[len(str)-5:]
}

// IsZero reports whether s is the all-zero signature.
func (s Signature) IsZero() bool { return s == Signature{} }

// MarshalJSON encodes the signature as a base58 JSON string.
func (s Signature) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// UnmarshalJSON decodes a base58 JSON string.
func (s *Signature) UnmarshalJSON(b []byte) error {
	var str string
	if err := json.Unmarshal(b, &str); err != nil {
		return err
	}
	return base58.DecodeInto(s[:], str)
}

// SignatureFromBase58 parses a base58 signature.
func SignatureFromBase58(str string) (Signature, error) {
	var s Signature
	if err := base58.DecodeInto(s[:], str); err != nil {
		return Signature{}, fmt.Errorf("signature: %w", err)
	}
	return s, nil
}

// String returns the base58 form of the hash.
func (h Hash) String() string { return base58.Encode(h[:]) }

// Keypair is a deterministic signing identity. The public key is derived
// from the secret by hashing, and signatures are keyed hashes over message
// content — enough to make signer attribution in the detector meaningful.
type Keypair struct {
	pub    Pubkey
	secret [32]byte
}

// NewKeypairFromSeed derives a keypair from an arbitrary seed string.
// The same seed always yields the same keypair.
func NewKeypairFromSeed(seed string) *Keypair {
	var kp Keypair
	kp.secret = sha256.Sum256([]byte("jitomev/secret/" + seed))
	kp.pub = derivePub(kp.secret)
	return &kp
}

// NewKeypair draws a keypair from rng. Passing a seeded *rand.Rand makes
// whole agent populations reproducible.
func NewKeypair(rng *rand.Rand) *Keypair {
	var seed [32]byte
	for i := 0; i < 32; i += 8 {
		binary.LittleEndian.PutUint64(seed[i:], rng.Uint64())
	}
	var kp Keypair
	kp.secret = sha256.Sum256(append([]byte("jitomev/secret/rand/"), seed[:]...))
	kp.pub = derivePub(kp.secret)
	return &kp
}

func derivePub(secret [32]byte) Pubkey {
	h := sha256.Sum256(append([]byte("jitomev/pub/"), secret[:]...))
	return Pubkey(h)
}

// Pubkey returns the public key of the pair.
func (kp *Keypair) Pubkey() Pubkey { return kp.pub }

// Sign produces a deterministic 64-byte signature over msg. The first half
// binds the secret and the message; the second half binds the public key,
// so two signers never produce equal signatures for the same message.
func (kp *Keypair) Sign(msg []byte) Signature {
	var sig Signature
	h1 := sha256.Sum256(append(append([]byte("jitomev/sig1/"), kp.secret[:]...), msg...))
	copy(sig[:32], h1[:])
	h2 := verifierHalf(kp.pub, msg, sig[:32])
	copy(sig[32:], h2[:])
	return sig
}

func verifierHalf(pub Pubkey, msg, h1 []byte) [32]byte {
	b := make([]byte, 0, 13+32+len(msg)+32)
	b = append(b, "jitomev/sig2/"...)
	b = append(b, pub[:]...)
	b = append(b, msg...)
	b = append(b, h1...)
	return sha256.Sum256(b)
}

// Verify checks that sig binds pub to msg. Without real asymmetric crypto
// only the message-binding half can be checked; that is enough to catch
// signer mis-attribution and post-signing tampering, which is all the
// simulation needs from signatures.
func Verify(pub Pubkey, msg []byte, sig Signature) bool {
	return [32]byte(sig[32:]) == verifierHalf(pub, msg, sig[:32])
}

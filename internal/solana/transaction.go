package solana

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
)

// Transaction is a single-signer Solana transaction. The fee payer is the
// signer; the first (and only) signature is the transaction ID, matching
// how the paper identifies transactions ("transactionIds").
type Transaction struct {
	Sig          Signature
	Signer       Pubkey
	Nonce        uint64   // per-signer uniquifier standing in for recent blockhashes
	PriorityFee  Lamports // optional fee on top of BaseFee, paid to the leader
	Instructions []Instruction
}

// Errors returned by transaction validation.
var (
	ErrUnsigned     = errors.New("solana: transaction is not signed")
	ErrBadSignature = errors.New("solana: signature does not verify")
	ErrEmpty        = errors.New("solana: transaction has no instructions")
)

// NewTransaction builds and signs a transaction in one step.
func NewTransaction(kp *Keypair, nonce uint64, priorityFee Lamports, instrs ...Instruction) *Transaction {
	tx := &Transaction{
		Signer:       kp.Pubkey(),
		Nonce:        nonce,
		PriorityFee:  priorityFee,
		Instructions: instrs,
	}
	tx.Sign(kp)
	return tx
}

// Message returns the canonical byte encoding of everything covered by the
// signature.
func (tx *Transaction) Message() []byte {
	b := make([]byte, 0, 64+len(tx.Instructions)*80)
	b = append(b, tx.Signer[:]...)
	b = binary.LittleEndian.AppendUint64(b, tx.Nonce)
	b = binary.LittleEndian.AppendUint64(b, uint64(tx.PriorityFee))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(tx.Instructions)))
	for _, in := range tx.Instructions {
		b = in.AppendBinary(b)
	}
	return b
}

// Sign signs the transaction with kp, which must match tx.Signer.
func (tx *Transaction) Sign(kp *Keypair) {
	if kp.Pubkey() != tx.Signer {
		panic("solana: signing key does not match tx.Signer")
	}
	tx.Sig = kp.Sign(tx.Message())
}

// Validate checks structural well-formedness and the signature.
func (tx *Transaction) Validate() error {
	if len(tx.Instructions) == 0 {
		return ErrEmpty
	}
	if tx.Sig.IsZero() {
		return ErrUnsigned
	}
	if !Verify(tx.Signer, tx.Message(), tx.Sig) {
		return ErrBadSignature
	}
	return nil
}

// ID returns the transaction identifier (its signature).
func (tx *Transaction) ID() Signature { return tx.Sig }

// Fee returns the total fee the signer pays the leader: base + priority.
func (tx *Transaction) Fee() Lamports { return BaseFee + tx.PriorityFee }

// TipAmount sums all Tip instructions in the transaction.
func (tx *Transaction) TipAmount() Lamports {
	var total Lamports
	for _, in := range tx.Instructions {
		if t, ok := in.(*Tip); ok {
			total += t.Amount
		}
	}
	return total
}

// IsTipOnly reports whether the transaction does nothing except pay Jito
// tips (plus optional memos). The paper's criterion C5 excludes length-3
// bundles whose final transaction is tip-only.
func (tx *Transaction) IsTipOnly() bool {
	sawTip := false
	for _, in := range tx.Instructions {
		switch in.(type) {
		case *Tip:
			sawTip = true
		case *Memo:
			// memos don't change tip-only status
		default:
			return false
		}
	}
	return sawTip
}

// HasSwap reports whether the transaction contains at least one Swap.
func (tx *Transaction) HasSwap() bool {
	for _, in := range tx.Instructions {
		if _, ok := in.(*Swap); ok {
			return true
		}
	}
	return false
}

// String renders a compact single-line description.
func (tx *Transaction) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "tx %s signer=%s", tx.Sig.Short(), tx.Signer.Short())
	for _, in := range tx.Instructions {
		sb.WriteString(" [")
		sb.WriteString(in.String())
		sb.WriteString("]")
	}
	return sb.String()
}

// MarshalBinary encodes the full transaction (signature + message) in the
// wire format used by the explorer's bulk endpoints and the collector.
func (tx *Transaction) MarshalBinary() ([]byte, error) {
	msg := tx.Message()
	b := make([]byte, 0, 64+len(msg))
	b = append(b, tx.Sig[:]...)
	return append(b, msg...), nil
}

// UnmarshalBinary decodes a transaction produced by MarshalBinary.
func (tx *Transaction) UnmarshalBinary(b []byte) error {
	const fixed = 64 + 32 + 8 + 8 + 4
	if len(b) < fixed {
		return fmt.Errorf("solana: transaction truncated: %d bytes", len(b))
	}
	copy(tx.Sig[:], b[:64])
	b = b[64:]
	copy(tx.Signer[:], b[:32])
	b = b[32:]
	tx.Nonce = binary.LittleEndian.Uint64(b)
	tx.PriorityFee = Lamports(binary.LittleEndian.Uint64(b[8:]))
	n := binary.LittleEndian.Uint32(b[16:])
	b = b[20:]
	if n > 64 {
		return fmt.Errorf("solana: implausible instruction count %d", n)
	}
	tx.Instructions = make([]Instruction, 0, n)
	for i := uint32(0); i < n; i++ {
		in, rest, err := decodeInstruction(b)
		if err != nil {
			return err
		}
		tx.Instructions = append(tx.Instructions, in)
		b = rest
	}
	if len(b) != 0 {
		return fmt.Errorf("solana: %d trailing bytes after transaction", len(b))
	}
	return nil
}

func decodeInstruction(b []byte) (Instruction, []byte, error) {
	if len(b) < 1 {
		return nil, nil, errors.New("solana: instruction truncated")
	}
	kind := InstrKind(b[0])
	b = b[1:]
	switch kind {
	case KindTransfer:
		if len(b) < 72 {
			return nil, nil, errors.New("solana: transfer truncated")
		}
		t := &Transfer{}
		copy(t.From[:], b[:32])
		copy(t.To[:], b[32:64])
		t.Amount = Lamports(binary.LittleEndian.Uint64(b[64:]))
		return t, b[72:], nil
	case KindSwap:
		if len(b) < 80 {
			return nil, nil, errors.New("solana: swap truncated")
		}
		s := &Swap{}
		copy(s.Pool[:], b[:32])
		copy(s.InputMint[:], b[32:64])
		s.AmountIn = binary.LittleEndian.Uint64(b[64:])
		s.MinOut = binary.LittleEndian.Uint64(b[72:])
		return s, b[80:], nil
	case KindTip:
		if len(b) < 40 {
			return nil, nil, errors.New("solana: tip truncated")
		}
		t := &Tip{}
		copy(t.TipAccount[:], b[:32])
		t.Amount = Lamports(binary.LittleEndian.Uint64(b[32:]))
		return t, b[40:], nil
	case KindMemo:
		if len(b) < 4 {
			return nil, nil, errors.New("solana: memo truncated")
		}
		n := binary.LittleEndian.Uint32(b)
		b = b[4:]
		if uint32(len(b)) < n {
			return nil, nil, errors.New("solana: memo data truncated")
		}
		m := &Memo{Data: append([]byte(nil), b[:n]...)}
		return m, b[n:], nil
	}
	return nil, nil, fmt.Errorf("solana: unknown instruction kind %d", kind)
}
